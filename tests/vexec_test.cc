// Vectorized execution engine suite: batch/selection-vector boundary
// cases, NULL and duplicate join keys, aggregation edges, the MorselPool
// dispatcher, mutation testing of the vexec lockstep oracle, the
// work-meter regressions of the reference evaluator, and a randomized
// differential sweep (vectorized vs. reference executor, bitwise) over
// every bundled dataset.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/workload.h"
#include "exec/executor.h"
#include "fsm/generation_fsm.h"
#include "fuzz/oracle.h"
#include "fuzz/reference_eval.h"
#include "fuzz/test_databases.h"
#include "sql/render.h"
#include "vexec/backend_factory.h"
#include "vexec/batch.h"
#include "vexec/hash_table.h"
#include "vexec/morsel_pool.h"
#include "vexec/vectorized_engine.h"

namespace lsg {
namespace {

using vexec::InjectBug;
using vexec::kBatchSize;
using vexec::MorselPool;
using vexec::VectorizedEngine;
using vexec::VexecOptions;

// ---------------------------------------------------------------- helpers

/// Two tables joined by an FK edge, with full control over the key
/// columns: Fact(id PK, key INT64 nullable, v DOUBLE) -> Dim(id PK
/// via key, tag STRING). `fact_keys`/`dim_ids` use INT64_MIN as NULL.
constexpr int64_t kNull = INT64_MIN;

Database BuildJoinDb(const std::vector<int64_t>& fact_keys,
                     const std::vector<int64_t>& dim_ids) {
  Database db;
  {
    TableSchema s("Dim");
    LSG_CHECK_OK(s.AddColumn({"id", DataType::kInt64, true, true}));
    LSG_CHECK_OK(s.AddColumn({"tag", DataType::kString, false, false}));
    Table t(std::move(s));
    for (size_t i = 0; i < dim_ids.size(); ++i) {
      Value id = dim_ids[i] == kNull ? Value::Null() : Value(dim_ids[i]);
      LSG_CHECK_OK(t.AppendRow({id, Value("d" + std::to_string(i))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }
  {
    TableSchema s("Fact");
    LSG_CHECK_OK(s.AddColumn({"id", DataType::kInt64, true, false}));
    LSG_CHECK_OK(s.AddColumn({"key", DataType::kInt64, false, true}));
    LSG_CHECK_OK(s.AddColumn({"v", DataType::kDouble, false, false}));
    Table t(std::move(s));
    for (size_t i = 0; i < fact_keys.size(); ++i) {
      Value key =
          fact_keys[i] == kNull ? Value::Null() : Value(fact_keys[i]);
      LSG_CHECK_OK(t.AppendRow({Value(static_cast<int64_t>(i)), key,
                                Value(static_cast<double>(i) * 0.5)}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }
  LSG_CHECK_OK(db.AddForeignKey({"Fact", "key", "Dim", "id"}));
  return db;
}

/// Runs the SELECT through both engines and asserts bitwise-identical
/// results: cardinality, first_column (exact Values), and ExecStats.
void ExpectSelectAgrees(const Database& db, const SelectQuery& q,
                        int workers = 1) {
  Executor ref(&db);
  VectorizedEngine vec(&db, VexecOptions{.workers = workers});
  auto a = ref.ExecuteSelect(q, /*materialize_first_column=*/true);
  auto b = vec.ExecuteSelect(q, /*materialize_first_column=*/true);
  ASSERT_EQ(a.ok(), b.ok()) << a.status().ToString() << " vs "
                            << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code());
    return;
  }
  EXPECT_EQ(a->cardinality, b->cardinality);
  ASSERT_EQ(a->first_column.size(), b->first_column.size());
  for (size_t i = 0; i < a->first_column.size(); ++i) {
    const Value& va = a->first_column[i];
    const Value& vb = b->first_column[i];
    EXPECT_EQ(va.is_null(), vb.is_null()) << "row " << i;
    if (!va.is_null() && !vb.is_null()) {
      EXPECT_EQ(va.Compare(vb), 0)
          << "row " << i << ": " << va.ToSqlLiteral() << " vs "
          << vb.ToSqlLiteral();
    }
  }
  EXPECT_EQ(a->stats.rows_scanned, b->stats.rows_scanned);
  EXPECT_EQ(a->stats.rows_joined, b->stats.rows_joined);
  EXPECT_EQ(a->stats.rows_probed, b->stats.rows_probed);
  EXPECT_EQ(a->stats.rows_output, b->stats.rows_output);
}

SelectQuery SelectAll(int table_idx, int item_col = 0) {
  SelectQuery q;
  q.tables = {table_idx};
  SelectItem item;
  item.column = {table_idx, item_col};
  q.items.push_back(std::move(item));
  return q;
}

Predicate ValuePred(int table_idx, int column_idx, CompareOp op, Value v) {
  Predicate p;
  p.kind = PredicateKind::kValue;
  p.column = {table_idx, column_idx};
  p.op = op;
  p.value = std::move(v);
  return p;
}

// ------------------------------------------------------- boundary cases

TEST(VexecBoundaryTest, EmptyTables) {
  Database db = BuildJoinDb(/*fact_keys=*/{}, /*dim_ids=*/{});
  const int dim = db.catalog().FindTable("Dim");
  const int fact = db.catalog().FindTable("Fact");

  // Plain scan of an empty table.
  ExpectSelectAgrees(db, SelectAll(fact));

  // Join with both sides empty.
  SelectQuery join = SelectAll(fact);
  join.tables.push_back(dim);
  ExpectSelectAgrees(db, join);

  // Aggregate over an empty input still yields one row in both engines.
  SelectQuery agg = SelectAll(fact, /*item_col=*/2);
  agg.items[0].agg = AggFunc::kCount;
  ExpectSelectAgrees(db, agg);
  agg.items[0].agg = AggFunc::kSum;
  ExpectSelectAgrees(db, agg);
}

TEST(VexecBoundaryTest, SelectionVectorEdgeAtBatchSize) {
  // Sizes straddling the batch boundary: the last tuple of a full batch,
  // a batch-plus-one tail, and an exact multiple. The predicate keeps
  // every even id, so the final tuple of each batch flips kept/dropped
  // depending on parity — exactly the off-by-one surface.
  for (size_t n : {kBatchSize - 1, kBatchSize, kBatchSize + 1,
                   2 * kBatchSize}) {
    std::vector<int64_t> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = static_cast<int64_t>(i % 7);
    Database db = BuildJoinDb(keys, /*dim_ids=*/{0, 1, 2});
    const int fact = db.catalog().FindTable("Fact");
    SelectQuery q = SelectAll(fact);
    q.where.predicates.push_back(
        ValuePred(fact, 1, CompareOp::kLe, Value(int64_t{3})));
    ExpectSelectAgrees(db, q);
    ExpectSelectAgrees(db, q, /*workers=*/3);

    // Exact expected count: keys cycle 0..6, kept when key <= 3.
    Executor ref(&db);
    auto r = ref.ExecuteSelect(q, false);
    ASSERT_TRUE(r.ok());
    uint64_t want = 0;
    for (size_t i = 0; i < n; ++i) {
      if (i % 7 <= 3) ++want;
    }
    EXPECT_EQ(r->cardinality, want);
  }
}

TEST(VexecBoundaryTest, NullKeysNeverJoin) {
  // NULLs on the probe side, the build side, and both.
  Database db = BuildJoinDb(/*fact_keys=*/{0, kNull, 1, kNull, 2},
                            /*dim_ids=*/{0, kNull, 2, kNull});
  const int dim = db.catalog().FindTable("Dim");
  const int fact = db.catalog().FindTable("Fact");
  SelectQuery q = SelectAll(fact);
  q.tables.push_back(dim);
  ExpectSelectAgrees(db, q);
  Executor ref(&db);
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>(std::move(q));
  auto card = ref.Cardinality(ast);
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(*card, 2u);  // keys 0 and 2 match; NULL never does
}

TEST(VexecBoundaryTest, DuplicateKeyBuildSide) {
  // Duplicate build keys: every probe hit fans out in build insertion
  // order, so first_column equality proves the chain order matches the
  // reference engine's bucket order.
  Database db = BuildJoinDb(/*fact_keys=*/{5, 5, 7},
                            /*dim_ids=*/{5, 5, 5, 7, 7});
  const int dim = db.catalog().FindTable("Dim");
  const int fact = db.catalog().FindTable("Fact");
  SelectQuery q;
  q.tables = {fact, dim};
  SelectItem item;
  item.column = {dim, 1};  // Dim.tag distinguishes the duplicate rows
  q.items.push_back(std::move(item));
  ExpectSelectAgrees(db, q);
  VectorizedEngine vec(&db);
  auto r = vec.ExecuteSelect(q, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cardinality, 2u * 3u + 1u * 2u);
}

TEST(VexecBoundaryTest, AggregationOverZeroGroups) {
  Database db = BuildJoinDb(/*fact_keys=*/{1, 2, 3}, /*dim_ids=*/{1, 2, 3});
  const int fact = db.catalog().FindTable("Fact");
  // WHERE matches nothing -> zero groups -> zero output rows.
  SelectQuery q = SelectAll(fact, /*item_col=*/2);
  q.items[0].agg = AggFunc::kAvg;
  q.where.predicates.push_back(
      ValuePred(fact, 1, CompareOp::kGt, Value(int64_t{100})));
  q.group_by.push_back({fact, 1});
  ExpectSelectAgrees(db, q);
  VectorizedEngine vec(&db);
  auto r = vec.ExecuteSelect(q, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cardinality, 0u);
  EXPECT_TRUE(r->first_column.empty());
}

TEST(VexecBoundaryTest, MatchRowsAgreesOnEmptyAndNonEmptyWhere) {
  std::vector<int64_t> keys(kBatchSize + 3);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(i % 5);
  }
  Database db = BuildJoinDb(keys, /*dim_ids=*/{0, 1});
  const int fact = db.catalog().FindTable("Fact");
  Executor ref(&db);
  VectorizedEngine vec(&db);

  WhereClause empty;
  auto a = ref.MatchRows(fact, empty);
  auto b = vec.MatchRows(fact, empty);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);

  WhereClause w;
  w.predicates.push_back(
      ValuePred(fact, 1, CompareOp::kEq, Value(int64_t{4})));
  a = ref.MatchRows(fact, w);
  b = vec.MatchRows(fact, w);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

// ------------------------------------------------------------ hash table

TEST(Int64JoinHashTableTest, DuplicatesChainInInsertionOrder) {
  vexec::Int64JoinHashTable ht(8);
  ht.Insert(42, 1);
  ht.Insert(7, 2);
  ht.Insert(42, 3);
  ht.Insert(42, 5);
  std::vector<uint32_t> rows;
  for (int32_t e = ht.Find(42); e >= 0; e = ht.Next(e)) {
    rows.push_back(ht.Row(e));
  }
  EXPECT_EQ(rows, (std::vector<uint32_t>{1, 3, 5}));
  EXPECT_LT(ht.Find(999), 0);
}

TEST(Int64JoinHashTableTest, DenseModeMatchesSparseSemantics) {
  // Sequential-PK build sides take the direct-address mode; chain order
  // and miss behavior must be indistinguishable from the sparse table.
  EXPECT_TRUE(vexec::Int64JoinHashTable::DenseRangeUsable(100, 104, 5));
  EXPECT_FALSE(vexec::Int64JoinHashTable::DenseRangeUsable(0, 1 << 20, 5));
  vexec::Int64JoinHashTable dense(100, 104, 5);
  vexec::Int64JoinHashTable sparse(5);
  EXPECT_TRUE(dense.dense());
  EXPECT_FALSE(sparse.dense());
  for (auto* ht : {&dense, &sparse}) {
    ht->Insert(102, 1);
    ht->Insert(100, 2);
    ht->Insert(102, 3);
    ht->Insert(104, 4);
  }
  for (int64_t key : {99, 100, 101, 102, 103, 104, 105, 1000}) {
    std::vector<uint32_t> a, b;
    for (int32_t e = dense.Find(key); e >= 0; e = dense.Next(e)) {
      a.push_back(dense.Row(e));
    }
    for (int32_t e = sparse.Find(key); e >= 0; e = sparse.Next(e)) {
      b.push_back(sparse.Row(e));
    }
    EXPECT_EQ(a, b) << "key " << key;
  }
}

// ------------------------------------------------------------ morsel pool

TEST(MorselPoolTest, RunsEveryMorselExactlyOnce) {
  for (int workers : {1, 2, 4}) {
    MorselPool pool(workers);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.Run(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "morsel " << i;
    }
  }
}

TEST(MorselPoolTest, ReusableAcrossJobsAndZeroMorsels) {
  MorselPool pool(3);
  pool.Run(0, [&](size_t) { FAIL() << "no morsels to run"; });
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.Run(64, [&](size_t i) { sum.fetch_add(i + 1); });
  }
  EXPECT_EQ(sum.load(), 20ull * (64ull * 65ull / 2ull));
}

// ------------------------------------------------------ mutation testing

TEST(VexecMutationTest, HashCollisionBugDiverges) {
  // Probe keys absent from the build side: correct joins produce zero
  // matches, but with key rechecks disabled any probe whose home slot is
  // occupied (7 of 16 slots here, across 64 distinct probe keys) accepts
  // the foreign entry — so the buggy engine must overcount.
  std::vector<int64_t> keys;
  for (int i = 0; i < 64; ++i) keys.push_back(1000 + i);
  std::vector<int64_t> dims;
  for (int i = 0; i < 7; ++i) dims.push_back(i);
  Database db = BuildJoinDb(keys, dims);
  const int dim = db.catalog().FindTable("Dim");
  const int fact = db.catalog().FindTable("Fact");
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {fact, dim};
  SelectItem item;
  item.column = {fact, 0};
  ast.select->items.push_back(std::move(item));

  Executor ref(&db);
  VectorizedEngine buggy(&db, VexecOptions{.inject = InjectBug::kHashCollision});
  auto a = ref.Cardinality(ast);
  auto b = buggy.Cardinality(ast);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b) << "planted hash-collision bug was not observable";

  // The lockstep oracle must catch the same plant.
  OracleOptions opts;
  opts.check_vexec = true;
  opts.inject_vexec_bug = InjectBug::kHashCollision;
  DifferentialOracle oracle(&db, opts);
  auto v = oracle.Check(ast);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "vexec");
}

TEST(VexecMutationTest, SelVectorOffByOneBugDiverges) {
  Database db = BuildJoinDb(/*fact_keys=*/{1, 1, 1, 1}, /*dim_ids=*/{1});
  const int fact = db.catalog().FindTable("Fact");
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>(SelectAll(fact));
  ast.select->where.predicates.push_back(
      ValuePred(fact, 1, CompareOp::kEq, Value(int64_t{1})));

  Executor ref(&db);
  VectorizedEngine buggy(
      &db, VexecOptions{.inject = InjectBug::kSelVectorOffByOne});
  auto a = ref.Cardinality(ast);
  auto b = buggy.Cardinality(ast);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 4u);
  EXPECT_EQ(*b, 3u);  // the batch's final tuple is dropped

  OracleOptions opts;
  opts.inject_vexec_bug = InjectBug::kSelVectorOffByOne;
  DifferentialOracle oracle(&db, opts);
  auto v = oracle.Check(ast);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "vexec");
}

TEST(VexecMutationTest, CleanEnginePassesOracle) {
  Database db = BuildScoreStudentDb();
  const int score = db.catalog().FindTable("Score");
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>(SelectAll(score, /*item_col=*/3));
  ast.select->where.predicates.push_back(
      ValuePred(score, 3, CompareOp::kGe, Value(80.0)));
  DifferentialOracle oracle(&db);
  auto v = oracle.Check(ast);
  EXPECT_FALSE(v.has_value()) << v->oracle << ": " << v->detail;
}

// ------------------------------------------------ work-meter regressions

TEST(ReferenceWorkMeterTest, BaseScanIsCharged) {
  Database db = BuildScoreStudentDb();  // Score has 30 rows
  const int score = db.catalog().FindTable("Score");
  SelectQuery q = SelectAll(score);
  ReferenceEvaluator tight(&db, /*max_work=*/10);
  auto r = tight.EvalSelect(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  ReferenceEvaluator loose(&db, /*max_work=*/1 << 20);
  auto ok = loose.EvalSelect(q);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->cardinality, 30u);
}

TEST(ReferenceWorkMeterTest, EmptyWhereCountMatchingIsCharged) {
  Database db = BuildScoreStudentDb();
  const int score = db.catalog().FindTable("Score");
  QueryAst ast;
  ast.type = QueryType::kDelete;
  ast.del = std::make_unique<DeleteQuery>();
  ast.del->table_idx = score;  // empty WHERE: every row matches
  ReferenceEvaluator tight(&db, /*max_work=*/5);
  auto r = tight.EvalAst(ast);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  ReferenceEvaluator loose(&db, /*max_work=*/1 << 20);
  auto ok = loose.EvalAst(ast);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 30u);
}

TEST(ReferenceWorkMeterTest, GroupingIsCharged) {
  Database db = BuildScoreStudentDb();
  const int score = db.catalog().FindTable("Score");
  SelectQuery q = SelectAll(score, /*item_col=*/3);
  q.items[0].agg = AggFunc::kAvg;
  q.group_by.push_back({score, 2});
  // Budget covers the base scan (30) + empty-WHERE units (30) but not the
  // additional per-kept-tuple aggregation charge.
  ReferenceEvaluator tight(&db, /*max_work=*/60);
  auto r = tight.EvalSelect(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ExecStatsTest, AddSaturatesAtMaxRows) {
  ExecStats a;
  a.rows_scanned = ExecStats::kMaxRows - 1.0;
  ExecStats b;
  b.rows_scanned = ExecStats::kMaxRows;
  b.rows_joined = 5.0;
  a.Add(b);
  EXPECT_EQ(a.rows_scanned, ExecStats::kMaxRows);
  EXPECT_EQ(a.rows_joined, 5.0);
  EXPECT_EQ(ExecStats::Clamp(1e306), ExecStats::kMaxRows);
  EXPECT_EQ(ExecStats::Clamp(123.0), 123.0);
}

// ------------------------------------------------- differential sweeps

class VexecDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(VexecDifferentialTest, MatchesReferenceOnBundledDataset) {
  auto db = BuildNamedDatabase(GetParam(), /*scale=*/0.05);
  ASSERT_TRUE(db.ok());
  VocabularyOptions vo;
  vo.values_per_column = 8;
  auto vocab = Vocabulary::Build(*db, vo);
  ASSERT_TRUE(vocab.ok());
  Executor ref(&*db);
  VectorizedEngine serial(&*db);
  VectorizedEngine parallel(&*db, VexecOptions{.workers = 3});
  QueryProfile profile = QueryProfile::Full();
  GenerationFsm fsm(&*db, &*vocab, profile);
  Rng rng(77);
  const char* exhaustive = std::getenv("LSG_EXHAUSTIVE_VEXEC");
  const int episodes =
      exhaustive != nullptr && exhaustive[0] == '1' ? 2000 : 150;
  for (int i = 0; i < episodes; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    const std::string sql = RenderSql(*ast, db->catalog());
    auto a = ref.Cardinality(*ast);
    auto sb = serial.Cardinality(*ast);
    auto pb = parallel.Cardinality(*ast);
    ASSERT_EQ(a.ok(), sb.ok()) << sql;
    ASSERT_EQ(a.ok(), pb.ok()) << sql;
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), StatusCode::kOutOfRange) << sql;
      continue;
    }
    EXPECT_EQ(*a, *sb) << sql;
    EXPECT_EQ(*a, *pb) << sql;
    if (ast->type == QueryType::kSelect) {
      auto ra = ref.ExecuteSelect(*ast->select, true);
      auto rb = serial.ExecuteSelect(*ast->select, true);
      ASSERT_TRUE(ra.ok() && rb.ok()) << sql;
      ASSERT_EQ(ra->first_column.size(), rb->first_column.size()) << sql;
      for (size_t v = 0; v < ra->first_column.size(); ++v) {
        const Value& va = ra->first_column[v];
        const Value& vb = rb->first_column[v];
        ASSERT_EQ(va.is_null(), vb.is_null()) << sql;
        if (!va.is_null()) {
          ASSERT_EQ(va.Compare(vb), 0) << sql;
        }
      }
      EXPECT_EQ(ra->stats.rows_scanned, rb->stats.rows_scanned) << sql;
      EXPECT_EQ(ra->stats.rows_joined, rb->stats.rows_joined) << sql;
      EXPECT_EQ(ra->stats.rows_probed, rb->stats.rows_probed) << sql;
      EXPECT_EQ(ra->stats.rows_output, rb->stats.rows_output) << sql;
    }
    if (ast->type == QueryType::kUpdate || ast->type == QueryType::kDelete) {
      const int t = ast->type == QueryType::kUpdate
                        ? ast->update->table_idx
                        : ast->del->table_idx;
      const WhereClause& w = ast->type == QueryType::kUpdate
                                 ? ast->update->where
                                 : ast->del->where;
      auto ma = ref.MatchRows(t, w);
      auto mb = serial.MatchRows(t, w);
      ASSERT_TRUE(ma.ok() && mb.ok()) << sql;
      EXPECT_EQ(*ma, *mb) << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, VexecDifferentialTest,
                         ::testing::Values("score", "tpch", "job",
                                           "xuetang"));

// ------------------------------------------------------ backend factory

TEST(BackendFactoryTest, BuildsBothBackends) {
  Database db = BuildScoreStudentDb();
  auto ref = vexec::MakeBackend(ExecutionBackendKind::kReference, &db);
  auto vec = vexec::MakeBackend(ExecutionBackendKind::kVectorized, &db);
  EXPECT_STREQ(ref->name(), "reference");
  EXPECT_STREQ(vec->name(), "vectorized");
  EXPECT_EQ(ref->database(), &db);
  EXPECT_EQ(vec->database(), &db);
  const int score = db.catalog().FindTable("Score");
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>(SelectAll(score));
  auto a = ref->Cardinality(ast);
  auto b = vec->Cardinality(ast);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, 30u);
}

}  // namespace
}  // namespace lsg
