#include <gtest/gtest.h>

#include <cmath>

#include "exec/executor.h"
#include "optimizer/cardinality_estimator.h"
#include "optimizer/column_stats.h"
#include "optimizer/cost_model.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : db_(BuildScoreStudentDb()), stats_(DatabaseStats::Collect(db_)) {}
  int score() { return db_.catalog().FindTable("Score"); }
  int student() { return db_.catalog().FindTable("Student"); }
  Database db_;
  DatabaseStats stats_;
};

TEST_F(StatsTest, RowCounts) {
  EXPECT_EQ(stats_.table_rows[score()], 30u);
  EXPECT_EQ(stats_.table_rows[student()], 10u);
}

TEST_F(StatsTest, NdvAndRange) {
  const ColumnStats& grade = stats_.at({score(), 3});
  EXPECT_EQ(grade.ndv, 30u);
  EXPECT_DOUBLE_EQ(grade.min, 60.0);
  EXPECT_DOUBLE_EQ(grade.max, 99.0);
  EXPECT_NEAR(grade.mean, 79.5, 1e-9);
  const ColumnStats& course = stats_.at({score(), 2});
  EXPECT_EQ(course.ndv, 3u);
}

TEST_F(StatsTest, NullCounting) {
  Column c(DataType::kInt64);
  ASSERT_TRUE(c.Append(Value(int64_t{1})).ok());
  c.AppendNull();
  c.AppendNull();
  ColumnStats s = StatsCollector().Analyze(c);
  EXPECT_EQ(s.row_count, 3u);
  EXPECT_EQ(s.null_count, 2u);
  EXPECT_EQ(s.ndv, 1u);
}

TEST_F(StatsTest, McvFrequencies) {
  const ColumnStats& course = stats_.at({score(), 2});
  ASSERT_EQ(course.mcv_values.size(), 3u);
  double total = 0.0;
  for (double f : course.mcv_freqs) {
    EXPECT_NEAR(f, 1.0 / 3.0, 1e-9);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(StatsTest, EqSelectivityMcvExact) {
  const ColumnStats& course = stats_.at({score(), 2});
  EXPECT_NEAR(course.EqSelectivity(Value("db")), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(course.EqSelectivity(Value("nope")), 0.0, 0.05);
}

TEST_F(StatsTest, EqSelectivityOutOfRangeNumericIsZero) {
  const ColumnStats& grade = stats_.at({score(), 3});
  EXPECT_DOUBLE_EQ(grade.EqSelectivity(Value(500.0)), 0.0);
  EXPECT_DOUBLE_EQ(grade.EqSelectivity(Value(-5.0)), 0.0);
}

TEST_F(StatsTest, LtSelectivityMonotone) {
  const ColumnStats& grade = stats_.at({score(), 3});
  double prev = -1.0;
  for (double v : {55.0, 65.0, 75.0, 85.0, 95.0, 105.0}) {
    double s = grade.LtSelectivity(Value(v));
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(grade.LtSelectivity(Value(55.0)), 0.0);
  EXPECT_DOUBLE_EQ(grade.LtSelectivity(Value(120.0)), 1.0);
}

TEST_F(StatsTest, LtSelectivityNearTruth) {
  const ColumnStats& grade = stats_.at({score(), 3});
  // True fraction below 70 is 8/30.
  EXPECT_NEAR(grade.LtSelectivity(Value(70.0)), 8.0 / 30.0, 0.08);
}

TEST_F(StatsTest, LtSelectivityBoundaryValues) {
  // A uniform 0..99 column: every histogram quantity is exact, so the
  // boundary cases pin precise values rather than tolerances.
  Column c(DataType::kInt64);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(c.Append(Value(int64_t{i})).ok());
  }
  ColumnStats s = StatsCollector().Analyze(c);
  ASSERT_GE(s.histogram_bounds.size(), 3u);

  // x == min: nothing sorts strictly below the minimum.
  EXPECT_DOUBLE_EQ(s.LtSelectivity(Value(0.0)), 0.0);

  // x exactly on an interior bound b: the CDF is b/buckets (binary search
  // must agree with the linear scan it replaced).
  const double buckets = static_cast<double>(s.histogram_bounds.size() - 1);
  for (size_t b = 1; b + 1 < s.histogram_bounds.size(); ++b) {
    EXPECT_DOUBLE_EQ(s.LtSelectivity(Value(s.histogram_bounds[b])),
                     static_cast<double>(b) / buckets)
        << "bound index " << b;
  }

  // x == max: one row equals the max, so `<` must leave room for it —
  // interpolation used to claim 1.0 here, pushing `<=` past the non-null
  // ceiling and `>` below zero before clamping.
  const double eq_max = s.EqSelectivity(Value(99.0));
  EXPECT_GT(eq_max, 0.0);
  EXPECT_DOUBLE_EQ(s.LtSelectivity(Value(99.0)), 1.0 - eq_max);
  EXPECT_DOUBLE_EQ(s.Selectivity(CompareOp::kLe, Value(99.0)), 1.0);
  // kGt/kGe subtract the rounded Lt result, so allow one-ulp residue.
  EXPECT_NEAR(s.Selectivity(CompareOp::kGt, Value(99.0)), 0.0, 1e-12);
  EXPECT_NEAR(s.Selectivity(CompareOp::kGe, Value(99.0)), eq_max, 1e-12);

  // Above the max the whole non-null mass is below x.
  EXPECT_DOUBLE_EQ(s.LtSelectivity(Value(100.0)), 1.0);
}

TEST_F(StatsTest, SelectivityOperatorAlgebra) {
  const ColumnStats& grade = stats_.at({score(), 3});
  Value v(80.0);
  double lt = grade.Selectivity(CompareOp::kLt, v);
  double eq = grade.Selectivity(CompareOp::kEq, v);
  double gt = grade.Selectivity(CompareOp::kGt, v);
  EXPECT_NEAR(lt + eq + gt, 1.0, 1e-6);
  EXPECT_NEAR(grade.Selectivity(CompareOp::kLe, v), lt + eq, 1e-9);
  EXPECT_NEAR(grade.Selectivity(CompareOp::kGe, v), gt + eq, 1e-9);
  EXPECT_NEAR(grade.Selectivity(CompareOp::kNe, v), 1.0 - eq, 1e-6);
}

TEST_F(StatsTest, SelectivityInUnitInterval) {
  const ColumnStats& grade = stats_.at({score(), 3});
  for (int op = 0; op < static_cast<int>(CompareOp::kNumOps); ++op) {
    for (double v : {-100.0, 60.0, 79.5, 99.0, 1000.0}) {
      double s = grade.Selectivity(static_cast<CompareOp>(op), Value(v));
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST_F(StatsTest, HistogramBoundsCoverDomain) {
  const ColumnStats& grade = stats_.at({score(), 3});
  ASSERT_GE(grade.histogram_bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(grade.histogram_bounds.front(), 60.0);
  EXPECT_DOUBLE_EQ(grade.histogram_bounds.back(), 99.0);
  for (size_t i = 1; i < grade.histogram_bounds.size(); ++i) {
    EXPECT_LE(grade.histogram_bounds[i - 1], grade.histogram_bounds[i]);
  }
}

// ------------------------------------------------------------- estimator

class EstimatorTest : public StatsTest {
 protected:
  EstimatorTest() : est_(&db_, &stats_), exec_(&db_) {}
  CardinalityEstimator est_;
  Executor exec_;
};

TEST_F(EstimatorTest, FullScanExact) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  EXPECT_DOUBLE_EQ(est_.EstimateSelect(q, nullptr), 30.0);
}

TEST_F(EstimatorTest, EqFilterNearTruth) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.column = {score(), 2};
  p.op = CompareOp::kEq;
  p.value = Value("db");
  q.where.predicates.push_back(std::move(p));
  EXPECT_NEAR(est_.EstimateSelect(q, nullptr), 10.0, 1.0);
}

TEST_F(EstimatorTest, FkJoinNearTruth) {
  SelectQuery q;
  q.tables = {score(), student()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  // |Score| * |Student| / max(ndv) = 30*10/10 = 30 (exact here).
  EXPECT_NEAR(est_.EstimateSelect(q, nullptr), 30.0, 1.0);
}

TEST_F(EstimatorTest, AggregateCollapsesToOne) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kMax, {score(), 3}});
  EXPECT_DOUBLE_EQ(est_.EstimateSelect(q, nullptr), 1.0);
}

TEST_F(EstimatorTest, GroupByUsesNdv) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 2}});
  q.group_by.push_back({score(), 2});
  EXPECT_NEAR(est_.EstimateSelect(q, nullptr), 3.0, 0.5);
}

TEST_F(EstimatorTest, HavingShrinksGroups) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 2}});
  q.group_by.push_back({score(), 2});
  double no_having = est_.EstimateSelect(q, nullptr);
  q.having = HavingClause{AggFunc::kCount, {score(), 3}, CompareOp::kGt,
                          Value(int64_t{3})};
  EXPECT_LT(est_.EstimateSelect(q, nullptr), no_having);
}

TEST_F(EstimatorTest, ScalarSubqueryEstimatesAggValue) {
  SelectQuery sub;
  sub.tables = {score()};
  sub.items.push_back({AggFunc::kAvg, {score(), 3}});
  Value v = est_.EstimateScalar(sub);
  ASSERT_TRUE(v.is_numeric());
  EXPECT_NEAR(v.AsNumber(), 79.5, 1e-6);

  sub.items[0].agg = AggFunc::kMax;
  EXPECT_NEAR(est_.EstimateScalar(sub).AsNumber(), 99.0, 1e-6);
  sub.items[0].agg = AggFunc::kCount;
  EXPECT_NEAR(est_.EstimateScalar(sub).AsNumber(), 30.0, 1e-6);
}

TEST_F(EstimatorTest, InSubquerySelectivity) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.kind = PredicateKind::kInSub;
  p.column = {score(), 1};
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {student()};
  p.subquery->items.push_back({AggFunc::kNone, {student(), 0}});
  q.where.predicates.push_back(std::move(p));
  // All 10 student ids covered -> selectivity ~1 -> ~30 rows.
  EXPECT_NEAR(est_.EstimateSelect(q, nullptr), 30.0, 3.0);
}

TEST_F(EstimatorTest, ExistsSelectivityBoolean) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.kind = PredicateKind::kExistsSub;
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {student()};
  p.subquery->items.push_back({AggFunc::kNone, {student(), 0}});
  q.where.predicates.push_back(std::move(p));
  // Subquery has ~10 rows -> EXISTS true -> all rows kept.
  EXPECT_NEAR(est_.EstimateSelect(q, nullptr), 30.0, 1.0);
}

TEST_F(EstimatorTest, DmlEstimates) {
  QueryAst upd;
  upd.type = QueryType::kUpdate;
  upd.update = std::make_unique<UpdateQuery>();
  upd.update->table_idx = score();
  Predicate p;
  p.column = {score(), 2};
  p.op = CompareOp::kEq;
  p.value = Value("db");
  upd.update->where.predicates.push_back(std::move(p));
  EXPECT_NEAR(est_.EstimateCardinality(upd), 10.0, 1.0);

  QueryAst ins;
  ins.type = QueryType::kInsert;
  ins.insert = std::make_unique<InsertQuery>();
  ins.insert->table_idx = student();
  ins.insert->values = {Value(int64_t{1}), Value("a"), Value("F")};
  EXPECT_DOUBLE_EQ(est_.EstimateCardinality(ins), 1.0);
}

TEST_F(EstimatorTest, DetailStagesConsistent) {
  SelectQuery q;
  q.tables = {score(), student()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.column = {score(), 3};
  p.op = CompareOp::kLt;
  p.value = Value(70.0);
  q.where.predicates.push_back(std::move(p));
  EstimateDetail d;
  double out = est_.EstimateSelect(q, &d);
  EXPECT_DOUBLE_EQ(d.base_rows, 40.0);
  EXPECT_GT(d.join_output, 0.0);
  EXPECT_LE(d.after_where, d.join_output);
  EXPECT_DOUBLE_EQ(d.output_rows, out);
}

TEST_F(EstimatorTest, CrossJoinChainIsCapped) {
  // Three tables with no join edge between them: the estimator falls back
  // to a cross product, which must clamp at kMaxJoinRows instead of
  // running away toward inf on long chains.
  Database db;
  for (const char* name : {"A", "B", "C"}) {
    TableSchema s(name);
    ASSERT_TRUE(s.AddColumn({"id", DataType::kInt64, false, false}).ok());
    Table t(std::move(s));
    ASSERT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
    ASSERT_TRUE(db.AddTable(std::move(t)).ok());
  }
  DatabaseStats stats = DatabaseStats::Collect(db);
  // Simulate large tables: only the row counts matter to the join fold.
  for (uint64_t& rows : stats.table_rows) rows = 100000000;  // 1e8
  CardinalityEstimator est(&db, &stats);

  SelectQuery q;
  q.tables = {0, 1};
  q.items.push_back({AggFunc::kNone, {0, 0}});
  // 1e8 * 1e8 = 1e16 exceeds the cap already at two tables.
  EXPECT_DOUBLE_EQ(est.EstimateSelect(q, nullptr),
                   CardinalityEstimator::kMaxJoinRows);
  q.tables.push_back(2);
  double three = est.EstimateSelect(q, nullptr);
  EXPECT_TRUE(std::isfinite(three));
  EXPECT_DOUBLE_EQ(three, CardinalityEstimator::kMaxJoinRows);
}

TEST_F(EstimatorTest, ScalarSubqueryFallbackIsOperatorDependent) {
  // A bare string-column subquery has no estimable scalar value, so the
  // predicate falls back to default selectivities — which must depend on
  // the operator (= is far more selective than < which beats <>), not be
  // a flat constant.
  auto rows_with_op = [&](CompareOp op) {
    SelectQuery q;
    q.tables = {score()};
    q.items.push_back({AggFunc::kNone, {score(), 0}});
    Predicate p;
    p.kind = PredicateKind::kScalarSub;
    p.column = {score(), 3};
    p.op = op;
    p.subquery = std::make_unique<SelectQuery>();
    p.subquery->tables = {student()};
    p.subquery->items.push_back({AggFunc::kNone, {student(), 1}});  // Name
    q.where.predicates.push_back(std::move(p));
    return est_.EstimateSelect(q, nullptr);
  };
  const double eq_rows = rows_with_op(CompareOp::kEq);
  const double lt_rows = rows_with_op(CompareOp::kLt);
  const double ne_rows = rows_with_op(CompareOp::kNe);
  EXPECT_LT(eq_rows, lt_rows);
  EXPECT_LT(lt_rows, ne_rows);
  EXPECT_DOUBLE_EQ(eq_rows, 30.0 * 0.005);
  EXPECT_DOUBLE_EQ(ne_rows, 30.0 * (1.0 - 0.005));
}

/// Property sweep: estimates stay within a bounded q-error of the truth for
/// single-predicate range queries across the whole grade domain.
class QErrorSweep : public EstimatorTest,
                    public ::testing::WithParamInterface<int> {};

TEST_P(QErrorSweep, RangePredicateQError) {
  double threshold = 58.0 + GetParam() * 4.0;
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.column = {score(), 3};
  p.op = CompareOp::kLt;
  p.value = Value(threshold);
  q.where.predicates.push_back(std::move(p));
  double est = est_.EstimateSelect(q, nullptr);
  auto truth = exec_.ExecuteSelect(q, false);
  ASSERT_TRUE(truth.ok());
  double t = static_cast<double>(truth->cardinality);
  double qerr = std::max((est + 1.0) / (t + 1.0), (t + 1.0) / (est + 1.0));
  EXPECT_LT(qerr, 3.0) << "threshold=" << threshold << " est=" << est
                       << " truth=" << t;
}

INSTANTIATE_TEST_SUITE_P(GradeThresholds, QErrorSweep,
                         ::testing::Range(0, 12));

// ------------------------------------------------------------- cost model

class CostModelTest : public EstimatorTest {
 protected:
  CostModelTest() : cost_(&est_) {}
  CostModel cost_;
};

TEST_F(CostModelTest, ScanCostPositiveAndMonotoneInRows) {
  SelectQuery small;
  small.tables = {student()};
  small.items.push_back({AggFunc::kNone, {student(), 0}});
  SelectQuery big;
  big.tables = {score()};
  big.items.push_back({AggFunc::kNone, {score(), 0}});
  EXPECT_GT(cost_.SelectCost(small), 0.0);
  EXPECT_GT(cost_.SelectCost(big), cost_.SelectCost(small));
}

TEST_F(CostModelTest, JoinCostsMoreThanScan) {
  SelectQuery scan;
  scan.tables = {score()};
  scan.items.push_back({AggFunc::kNone, {score(), 0}});
  double scan_cost = cost_.SelectCost(scan);
  scan.tables.push_back(student());
  EXPECT_GT(cost_.SelectCost(scan), scan_cost);
}

TEST_F(CostModelTest, SubqueryAddsCost) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  double base = cost_.SelectCost(q);
  Predicate p;
  p.kind = PredicateKind::kScalarSub;
  p.column = {score(), 3};
  p.op = CompareOp::kGt;
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {score()};
  p.subquery->items.push_back({AggFunc::kAvg, {score(), 3}});
  q.where.predicates.push_back(std::move(p));
  EXPECT_GT(cost_.SelectCost(q), base);
}

TEST_F(CostModelTest, DmlCostScalesWithAffectedRows) {
  QueryAst narrow;
  narrow.type = QueryType::kDelete;
  narrow.del = std::make_unique<DeleteQuery>();
  narrow.del->table_idx = score();
  Predicate p;
  p.column = {score(), 3};
  p.op = CompareOp::kLt;
  p.value = Value(61.0);
  narrow.del->where.predicates.push_back(std::move(p));

  QueryAst wide;
  wide.type = QueryType::kDelete;
  wide.del = std::make_unique<DeleteQuery>();
  wide.del->table_idx = score();
  EXPECT_GT(cost_.EstimateCost(wide), cost_.EstimateCost(narrow));
}

TEST_F(CostModelTest, TrueCostFromMeasuredStats) {
  SelectQuery q;
  q.tables = {score(), student()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  auto r = exec_.ExecuteSelect(q, false);
  ASSERT_TRUE(r.ok());
  double tc = cost_.TrueCost(r->stats, static_cast<double>(r->cardinality));
  EXPECT_GT(tc, 0.0);
  // Same order of magnitude as the estimate (both priced by one model).
  double est_cost = cost_.SelectCost(q);
  EXPECT_LT(std::abs(std::log10(tc / est_cost)), 1.0);
}

TEST_F(CostModelTest, InsertValuesIsCheap) {
  QueryAst ins;
  ins.type = QueryType::kInsert;
  ins.insert = std::make_unique<InsertQuery>();
  ins.insert->table_idx = student();
  ins.insert->values = {Value(int64_t{1}), Value("a"), Value("F")};
  SelectQuery scan;
  scan.tables = {score()};
  scan.items.push_back({AggFunc::kNone, {score(), 0}});
  EXPECT_LT(cost_.EstimateCost(ins), cost_.SelectCost(scan));
}

}  // namespace
}  // namespace lsg
