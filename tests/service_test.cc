// Tests for the concurrent generation service (src/service/): queue
// backpressure, constraint bucketing, registry hit/dedup/LRU-spill
// behavior, worker-pool end-to-end runs, drain-on-shutdown, and
// concurrency-1 reproducibility.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics_registry.h"
#include "service/bounded_queue.h"
#include "service/constraint_key.h"
#include "service/generation_service.h"
#include "service/model_registry.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// Small but real training config: enough epochs that models actually
// learn to emit complete queries, small enough to keep the suite quick.
LearnedSqlGenOptions FastOptions(uint64_t seed = 2024) {
  LearnedSqlGenOptions opts;
  opts.train_epochs = 8;
  opts.trainer.batch_size = 4;
  opts.attempts_factor = 40;
  opts.seed = seed;
  return opts;
}

Constraint CardPoint(double v) {
  return Constraint::Point(ConstraintMetric::kCardinality, v);
}
Constraint CardRange(double lo, double hi) {
  return Constraint::Range(ConstraintMetric::kCardinality, lo, hi);
}

std::string TempDir(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() / ("lsg_service_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueueTest, TryPushFailsFastWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // backpressure: full
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_TRUE(q.TryPush(3));  // slot freed
  EXPECT_EQ(q.high_water_mark(), 2u);
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerFreesSlot) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseDrainsAcceptedItemsAndRejectsProducers) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));     // rejected after close
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.Pop().value(), 1);  // accepted items still drain
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // closed + empty
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  empty.Close();
  producer.join();
  consumer.join();
}

// ---------------------------------------------------------- ConstraintKey

TEST(ConstraintKeyTest, BucketsSplitByMetricKindAndMagnitude) {
  EXPECT_EQ(BucketOf(CardPoint(100)), BucketOf(CardPoint(103)));
  EXPECT_FALSE(BucketOf(CardPoint(100)) == BucketOf(CardPoint(1000)));
  EXPECT_FALSE(BucketOf(CardPoint(100)) ==
               BucketOf(Constraint::Point(ConstraintMetric::kCost, 100)));
  EXPECT_FALSE(BucketOf(CardPoint(100)) == BucketOf(CardRange(100, 100)));
  EXPECT_EQ(BucketOf(CardRange(50, 200)), BucketOf(CardRange(51, 205)));
  EXPECT_FALSE(BucketOf(CardRange(50, 200)) == BucketOf(CardRange(50, 800)));
}

TEST(ConstraintKeyTest, ToStringIsFilesystemSafe) {
  std::string s = BucketOf(CardRange(50, 200)).ToString();
  EXPECT_EQ(s.find('/'), std::string::npos);
  EXPECT_EQ(s.find(' '), std::string::npos);
  EXPECT_NE(s.find("card-range"), std::string::npos);
  // Distinct buckets must map to distinct spill filenames.
  EXPECT_NE(s, BucketOf(CardRange(50, 800)).ToString());
}

// ---------------------------------------------------------- ModelRegistry

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : db_(BuildScoreStudentDb()) {}
  Database db_;
  ServiceMetrics metrics_;
};

TEST_F(RegistryTest, SecondRequestForSameBucketIsAHitWithoutRetraining) {
  ModelRegistry::Options ro;
  ro.capacity = 4;
  ModelRegistry registry(&db_, FastOptions(), ro, &metrics_);

  auto first = registry.Acquire(CardRange(5, 50), /*train_seed=*/1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(metrics_.trainings.Value(), 1u);

  // Same bucket (slightly different numbers): served from cache, and the
  // train-count metric proves no retraining happened.
  auto second = registry.Acquire(CardRange(5, 51), /*train_seed=*/2);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->entry.get(), first->entry.get());
  EXPECT_EQ(metrics_.trainings.Value(), 1u);
  EXPECT_EQ(metrics_.cache_hits.Value(), 1u);
  EXPECT_EQ(metrics_.cache_misses.Value(), 1u);
}

TEST_F(RegistryTest, ConcurrentRequestsForOneBucketTrainOnce) {
  ModelRegistry::Options ro;
  ro.capacity = 4;
  ModelRegistry registry(&db_, FastOptions(), ro, &metrics_);

  constexpr int kThreads = 4;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto acquired = registry.Acquire(CardRange(5, 50), 100 + t);
      if (acquired.ok() && acquired->entry->gen != nullptr) ++ok_count;
    });
  }
  for (auto& t : threads) t.join();

  // Two threads, one bucket, one training run — dedup'ed via the shared
  // entry; everyone still gets a usable model.
  EXPECT_EQ(ok_count.load(), kThreads);
  EXPECT_EQ(metrics_.trainings.Value(), 1u);
  EXPECT_EQ(metrics_.cache_misses.Value(), 1u);
  EXPECT_EQ(metrics_.cache_hits.Value(),
            static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(registry.size(), 1u);
}

TEST_F(RegistryTest, EvictedModelWarmStartsFromDisk) {
  ModelRegistry::Options ro;
  ro.capacity = 1;
  ro.spill_dir = TempDir("spill");
  ModelRegistry registry(&db_, FastOptions(), ro, &metrics_);

  const Constraint a = CardRange(5, 50);
  const Constraint b = CardPoint(10);

  ASSERT_TRUE(registry.Acquire(a, 1).ok());
  EXPECT_EQ(metrics_.trainings.Value(), 1u);

  // B overflows the single-model cache: A is spilled to disk and evicted.
  ASSERT_TRUE(registry.Acquire(b, 2).ok());
  EXPECT_EQ(metrics_.trainings.Value(), 2u);
  EXPECT_EQ(metrics_.evictions.Value(), 1u);
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_TRUE(std::filesystem::exists(registry.SpillPathFor(a)));

  // Re-requesting A warm-starts from the spill file instead of retraining,
  // and the restored model generates.
  auto again = registry.Acquire(a, 3);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->warm_start);
  EXPECT_EQ(metrics_.trainings.Value(), 2u);  // no third training
  EXPECT_EQ(metrics_.disk_warm_starts.Value(), 1u);
  {
    MutexLock lock(&again->entry->mu);
    auto report = again->entry->gen->GenerateBatch(3);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->attempts, 3);
  }
  std::filesystem::remove_all(ro.spill_dir);
}

TEST_F(RegistryTest, EvictionWithoutSpillDirDiscards) {
  ModelRegistry::Options ro;
  ro.capacity = 1;  // no spill_dir
  ModelRegistry registry(&db_, FastOptions(), ro, &metrics_);
  ASSERT_TRUE(registry.Acquire(CardRange(5, 50), 1).ok());
  ASSERT_TRUE(registry.Acquire(CardPoint(10), 2).ok());
  EXPECT_EQ(metrics_.evictions.Value(), 1u);
  // Re-request retrains (nothing on disk to warm-start from).
  ASSERT_TRUE(registry.Acquire(CardRange(5, 50), 3).ok());
  EXPECT_EQ(metrics_.trainings.Value(), 3u);
  EXPECT_EQ(metrics_.disk_warm_starts.Value(), 0u);
}

TEST_F(RegistryTest, EvictionSkipsBusyEntriesAndNeverBlocks) {
  // Regression test for the eviction TOCTOU fix: the old EvictIfNeeded
  // probed a candidate with a try-lock, released it, then took a
  // *blocking* lock to spill — a worker could start generating inside
  // that window (so an in-use model got spilled and evicted), and the
  // blocking re-lock could park the whole registry, registry_mu_ held,
  // behind a multi-second generation. The one-pass form probes and
  // spills under a single try-lock: a busy entry is skipped outright and
  // the map transiently exceeds capacity instead.
  ModelRegistry::Options ro;
  ro.capacity = 1;
  ro.spill_dir = TempDir("busy_spill");
  ModelRegistry registry(&db_, FastOptions(), ro, &metrics_);

  const Constraint a = CardRange(5, 50);
  const Constraint b = CardPoint(10);
  auto first = registry.Acquire(a, 1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Simulate a generation in flight exactly as GenerationService does: a
  // *worker thread* holds A's entry mutex around GenerateBatch while other
  // threads run Acquire. The busy lock must live on its own thread — the
  // registry orders registry_mu_ before ModelEntry::mu, so a thread that
  // calls Acquire may never already hold an entry mutex (doing it here on
  // the main thread would itself be the lock-order inversion this PR's
  // hierarchy forbids, and TSan's deadlock detector flags it).
  Mutex step_mu;
  CondVar step_cv;
  bool busy = false;
  bool release = false;
  std::thread holder([&] {
    first->entry->mu.Lock();
    {
      MutexLock lock(&step_mu);
      busy = true;
    }
    step_cv.NotifyAll();
    {
      MutexLock lock(&step_mu);
      while (!release) step_cv.Wait(step_mu);
    }
    first->entry->mu.Unlock();
  });
  {
    MutexLock lock(&step_mu);
    while (!busy) step_cv.Wait(step_mu);
  }
  // B overflows the single-slot cache while the only eviction candidate
  // is busy. Under the old blocking re-lock this Acquire could stall
  // until A quiesced; now it must complete, skipping A.
  auto second = registry.Acquire(b, 2);
  {
    MutexLock lock(&step_mu);
    release = true;
  }
  step_cv.NotifyAll();
  holder.join();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(metrics_.evictions.Value(), 0u);  // busy A was skipped...
  EXPECT_EQ(registry.size(), 2u);             // ...over capacity for now
  EXPECT_FALSE(std::filesystem::exists(registry.SpillPathFor(a)));

  // Once A quiesces, the next insertion evicts in LRU order — spilling
  // under the very try-lock that proved each candidate idle.
  ASSERT_TRUE(registry.Acquire(CardPoint(100000), 3).ok());
  EXPECT_EQ(metrics_.evictions.Value(), 2u);  // A and B, both idle now
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(std::filesystem::exists(registry.SpillPathFor(a)));
  EXPECT_TRUE(std::filesystem::exists(registry.SpillPathFor(b)));
  std::filesystem::remove_all(ro.spill_dir);
}

// ----------------------------------------------------- GenerationService

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : db_(BuildScoreStudentDb()) {}

  GenerationServiceOptions ServiceOptions(int workers) {
    GenerationServiceOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 32;
    opts.registry.capacity = 8;
    opts.gen = FastOptions();
    return opts;
  }

  Database db_;
};

TEST_F(ServiceTest, FourWorkersMixedConstraintsAllSucceed) {
  auto service = GenerationService::Create(&db_, ServiceOptions(4));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // >= 8 mixed constraints: card/cost, point/range, distinct magnitudes.
  std::vector<Constraint> constraints = {
      CardPoint(10),
      CardPoint(30),
      CardRange(5, 50),
      CardRange(20, 300),
      Constraint::Point(ConstraintMetric::kCost, 50),
      Constraint::Point(ConstraintMetric::kCost, 200),
      Constraint::Range(ConstraintMetric::kCost, 10, 100),
      Constraint::Range(ConstraintMetric::kCost, 100, 1000),
  };
  std::vector<std::future<GenerationResponse>> futures;
  for (size_t i = 0; i < constraints.size(); ++i) {
    GenerationRequest req;
    req.constraint = constraints[i];
    req.n = 3;
    req.batch = true;  // fixed attempt budget keeps the test bounded
    req.id = i + 1;
    futures.push_back((*service)->Submit(std::move(req)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    GenerationResponse r = futures[i].get();
    EXPECT_TRUE(r.status.ok())
        << "request " << i + 1 << ": " << r.status.ToString();
    EXPECT_EQ(r.id, i + 1);
    EXPECT_GE(r.worker, 0);
    EXPECT_EQ(r.report.attempts, 3);
  }
  ServiceMetricsSnapshot m = (*service)->Metrics();
  EXPECT_EQ(m.requests_completed, constraints.size());
  EXPECT_EQ(m.requests_failed, 0u);
  EXPECT_EQ(m.trainings, constraints.size());  // all distinct buckets
  (*service)->Shutdown();
}

TEST_F(ServiceTest, RepeatedConstraintIsServedFromCache) {
  auto service = GenerationService::Create(&db_, ServiceOptions(2));
  ASSERT_TRUE(service.ok());
  GenerationRequest req;
  req.constraint = CardRange(5, 50);
  req.n = 2;
  req.batch = true;

  GenerationResponse first = (*service)->SubmitAndWait(req);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);

  GenerationResponse second = (*service)->SubmitAndWait(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ((*service)->Metrics().trainings, 1u);
}

TEST_F(ServiceTest, ShutdownDrainsPendingRequests) {
  auto opts = ServiceOptions(1);  // one slow worker => requests pile up
  auto service = GenerationService::Create(&db_, opts);
  ASSERT_TRUE(service.ok());

  std::vector<std::future<GenerationResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    GenerationRequest req;
    req.constraint = CardRange(5, 50);  // one bucket: train once, then fast
    req.n = 2;
    req.batch = true;
    req.id = i + 1;
    futures.push_back((*service)->Submit(std::move(req)));
  }
  (*service)->Shutdown();  // must drain all five accepted requests

  for (auto& f : futures) {
    GenerationResponse r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
  EXPECT_EQ((*service)->Metrics().requests_completed, 5u);

  // After shutdown new submissions are rejected, not hung.
  GenerationRequest late;
  late.constraint = CardPoint(10);
  GenerationResponse r = (*service)->SubmitAndWait(std::move(late));
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*service)->Metrics().requests_rejected, 1u);
}

TEST_F(ServiceTest, TrySubmitSplitsRejectionCountersByReason) {
  auto opts = ServiceOptions(1);
  opts.queue_capacity = 1;  // one slot + one busy worker => quick overflow
  auto service = GenerationService::Create(&db_, opts);
  ASSERT_TRUE(service.ok());

  auto make_request = [this](uint64_t id) {
    GenerationRequest req;
    req.constraint = CardRange(5, 50);
    req.n = 1;
    req.batch = true;
    req.id = id;
    return req;
  };

  // Keep submitting until backpressure bites: with a single worker stuck
  // training the first request's model, the one-slot queue fills fast.
  std::vector<std::future<GenerationResponse>> accepted;
  bool saw_queue_full = false;
  for (uint64_t id = 1; id <= 64 && !saw_queue_full; ++id) {
    auto submitted = (*service)->TrySubmit(make_request(id));
    if (submitted.ok()) {
      accepted.push_back(std::move(*submitted));
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
      saw_queue_full = true;
    }
  }
  ASSERT_TRUE(saw_queue_full);  // 64 submits never outran a model training
  ServiceMetricsSnapshot mid = (*service)->Metrics();
  EXPECT_GE(mid.requests_rejected_queue_full, 1u);
  EXPECT_EQ(mid.requests_rejected_shutdown, 0u);

  (*service)->Shutdown();
  for (auto& f : accepted) {
    EXPECT_TRUE(f.get().status.ok());
  }

  // Post-shutdown TrySubmit is a terminal rejection, tallied separately.
  auto late = (*service)->TrySubmit(make_request(99));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);

  ServiceMetricsSnapshot m = (*service)->Metrics();
  EXPECT_EQ(m.requests_rejected_shutdown, 1u);
  EXPECT_EQ(m.requests_rejected,
            m.requests_rejected_queue_full + m.requests_rejected_shutdown);
}

TEST_F(ServiceTest, InvalidRequestFailsWithoutPoisoningTheService) {
  auto service = GenerationService::Create(&db_, ServiceOptions(2));
  ASSERT_TRUE(service.ok());
  GenerationRequest bad;
  bad.constraint = CardPoint(10);
  bad.n = 0;
  GenerationResponse r = (*service)->SubmitAndWait(std::move(bad));
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);

  GenerationRequest good;
  good.constraint = CardPoint(10);
  good.n = 2;
  good.batch = true;
  EXPECT_TRUE((*service)->SubmitAndWait(std::move(good)).status.ok());
  ServiceMetricsSnapshot m = (*service)->Metrics();
  EXPECT_EQ(m.requests_failed, 1u);
  EXPECT_EQ(m.requests_completed, 1u);
}

TEST_F(ServiceTest, ConcurrencyOneRunsAreReproducible) {
  auto run_once = [&] {
    auto service = GenerationService::Create(&db_, ServiceOptions(1));
    EXPECT_TRUE(service.ok());
    std::vector<std::string> sqls;
    for (int i = 0; i < 2; ++i) {
      GenerationRequest req;
      req.constraint = i == 0 ? CardRange(5, 50) : CardPoint(10);
      req.n = 3;
      req.batch = true;
      GenerationResponse r = (*service)->SubmitAndWait(std::move(req));
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      for (const GeneratedQuery& q : r.report.queries) {
        sqls.push_back(q.sql);
      }
    }
    return sqls;
  };
  // Same seed, same request order, one worker: byte-identical output.
  EXPECT_EQ(run_once(), run_once());
}

// The batching bugfix's contract: a request's output is a function of
// (seed, request) alone. The same request set must yield byte-identical
// SQL per request id across every (num_workers, max_batch) combination —
// worker placement, queue interleaving and batch composition all change
// between configs, none may leak into the samples.
TEST_F(ServiceTest, OutputsIndependentOfWorkerCountAndBatching) {
  // Two buckets so groups form and split; same-bucket mates coalesce.
  auto run_config = [&](int workers, int max_batch) {
    auto opts = ServiceOptions(workers);
    opts.max_batch = max_batch;
    auto service = GenerationService::Create(&db_, opts);
    EXPECT_TRUE(service.ok());
    std::vector<std::future<GenerationResponse>> futures;
    for (uint64_t id = 1; id <= 6; ++id) {
      GenerationRequest req;
      req.constraint = id % 2 == 0 ? CardRange(5, 50) : CardPoint(10);
      req.n = 2;
      req.batch = true;
      req.id = id;
      futures.push_back((*service)->Submit(std::move(req)));
    }
    std::map<uint64_t, std::vector<std::string>> by_id;
    for (auto& f : futures) {
      GenerationResponse r = f.get();
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      for (const GeneratedQuery& q : r.report.queries) {
        by_id[r.id].push_back(q.sql);
      }
    }
    return by_id;
  };
  const auto baseline = run_config(1, 1);  // unbatched, single worker
  EXPECT_EQ(baseline, run_config(1, 8));   // batching on
  EXPECT_EQ(baseline, run_config(4, 1));   // worker placement varies
  EXPECT_EQ(baseline, run_config(4, 8));   // both at once
}

// Workers record the mean decode width of every ragged batch they run in
// the service.batch_size histogram (next to queue_wait_ns for the p99).
TEST_F(ServiceTest, BatchSizeHistogramRecordsGroups) {
  obs::MetricsRegistry registry;
  auto opts = ServiceOptions(1);
  opts.max_batch = 8;
  opts.metrics_registry = &registry;
  auto service = GenerationService::Create(&db_, opts);
  ASSERT_TRUE(service.ok());
  GenerationRequest req;
  req.constraint = CardRange(5, 50);
  req.n = 1;
  req.batch = true;
  ASSERT_TRUE((*service)->SubmitAndWait(req).status.ok());
  (*service)->Shutdown();
  const obs::HistogramStats stats =
      registry.GetHistogram("service.batch_size").Snapshot();
  ASSERT_GE(stats.count, 1u);
  EXPECT_GE(stats.sum, static_cast<double>(stats.count));  // sizes >= 1
  EXPECT_GE(registry.GetHistogram("service.queue_wait_ns").count(), 1u);
}

}  // namespace
}  // namespace lsg
