// Tests for the observability subsystem (src/obs/): striped counters under
// contention, histogram percentile accuracy vs exact quantiles, span ring
// overflow behavior, Chrome trace export, episode-sink rotation, and the
// minimal JSON reader the tooling is built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "obs/episode_telemetry.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"

namespace lsg {
namespace obs {
namespace {

std::string TempPath(const std::string& name) {
  auto p = std::filesystem::temp_directory_path() / ("lsg_obs_" + name);
  std::filesystem::remove(p);
  return p.string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// ----------------------------------------------------------- MetricsRegistry

TEST(CounterTest, ExactUnderConcurrentIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  // Striping must lose nothing: the sum over stripes is exact once all
  // writers have joined.
  EXPECT_EQ(c.Value(), uint64_t{kThreads} * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(reg.Snapshot().counters.at("x"), 3u);
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("test.frac");
  g.Set(0.25);
  g.Set(-1.5);
  EXPECT_DOUBLE_EQ(g.Value(), -1.5);
  EXPECT_DOUBLE_EQ(reg.Snapshot().gauges.at("test.frac"), -1.5);
}

TEST(HistogramTest, BucketMappingIsMonotoneAndConsistent) {
  int prev = -1;
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull, 1000ull,
                     123456ull, 1ull << 32, ~0ull}) {
    int idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev);  // monotone in value
    EXPECT_LE(Histogram::BucketLowerBound(idx), v);
    if (idx + 1 < Histogram::kBuckets) {
      EXPECT_GT(Histogram::BucketLowerBound(idx + 1), v);
    }
    prev = idx;
  }
}

TEST(HistogramTest, PercentilesTrackExactQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("test.lat_ns");
  // Log-uniform latencies across 1us..10ms — the shape the histogram is
  // built for.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> exp_dist(3.0, 7.0);
  std::vector<uint64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<uint64_t>(std::pow(10.0, exp_dist(rng))));
  }
  for (uint64_t v : values) h.Record(v);
  std::sort(values.begin(), values.end());
  auto exact = [&](double q) {
    return static_cast<double>(
        values[static_cast<size_t>(q * (values.size() - 1))]);
  };
  HistogramStats s = h.Snapshot();
  EXPECT_EQ(s.count, values.size());
  // Buckets are ~9% wide and quantiles report the midpoint, so ~10%
  // relative error is the spec'd ceiling (plus a little sampling slack).
  EXPECT_NEAR(s.p50, exact(0.50), 0.12 * exact(0.50));
  EXPECT_NEAR(s.p95, exact(0.95), 0.12 * exact(0.95));
  EXPECT_NEAR(s.p99, exact(0.99), 0.12 * exact(0.99));
  double exact_mean = 0;
  for (uint64_t v : values) exact_mean += static_cast<double>(v);
  exact_mean /= static_cast<double>(values.size());
  EXPECT_NEAR(s.mean, exact_mean, 1e-6 * exact_mean);  // sum is exact
  EXPECT_GE(s.max, static_cast<double>(values.back()));
}

TEST(MetricsSnapshotTest, ToJsonParsesAndCarriesValues) {
  MetricsRegistry reg;
  reg.GetCounter("a.count").Add(7);
  reg.GetGauge("b.frac").Set(0.5);
  reg.GetHistogram("c.lat_ns").Record(1000);
  auto parsed = JsonParse(reg.Snapshot().ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->NumberOr("a.count", -1), 7.0);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("b.frac", -1), 0.5);
  EXPECT_DOUBLE_EQ(parsed->NumberOr("c.lat_ns.count", -1), 1.0);
  EXPECT_GT(parsed->NumberOr("c.lat_ns.p50", -1), 0.0);
}

// --------------------------------------------------------------- SpanTracer

TEST(SpanTracerTest, OverflowDropsOldestWithoutCorruption) {
  SpanTracer tracer(64);
  EXPECT_EQ(tracer.capacity(), 64u);
  for (uint64_t i = 0; i < 200; ++i) {
    tracer.Record("span", /*start_ns=*/i * 10, /*duration_ns=*/5);
  }
  std::vector<SpanTracer::Span> spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(), 64u);
  EXPECT_EQ(tracer.total_recorded(), 200u);
  // The survivors are exactly the newest `capacity` records, in order.
  uint64_t prev_seq = 0;
  for (const auto& s : spans) {
    EXPECT_GT(s.seq, uint64_t{200 - 64});
    EXPECT_GT(s.seq, prev_seq);
    prev_seq = s.seq;
    EXPECT_STREQ(s.name, "span");
    EXPECT_EQ(s.duration_ns, 5u);
    EXPECT_EQ(s.start_ns, (s.seq - 1) * 10);  // fields stay paired
  }
}

TEST(SpanTracerTest, ConcurrentRecordersProduceOnlyValidSpans) {
  SpanTracer tracer(128);  // smaller than the write volume: constant churn
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  static const char* kNames[kThreads] = {"t0", "t1", "t2", "t3"};
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // A reader snapshots concurrently with the writers; every span it sees
  // must be fully formed (the seqlock discards mid-write slots).
  std::thread reader([&] {
    while (!stop.load()) {
      for (const auto& s : tracer.Snapshot()) {
        ASSERT_NE(s.name, nullptr);
        ASSERT_EQ(s.duration_ns, 7u);
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Record(kNames[t], static_cast<uint64_t>(i) + 1, 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(tracer.total_recorded(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(tracer.Snapshot().size(), tracer.capacity());
}

TEST(SpanTracerTest, ChromeTraceJsonParsesAndNests) {
  SpanTracer tracer(64);
  // An outer span enclosing an inner one, as LSG_OBS_SPAN scopes produce.
  tracer.Record("inner", /*start_ns=*/2000, /*duration_ns=*/1000);
  tracer.Record("outer", /*start_ns=*/1000, /*duration_ns=*/4000);
  auto parsed = JsonParse(tracer.ChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  const JsonValue* inner = nullptr;
  const JsonValue* outer = nullptr;
  for (const JsonValue& e : events->array) {
    EXPECT_EQ(e.StringOr("ph", ""), "X");
    EXPECT_GE(e.NumberOr("tid", -1), 0.0);
    if (e.StringOr("name", "") == "inner") inner = &e;
    if (e.StringOr("name", "") == "outer") outer = &e;
  }
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  // Timestamp containment (microseconds) is what makes the viewer nest.
  double o0 = outer->NumberOr("ts", -1), o1 = o0 + outer->NumberOr("dur", 0);
  double i0 = inner->NumberOr("ts", -1), i1 = i0 + inner->NumberOr("dur", 0);
  EXPECT_LE(o0, i0);
  EXPECT_GE(o1, i1);
}

TEST(SpanTracerTest, DisabledScopedSpanRecordsNothing) {
  SpanTracer tracer(8);
  {
    ScopedSpan inert(nullptr, "never");  // the Enabled()==false path
    ScopedSpan live(&tracer, "once");
  }
  std::vector<SpanTracer::Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "once");
}

TEST(ObsEnableTest, FlagLatchesAndClears) {
  bool before = Enabled();
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(before);
}

// --------------------------------------------------------- EpisodeTelemetry

EpisodeRow MakeRow(int i) {
  EpisodeRow row;
  row.constraint = "Card in [5,50]";
  row.reward = 0.5 * i;
  row.final_metric = i;
  row.satisfied = (i % 2) == 0;
  row.tokens = 10 + i;
  row.estimator_calls = 3;
  row.mean_mask_width = 6.25;
  row.wall_seconds = 0.001;
  return row;
}

TEST(EpisodeTelemetryTest, JsonlRowsRoundTripThroughParser) {
  std::string path = TempPath("rows.jsonl");
  {
    EpisodeTelemetry sink(path);
    ASSERT_TRUE(sink.ok());
    sink.SetTag("train");
    sink.Record(MakeRow(4));
    EpisodeRow tagged = MakeRow(5);
    tagged.tag = "generate";  // explicit tag beats the sink tag
    sink.Record(tagged);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto row = JsonParse(line);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_EQ(row->StringOr("constraint", ""), "Card in [5,50]");
  EXPECT_EQ(row->StringOr("tag", ""), "train");
  EXPECT_DOUBLE_EQ(row->NumberOr("reward", -1), 2.0);
  EXPECT_DOUBLE_EQ(row->NumberOr("satisfied", -1), 1.0);
  EXPECT_DOUBLE_EQ(row->NumberOr("tokens", -1), 14.0);
  ASSERT_TRUE(std::getline(in, line));
  auto row2 = JsonParse(line);
  ASSERT_TRUE(row2.ok());
  EXPECT_EQ(row2->StringOr("tag", ""), "generate");
  std::filesystem::remove(path);
}

TEST(EpisodeTelemetryTest, CsvWritesHeaderPerFile) {
  std::string path = TempPath("rows.csv");
  {
    EpisodeTelemetry::Options o;
    o.max_rows_per_file = 2;
    o.max_files = 2;
    EpisodeTelemetry sink(path, o);
    for (int i = 0; i < 3; ++i) sink.Record(MakeRow(i));
  }
  std::string active = ReadAll(path);
  std::string rotated = ReadAll(path + ".1");
  EXPECT_EQ(active.find("constraint,tag,reward"), 0u);
  EXPECT_EQ(rotated.find("constraint,tag,reward"), 0u);
  // 2 rows rotated out, 1 still active; header is not a row.
  EXPECT_EQ(std::count(rotated.begin(), rotated.end(), '\n'), 3);
  EXPECT_EQ(std::count(active.begin(), active.end(), '\n'), 2);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
}

TEST(EpisodeTelemetryTest, RotationKeepsNewestAndCapsFileCount) {
  std::string path = TempPath("rot.jsonl");
  EpisodeTelemetry::Options o;
  o.max_rows_per_file = 10;
  o.max_files = 3;
  {
    EpisodeTelemetry sink(path, o);
    for (int i = 0; i < 35; ++i) sink.Record(MakeRow(i));
    EXPECT_EQ(sink.rows_written(), 35u);
    EXPECT_EQ(sink.rotations(), 3);
  }
  // 35 rows / 10 per file: rows 30..34 active, 20..29 in .1, 10..19 in .2,
  // 0..9 aged out (max_files = 3).
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  EXPECT_TRUE(std::filesystem::exists(path + ".2"));
  EXPECT_FALSE(std::filesystem::exists(path + ".3"));
  auto first_metric = [](const std::string& file) {
    std::ifstream in(file);
    std::string line;
    EXPECT_TRUE(std::getline(in, line));
    auto row = JsonParse(line);
    EXPECT_TRUE(row.ok());
    return row.ok() ? row->NumberOr("final_metric", -1) : -1.0;
  };
  EXPECT_DOUBLE_EQ(first_metric(path), 30.0);
  EXPECT_DOUBLE_EQ(first_metric(path + ".1"), 20.0);
  EXPECT_DOUBLE_EQ(first_metric(path + ".2"), 10.0);
  for (const char* suffix : {"", ".1", ".2"}) {
    std::filesystem::remove(path + suffix);
  }
}

// --------------------------------------------------------------- JSON reader

TEST(JsonTest, ParsesNestedDocuments) {
  auto v = JsonParse(
      R"({"a": 1.5, "b": [1, 2, {"c": "x\"y"}], "d": true, "e": null})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->NumberOr("a", -1), 1.5);
  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_EQ(b->array[2].StringOr("c", ""), "x\"y");
  EXPECT_EQ(v->Find("d")->b, true);
  EXPECT_EQ(v->Find("e")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("{\"a\": }").ok());
  EXPECT_FALSE(JsonParse("[1, 2] trailing").ok());
  EXPECT_FALSE(JsonParse("").ok());
}

TEST(JsonTest, DecodesEscapesIncludingUnicode) {
  auto v = JsonParse(R"({"a": "tab\there", "b": "\b\f", "c": "A\u00e9",
                         "d": "\u20ac", "e": "\ud83d\ude00"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->StringOr("a", ""), "tab\there");
  EXPECT_EQ(v->StringOr("b", ""), "\b\f");
  EXPECT_EQ(v->StringOr("c", ""), "A\xc3\xa9");          // A, é (2-byte UTF-8)
  EXPECT_EQ(v->StringOr("d", ""), "\xe2\x82\xac");       // € (3-byte UTF-8)
  EXPECT_EQ(v->StringOr("e", ""), "\xf0\x9f\x98\x80");   // 😀 surrogate pair
}

TEST(JsonTest, RejectsBadUnicodeEscapes) {
  EXPECT_FALSE(JsonParse(R"(["\u12"])").ok());       // truncated hex
  EXPECT_FALSE(JsonParse(R"(["\u12xz"])").ok());     // non-hex digits
  EXPECT_FALSE(JsonParse(R"(["\ud83d"])").ok());     // unpaired high surrogate
  EXPECT_FALSE(JsonParse(R"(["\ud83dA"])").ok());  // bad low surrogate
  EXPECT_FALSE(JsonParse(R"(["\ude00"])").ok());     // lone low surrogate
}

TEST(JsonTest, BoundsNestingDepth) {
  // Depth exactly at the cap parses; one deeper is rejected — gracefully,
  // not by exhausting the call stack (the net fuzzer sends 64KB of '[').
  std::string ok_doc(kJsonMaxDepth, '[');
  ok_doc.append(kJsonMaxDepth, ']');
  EXPECT_TRUE(JsonParse(ok_doc).ok());

  std::string deep(kJsonMaxDepth + 1, '[');
  deep.append(kJsonMaxDepth + 1, ']');
  EXPECT_FALSE(JsonParse(deep).ok());

  std::string huge(60000, '[');
  EXPECT_FALSE(JsonParse(huge).ok());
}

TEST(JsonTest, FlattensTopLevelNumbers) {
  auto v = JsonParse(R"({"a": 2, "b": true, "c": "skip", "d": {"x": 1}})");
  ASSERT_TRUE(v.ok());
  auto flat = JsonFlatNumbers(*v);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->size(), 2u);
  EXPECT_DOUBLE_EQ(flat->at("a"), 2.0);
  EXPECT_DOUBLE_EQ(flat->at("b"), 1.0);
}

// ----------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, NanosecondAccessorsAreMonotonic) {
  uint64_t a = Stopwatch::NowNanos();
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
  uint64_t elapsed = w.ElapsedNanos();
  uint64_t b = Stopwatch::NowNanos();
  EXPECT_GE(b, a);
  EXPECT_GT(elapsed, 0u);
  EXPECT_LE(elapsed, b - a);
  EXPECT_NEAR(w.ElapsedSeconds(), static_cast<double>(w.ElapsedNanos()) / 1e9,
              1e-3);
}

}  // namespace
}  // namespace obs
}  // namespace lsg
