#include <gtest/gtest.h>

#include <limits>
#include <unordered_set>

#include "datasets/job_like.h"
#include "datasets/tpch_like.h"
#include "datasets/xuetang_like.h"

namespace lsg {
namespace {

Database BuildByIndex(int idx, DatasetScale scale = DatasetScale()) {
  switch (idx) {
    case 0:
      return BuildTpchLike(scale);
    case 1:
      return BuildJobLike(scale);
    default:
      return BuildXuetangLike(scale);
  }
}

const char* DatasetName(int idx) {
  switch (idx) {
    case 0:
      return "tpch";
    case 1:
      return "job";
    default:
      return "xuetang";
  }
}

TEST(TpchLikeTest, TableTopology) {
  Database db = BuildTpchLike();
  EXPECT_EQ(db.num_tables(), 8u);  // the TPC-H table count
  for (const char* name :
       {"region", "nation", "supplier", "customer", "part", "partsupp",
        "orders", "lineitem"}) {
    EXPECT_NE(db.FindTable(name), nullptr) << name;
  }
  EXPECT_TRUE(db.catalog().AreJoinable("lineitem", "orders"));
  EXPECT_TRUE(db.catalog().AreJoinable("orders", "customer"));
  EXPECT_TRUE(db.catalog().AreJoinable("nation", "region"));
  EXPECT_FALSE(db.catalog().AreJoinable("customer", "part"));
}

TEST(JobLikeTest, TableTopology) {
  Database db = BuildJobLike();
  EXPECT_EQ(db.num_tables(), 21u);  // the JOB/IMDB table count
  EXPECT_TRUE(db.catalog().AreJoinable("cast_info", "title"));
  EXPECT_TRUE(db.catalog().AreJoinable("cast_info", "name"));
  EXPECT_TRUE(db.catalog().AreJoinable("movie_keyword", "keyword"));
  EXPECT_FALSE(db.catalog().AreJoinable("keyword", "company_name"));
}

TEST(XuetangLikeTest, TableTopology) {
  Database db = BuildXuetangLike();
  EXPECT_EQ(db.num_tables(), 14u);  // the XueTang table count
  EXPECT_TRUE(db.catalog().AreJoinable("enrollment", "users"));
  EXPECT_TRUE(db.catalog().AreJoinable("enrollment", "course"));
  EXPECT_TRUE(db.catalog().AreJoinable("forum_post", "forum_thread"));
  EXPECT_FALSE(db.catalog().AreJoinable("video", "exam"));
}

class DatasetProperty : public ::testing::TestWithParam<int> {};

TEST_P(DatasetProperty, NonEmptyTables) {
  Database db = BuildByIndex(GetParam());
  for (const Table& t : db.tables()) {
    EXPECT_GT(t.num_rows(), 0u) << t.name();
  }
  EXPECT_GT(db.TotalRows(), 1000u);
}

TEST_P(DatasetProperty, ForeignKeyIntegrity) {
  // Every FK value must exist in the referenced PK column — otherwise the
  // FK join graph the FSM relies on would silently drop rows.
  Database db = BuildByIndex(GetParam());
  const Catalog& cat = db.catalog();
  for (const ForeignKey& fk : cat.foreign_keys()) {
    const Table* from = db.FindTable(fk.from_table);
    const Table* to = db.FindTable(fk.to_table);
    ASSERT_NE(from, nullptr);
    ASSERT_NE(to, nullptr);
    int fc = from->schema().FindColumn(fk.from_column);
    int tc = to->schema().FindColumn(fk.to_column);
    ASSERT_GE(fc, 0);
    ASSERT_GE(tc, 0);
    std::unordered_set<Value, ValueHash> keys;
    for (size_t r = 0; r < to->num_rows(); ++r) {
      keys.insert(to->GetValue(r, tc));
    }
    size_t misses = 0;
    for (size_t r = 0; r < from->num_rows(); ++r) {
      Value v = from->GetValue(r, fc);
      if (!v.is_null() && keys.count(v) == 0) ++misses;
    }
    EXPECT_EQ(misses, 0u) << DatasetName(GetParam()) << ": " << fk.from_table
                          << "." << fk.from_column << " -> " << fk.to_table;
  }
}

TEST_P(DatasetProperty, PrimaryKeysUnique) {
  Database db = BuildByIndex(GetParam());
  for (const Table& t : db.tables()) {
    int pk = t.schema().PrimaryKeyColumn();
    if (pk < 0) continue;
    std::unordered_set<Value, ValueHash> seen;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_TRUE(seen.insert(t.GetValue(r, pk)).second)
          << t.name() << " row " << r;
    }
  }
}

TEST_P(DatasetProperty, DeterministicAcrossBuilds) {
  Database a = BuildByIndex(GetParam());
  Database b = BuildByIndex(GetParam());
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (size_t ti = 0; ti < a.num_tables(); ++ti) {
    const Table& ta = a.tables()[ti];
    const Table& tb = b.tables()[ti];
    ASSERT_EQ(ta.num_rows(), tb.num_rows()) << ta.name();
    // Spot-check a scattering of cells.
    for (size_t r = 0; r < ta.num_rows(); r += 97) {
      for (size_t c = 0; c < ta.num_columns(); ++c) {
        EXPECT_EQ(ta.GetValue(r, c).Compare(tb.GetValue(r, c)), 0)
            << ta.name() << "[" << r << "," << c << "]";
      }
    }
  }
}

TEST_P(DatasetProperty, ScaleFactorGrowsFactTables) {
  DatasetScale small;
  small.factor = 0.5;
  DatasetScale big;
  big.factor = 2.0;
  Database s = BuildByIndex(GetParam(), small);
  Database b = BuildByIndex(GetParam(), big);
  EXPECT_GT(b.TotalRows(), s.TotalRows() * 2);
}

TEST_P(DatasetProperty, RowScaleOneIsBitIdenticalToDefault) {
  // The execution-grounded training path builds its scaled databases via
  // DatasetScale::RowScale; at 1.0 it must reproduce the default-scale
  // datasets cell for cell.
  Database a = BuildByIndex(GetParam());
  Database b = BuildByIndex(GetParam(), DatasetScale::RowScale(1.0));
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (size_t ti = 0; ti < a.num_tables(); ++ti) {
    const Table& ta = a.tables()[ti];
    const Table& tb = b.tables()[ti];
    ASSERT_EQ(ta.num_rows(), tb.num_rows()) << ta.name();
    for (size_t r = 0; r < ta.num_rows(); ++r) {
      for (size_t c = 0; c < ta.num_columns(); ++c) {
        const Value va = ta.GetValue(r, c);
        const Value vb = tb.GetValue(r, c);
        ASSERT_EQ(va.is_null(), vb.is_null())
            << ta.name() << "[" << r << "," << c << "]";
        if (!va.is_null()) {
          ASSERT_EQ(va.Compare(vb), 0)
              << ta.name() << "[" << r << "," << c << "]";
        }
      }
    }
  }
}

TEST(DatasetScaleTest, RowsClampsAndSaturates) {
  DatasetScale s;
  EXPECT_EQ(s.Rows(1000), 1000);  // factor 1.0 is exact
  s.factor = 0.0;
  EXPECT_EQ(s.Rows(1000), 2);  // floor
  s.factor = -3.0;
  EXPECT_EQ(s.Rows(1000), 2);
  s.factor = 1e12;  // would overflow the int cast without the clamp
  EXPECT_EQ(s.Rows(1000), DatasetScale::kMaxRowsPerTable);
  s.factor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(s.Rows(1000), 2);
  s.factor = 100.0;
  EXPECT_EQ(s.Rows(3000), 300000);  // lineitem at 100x: 3*10^5 rows
  EXPECT_EQ(DatasetScale::RowScale(2.5).Rows(1000), 2500);
  EXPECT_EQ(DatasetScale::RowScale(1.0).seed, DatasetScale().seed);
}

TEST_P(DatasetProperty, EveryTableReachableInJoinGraph) {
  // The FK graph must be connected enough for the FSM: every table has at
  // least one joinable partner (no isolated tables).
  Database db = BuildByIndex(GetParam());
  const Catalog& cat = db.catalog();
  for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
    EXPECT_FALSE(cat.JoinableTables(cat.table(ti).name()).empty())
        << cat.table(ti).name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetProperty,
                         ::testing::Range(0, 3));

}  // namespace
}  // namespace lsg
