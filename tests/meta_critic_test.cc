#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "rl/actor_critic_trainer.h"
#include "rl/meta_critic.h"

namespace lsg {
namespace {

/// Same dense-reward toy environment as rl_test: emit 3 symbols then EOF;
/// each correct symbol earns 1/3, the EOF step repeats the match fraction.
/// Different targets = different "constraints", so the (a, r) stream
/// identifies the task — exactly the structure the constraint encoder is
/// meant to exploit.
class ToyTaskEnv : public Environment {
 public:
  explicit ToyTaskEnv(std::vector<int> target) : target_(std::move(target)) {}

  void Reset() override {
    emitted_.clear();
    match_ = 0;
  }

  const std::vector<uint8_t>& ValidActions() override {
    mask_.assign(4, 0);
    if (emitted_.size() < target_.size()) {
      mask_[0] = mask_[1] = mask_[2] = 1;
    } else {
      mask_[3] = 1;
    }
    return mask_;
  }

  StatusOr<EnvStepResult> Step(int action) override {
    EnvStepResult r;
    if (action == 3) {
      r.reward = static_cast<double>(match_) / target_.size();
      r.done = true;
      r.executable = true;
      r.metric = r.reward;
      r.satisfied = match_ == static_cast<int>(target_.size());
    } else {
      const bool hit = action == target_[emitted_.size()];
      if (hit) ++match_;
      r.reward = hit ? 1.0 / target_.size() : 0.0;
      r.executable = true;
      r.metric = static_cast<double>(match_) / target_.size();
      emitted_.push_back(action);
    }
    return r;
  }

  QueryAst TakeAst() override { return QueryAst(); }
  int vocab_size() const override { return 4; }

 private:
  std::vector<int> target_;
  std::vector<int> emitted_;
  std::vector<uint8_t> mask_;
  int match_ = 0;
};

MetaCritic::Options SmallMeta() {
  MetaCritic::Options o;
  o.hidden_dim = 12;
  o.num_layers = 1;
  o.dropout = 0.0f;
  o.action_embed_dim = 6;
  o.encoder_dim = 6;
  o.fusion_dim = 12;
  return o;
}

TrainerOptions SmallTrainer(uint64_t seed) {
  TrainerOptions o;
  o.batch_size = 8;
  o.seed = seed;
  o.actor_lr = 3e-3f;
  o.critic_lr = 9e-3f;
  o.net.hidden_dim = 12;
  o.net.num_layers = 1;
  o.net.dropout = 0.0f;
  return o;
}

TEST(MetaCriticTest, ValueIsFinite) {
  MetaCritic mc(4, SmallMeta());
  auto ep = mc.BeginEpisode(false);
  float v = mc.StepValue(&ep, mc.bos_index());
  EXPECT_TRUE(std::isfinite(v));
}

TEST(MetaCriticTest, ObserveTripleChangesEncoderState) {
  MetaCritic mc(4, SmallMeta());
  auto ep = mc.BeginEpisode(false);
  std::vector<float> before = ep.enc_h;
  mc.ObserveTriple(&ep, 1, 0.5);
  double diff = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    diff += std::abs(ep.enc_h[i] - before[i]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(MetaCriticTest, RewardSignalReachesValueEstimate) {
  // The same state with different observed rewards must produce different
  // V values once triples were consumed (z_t differs).
  MetaCritic mc(4, SmallMeta());
  auto ep1 = mc.BeginEpisode(false);
  mc.StepValue(&ep1, mc.bos_index());
  mc.ObserveTriple(&ep1, 1, 1.0);
  float v1 = mc.StepValue(&ep1, 1);

  auto ep2 = mc.BeginEpisode(false);
  mc.StepValue(&ep2, mc.bos_index());
  mc.ObserveTriple(&ep2, 1, -1.0);
  float v2 = mc.StepValue(&ep2, 1);
  EXPECT_NE(v1, v2);
}

TEST(MetaCriticTest, GradientsFitTargetValue) {
  // Train V toward 0.9 for a fixed two-step episode; verifies the whole
  // backward path (fusion MLP + state LSTM + encoder LSTM + embedding).
  MetaCritic mc(4, SmallMeta());
  Adam opt(mc.Params(), 0.02f);
  float v = 0;
  for (int iter = 0; iter < 400; ++iter) {
    auto ep = mc.BeginEpisode(true);
    mc.StepValue(&ep, mc.bos_index());
    mc.ObserveTriple(&ep, 2, 0.5);
    v = mc.StepValue(&ep, 2);
    // dL/dV = V - target for each step (push both toward 0.9).
    mc.AccumulateGradients(ep, {ep.values[0] - 0.9, ep.values[1] - 0.9});
    opt.Step();
  }
  EXPECT_NEAR(v, 0.9f, 0.1f);
}

TEST(MetaCriticTrainerTest, PretrainImprovesReward) {
  ToyTaskEnv t1({0, 0, 0}), t2({2, 2, 2});
  MetaCriticTrainer trainer({&t1, &t2}, SmallTrainer(21), SmallMeta());
  double first = 0, last = 0;
  for (int e = 0; e < 80; ++e) {
    auto st = trainer.PretrainEpoch();
    ASSERT_TRUE(st.ok());
    if (e == 0) first = st->mean_final_reward;
    last = st->mean_final_reward;
  }
  EXPECT_GT(last, first);
}

TEST(MetaCriticTrainerTest, AdaptsToNewTask) {
  ToyTaskEnv t1({0, 0, 0}), t2({2, 2, 2});
  MetaCriticTrainer trainer({&t1, &t2}, SmallTrainer(22), SmallMeta());
  for (int e = 0; e < 60; ++e) ASSERT_TRUE(trainer.PretrainEpoch().ok());
  ToyTaskEnv fresh({1, 1, 1});
  auto trace = trainer.Adapt(&fresh, 120);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 120u);
  EXPECT_GT(trace->back().mean_final_reward,
            trace->front().mean_final_reward);
  EXPECT_GT(trace->back().mean_final_reward, 0.6);
  auto gen = trainer.GenerateWithAdapted(&fresh);
  ASSERT_TRUE(gen.ok());
  EXPECT_TRUE(gen->completed);
}

TEST(MetaCriticTrainerTest, AdaptationFasterThanScratchOnAverage) {
  // The Figure 9 claim in miniature: with shared pre-trained critic the
  // adapted actor reaches a given reward in no more epochs than training
  // everything from scratch (small stochastic slack allowed).
  auto epochs_to_reach = [](double target, auto&& step_fn) {
    for (int e = 0; e < 200; ++e) {
      double r = step_fn();
      if (r >= target) return e;
    }
    return 200;
  };

  ToyTaskEnv t1({0, 1, 0}), t2({2, 1, 2});
  MetaCriticTrainer meta({&t1, &t2}, SmallTrainer(23), SmallMeta());
  for (int e = 0; e < 60; ++e) ASSERT_TRUE(meta.PretrainEpoch().ok());
  ToyTaskEnv new_task({1, 1, 2});
  auto trace = meta.Adapt(&new_task, 200);
  ASSERT_TRUE(trace.ok());
  int meta_epochs = 200;
  for (size_t e = 0; e < trace->size(); ++e) {
    if ((*trace)[e].mean_final_reward >= 0.8) {
      meta_epochs = static_cast<int>(e);
      break;
    }
  }

  ToyTaskEnv scratch_env({1, 1, 2});
  ActorCriticTrainer scratch(&scratch_env, SmallTrainer(23));
  int scratch_epochs = epochs_to_reach(0.8, [&]() {
    auto st = scratch.TrainEpoch();
    return st.ok() ? st->mean_final_reward : 0.0;
  });

  EXPECT_LE(meta_epochs, scratch_epochs + 60);
}

}  // namespace
}  // namespace lsg
