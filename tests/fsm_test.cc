#include <gtest/gtest.h>

#include <set>

#include "core/workload.h"
#include "exec/executor.h"
#include "fsm/generation_fsm.h"
#include "fsm/semantic_rules.h"
#include "obs/obs.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// ------------------------------------------------------ semantic rules

TEST(SemanticRulesTest, OperatorsByType) {
  for (int op = 0; op < static_cast<int>(CompareOp::kNumOps); ++op) {
    EXPECT_TRUE(OperatorAllowedForType(static_cast<CompareOp>(op),
                                       DataType::kInt64));
    EXPECT_TRUE(OperatorAllowedForType(static_cast<CompareOp>(op),
                                       DataType::kDouble));
  }
  // Strings support only {=, <, >} (paper §4.1).
  EXPECT_TRUE(OperatorAllowedForType(CompareOp::kEq, DataType::kString));
  EXPECT_TRUE(OperatorAllowedForType(CompareOp::kLt, DataType::kString));
  EXPECT_TRUE(OperatorAllowedForType(CompareOp::kGt, DataType::kString));
  EXPECT_FALSE(OperatorAllowedForType(CompareOp::kLe, DataType::kString));
  EXPECT_FALSE(OperatorAllowedForType(CompareOp::kGe, DataType::kCategorical));
  EXPECT_FALSE(OperatorAllowedForType(CompareOp::kNe, DataType::kString));
}

TEST(SemanticRulesTest, AggregatesByType) {
  EXPECT_TRUE(AggregateAllowedForType(AggFunc::kCount, DataType::kString));
  EXPECT_TRUE(AggregateAllowedForType(AggFunc::kSum, DataType::kInt64));
  EXPECT_FALSE(AggregateAllowedForType(AggFunc::kSum, DataType::kString));
  EXPECT_FALSE(AggregateAllowedForType(AggFunc::kAvg, DataType::kCategorical));
  EXPECT_TRUE(AggregateKeywordAllowedForType(Keyword::kCount,
                                             DataType::kCategorical));
  EXPECT_FALSE(AggregateKeywordAllowedForType(Keyword::kMax,
                                              DataType::kString));
}

// ------------------------------------------------------ fixture

class FsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildScoreStudentDb();
    VocabularyOptions vo;
    vo.values_per_column = 8;
    auto v = Vocabulary::Build(db_, vo);
    ASSERT_TRUE(v.ok());
    vocab_ = std::move(v).value();
  }

  int score() { return db_.catalog().FindTable("Score"); }
  int student() { return db_.catalog().FindTable("Student"); }

  /// Steps the FSM with the unique valid keyword/table/... convenience.
  void StepKeyword(GenerationFsm* fsm, Keyword kw) {
    ASSERT_TRUE(fsm->Step(vocab_->keyword_id(kw)).ok()) << KeywordText(kw);
  }
  void StepTable(GenerationFsm* fsm, int idx) {
    ASSERT_TRUE(fsm->Step(vocab_->table_token_id(idx)).ok());
  }
  void StepColumn(GenerationFsm* fsm, int t, int c) {
    ASSERT_TRUE(fsm->Step(vocab_->column_token_id(t, c)).ok());
  }

  std::set<int> AllowedIds(GenerationFsm* fsm) {
    const auto& mask = fsm->ValidActions();
    std::set<int> ids;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) ids.insert(static_cast<int>(i));
    }
    return ids;
  }

  Database db_;
  std::optional<Vocabulary> vocab_;
};

TEST_F(FsmTest, StartMaskMatchesProfile) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  auto ids = AllowedIds(&fsm);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kFrom)));

  GenerationFsm full(&db_, &*vocab_, QueryProfile::Full());
  ids = AllowedIds(&full);
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kFrom)));
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kInsert)));
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kUpdate)));
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kDelete)));

  GenerationFsm del(&db_, &*vocab_, QueryProfile::DeleteOnly());
  ids = AllowedIds(&del);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kDelete)));
}

TEST_F(FsmTest, FromMaskOffersAllTables) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  StepKeyword(&fsm, Keyword::kFrom);
  auto ids = AllowedIds(&fsm);
  EXPECT_TRUE(ids.count(vocab_->table_token_id(score())));
  EXPECT_TRUE(ids.count(vocab_->table_token_id(student())));
  EXPECT_EQ(ids.size(), 2u);
}

TEST_F(FsmTest, JoinMaskedWhenNoJoinableTableRemains) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  auto ids = AllowedIds(&fsm);
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kJoin)));
  StepKeyword(&fsm, Keyword::kJoin);
  StepTable(&fsm, student());
  // Both tables joined: no third table exists.
  ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kJoin)));
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kSelect)));
}

TEST_F(FsmTest, StringColumnOperatorsRestricted) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSelect);
  StepColumn(&fsm, score(), 0);
  StepKeyword(&fsm, Keyword::kWhere);
  StepColumn(&fsm, score(), 2);  // Course: categorical
  auto ids = AllowedIds(&fsm);
  EXPECT_TRUE(ids.count(vocab_->operator_id(CompareOp::kEq)));
  EXPECT_TRUE(ids.count(vocab_->operator_id(CompareOp::kLt)));
  EXPECT_TRUE(ids.count(vocab_->operator_id(CompareOp::kGt)));
  EXPECT_FALSE(ids.count(vocab_->operator_id(CompareOp::kLe)));
  EXPECT_FALSE(ids.count(vocab_->operator_id(CompareOp::kGe)));
  EXPECT_FALSE(ids.count(vocab_->operator_id(CompareOp::kNe)));
}

TEST_F(FsmTest, ValueMaskScopedToPredicateColumn) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSelect);
  StepColumn(&fsm, score(), 0);
  StepKeyword(&fsm, Keyword::kWhere);
  StepColumn(&fsm, score(), 3);  // Grade
  ASSERT_TRUE(fsm.Step(vocab_->operator_id(CompareOp::kLt)).ok());
  auto ids = AllowedIds(&fsm);
  // All offered values (besides the scalar-subquery paren) belong to Grade.
  for (int id : ids) {
    const Token& t = vocab_->token(id);
    if (t.kind == TokenKind::kValue) {
      EXPECT_EQ(t.value_column_table, score());
      EXPECT_EQ(t.value_column_idx, 3);
    } else {
      EXPECT_EQ(t.keyword, Keyword::kOpenParen);
    }
  }
}

TEST_F(FsmTest, ScalarSubqueryOnlyForNumericLhs) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSelect);
  StepColumn(&fsm, score(), 0);
  StepKeyword(&fsm, Keyword::kWhere);
  StepColumn(&fsm, score(), 2);  // Course: categorical lhs
  ASSERT_TRUE(fsm.Step(vocab_->operator_id(CompareOp::kEq)).ok());
  auto ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kOpenParen)));
}

TEST_F(FsmTest, NestingDepthLimitMasksSubqueries) {
  QueryProfile profile;
  profile.max_nesting_depth = 0;
  GenerationFsm fsm(&db_, &*vocab_, profile);
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSelect);
  StepColumn(&fsm, score(), 0);
  StepKeyword(&fsm, Keyword::kWhere);
  auto ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kExists)));
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kNot)));
  StepColumn(&fsm, score(), 3);
  ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kIn)));
}

TEST_F(FsmTest, MixedItemsForceGroupBy) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSelect);
  StepColumn(&fsm, score(), 2);          // plain Course
  StepKeyword(&fsm, Keyword::kMax);      // + MAX(Grade): now mixed
  StepColumn(&fsm, score(), 3);
  auto ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->eof_id()));
  EXPECT_TRUE(ids.count(vocab_->keyword_id(Keyword::kGroupBy)));
  StepKeyword(&fsm, Keyword::kGroupBy);
  StepColumn(&fsm, score(), 2);
  ids = AllowedIds(&fsm);
  EXPECT_TRUE(ids.count(vocab_->eof_id()));
}

TEST_F(FsmTest, GroupByMaskedWithoutAggregateBranch) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile::SpjOnly());
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSelect);
  StepColumn(&fsm, score(), 2);
  auto ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kGroupBy)));
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kMax)));
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kCount)));
  EXPECT_TRUE(ids.count(vocab_->eof_id()));
}

TEST_F(FsmTest, MaxPredicatesLimitsConnectors) {
  QueryProfile profile;
  profile.max_predicates = 1;
  GenerationFsm fsm(&db_, &*vocab_, profile);
  StepKeyword(&fsm, Keyword::kFrom);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSelect);
  StepColumn(&fsm, score(), 0);
  StepKeyword(&fsm, Keyword::kWhere);
  StepColumn(&fsm, score(), 3);
  ASSERT_TRUE(fsm.Step(vocab_->operator_id(CompareOp::kLt)).ok());
  auto values = vocab_->value_token_ids(score(), 3);
  ASSERT_TRUE(fsm.Step(values[0]).ok());
  auto ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kAnd)));
  EXPECT_FALSE(ids.count(vocab_->keyword_id(Keyword::kOr)));
  EXPECT_TRUE(ids.count(vocab_->eof_id()));
}

TEST_F(FsmTest, UpdateCannotSetPrimaryKey) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile::UpdateOnly());
  StepKeyword(&fsm, Keyword::kUpdate);
  StepTable(&fsm, score());
  StepKeyword(&fsm, Keyword::kSet);
  auto ids = AllowedIds(&fsm);
  EXPECT_FALSE(ids.count(vocab_->column_token_id(score(), 0)));  // PK SID
  EXPECT_TRUE(ids.count(vocab_->column_token_id(score(), 3)));
}

TEST_F(FsmTest, InsertValuesFollowColumnOrder) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile::InsertOnly());
  StepKeyword(&fsm, Keyword::kInsert);
  StepTable(&fsm, student());
  StepKeyword(&fsm, Keyword::kValues);
  for (int c = 0; c < 3; ++c) {
    auto ids = AllowedIds(&fsm);
    for (int id : ids) {
      EXPECT_EQ(vocab_->token(id).value_column_idx, c);
    }
    ASSERT_TRUE(fsm.Step(*ids.begin()).ok());
  }
  auto ids = AllowedIds(&fsm);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_TRUE(ids.count(vocab_->eof_id()));
}

TEST_F(FsmTest, TokenBudgetForcesShortQueries) {
  QueryProfile profile;
  profile.max_tokens = 6;
  GenerationFsm fsm(&db_, &*vocab_, profile);
  Rng rng(3);
  for (int episode = 0; episode < 100; ++episode) {
    fsm.Reset();
    int steps = 0;
    while (!fsm.done()) {
      const auto& mask = fsm.ValidActions();
      int chosen = -1, seen = 0;
      for (size_t i = 0; i < mask.size(); ++i) {
        if (!mask[i]) continue;
        ++seen;
        if (rng.Uniform(seen) == 0) chosen = static_cast<int>(i);
      }
      ASSERT_GE(chosen, 0);
      ASSERT_TRUE(fsm.Step(chosen).ok());
      ++steps;
      ASSERT_LT(steps, 64);
    }
    // Budget is soft: once exceeded only the completion path remains, so at
    // most a bounded number of closing tokens follow (predicate completion
    // plus EOF).
    EXPECT_LE(steps, profile.max_tokens + 6);
    (void)fsm.TakeAst();
  }
}

TEST_F(FsmTest, ResetClearsLastMaskWidth) {
  // Regression: last_mask_width_ survived Reset(), so an episode that
  // terminated on its very first token reported the previous episode's
  // final mask width to the telemetry sink.
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  (void)fsm.ValidActions();
  EXPECT_GT(fsm.last_mask_width(), 0);
  fsm.Reset();
  EXPECT_EQ(fsm.last_mask_width(), 0);
  obs::SetEnabled(was_enabled);
}

// ---------------------------------------------------- property walks

struct WalkCase {
  const char* name;
  QueryProfile profile;
};

class FsmWalkProperty : public FsmTest,
                        public ::testing::WithParamInterface<int> {};

QueryProfile CaseProfile(int idx) {
  switch (idx) {
    case 0:
      return QueryProfile();
    case 1:
      return QueryProfile::SpjOnly();
    case 2:
      return QueryProfile::Full();
    case 3:
      return QueryProfile::InsertOnly();
    case 4:
      return QueryProfile::UpdateOnly();
    case 5:
      return QueryProfile::DeleteOnly();
    case 6: {
      QueryProfile p;
      p.max_nesting_depth = 2;
      p.max_joins = 1;
      return p;
    }
    case 7: {
      QueryProfile p;
      p.max_tokens = 10;
      return p;
    }
    default: {
      QueryProfile p;
      p.allow_group_by = false;
      return p;
    }
  }
}

TEST_P(FsmWalkProperty, WalksTerminateAndExecute) {
  QueryProfile profile = CaseProfile(GetParam());
  GenerationFsm fsm(&db_, &*vocab_, profile);
  Executor exec(&db_);
  Rng rng(1000 + GetParam());
  for (int i = 0; i < 150; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok()) << ast.status().ToString();
    // Every generated query renders to SQL and executes without error —
    // the paper's validity guarantee (§5).
    std::string sql = RenderSql(*ast, db_.catalog());
    EXPECT_FALSE(sql.empty());
    auto card = exec.Cardinality(*ast);
    ASSERT_TRUE(card.ok()) << sql << " -> " << card.status().ToString();
    // Structural limits hold.
    if (ast->type == QueryType::kSelect) {
      EXPECT_LE(ast->select->NumJoins(), profile.max_joins);
      EXPECT_LE(static_cast<int>(ast->select->where.predicates.size()),
                profile.max_predicates);
      EXPECT_LE(static_cast<int>(ast->select->items.size()),
                profile.max_select_items);
      EXPECT_LE(ast->select->NestingDepth(), profile.max_nesting_depth);
      if (!profile.allow_nested && !profile.allow_exists) {
        EXPECT_FALSE(ast->select->HasNested());
      }
    }
    if (!profile.allow_select) {
      EXPECT_NE(ast->type, QueryType::kSelect);
    }
    if (!profile.allow_insert) EXPECT_NE(ast->type, QueryType::kInsert);
    if (!profile.allow_update) EXPECT_NE(ast->type, QueryType::kUpdate);
    if (!profile.allow_delete) EXPECT_NE(ast->type, QueryType::kDelete);
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, FsmWalkProperty, ::testing::Range(0, 9));

}  // namespace
}  // namespace lsg
