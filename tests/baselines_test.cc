#include <gtest/gtest.h>

#include "baselines/random_generator.h"
#include "baselines/template_generator.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildScoreStudentDb();
    stats_ = DatabaseStats::Collect(db_);
    est_ = std::make_unique<CardinalityEstimator>(&db_, &stats_);
    cost_ = std::make_unique<CostModel>(est_.get());
    VocabularyOptions vo;
    vo.values_per_column = 8;
    auto v = Vocabulary::Build(db_, vo);
    ASSERT_TRUE(v.ok());
    vocab_ = std::move(v).value();
  }

  std::unique_ptr<SqlGenEnvironment> MakeEnv(Constraint c) {
    EnvironmentOptions eo;
    return std::make_unique<SqlGenEnvironment>(&db_, &*vocab_, est_.get(),
                                               cost_.get(), c, eo);
  }

  Database db_;
  DatabaseStats stats_;
  std::unique_ptr<CardinalityEstimator> est_;
  std::unique_ptr<CostModel> cost_;
  std::optional<Vocabulary> vocab_;
};

// --------------------------------------------------------------- random

TEST_F(BaselinesTest, RandomRolloutCompletes) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 50));
  RandomGenerator gen(env.get(), 1);
  for (int i = 0; i < 50; ++i) {
    auto t = gen.Rollout();
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_TRUE(t->completed);
    EXPECT_FALSE(t->actions.empty());
  }
}

TEST_F(BaselinesTest, RandomBatchAccuracyInUnitRange) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 100));
  RandomGenerator gen(env.get(), 2);
  auto rep = gen.GenerateBatch(100);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->attempts, 100);
  EXPECT_GE(rep->accuracy, 0.0);
  EXPECT_LE(rep->accuracy, 1.0);
  // Wide constraint on a 30-row database: random hits it regularly.
  EXPECT_GT(rep->accuracy, 0.1);
}

TEST_F(BaselinesTest, RandomGenerateSatisfiedRespectsAttemptCap) {
  // Impossible constraint: cardinality beyond the largest join result.
  auto env =
      MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1e9, 2e9));
  RandomGenerator gen(env.get(), 3);
  auto rep = gen.GenerateSatisfied(5, /*max_attempts=*/200);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->satisfied, 0);
  EXPECT_EQ(rep->attempts, 200);
}

TEST_F(BaselinesTest, RandomGenerateSatisfiedFindsEasyTargets) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 100));
  RandomGenerator gen(env.get(), 4);
  auto rep = gen.GenerateSatisfied(5, 2000);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->satisfied, 5);
  for (const GeneratedQuery& q : rep->queries) {
    EXPECT_TRUE(q.satisfied);
    EXPECT_FALSE(q.sql.empty());
  }
}

TEST_F(BaselinesTest, RandomIsDeterministicPerSeed) {
  auto env1 = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 50));
  auto env2 = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 50));
  RandomGenerator a(env1.get(), 42), b(env2.get(), 42);
  for (int i = 0; i < 10; ++i) {
    auto ta = a.Rollout();
    auto tb = b.Rollout();
    ASSERT_TRUE(ta.ok() && tb.ok());
    EXPECT_EQ(ta->actions, tb->actions);
  }
}

// -------------------------------------------------------------- template

TEST_F(BaselinesTest, TemplatePoolMined) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 5, 25));
  TemplateGeneratorOptions topts;
  topts.num_templates = 10;
  TemplateGenerator gen(env.get(), topts);
  EXPECT_GT(gen.pool_size(), 0);
  EXPECT_LE(gen.pool_size(), 10);
}

TEST_F(BaselinesTest, TemplateClimbsTowardEasyRange) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 50));
  TemplateGeneratorOptions topts;
  topts.num_templates = 12;
  TemplateGenerator gen(env.get(), topts);
  auto rep = gen.GenerateSatisfied(3, /*max_attempts=*/20000);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->satisfied, 3);
  for (const GeneratedQuery& q : rep->queries) {
    EXPECT_GE(q.metric, 1.0);
    EXPECT_LE(q.metric, 50.0);
  }
}

TEST_F(BaselinesTest, TemplateBatchReportsAccuracy) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 60));
  TemplateGeneratorOptions topts;
  topts.num_templates = 12;
  TemplateGenerator gen(env.get(), topts);
  auto rep = gen.GenerateBatch(30);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->attempts, 30);
  EXPECT_GE(rep->accuracy, 0.0);
  EXPECT_LE(rep->accuracy, 1.0);
}

TEST_F(BaselinesTest, TemplateCannotReachImpossibleTarget) {
  // The paper's Customer < x anecdote: no predicate tweak reaches a
  // cardinality above the join space (§7.2.2).
  auto env =
      MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1e9, 2e9));
  TemplateGeneratorOptions topts;
  topts.num_templates = 8;
  TemplateGenerator gen(env.get(), topts);
  auto rep = gen.GenerateSatisfied(1, /*max_attempts=*/3000);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->satisfied, 0);
}

}  // namespace
}  // namespace lsg
