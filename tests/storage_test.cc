#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/table.h"

namespace lsg {
namespace {

// ---------------------------------------------------------------- Column

TEST(ColumnTest, AppendAndGetInt) {
  Column c(DataType::kInt64);
  ASSERT_TRUE(c.Append(Value(int64_t{1})).ok());
  ASSERT_TRUE(c.Append(Value(int64_t{2})).ok());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetValue(0).as_int(), 1);
  EXPECT_EQ(c.GetInt(1), 2);
}

TEST(ColumnTest, TypeMismatchRejected) {
  Column c(DataType::kInt64);
  EXPECT_FALSE(c.Append(Value("str")).ok());
  EXPECT_FALSE(c.Append(Value(1.5)).ok());
  Column s(DataType::kString);
  EXPECT_FALSE(s.Append(Value(int64_t{1})).ok());
}

TEST(ColumnTest, IntWidensIntoDoubleColumn) {
  Column c(DataType::kDouble);
  ASSERT_TRUE(c.Append(Value(int64_t{3})).ok());
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 3.0);
}

TEST(ColumnTest, Nulls) {
  Column c(DataType::kInt64);
  ASSERT_TRUE(c.Append(Value(int64_t{1})).ok());
  c.AppendNull();
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_TRUE(c.GetValue(1).is_null());
  EXPECT_EQ(c.CountNonNull(), 1u);
}

TEST(ColumnTest, DistinctValuesSortedAndUnique) {
  Column c(DataType::kInt64);
  for (int64_t v : {3, 1, 3, 2, 1}) ASSERT_TRUE(c.Append(Value(v)).ok());
  c.AppendNull();
  auto d = c.DistinctValues();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].as_int(), 1);
  EXPECT_EQ(d[1].as_int(), 2);
  EXPECT_EQ(d[2].as_int(), 3);
}

TEST(ColumnTest, FilterRows) {
  Column c(DataType::kString);
  for (const char* v : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(c.Append(Value(v)).ok());
  }
  c.FilterRows({true, false, true, false});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetString(0), "a");
  EXPECT_EQ(c.GetString(1), "c");
}

TEST(ColumnTest, CategoricalStoresStrings) {
  Column c(DataType::kCategorical);
  ASSERT_TRUE(c.Append(Value("M")).ok());
  EXPECT_EQ(c.GetValue(0).as_string(), "M");
}

// ---------------------------------------------------------------- Table

TableSchema MiniSchema() {
  TableSchema s("t");
  EXPECT_TRUE(s.AddColumn({"id", DataType::kInt64, true, false}).ok());
  EXPECT_TRUE(s.AddColumn({"v", DataType::kDouble, false, true}).ok());
  return s;
}

TEST(TableTest, AppendRows) {
  Table t(MiniSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(1.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value::Null()}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(0, 0).as_int(), 1);
  EXPECT_TRUE(t.GetValue(1, 1).is_null());
}

TEST(TableTest, ArityMismatchRejected) {
  Table t(MiniSchema());
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, NullInNonNullableRejected) {
  Table t(MiniSchema());
  EXPECT_FALSE(t.AppendRow({Value::Null(), Value(1.0)}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, DebugRowsRenders) {
  Table t(MiniSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{9}), Value(0.5)}).ok());
  std::string s = t.DebugRows(5);
  EXPECT_NE(s.find("9"), std::string::npos);
}

// ---------------------------------------------------------------- Database

Database MiniDb() {
  Database db;
  {
    TableSchema s("a");
    EXPECT_TRUE(s.AddColumn({"id", DataType::kInt64, true, false}).ok());
    Table t(std::move(s));
    EXPECT_TRUE(t.AppendRow({Value(int64_t{1})}).ok());
    EXPECT_TRUE(db.AddTable(std::move(t)).ok());
  }
  {
    TableSchema s("b");
    EXPECT_TRUE(s.AddColumn({"id", DataType::kInt64, true, false}).ok());
    EXPECT_TRUE(s.AddColumn({"a_id", DataType::kInt64, false, false}).ok());
    Table t(std::move(s));
    EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(int64_t{1})}).ok());
    EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value(int64_t{1})}).ok());
    EXPECT_TRUE(db.AddTable(std::move(t)).ok());
  }
  return db;
}

TEST(DatabaseTest, AddAndFind) {
  Database db = MiniDb();
  EXPECT_EQ(db.num_tables(), 2u);
  EXPECT_NE(db.FindTable("a"), nullptr);
  EXPECT_NE(db.FindTable("b"), nullptr);
  EXPECT_EQ(db.FindTable("zzz"), nullptr);
  EXPECT_EQ(db.TotalRows(), 3u);
}

TEST(DatabaseTest, CatalogMirrorsTables) {
  Database db = MiniDb();
  EXPECT_EQ(db.catalog().num_tables(), 2u);
  EXPECT_EQ(db.catalog().FindTable("b"), 1);
}

TEST(DatabaseTest, ForeignKeyValidatedAgainstCatalog) {
  Database db = MiniDb();
  EXPECT_TRUE(db.AddForeignKey({"b", "a_id", "a", "id"}).ok());
  EXPECT_FALSE(db.AddForeignKey({"b", "nope", "a", "id"}).ok());
  EXPECT_TRUE(db.catalog().AreJoinable("a", "b"));
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db = MiniDb();
  TableSchema s("a");
  EXPECT_TRUE(s.AddColumn({"id", DataType::kInt64, true, false}).ok());
  EXPECT_EQ(db.AddTable(Table(std::move(s))).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, MutableTableLookup) {
  Database db = MiniDb();
  Table* t = db.FindMutableTable("a");
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->AppendRow({Value(int64_t{5})}).ok());
  EXPECT_EQ(db.FindTable("a")->num_rows(), 2u);
}

}  // namespace
}  // namespace lsg
