#include <gtest/gtest.h>

#include "baselines/random_generator.h"
#include "core/generator.h"
#include "datasets/tpch_like.h"
#include "exec/executor.h"
#include "sql/render.h"

namespace lsg {
namespace {

/// End-to-end checks on the real pipeline with the TPC-H-like database.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(BuildTpchLike(DatasetScale{0.5, 20220612}));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* IntegrationTest::db_ = nullptr;

TEST_F(IntegrationTest, LearnedBeatsRandomOnMidRangeConstraint) {
  // The headline claim of the paper (Figures 4-7), in miniature: after
  // training, LearnedSQLGen's accuracy on a non-trivial constraint exceeds
  // random generation's.
  LearnedSqlGenOptions opts;
  opts.train_epochs = 120;
  opts.trainer.batch_size = 8;
  opts.seed = 99;
  auto gen = LearnedSqlGen::Create(db_, opts);
  ASSERT_TRUE(gen.ok());
  Constraint c = Constraint::Range(ConstraintMetric::kCardinality, 50, 100);
  ASSERT_TRUE((*gen)->Train(c).ok());
  auto learned = (*gen)->GenerateBatch(150);
  ASSERT_TRUE(learned.ok());

  EnvironmentOptions eo;
  SqlGenEnvironment renv(db_, &(*gen)->vocab(), &(*gen)->estimator(),
                         &(*gen)->cost_model(), c, eo);
  RandomGenerator rnd(&renv, 7);
  auto random = rnd.GenerateBatch(150);
  ASSERT_TRUE(random.ok());

  EXPECT_GT(learned->accuracy, random->accuracy)
      << "learned=" << learned->accuracy << " random=" << random->accuracy;
}

TEST_F(IntegrationTest, TrainingRewardTrendsUp) {
  LearnedSqlGenOptions opts;
  opts.train_epochs = 100;
  opts.trainer.batch_size = 8;
  opts.seed = 5;
  auto gen = LearnedSqlGen::Create(db_, opts);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(
      (*gen)->Train(Constraint::Range(ConstraintMetric::kCardinality, 20, 60))
          .ok());
  const auto& trace = (*gen)->trace();
  double first10 = 0, last10 = 0;
  for (int i = 0; i < 10; ++i) {
    first10 += trace[i].mean_final_reward;
    last10 += trace[trace.size() - 1 - i].mean_final_reward;
  }
  EXPECT_GT(last10, first10);
}

TEST_F(IntegrationTest, GeneratedQueriesExecuteAndMatchEstimatesRoughly) {
  // Every generated query must execute; the estimator used for rewards
  // should correlate with true execution on the generated workload.
  LearnedSqlGenOptions opts;
  opts.train_epochs = 40;
  opts.trainer.batch_size = 8;
  opts.seed = 17;
  auto gen = LearnedSqlGen::Create(db_, opts);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(
      (*gen)->Train(Constraint::Range(ConstraintMetric::kCardinality, 10, 200))
          .ok());
  auto rep = (*gen)->GenerateBatch(60);
  ASSERT_TRUE(rep.ok());

  // Re-parse is not needed: re-walk the reported SQL by executing through
  // a random env is complex; instead regenerate trajectories directly.
  Executor exec(db_);
  EnvironmentOptions eo;
  SqlGenEnvironment env(db_, &(*gen)->vocab(), &(*gen)->estimator(),
                        &(*gen)->cost_model(),
                        Constraint::Range(ConstraintMetric::kCardinality, 10, 200),
                        eo);
  RandomGenerator rnd(&env, 23);
  int executed = 0;
  for (int i = 0; i < 40; ++i) {
    auto t = rnd.Rollout();
    ASSERT_TRUE(t.ok());
    auto card = exec.Cardinality(t->ast);
    ASSERT_TRUE(card.ok()) << RenderSql(t->ast, db_->catalog());
    ++executed;
  }
  EXPECT_EQ(executed, 40);
}

TEST_F(IntegrationTest, TrueExecutionFeedbackTrains) {
  LearnedSqlGenOptions opts;
  opts.train_epochs = 15;
  opts.trainer.batch_size = 4;
  opts.feedback = FeedbackSource::kTrueExecution;
  opts.seed = 29;
  auto gen = LearnedSqlGen::Create(db_, opts);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(
      (*gen)->Train(Constraint::Range(ConstraintMetric::kCardinality, 10, 100))
          .ok());
  auto rep = (*gen)->GenerateBatch(10);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->attempts, 10);
}

TEST_F(IntegrationTest, CostConstraintPipeline) {
  LearnedSqlGenOptions opts;
  opts.train_epochs = 30;
  opts.trainer.batch_size = 8;
  opts.seed = 31;
  auto gen = LearnedSqlGen::Create(db_, opts);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(
      (*gen)->Train(Constraint::Range(ConstraintMetric::kCost, 10, 1000)).ok());
  auto rep = (*gen)->GenerateBatch(30);
  ASSERT_TRUE(rep.ok());
  for (const GeneratedQuery& q : rep->queries) {
    EXPECT_GT(q.metric, 0.0);
  }
}

TEST_F(IntegrationTest, DmlProfilePipeline) {
  LearnedSqlGenOptions opts;
  opts.train_epochs = 15;
  opts.trainer.batch_size = 4;
  opts.profile = QueryProfile::DeleteOnly();
  opts.seed = 37;
  auto gen = LearnedSqlGen::Create(db_, opts);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(
      (*gen)->Train(Constraint::Range(ConstraintMetric::kCardinality, 1, 500))
          .ok());
  auto rep = (*gen)->GenerateBatch(20);
  ASSERT_TRUE(rep.ok());
  for (const GeneratedQuery& q : rep->queries) {
    EXPECT_EQ(q.features.type, QueryType::kDelete);
    EXPECT_EQ(q.sql.rfind("DELETE FROM", 0), 0u) << q.sql;
  }
}

}  // namespace
}  // namespace lsg
