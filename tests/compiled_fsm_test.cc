// Compiled-FSM table suite: the differential soundness harness keeping the
// table-driven fast path bitwise-equivalent to the interpreted FSM.
//
//  1. Exhaustive equivalence — BFS over the compiled state graph, replaying
//     each state's witness prefix on a fresh interpreted FSM and comparing
//     all three budget-regime masks byte for byte, plus transition totality
//     (every mask-legal token has an edge) and walk tracking (a
//     table-attached FSM replaying the witness lands exactly on the state).
//  2. Artifact lifecycle — save/load round trips byte for byte; corrupt or
//     foreign artifacts are rejected / recompiled, never trusted.
//  3. Mutation testing — both injectable table corruptions (mask bit,
//     transition swap) must be caught by the compiled-vs-interpreted
//     lockstep oracle, proving the harness has teeth.
//  4. Concurrency — one immutable table shared by many walking threads
//     (the fsm_tsan target runs this binary under TSan).
//
// Exhaustive sweeps over the big datasets are capped in tier-1 and run
// uncapped when LSG_EXHAUSTIVE_FSM is set (the nightly ctest entry).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/workload.h"
#include "fsm/compiled_fsm.h"
#include "fsm/generation_fsm.h"
#include "fuzz/oracle.h"
#include "fuzz/test_databases.h"
#include "fuzz/trace.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

QueryProfile DmlProfile() {
  QueryProfile p;
  p.allow_select = false;
  p.allow_insert = true;
  p.allow_update = true;
  p.allow_delete = true;
  return p;
}

// 0 = sweep every state (nightly); tier-1 bounds the big datasets so the
// suite stays fast while still checking thousands of states per table.
uint32_t ExhaustiveCap() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before threads start
  return std::getenv("LSG_EXHAUSTIVE_FSM") != nullptr ? 0u : 1500u;
}

// BFS over the compiled table itself, maintaining a witness action prefix
// per state (its BFS discovery path). For each visited state:
//   - replay the witness on a fresh interpreted FSM and compare the three
//     regime masks byte for byte (plus the precomputed widths);
//   - replay it on a table-attached FSM and assert it tracked to exactly
//     this state (validates transition composition along every discovery
//     edge);
//   - assert every token legal under any regime has a compiled edge.
// With cap == 0 the sweep also asserts the mask-legal edge relation
// reaches every compiled state (no orphans in the artifact).
void CheckTableAgainstInterpreter(const Database& db, const Vocabulary& vocab,
                                  const QueryProfile& profile,
                                  const CompiledFsmTable& table,
                                  uint32_t cap) {
  const uint32_t n = table.num_states();
  std::vector<uint8_t> visited(n, 0);
  std::vector<uint32_t> parent(n, 0);
  std::vector<int> via(n, -1);
  std::vector<uint32_t> order;
  order.reserve(n);
  visited[table.start_state()] = 1;
  order.push_back(table.start_state());
  const uint32_t limit = cap == 0 ? n : std::min(n, cap);
  uint32_t checked = 0;

  for (size_t qi = 0; qi < order.size() && checked < limit; ++qi, ++checked) {
    const uint32_t s = order[qi];
    std::vector<int> prefix;
    for (uint32_t cur = s; cur != table.start_state(); cur = parent[cur]) {
      prefix.push_back(via[cur]);
    }
    std::reverse(prefix.begin(), prefix.end());

    if (s == table.accept_state()) {
      // Terminal: empty masks in every regime, no outgoing edges.
      for (int r = 0; r < kNumBudgetRegimes; ++r) {
        EXPECT_EQ(table.MaskWidth(s, r), 0);
      }
      continue;
    }

    GenerationFsm fsm(&db, &vocab, profile);
    for (int a : prefix) ASSERT_TRUE(fsm.Step(a).ok());
    ASSERT_FALSE(fsm.done());

    GenerationFsm walked(&db, &vocab, profile);
    walked.AttachCompiledTable(&table);
    for (int a : prefix) ASSERT_TRUE(walked.Step(a).ok());
    EXPECT_TRUE(walked.compiled_active());
    ASSERT_EQ(walked.compiled_state(), s)
        << "table-attached replay diverged after " << prefix.size()
        << " witness tokens";

    std::vector<uint8_t> legal_any(vocab.size(), 0);
    for (int r = 0; r < kNumBudgetRegimes; ++r) {
      fsm.OverrideBudgetRegime(static_cast<BudgetRegime>(r));
      const std::vector<uint8_t>& want = fsm.ValidActions();
      const std::vector<uint8_t>& got = table.Mask(s, r);
      ASSERT_EQ(want.size(), got.size());
      int width = 0;
      for (int id = 0; id < vocab.size(); ++id) {
        if (want[id] != 0) {
          ++width;
          legal_any[id] = 1;
        }
        ASSERT_EQ(want[id] != 0, got[id] != 0)
            << "mask mismatch at state " << s << " regime " << r
            << " token " << id << " ('" << vocab.token(id).text
            << "') after a witness of " << prefix.size() << " tokens";
      }
      EXPECT_EQ(table.MaskWidth(s, r), width);
    }

    for (int id = 0; id < vocab.size(); ++id) {
      if (legal_any[id] == 0) continue;
      const uint32_t next = table.Next(s, id);
      ASSERT_NE(next, CompiledFsmTable::kNoState)
          << "state " << s << " offers token '" << vocab.token(id).text
          << "' but has no compiled edge for it";
      ASSERT_LT(next, n);
      if (!visited[next]) {
        visited[next] = 1;
        parent[next] = s;
        via[next] = id;
        order.push_back(next);
      }
    }
  }

  if (cap == 0) {
    EXPECT_EQ(order.size(), static_cast<size_t>(n))
        << "mask-legal edges do not reach every compiled state";
  }
}

TEST(CompiledFsmTest, ExhaustiveEquivalenceOnScore) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  for (const QueryProfile& profile :
       {QueryProfile::SpjOnly(), DmlProfile()}) {
    CompileFsmOptions co;
    co.max_millis = 180000;  // sanitizer builds run the compiler ~20x slower
    auto table = CompileFsm(db, *vocab, profile, co);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    // The smallest dataset is always swept in full, whatever the cap.
    CheckTableAgainstInterpreter(db, *vocab, profile, *table, /*cap=*/0);
  }
}

TEST(CompiledFsmTest, ExhaustiveEquivalenceOnEveryBundledDataset) {
  // SPJ is the profile whose structural graph compiles on every bundled
  // dataset; the permissive profiles exceed the caps everywhere and fall
  // back to interpretation by design (see DESIGN.md §6h).
  const QueryProfile profile = QueryProfile::SpjOnly();
  for (const std::string& name : FuzzDatasetNames()) {
    auto db = BuildNamedDatabase(name, 0.05);
    ASSERT_TRUE(db.ok()) << name;
    auto vocab = Vocabulary::Build(*db, VocabularyOptions());
    ASSERT_TRUE(vocab.ok()) << name;
    CompileFsmOptions co;
    co.max_millis = 180000;  // sanitizer builds run the compiler ~20x slower
    auto table = CompileFsm(*db, *vocab, profile, co);
    ASSERT_TRUE(table.ok()) << name << ": " << table.status().ToString();
    SCOPED_TRACE(name);
    CheckTableAgainstInterpreter(*db, *vocab, profile, *table,
                                 ExhaustiveCap());
  }
}

TEST(CompiledFsmTest, CompiledWalksReproduceInterpretedWalks) {
  // Same Rng stream, same masks => the table-driven FSM generates the
  // exact same query byte for byte (random walks index into the mask).
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::SpjOnly();
  auto table = CompileFsm(db, *vocab, profile, CompileFsmOptions());
  ASSERT_TRUE(table.ok());
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    GenerationFsm interp(&db, &*vocab, profile);
    GenerationFsm compiled(&db, &*vocab, profile);
    compiled.AttachCompiledTable(&*table);
    auto qa = RandomWalkQuery(&interp, &rng_a);
    auto qb = RandomWalkQuery(&compiled, &rng_b);
    ASSERT_TRUE(qa.ok() && qb.ok());
    EXPECT_EQ(RenderSql(*qa, db.catalog()), RenderSql(*qb, db.catalog()))
        << "seed " << seed;
  }
}

TEST(CompiledFsmTest, MaskPoolIsDeduplicated) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  auto table =
      CompileFsm(db, *vocab, QueryProfile::SpjOnly(), CompileFsmOptions());
  ASSERT_TRUE(table.ok());
  const CompiledFsmStats stats = table->stats();
  EXPECT_GT(stats.num_states, 2u);
  EXPECT_GT(stats.num_edges, 0u);
  EXPECT_GT(stats.mask_pool_entries, 1u);
  // The pool is the point: 3 regime masks per state collapse to far fewer
  // distinct vectors (most states are budget-insensitive).
  EXPECT_LT(stats.mask_pool_entries, stats.num_states * 3);
  EXPECT_LE(stats.class_mask_pool_entries, stats.num_states);
  EXPECT_EQ(stats.vocab_size, vocab->size());
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CompiledFsmTest, SaveLoadRoundTripsByteForByte) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::SpjOnly();
  auto table = CompileFsm(db, *vocab, profile, CompileFsmOptions());
  ASSERT_TRUE(table.ok());

  const std::string path_a = ::testing::TempDir() + "compiled_fsm_a.bin";
  const std::string path_b = ::testing::TempDir() + "compiled_fsm_b.bin";
  ASSERT_TRUE(table->Save(path_a).ok());
  auto loaded = CompiledFsmTable::Load(path_a);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->fingerprint(), table->fingerprint());
  EXPECT_EQ(loaded->num_states(), table->num_states());
  EXPECT_EQ(loaded->start_state(), table->start_state());
  EXPECT_EQ(loaded->accept_state(), table->accept_state());
  EXPECT_EQ(loaded->vocab_size(), table->vocab_size());

  // Loaded tables answer identically on every state/regime/token.
  for (uint32_t s = 0; s < table->num_states(); ++s) {
    for (int r = 0; r < kNumBudgetRegimes; ++r) {
      ASSERT_EQ(loaded->Mask(s, r), table->Mask(s, r)) << s << "/" << r;
      ASSERT_EQ(loaded->MaskWidth(s, r), table->MaskWidth(s, r));
    }
    for (int id = 0; id < table->vocab_size(); ++id) {
      ASSERT_EQ(loaded->Next(s, id), table->Next(s, id));
    }
  }

  // And re-saving the loaded table reproduces the artifact byte for byte.
  ASSERT_TRUE(loaded->Save(path_b).ok());
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string bytes_a = slurp(path_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, slurp(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(CompiledFsmTest, LoadRejectsCorruptArtifacts) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  auto table =
      CompileFsm(db, *vocab, QueryProfile::SpjOnly(), CompileFsmOptions());
  ASSERT_TRUE(table.ok());
  const std::string path = ::testing::TempDir() + "compiled_fsm_corrupt.bin";
  ASSERT_TRUE(table->Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  auto write = [&](const std::string& b) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  };

  // Missing file.
  EXPECT_FALSE(CompiledFsmTable::Load(path + ".nope").ok());
  // Wrong magic.
  std::string bad = bytes;
  bad[0] ^= 0x5a;
  write(bad);
  EXPECT_FALSE(CompiledFsmTable::Load(path).ok());
  // Truncated payload.
  write(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(CompiledFsmTable::Load(path).ok());
  // One flipped payload byte must fail the checksum.
  bad = bytes;
  bad[bytes.size() / 2] ^= 0x01;
  write(bad);
  EXPECT_FALSE(CompiledFsmTable::Load(path).ok());
  // The pristine bytes still load (the harness itself is sound).
  write(bytes);
  EXPECT_TRUE(CompiledFsmTable::Load(path).ok());
  std::remove(path.c_str());
}

TEST(CompiledFsmTest, DiskCacheRecompilesCorruptArtifacts) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::SpjOnly();
  const std::string dir = ::testing::TempDir() + "compiled_fsm_cache";

  auto first = BuildOrLoadCompiledFsm(db, *vocab, profile,
                                      CompileFsmOptions(), dir);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Second call is served from disk and agrees on identity.
  auto second = BuildOrLoadCompiledFsm(db, *vocab, profile,
                                       CompileFsmOptions(), dir);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->fingerprint(), second->fingerprint());
  EXPECT_EQ(first->num_states(), second->num_states());

  // Stomp every artifact in the cache dir; the loader must fall back to a
  // recompile instead of trusting the corrupt bytes.
  int stomped = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "not a compiled fsm artifact";
    ++stomped;
  }
  ASSERT_GT(stomped, 0) << "cache dir holds no artifact to corrupt";
  auto third = BuildOrLoadCompiledFsm(db, *vocab, profile,
                                      CompileFsmOptions(), dir);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->fingerprint(), first->fingerprint());
  EXPECT_EQ(third->num_states(), first->num_states());
}

TEST(CompiledFsmTest, FingerprintSeparatesCompilationInputs) {
  Database score = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(score, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  VocabularyOptions small;
  small.values_per_column = 2;
  auto vocab_small = Vocabulary::Build(score, small);
  ASSERT_TRUE(vocab_small.ok());
  auto tpch = BuildNamedDatabase("tpch", 0.05);
  ASSERT_TRUE(tpch.ok());
  auto tpch_vocab = Vocabulary::Build(*tpch, VocabularyOptions());
  ASSERT_TRUE(tpch_vocab.ok());

  const uint64_t base =
      CompiledFsmFingerprint(score, *vocab, QueryProfile::SpjOnly());
  // Deterministic for identical inputs...
  EXPECT_EQ(base,
            CompiledFsmFingerprint(score, *vocab, QueryProfile::SpjOnly()));
  // ...and sensitive to each input: profile, vocabulary, database.
  EXPECT_NE(base, CompiledFsmFingerprint(score, *vocab, DmlProfile()));
  EXPECT_NE(base, CompiledFsmFingerprint(score, *vocab, QueryProfile()));
  EXPECT_NE(base, CompiledFsmFingerprint(score, *vocab_small,
                                         QueryProfile::SpjOnly()));
  EXPECT_NE(base, CompiledFsmFingerprint(*tpch, *tpch_vocab,
                                         QueryProfile::SpjOnly()));
}

TEST(CompiledFsmTest, InjectedCorruptionsAreCaughtByTheOracle) {
  // The two mutation hooks behind `lsgfuzz --inject-bug`: each must be
  // detected by the lockstep compiled-vs-interpreted oracle within a
  // modest episode budget, or the differential harness is toothless.
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::SpjOnly();
  auto pristine = CompileFsm(db, *vocab, profile, CompileFsmOptions());
  ASSERT_TRUE(pristine.ok());

  for (const std::string bug : {"mask-bit", "transition-swap"}) {
    CompiledFsmTable corrupt = *pristine;  // never mutate the original
    if (bug == "mask-bit") {
      corrupt.CorruptMaskBit(/*salt=*/7);
    } else {
      corrupt.CorruptTransitionSwap(/*salt=*/7);
    }
    DifferentialOracle oracle(&db);
    GenerationFsm walker(&db, &*vocab, profile);
    Rng rng(7);
    bool caught = false;
    for (int ep = 0; ep < 100 && !caught; ++ep) {
      walker.Reset();
      std::vector<int> actions;
      auto ast = RecordedRandomWalk(&walker, &rng, &actions);
      ASSERT_TRUE(ast.ok());
      auto v = oracle.CheckCompiledFsm(&*vocab, profile, &corrupt, actions);
      if (v.has_value()) {
        EXPECT_EQ(v->oracle, "compiled-fsm") << v->detail;
        caught = true;
      }
    }
    EXPECT_TRUE(caught) << "oracle never noticed injected bug: " << bug;

    // Control: the pristine table stays clean on the same walks.
    Rng rng2(7);
    for (int ep = 0; ep < 10; ++ep) {
      walker.Reset();
      std::vector<int> actions;
      ASSERT_TRUE(RecordedRandomWalk(&walker, &rng2, &actions).ok());
      auto v = oracle.CheckCompiledFsm(&*vocab, profile, &*pristine, actions);
      EXPECT_FALSE(v.has_value()) << "[" << v->oracle << "] " << v->detail;
    }
  }
}

TEST(CompiledFsmTest, CompileCapsAreEnforcedAndCacheIsKeyedByCaps) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::SpjOnly();

  CompileFsmOptions tiny;
  tiny.max_states = 8;
  auto refused = CompileFsm(db, *vocab, profile, tiny);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // A negative probe under tiny caps must not shadow a feasible compile
  // under the default caps (the memo is keyed by caps, not just inputs).
  auto& cache = CompiledFsmCache::Global();
  EXPECT_EQ(cache.GetOrCompile(db, *vocab, profile, tiny, ""), nullptr);
  auto table =
      cache.GetOrCompile(db, *vocab, profile, CompileFsmOptions(), "");
  ASSERT_NE(table, nullptr);
  // Memoised: the same caps hand back the same shared artifact.
  EXPECT_EQ(table.get(),
            cache.GetOrCompile(db, *vocab, profile, CompileFsmOptions(), "")
                .get());
}

TEST(CompiledFsmTest, CacheDeduplicatesConcurrentCompiles) {
  // Regression test for the memo-lock convoy: GetOrCompile used to hold
  // the process-wide cache mutex across the whole CompileFsm call, so
  // concurrent first requests serialized behind one compile (and, with a
  // lock-hierarchy violation waiting to happen, took the logging mutex
  // underneath it). The refactored cache compiles with the mutex released
  // and deduplicates same-key requests through an in-progress slot: many
  // threads asking for one key must trigger exactly one compile attempt
  // and all receive the same shared artifact.
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::SpjOnly();

  CompiledFsmCache cache;  // standalone: counters start at zero
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CompiledFsmTable>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] =
          cache.GetOrCompile(db, *vocab, profile, CompileFsmOptions(), "");
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_NE(results[0], nullptr);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get()) << "thread " << t;
  }
  const CompiledFsmCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.compiles, 1u);  // dedup: one attempt, not kThreads
  EXPECT_EQ(stats.misses, 1u);
  // Late arrivals count as hits, racers as dedup waits; together they
  // account for every other request exactly once.
  EXPECT_EQ(stats.hits + stats.dedup_waits,
            static_cast<uint64_t>(kThreads - 1));
}

TEST(CompiledFsmTest, SharedTableIsSafeAcrossWalkingThreads) {
  // One immutable table, many concurrently walking FSMs — the sharing
  // contract the generation service relies on. Run this binary under TSan
  // via the fsm_tsan target to turn the assertion into a race detector.
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::SpjOnly();
  auto table = CompileFsm(db, *vocab, profile, CompileFsmOptions());
  ASSERT_TRUE(table.ok());

  constexpr int kThreads = 4;
  constexpr int kEpisodes = 25;
  std::atomic<int> ok_episodes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      GenerationFsm fsm(&db, &*vocab, profile);
      fsm.AttachCompiledTable(&*table);
      for (int ep = 0; ep < kEpisodes; ++ep) {
        fsm.Reset();
        auto ast = RandomWalkQuery(&fsm, &rng);
        if (ast.ok() && fsm.compiled_active()) {
          // relaxed: independent tally, read only after join.
          ok_episodes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_episodes.load(), kThreads * kEpisodes);
}

}  // namespace
}  // namespace lsg
