#include <gtest/gtest.h>

#include <cmath>

#include "rl/actor_critic_trainer.h"
#include "rl/policy_network.h"
#include "rl/reinforce_trainer.h"
#include "rl/reward.h"
#include "rl/trajectory.h"
#include "rl/value_network.h"

namespace lsg {
namespace {

// ---------------------------------------------------------------- reward

TEST(ConstraintTest, PointSatisfactionWithTolerance) {
  Constraint c = Constraint::Point(ConstraintMetric::kCardinality, 1000);
  EXPECT_TRUE(c.Satisfied(1000));
  EXPECT_TRUE(c.Satisfied(950));   // within ±10%
  EXPECT_TRUE(c.Satisfied(1100));
  EXPECT_FALSE(c.Satisfied(1101));
  EXPECT_FALSE(c.Satisfied(899));
}

TEST(ConstraintTest, RangeSatisfaction) {
  Constraint c = Constraint::Range(ConstraintMetric::kCost, 1000, 2000);
  EXPECT_TRUE(c.Satisfied(1000));
  EXPECT_TRUE(c.Satisfied(2000));
  EXPECT_TRUE(c.Satisfied(1500));
  EXPECT_FALSE(c.Satisfied(999));
  EXPECT_FALSE(c.Satisfied(2001));
}

TEST(ConstraintTest, ToStringReadable) {
  EXPECT_EQ(Constraint::Point(ConstraintMetric::kCardinality, 1000).ToString(),
            "Card=1K");
  EXPECT_EQ(Constraint::Range(ConstraintMetric::kCost, 1000, 2000).ToString(),
            "Cost in [1K,2K]");
}

TEST(RewardTest, PaperExample3PointConstraint) {
  // Card = 10,000; ĉ = 100 -> 0.01; ĉ = 11,000 -> ~0.909 ("0.9" in §4.2).
  RewardFunction r(Constraint::Point(ConstraintMetric::kCardinality, 10000));
  EXPECT_NEAR(r.Reward(true, 100), 0.01, 1e-9);
  EXPECT_NEAR(r.Reward(true, 11000), 10000.0 / 11000.0, 1e-9);
}

TEST(RewardTest, PaperExample4RangeConstraint) {
  // Card = [1K, 2K]; ĉ = 1.5K -> 1; ĉ = 10K -> 0.2 (§4.2 Example 4).
  RewardFunction r(
      Constraint::Range(ConstraintMetric::kCardinality, 1000, 2000));
  EXPECT_DOUBLE_EQ(r.Reward(true, 1500), 1.0);
  EXPECT_NEAR(r.Reward(true, 10000), 0.2, 1e-9);
}

TEST(RewardTest, NonExecutableGetsZero) {
  RewardFunction r(Constraint::Point(ConstraintMetric::kCardinality, 10));
  EXPECT_DOUBLE_EQ(r.Reward(false, 10), 0.0);
}

TEST(RewardTest, ZeroMetricGetsZero) {
  RewardFunction r(Constraint::Point(ConstraintMetric::kCardinality, 10));
  EXPECT_DOUBLE_EQ(r.Reward(true, 0), 0.0);
}

TEST(RewardTest, RangeBelowUsesLeftBound) {
  RewardFunction r(
      Constraint::Range(ConstraintMetric::kCardinality, 1000, 2000));
  // ĉ = 500: max(min(0.5, 2), min(0.25, 4)) = 0.5.
  EXPECT_NEAR(r.Reward(true, 500), 0.5, 1e-9);
}

TEST(RewardTest, RewardIncreasesTowardTarget) {
  RewardFunction r(Constraint::Point(ConstraintMetric::kCost, 100));
  double prev = 0;
  for (double m : {1.0, 10.0, 50.0, 90.0, 100.0}) {
    double v = r.Reward(true, m);
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

// ------------------------------------------------------------ trajectory

TEST(TrajectoryTest, RewardToGo) {
  Trajectory t;
  t.rewards = {1.0, 0.0, 2.0};
  auto rtg = t.RewardToGo();
  ASSERT_EQ(rtg.size(), 3u);
  EXPECT_DOUBLE_EQ(rtg[0], 3.0);
  EXPECT_DOUBLE_EQ(rtg[1], 2.0);
  EXPECT_DOUBLE_EQ(rtg[2], 2.0);
  EXPECT_DOUBLE_EQ(t.TotalReward(), 3.0);
}

// -------------------------------------------------------------- toy env

/// Sequence-matching toy environment: emit exactly 3 symbols from {0,1,2}
/// then EOF (id 3). Rewards are dense, like the paper's environment
/// (executable partial queries earn shaped rewards): each correct symbol
/// earns 1/3, and the EOF step repeats the overall match fraction.
class ToyEnv : public Environment {
 public:
  explicit ToyEnv(std::vector<int> target) : target_(std::move(target)) {}

  void Reset() override {
    emitted_.clear();
    match_ = 0;
  }

  const std::vector<uint8_t>& ValidActions() override {
    mask_.assign(4, 0);
    if (emitted_.size() < target_.size()) {
      mask_[0] = mask_[1] = mask_[2] = 1;
    } else {
      mask_[3] = 1;  // EOF
    }
    return mask_;
  }

  StatusOr<EnvStepResult> Step(int action) override {
    EnvStepResult r;
    if (action == 3) {
      r.reward = static_cast<double>(match_) / target_.size();
      r.done = true;
      r.executable = true;
      r.metric = r.reward;
      r.satisfied = match_ == static_cast<int>(target_.size());
    } else {
      const bool hit = action == target_[emitted_.size()];
      if (hit) ++match_;
      r.reward = hit ? 1.0 / target_.size() : 0.0;
      r.executable = true;
      r.metric = static_cast<double>(match_) / target_.size();
      emitted_.push_back(action);
    }
    return r;
  }

  QueryAst TakeAst() override { return QueryAst(); }
  int vocab_size() const override { return 4; }

 private:
  std::vector<int> target_;
  std::vector<int> emitted_;
  std::vector<uint8_t> mask_;
  int match_ = 0;
};

TrainerOptions FastOptions(uint64_t seed) {
  TrainerOptions o;
  o.batch_size = 8;
  o.seed = seed;
  o.actor_lr = 3e-3f;
  o.critic_lr = 9e-3f;
  o.net.hidden_dim = 16;
  o.net.num_layers = 1;
  o.net.dropout = 0.0f;
  return o;
}

TEST(ActorCriticTrainerTest, LearnsToySequence) {
  ToyEnv env({2, 0, 1});
  ActorCriticTrainer trainer(&env, FastOptions(5));
  double first = 0, last = 0;
  for (int e = 0; e < 150; ++e) {
    auto st = trainer.TrainEpoch();
    ASSERT_TRUE(st.ok());
    if (e == 0) first = st->mean_final_reward;
    last = st->mean_final_reward;
  }
  EXPECT_GT(last, first);
  EXPECT_GT(last, 0.7);  // near-perfect sequence reproduction
}

TEST(ActorCriticTrainerTest, GenerateUsesLearnedPolicy) {
  ToyEnv env({1, 1, 1});
  ActorCriticTrainer trainer(&env, FastOptions(6));
  for (int e = 0; e < 150; ++e) ASSERT_TRUE(trainer.TrainEpoch().ok());
  int satisfied = 0;
  for (int i = 0; i < 50; ++i) {
    auto t = trainer.Generate();
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t->completed);
    EXPECT_EQ(t->actions.size(), 4u);  // 3 symbols + EOF
    if (t->satisfied) ++satisfied;
  }
  EXPECT_GT(satisfied, 30);
}

TEST(ReinforceTrainerTest, LearnsToySequence) {
  ToyEnv env({0, 2, 1});
  ReinforceTrainer trainer(&env, FastOptions(7));
  double last = 0;
  for (int e = 0; e < 200; ++e) {
    auto st = trainer.TrainEpoch();
    ASSERT_TRUE(st.ok());
    last = st->mean_final_reward;
  }
  EXPECT_GT(last, 0.6);
}

TEST(TrainerComparisonTest, ActorCriticConvergesAtLeastAsWell) {
  // The paper's §7.3 claim in miniature: with the same budget the
  // actor-critic reaches a final reward no worse than REINFORCE (allowing
  // a small stochastic slack).
  double ac_sum = 0, rf_sum = 0;
  for (uint64_t seed : {11u, 12u, 13u}) {
    ToyEnv env1({2, 1, 0}), env2({2, 1, 0});
    ActorCriticTrainer ac(&env1, FastOptions(seed));
    ReinforceTrainer rf(&env2, FastOptions(seed));
    double ac_last = 0, rf_last = 0;
    for (int e = 0; e < 120; ++e) {
      auto s1 = ac.TrainEpoch();
      auto s2 = rf.TrainEpoch();
      ASSERT_TRUE(s1.ok() && s2.ok());
      ac_last = s1->mean_final_reward;
      rf_last = s2->mean_final_reward;
    }
    ac_sum += ac_last;
    rf_sum += rf_last;
  }
  EXPECT_GT(ac_sum, rf_sum - 0.3);
}

// -------------------------------------------------------------- networks

TEST(PolicyNetworkTest, DistributionRespectsMask) {
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  PolicyNetwork net(5, o);
  auto ep = net.BeginEpisode(false);
  std::vector<uint8_t> mask = {1, 0, 1, 0, 0};
  const auto& p = net.NextDistribution(&ep, mask);
  EXPECT_FLOAT_EQ(p[1], 0.f);
  EXPECT_FLOAT_EQ(p[3], 0.f);
  EXPECT_FLOAT_EQ(p[4], 0.f);
  EXPECT_NEAR(p[0] + p[2], 1.f, 1e-5);
}

TEST(PolicyNetworkTest, SamplingHonorsMask) {
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  PolicyNetwork net(6, o);
  Rng rng(3);
  auto ep = net.BeginEpisode(false);
  std::vector<uint8_t> mask = {0, 0, 1, 0, 1, 0};
  const auto& p = net.NextDistribution(&ep, mask);
  for (int i = 0; i < 200; ++i) {
    int a = net.SampleAction(p, &rng);
    EXPECT_TRUE(a == 2 || a == 4);
  }
}

TEST(PolicyNetworkTest, GreedyPicksArgmax) {
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  PolicyNetwork net(4, o);
  std::vector<float> probs = {0.1f, 0.6f, 0.2f, 0.1f};
  EXPECT_EQ(net.GreedyAction(probs), 1);
}

TEST(PolicyNetworkTest, EntropyDiagnostic) {
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  PolicyNetwork net(4, o);
  auto ep = net.BeginEpisode(false);
  std::vector<uint8_t> mask = {1, 1, 1, 1};
  net.NextDistribution(&ep, mask);
  double h = PolicyNetwork::MeanEntropy(ep);
  EXPECT_GT(h, 0.0);
  EXPECT_LE(h, std::log(4.0) + 1e-6);
}

TEST(PolicyNetworkTest, GradientPushesTowardRewardedAction) {
  // One-step episode with positive advantage on action 2: after the update,
  // the probability of action 2 must rise.
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  o.dropout = 0.0f;
  PolicyNetwork net(4, o);
  Adam opt(net.Params(), 0.05f);
  std::vector<uint8_t> mask = {1, 1, 1, 1};
  float before;
  {
    auto ep = net.BeginEpisode(false);
    before = net.NextDistribution(&ep, mask)[2];
  }
  for (int iter = 0; iter < 5; ++iter) {
    auto ep = net.BeginEpisode(true);
    net.NextDistribution(&ep, mask);
    net.RecordAction(&ep, 2);
    net.AccumulateGradients(ep, {1.0}, 0.0);
    opt.Step();
  }
  auto ep = net.BeginEpisode(false);
  float after = net.NextDistribution(&ep, mask)[2];
  EXPECT_GT(after, before);
}

TEST(ValueNetworkTest, FitsConstantTarget) {
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  o.dropout = 0.0f;
  ValueNetwork net(4, o);
  Adam opt(net.Params(), 0.02f);
  // Train V(s0) toward 0.7 using the same input each time.
  float v = 0;
  for (int iter = 0; iter < 300; ++iter) {
    auto ep = net.BeginEpisode(true);
    v = net.StepValue(&ep, net.bos_index());
    net.AccumulateGradients(ep, {v - 0.7});
    opt.Step();
  }
  EXPECT_NEAR(v, 0.7f, 0.05f);
}

TEST(ValueNetworkTest, TracksInputs) {
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  ValueNetwork net(4, o);
  auto ep = net.BeginEpisode(false);
  net.StepValue(&ep, net.bos_index());
  net.StepValue(&ep, 1);
  EXPECT_EQ(ep.values.size(), 2u);
  EXPECT_EQ(ep.inputs.size(), 2u);
  EXPECT_EQ(ep.inputs[0], net.bos_index());
}

TEST(ExtraFeatureTest, AcExtendInputChangesDistribution) {
  NetworkOptions o;
  o.hidden_dim = 8;
  o.num_layers = 1;
  o.extra_input_dims = 2;
  o.dropout = 0.0f;
  PolicyNetwork net(4, o);
  std::vector<uint8_t> mask = {1, 1, 1, 1};
  auto ep1 = net.BeginEpisode(false);
  ep1.extra = {0.0f, 0.0f};
  auto p1 = net.NextDistribution(&ep1, mask);
  auto ep2 = net.BeginEpisode(false);
  ep2.extra = {5.0f, -5.0f};
  auto p2 = net.NextDistribution(&ep2, mask);
  double diff = 0;
  for (int i = 0; i < 4; ++i) diff += std::abs(p1[i] - p2[i]);
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace lsg
