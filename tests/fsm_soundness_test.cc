// Deeper FSM soundness properties:
//  1. Mask soundness — every action the FSM offers is structurally legal:
//     replaying the prefix on a fresh FSM and taking any offered action
//     must succeed (not just the one the walk happened to choose).
//  2. Estimator sanity at dataset scale — estimates for FSM-generated
//     queries are finite, non-negative, and not absurdly far from truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/workload.h"
#include "datasets/tpch_like.h"
#include "exec/executor.h"
#include "fsm/compiled_fsm.h"
#include "fsm/generation_fsm.h"
#include "optimizer/cardinality_estimator.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// Params 0-2 run the interpreted FSM under the original profile set;
// params 3-4 re-run the identical soundness suite with a compiled
// mask/transition table attached (profiles whose structural state graph
// fits the compile caps), so every property here doubles as a
// compiled-path test.
class MaskSoundness : public ::testing::TestWithParam<int> {};

TEST_P(MaskSoundness, EveryOfferedActionIsLegal) {
  Database db = BuildScoreStudentDb();
  VocabularyOptions vo;
  vo.values_per_column = 6;
  auto vocab = Vocabulary::Build(db, vo);
  ASSERT_TRUE(vocab.ok());
  QueryProfile profile;
  bool use_compiled = false;
  switch (GetParam()) {
    case 0:
      break;
    case 1:
      profile = QueryProfile::Full();
      break;
    case 2:
      profile.max_nesting_depth = 2;
      break;
    case 3:
      profile = QueryProfile::SpjOnly();
      use_compiled = true;
      break;
    default:
      profile.allow_select = false;
      profile.allow_insert = true;
      profile.allow_update = true;
      profile.allow_delete = true;
      use_compiled = true;
      break;
  }
  std::optional<CompiledFsmTable> table;
  if (use_compiled) {
    auto compiled = CompileFsm(db, *vocab, profile, CompileFsmOptions());
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    table.emplace(std::move(*compiled));
  }
  auto make_fsm = [&] {
    GenerationFsm fsm(&db, &*vocab, profile);
    if (table.has_value()) fsm.AttachCompiledTable(&*table);
    return fsm;
  };

  Rng rng(4000 + GetParam());
  for (int walk = 0; walk < 25; ++walk) {
    GenerationFsm fsm = make_fsm();
    std::vector<int> prefix;
    while (!fsm.done()) {
      const auto& mask = fsm.ValidActions();
      if (table.has_value()) {
        EXPECT_TRUE(fsm.compiled_active())
            << "mask-legal walk fell off the compiled table after "
            << prefix.size() << " tokens";
      }
      std::vector<int> allowed;
      for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) allowed.push_back(static_cast<int>(i));
      }
      ASSERT_FALSE(allowed.empty());
      // Check a sample of the offered actions (up to 6) by replaying the
      // prefix on a fresh FSM and stepping the candidate.
      rng.Shuffle(&allowed);
      size_t check = std::min<size_t>(6, allowed.size());
      for (size_t k = 0; k < check; ++k) {
        GenerationFsm replay = make_fsm();
        for (int a : prefix) {
          ASSERT_TRUE(replay.Step(a).ok());
        }
        EXPECT_TRUE(replay.Step(allowed[k]).ok())
            << "offered action '" << vocab->token(allowed[k]).text
            << "' rejected after prefix of " << prefix.size() << " tokens";
      }
      // Continue the walk with a random offered action.
      int chosen = allowed[rng.Uniform(allowed.size())];
      ASSERT_TRUE(fsm.Step(chosen).ok());
      prefix.push_back(chosen);
      ASSERT_LT(prefix.size(), 200u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, MaskSoundness, ::testing::Range(0, 5));

TEST(MaskSoundness, ExecutablePrefixesReallyExecute) {
  // Whenever the FSM reports an executable prefix, the partial AST must
  // execute without error (it feeds the reward path).
  Database db = BuildScoreStudentDb();
  VocabularyOptions vo;
  vo.values_per_column = 6;
  auto vocab = Vocabulary::Build(db, vo);
  ASSERT_TRUE(vocab.ok());
  Executor exec(&db);
  GenerationFsm fsm(&db, &*vocab, QueryProfile::Full());
  Rng rng(4242);
  int executable_states = 0;
  for (int walk = 0; walk < 120; ++walk) {
    fsm.Reset();
    while (!fsm.done()) {
      const auto& mask = fsm.ValidActions();
      int chosen = -1, seen = 0;
      for (size_t i = 0; i < mask.size(); ++i) {
        if (!mask[i]) continue;
        ++seen;
        if (rng.Uniform(seen) == 0) chosen = static_cast<int>(i);
      }
      ASSERT_GE(chosen, 0);
      ASSERT_TRUE(fsm.Step(chosen).ok());
      if (!fsm.done() && fsm.IsExecutablePrefix()) {
        ++executable_states;
        auto card = exec.Cardinality(fsm.builder().ast());
        ASSERT_TRUE(card.ok())
            << RenderSql(fsm.builder().ast(), db.catalog());
      }
    }
    (void)fsm.TakeAst();
  }
  EXPECT_GT(executable_states, 100);
}

TEST(EstimatorScaleTest, GeneratedQueriesHaveSaneEstimates) {
  Database db = BuildTpchLike(DatasetScale{0.5, 1});
  DatabaseStats stats = DatabaseStats::Collect(db);
  CardinalityEstimator est(&db, &stats);
  Executor exec(&db);
  VocabularyOptions vo;
  vo.values_per_column = 20;
  auto vocab = Vocabulary::Build(db, vo);
  ASSERT_TRUE(vocab.ok());
  GenerationFsm fsm(&db, &*vocab, QueryProfile());
  Rng rng(5150);
  std::vector<double> qerrors;
  for (int i = 0; i < 150; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    double e = est.EstimateCardinality(*ast);
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GE(e, 0.0);
    auto truth = exec.Cardinality(*ast);
    if (!truth.ok()) continue;  // join-blowup guard: skip
    double t = static_cast<double>(*truth);
    qerrors.push_back(std::max((e + 1) / (t + 1), (t + 1) / (e + 1)));
  }
  ASSERT_GT(qerrors.size(), 100u);
  std::sort(qerrors.begin(), qerrors.end());
  double median = qerrors[qerrors.size() / 2];
  double p90 = qerrors[qerrors.size() * 9 / 10];
  // Classic System-R estimators are rough, but must stay in a usable band
  // on this workload (predicates over histogrammed columns + FK joins).
  EXPECT_LT(median, 4.0);
  EXPECT_LT(p90, 100.0);
}

TEST(EstimatorScaleTest, EstimatesMonotoneInRangeWidth) {
  // Widening a range predicate must never decrease the estimate.
  Database db = BuildTpchLike(DatasetScale{0.5, 1});
  DatabaseStats stats = DatabaseStats::Collect(db);
  CardinalityEstimator est(&db, &stats);
  int li = db.catalog().FindTable("lineitem");
  double prev = -1.0;
  for (int q = 5; q <= 50; q += 5) {
    SelectQuery sel;
    sel.tables = {li};
    sel.items.push_back({AggFunc::kNone, {li, 0}});
    Predicate p;
    p.column = {li, 4};  // l_quantity in [1, 50]
    p.op = CompareOp::kLe;
    p.value = Value(int64_t{q});
    sel.where.predicates.push_back(std::move(p));
    double e = est.EstimateSelect(sel, nullptr);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

}  // namespace
}  // namespace lsg
