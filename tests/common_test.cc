#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace lsg {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(),
      Status::Unimplemented("").code(),   Status::Internal("").code(),
      Status::ResourceExhausted("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  auto r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  auto r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status ChainOk() {
  LSG_RETURN_IF_ERROR(Status::Ok());
  return Status::Ok();
}

Status ChainFail() {
  LSG_RETURN_IF_ERROR(Status::Internal("boom"));
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfError) {
  EXPECT_TRUE(ChainOk().ok());
  EXPECT_EQ(ChainFail().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleIn01) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(19);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // Under uniform, ~10%; zipf(1.0) should put far more mass on the head.
  EXPECT_GT(low, n / 4);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(21);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(low / static_cast<double>(n), 0.1, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(RngTest, CategoricalAllZeroReturnsSize) {
  Rng rng(25);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.Categorical(w), w.size());
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(27);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.SampleWithoutReplacement(20, 10);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (size_t v : s) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(29);
  auto s = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("from"), "FROM");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("query.sql", ".sql"));
  EXPECT_FALSE(EndsWith("x", ".sql"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("z"), "z");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(950), "950");
  EXPECT_EQ(HumanCount(1500), "1.5K");
  EXPECT_EQ(HumanCount(2000000), "2M");
  EXPECT_EQ(HumanCount(3.2e9), "3.2G");
}

// ---------------------------------------------------------------- misc

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  double t0 = w.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(w.ElapsedSeconds(), t0);
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

TEST(LoggingTest, LevelFiltering) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LSG_LOG(Info) << "should be filtered";
  SetLogLevel(prev);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  LSG_CHECK(1 + 1 == 2) << "unreachable";
}

TEST(LoggingTest, SplitMix64IsStableAndMixes) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));  // adjacent seeds decorrelate
  EXPECT_NE(SplitMix64(0), 0u);
}

TEST(LoggingTest, ConcurrentLoggersNeverTearLines) {
  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  SetLogSink(capture);
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        LSG_LOG(Info) << "BEGIN worker=" << t << " line=" << i << " END";
      }
    });
  }
  for (auto& t : threads) t.join();
  SetLogLevel(prev);
  SetLogSink(nullptr);

  std::rewind(capture);
  char buf[512];
  int lines = 0;
  while (std::fgets(buf, sizeof(buf), capture) != nullptr) {
    std::string line(buf);
    // Every emitted line must be whole: one BEGIN, one END, END at the end.
    EXPECT_NE(line.find("BEGIN"), std::string::npos) << line;
    EXPECT_EQ(line.rfind("END\n"), line.size() - 4) << line;
    EXPECT_EQ(line.find("BEGIN"), line.rfind("BEGIN")) << line;
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kLines);
  std::fclose(capture);
}

}  // namespace
}  // namespace lsg
