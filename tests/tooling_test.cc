// Tests for the tooling surface: EXPLAIN rendering, workload report
// export (CSV/JSON), and the benchmark-provided seed templates.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/template_generator.h"
#include "core/report_io.h"
#include "datasets/benchmark_templates.h"
#include "datasets/job_like.h"
#include "datasets/tpch_like.h"
#include "datasets/xuetang_like.h"
#include "optimizer/explain.h"
#include "sql/parser.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------- explain

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest()
      : db_(BuildScoreStudentDb()),
        stats_(DatabaseStats::Collect(db_)),
        est_(&db_, &stats_),
        cost_(&est_) {}
  Database db_;
  DatabaseStats stats_;
  CardinalityEstimator est_;
  CostModel cost_;
};

TEST_F(ExplainTest, SelectPlanShowsStages) {
  auto ast = ParseSql(
      "SELECT Student.Name FROM Score JOIN Student ON Score.ID = Student.ID "
      "WHERE Score.Grade < 80 GROUP BY Student.Name",
      db_.catalog());
  ASSERT_TRUE(ast.ok());
  std::string plan = Explain(*ast, db_.catalog(), est_, cost_);
  EXPECT_NE(plan.find("Select  (est rows="), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan Score"), std::string::npos);
  EXPECT_NE(plan.find("HashJoin Student"), std::string::npos);
  EXPECT_NE(plan.find("Filter: 1 predicate(s)"), std::string::npos);
  EXPECT_NE(plan.find("GroupBy: 1 column(s)"), std::string::npos);
}

TEST_F(ExplainTest, SubqueryPlansNest) {
  auto ast = ParseSql(
      "SELECT Score.ID FROM Score WHERE Score.ID IN "
      "(SELECT Student.ID FROM Student)",
      db_.catalog());
  ASSERT_TRUE(ast.ok());
  std::string plan = Explain(*ast, db_.catalog(), est_, cost_);
  EXPECT_NE(plan.find("Subquery:"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan Student"), std::string::npos);
}

TEST_F(ExplainTest, DmlPlans) {
  auto del = ParseSql("DELETE FROM Score WHERE Score.Grade < 65",
                      db_.catalog());
  ASSERT_TRUE(del.ok());
  std::string plan = Explain(*del, db_.catalog(), est_, cost_);
  EXPECT_NE(plan.find("Delete from Score"), std::string::npos) << plan;
  EXPECT_NE(plan.find("est cost="), std::string::npos);
}

// --------------------------------------------------------------- report IO

GenerationReport MakeReport() {
  GenerationReport report;
  report.attempts = 2;
  report.satisfied = 1;
  report.accuracy = 0.5;
  GeneratedQuery a;
  a.sql = "SELECT Score.ID FROM Score WHERE Score.Course = 'db'";
  a.metric = 10;
  a.satisfied = true;
  a.features.num_tables = 1;
  a.features.num_predicates = 1;
  a.features.num_tokens = 9;
  GeneratedQuery b;
  b.sql = "SELECT \"quoted\" FROM x";  // exercises escaping
  b.metric = 3.5;
  report.queries.push_back(std::move(a));
  report.queries.push_back(std::move(b));
  return report;
}

TEST(ReportIoTest, CsvRoundTripFields) {
  std::string path =
      std::filesystem::temp_directory_path() / "lsg_report_test.csv";
  ASSERT_TRUE(WriteReportCsv(MakeReport(), path).ok());
  std::string content = ReadFile(path);
  EXPECT_NE(content.find("sql,metric,satisfied"), std::string::npos);
  EXPECT_NE(content.find("'db'"), std::string::npos);
  // Internal quotes doubled per RFC 4180.
  EXPECT_NE(content.find("\"\"quoted\"\""), std::string::npos) << content;
  EXPECT_NE(content.find(",10.0000,1,SELECT,1,0,0,1,9"), std::string::npos)
      << content;
  std::remove(path.c_str());
}

TEST(ReportIoTest, JsonWellFormedEnough) {
  std::string path =
      std::filesystem::temp_directory_path() / "lsg_report_test.json";
  ASSERT_TRUE(WriteReportJson(MakeReport(), path).ok());
  std::string content = ReadFile(path);
  EXPECT_NE(content.find("\"accuracy\": 0.5"), std::string::npos);
  EXPECT_NE(content.find("\\\"quoted\\\""), std::string::npos) << content;
  // Balanced braces/brackets (coarse well-formedness check).
  EXPECT_EQ(std::count(content.begin(), content.end(), '{'),
            std::count(content.begin(), content.end(), '}'));
  EXPECT_EQ(std::count(content.begin(), content.end(), '['),
            std::count(content.begin(), content.end(), ']'));
  std::remove(path.c_str());
}

TEST(ReportIoTest, JsonEscapeCoversControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ReportIoTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteReportCsv(MakeReport(), "/nonexistent/dir/x.csv").ok());
  EXPECT_FALSE(WriteReportJson(MakeReport(), "/nonexistent/dir/x.json").ok());
}

// --------------------------------------------------------- seed templates

class SeedTemplates : public ::testing::TestWithParam<int> {};

TEST_P(SeedTemplates, AllParseAndEstimate) {
  std::string name;
  Database db;
  switch (GetParam()) {
    case 0:
      name = "TPC-H";
      db = BuildTpchLike();
      break;
    case 1:
      name = "JOB";
      db = BuildJobLike();
      break;
    default:
      name = "XueTang";
      db = BuildXuetangLike();
      break;
  }
  DatabaseStats stats = DatabaseStats::Collect(db);
  CardinalityEstimator est(&db, &stats);
  auto templates = TemplatesForDataset(name);
  EXPECT_EQ(templates.size(), 8u);
  for (const std::string& sql : templates) {
    auto ast = ParseSql(sql, db.catalog());
    ASSERT_TRUE(ast.ok()) << sql << " -> " << ast.status().ToString();
    double e = est.EstimateCardinality(*ast);
    EXPECT_TRUE(std::isfinite(e)) << sql;
    EXPECT_GE(e, 0.0) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, SeedTemplates, ::testing::Range(0, 3));

TEST(SeedTemplates, UnknownDatasetEmpty) {
  EXPECT_TRUE(TemplatesForDataset("nope").empty());
}

TEST(SeedTemplates, TemplateGeneratorUsesSeeds) {
  Database db = BuildTpchLike();
  DatabaseStats stats = DatabaseStats::Collect(db);
  CardinalityEstimator est(&db, &stats);
  CostModel cost(&est);
  VocabularyOptions vo;
  auto vocab = Vocabulary::Build(db, vo);
  ASSERT_TRUE(vocab.ok());
  EnvironmentOptions eo;
  SqlGenEnvironment env(&db, &*vocab, &est, &cost,
                        Constraint::Range(ConstraintMetric::kCardinality, 10,
                                          500),
                        eo);
  TemplateGeneratorOptions topts;
  topts.seed_templates = TpchLikeTemplates();
  topts.num_templates = 8;  // pool should be all seeds
  TemplateGenerator gen(&env, topts);
  EXPECT_GE(gen.pool_size(), 6);  // most seeds carry tweakable literals
  auto rep = gen.GenerateSatisfied(3, 30000);
  ASSERT_TRUE(rep.ok());
  EXPECT_GE(rep->satisfied, 1);
}

}  // namespace
}  // namespace lsg
