// Tests for the feedback-estimation cache (src/optimizer/feedback_cache):
// AST fingerprint discrimination, LRU eviction order with exact counters,
// exact accounting under concurrent access, bitwise equivalence of the
// incremental PrefixEstimator against the full estimator walk, and the
// tier-1 determinism gate: training with the cache (and with the
// incremental path) must produce bitwise-identical epoch rewards.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "core/generator.h"
#include "optimizer/cardinality_estimator.h"
#include "optimizer/column_stats.h"
#include "optimizer/cost_model.h"
#include "optimizer/feedback_cache.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// ----------------------------------------------------------- fingerprint

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest() : db_(BuildScoreStudentDb()) {}
  int score() { return db_.catalog().FindTable("Score"); }
  int student() { return db_.catalog().FindTable("Student"); }

  SelectQuery BaseQuery() {
    SelectQuery q;
    q.tables = {score()};
    q.items.push_back({AggFunc::kNone, {score(), 0}});
    return q;
  }

  Database db_;
};

TEST_F(FingerprintTest, EqualAstsHashEqual) {
  SelectQuery a = BaseQuery();
  SelectQuery b = BaseQuery();
  EXPECT_EQ(AstFingerprint(a), AstFingerprint(b));
}

TEST_F(FingerprintTest, StructuralDifferencesChangeHash) {
  SelectQuery base = BaseQuery();
  const uint64_t h0 = AstFingerprint(base);

  SelectQuery other_table = BaseQuery();
  other_table.tables = {student()};
  other_table.items[0].column = {student(), 0};
  EXPECT_NE(AstFingerprint(other_table), h0);

  SelectQuery with_join = BaseQuery();
  with_join.tables.push_back(student());
  EXPECT_NE(AstFingerprint(with_join), h0);

  SelectQuery with_agg = BaseQuery();
  with_agg.items[0].agg = AggFunc::kMax;
  EXPECT_NE(AstFingerprint(with_agg), h0);

  SelectQuery with_group = BaseQuery();
  with_group.group_by.push_back({score(), 2});
  EXPECT_NE(AstFingerprint(with_group), h0);

  SelectQuery with_order = BaseQuery();
  with_order.order_by.push_back({score(), 3});
  EXPECT_NE(AstFingerprint(with_order), h0);
}

TEST_F(FingerprintTest, LiteralAndOperatorChangesChangeHash) {
  auto with_pred = [&](CompareOp op, double v) {
    SelectQuery q = BaseQuery();
    Predicate p;
    p.column = {score(), 3};
    p.op = op;
    p.value = Value(v);
    q.where.predicates.push_back(std::move(p));
    return AstFingerprint(q);
  };
  const uint64_t lt70 = with_pred(CompareOp::kLt, 70.0);
  EXPECT_NE(lt70, with_pred(CompareOp::kLt, 71.0));  // literal
  EXPECT_NE(lt70, with_pred(CompareOp::kGt, 70.0));  // operator
  EXPECT_NE(lt70, AstFingerprint(BaseQuery()));      // presence
}

TEST_F(FingerprintTest, KindAndSaltSeparateKeySpaces) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>(BaseQuery());

  FeedbackCache plain;
  EXPECT_NE(plain.Key(ast, FeedbackKind::kCardinality),
            plain.Key(ast, FeedbackKind::kCost));

  FeedbackCache::Options salted_opts;
  salted_opts.key_salt = 0xdb2;
  FeedbackCache salted(salted_opts);
  EXPECT_NE(plain.Key(ast, FeedbackKind::kCardinality),
            salted.Key(ast, FeedbackKind::kCardinality));
}

// ------------------------------------------------------------------ LRU

FeedbackCache::Options SingleShard(size_t capacity) {
  FeedbackCache::Options o;
  o.capacity = capacity;
  o.shards = 1;  // deterministic eviction order for the tests below
  return o;
}

TEST(FeedbackCacheTest, MissThenHitWithExactCounters) {
  FeedbackCache cache(SingleShard(8));
  EXPECT_FALSE(cache.Lookup(1).has_value());
  cache.Insert(1, 42.0);
  auto hit = cache.Lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 42.0);

  FeedbackCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(FeedbackCacheTest, EvictsLeastRecentlyUsed) {
  FeedbackCache cache(SingleShard(4));
  for (uint64_t k = 1; k <= 4; ++k) cache.Insert(k, static_cast<double>(k));
  // Touch key 1 so key 2 becomes the LRU entry.
  ASSERT_TRUE(cache.Lookup(1).has_value());
  cache.Insert(5, 5.0);

  EXPECT_TRUE(cache.Lookup(1).has_value());   // promoted, survived
  EXPECT_FALSE(cache.Lookup(2).has_value());  // LRU, evicted
  EXPECT_TRUE(cache.Lookup(3).has_value());
  EXPECT_TRUE(cache.Lookup(4).has_value());
  EXPECT_TRUE(cache.Lookup(5).has_value());

  FeedbackCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 4u);
}

TEST(FeedbackCacheTest, ReinsertRefreshesWithoutDoubleCounting) {
  FeedbackCache cache(SingleShard(4));
  cache.Insert(7, 1.0);
  cache.Insert(7, 2.0);  // refresh, not a second entry
  auto hit = cache.Lookup(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 2.0);
  FeedbackCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(FeedbackCacheTest, ClearDropsEntriesKeepsCounters) {
  FeedbackCache cache(SingleShard(4));
  cache.Insert(1, 1.0);
  ASSERT_TRUE(cache.Lookup(1).has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(1).has_value());
  FeedbackCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 1u);  // pre-Clear history preserved
}

TEST(FeedbackCacheTest, ConcurrentAccountingIsExact) {
  // Deterministic phases so the expected totals are exact even under
  // threads (and the test doubles as a TSan target for the shard locking):
  // phase 1 populates, phase 2 is all hits, phase 3 is all misses.
  constexpr int kThreads = 8;
  constexpr uint64_t kKeys = 256;
  constexpr int kRounds = 50;
  FeedbackCache::Options o;
  o.capacity = 1 << 12;  // large enough that nothing is evicted
  o.shards = 8;
  FeedbackCache cache(o);
  for (uint64_t k = 0; k < kKeys; ++k) {
    cache.Insert(SplitMix64(k), static_cast<double>(k));
  }

  auto run = [&](uint64_t offset) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r) {
          for (uint64_t k = 0; k < kKeys; ++k) {
            auto v = cache.Lookup(SplitMix64(k + offset));
            if (offset == 0) {
              ASSERT_TRUE(v.has_value());
              ASSERT_DOUBLE_EQ(*v, static_cast<double>(k));
            } else {
              ASSERT_FALSE(v.has_value());
            }
          }
        }
        (void)t;
      });
    }
    for (std::thread& th : threads) th.join();
  };
  run(0);      // all hits
  run(kKeys);  // all misses

  const uint64_t per_phase = uint64_t{kThreads} * kRounds * kKeys;
  FeedbackCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.hits, per_phase);
  EXPECT_EQ(s.misses, per_phase);
  EXPECT_EQ(s.insertions, kKeys);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, kKeys);
}

// ------------------------------------------------- incremental estimator

class PrefixEstimatorTest : public ::testing::Test {
 protected:
  PrefixEstimatorTest()
      : db_(BuildScoreStudentDb()),
        stats_(DatabaseStats::Collect(db_)),
        est_(&db_, &stats_),
        cost_(&est_) {}
  int score() { return db_.catalog().FindTable("Score"); }
  int student() { return db_.catalog().FindTable("Student"); }

  // Bitwise comparison on both metrics at the current prefix.
  void ExpectMatchesFull(PrefixEstimator* inc, const SelectQuery& q) {
    EXPECT_EQ(inc->Cardinality(q), est_.EstimateSelect(q, nullptr));
    EXPECT_EQ(inc->Cost(q), cost_.SelectCost(q));
  }

  Database db_;
  DatabaseStats stats_;
  CardinalityEstimator est_;
  CostModel cost_;
};

TEST_F(PrefixEstimatorTest, MatchesFullWalkOnGrowingQuery) {
  PrefixEstimator inc(&est_, &cost_);
  SelectQuery q;

  // Grow the query the way the FSM does: FROM chain, then SELECT items,
  // then WHERE predicates one at a time, then the GROUP BY tail.
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 0}});
  ExpectMatchesFull(&inc, q);

  q.tables.push_back(student());
  ExpectMatchesFull(&inc, q);

  Predicate lt;
  lt.column = {score(), 3};
  lt.op = CompareOp::kLt;
  lt.value = Value(80.0);
  q.where.predicates.push_back(std::move(lt));
  ExpectMatchesFull(&inc, q);

  // Mutate the *last* predicate in place (a value token refining it).
  q.where.predicates.back().value = Value(95.0);
  ExpectMatchesFull(&inc, q);

  Predicate sub;
  sub.kind = PredicateKind::kInSub;
  sub.column = {score(), 1};
  sub.subquery = std::make_unique<SelectQuery>();
  sub.subquery->tables = {student()};
  sub.subquery->items.push_back({AggFunc::kNone, {student(), 0}});
  q.where.connectors.push_back(BoolConn::kAnd);
  q.where.predicates.push_back(std::move(sub));
  ExpectMatchesFull(&inc, q);

  q.group_by.push_back({score(), 2});
  ExpectMatchesFull(&inc, q);
  q.having = HavingClause{AggFunc::kCount, {score(), 3}, CompareOp::kGt,
                          Value(int64_t{3})};
  ExpectMatchesFull(&inc, q);
  q.order_by.push_back({score(), 3});
  ExpectMatchesFull(&inc, q);
}

TEST_F(PrefixEstimatorTest, ShrunkQueryTriggersDefensiveReset) {
  PrefixEstimator inc(&est_, &cost_);
  SelectQuery big;
  big.tables = {score(), student()};
  big.items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.column = {score(), 3};
  p.op = CompareOp::kGe;
  p.value = Value(70.0);
  big.where.predicates.push_back(std::move(p));
  ExpectMatchesFull(&inc, big);

  // A smaller query on the same instance (as after an un-Reset episode
  // switch) must still match the full walk, not reuse the longer fold.
  SelectQuery small;
  small.tables = {score()};
  small.items.push_back({AggFunc::kNone, {score(), 0}});
  ExpectMatchesFull(&inc, small);
}

// ------------------------------------------------- training determinism

// Epoch traces must be bitwise identical across all feedback plumbing
// variants: the cache and the incremental path are pure memoization, so a
// fixed seed must yield exactly the same rewards (tier-1 gate for the
// cache layer).
std::vector<double> TrainRewardTrace(FeedbackCache* cache, bool incremental,
                                     FeedbackCache::Stats* stats_out) {
  Database db = BuildScoreStudentDb();
  LearnedSqlGenOptions opts;
  opts.train_epochs = 8;
  opts.trainer.batch_size = 4;
  opts.vocab.values_per_column = 8;
  opts.seed = 20220612;
  opts.feedback_cache = cache;
  opts.incremental_prefix_estimates = incremental;
  auto gen = LearnedSqlGen::Create(&db, opts);
  LSG_CHECK(gen.ok());
  Constraint c = Constraint::Range(ConstraintMetric::kCardinality, 5, 50);
  LSG_CHECK_OK((*gen)->Train(c));
  std::vector<double> rewards;
  for (const EpochStats& e : (*gen)->trace()) {
    rewards.push_back(e.mean_total_reward);
  }
  if (stats_out != nullptr && cache != nullptr) *stats_out = cache->GetStats();
  return rewards;
}

TEST(FeedbackCacheTrainingTest, CachedTrainingIsBitwiseIdentical) {
  std::vector<double> base = TrainRewardTrace(nullptr, true, nullptr);
  ASSERT_FALSE(base.empty());

  FeedbackCache cache;
  FeedbackCache::Stats stats;
  std::vector<double> cached = TrainRewardTrace(&cache, true, &stats);
  ASSERT_EQ(cached.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(cached[i], base[i]) << "epoch " << i;
  }

  // With the incremental path disabled every per-step feedback call goes
  // through MetricOf and thus the cache; the rewards must not move.
  FeedbackCache cache2;
  std::vector<double> uncached_steps = TrainRewardTrace(nullptr, false, nullptr);
  std::vector<double> cached_steps = TrainRewardTrace(&cache2, false, nullptr);
  ASSERT_EQ(uncached_steps.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(uncached_steps[i], base[i]) << "epoch " << i;
    EXPECT_EQ(cached_steps[i], base[i]) << "epoch " << i;
  }
  FeedbackCache::Stats s2 = cache2.GetStats();
  EXPECT_GT(s2.hits + s2.misses, 0u);  // the cache actually saw traffic
  EXPECT_GT(s2.hits, 0u);  // repeated prefixes across episodes must hit
}

}  // namespace
}  // namespace lsg
