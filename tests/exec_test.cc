#include <gtest/gtest.h>

#include "exec/dml_executor.h"
#include "exec/executor.h"
#include "exec/expression.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// ----------------------------------------------------------- expression

TEST(CompareValuesTest, AllOperators) {
  Value a(int64_t{3}), b(int64_t{5});
  EXPECT_TRUE(CompareValues(a, CompareOp::kLt, b));
  EXPECT_FALSE(CompareValues(a, CompareOp::kGt, b));
  EXPECT_FALSE(CompareValues(a, CompareOp::kEq, b));
  EXPECT_TRUE(CompareValues(a, CompareOp::kLe, b));
  EXPECT_FALSE(CompareValues(a, CompareOp::kGe, b));
  EXPECT_TRUE(CompareValues(a, CompareOp::kNe, b));
  EXPECT_TRUE(CompareValues(a, CompareOp::kEq, Value(3.0)));
}

TEST(CompareValuesTest, NullNeverMatches) {
  EXPECT_FALSE(CompareValues(Value::Null(), CompareOp::kEq, Value::Null()));
  EXPECT_FALSE(CompareValues(Value::Null(), CompareOp::kLt, Value(int64_t{1})));
  EXPECT_FALSE(CompareValues(Value(int64_t{1}), CompareOp::kNe, Value::Null()));
}

TEST(CombinePredicatesTest, EmptyIsTrue) {
  EXPECT_TRUE(CombinePredicates({}, {}));
}

TEST(CombinePredicatesTest, AndOrPrecedence) {
  // false OR true AND true == false OR (true AND true) == true
  EXPECT_TRUE(CombinePredicates({false, true, true},
                                {BoolConn::kOr, BoolConn::kAnd}));
  // true OR false AND false == true OR (false AND false) == true
  EXPECT_TRUE(CombinePredicates({true, false, false},
                                {BoolConn::kOr, BoolConn::kAnd}));
  // false AND true OR false == (false AND true) OR false == false
  EXPECT_FALSE(CombinePredicates({false, true, false},
                                 {BoolConn::kAnd, BoolConn::kOr}));
  // false AND true OR true == true
  EXPECT_TRUE(CombinePredicates({false, true, true},
                                {BoolConn::kAnd, BoolConn::kOr}));
}

TEST(CombineSelectivitiesTest, Independence) {
  EXPECT_DOUBLE_EQ(CombineSelectivities({0.5, 0.5}, {BoolConn::kAnd}), 0.25);
  EXPECT_DOUBLE_EQ(CombineSelectivities({0.5, 0.5}, {BoolConn::kOr}), 0.75);
  EXPECT_DOUBLE_EQ(CombineSelectivities({1.0}, {}), 1.0);
}

TEST(CombineSelectivitiesTest, PrecedenceMatchesBoolean) {
  // a OR b AND c -> a + (b*c) - a*(b*c)
  double s = CombineSelectivities({0.1, 0.5, 0.4},
                                  {BoolConn::kOr, BoolConn::kAnd});
  EXPECT_NEAR(s, 0.1 + 0.2 - 0.1 * 0.2, 1e-12);
}

TEST(CombineSelectivitiesTest, Clamped) {
  double s = CombineSelectivities({1.0, 1.0}, {BoolConn::kOr});
  EXPECT_LE(s, 1.0);
  EXPECT_GE(CombineSelectivities({0.0, 0.0}, {BoolConn::kAnd}), 0.0);
}

// ----------------------------------------------------------- executor

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : db_(BuildScoreStudentDb()), exec_(&db_) {}

  int score() { return db_.catalog().FindTable("Score"); }
  int student() { return db_.catalog().FindTable("Student"); }

  SelectQuery ScanScore() {
    SelectQuery q;
    q.tables = {score()};
    q.items.push_back({AggFunc::kNone, {score(), 0}});
    return q;
  }

  Predicate GradePred(CompareOp op, double v) {
    Predicate p;
    p.column = {score(), 3};
    p.op = op;
    p.value = Value(v);
    return p;
  }

  Predicate CoursePred(const char* course) {
    Predicate p;
    p.column = {score(), 2};
    p.op = CompareOp::kEq;
    p.value = Value(course);
    return p;
  }

  uint64_t Card(const SelectQuery& q) {
    auto r = exec_.ExecuteSelect(q, false);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->cardinality;
  }

  Database db_;
  Executor exec_;
};

TEST_F(ExecutorTest, FullScan) { EXPECT_EQ(Card(ScanScore()), 30u); }

TEST_F(ExecutorTest, RangeFilter) {
  SelectQuery q = ScanScore();
  q.where.predicates.push_back(GradePred(CompareOp::kLt, 70.0));
  EXPECT_EQ(Card(q), 8u);  // grades 60,61,62,63,64,67,68,69
}

TEST_F(ExecutorTest, EqualityFilter) {
  SelectQuery q = ScanScore();
  q.where.predicates.push_back(CoursePred("db"));
  EXPECT_EQ(Card(q), 10u);
}

TEST_F(ExecutorTest, OrCombination) {
  SelectQuery q = ScanScore();
  q.where.predicates.push_back(GradePred(CompareOp::kLt, 70.0));
  q.where.predicates.push_back(CoursePred("db"));
  q.where.connectors.push_back(BoolConn::kOr);
  EXPECT_EQ(Card(q), 15u);  // 8 + 10 - 3 overlapping
}

TEST_F(ExecutorTest, AndCombination) {
  SelectQuery q = ScanScore();
  q.where.predicates.push_back(GradePred(CompareOp::kLt, 70.0));
  q.where.predicates.push_back(CoursePred("db"));
  q.where.connectors.push_back(BoolConn::kAnd);
  EXPECT_EQ(Card(q), 3u);  // grades 67, 68, 69
}

TEST_F(ExecutorTest, FkJoinPreservesFactRows) {
  SelectQuery q = ScanScore();
  q.tables.push_back(student());
  EXPECT_EQ(Card(q), 30u);  // every score matches exactly one student
}

TEST_F(ExecutorTest, JoinWithDimensionFilter) {
  SelectQuery q = ScanScore();
  q.tables.push_back(student());
  Predicate p;
  p.column = {student(), 2};
  p.op = CompareOp::kEq;
  p.value = Value("F");
  q.where.predicates.push_back(std::move(p));
  EXPECT_EQ(Card(q), 15u);  // students 0,2,4,6,8 x 3 scores each
}

TEST_F(ExecutorTest, JoinInReverseDirection) {
  SelectQuery q;
  q.tables = {student(), score()};
  q.items.push_back({AggFunc::kNone, {student(), 1}});
  EXPECT_EQ(Card(q), 30u);
}

TEST_F(ExecutorTest, GroupByCountsGroups) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 2}});
  q.group_by.push_back({score(), 2});
  EXPECT_EQ(Card(q), 3u);  // math, db, ml
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 2}});
  q.group_by.push_back({score(), 2});
  q.having = HavingClause{AggFunc::kCount, {score(), 3}, CompareOp::kGt,
                          Value(int64_t{3})};
  EXPECT_EQ(Card(q), 3u);  // every course has 10 scores
  q.having->value = Value(int64_t{10});
  EXPECT_EQ(Card(q), 0u);
}

TEST_F(ExecutorTest, HavingMaxPerGroup) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kNone, {score(), 2}});
  q.group_by.push_back({score(), 2});
  // Max grade overall is 99 (course of i=29: 29%3=2 -> "ml").
  q.having = HavingClause{AggFunc::kMax, {score(), 3}, CompareOp::kGe,
                          Value(99.0)};
  EXPECT_EQ(Card(q), 1u);
}

TEST_F(ExecutorTest, AggregateCollapsesToOneRow) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kMax, {score(), 3}});
  auto r = exec_.ExecuteSelect(q, /*materialize=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cardinality, 1u);
  ASSERT_EQ(r->first_column.size(), 1u);
  EXPECT_DOUBLE_EQ(r->first_column[0].AsNumber(), 99.0);
}

TEST_F(ExecutorTest, AggregateValues) {
  for (auto [agg, expected] :
       std::vector<std::pair<AggFunc, double>>{{AggFunc::kMin, 60.0},
                                               {AggFunc::kMax, 99.0},
                                               {AggFunc::kAvg, 79.5},
                                               {AggFunc::kCount, 30.0}}) {
    SelectQuery q;
    q.tables = {score()};
    q.items.push_back({agg, {score(), 3}});
    auto r = exec_.ExecuteSelect(q, true);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->first_column[0].AsNumber(), expected)
        << AggFuncName(agg);
  }
}

TEST_F(ExecutorTest, InSubquery) {
  SelectQuery q = ScanScore();
  Predicate p;
  p.kind = PredicateKind::kInSub;
  p.column = {score(), 1};
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {student()};
  p.subquery->items.push_back({AggFunc::kNone, {student(), 0}});
  Predicate inner;
  inner.column = {student(), 2};
  inner.op = CompareOp::kEq;
  inner.value = Value("F");
  p.subquery->where.predicates.push_back(std::move(inner));
  q.where.predicates.push_back(std::move(p));
  EXPECT_EQ(Card(q), 15u);
}

TEST_F(ExecutorTest, ScalarSubqueryAgainstAvg) {
  SelectQuery q = ScanScore();
  Predicate p;
  p.kind = PredicateKind::kScalarSub;
  p.column = {score(), 3};
  p.op = CompareOp::kGt;
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {score()};
  p.subquery->items.push_back({AggFunc::kAvg, {score(), 3}});
  q.where.predicates.push_back(std::move(p));
  EXPECT_EQ(Card(q), 15u);  // grades above the mean of 79.5
}

TEST_F(ExecutorTest, ExistsSubquery) {
  for (bool negated : {false, true}) {
    SelectQuery q = ScanScore();
    Predicate p;
    p.kind = PredicateKind::kExistsSub;
    p.negated = negated;
    p.subquery = std::make_unique<SelectQuery>();
    p.subquery->tables = {student()};
    p.subquery->items.push_back({AggFunc::kNone, {student(), 0}});
    Predicate inner;
    inner.column = {student(), 2};
    inner.op = CompareOp::kEq;
    inner.value = Value("X");  // no such gender
    p.subquery->where.predicates.push_back(std::move(inner));
    q.where.predicates.push_back(std::move(p));
    EXPECT_EQ(Card(q), negated ? 30u : 0u);
  }
}

TEST_F(ExecutorTest, MaterializeFirstColumnPlain) {
  SelectQuery q = ScanScore();
  q.where.predicates.push_back(CoursePred("db"));
  auto r = exec_.ExecuteSelect(q, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->first_column.size(), 10u);
}

TEST_F(ExecutorTest, GroupByMaterializesPerGroup) {
  SelectQuery q;
  q.tables = {score()};
  q.items.push_back({AggFunc::kMax, {score(), 3}});
  q.items.push_back({AggFunc::kNone, {score(), 2}});
  q.group_by.push_back({score(), 2});
  auto r = exec_.ExecuteSelect(q, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->first_column.size(), 3u);
}

TEST_F(ExecutorTest, StatsTrackWork) {
  SelectQuery q = ScanScore();
  q.tables.push_back(student());
  auto r = exec_.ExecuteSelect(q, false);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->stats.rows_scanned, 40.0);  // 30 + 10
  EXPECT_DOUBLE_EQ(r->stats.rows_joined, 30.0);
}

TEST_F(ExecutorTest, IntermediateLimitGuard) {
  Executor tiny(&db_, /*max_intermediate_tuples=*/10);
  SelectQuery q = ScanScore();
  q.tables.push_back(student());
  auto r = tiny.ExecuteSelect(q, false);
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExecutorTest, MissingFkEdgeRejected) {
  // Student joined with Student is not in the FK graph.
  SelectQuery q;
  q.tables = {student(), student()};
  q.items.push_back({AggFunc::kNone, {student(), 0}});
  auto r = exec_.ExecuteSelect(q, false);
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, EmptyFromRejected) {
  SelectQuery q;
  auto r = exec_.ExecuteSelect(q, false);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- cardinality

TEST_F(ExecutorTest, QueryAstCardinalityDispatch) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>(ScanScore());
  auto c = exec_.Cardinality(ast);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 30u);
}

// ----------------------------------------------------------- DML

class DmlTest : public ExecutorTest {
 protected:
  DmlTest() : dml_(&db_) {}
  DmlExecutor dml_;
};

TEST_F(DmlTest, InsertValuesAffectsOneRow) {
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = student();
  ast.insert->values = {Value(int64_t{99}), Value("Zoe"), Value("F")};
  auto n = dml_.AffectedRows(ast);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST_F(DmlTest, InsertSelectCountsSourceRows) {
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = student();
  ast.insert->source = std::make_unique<SelectQuery>();
  ast.insert->source->tables = {student()};
  for (int c = 0; c < 3; ++c) {
    ast.insert->source->items.push_back({AggFunc::kNone, {student(), c}});
  }
  Predicate p;
  p.column = {student(), 2};
  p.op = CompareOp::kEq;
  p.value = Value("F");
  ast.insert->source->where.predicates.push_back(std::move(p));
  auto n = dml_.AffectedRows(ast);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
}

TEST_F(DmlTest, UpdateCountsMatchingRows) {
  QueryAst ast;
  ast.type = QueryType::kUpdate;
  ast.update = std::make_unique<UpdateQuery>();
  ast.update->table_idx = score();
  ast.update->set_column = {score(), 3};
  ast.update->set_value = Value(100.0);
  ast.update->where.predicates.push_back(CoursePred("db"));
  auto n = dml_.AffectedRows(ast);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
}

TEST_F(DmlTest, UpdateWithoutWhereAffectsAllRows) {
  QueryAst ast;
  ast.type = QueryType::kUpdate;
  ast.update = std::make_unique<UpdateQuery>();
  ast.update->table_idx = score();
  ast.update->set_column = {score(), 3};
  ast.update->set_value = Value(0.0);
  auto n = dml_.AffectedRows(ast);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 30u);
}

TEST_F(DmlTest, DeleteCountsMatchingRows) {
  QueryAst ast;
  ast.type = QueryType::kDelete;
  ast.del = std::make_unique<DeleteQuery>();
  ast.del->table_idx = score();
  ast.del->where.predicates.push_back(GradePred(CompareOp::kLe, 65.0));
  auto n = dml_.AffectedRows(ast);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);  // grades 60..64 (65 is absent from the data)
}

TEST_F(DmlTest, DryRunDoesNotMutate) {
  QueryAst ast;
  ast.type = QueryType::kDelete;
  ast.del = std::make_unique<DeleteQuery>();
  ast.del->table_idx = score();
  ASSERT_TRUE(dml_.AffectedRows(ast).ok());
  EXPECT_EQ(db_.FindTable("Score")->num_rows(), 30u);
}

TEST_F(DmlTest, ApplyInsertMutatesScratchDb) {
  Database scratch = BuildScoreStudentDb();
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = student();
  ast.insert->values = {Value(int64_t{77}), Value("New"), Value("M")};
  ASSERT_TRUE(dml_.ApplyInsert(&scratch, ast).ok());
  EXPECT_EQ(scratch.FindTable("Student")->num_rows(), 11u);
}

TEST_F(DmlTest, AffectedRowsRejectsSelect) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>(ScanScore());
  EXPECT_FALSE(dml_.AffectedRows(ast).ok());
}

}  // namespace
}  // namespace lsg
