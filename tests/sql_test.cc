#include <gtest/gtest.h>

#include <set>

#include "sql/ast.h"
#include "sql/render.h"
#include "sql/token.h"
#include "sql/vocabulary.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// ---------------------------------------------------------------- tokens

TEST(TokenTest, KeywordTexts) {
  EXPECT_STREQ(KeywordText(Keyword::kSelect), "SELECT");
  EXPECT_STREQ(KeywordText(Keyword::kGroupBy), "GROUP BY");
  EXPECT_STREQ(KeywordText(Keyword::kInsert), "INSERT INTO");
  EXPECT_STREQ(KeywordText(Keyword::kDelete), "DELETE FROM");
}

TEST(TokenTest, OperatorTexts) {
  EXPECT_STREQ(CompareOpText(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpText(CompareOp::kNe), "<>");
  EXPECT_STREQ(CompareOpText(CompareOp::kEq), "=");
}

TEST(TokenTest, AggregateKeywords) {
  EXPECT_TRUE(IsAggregateKeyword(Keyword::kMax));
  EXPECT_TRUE(IsAggregateKeyword(Keyword::kCount));
  EXPECT_FALSE(IsAggregateKeyword(Keyword::kSelect));
  EXPECT_FALSE(IsAggregateKeyword(Keyword::kIn));
}

// ---------------------------------------------------------------- vocab

class VocabularyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildScoreStudentDb();
    VocabularyOptions opts;
    opts.values_per_column = 5;
    auto v = Vocabulary::Build(db_, opts);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    vocab_ = std::move(v).value();
  }
  Database db_;
  std::optional<Vocabulary> vocab_;
};

TEST_F(VocabularyTest, ContainsAllFixedTokenClasses) {
  // Keywords + operators + 2 tables + 7 columns + values + EOF.
  EXPECT_GT(vocab_->size(),
            static_cast<int>(Keyword::kNumKeywords) +
                static_cast<int>(CompareOp::kNumOps) + 2 + 7);
  EXPECT_EQ(vocab_->token(vocab_->eof_id()).kind, TokenKind::kEof);
}

TEST_F(VocabularyTest, IdsRoundTrip) {
  for (int id = 0; id < vocab_->size(); ++id) {
    EXPECT_EQ(vocab_->token(id).id, id);
  }
}

TEST_F(VocabularyTest, KeywordLookup) {
  int id = vocab_->keyword_id(Keyword::kWhere);
  EXPECT_EQ(vocab_->token(id).kind, TokenKind::kKeyword);
  EXPECT_EQ(vocab_->token(id).keyword, Keyword::kWhere);
}

TEST_F(VocabularyTest, OperatorLookup) {
  int id = vocab_->operator_id(CompareOp::kGe);
  EXPECT_EQ(vocab_->token(id).kind, TokenKind::kOperator);
  EXPECT_EQ(vocab_->token(id).op, CompareOp::kGe);
}

TEST_F(VocabularyTest, TableAndColumnLookup) {
  int sid = vocab_->table_token_id(db_.catalog().FindTable("Score"));
  EXPECT_EQ(vocab_->token(sid).kind, TokenKind::kTable);
  EXPECT_EQ(vocab_->token(sid).text, "Score");
  int cid = vocab_->column_token_id(db_.catalog().FindTable("Score"), 3);
  EXPECT_EQ(vocab_->token(cid).kind, TokenKind::kColumn);
  EXPECT_EQ(vocab_->token(cid).text, "Score.Grade");
}

TEST_F(VocabularyTest, NumericValuesSampledToK) {
  int score = db_.catalog().FindTable("Score");
  // Grade has many distinct values; sampling caps at k=5.
  const auto& grades = vocab_->value_token_ids(score, 3);
  EXPECT_EQ(grades.size(), 5u);
  for (int id : grades) {
    EXPECT_EQ(vocab_->token(id).kind, TokenKind::kValue);
    EXPECT_EQ(vocab_->token(id).value_column_table, score);
    EXPECT_EQ(vocab_->token(id).value_column_idx, 3);
  }
}

TEST_F(VocabularyTest, SampledValuesAreSortedDistinct) {
  int score = db_.catalog().FindTable("Score");
  const auto& ids = vocab_->value_token_ids(score, 3);
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(vocab_->token(ids[i - 1]).value.Compare(
                  vocab_->token(ids[i]).value),
              0);
  }
}

TEST_F(VocabularyTest, CategoricalEnumeratesAllValues) {
  int student = db_.catalog().FindTable("Student");
  // Gender has 2 distinct values; both should be present.
  const auto& ids = vocab_->value_token_ids(student, 2);
  EXPECT_EQ(ids.size(), 2u);
  std::set<std::string> vals;
  for (int id : ids) vals.insert(vocab_->token(id).value.as_string());
  EXPECT_TRUE(vals.count("M"));
  EXPECT_TRUE(vals.count("F"));
}

TEST_F(VocabularyTest, SampleRatioMode) {
  VocabularyOptions opts;
  opts.sample_ratio = 0.5;
  auto v = Vocabulary::Build(db_, opts);
  ASSERT_TRUE(v.ok());
  int score = db_.catalog().FindTable("Score");
  // Score.SID has 30 distinct values; ratio 0.5 samples 15.
  EXPECT_EQ(v->value_token_ids(score, 0).size(), 15u);
}

TEST_F(VocabularyTest, DeterministicAcrossBuilds) {
  VocabularyOptions opts;
  opts.values_per_column = 5;
  auto v2 = Vocabulary::Build(db_, opts);
  ASSERT_TRUE(v2.ok());
  ASSERT_EQ(v2->size(), vocab_->size());
  for (int i = 0; i < v2->size(); ++i) {
    EXPECT_EQ(v2->token(i).text, vocab_->token(i).text);
  }
}

TEST(VocabularyErrorTest, EmptyDatabaseRejected) {
  Database db;
  EXPECT_FALSE(Vocabulary::Build(db, VocabularyOptions()).ok());
}

// ---------------------------------------------------------------- ast

TEST(AstTest, SelectQueryHelpers) {
  SelectQuery q;
  q.tables = {0, 1};
  q.items.push_back({AggFunc::kNone, {0, 1}});
  EXPECT_EQ(q.NumJoins(), 1);
  EXPECT_FALSE(q.HasAggregate());
  q.items.push_back({AggFunc::kMax, {0, 2}});
  EXPECT_TRUE(q.HasAggregate());
  EXPECT_EQ(q.TotalPredicates(), 0);
  EXPECT_FALSE(q.HasNested());
  EXPECT_EQ(q.NestingDepth(), 0);
}

TEST(AstTest, NestedPredicatesCounted) {
  SelectQuery q;
  q.tables = {0};
  Predicate p;
  p.kind = PredicateKind::kInSub;
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {1};
  Predicate inner;
  inner.kind = PredicateKind::kValue;
  p.subquery->where.predicates.push_back(std::move(inner));
  q.where.predicates.push_back(std::move(p));
  EXPECT_TRUE(q.HasNested());
  EXPECT_EQ(q.NestingDepth(), 1);
  EXPECT_EQ(q.TotalPredicates(), 2);
}

TEST(AstTest, AggFuncNames) {
  EXPECT_STREQ(AggFuncName(AggFunc::kAvg), "AVG");
  EXPECT_STREQ(AggFuncName(AggFunc::kNone), "");
}

TEST(AstTest, QueryTypeNames) {
  EXPECT_STREQ(QueryTypeName(QueryType::kSelect), "SELECT");
  EXPECT_STREQ(QueryTypeName(QueryType::kUpdate), "UPDATE");
}

// ---------------------------------------------------------------- render

class RenderTest : public ::testing::Test {
 protected:
  RenderTest() : db_(BuildScoreStudentDb()) {}
  const Catalog& cat() { return db_.catalog(); }
  int score() { return cat().FindTable("Score"); }
  int student() { return cat().FindTable("Student"); }
  Database db_;
};

TEST_F(RenderTest, SimpleSelect) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {score()};
  ast.select->items.push_back({AggFunc::kNone, {score(), 1}});
  EXPECT_EQ(RenderSql(ast, cat()), "SELECT Score.ID FROM Score");
}

TEST_F(RenderTest, JoinRendersOnClause) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {score(), student()};
  ast.select->items.push_back({AggFunc::kNone, {student(), 1}});
  std::string sql = RenderSql(ast, cat());
  EXPECT_NE(sql.find("JOIN Student ON Score.ID = Student.ID"),
            std::string::npos)
      << sql;
}

TEST_F(RenderTest, WhereWithConnectors) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {score()};
  ast.select->items.push_back({AggFunc::kNone, {score(), 1}});
  Predicate p1;
  p1.column = {score(), 3};
  p1.op = CompareOp::kLt;
  p1.value = Value(95.0);
  Predicate p2;
  p2.column = {score(), 2};
  p2.op = CompareOp::kEq;
  p2.value = Value("db");
  ast.select->where.predicates.push_back(std::move(p1));
  ast.select->where.predicates.push_back(std::move(p2));
  ast.select->where.connectors.push_back(BoolConn::kOr);
  std::string sql = RenderSql(ast, cat());
  EXPECT_NE(sql.find("WHERE Score.Grade < 95 OR Score.Course = 'db'"),
            std::string::npos)
      << sql;
}

TEST_F(RenderTest, GroupByHaving) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {score()};
  ast.select->items.push_back({AggFunc::kNone, {score(), 2}});
  ast.select->group_by.push_back({score(), 2});
  ast.select->having = HavingClause{AggFunc::kCount, {score(), 3},
                                    CompareOp::kGt, Value(int64_t{3})};
  std::string sql = RenderSql(ast, cat());
  EXPECT_NE(sql.find("GROUP BY Score.Course"), std::string::npos) << sql;
  EXPECT_NE(sql.find("HAVING COUNT(Score.Grade) > 3"), std::string::npos)
      << sql;
}

TEST_F(RenderTest, NestedInSubquery) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {score()};
  ast.select->items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.kind = PredicateKind::kInSub;
  p.column = {score(), 1};
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {student()};
  p.subquery->items.push_back({AggFunc::kNone, {student(), 0}});
  ast.select->where.predicates.push_back(std::move(p));
  std::string sql = RenderSql(ast, cat());
  EXPECT_NE(sql.find("Score.ID IN (SELECT Student.ID FROM Student)"),
            std::string::npos)
      << sql;
}

TEST_F(RenderTest, NotExists) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {score()};
  ast.select->items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.kind = PredicateKind::kExistsSub;
  p.negated = true;
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {student()};
  p.subquery->items.push_back({AggFunc::kNone, {student(), 0}});
  ast.select->where.predicates.push_back(std::move(p));
  EXPECT_NE(RenderSql(ast, cat()).find("NOT EXISTS (SELECT"),
            std::string::npos);
}

TEST_F(RenderTest, InsertValues) {
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = student();
  ast.insert->values = {Value(int64_t{99}), Value("Zoe"), Value("F")};
  EXPECT_EQ(RenderSql(ast, cat()),
            "INSERT INTO Student VALUES (99, 'Zoe', 'F')");
}

TEST_F(RenderTest, InsertSelect) {
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = student();
  ast.insert->source = std::make_unique<SelectQuery>();
  ast.insert->source->tables = {student()};
  for (int c = 0; c < 3; ++c) {
    ast.insert->source->items.push_back({AggFunc::kNone, {student(), c}});
  }
  std::string sql = RenderSql(ast, cat());
  EXPECT_NE(sql.find("INSERT INTO Student SELECT"), std::string::npos) << sql;
}

TEST_F(RenderTest, UpdateWithWhere) {
  QueryAst ast;
  ast.type = QueryType::kUpdate;
  ast.update = std::make_unique<UpdateQuery>();
  ast.update->table_idx = score();
  ast.update->set_column = {score(), 3};
  ast.update->set_value = Value(100.0);
  Predicate p;
  p.column = {score(), 2};
  p.op = CompareOp::kEq;
  p.value = Value("ml");
  ast.update->where.predicates.push_back(std::move(p));
  EXPECT_EQ(RenderSql(ast, cat()),
            "UPDATE Score SET Grade = 100 WHERE Score.Course = 'ml'");
}

TEST_F(RenderTest, DeleteBare) {
  QueryAst ast;
  ast.type = QueryType::kDelete;
  ast.del = std::make_unique<DeleteQuery>();
  ast.del->table_idx = score();
  EXPECT_EQ(RenderSql(ast, cat()), "DELETE FROM Score");
}

TEST_F(RenderTest, ScalarSubquery) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {score()};
  ast.select->items.push_back({AggFunc::kNone, {score(), 0}});
  Predicate p;
  p.kind = PredicateKind::kScalarSub;
  p.column = {score(), 3};
  p.op = CompareOp::kGt;
  p.subquery = std::make_unique<SelectQuery>();
  p.subquery->tables = {score()};
  p.subquery->items.push_back({AggFunc::kAvg, {score(), 3}});
  ast.select->where.predicates.push_back(std::move(p));
  EXPECT_NE(RenderSql(ast, cat())
                .find("Score.Grade > (SELECT AVG(Score.Grade) FROM Score)"),
            std::string::npos);
}

}  // namespace
}  // namespace lsg
