#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "nn/adam.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/matrix.h"
#include "nn/serialize.h"

namespace lsg {
namespace {

// ---------------------------------------------------------------- matrix

TEST(MatrixTest, ZerosAndShape) {
  Matrix m = Matrix::Zeros(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.f);
}

TEST(MatrixTest, RandnStatistics) {
  Rng rng(5);
  Matrix m = Matrix::Randn(50, 50, 0.5f, &rng);
  double sum = 0, sq = 0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += m.data()[i] * m.data()[i];
  }
  double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sq / n), 0.5, 0.03);
}

TEST(MatrixTest, MatVec) {
  Matrix w(2, 3);
  // [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
  for (int i = 0; i < 6; ++i) w.data()[i] = static_cast<float>(i + 1);
  float x[3] = {1, 1, 1};
  float y[2];
  MatVec(w, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.f);
  EXPECT_FLOAT_EQ(y[1], 15.f);
  MatVecAccum(w, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.f);
}

TEST(MatrixTest, MatTVecAccum) {
  Matrix w(2, 3);
  for (int i = 0; i < 6; ++i) w.data()[i] = static_cast<float>(i + 1);
  float dy[2] = {1, 1};
  float dx[3] = {0, 0, 0};
  MatTVecAccum(w, dy, dx);
  EXPECT_FLOAT_EQ(dx[0], 5.f);   // 1+4
  EXPECT_FLOAT_EQ(dx[1], 7.f);   // 2+5
  EXPECT_FLOAT_EQ(dx[2], 9.f);   // 3+6
}

TEST(MatrixTest, OuterAccum) {
  Matrix dw = Matrix::Zeros(2, 2);
  float dy[2] = {1, 2};
  float x[2] = {3, 4};
  OuterAccum(&dw, dy, x);
  EXPECT_FLOAT_EQ(dw.at(0, 0), 3.f);
  EXPECT_FLOAT_EQ(dw.at(0, 1), 4.f);
  EXPECT_FLOAT_EQ(dw.at(1, 0), 6.f);
  EXPECT_FLOAT_EQ(dw.at(1, 1), 8.f);
}

TEST(SoftmaxTest, SumsToOne) {
  std::vector<float> v = {1.f, 2.f, 3.f};
  SoftmaxInPlace(&v);
  float sum = v[0] + v[1] + v[2];
  EXPECT_NEAR(sum, 1.f, 1e-6);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(SoftmaxTest, StableWithLargeLogits) {
  std::vector<float> v = {1000.f, 1001.f};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0] + v[1], 1.f, 1e-6);
  EXPECT_FALSE(std::isnan(v[0]));
}

TEST(MaskedSoftmaxTest, MaskedEntriesZero) {
  std::vector<float> v = {5.f, 1.f, 2.f, 3.f};
  std::vector<uint8_t> mask = {0, 1, 1, 0};
  MaskedSoftmaxInPlace(&v, mask);
  EXPECT_FLOAT_EQ(v[0], 0.f);
  EXPECT_FLOAT_EQ(v[3], 0.f);
  EXPECT_NEAR(v[1] + v[2], 1.f, 1e-6);
  EXPECT_GT(v[2], v[1]);
}

TEST(MaskedSoftmaxTest, AllNegInfMaskedRowIsStructuredError) {
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> v = {-inf, -inf, -inf};
  std::vector<uint8_t> mask = {1, 1, 0};
  Status st = TryMaskedSoftmaxInPlace(&v, mask);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(MaskedSoftmaxTest, EmptyMaskIsStructuredError) {
  std::vector<float> v = {1.f, 2.f};
  std::vector<uint8_t> mask = {0, 0};
  Status st = TryMaskedSoftmaxInPlace(&v, mask);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(MaskedSoftmaxTest, TryPathMatchesCheckedPathBitwise) {
  Rng rng(101);
  for (int iter = 0; iter < 200; ++iter) {
    const int n = 1 + static_cast<int>(rng.Next() % 9);
    std::vector<float> logits(n);
    std::vector<uint8_t> mask(n, 0);
    bool any = false;
    for (int i = 0; i < n; ++i) {
      logits[i] = static_cast<float>(rng.Normal(0.0, 3.0));
      mask[i] = static_cast<uint8_t>(rng.Next() % 2);
      any = any || mask[i];
    }
    if (!any) mask[0] = 1;
    std::vector<float> checked = logits;
    std::vector<float> tried = logits;
    MaskedSoftmaxInPlace(&checked, mask);
    ASSERT_TRUE(TryMaskedSoftmaxInPlace(&tried, mask).ok());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(checked[i], tried[i]) << "iter " << iter << " entry " << i;
    }
  }
}

// ------------------------------------------------------- batched GEMM

// Differential oracle for the blocked MatMat path: random ragged shapes,
// every lane compared bitwise against a row-by-row MatVec over the same
// vector. Any reassociation or contraction in the batched kernel fails
// this with exact-equality diffs.
TEST(MatMatTest, MatchesMatVecBitwiseAcrossRaggedShapes) {
  Rng rng(4242);
  const int batches[] = {1, 2, 3, 16, 17};
  const int rows_set[] = {1, 3, 7, 29, 120};
  const int cols_set[] = {1, 5, 13, 30, 61};
  for (int batch : batches) {
    for (int rows : rows_set) {
      for (int cols : cols_set) {
        Matrix w = Matrix::Randn(rows, cols, 1.f, &rng);
        // Feature-major panel: x_panel[j * batch + b].
        std::vector<float> x_panel(static_cast<size_t>(cols) * batch);
        for (float& v : x_panel) v = static_cast<float>(rng.Normal(0.0, 2.0));
        std::vector<float> y_panel(static_cast<size_t>(rows) * batch, -7.f);
        MatMat(w, x_panel.data(), batch, y_panel.data());

        std::vector<float> x(cols);
        std::vector<float> y(rows);
        for (int b = 0; b < batch; ++b) {
          for (int j = 0; j < cols; ++j) x[j] = x_panel[j * batch + b];
          MatVec(w, x.data(), y.data());
          for (int i = 0; i < rows; ++i) {
            ASSERT_EQ(y[i], y_panel[static_cast<size_t>(i) * batch + b])
                << "B=" << batch << " r=" << rows << " c=" << cols
                << " lane=" << b << " row=" << i;
          }
        }
      }
    }
  }
}

TEST(MatMatTest, AccumMatchesMatVecAccumBitwise) {
  Rng rng(777);
  const int batches[] = {1, 2, 3, 16, 17};
  for (int batch : batches) {
    const int rows = 31, cols = 17;
    Matrix w = Matrix::Randn(rows, cols, 1.f, &rng);
    std::vector<float> x_panel(static_cast<size_t>(cols) * batch);
    for (float& v : x_panel) v = static_cast<float>(rng.Normal(0.0, 1.0));
    std::vector<float> y_panel(static_cast<size_t>(rows) * batch);
    for (float& v : y_panel) v = static_cast<float>(rng.Normal(0.0, 1.0));
    std::vector<float> y_ref_panel = y_panel;
    MatMatAccum(w, x_panel.data(), batch, y_panel.data());

    std::vector<float> x(cols);
    std::vector<float> y(rows);
    for (int b = 0; b < batch; ++b) {
      for (int j = 0; j < cols; ++j) x[j] = x_panel[j * batch + b];
      for (int i = 0; i < rows; ++i) {
        y[i] = y_ref_panel[static_cast<size_t>(i) * batch + b];
      }
      MatVecAccum(w, x.data(), y.data());
      for (int i = 0; i < rows; ++i) {
        ASSERT_EQ(y[i], y_panel[static_cast<size_t>(i) * batch + b])
            << "B=" << batch << " lane=" << b << " row=" << i;
      }
    }
  }
}

TEST(LinearBatchTest, ForwardBatchMatchesForwardBitwise) {
  Rng rng(55);
  Linear lin(13, 9, &rng);
  const int batch = 5;
  std::vector<float> x_panel(13 * batch);
  for (float& v : x_panel) v = static_cast<float>(rng.Normal(0.0, 1.0));
  std::vector<float> y_panel(9 * batch);
  lin.ForwardBatch(x_panel.data(), batch, y_panel.data());
  std::vector<float> x(13);
  std::vector<float> y(9);
  for (int b = 0; b < batch; ++b) {
    for (int j = 0; j < 13; ++j) x[j] = x_panel[j * batch + b];
    lin.Forward(x.data(), y.data());
    for (int i = 0; i < 9; ++i) {
      ASSERT_EQ(y[i], y_panel[static_cast<size_t>(i) * batch + b]);
    }
  }
}

TEST(LstmStackBatchTest, StepBatchMatchesSequentialStepsBitwise) {
  Rng rng(91);
  const int vocab = 11, hid = 6, layers = 2;
  LstmStack stack(vocab, hid, layers, /*dropout=*/0.3f, &rng);
  Rng dummy(0);
  const int batch = 5;
  const int steps = 12;
  Rng tok_rng(2026);

  // Sequential reference: each lane advanced alone through Step().
  std::vector<LstmStack::State> seq(batch, stack.InitialState());
  // Batched: same initial states through StepBatch().
  std::vector<LstmStack::State> bat(batch, stack.InitialState());
  std::vector<LstmStack::State*> bat_ptrs(batch);
  for (int b = 0; b < batch; ++b) bat_ptrs[b] = &bat[b];

  std::vector<int> tokens(batch);
  std::vector<float> top_panel;
  for (int t = 0; t < steps; ++t) {
    for (int b = 0; b < batch; ++b) {
      tokens[b] = static_cast<int>(tok_rng.Next() % vocab);
    }
    std::vector<std::vector<float>> seq_top(batch);
    for (int b = 0; b < batch; ++b) {
      seq_top[b] = stack.Step(tokens[b], &seq[b], nullptr, false, &dummy);
    }
    stack.StepBatch(tokens.data(), bat_ptrs.data(), batch, &top_panel);
    for (int b = 0; b < batch; ++b) {
      for (int l = 0; l < layers; ++l) {
        for (int k = 0; k < hid; ++k) {
          ASSERT_EQ(seq[b].h[l][k], bat[b].h[l][k])
              << "t=" << t << " lane=" << b << " layer=" << l;
          ASSERT_EQ(seq[b].c[l][k], bat[b].c[l][k])
              << "t=" << t << " lane=" << b << " layer=" << l;
        }
      }
      for (int k = 0; k < hid; ++k) {
        ASSERT_EQ(seq_top[b][k], top_panel[static_cast<size_t>(k) * batch + b]);
      }
    }
  }
}

TEST(ClipGradNormTest, RescalesAboveThreshold) {
  ParamTensor p("p", Matrix::Zeros(1, 4));
  for (int i = 0; i < 4; ++i) p.grad.data()[i] = 3.f;  // norm 6
  double norm = ClipGradNorm({&p}, 3.0);
  EXPECT_NEAR(norm, 6.0, 1e-5);
  double after = 0;
  for (int i = 0; i < 4; ++i) after += p.grad.data()[i] * p.grad.data()[i];
  EXPECT_NEAR(std::sqrt(after), 3.0, 1e-5);
}

TEST(ClipGradNormTest, NoRescaleBelowThreshold) {
  ParamTensor p("p", Matrix::Zeros(1, 2));
  p.grad.data()[0] = 1.f;
  ClipGradNorm({&p}, 10.0);
  EXPECT_FLOAT_EQ(p.grad.data()[0], 1.f);
}

// ------------------------------------------------- numerical gradients

/// Central-difference gradient of `loss` w.r.t. one parameter entry.
template <typename LossFn>
double NumericalGrad(float* entry, double eps, const LossFn& loss) {
  float orig = *entry;
  *entry = static_cast<float>(orig + eps);
  double up = loss();
  *entry = static_cast<float>(orig - eps);
  double down = loss();
  *entry = orig;
  return (up - down) / (2.0 * eps);
}

TEST(LinearGradientTest, MatchesNumerical) {
  Rng rng(11);
  Linear lin(4, 3, &rng);
  std::vector<float> x = {0.5f, -1.0f, 0.25f, 2.0f};
  std::vector<float> c = {1.0f, -2.0f, 0.5f};  // loss = dot(y, c)

  auto loss = [&]() {
    float y[3];
    lin.Forward(x.data(), y);
    return static_cast<double>(y[0] * c[0] + y[1] * c[1] + y[2] * c[2]);
  };

  std::vector<float> dx(4, 0.f);
  lin.Backward(x.data(), c.data(), dx.data());

  auto params = lin.Params();
  for (ParamTensor* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      double num = NumericalGrad(&p->value.data()[i], 1e-3, loss);
      EXPECT_NEAR(p->grad.data()[i], num, 5e-3)
          << p->name << "[" << i << "]";
    }
  }
  // Input gradient = W^T c; check numerically too.
  for (int i = 0; i < 4; ++i) {
    double num = NumericalGrad(&x[i], 1e-3, loss);
    EXPECT_NEAR(dx[i], num, 5e-3);
  }
}

TEST(LstmCellGradientTest, MatchesNumerical) {
  Rng rng(13);
  const int in = 3, hid = 4;
  LstmCell cell(in, hid, &rng);
  std::vector<float> x = {0.3f, -0.7f, 1.1f};
  std::vector<float> h0 = {0.1f, -0.2f, 0.05f, 0.4f};
  std::vector<float> c0 = {0.2f, 0.1f, -0.3f, 0.0f};
  std::vector<float> ch = {1.f, -1.f, 0.5f, 2.f};
  std::vector<float> cc = {0.3f, 0.7f, -0.2f, 1.f};

  auto loss = [&]() {
    LstmCell::Cache cache;
    cell.Forward(x.data(), h0.data(), c0.data(), &cache);
    double l = 0;
    for (int k = 0; k < hid; ++k) {
      l += cache.h[k] * ch[k] + cache.c[k] * cc[k];
    }
    return l;
  };

  LstmCell::Cache cache;
  cell.Forward(x.data(), h0.data(), c0.data(), &cache);
  std::vector<float> dh_prev(hid), dc_prev(hid), dx(in, 0.f);
  cell.Backward(cache, ch.data(), cc.data(), dh_prev.data(), dc_prev.data(),
                dx.data());

  for (ParamTensor* p : cell.Params()) {
    // Sample entries to keep the test fast while covering all tensors.
    for (size_t i = 0; i < p->value.size(); i += 3) {
      double num = NumericalGrad(&p->value.data()[i], 1e-3, loss);
      EXPECT_NEAR(p->grad.data()[i], num, 2e-2) << p->name << "[" << i << "]";
    }
  }
  for (int i = 0; i < in; ++i) {
    double num = NumericalGrad(&x[i], 1e-3, loss);
    EXPECT_NEAR(dx[i], num, 2e-2);
  }
  for (int i = 0; i < hid; ++i) {
    double num_h = NumericalGrad(&h0[i], 1e-3, loss);
    EXPECT_NEAR(dh_prev[i], num_h, 2e-2);
    double num_c = NumericalGrad(&c0[i], 1e-3, loss);
    EXPECT_NEAR(dc_prev[i], num_c, 2e-2);
  }
}

TEST(LstmCellGradientTest, OneHotPathMatchesDense) {
  Rng rng(17);
  const int in = 5, hid = 3;
  LstmCell cell(in, hid, &rng);
  std::vector<float> h0(hid, 0.1f), c0(hid, -0.1f);
  // Dense one-hot input.
  std::vector<float> x(in, 0.f);
  x[2] = 1.f;
  LstmCell::Cache dense, onehot;
  cell.Forward(x.data(), h0.data(), c0.data(), &dense);
  cell.ForwardOneHot(2, h0.data(), c0.data(), &onehot);
  for (int k = 0; k < hid; ++k) {
    EXPECT_FLOAT_EQ(dense.h[k], onehot.h[k]);
    EXPECT_FLOAT_EQ(dense.c[k], onehot.c[k]);
  }
}

TEST(LstmStackGradientTest, BpttMatchesNumerical) {
  Rng rng(19);
  const int vocab = 6, hid = 4, layers = 2;
  LstmStack stack(vocab, hid, layers, /*dropout=*/0.f, &rng);
  std::vector<int> tokens = {1, 4, 2};
  std::vector<std::vector<float>> coef = {
      {1.f, 0.f, -1.f, 0.5f},
      {0.f, 2.f, 0.f, -0.5f},
      {1.f, 1.f, 1.f, 1.f},
  };

  Rng dummy(0);
  auto loss = [&]() {
    LstmStack::State st = stack.InitialState();
    double l = 0;
    for (size_t t = 0; t < tokens.size(); ++t) {
      const std::vector<float>& h =
          stack.Step(tokens[t], &st, nullptr, false, &dummy);
      for (int k = 0; k < hid; ++k) l += h[k] * coef[t][k];
    }
    return l;
  };

  // Forward with caches, then BPTT.
  LstmStack::State st = stack.InitialState();
  std::vector<LstmStack::StepCache> caches(tokens.size());
  for (size_t t = 0; t < tokens.size(); ++t) {
    stack.Step(tokens[t], &st, &caches[t], true, &dummy);
  }
  stack.Backward(caches, coef);

  int checked = 0;
  for (ParamTensor* p : stack.Params()) {
    for (size_t i = 0; i < p->value.size(); i += 7) {
      double num = NumericalGrad(&p->value.data()[i], 1e-3, loss);
      EXPECT_NEAR(p->grad.data()[i], num, 3e-2) << p->name << "[" << i << "]";
      ++checked;
    }
  }
  EXPECT_GE(checked, 40);
}

// ---------------------------------------------------------------- dropout

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout d(0.5f);
  Rng rng(23);
  std::vector<float> x = {1.f, 2.f, 3.f};
  std::vector<float> mask;
  d.Forward(&x, &mask, /*train=*/false, &rng);
  EXPECT_TRUE(mask.empty());
  EXPECT_FLOAT_EQ(x[1], 2.f);
}

TEST(DropoutTest, TrainingZeroesAndRescales) {
  Dropout d(0.3f);
  Rng rng(29);
  const int n = 20000;
  std::vector<float> x(n, 1.f);
  std::vector<float> mask;
  d.Forward(&x, &mask, /*train=*/true, &rng);
  int zeros = 0;
  double sum = 0;
  for (float v : x) {
    if (v == 0.f) ++zeros;
    sum += v;
  }
  EXPECT_NEAR(zeros / static_cast<double>(n), 0.3, 0.02);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(DropoutTest, BackwardRoutesThroughMask) {
  std::vector<float> mask = {0.f, 2.f};
  std::vector<float> dx = {5.f, 5.f};
  Dropout::Backward(mask, &dx);
  EXPECT_FLOAT_EQ(dx[0], 0.f);
  EXPECT_FLOAT_EQ(dx[1], 10.f);
}

// ---------------------------------------------------------------- adam

TEST(AdamTest, MinimizesQuadratic) {
  ParamTensor w("w", Matrix::Zeros(1, 1));
  w.value.data()[0] = 10.f;
  Adam opt({&w}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    // d/dw 0.5 (w - 3)^2 = w - 3
    w.grad.data()[0] = w.value.data()[0] - 3.f;
    opt.Step();
  }
  EXPECT_NEAR(w.value.data()[0], 3.f, 0.05);
  EXPECT_EQ(opt.steps(), 500);
}

TEST(AdamTest, StepZeroesGradients) {
  ParamTensor w("w", Matrix::Zeros(1, 1));
  Adam opt({&w}, 0.01f);
  w.grad.data()[0] = 1.f;
  opt.Step();
  EXPECT_FLOAT_EQ(w.grad.data()[0], 0.f);
}

TEST(AdamTest, ZeroGradDiscards) {
  ParamTensor w("w", Matrix::Zeros(1, 1));
  Adam opt({&w}, 0.01f);
  w.grad.data()[0] = 1.f;
  float before = w.value.data()[0];
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(w.grad.data()[0], 0.f);
  EXPECT_FLOAT_EQ(w.value.data()[0], before);
}

// ------------------------------------------------------------- serialize

TEST(SerializeTest, RoundTrip) {
  Rng rng(31);
  Linear a(3, 2, &rng);
  Linear b(3, 2, &rng);
  std::string path = std::filesystem::temp_directory_path() /
                     "lsg_serialize_test.bin";
  ASSERT_TRUE(SaveParams(a.Params(), path).ok());
  ASSERT_TRUE(LoadParams(b.Params(), path).ok());
  auto pa = a.Params();
  auto pb = b.Params();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (size_t k = 0; k < pa[i]->value.size(); ++k) {
      EXPECT_FLOAT_EQ(pa[i]->value.data()[k], pb[i]->value.data()[k]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(37);
  Linear a(3, 2, &rng);
  Linear b(4, 2, &rng);
  std::string path = std::filesystem::temp_directory_path() /
                     "lsg_serialize_mismatch.bin";
  ASSERT_TRUE(SaveParams(a.Params(), path).ok());
  EXPECT_FALSE(LoadParams(b.Params(), path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileRejected) {
  Rng rng(41);
  Linear a(2, 2, &rng);
  EXPECT_EQ(LoadParams(a.Params(), "/nonexistent/dir/x.bin").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace lsg
