#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/data_type.h"
#include "catalog/schema.h"
#include "catalog/value.h"

namespace lsg {
namespace {

// ---------------------------------------------------------------- types

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeName(DataType::kString), "STRING");
  EXPECT_STREQ(DataTypeName(DataType::kCategorical), "CATEGORICAL");
}

TEST(DataTypeTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
  EXPECT_FALSE(IsNumeric(DataType::kCategorical));
}

TEST(DataTypeTest, Comparability) {
  EXPECT_TRUE(AreComparable(DataType::kInt64, DataType::kDouble));
  EXPECT_TRUE(AreComparable(DataType::kString, DataType::kString));
  EXPECT_FALSE(AreComparable(DataType::kInt64, DataType::kString));
  EXPECT_FALSE(AreComparable(DataType::kCategorical, DataType::kString));
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
}

TEST(ValueTest, IntBasics) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_DOUBLE_EQ(v.AsNumber(), 42.0);
  EXPECT_EQ(v.ToSqlLiteral(), "42");
}

TEST(ValueTest, DoubleBasics) {
  Value v(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_EQ(v.ToSqlLiteral(), "2.5");
}

TEST(ValueTest, StringEscaping) {
  Value v(std::string("o'brien"));
  EXPECT_EQ(v.ToSqlLiteral(), "'o''brien'");
  EXPECT_EQ(v.ToString(), "o'brien");
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, IntAndEqualDoubleHashAlike) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
}

TEST(ValueTest, OperatorLess) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{2}));
}

// ---------------------------------------------------------------- schema

TEST(TableSchemaTest, AddAndFind) {
  TableSchema s("t");
  EXPECT_TRUE(s.AddColumn({"a", DataType::kInt64, true, false}).ok());
  EXPECT_TRUE(s.AddColumn({"b", DataType::kString, false, true}).ok());
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.FindColumn("b"), 1);
  EXPECT_EQ(s.FindColumn("zzz"), -1);
  EXPECT_EQ(s.PrimaryKeyColumn(), 0);
}

TEST(TableSchemaTest, DuplicateColumnRejected) {
  TableSchema s("t");
  ASSERT_TRUE(s.AddColumn({"a", DataType::kInt64, false, false}).ok());
  EXPECT_EQ(s.AddColumn({"a", DataType::kDouble, false, false}).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableSchemaTest, NoPrimaryKey) {
  TableSchema s("t");
  ASSERT_TRUE(s.AddColumn({"a", DataType::kInt64, false, false}).ok());
  EXPECT_EQ(s.PrimaryKeyColumn(), -1);
}

TEST(TableSchemaTest, ToStringMentionsColumns) {
  TableSchema s("t");
  ASSERT_TRUE(s.AddColumn({"a", DataType::kInt64, true, false}).ok());
  std::string str = s.ToString();
  EXPECT_NE(str.find("t("), std::string::npos);
  EXPECT_NE(str.find("a INT64 PK"), std::string::npos);
}

// ---------------------------------------------------------------- catalog

Catalog TwoTableCatalog() {
  Catalog cat;
  TableSchema score("Score");
  EXPECT_TRUE(score.AddColumn({"ID", DataType::kInt64, true, false}).ok());
  EXPECT_TRUE(score.AddColumn({"StudentID", DataType::kInt64, false, false}).ok());
  EXPECT_TRUE(score.AddColumn({"Grade", DataType::kDouble, false, false}).ok());
  TableSchema student("Student");
  EXPECT_TRUE(student.AddColumn({"ID", DataType::kInt64, true, false}).ok());
  EXPECT_TRUE(student.AddColumn({"Name", DataType::kString, false, false}).ok());
  EXPECT_TRUE(cat.AddTable(std::move(score)).ok());
  EXPECT_TRUE(cat.AddTable(std::move(student)).ok());
  EXPECT_TRUE(
      cat.AddForeignKey({"Score", "StudentID", "Student", "ID"}).ok());
  return cat;
}

TEST(CatalogTest, FindTable) {
  Catalog cat = TwoTableCatalog();
  EXPECT_EQ(cat.num_tables(), 2u);
  EXPECT_EQ(cat.FindTable("Score"), 0);
  EXPECT_EQ(cat.FindTable("Student"), 1);
  EXPECT_EQ(cat.FindTable("Nope"), -1);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat = TwoTableCatalog();
  EXPECT_EQ(cat.AddTable(TableSchema("Score")).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, JoinableBothDirections) {
  Catalog cat = TwoTableCatalog();
  EXPECT_TRUE(cat.AreJoinable("Score", "Student"));
  EXPECT_TRUE(cat.AreJoinable("Student", "Score"));
  EXPECT_FALSE(cat.AreJoinable("Score", "Score"));
}

TEST(CatalogTest, JoinEdges) {
  Catalog cat = TwoTableCatalog();
  auto edges = cat.JoinEdges("Student", "Score");
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from_table, "Score");
  EXPECT_EQ(edges[0].to_column, "ID");
}

TEST(CatalogTest, JoinableTables) {
  Catalog cat = TwoTableCatalog();
  auto j = cat.JoinableTables("Score");
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j[0], "Student");
}

TEST(CatalogTest, ForeignKeyUnknownTableRejected) {
  Catalog cat = TwoTableCatalog();
  EXPECT_EQ(cat.AddForeignKey({"Nope", "x", "Student", "ID"}).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ForeignKeyUnknownColumnRejected) {
  Catalog cat = TwoTableCatalog();
  EXPECT_EQ(cat.AddForeignKey({"Score", "nope", "Student", "ID"}).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ForeignKeyTypeMismatchRejected) {
  Catalog cat = TwoTableCatalog();
  // Name is STRING, StudentID is INT64: not comparable.
  EXPECT_EQ(cat.AddForeignKey({"Score", "StudentID", "Student", "Name"}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lsg
