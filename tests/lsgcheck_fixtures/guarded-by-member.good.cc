// Clean: every annotation names a Mutex declared in this file.
#include "common/sync.h"

struct Queue {
  int depth LSG_GUARDED_BY(mu_) = 0;
  int* slots LSG_PT_GUARDED_BY(mu_) = nullptr;
  lsg::Mutex mu_;
};
