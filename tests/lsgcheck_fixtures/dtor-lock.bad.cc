// Violation: a destructor takes a lock with no dtor-lock justification.
#include "common/sync.h"

struct Sink {
  ~Sink() {
    lsg::MutexLock lock(&mu);
    open = false;
  }
  lsg::Mutex mu;
  bool open LSG_GUARDED_BY(mu) = true;
};
