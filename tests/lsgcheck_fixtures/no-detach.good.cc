// Clean: every thread is joined before its owner goes away.
#include <thread>

void RunAndWait() {
  std::thread t([] {});
  t.join();
}
