// Clean: synchronization goes through the annotated wrappers.
#include "common/sync.h"

struct Counter {
  void Add() {
    lsg::MutexLock lock(&mu);
    ++n;
  }
  lsg::Mutex mu;
  int n LSG_GUARDED_BY(mu) = 0;
};
