// Violation: an explicit memory order with no justification comment.
#include <atomic>

std::atomic<int> g_count{0};

void Bump() { g_count.fetch_add(1, std::memory_order_relaxed); }
