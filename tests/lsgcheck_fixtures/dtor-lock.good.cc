// Clean: the destructor-time acquisition explains why it cannot cycle.
#include "common/sync.h"

struct Sink {
  ~Sink() {
    // dtor-lock: leaf mutex; the destructor only flips a flag, and the
    // owner contract quiesces writers before destruction.
    lsg::MutexLock lock(&mu);
    open = false;
  }
  lsg::Mutex mu;
  bool open LSG_GUARDED_BY(mu) = true;
};
