// Violation: raw standard-library synchronization outside common/sync.h.
#include <mutex>

struct Counter {
  void Add() {
    std::lock_guard<std::mutex> lock(mu);
    ++n;
  }
  std::mutex mu;
  int n = 0;
};
