// Violation: the annotation names a mutex that does not exist here.
#include "common/sync.h"

struct Queue {
  int depth LSG_GUARDED_BY(queue_mu_) = 0;
  lsg::Mutex mu_;
};
