// Violation: a detached thread outlives shutdown and races teardown.
#include <thread>

void FireAndForget() {
  std::thread t([] {});
  t.detach();
}
