// Clean: every explicit order carries an adjacent justification.
#include <atomic>

std::atomic<int> g_count{0};

void Bump() {
  // relaxed: independent tally; no reader orders other data through it.
  g_count.fetch_add(1, std::memory_order_relaxed);
}

int Read() {
  return g_count.load(std::memory_order_relaxed);  // relaxed: same tally
}
