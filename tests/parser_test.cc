#include <gtest/gtest.h>

#include "core/workload.h"
#include "fsm/generation_fsm.h"
#include "sql/parser.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : db_(BuildScoreStudentDb()) {}
  const Catalog& cat() { return db_.catalog(); }

  /// Parses, asserting success.
  QueryAst Parse(const std::string& sql) {
    auto ast = ParseSql(sql, cat());
    EXPECT_TRUE(ast.ok()) << sql << " -> " << ast.status().ToString();
    return ast.ok() ? std::move(ast).value() : QueryAst();
  }

  Database db_;
};

TEST_F(ParserTest, SimpleSelect) {
  QueryAst ast = Parse("SELECT Score.ID FROM Score");
  ASSERT_EQ(ast.type, QueryType::kSelect);
  ASSERT_EQ(ast.select->tables.size(), 1u);
  ASSERT_EQ(ast.select->items.size(), 1u);
  EXPECT_EQ(ast.select->items[0].agg, AggFunc::kNone);
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  QueryAst ast = Parse("select Score.ID from Score where Score.Grade < 70");
  EXPECT_EQ(ast.select->where.predicates.size(), 1u);
}

TEST_F(ParserTest, AggregatesAndMultipleItems) {
  QueryAst ast =
      Parse("SELECT Score.Course, MAX(Score.Grade), COUNT(Score.ID) "
            "FROM Score");
  ASSERT_EQ(ast.select->items.size(), 3u);
  EXPECT_EQ(ast.select->items[1].agg, AggFunc::kMax);
  EXPECT_EQ(ast.select->items[2].agg, AggFunc::kCount);
}

TEST_F(ParserTest, JoinOnClauseValidatedAndDiscarded) {
  QueryAst ast = Parse(
      "SELECT Student.Name FROM Score JOIN Student ON Score.ID = Student.ID");
  ASSERT_EQ(ast.select->tables.size(), 2u);
}

TEST_F(ParserTest, WhereConnectorsAndLiterals) {
  QueryAst ast = Parse(
      "SELECT Score.ID FROM Score WHERE Score.Grade >= 80.5 AND "
      "Score.Course = 'db' OR Score.SID <> 3");
  const WhereClause& w = ast.select->where;
  ASSERT_EQ(w.predicates.size(), 3u);
  ASSERT_EQ(w.connectors.size(), 2u);
  EXPECT_EQ(w.connectors[0], BoolConn::kAnd);
  EXPECT_EQ(w.connectors[1], BoolConn::kOr);
  EXPECT_TRUE(w.predicates[0].value.is_double());
  EXPECT_TRUE(w.predicates[1].value.is_string());
  EXPECT_TRUE(w.predicates[2].value.is_int());
  EXPECT_EQ(w.predicates[2].op, CompareOp::kNe);
}

TEST_F(ParserTest, EscapedStringLiteral) {
  QueryAst ast =
      Parse("SELECT Student.ID FROM Student WHERE Student.Name = 'o''brien'");
  EXPECT_EQ(ast.select->where.predicates[0].value.as_string(), "o'brien");
}

TEST_F(ParserTest, NegativeNumbers) {
  QueryAst ast =
      Parse("SELECT Score.ID FROM Score WHERE Score.Grade > -5.5");
  EXPECT_DOUBLE_EQ(ast.select->where.predicates[0].value.as_double(), -5.5);
}

TEST_F(ParserTest, GroupByHavingOrderBy) {
  QueryAst ast = Parse(
      "SELECT Score.Course FROM Score GROUP BY Score.Course "
      "HAVING COUNT(Score.Grade) > 3 ORDER BY Score.Course");
  EXPECT_EQ(ast.select->group_by.size(), 1u);
  ASSERT_TRUE(ast.select->having.has_value());
  EXPECT_EQ(ast.select->having->agg, AggFunc::kCount);
  EXPECT_EQ(ast.select->order_by.size(), 1u);
}

TEST_F(ParserTest, InSubquery) {
  QueryAst ast = Parse(
      "SELECT Score.ID FROM Score WHERE Score.ID IN "
      "(SELECT Student.ID FROM Student WHERE Student.Gender = 'F')");
  const Predicate& p = ast.select->where.predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kInSub);
  ASSERT_NE(p.subquery, nullptr);
  EXPECT_EQ(p.subquery->where.predicates.size(), 1u);
}

TEST_F(ParserTest, ScalarSubquery) {
  QueryAst ast = Parse(
      "SELECT Score.ID FROM Score WHERE Score.Grade > "
      "(SELECT AVG(Score.Grade) FROM Score)");
  const Predicate& p = ast.select->where.predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kScalarSub);
  EXPECT_EQ(p.op, CompareOp::kGt);
  EXPECT_EQ(p.subquery->items[0].agg, AggFunc::kAvg);
}

TEST_F(ParserTest, NotExists) {
  QueryAst ast = Parse(
      "SELECT Score.ID FROM Score WHERE NOT EXISTS "
      "(SELECT Student.ID FROM Student)");
  const Predicate& p = ast.select->where.predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kExistsSub);
  EXPECT_TRUE(p.negated);
}

TEST_F(ParserTest, Like) {
  QueryAst ast = Parse(
      "SELECT Student.ID FROM Student WHERE Student.Name LIKE '%da%'");
  const Predicate& p = ast.select->where.predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kLike);
  EXPECT_EQ(p.value.as_string(), "%da%");
}

TEST_F(ParserTest, InsertValues) {
  QueryAst ast = Parse("INSERT INTO Student VALUES (99, 'Zoe', 'F')");
  ASSERT_EQ(ast.type, QueryType::kInsert);
  ASSERT_EQ(ast.insert->values.size(), 3u);
  EXPECT_EQ(ast.insert->values[0].as_int(), 99);
}

TEST_F(ParserTest, InsertSelect) {
  QueryAst ast = Parse(
      "INSERT INTO Student SELECT Student.ID, Student.Name, Student.Gender "
      "FROM Student WHERE Student.Gender = 'F'");
  ASSERT_EQ(ast.type, QueryType::kInsert);
  ASSERT_NE(ast.insert->source, nullptr);
  EXPECT_EQ(ast.insert->source->items.size(), 3u);
}

TEST_F(ParserTest, Update) {
  QueryAst ast =
      Parse("UPDATE Score SET Grade = 100 WHERE Score.Course = 'ml'");
  ASSERT_EQ(ast.type, QueryType::kUpdate);
  EXPECT_EQ(ast.update->set_column.column_idx, 3);
  EXPECT_EQ(ast.update->where.predicates.size(), 1u);
}

TEST_F(ParserTest, DeleteBareAndFiltered) {
  QueryAst bare = Parse("DELETE FROM Score");
  EXPECT_EQ(bare.type, QueryType::kDelete);
  EXPECT_TRUE(bare.del->where.empty());
  QueryAst filt = Parse("DELETE FROM Score WHERE Score.Grade <= 65");
  EXPECT_EQ(filt.del->where.predicates.size(), 1u);
}

TEST_F(ParserTest, ErrorsAreStatuses) {
  EXPECT_FALSE(ParseSql("", cat()).ok());
  EXPECT_FALSE(ParseSql("SELECT", cat()).ok());
  EXPECT_FALSE(ParseSql("SELECT Nope.x FROM Nope", cat()).ok());
  EXPECT_FALSE(ParseSql("SELECT Score.Nope FROM Score", cat()).ok());
  EXPECT_FALSE(ParseSql("SELECT Score.ID FROM Score WHERE", cat()).ok());
  EXPECT_FALSE(ParseSql("SELECT Score.ID FROM Score trailing", cat()).ok());
  EXPECT_FALSE(
      ParseSql("SELECT Score.ID FROM Score WHERE Score.ID = 'x", cat()).ok());
  EXPECT_FALSE(ParseSql("DROP TABLE Score", cat()).ok());
}

TEST_F(ParserTest, RoundTripFixedQueries) {
  const char* queries[] = {
      "SELECT Score.ID FROM Score",
      "SELECT Score.ID FROM Score WHERE Score.Grade < 95",
      "SELECT Student.Name FROM Score JOIN Student ON Score.ID = Student.ID "
      "WHERE Score.Course = 'db' AND Score.Grade >= 80",
      "SELECT Score.Course FROM Score GROUP BY Score.Course HAVING "
      "AVG(Score.Grade) > 75",
      "SELECT Score.ID FROM Score WHERE Score.ID IN (SELECT Student.ID FROM "
      "Student) ORDER BY Score.ID",
      "UPDATE Score SET Grade = 99.5 WHERE Score.Course = 'db'",
      "INSERT INTO Student VALUES (7, 'New', 'M')",
      "DELETE FROM Score WHERE Score.Grade <= 65",
  };
  for (const char* sql : queries) {
    QueryAst ast = Parse(sql);
    std::string rendered = RenderSql(ast, cat());
    QueryAst again = Parse(rendered);
    EXPECT_EQ(RenderSql(again, cat()), rendered) << sql;
  }
}

/// Property: every FSM-generated query round-trips through text —
/// parse(render(ast)) renders identically. Run over several profiles.
class ParserRoundTripProperty : public ParserTest,
                                public ::testing::WithParamInterface<int> {};

TEST_P(ParserRoundTripProperty, FsmQueriesRoundTrip) {
  VocabularyOptions vo;
  vo.values_per_column = 8;
  auto vocab = Vocabulary::Build(db_, vo);
  ASSERT_TRUE(vocab.ok());
  QueryProfile profile;
  switch (GetParam()) {
    case 0:
      break;
    case 1:
      profile = QueryProfile::Full();
      break;
    case 2:
      profile.max_nesting_depth = 2;
      break;
    default:
      profile = QueryProfile::SpjOnly();
      break;
  }
  GenerationFsm fsm(&db_, &*vocab, profile);
  Rng rng(500 + GetParam());
  for (int i = 0; i < 120; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    std::string rendered = RenderSql(*ast, cat());
    auto parsed = ParseSql(rendered, cat());
    ASSERT_TRUE(parsed.ok()) << rendered << " -> "
                             << parsed.status().ToString();
    EXPECT_EQ(RenderSql(*parsed, cat()), rendered);
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ParserRoundTripProperty,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace lsg
