// Tests for the annotated synchronization layer (src/common/sync.h):
// macro neutrality off-Clang, MutexLock RAII and TryLock semantics,
// CondVar wait/notify under the explicit-loop idiom, and a guarded
// counter under real contention (run this binary in a
// -DLSG_SANITIZE=thread build to turn that test into a race detector).
//
// Negative-compile mutation check (the build must BREAK, so it cannot be
// a runtime test): compiling this file under Clang with
// -DLSG_THREAD_SAFETY=ON -DLSG_TS_MUTATION seeds a guarded-member read
// whose LSG_REQUIRES annotation has been deliberately removed; Clang's
// -Werror=thread-safety must reject it. A successful compile of the
// mutation means the analysis is not running. Exercise it with:
//
//   cmake -B build-ts -S . -DCMAKE_CXX_COMPILER=clang++ \
//         -DLSG_THREAD_SAFETY=ON -DCMAKE_CXX_FLAGS=-DLSG_TS_MUTATION
//   cmake --build build-ts --target sync_test   # must FAIL
//
// (Under GCC the annotations expand to nothing and the mutation compiles
// silently — the check has teeth exactly where the analysis exists.)
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/sync.h"

namespace lsg {
namespace {

#ifdef LSG_TS_MUTATION
class MutationProbe {
 public:
  // LSG_REQUIRES(mu_) removed on purpose: an unguarded read of a guarded
  // member. Clang with LSG_THREAD_SAFETY=ON must refuse to compile this.
  int UnsafeRead() { return value_; }

 private:
  Mutex mu_;
  int value_ LSG_GUARDED_BY(mu_) = 0;
};
#endif

TEST(SyncTest, AnnotationMacrosCompileAwayOffClang) {
  // The macros must be usable in every position sync.h uses them —
  // declared here on a local type to prove they expand cleanly (to
  // nothing under GCC, to Clang attributes under Clang).
  class LSG_CAPABILITY("mutex") FakeCap {
   public:
    void Lock() LSG_ACQUIRE() {}
    void Unlock() LSG_RELEASE() {}
    bool TryLock() LSG_TRY_ACQUIRE(true) { return true; }
  };
  class Annotated {
   public:
    int Get() LSG_EXCLUDES(mu_) {
      MutexLock lock(&mu_);
      return GetLocked();
    }

   private:
    int GetLocked() LSG_REQUIRES(mu_) { return guarded_; }
    Mutex mu_;
    int guarded_ LSG_GUARDED_BY(mu_) = 42;
  };
  FakeCap cap;
  cap.Lock();
  cap.Unlock();
  if (cap.TryLock()) cap.Unlock();
  Annotated a;
  EXPECT_EQ(a.Get(), 42);
#if defined(__clang__)
  SUCCEED() << "annotations active (Clang)";
#else
  // Off-Clang the attribute macros must be empty — this is what lets the
  // annotated tree keep building on the GCC baseline toolchain.
#define SYNC_TEST_STR_INNER(x) #x
#define SYNC_TEST_STR(x) SYNC_TEST_STR_INNER(x)
  EXPECT_STREQ(SYNC_TEST_STR(LSG_GUARDED_BY(mu_)), "");
  EXPECT_STREQ(SYNC_TEST_STR(LSG_REQUIRES(mu_)), "");
  EXPECT_STREQ(SYNC_TEST_STR(LSG_EXCLUDES(mu_)), "");
#undef SYNC_TEST_STR
#undef SYNC_TEST_STR_INNER
#endif
}

TEST(SyncTest, MutexLockIsHeldForExactlyTheScope) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    // Held: another thread's TryLock must fail.
    bool acquired = true;
    std::thread probe([&] {
      acquired = mu.TryLock();
      if (acquired) mu.Unlock();
    });
    probe.join();
    EXPECT_FALSE(acquired);
  }
  // Released at scope exit: TryLock succeeds again. (Branch on the
  // result rather than wrapping it in an EXPECT — Clang's try-acquire
  // analysis follows explicit branches, not gtest macro expansions.)
  const bool reacquired = mu.TryLock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.Unlock();
}

TEST(SyncTest, CondVarWaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  int payload = 0;

  std::thread consumer([&] {
    MutexLock lock(&mu);
    // The canonical explicit wait loop (see DESIGN.md §6i): re-check the
    // guarded predicate after every wakeup; spurious wakeups just loop.
    while (!ready) cv.Wait(mu);
    observed = payload;
  });
  {
    MutexLock lock(&mu);
    payload = 99;
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  // Seeing payload == 99 proves Wait held the mutex around the predicate
  // re-check and the producer's writes were published through it.
  EXPECT_EQ(observed, 99);
}

TEST(SyncTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(mu);
      ++woke;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke, kWaiters);
}

TEST(SyncTest, GuardedCounterStaysExactUnderContention) {
  // The TSan payload: many threads hammering one guarded counter. In a
  // -DLSG_SANITIZE=thread build any hole in Mutex/MutexLock shows up as
  // a reported race; in a plain build the count proves mutual exclusion.
  Mutex mu;
  int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(SyncTest, TryLockContendsCorrectly) {
  // The probe thread matters twice over: it makes the contended TryLock
  // well-defined (try_lock by the owning thread is UB on a non-recursive
  // mutex) and it mirrors the registry's probe-and-skip eviction idiom.
  Mutex mu;
  mu.Lock();
  bool stolen = true;
  std::thread probe([&] {
    stolen = mu.TryLock();
    if (stolen) mu.Unlock();
  });
  probe.join();
  EXPECT_FALSE(stolen);
  mu.Unlock();
  const bool uncontended = mu.TryLock();
  EXPECT_TRUE(uncontended);
  if (uncontended) mu.Unlock();
}

}  // namespace
}  // namespace lsg
