#ifndef LEARNEDSQLGEN_TESTS_TEST_DB_H_
#define LEARNEDSQLGEN_TESTS_TEST_DB_H_

// BuildScoreStudentDb() moved into the fuzzing library so the fuzzer,
// benches, and tests all share one set of builders; this shim keeps the
// historical include path working for the test suite.
#include "fuzz/test_databases.h"

#endif  // LEARNEDSQLGEN_TESTS_TEST_DB_H_
