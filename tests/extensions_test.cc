// Tests for the features the paper lists as future work / extensions:
// LIKE patterns (§5), ORDER BY, and model persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/generator.h"
#include "core/workload.h"
#include "exec/executor.h"
#include "exec/expression.h"
#include "fsm/generation_fsm.h"
#include "optimizer/cardinality_estimator.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// ----------------------------------------------------------- LikeMatch

TEST(LikeMatchTest, Literals) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_FALSE(LikeMatch("ab", "abc"));
  EXPECT_TRUE(LikeMatch("", ""));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("abcdef", "%cd%"));
  EXPECT_TRUE(LikeMatch("abcdef", "abc%"));
  EXPECT_TRUE(LikeMatch("abcdef", "%def"));
  EXPECT_TRUE(LikeMatch("abcdef", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("abcdef", "%xy%"));
  EXPECT_TRUE(LikeMatch("aaa", "%a%a%"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("ac", "a_c"));
  EXPECT_TRUE(LikeMatch("abc", "___"));
  EXPECT_FALSE(LikeMatch("abc", "____"));
  EXPECT_TRUE(LikeMatch("abc", "_%"));
}

TEST(LikeMatchTest, BacktrackingCases) {
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
  EXPECT_TRUE(LikeMatch("mississippi", "m%ss%ppi"));
  EXPECT_FALSE(LikeMatch("mississippi", "%issipp%y"));
}

// ---------------------------------------------------------- vocabulary

TEST(LikeVocabularyTest, PatternsSampledForStringColumns) {
  Database db = BuildScoreStudentDb();
  VocabularyOptions vo;
  vo.values_per_column = 5;
  vo.patterns_per_string_column = 4;
  auto v = Vocabulary::Build(db, vo);
  ASSERT_TRUE(v.ok());
  int student = db.catalog().FindTable("Student");
  const auto& patterns = v->pattern_token_ids(student, 1);  // Name
  EXPECT_FALSE(patterns.empty());
  for (int id : patterns) {
    const Token& t = v->token(id);
    EXPECT_TRUE(t.is_pattern);
    const std::string& p = t.value.as_string();
    EXPECT_EQ(p.front(), '%');
    EXPECT_EQ(p.back(), '%');
    EXPECT_GT(p.size(), 2u);
  }
  // Numeric columns never get patterns.
  int score = db.catalog().FindTable("Score");
  EXPECT_TRUE(v->pattern_token_ids(score, 3).empty());
}

TEST(LikeVocabularyTest, DisabledByOption) {
  Database db = BuildScoreStudentDb();
  VocabularyOptions vo;
  vo.patterns_per_string_column = 0;
  auto v = Vocabulary::Build(db, vo);
  ASSERT_TRUE(v.ok());
  int student = db.catalog().FindTable("Student");
  EXPECT_TRUE(v->pattern_token_ids(student, 1).empty());
}

// ------------------------------------------------------------ executor

class LikeExecTest : public ::testing::Test {
 protected:
  LikeExecTest() : db_(BuildScoreStudentDb()), exec_(&db_) {}
  int student() { return db_.catalog().FindTable("Student"); }
  Database db_;
  Executor exec_;
};

TEST_F(LikeExecTest, CountsMatchingRows) {
  // Names: Ada Bob Cat Dan Eve Fay Gus Hal Ivy Joe — exactly one contains
  // "da" (Ada), three end with a vowel... check a couple of patterns.
  SelectQuery q;
  q.tables = {student()};
  q.items.push_back({AggFunc::kNone, {student(), 0}});
  Predicate p;
  p.kind = PredicateKind::kLike;
  p.column = {student(), 1};
  p.value = Value("%da%");
  q.where.predicates.push_back(std::move(p));
  auto r = exec_.ExecuteSelect(q, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cardinality, 1u);  // Ada
}

TEST_F(LikeExecTest, PrefixPattern) {
  SelectQuery q;
  q.tables = {student()};
  q.items.push_back({AggFunc::kNone, {student(), 0}});
  Predicate p;
  p.kind = PredicateKind::kLike;
  p.column = {student(), 1};
  p.value = Value("_a%");  // second letter 'a': Cat, Dan, Fay, Hal
  q.where.predicates.push_back(std::move(p));
  auto r = exec_.ExecuteSelect(q, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cardinality, 4u);
}

// ----------------------------------------------------------- estimator

TEST(LikeEstimatorTest, SelectivityTracksMcvMatches) {
  Database db = BuildScoreStudentDb();
  DatabaseStats stats = DatabaseStats::Collect(db);
  CardinalityEstimator est(&db, &stats);
  int student = db.catalog().FindTable("Student");
  SelectQuery q;
  q.tables = {student};
  q.items.push_back({AggFunc::kNone, {student, 0}});
  Predicate p;
  p.kind = PredicateKind::kLike;
  p.column = {student, 1};
  p.value = Value("%a%");  // matches Ada,Cat,Dan,Fay,Hal = 5/10
  q.where.predicates.push_back(std::move(p));
  double estimate = est.EstimateSelect(q, nullptr);
  EXPECT_NEAR(estimate, 5.0, 1.5);

  // A pattern matching nothing should estimate near zero.
  q.where.predicates[0].value = Value("%zzz%");
  EXPECT_LT(est.EstimateSelect(q, nullptr), 1.5);
}

// ----------------------------------------------------------- FSM + walks

class ExtensionFsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildScoreStudentDb();
    VocabularyOptions vo;
    vo.values_per_column = 8;
    auto v = Vocabulary::Build(db_, vo);
    ASSERT_TRUE(v.ok());
    vocab_ = std::move(v).value();
  }
  int score() { return db_.catalog().FindTable("Score"); }
  int student() { return db_.catalog().FindTable("Student"); }
  Database db_;
  std::optional<Vocabulary> vocab_;
};

TEST_F(ExtensionFsmTest, LikeOfferedOnlyForStringColumnsWithPatterns) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kFrom)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->table_token_id(student())).ok());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kSelect)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->column_token_id(student(), 0)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kWhere)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->column_token_id(student(), 1)).ok());  // Name
  const auto& mask = fsm.ValidActions();
  EXPECT_TRUE(mask[vocab_->keyword_id(Keyword::kLike)]);
  // After LIKE only this column's patterns are offered.
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kLike)).ok());
  const auto& m2 = fsm.ValidActions();
  int allowed = 0;
  for (size_t i = 0; i < m2.size(); ++i) {
    if (!m2[i]) continue;
    ++allowed;
    const Token& t = vocab_->token(static_cast<int>(i));
    EXPECT_TRUE(t.is_pattern);
    EXPECT_EQ(t.value_column_table, student());
    EXPECT_EQ(t.value_column_idx, 1);
  }
  EXPECT_GT(allowed, 0);
}

TEST_F(ExtensionFsmTest, LikeMaskedForNumericColumns) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kFrom)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->table_token_id(score())).ok());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kSelect)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->column_token_id(score(), 0)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kWhere)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->column_token_id(score(), 3)).ok());  // Grade
  EXPECT_FALSE(fsm.ValidActions()[vocab_->keyword_id(Keyword::kLike)]);
}

TEST_F(ExtensionFsmTest, OrderByFlow) {
  GenerationFsm fsm(&db_, &*vocab_, QueryProfile());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kFrom)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->table_token_id(score())).ok());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kSelect)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->column_token_id(score(), 1)).ok());
  EXPECT_TRUE(fsm.ValidActions()[vocab_->keyword_id(Keyword::kOrderBy)]);
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kOrderBy)).ok());
  // Only the selected plain column is orderable.
  const auto& mask = fsm.ValidActions();
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      EXPECT_EQ(vocab_->token(static_cast<int>(i)).column.column_idx, 1);
    }
  }
  ASSERT_TRUE(fsm.Step(vocab_->column_token_id(score(), 1)).ok());
  EXPECT_TRUE(fsm.IsExecutablePrefix());
  ASSERT_TRUE(fsm.Step(vocab_->eof_id()).ok());
  QueryAst ast = fsm.TakeAst();
  ASSERT_EQ(ast.select->order_by.size(), 1u);
  std::string sql = RenderSql(ast, db_.catalog());
  EXPECT_NE(sql.find("ORDER BY Score.ID"), std::string::npos) << sql;
}

TEST_F(ExtensionFsmTest, OrderByMaskedWhenDisabled) {
  QueryProfile profile;
  profile.allow_order_by = false;
  GenerationFsm fsm(&db_, &*vocab_, profile);
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kFrom)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->table_token_id(score())).ok());
  ASSERT_TRUE(fsm.Step(vocab_->keyword_id(Keyword::kSelect)).ok());
  ASSERT_TRUE(fsm.Step(vocab_->column_token_id(score(), 1)).ok());
  EXPECT_FALSE(fsm.ValidActions()[vocab_->keyword_id(Keyword::kOrderBy)]);
}

TEST_F(ExtensionFsmTest, WalksWithExtensionsExecute) {
  QueryProfile profile;
  profile.max_nesting_depth = 2;
  GenerationFsm fsm(&db_, &*vocab_, profile);
  Executor exec(&db_);
  Rng rng(777);
  int like_seen = 0, order_seen = 0;
  for (int i = 0; i < 300; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    auto card = exec.Cardinality(*ast);
    ASSERT_TRUE(card.ok()) << RenderSql(*ast, db_.catalog());
    if (ast->type == QueryType::kSelect) {
      if (!ast->select->order_by.empty()) ++order_seen;
      for (const Predicate& p : ast->select->where.predicates) {
        if (p.kind == PredicateKind::kLike) ++like_seen;
      }
    }
  }
  // The random walk should actually exercise both extensions.
  EXPECT_GT(like_seen, 0);
  EXPECT_GT(order_seen, 0);
}

// ----------------------------------------------------------- cost model

TEST(OrderByCostTest, SortAddsCost) {
  Database db = BuildScoreStudentDb();
  DatabaseStats stats = DatabaseStats::Collect(db);
  CardinalityEstimator est(&db, &stats);
  CostModel cost(&est);
  int score = db.catalog().FindTable("Score");
  SelectQuery q;
  q.tables = {score};
  q.items.push_back({AggFunc::kNone, {score, 0}});
  double plain = cost.SelectCost(q);
  q.order_by.push_back({score, 0});
  EXPECT_GT(cost.SelectCost(q), plain);
}

// ------------------------------------------------------- model persist

TEST(ModelPersistenceTest, SaveLoadReproducesPolicy) {
  Database db = BuildScoreStudentDb();
  LearnedSqlGenOptions opts;
  opts.train_epochs = 20;
  opts.trainer.batch_size = 4;
  opts.vocab.values_per_column = 8;
  auto gen = LearnedSqlGen::Create(&db, opts);
  ASSERT_TRUE(gen.ok());
  Constraint c = Constraint::Range(ConstraintMetric::kCardinality, 5, 60);
  ASSERT_TRUE((*gen)->Train(c).ok());
  std::string path =
      std::filesystem::temp_directory_path() / "lsg_model_test.bin";
  ASSERT_TRUE((*gen)->SaveModel(path).ok());

  // A fresh pipeline loads the model and generates without retraining.
  auto gen2 = LearnedSqlGen::Create(&db, opts);
  ASSERT_TRUE(gen2.ok());
  ASSERT_TRUE((*gen2)->LoadModel(c, path).ok());
  auto rep = (*gen2)->GenerateBatch(10);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->attempts, 10);
  std::remove(path.c_str());
}

TEST(ModelPersistenceTest, SaveBeforeTrainFails) {
  Database db = BuildScoreStudentDb();
  auto gen = LearnedSqlGen::Create(&db, LearnedSqlGenOptions());
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ((*gen)->SaveModel("/tmp/never.bin").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace lsg
