#include <gtest/gtest.h>

#include "sql/ast_builder.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

Token Kw(Keyword k) {
  Token t;
  t.kind = TokenKind::kKeyword;
  t.keyword = k;
  t.text = KeywordText(k);
  return t;
}
Token Tab(int idx) {
  Token t;
  t.kind = TokenKind::kTable;
  t.table_idx = idx;
  t.text = "table";
  return t;
}
Token Col(int table, int col) {
  Token t;
  t.kind = TokenKind::kColumn;
  t.column = {table, col};
  t.text = "col";
  return t;
}
Token Op(CompareOp op) {
  Token t;
  t.kind = TokenKind::kOperator;
  t.op = op;
  t.text = CompareOpText(op);
  return t;
}
Token Val(Value v) {
  Token t;
  t.kind = TokenKind::kValue;
  t.text = v.ToSqlLiteral();
  t.value = std::move(v);
  return t;
}
Token Eof() {
  Token t;
  t.kind = TokenKind::kEof;
  t.text = "<EOF>";
  return t;
}

class AstBuilderTest : public ::testing::Test {
 protected:
  AstBuilderTest() : db_(BuildScoreStudentDb()), builder_(&db_.catalog()) {}

  void FeedAll(const std::vector<Token>& tokens) {
    for (const Token& t : tokens) {
      ASSERT_TRUE(builder_.Feed(t).ok())
          << "token '" << t.text << "' in phase "
          << BuildPhaseName(builder_.phase());
    }
  }

  int score() { return db_.catalog().FindTable("Score"); }
  int student() { return db_.catalog().FindTable("Student"); }

  Database db_;
  AstBuilder builder_;
};

TEST_F(AstBuilderTest, StartsAtStart) {
  EXPECT_EQ(builder_.phase(), BuildPhase::kStart);
  EXPECT_EQ(builder_.depth(), 1);
  EXPECT_FALSE(builder_.done());
  EXPECT_FALSE(builder_.IsExecutablePrefix());
}

TEST_F(AstBuilderTest, PaperExampleQuery) {
  // "From Score Select ID Where Grade < 95 EOF" (Figure 1's walk-through).
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 1), Kw(Keyword::kWhere), Col(score(), 3),
           Op(CompareOp::kLt), Val(Value(95.0)), Eof()});
  EXPECT_TRUE(builder_.done());
  const QueryAst& ast = builder_.ast();
  EXPECT_EQ(ast.type, QueryType::kSelect);
  ASSERT_EQ(ast.select->tables.size(), 1u);
  ASSERT_EQ(ast.select->items.size(), 1u);
  ASSERT_EQ(ast.select->where.predicates.size(), 1u);
  EXPECT_EQ(ast.select->where.predicates[0].op, CompareOp::kLt);
  std::string sql = RenderSql(ast, db_.catalog());
  EXPECT_EQ(sql, "SELECT Score.ID FROM Score WHERE Score.Grade < 95");
}

TEST_F(AstBuilderTest, ExecutabilityEvolvesLikeThePaper) {
  // Partial query "From Score Select ID" is executable; appending the bare
  // "Where" keyword makes it non-executable (paper §3.2 gives it reward 0).
  FeedAll({Kw(Keyword::kFrom), Tab(score())});
  EXPECT_FALSE(builder_.IsExecutablePrefix());
  FeedAll({Kw(Keyword::kSelect), Col(score(), 1)});
  EXPECT_TRUE(builder_.IsExecutablePrefix());
  FeedAll({Kw(Keyword::kWhere)});
  EXPECT_FALSE(builder_.IsExecutablePrefix());
  FeedAll({Col(score(), 3), Op(CompareOp::kLt)});
  EXPECT_FALSE(builder_.IsExecutablePrefix());
  FeedAll({Val(Value(95.0))});
  EXPECT_TRUE(builder_.IsExecutablePrefix());
}

TEST_F(AstBuilderTest, JoinChain) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kJoin),
           Tab(student()), Kw(Keyword::kSelect), Col(student(), 1), Eof()});
  ASSERT_EQ(builder_.ast().select->tables.size(), 2u);
  EXPECT_EQ(builder_.ast().select->NumJoins(), 1);
}

TEST_F(AstBuilderTest, AggregateItemsAndConnectors) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Kw(Keyword::kMax), Col(score(), 3), Kw(Keyword::kCount),
           Col(score(), 2), Kw(Keyword::kWhere), Col(score(), 3),
           Op(CompareOp::kGe), Val(Value(80.0)), Kw(Keyword::kAnd),
           Col(score(), 2), Op(CompareOp::kEq), Val(Value("db")), Eof()});
  const SelectQuery& q = *builder_.ast().select;
  ASSERT_EQ(q.items.size(), 2u);
  EXPECT_EQ(q.items[0].agg, AggFunc::kMax);
  EXPECT_EQ(q.items[1].agg, AggFunc::kCount);
  ASSERT_EQ(q.where.connectors.size(), 1u);
  EXPECT_EQ(q.where.connectors[0], BoolConn::kAnd);
}

TEST_F(AstBuilderTest, GroupByRequiresSelectedNonAggColumns) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 2), Kw(Keyword::kMax), Col(score(), 3),
           Kw(Keyword::kGroupBy)});
  // Only Course (the non-agg item) is pending for GROUP BY.
  ASSERT_EQ(builder_.frame().groupby_remaining.size(), 1u);
  EXPECT_EQ(builder_.frame().groupby_remaining[0].column_idx, 2);
  // A column that is not in the remaining set is rejected.
  EXPECT_FALSE(builder_.Feed(Col(score(), 0)).ok());
  FeedAll({Col(score(), 2)});
  EXPECT_TRUE(builder_.frame().groupby_remaining.empty());
  EXPECT_TRUE(builder_.IsExecutablePrefix());
  FeedAll({Eof()});
  ASSERT_TRUE(builder_.done());
  EXPECT_EQ(builder_.ast().select->group_by.size(), 1u);
}

TEST_F(AstBuilderTest, HavingClause) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 2), Kw(Keyword::kGroupBy), Col(score(), 2),
           Kw(Keyword::kHaving), Kw(Keyword::kAvg), Col(score(), 3),
           Op(CompareOp::kGt), Val(Value(75.0)), Eof()});
  const SelectQuery& q = *builder_.ast().select;
  ASSERT_TRUE(q.having.has_value());
  EXPECT_EQ(q.having->agg, AggFunc::kAvg);
  EXPECT_EQ(q.having->op, CompareOp::kGt);
}

TEST_F(AstBuilderTest, ScalarSubquery) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Kw(Keyword::kWhere), Col(score(), 3),
           Op(CompareOp::kGt), Kw(Keyword::kOpenParen)});
  EXPECT_EQ(builder_.depth(), 2);
  EXPECT_EQ(builder_.frame().purpose, FramePurpose::kScalarSub);
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Kw(Keyword::kAvg), Col(score(), 3), Kw(Keyword::kCloseParen)});
  EXPECT_EQ(builder_.depth(), 1);
  EXPECT_EQ(builder_.phase(), BuildPhase::kAfterPredicate);
  FeedAll({Eof()});
  const Predicate& p = builder_.ast().select->where.predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kScalarSub);
  ASSERT_NE(p.subquery, nullptr);
  EXPECT_EQ(p.subquery->items[0].agg, AggFunc::kAvg);
}

TEST_F(AstBuilderTest, InSubqueryWithInnerWhere) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Kw(Keyword::kWhere), Col(score(), 1),
           Kw(Keyword::kIn), Kw(Keyword::kOpenParen), Kw(Keyword::kFrom),
           Tab(student()), Kw(Keyword::kSelect), Col(student(), 0),
           Kw(Keyword::kWhere), Col(student(), 2), Op(CompareOp::kEq),
           Val(Value("F")), Kw(Keyword::kCloseParen), Eof()});
  const Predicate& p = builder_.ast().select->where.predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kInSub);
  EXPECT_EQ(p.subquery->where.predicates.size(), 1u);
  EXPECT_EQ(builder_.ast().select->NestingDepth(), 1);
}

TEST_F(AstBuilderTest, NotExistsSubquery) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Kw(Keyword::kWhere), Kw(Keyword::kNot),
           Kw(Keyword::kExists), Kw(Keyword::kOpenParen), Kw(Keyword::kFrom),
           Tab(student()), Kw(Keyword::kSelect), Col(student(), 0),
           Kw(Keyword::kCloseParen), Eof()});
  const Predicate& p = builder_.ast().select->where.predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kExistsSub);
  EXPECT_TRUE(p.negated);
}

TEST_F(AstBuilderTest, NestedSubqueryInsideSubquery) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Kw(Keyword::kWhere), Col(score(), 1),
           Kw(Keyword::kIn), Kw(Keyword::kOpenParen), Kw(Keyword::kFrom),
           Tab(student()), Kw(Keyword::kSelect), Col(student(), 0),
           Kw(Keyword::kWhere), Col(student(), 0), Op(CompareOp::kGt),
           Kw(Keyword::kOpenParen)});
  EXPECT_EQ(builder_.depth(), 3);
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Kw(Keyword::kMin), Col(score(), 1), Kw(Keyword::kCloseParen),
           Kw(Keyword::kCloseParen), Eof()});
  EXPECT_TRUE(builder_.done());
  EXPECT_EQ(builder_.ast().select->NestingDepth(), 2);
}

TEST_F(AstBuilderTest, InsertValuesFlow) {
  FeedAll({Kw(Keyword::kInsert), Tab(student()), Kw(Keyword::kValues),
           Val(Value(int64_t{77})), Val(Value("Zed"))});
  EXPECT_FALSE(builder_.IsExecutablePrefix());  // one column still missing
  FeedAll({Val(Value("M"))});
  EXPECT_TRUE(builder_.IsExecutablePrefix());
  FeedAll({Eof()});
  EXPECT_EQ(builder_.ast().type, QueryType::kInsert);
  EXPECT_EQ(builder_.ast().insert->values.size(), 3u);
}

TEST_F(AstBuilderTest, InsertSelectFlow) {
  FeedAll({Kw(Keyword::kInsert), Tab(student()), Kw(Keyword::kOpenParen)});
  EXPECT_EQ(builder_.frame().purpose, FramePurpose::kInsertSource);
  EXPECT_EQ(builder_.frame().pinned_table, student());
  FeedAll({Kw(Keyword::kFrom), Tab(student()), Kw(Keyword::kSelect),
           Col(student(), 0), Col(student(), 1), Col(student(), 2),
           Kw(Keyword::kWhere), Col(student(), 2), Op(CompareOp::kEq),
           Val(Value("F")), Kw(Keyword::kCloseParen), Eof()});
  ASSERT_NE(builder_.ast().insert->source, nullptr);
  EXPECT_EQ(builder_.ast().insert->source->items.size(), 3u);
}

TEST_F(AstBuilderTest, UpdateFlow) {
  FeedAll({Kw(Keyword::kUpdate), Tab(score()), Kw(Keyword::kSet),
           Col(score(), 3), Val(Value(99.5))});
  EXPECT_TRUE(builder_.IsExecutablePrefix());
  FeedAll({Kw(Keyword::kWhere), Col(score(), 2), Op(CompareOp::kEq),
           Val(Value("db")), Eof()});
  const UpdateQuery& u = *builder_.ast().update;
  EXPECT_EQ(u.set_column.column_idx, 3);
  EXPECT_EQ(u.where.predicates.size(), 1u);
}

TEST_F(AstBuilderTest, UpdateSetColumnMustBelongToTable) {
  FeedAll({Kw(Keyword::kUpdate), Tab(score()), Kw(Keyword::kSet)});
  EXPECT_FALSE(builder_.Feed(Col(student(), 1)).ok());
}

TEST_F(AstBuilderTest, DeleteFlow) {
  FeedAll({Kw(Keyword::kDelete), Tab(score())});
  EXPECT_TRUE(builder_.IsExecutablePrefix());
  FeedAll({Kw(Keyword::kWhere), Col(score(), 3), Op(CompareOp::kLe),
           Val(Value(65.0)), Eof()});
  EXPECT_EQ(builder_.ast().type, QueryType::kDelete);
  EXPECT_EQ(builder_.ast().del->where.predicates.size(), 1u);
}

TEST_F(AstBuilderTest, IllegalTokensRejected) {
  // SELECT cannot start a query (FROM-first generation order, §3.2).
  EXPECT_FALSE(builder_.Feed(Kw(Keyword::kSelect)).ok());
  EXPECT_FALSE(builder_.Feed(Val(Value(int64_t{1}))).ok());
  EXPECT_FALSE(builder_.Feed(Op(CompareOp::kEq)).ok());
  // FROM must be followed by a table, not a column.
  ASSERT_TRUE(builder_.Feed(Kw(Keyword::kFrom)).ok());
  EXPECT_FALSE(builder_.Feed(Col(score(), 0)).ok());
}

TEST_F(AstBuilderTest, EofIllegalMidQuery) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Kw(Keyword::kWhere)});
  EXPECT_FALSE(builder_.Feed(Eof()).ok());
}

TEST_F(AstBuilderTest, FeedAfterDoneRejected) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Eof()});
  EXPECT_EQ(builder_.Feed(Eof()).code(), StatusCode::kFailedPrecondition);
}

TEST_F(AstBuilderTest, TokensRecorded) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Eof()});
  EXPECT_EQ(builder_.tokens().size(), 5u);
  EXPECT_EQ(builder_.tokens()[0].keyword, Keyword::kFrom);
}

TEST_F(AstBuilderTest, TakeAstMovesResult) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Eof()});
  QueryAst ast = builder_.TakeAst();
  EXPECT_EQ(ast.type, QueryType::kSelect);
  ASSERT_NE(ast.select, nullptr);
}

TEST_F(AstBuilderTest, CloseParenAtTopLevelRejected) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0)});
  EXPECT_FALSE(builder_.Feed(Kw(Keyword::kCloseParen)).ok());
}

TEST_F(AstBuilderTest, SubqueryCannotBeDml) {
  FeedAll({Kw(Keyword::kFrom), Tab(score()), Kw(Keyword::kSelect),
           Col(score(), 0), Kw(Keyword::kWhere), Col(score(), 3),
           Op(CompareOp::kGt), Kw(Keyword::kOpenParen)});
  EXPECT_FALSE(builder_.Feed(Kw(Keyword::kInsert)).ok());
  EXPECT_FALSE(builder_.Feed(Kw(Keyword::kDelete)).ok());
}

}  // namespace
}  // namespace lsg
