// Tests for the network front end (src/net/): frame-FSM framing under
// split reads and oversized lines, token-bucket quota math on a manual
// clock, admission-controller caps, protocol parse/encode round-trips,
// and loopback end-to-end runs against both a scripted dispatcher
// (queue-full, inflight caps, timeouts, graceful drain under load) and
// the real generation service, on both poller backends.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/admission.h"
#include "net/frame_fsm.h"
#include "net/net_client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/token_bucket.h"
#include "service/generation_service.h"
#include "tests/test_db.h"

namespace lsg {
namespace net {
namespace {

// ----------------------------------------------------------------- FrameFsm

struct CapturedFrame {
  FrameEvent event;
  std::string payload;
};

std::vector<CapturedFrame> FeedAll(FrameFsm* fsm, std::string_view data,
                                   size_t chunk = 0) {
  std::vector<CapturedFrame> out;
  auto cb = [&out](FrameEvent e, std::string_view p) {
    out.push_back({e, std::string(p)});
  };
  if (chunk == 0) {
    fsm->Feed(data, cb);
    return out;
  }
  for (size_t off = 0; off < data.size(); off += chunk) {
    fsm->Feed(data.substr(off, chunk), cb);
  }
  return out;
}

TEST(FrameFsmTest, EmitsOneFramePerLine) {
  FrameFsm fsm;
  auto frames = FeedAll(&fsm, "alpha\nbeta\n");
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "alpha");
  EXPECT_EQ(frames[1].payload, "beta");
  EXPECT_EQ(fsm.state(), FrameFsm::kIdle);
}

TEST(FrameFsmTest, SplitReadsDownToOneByteProduceIdenticalFrames) {
  const std::string wire = "{\"op\": \"ping\"}\r\nsecond line\nthird\n";
  for (size_t chunk : std::vector<size_t>{1, 2, 3, 7, wire.size()}) {
    FrameFsm fsm;
    auto frames = FeedAll(&fsm, wire, chunk);
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].payload, "{\"op\": \"ping\"}");
    EXPECT_EQ(frames[1].payload, "second line");
    EXPECT_EQ(frames[2].payload, "third");
  }
}

TEST(FrameFsmTest, StripsCrOnlyDirectlyBeforeLf) {
  FrameFsm fsm;
  // A CR in the middle of a line is payload; a CR before LF is framing.
  auto frames = FeedAll(&fsm, "a\rb\r\n", 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "a\rb");
}

TEST(FrameFsmTest, DropsEmptyLines) {
  FrameFsm fsm;
  auto frames = FeedAll(&fsm, "\n\r\n\nreal\n\n");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "real");
}

TEST(FrameFsmTest, OversizedLineEmitsOnceAndResynchronizes) {
  FrameFsm fsm(/*max_frame_bytes=*/8);
  std::string wire(100, 'x');
  wire += "\nok\n";
  auto frames = FeedAll(&fsm, wire, 3);  // split reads through the overflow
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].event, FrameEvent::kOversized);
  EXPECT_EQ(frames[1].event, FrameEvent::kFrame);
  EXPECT_EQ(frames[1].payload, "ok");
  EXPECT_EQ(fsm.state(), FrameFsm::kIdle);
}

TEST(FrameFsmTest, TransitionTableIsTotalAndLfAlwaysResolvesToIdle) {
  const auto& table = FrameFsm::Table();
  for (int s = 0; s < FrameFsm::kNumStates; ++s) {
    for (int c = 0; c < FrameFsm::kNumClasses; ++c) {
      const FrameFsm::Transition& t = table[s][c];
      EXPECT_LT(t.next, FrameFsm::kNumStates);
      EXPECT_LE(t.action, FrameFsm::kEmitOversized);
    }
    // LF is the universal resynchronization point: from every state it
    // returns the machine to kIdle (this is what makes the protocol
    // self-healing after garbage).
    EXPECT_EQ(table[s][FrameFsm::kLf].next, FrameFsm::kIdle);
  }
  // Discard only ends on LF — CR and bytes keep discarding.
  EXPECT_EQ(table[FrameFsm::kDiscard][FrameFsm::kByte].next,
            FrameFsm::kDiscard);
  EXPECT_EQ(table[FrameFsm::kDiscard][FrameFsm::kCr].next, FrameFsm::kDiscard);
}

TEST(FrameFsmTest, ResetDropsPartialFrame) {
  FrameFsm fsm;
  FeedAll(&fsm, "partial");
  EXPECT_EQ(fsm.state(), FrameFsm::kAccum);
  EXPECT_GT(fsm.buffered_bytes(), 0u);
  fsm.Reset();
  EXPECT_EQ(fsm.state(), FrameFsm::kIdle);
  EXPECT_EQ(fsm.buffered_bytes(), 0u);
  auto frames = FeedAll(&fsm, "fresh\n");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "fresh");
}

// -------------------------------------------------------------- TokenBucket

constexpr uint64_t kSecond = 1000000000ull;

TEST(TokenBucketTest, BurstThenSteadyRefill) {
  TokenBucket bucket(/*rate=*/10.0, /*burst=*/5.0, /*now_ns=*/0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(0)) << i;
  }
  EXPECT_FALSE(bucket.TryAcquire(0));  // burst spent
  // 100ms at 10/s refills exactly one token.
  EXPECT_TRUE(bucket.TryAcquire(kSecond / 10));
  EXPECT_FALSE(bucket.TryAcquire(kSecond / 10));
  // 50ms refills half a token: still not enough for cost 1.
  EXPECT_FALSE(bucket.TryAcquire(kSecond / 10 + kSecond / 20));
  EXPECT_TRUE(bucket.TryAcquire(kSecond / 10 + 2 * kSecond / 20));
}

TEST(TokenBucketTest, RefillNeverExceedsBurst) {
  TokenBucket bucket(1.0, 3.0, 0);
  EXPECT_DOUBLE_EQ(bucket.Peek(100 * kSecond), 3.0);  // long idle: capped
  EXPECT_TRUE(bucket.TryAcquire(100 * kSecond, 3.0));
  EXPECT_FALSE(bucket.TryAcquire(100 * kSecond));
}

TEST(TokenBucketTest, NonPositiveRateDisablesLimiting) {
  TokenBucket bucket(0.0, 1.0, 0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(bucket.TryAcquire(0));
}

TEST(TokenBucketTest, FractionalCostsAccumulate) {
  TokenBucket bucket(1.0, 1.0, 0);
  EXPECT_TRUE(bucket.TryAcquire(0, 0.5));
  EXPECT_TRUE(bucket.TryAcquire(0, 0.5));
  EXPECT_FALSE(bucket.TryAcquire(0, 0.5));
}

// -------------------------------------------------------------- Admission

TEST(AdmissionTest, EnforcesPerTenantInflightCap) {
  AdmissionOptions opts;
  opts.tenant_rate = 0;  // unlimited quota: isolate the inflight cap
  opts.tenant_max_inflight = 2;
  opts.max_inflight = 100;
  AdmissionController adm(opts);
  EXPECT_EQ(adm.Admit("a", 0), NetError::kNone);
  EXPECT_EQ(adm.Admit("a", 0), NetError::kNone);
  EXPECT_EQ(adm.Admit("a", 0), NetError::kOverInflight);
  EXPECT_EQ(adm.Admit("b", 0), NetError::kNone);  // other tenants unaffected
  adm.Release("a");
  EXPECT_EQ(adm.Admit("a", 0), NetError::kNone);
  EXPECT_EQ(adm.inflight(), 3);
  EXPECT_EQ(adm.tenant_inflight("a"), 2);
}

TEST(AdmissionTest, EnforcesGlobalInflightCap) {
  AdmissionOptions opts;
  opts.tenant_rate = 0;
  opts.tenant_max_inflight = 100;
  opts.max_inflight = 2;
  AdmissionController adm(opts);
  EXPECT_EQ(adm.Admit("a", 0), NetError::kNone);
  EXPECT_EQ(adm.Admit("b", 0), NetError::kNone);
  EXPECT_EQ(adm.Admit("c", 0), NetError::kOverInflight);
  adm.Release("b");
  EXPECT_EQ(adm.Admit("c", 0), NetError::kNone);
}

TEST(AdmissionTest, QuotaExhaustionAndTimedRecovery) {
  AdmissionOptions opts;
  opts.tenant_rate = 1.0;
  opts.tenant_burst = 2.0;
  AdmissionController adm(opts);
  EXPECT_EQ(adm.Admit("a", 0), NetError::kNone);
  adm.Release("a");
  EXPECT_EQ(adm.Admit("a", 0), NetError::kNone);
  adm.Release("a");
  EXPECT_EQ(adm.Admit("a", 0), NetError::kOverQuota);  // bucket empty
  // One second at 1/s buys exactly one more admission.
  EXPECT_EQ(adm.Admit("a", kSecond), NetError::kNone);
  adm.Release("a");
  EXPECT_EQ(adm.Admit("a", kSecond), NetError::kOverQuota);
}

TEST(AdmissionTest, EvictsIdleTenantStateAtCap) {
  AdmissionOptions opts;
  opts.tenant_rate = 0;
  opts.max_tenants = 2;
  AdmissionController adm(opts);
  EXPECT_EQ(adm.Admit("a", 0), NetError::kNone);
  adm.Release("a");
  EXPECT_EQ(adm.Admit("b", 0), NetError::kNone);  // b stays in flight
  EXPECT_EQ(adm.Admit("c", 0), NetError::kNone);  // evicts idle a, not b
  EXPECT_LE(adm.tracked_tenants(), 2u);
  EXPECT_EQ(adm.tenant_inflight("b"), 1);
}

// --------------------------------------------------------------- Protocol

TEST(ProtocolTest, ParsesRangeRequest) {
  NetError kind = NetError::kNone;
  auto req = ParseRequestFrame(
      R"({"tenant": "alice", "id": 7, "count": 5, "batch": true,
          "constraint": {"metric": "card", "kind": "range",
                         "lo": 100, "hi": 900}})",
      &kind);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->tenant, "alice");
  EXPECT_FALSE(req->ping);
  EXPECT_EQ(req->request.id, 7u);
  EXPECT_EQ(req->request.n, 5);
  EXPECT_TRUE(req->request.batch);
  EXPECT_EQ(req->request.constraint.metric, ConstraintMetric::kCardinality);
  EXPECT_DOUBLE_EQ(req->request.constraint.lo, 100);
  EXPECT_DOUBLE_EQ(req->request.constraint.hi, 900);
}

TEST(ProtocolTest, ParsesPointAndPingDefaults) {
  NetError kind = NetError::kNone;
  auto point = ParseRequestFrame(
      R"({"constraint": {"metric": "cost", "kind": "point", "value": 50}})",
      &kind);
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->tenant, "default");
  EXPECT_EQ(point->request.n, 1);
  EXPECT_EQ(point->request.constraint.metric, ConstraintMetric::kCost);

  auto ping = ParseRequestFrame(R"({"op": "ping", "id": 3})", &kind);
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping->ping);
  EXPECT_EQ(ping->request.id, 3u);
}

TEST(ProtocolTest, DistinguishesBadFrameFromBadRequest) {
  NetError kind = NetError::kNone;
  EXPECT_FALSE(ParseRequestFrame("{\"count\": ", &kind).ok());
  EXPECT_EQ(kind, NetError::kBadFrame);  // not even JSON
  EXPECT_FALSE(ParseRequestFrame("[1, 2]", &kind).ok());
  EXPECT_EQ(kind, NetError::kBadFrame);  // JSON, wrong shape

  // Well-formed JSON, semantically invalid: kBadRequest.
  EXPECT_FALSE(ParseRequestFrame(R"({"count": 1})", &kind).ok());
  EXPECT_EQ(kind, NetError::kBadRequest);  // missing constraint
  EXPECT_FALSE(ParseRequestFrame(
                   R"({"count": 0, "constraint": {"metric": "card",
                       "kind": "point", "value": 1}})",
                   &kind)
                   .ok());
  EXPECT_EQ(kind, NetError::kBadRequest);  // count out of range
  EXPECT_FALSE(ParseRequestFrame(
                   R"({"tenant": "", "constraint": {"metric": "card",
                       "kind": "point", "value": 1}})",
                   &kind)
                   .ok());
  EXPECT_EQ(kind, NetError::kBadRequest);  // empty tenant
  EXPECT_FALSE(ParseRequestFrame(
                   R"({"constraint": {"metric": "card", "kind": "range",
                       "lo": 9, "hi": 1}})",
                   &kind)
                   .ok());
  EXPECT_EQ(kind, NetError::kBadRequest);  // inverted range
}

TEST(ProtocolTest, ResponseEncodingRoundTripsThroughParser) {
  GenerationResponse r;
  r.id = 42;
  r.cache_hit = true;
  r.worker = 3;
  r.report.satisfied = 2;
  r.report.attempts = 5;
  GeneratedQuery q;
  q.metric = 123.5;
  q.sql = "SELECT \"x\"\nFROM t";  // quotes + newline must escape
  r.report.queries.push_back(std::move(q));

  auto doc = obs::JsonParse(EncodeResponse(r, "ten\"ant", true));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(doc->NumberOr("id", -1), 42);
  EXPECT_DOUBLE_EQ(doc->NumberOr("ok", -1), 1.0);
  EXPECT_EQ(doc->StringOr("tenant", ""), "ten\"ant");
  const obs::JsonValue* queries = doc->Find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_EQ(queries->array.size(), 1u);
  EXPECT_EQ(queries->array[0].StringOr("sql", ""), "SELECT \"x\"\nFROM t");

  auto no_sql = obs::JsonParse(EncodeResponse(r, "t", false));
  ASSERT_TRUE(no_sql.ok());
  EXPECT_EQ(no_sql->Find("queries"), nullptr);

  auto err = obs::JsonParse(EncodeError(9, NetError::kQueueFull, "full"));
  ASSERT_TRUE(err.ok());
  EXPECT_DOUBLE_EQ(err->NumberOr("ok", -1), 0.0);
  EXPECT_EQ(err->StringOr("error", ""), "queue_full");

  auto pong = obs::JsonParse(EncodePong(4));
  ASSERT_TRUE(pong.ok());
  EXPECT_DOUBLE_EQ(pong->NumberOr("pong", -1), 1.0);
}

// ------------------------------------------------------- Loopback fixtures

// Wire-bound constraint payloads must be single-line: the framer treats
// every LF as a frame boundary, so a multi-line literal would be split
// into several (broken) frames.
constexpr char kPointConstraint[] =
    R"({"metric": "card", "kind": "point", "value": 5})";
constexpr char kRangeConstraint[] =
    R"({"metric": "card", "kind": "range", "lo": 1, "hi": 10})";
constexpr char kWideRangeConstraint[] =
    R"({"metric": "card", "kind": "range", "lo": 1, "hi": 1000000})";

// Scripted backend: holds every dispatched request's promise until the
// test releases it, or rejects with a scripted error. Dispatch runs on the
// loop thread, Fulfill* on the test thread, hence the mutex.
class ManualDispatcher : public RequestDispatcher {
 public:
  enum class Mode { kHold, kImmediate, kQueueFull };

  explicit ManualDispatcher(Mode mode) : mode_(mode) {}

  DispatchOutcome Dispatch(GenerationRequest request) override {
    MutexLock lock(&mu_);
    DispatchOutcome out;
    if (mode_ == Mode::kQueueFull) {
      out.error = NetError::kQueueFull;
      out.message = "scripted queue full";
      return out;
    }
    std::promise<GenerationResponse> promise;
    out.future = promise.get_future();
    GenerationResponse response;
    response.id = request.id;
    if (mode_ == Mode::kImmediate) {
      promise.set_value(std::move(response));
    } else {
      held_.push_back({std::move(promise), std::move(response)});
    }
    return out;
  }

  size_t held() {
    MutexLock lock(&mu_);
    return held_.size();
  }

  void FulfillAll() {
    std::vector<Held> batch;
    {
      MutexLock lock(&mu_);
      batch.swap(held_);
    }
    for (Held& h : batch) h.promise.set_value(std::move(h.response));
  }

 private:
  struct Held {
    std::promise<GenerationResponse> promise;
    GenerationResponse response;
  };
  Mutex mu_;
  Mode mode_;
  std::vector<Held> held_ LSG_GUARDED_BY(mu_);
};

NetServerOptions QuickOptions() {
  NetServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.admission.tenant_rate = 0;
  opts.drain_timeout_ms = 5000;
  return opts;
}

uint64_t NetCounter(NetServer* server, const char* name) {
  const auto& counters = server->registry().Snapshot().counters;
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// Received frames must be fully accounted for once the loop has exited:
// every one became a pong, an ok response, a structured error, or an
// explicit orphan. Call only after Join().
void ExpectExactAccounting(NetServer* server) {
  const auto& c = server->registry().Snapshot().counters;
  auto get = [&c](const char* name) {
    auto it = c.find(name);
    return it == c.end() ? uint64_t{0} : it->second;
  };
  uint64_t errors = 0;
  for (const char* name :
       {"net.req.bad_frame", "net.req.bad_request", "net.req.over_quota",
        "net.req.over_inflight", "net.req.queue_full", "net.req.draining",
        "net.req.timeout", "net.req.internal"}) {
    errors += get(name);
  }
  EXPECT_EQ(get("net.req.received"), get("net.req.pings") +
                                         get("net.req.ok") + errors +
                                         get("net.req.orphaned"));
}

StatusOr<obs::JsonValue> Roundtrip(BlockingClient* client,
                                   std::string_view line) {
  return client->Call(line);
}

// ------------------------------------------------- Loopback: both pollers

class PollerParamTest : public ::testing::TestWithParam<bool> {};

TEST_P(PollerParamTest, PingAndErrorPathsOverLoopback) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kImmediate);
  NetServerOptions opts = QuickOptions();
  opts.force_poll = GetParam();
  opts.max_frame_bytes = 256;
  auto server = NetServer::Create(&dispatcher, opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  if (GetParam()) {
    EXPECT_STREQ((*server)->poller_name(), "poll");
  }
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Ping answers in-loop.
  auto pong = Roundtrip(&*client, R"({"op": "ping", "id": 1})");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_DOUBLE_EQ(pong->NumberOr("pong", -1), 1.0);

  // Malformed JSON gets a structured error, and the connection survives.
  auto bad = Roundtrip(&*client, "{\"op\": ");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->StringOr("error", ""), "bad_frame");

  // Oversized line gets frame_too_large and the framer resynchronizes.
  auto big = Roundtrip(&*client, std::string(500, 'x'));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->StringOr("error", ""), "frame_too_large");

  // A scripted-immediate generation request round-trips.
  auto ok = Roundtrip(&*client,
                      BuildRequestLine("t", 9, kRangeConstraint, 1, false));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_DOUBLE_EQ(ok->NumberOr("ok", -1), 1.0);
  EXPECT_DOUBLE_EQ(ok->NumberOr("id", -1), 9.0);

  client->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  ExpectExactAccounting(server->get());
  EXPECT_EQ(NetCounter(server->get(), "net.req.ok"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Pollers, PollerParamTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Poll" : "Epoll";
                         });

// ------------------------------------------- Loopback: scripted dispatch

TEST(NetServerTest, QueueFullBecomesStructuredRetryableError) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kQueueFull);
  auto server = NetServer::Create(&dispatcher, QuickOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto doc = Roundtrip(&*client,
                       BuildRequestLine("t", 1, kPointConstraint, 1, false));
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->NumberOr("ok", -1), 0.0);
  EXPECT_EQ(doc->StringOr("error", ""), "queue_full");

  client->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  EXPECT_EQ(NetCounter(server->get(), "net.req.queue_full"), 1u);
  ExpectExactAccounting(server->get());
}

TEST(NetServerTest, PerTenantInflightCapRejectsConcurrentRequests) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kHold);
  NetServerOptions opts = QuickOptions();
  opts.admission.tenant_max_inflight = 1;
  auto server = NetServer::Create(&dispatcher, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  const std::string constraint =
      R"({"metric": "card", "kind": "point", "value": 5})";
  ASSERT_TRUE(client->SendLine(BuildRequestLine("t", 1, constraint, 1,
                                                false))
                  .ok());
  ASSERT_TRUE(client->SendLine(BuildRequestLine("t", 2, constraint, 1,
                                                false))
                  .ok());

  // First response is the immediate rejection of request 2; request 1 is
  // parked in the dispatcher.
  auto rejected = client->ReadLine();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  auto rej_doc = obs::JsonParse(*rejected);
  ASSERT_TRUE(rej_doc.ok());
  EXPECT_EQ(rej_doc->StringOr("error", ""), "over_inflight");
  EXPECT_DOUBLE_EQ(rej_doc->NumberOr("id", -1), 2.0);

  dispatcher.FulfillAll();
  auto ok = client->ReadLine();
  ASSERT_TRUE(ok.ok());
  auto ok_doc = obs::JsonParse(*ok);
  ASSERT_TRUE(ok_doc.ok());
  EXPECT_DOUBLE_EQ(ok_doc->NumberOr("ok", -1), 1.0);
  EXPECT_DOUBLE_EQ(ok_doc->NumberOr("id", -1), 1.0);

  client->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  EXPECT_EQ(NetCounter(server->get(), "net.req.over_inflight"), 1u);
  EXPECT_EQ(NetCounter(server->get(), "net.req.ok"), 1u);
  ExpectExactAccounting(server->get());
}

TEST(NetServerTest, QuotaExhaustionRejectsWithOverQuota) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kImmediate);
  NetServerOptions opts = QuickOptions();
  opts.admission.tenant_rate = 1e-6;  // effectively no refill in test time
  opts.admission.tenant_burst = 2;
  auto server = NetServer::Create(&dispatcher, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  const std::string constraint =
      R"({"metric": "card", "kind": "point", "value": 5})";
  int ok = 0, over_quota = 0;
  for (uint64_t id = 1; id <= 4; ++id) {
    auto doc =
        Roundtrip(&*client, BuildRequestLine("q", id, constraint, 1, false));
    ASSERT_TRUE(doc.ok());
    if (doc->NumberOr("ok", -1) == 1.0) {
      ++ok;
    } else {
      EXPECT_EQ(doc->StringOr("error", ""), "over_quota");
      ++over_quota;
    }
  }
  EXPECT_EQ(ok, 2);          // burst of 2
  EXPECT_EQ(over_quota, 2);  // then the bucket is dry

  client->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  ExpectExactAccounting(server->get());
}

TEST(NetServerTest, RequestTimeoutAnswersAndLateCompletionIsDropped) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kHold);
  NetServerOptions opts = QuickOptions();
  opts.request_timeout_ms = 100;
  auto server = NetServer::Create(&dispatcher, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto doc = Roundtrip(&*client,
                       BuildRequestLine("t", 1, kPointConstraint, 1, false));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->StringOr("error", ""), "timeout");

  // The backend finishes after the deadline: bookkeeping only, no second
  // response on the wire.
  dispatcher.FulfillAll();
  client->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  EXPECT_EQ(NetCounter(server->get(), "net.req.timeout"), 1u);
  EXPECT_EQ(NetCounter(server->get(), "net.req.late"), 1u);
  ExpectExactAccounting(server->get());
}

TEST(NetServerTest, GracefulDrainFinishesInFlightAndRejectsNewFrames) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kHold);
  auto server = NetServer::Create(&dispatcher, QuickOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  int port = (*server)->port();

  const std::string constraint =
      R"({"metric": "card", "kind": "point", "value": 5})";
  auto client = BlockingClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->SendLine(BuildRequestLine("t", 1, constraint, 1, false)).ok());
  // Wait until the request is actually in flight before draining.
  while (dispatcher.held() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  (*server)->BeginDrain();
  // Drain has taken effect once the listen socket is gone.
  for (int i = 0; i < 500; ++i) {
    auto probe = BlockingClient::Connect("127.0.0.1", port, 500);
    if (!probe.ok()) break;
    // Accepted by a lingering backlog or not yet closed: retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // New frames on the existing connection are refused with `draining`.
  ASSERT_TRUE(
      client->SendLine(BuildRequestLine("t", 2, constraint, 1, false)).ok());
  auto draining = client->ReadLine();
  ASSERT_TRUE(draining.ok()) << draining.status().ToString();
  auto drain_doc = obs::JsonParse(*draining);
  ASSERT_TRUE(drain_doc.ok());
  EXPECT_EQ(drain_doc->StringOr("error", ""), "draining");
  EXPECT_DOUBLE_EQ(drain_doc->NumberOr("id", -1), 2.0);

  // The in-flight request still completes and is delivered.
  dispatcher.FulfillAll();
  auto ok = client->ReadLine();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  auto ok_doc = obs::JsonParse(*ok);
  ASSERT_TRUE(ok_doc.ok());
  EXPECT_DOUBLE_EQ(ok_doc->NumberOr("ok", -1), 1.0);
  EXPECT_DOUBLE_EQ(ok_doc->NumberOr("id", -1), 1.0);

  ASSERT_TRUE((*server)->Join().ok());
  EXPECT_EQ(NetCounter(server->get(), "net.req.received"), 2u);
  EXPECT_EQ(NetCounter(server->get(), "net.req.ok"), 1u);
  EXPECT_EQ(NetCounter(server->get(), "net.req.draining"), 1u);
  EXPECT_EQ(NetCounter(server->get(), "net.req.orphaned"), 0u);
  ExpectExactAccounting(server->get());
}

TEST(NetServerTest, ForcedDrainDeadlineOrphansWithExactAccounting) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kHold);
  NetServerOptions opts = QuickOptions();
  opts.drain_timeout_ms = 150;
  auto server = NetServer::Create(&dispatcher, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->SendLine(BuildRequestLine("t", 1, kPointConstraint, 1, false))
          .ok());
  while (dispatcher.held() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  (*server)->BeginDrain();
  // Let the drain deadline expire with the request still held, then
  // unblock the completion waiter so teardown can join it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  dispatcher.FulfillAll();
  ASSERT_TRUE((*server)->Join().ok());

  EXPECT_EQ(NetCounter(server->get(), "net.req.received"), 1u);
  EXPECT_EQ(NetCounter(server->get(), "net.req.orphaned"), 1u);
  EXPECT_EQ(NetCounter(server->get(), "net.req.ok"), 0u);
  ExpectExactAccounting(server->get());
}

TEST(NetServerTest, ConnectionCapRefusesExcessClients) {
  ManualDispatcher dispatcher(ManualDispatcher::Mode::kImmediate);
  NetServerOptions opts = QuickOptions();
  opts.max_connections = 1;
  auto server = NetServer::Create(&dispatcher, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto first = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(first.ok());
  auto pong = Roundtrip(&*first, R"({"op": "ping", "id": 1})");
  ASSERT_TRUE(pong.ok());

  // The second TCP connect succeeds (kernel backlog) but the server closes
  // it at accept; the client observes EOF rather than a response.
  auto second = BlockingClient::Connect("127.0.0.1", (*server)->port(), 2000);
  ASSERT_TRUE(second.ok());
  (void)second->SendLine(R"({"op": "ping", "id": 2})");
  EXPECT_FALSE(second->ReadLine().ok());

  first->Close();
  second->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  EXPECT_GE(NetCounter(server->get(), "net.conn.refused"), 1u);
  ExpectExactAccounting(server->get());
}

// ------------------------------------------------ Loopback: real service

TEST(NetServiceE2eTest, GeneratesOverLoopbackWithRealService) {
  Database db = BuildScoreStudentDb();
  GenerationServiceOptions svc_opts;
  svc_opts.num_workers = 2;
  svc_opts.queue_capacity = 16;
  svc_opts.gen.train_epochs = 8;
  svc_opts.gen.trainer.batch_size = 4;
  svc_opts.gen.attempts_factor = 40;
  svc_opts.gen.seed = 2024;
  auto service = GenerationService::Create(&db, svc_opts);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  ServiceDispatcher dispatcher(service->get());
  auto server = NetServer::Create(&dispatcher, QuickOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port(),
                                        120000);
  ASSERT_TRUE(client.ok());
  auto doc = Roundtrip(
      &*client, BuildRequestLine("e2e", 11, kWideRangeConstraint, 2, true));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(doc->NumberOr("ok", -1), 1.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("id", -1), 11.0);
  EXPECT_EQ(doc->StringOr("tenant", ""), "e2e");
  EXPECT_GE(doc->NumberOr("attempts", -1), 2.0);
  ASSERT_NE(doc->Find("queries"), nullptr);

  // Same bucket again: served from the model cache.
  auto again = Roundtrip(
      &*client, BuildRequestLine("e2e", 12, kWideRangeConstraint, 1, true));
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->NumberOr("ok", -1), 1.0);
  EXPECT_DOUBLE_EQ(again->NumberOr("cache_hit", -1), 1.0);

  client->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  ExpectExactAccounting(server->get());
  EXPECT_EQ(NetCounter(server->get(), "net.req.ok"), 2u);

  // Shut the service down only after the server (completion waiters must
  // be able to observe every future first).
  (*service)->Shutdown();
  EXPECT_EQ((*service)->Metrics().requests_completed, 2u);
}

// Drain-under-load audit: requests accepted by the service *before* the
// server begins draining, but only coalesced into a worker's batch *after*
// drain started, must still be completed and answered — never orphaned.
// One worker stuck training the bucket's first model guarantees the rest
// of the burst is still queued when BeginDrain lands; with max_batch > 1
// the backlog is then handled as one post-drain group.
TEST(NetServiceE2eTest, DrainUnderLoadCompletesBatchedBacklog) {
  Database db = BuildScoreStudentDb();
  GenerationServiceOptions svc_opts;
  svc_opts.num_workers = 1;
  svc_opts.max_batch = 8;
  svc_opts.queue_capacity = 16;
  svc_opts.gen.train_epochs = 8;
  svc_opts.gen.trainer.batch_size = 4;
  svc_opts.gen.attempts_factor = 40;
  auto service = GenerationService::Create(&db, svc_opts);
  ASSERT_TRUE(service.ok());

  ServiceDispatcher dispatcher(service->get());
  NetServerOptions opts = QuickOptions();
  opts.drain_timeout_ms = 120000;  // completion, not deadline, ends drain
  auto server = NetServer::Create(&dispatcher, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client =
      BlockingClient::Connect("127.0.0.1", (*server)->port(), 120000);
  ASSERT_TRUE(client.ok());
  constexpr uint64_t kRequests = 5;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(
        client
            ->SendLine(BuildRequestLine("t", id, kRangeConstraint, 1, true))
            .ok());
  }
  // Wait until the service has *accepted* the whole burst, then drain
  // while the single worker is still training request 1's model.
  while ((*service)->Metrics().requests_submitted < kRequests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*server)->BeginDrain();

  std::set<uint64_t> answered;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto line = client->ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    auto doc = obs::JsonParse(*line);
    ASSERT_TRUE(doc.ok());
    EXPECT_DOUBLE_EQ(doc->NumberOr("ok", -1), 1.0);
    answered.insert(static_cast<uint64_t>(doc->NumberOr("id", 0)));
  }
  EXPECT_EQ(answered.size(), kRequests);  // every accepted id came back

  client->Close();
  ASSERT_TRUE((*server)->Join().ok());
  EXPECT_EQ(NetCounter(server->get(), "net.req.ok"), kRequests);
  EXPECT_EQ(NetCounter(server->get(), "net.req.orphaned"), 0u);
  ExpectExactAccounting(server->get());

  (*service)->Shutdown();
  EXPECT_EQ((*service)->Metrics().requests_completed, kRequests);
}

TEST(NetServiceE2eTest, ServiceShutdownUnderServerMapsToDraining) {
  Database db = BuildScoreStudentDb();
  GenerationServiceOptions svc_opts;
  svc_opts.num_workers = 1;
  svc_opts.gen.train_epochs = 8;
  svc_opts.gen.trainer.batch_size = 4;
  svc_opts.gen.attempts_factor = 40;
  auto service = GenerationService::Create(&db, svc_opts);
  ASSERT_TRUE(service.ok());
  (*service)->Shutdown();  // dispatches now fail with FailedPrecondition

  ServiceDispatcher dispatcher(service->get());
  auto server = NetServer::Create(&dispatcher, QuickOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = BlockingClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto doc = Roundtrip(&*client,
                       BuildRequestLine("t", 1, kPointConstraint, 1, false));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->StringOr("error", ""), "draining");

  client->Close();
  (*server)->BeginDrain();
  ASSERT_TRUE((*server)->Join().ok());
  ExpectExactAccounting(server->get());
}

}  // namespace
}  // namespace net
}  // namespace lsg
