// The fuzzing subsystem's own test suite: trace serialization, recorded
// walks and replay, delta-debug shrinking, the oracle stack (including the
// render→parse→render fixpoint and DML apply/rollback properties), and a
// smoke of the service fuzzer. The harness is also mutation-tested here: a
// fuzz run with an injected executor bug must catch it, shrink it, and
// reproduce it from the trace alone.
#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "core/workload.h"
#include "exec/executor.h"
#include "fsm/compiled_fsm.h"
#include "fsm/generation_fsm.h"
#include "fuzz/fuzzer.h"
#include "fuzz/oracle.h"
#include "fuzz/reference_eval.h"
#include "fuzz/service_fuzz.h"
#include "fuzz/shrinker.h"
#include "fuzz/test_databases.h"
#include "fuzz/trace.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace lsg {
namespace {

// ------------------------------------------------------------ databases

TEST(TestDatabasesTest, BuildNamedDatabaseKnowsEveryBundledDataset) {
  for (const std::string& name : FuzzDatasetNames()) {
    auto db = BuildNamedDatabase(name, 0.05);
    ASSERT_TRUE(db.ok()) << name;
    EXPECT_GT(db->tables().size(), 0u) << name;
  }
  // Benchmark aliases used by the bench suite resolve too.
  EXPECT_TRUE(BuildNamedDatabase("TPC-H", 0.05).ok());
  EXPECT_TRUE(BuildNamedDatabase("JOB", 0.05).ok());
  EXPECT_TRUE(BuildNamedDatabase("XueTang", 0.05).ok());
  EXPECT_FALSE(BuildNamedDatabase("nope").ok());
}

// ---------------------------------------------------------------- trace

TEST(TraceTest, SerializationRoundTrips) {
  EpisodeTrace t;
  t.dataset = "tpch";
  t.profile = 3;
  t.scale = 0.25;
  t.values_per_column = 12;
  t.seed = 0xDEADBEEFCAFEull;
  t.episode = 42;
  t.oracle = "exec-vs-ref";
  t.detail = "executor=3 reference=2\nwith a newline";
  t.sql = "SELECT 1";
  t.actions = {5, 0, 17, 3};

  auto parsed = ParseTrace(TraceToString(t));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->dataset, t.dataset);
  EXPECT_EQ(parsed->profile, t.profile);
  EXPECT_DOUBLE_EQ(parsed->scale, t.scale);
  EXPECT_EQ(parsed->values_per_column, t.values_per_column);
  EXPECT_EQ(parsed->seed, t.seed);
  EXPECT_EQ(parsed->episode, t.episode);
  EXPECT_EQ(parsed->oracle, t.oracle);
  // Free-text fields are flattened to one line on write.
  EXPECT_EQ(parsed->detail, "executor=3 reference=2 with a newline");
  EXPECT_EQ(parsed->sql, t.sql);
  EXPECT_EQ(parsed->actions, t.actions);
}

TEST(TraceTest, ParseRejectsGarbageButSkipsUnknownKeys) {
  EXPECT_FALSE(ParseTrace("not a trace").ok());
  auto t = ParseTrace(
      "lsgfuzz-trace v1\ndataset score\nfuture_key whatever\n"
      "actions 1 2 3\nend\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->dataset, "score");
  EXPECT_EQ(t->actions, (std::vector<int>{1, 2, 3}));
}

// ------------------------------------------------------ record & replay

TEST(TraceTest, RecordedWalkMatchesRandomWalkAndReplaysExactly) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  const QueryProfile profile = QueryProfile::Full();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    // Same Rng stream => recorded walk generates the same query as the
    // production RandomWalkQuery.
    Rng rng_a(seed), rng_b(seed);
    GenerationFsm fsm_a(&db, &*vocab, profile);
    GenerationFsm fsm_b(&db, &*vocab, profile);
    auto plain = RandomWalkQuery(&fsm_a, &rng_a);
    std::vector<int> actions;
    auto recorded = RecordedRandomWalk(&fsm_b, &rng_b, &actions);
    ASSERT_TRUE(plain.ok() && recorded.ok());
    EXPECT_EQ(RenderSql(*plain, db.catalog()),
              RenderSql(*recorded, db.catalog()));
    EXPECT_FALSE(actions.empty());

    // Replaying the recorded actions reproduces the query byte-for-byte,
    // with no repair needed.
    GenerationFsm fsm_c(&db, &*vocab, profile);
    bool exact = false;
    auto replayed = ReplayActions(&fsm_c, actions, &exact);
    ASSERT_TRUE(replayed.ok());
    EXPECT_TRUE(exact);
    EXPECT_EQ(RenderSql(*recorded, db.catalog()),
              RenderSql(*replayed, db.catalog()));
  }
}

TEST(TraceTest, ReplayRepairsArbitraryActionSubsequences) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  // Garbage action ids must still produce a legal query via repair: the
  // shrinker depends on every subsequence being replayable.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    std::vector<int> garbage;
    for (int i = 0; i < 20; ++i) {
      garbage.push_back(static_cast<int>(rng.Uniform(1000)));
    }
    GenerationFsm fsm(&db, &*vocab, QueryProfile::Full());
    auto ast = ReplayActions(&fsm, garbage, nullptr);
    ASSERT_TRUE(ast.ok()) << ast.status().ToString();
    Executor exec(&db);
    EXPECT_TRUE(exec.Cardinality(*ast).ok())
        << RenderSql(*ast, db.catalog());
  }
}

// ------------------------------------------------------------- shrinker

TEST(ShrinkerTest, MinimizesToThePredicateCore) {
  // Failing iff the trace contains both 7 and 13: ddmin must strip all
  // filler and keep exactly those two.
  std::vector<int> trace = {1, 2, 7, 3, 4, 5, 13, 6, 8, 9, 10, 11, 12};
  auto fails = [](const std::vector<int>& t) {
    bool has7 = false, has13 = false;
    for (int v : t) {
      if (v == 7) has7 = true;
      if (v == 13) has13 = true;
    }
    return has7 && has13;
  };
  ShrinkResult r = ShrinkTrace(trace, fails);
  EXPECT_EQ(r.actions, (std::vector<int>{7, 13}));
  EXPECT_EQ(r.removed, 11);
  EXPECT_GT(r.probes, 0);
}

TEST(ShrinkerTest, AlreadyMinimalTraceIsUntouched) {
  std::vector<int> trace = {42};
  ShrinkResult r = ShrinkTrace(trace, [](const std::vector<int>& t) {
    return !t.empty();
  });
  EXPECT_EQ(r.actions, trace);
  EXPECT_EQ(r.removed, 0);
}

// ------------------------------------------------- oracle: clean engine

TEST(OracleTest, CleanEngineSurvivesRandomEpisodes) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  DifferentialOracle oracle(&db);
  GenerationFsm fsm(&db, &*vocab, QueryProfile::Full());
  Rng rng(2024);
  for (int i = 0; i < 100; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    auto v = oracle.Check(*ast);
    EXPECT_FALSE(v.has_value())
        << "[" << v->oracle << "] " << v->detail;
  }
}

// Clean random episodes stay violation-free whichever FSM implementation
// drives them: param 0 walks the interpreted FSM under the Full profile,
// params 1 (SPJ) and 2 (DML) walk with a compiled table attached and
// additionally run the compiled-vs-interpreted lockstep oracle over every
// recorded action sequence.
class FsmImplEpisodes : public ::testing::TestWithParam<int> {};

TEST_P(FsmImplEpisodes, CleanEpisodesSurviveEveryOracle) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  QueryProfile profile = QueryProfile::Full();
  std::optional<CompiledFsmTable> table;
  if (GetParam() == 1) {
    profile = QueryProfile::SpjOnly();
  } else if (GetParam() == 2) {
    profile = QueryProfile();
    profile.allow_select = false;
    profile.allow_insert = true;
    profile.allow_update = true;
    profile.allow_delete = true;
  }
  if (GetParam() != 0) {
    auto compiled = CompileFsm(db, *vocab, profile, CompileFsmOptions());
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    table.emplace(std::move(*compiled));
  }

  DifferentialOracle oracle(&db);
  GenerationFsm fsm(&db, &*vocab, profile);
  if (table.has_value()) fsm.AttachCompiledTable(&*table);
  Rng rng(2025 + GetParam());
  for (int i = 0; i < 40; ++i) {
    fsm.Reset();
    std::vector<int> actions;
    auto ast = RecordedRandomWalk(&fsm, &rng, &actions);
    ASSERT_TRUE(ast.ok());
    auto v = oracle.Check(*ast);
    EXPECT_FALSE(v.has_value()) << "[" << v->oracle << "] " << v->detail;
    if (table.has_value()) {
      auto cv = oracle.CheckCompiledFsm(&*vocab, profile, &*table, actions);
      EXPECT_FALSE(cv.has_value())
          << "[" << cv->oracle << "] " << cv->detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FsmImpls, FsmImplEpisodes, ::testing::Range(0, 3));

// Render → Parse → Render must be a byte-for-byte fixpoint for every
// generated statement class (the property behind the roundtrip oracle).
TEST(OracleTest, RenderParseRenderIsAFixpoint) {
  for (const std::string& name : FuzzDatasetNames()) {
    auto db = BuildNamedDatabase(name, 0.05);
    ASSERT_TRUE(db.ok());
    auto vocab = Vocabulary::Build(*db, VocabularyOptions());
    ASSERT_TRUE(vocab.ok());
    GenerationFsm fsm(&*db, &*vocab, QueryProfile::Full());
    Rng rng(77);
    for (int i = 0; i < 100; ++i) {
      auto ast = RandomWalkQuery(&fsm, &rng);
      ASSERT_TRUE(ast.ok());
      const std::string once = RenderSql(*ast, db->catalog());
      auto reparsed = ParseSql(once, db->catalog());
      ASSERT_TRUE(reparsed.ok()) << once << "\n"
                                 << reparsed.status().ToString();
      EXPECT_EQ(once, RenderSql(*reparsed, db->catalog()));
    }
  }
}

// DML episodes: the oracle applies INSERT/UPDATE/DELETE for real, then
// rolls back — the database must come back byte-identical every time.
TEST(OracleTest, DmlApplyAlwaysRollsBack) {
  Database db = BuildScoreStudentDb();
  auto vocab = Vocabulary::Build(db, VocabularyOptions());
  ASSERT_TRUE(vocab.ok());
  QueryProfile dml;
  dml.allow_select = false;
  dml.allow_insert = true;
  dml.allow_update = true;
  dml.allow_delete = true;

  // Fingerprint the whole database before fuzzing over it.
  auto fingerprint = [&db] {
    std::string fp;
    for (const Table& t : db.tables()) {
      for (size_t r = 0; r < t.num_rows(); ++r) {
        for (size_t c = 0; c < t.schema().num_columns(); ++c) {
          fp += t.GetValue(r, c).ToSqlLiteral();
          fp += '|';
        }
        fp += '\n';
      }
    }
    return fp;
  };
  const std::string before = fingerprint();

  DifferentialOracle oracle(&db);
  GenerationFsm fsm(&db, &*vocab, dml);
  Rng rng(31337);
  int dml_seen = 0;
  for (int i = 0; i < 150; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    if (ast->type != QueryType::kSelect) ++dml_seen;
    auto v = oracle.Check(*ast);
    EXPECT_FALSE(v.has_value())
        << "[" << v->oracle << "] " << v->detail << "\n"
        << RenderSql(*ast, db.catalog());
    ASSERT_EQ(fingerprint(), before)
        << "episode " << i << " leaked DML state: "
        << RenderSql(*ast, db.catalog());
  }
  EXPECT_GT(dml_seen, 100);  // the profile really is exercising DML
}

// ----------------------------------------- end-to-end: injected bug hunt

TEST(FuzzerTest, InjectedExecutorBugIsCaughtShrunkAndReplayable) {
  FuzzOptions opts;
  opts.datasets = {"score"};
  opts.episodes = 60;
  opts.seed = 7;
  opts.max_failures = 3;
  opts.oracle.inject_card_offset = 1;

  auto stats = RunFuzz(opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(stats->failures.empty())
      << "harness failed to catch an injected off-by-one executor bug";
  for (const EpisodeTrace& f : stats->failures) {
    EXPECT_EQ(f.oracle, "exec-vs-ref");
    // Shrinking happened and terminated at a 1-minimal trace.
    EXPECT_GT(stats->shrink_probes, 0);

    // The trace alone (header + actions) reproduces the same violation
    // after a serialization round trip, as `lsgfuzz --replay` would.
    auto reparsed = ParseTrace(TraceToString(f));
    ASSERT_TRUE(reparsed.ok());
    auto rerun = ReplayTraceEpisode(*reparsed, opts.oracle);
    ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
    EXPECT_EQ(rerun->oracle, "exec-vs-ref");
    EXPECT_EQ(rerun->sql, f.sql);

    // Without the injected bug the same trace is clean — the failure is
    // the injection's, not the engine's.
    auto clean = ReplayTraceEpisode(*reparsed, OracleOptions());
    ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(clean->oracle.empty()) << clean->detail;
  }
}

TEST(FuzzerTest, InjectedRendererBugTripsTheFixpointOracle) {
  FuzzOptions opts;
  opts.datasets = {"score"};
  opts.episodes = 20;
  opts.seed = 7;
  opts.max_failures = 1;
  opts.shrink = false;
  opts.oracle.inject_render_space = true;

  auto stats = RunFuzz(opts);
  ASSERT_TRUE(stats.ok());
  ASSERT_FALSE(stats->failures.empty());
  EXPECT_EQ(stats->failures[0].oracle, "render-fixpoint");
}

TEST(FuzzerTest, InjectedFsmTableCorruptionIsCaught) {
  // Both table mutations (a flipped mask byte, a swapped transition pair)
  // must be detected by the compiled-vs-interpreted lockstep oracle — the
  // differential harness proving the soundness test actually has teeth.
  for (const std::string bug : {"mask-bit", "transition-swap"}) {
    FuzzOptions opts;
    opts.datasets = {"score"};
    opts.episodes = 40;
    opts.seed = 7;
    opts.max_failures = 2;
    opts.shrink = false;
    opts.inject_fsm_bug = bug;

    auto stats = RunFuzz(opts);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GT(stats->compiled_tables, 0) << bug;
    ASSERT_FALSE(stats->failures.empty())
        << "harness failed to catch injected FSM-table bug: " << bug;
    for (const EpisodeTrace& f : stats->failures) {
      EXPECT_EQ(f.oracle, "compiled-fsm") << bug << ": " << f.detail;
    }
  }
  // Unknown injection names are rejected, not silently ignored.
  FuzzOptions bad;
  bad.inject_fsm_bug = "typo";
  EXPECT_FALSE(RunFuzz(bad).ok());
}

TEST(FuzzerTest, CleanRunOverEveryDatasetFindsNothing) {
  FuzzOptions opts;
  opts.episodes = 25;  // 25 x 4 datasets; keep the suite fast
  opts.seed = 11;
  auto stats = RunFuzz(opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->episodes, 100u);
  // SPJ compiles on every bundled dataset and DML on score, so the clean
  // sweep also exercises the compiled-vs-interpreted oracle for real.
  EXPECT_GE(stats->compiled_tables, 4);
  for (const EpisodeTrace& f : stats->failures) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.detail << "\n" << f.sql;
  }
}

// -------------------------------------------------------- service fuzz

TEST(ServiceFuzzTest, SmokeRoundsRunClean) {
  ServiceFuzzOptions opts;
  opts.rounds = 2;
  opts.requests_per_round = 6;
  opts.seed = 5;
  Status st = FuzzGenerationService(opts);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace lsg
