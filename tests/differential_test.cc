// Differential testing of the executor: the naive reference evaluator
// (row-at-a-time nested loops, no hashing — see fuzz/reference_eval.h, where
// it lives so the fuzzer and tests share one copy) must produce the same
// cardinality as the optimized executor for every FSM-generated query.
#include <gtest/gtest.h>

#include "core/workload.h"
#include "exec/executor.h"
#include "fsm/generation_fsm.h"
#include "fuzz/reference_eval.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, ExecutorMatchesReference) {
  Database db = BuildScoreStudentDb();
  VocabularyOptions vo;
  vo.values_per_column = 8;
  auto vocab = Vocabulary::Build(db, vo);
  ASSERT_TRUE(vocab.ok());
  QueryProfile profile;
  switch (GetParam()) {
    case 0:
      break;
    case 1:
      profile = QueryProfile::Full();
      break;
    case 2:
      profile.max_nesting_depth = 2;
      break;
    default:
      profile.max_predicates = 6;
      profile.max_select_items = 4;
      break;
  }
  GenerationFsm fsm(&db, &*vocab, profile);
  Executor exec(&db);
  ReferenceEvaluator ref(&db);
  Rng rng(9000 + GetParam());
  for (int i = 0; i < 200; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    auto fast = exec.Cardinality(*ast);
    ASSERT_TRUE(fast.ok()) << RenderSql(*ast, db.catalog());
    auto slow = ref.EvalAst(*ast);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString() << " "
                           << RenderSql(*ast, db.catalog());
    EXPECT_EQ(*fast, *slow) << RenderSql(*ast, db.catalog());
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, DifferentialTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace lsg
