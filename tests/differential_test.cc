// Differential testing of the executor: an independent, naive reference
// evaluator (row-at-a-time nested loops, no hashing) must produce the same
// cardinality as the optimized executor for every FSM-generated query.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "core/workload.h"
#include "exec/executor.h"
#include "exec/expression.h"
#include "fsm/generation_fsm.h"
#include "sql/render.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

/// Naive reference evaluator. Deliberately mirrors the engine's documented
/// semantics (FK-edge join selection, NULL never matches, uncorrelated
/// subqueries, COUNT skips NULLs) with the simplest possible code.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(const Database* db) : db_(db) {}

  struct Result {
    uint64_t cardinality = 0;
    std::vector<Value> first_column;
  };

  Result EvalSelect(const SelectQuery& q) const {
    // 1. Materialize the joined rows by nested loops.
    std::vector<std::vector<uint32_t>> tuples;  // row per table in chain
    for (size_t r = 0; r < db_->tables()[q.tables[0]].num_rows(); ++r) {
      tuples.push_back({static_cast<uint32_t>(r)});
    }
    for (size_t i = 1; i < q.tables.size(); ++i) {
      auto edge = FindEdge(q.tables, i);
      std::vector<std::vector<uint32_t>> next;
      const Table& nt = db_->tables()[q.tables[i]];
      for (const auto& tup : tuples) {
        for (size_t r = 0; r < nt.num_rows(); ++r) {
          Value a = db_->tables()[q.tables[edge.probe_chain_pos]].GetValue(
              tup[edge.probe_chain_pos], edge.probe_col);
          Value b = nt.GetValue(r, edge.build_col);
          if (!a.is_null() && !b.is_null() && a.Compare(b) == 0) {
            auto extended = tup;
            extended.push_back(static_cast<uint32_t>(r));
            next.push_back(std::move(extended));
          }
        }
      }
      tuples = std::move(next);
    }

    // 2. WHERE.
    std::vector<std::vector<uint32_t>> kept;
    for (const auto& tup : tuples) {
      if (EvalWhere(q, q.where, tup)) kept.push_back(tup);
    }

    // 3. Aggregation.
    Result out;
    if (q.group_by.empty()) {
      if (q.HasAggregate()) {
        out.cardinality = 1;
        out.first_column.push_back(
            Aggregate(q, q.items[0], kept));
      } else {
        out.cardinality = kept.size();
        for (const auto& tup : kept) {
          out.first_column.push_back(TupleValue(q, tup, q.items[0].column));
        }
      }
      return out;
    }
    std::map<std::string, std::vector<std::vector<uint32_t>>> groups;
    for (const auto& tup : kept) {
      std::string key;
      for (const ColumnRef& c : q.group_by) {
        key += TupleValue(q, tup, c).ToSqlLiteral();
        key += '\x1f';
      }
      groups[key].push_back(tup);
    }
    for (const auto& [key, rows] : groups) {
      (void)key;
      if (q.having.has_value()) {
        std::vector<Value> col;
        for (const auto& tup : rows) {
          col.push_back(TupleValue(q, tup, q.having->column));
        }
        Value agg = AggValues(q.having->agg, col);
        if (!CompareValues(agg, q.having->op, q.having->value)) continue;
      }
      ++out.cardinality;
      const SelectItem& item = q.items[0];
      if (item.agg == AggFunc::kNone) {
        out.first_column.push_back(TupleValue(q, rows[0], item.column));
      } else {
        std::vector<Value> col;
        for (const auto& tup : rows) {
          col.push_back(TupleValue(q, tup, item.column));
        }
        out.first_column.push_back(AggValues(item.agg, col));
      }
    }
    return out;
  }

  uint64_t EvalAst(const QueryAst& ast) const {
    switch (ast.type) {
      case QueryType::kSelect:
        return EvalSelect(*ast.select).cardinality;
      case QueryType::kInsert:
        if (ast.insert->source != nullptr) {
          return EvalSelect(*ast.insert->source).cardinality;
        }
        return 1;
      case QueryType::kUpdate:
        return CountMatching(ast.update->table_idx, ast.update->where);
      case QueryType::kDelete:
        return CountMatching(ast.del->table_idx, ast.del->where);
    }
    return 0;
  }

 private:
  struct Edge {
    size_t probe_chain_pos = 0;
    int probe_col = -1;
    int build_col = -1;
  };

  Edge FindEdge(const std::vector<int>& tables, size_t i) const {
    const Catalog& cat = db_->catalog();
    for (size_t j = 0; j < i; ++j) {
      auto edges = cat.JoinEdges(cat.table(tables[j]).name(),
                                 cat.table(tables[i]).name());
      if (edges.empty()) continue;
      const ForeignKey& fk = edges[0];
      Edge e;
      e.probe_chain_pos = j;
      const bool new_is_from = fk.from_table == cat.table(tables[i]).name();
      e.probe_col = cat.table(tables[j]).FindColumn(
          new_is_from ? fk.to_column : fk.from_column);
      e.build_col = cat.table(tables[i]).FindColumn(
          new_is_from ? fk.from_column : fk.to_column);
      return e;
    }
    ADD_FAILURE() << "no FK edge for join";
    return Edge{};
  }

  Value TupleValue(const SelectQuery& q, const std::vector<uint32_t>& tup,
                   const ColumnRef& col) const {
    for (size_t i = 0; i < q.tables.size(); ++i) {
      if (q.tables[i] == col.table_idx) {
        return db_->tables()[col.table_idx].GetValue(tup[i], col.column_idx);
      }
    }
    return Value::Null();
  }

  bool EvalWhere(const SelectQuery& q, const WhereClause& where,
                 const std::vector<uint32_t>& tup) const {
    if (where.empty()) return true;
    std::vector<bool> preds;
    for (const Predicate& p : where.predicates) {
      preds.push_back(EvalPredicate(q, p, tup));
    }
    return CombinePredicates(preds, where.connectors);
  }

  bool EvalPredicate(const SelectQuery& q, const Predicate& p,
                     const std::vector<uint32_t>& tup) const {
    switch (p.kind) {
      case PredicateKind::kValue:
        return CompareValues(TupleValue(q, tup, p.column), p.op, p.value);
      case PredicateKind::kLike: {
        Value v = TupleValue(q, tup, p.column);
        return v.is_string() && p.value.is_string() &&
               LikeMatch(v.as_string(), p.value.as_string());
      }
      case PredicateKind::kScalarSub: {
        Result sub = EvalSelect(*p.subquery);
        if (sub.cardinality != 1 || sub.first_column.empty()) return false;
        return CompareValues(TupleValue(q, tup, p.column), p.op,
                             sub.first_column[0]);
      }
      case PredicateKind::kInSub: {
        Value v = TupleValue(q, tup, p.column);
        if (v.is_null()) return false;
        Result sub = EvalSelect(*p.subquery);
        for (const Value& m : sub.first_column) {
          if (!m.is_null() && m.Compare(v) == 0) return true;
        }
        return false;
      }
      case PredicateKind::kExistsSub: {
        bool exists = EvalSelect(*p.subquery).cardinality > 0;
        return p.negated ? !exists : exists;
      }
    }
    return false;
  }

  uint64_t CountMatching(int table_idx, const WhereClause& where) const {
    SelectQuery probe;
    probe.tables = {table_idx};
    uint64_t n = 0;
    const Table& t = db_->tables()[table_idx];
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (EvalWhere(probe, where, {static_cast<uint32_t>(r)})) ++n;
    }
    return n;
  }

  Value Aggregate(const SelectQuery& q, const SelectItem& item,
                  const std::vector<std::vector<uint32_t>>& rows) const {
    std::vector<Value> col;
    for (const auto& tup : rows) {
      col.push_back(TupleValue(q, tup, item.column));
    }
    return AggValues(item.agg, col);
  }

  static Value AggValues(AggFunc agg, const std::vector<Value>& values) {
    if (agg == AggFunc::kCount) {
      int64_t n = 0;
      for (const Value& v : values) {
        if (!v.is_null()) ++n;
      }
      return Value(n);
    }
    std::optional<Value> best;
    double sum = 0;
    int64_t n = 0;
    for (const Value& v : values) {
      if (v.is_null()) continue;
      if (!best.has_value()) best = v;
      if (agg == AggFunc::kMax && v.Compare(*best) > 0) best = v;
      if (agg == AggFunc::kMin && v.Compare(*best) < 0) best = v;
      if (v.is_numeric()) {
        sum += v.AsNumber();
        ++n;
      }
    }
    if (!best.has_value()) return Value::Null();
    switch (agg) {
      case AggFunc::kMax:
      case AggFunc::kMin:
        return *best;
      case AggFunc::kSum:
        return Value(sum);
      case AggFunc::kAvg:
        return n > 0 ? Value(sum / n) : Value::Null();
      default:
        return Value::Null();
    }
  }

  const Database* db_;
};

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, ExecutorMatchesReference) {
  Database db = BuildScoreStudentDb();
  VocabularyOptions vo;
  vo.values_per_column = 8;
  auto vocab = Vocabulary::Build(db, vo);
  ASSERT_TRUE(vocab.ok());
  QueryProfile profile;
  switch (GetParam()) {
    case 0:
      break;
    case 1:
      profile = QueryProfile::Full();
      break;
    case 2:
      profile.max_nesting_depth = 2;
      break;
    default:
      profile.max_predicates = 6;
      profile.max_select_items = 4;
      break;
  }
  GenerationFsm fsm(&db, &*vocab, profile);
  Executor exec(&db);
  ReferenceEvaluator ref(&db);
  Rng rng(9000 + GetParam());
  for (int i = 0; i < 200; ++i) {
    auto ast = RandomWalkQuery(&fsm, &rng);
    ASSERT_TRUE(ast.ok());
    auto fast = exec.Cardinality(*ast);
    ASSERT_TRUE(fast.ok()) << RenderSql(*ast, db.catalog());
    uint64_t slow = ref.EvalAst(*ast);
    EXPECT_EQ(*fast, slow) << RenderSql(*ast, db.catalog());
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, DifferentialTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace lsg
