// Static-analysis subsystem tests: the FsmAnalyzer must prove every bundled
// dataset's generation FSM free of dead states, stuck states, and reachable
// semantic-rule violations, and must catch deliberately seeded rule gaps;
// the SqlLinter's rules are unit-tested against hand-built bad ASTs.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "analysis/fsm_analyzer.h"
#include "analysis/sql_linter.h"
#include "common/logging.h"
#include "common/random.h"
#include "fuzz/fuzzer.h"
#include "fuzz/test_databases.h"
#include "fuzz/trace.h"
#include "sql/vocabulary.h"

namespace lsg {
namespace {

Vocabulary TestVocab(const Database& db) {
  VocabularyOptions vo;
  vo.values_per_column = 4;
  auto vocab = Vocabulary::Build(db, vo);
  LSG_CHECK(vocab.ok());
  return std::move(vocab).value();
}

FsmAnalysisReport AnalyzeProfile(const Database& db, const Vocabulary& vocab,
                                 const QueryProfile& profile,
                                 int budget_tokens = 0) {
  AnalyzerOptions opts;
  opts.profile = profile;
  opts.budget_tokens = budget_tokens;
  FsmAnalyzer analyzer(&db, &vocab, opts);
  auto report = analyzer.Analyze();
  LSG_CHECK(report.ok());
  return std::move(report).value();
}

// ------------------------------------------------- FSM graph verification

TEST(FsmAnalyzerTest, ScoreDatasetCleanUnderEveryProfile) {
  Database db = BuildScoreStudentDb();
  Vocabulary vocab = TestVocab(db);
  for (const FuzzProfile& fp : FuzzProfiles()) {
    FsmAnalysisReport report = AnalyzeProfile(db, vocab, fp.profile);
    EXPECT_TRUE(report.Clean()) << fp.name << "\n" << report.Summary(&vocab);
    EXPECT_GT(report.num_states, 0) << fp.name;
    EXPECT_GT(report.num_accepting_edges, 0) << fp.name;
  }
}

TEST(FsmAnalyzerTest, BundledDatasetsCleanUnderDefaultProfile) {
  for (const std::string& name : {"tpch", "job", "xuetang"}) {
    auto db = BuildNamedDatabase(name, 0.05);
    ASSERT_TRUE(db.ok()) << name;
    Vocabulary vocab = TestVocab(*db);
    FsmAnalysisReport report =
        AnalyzeProfile(*db, vocab, FuzzProfiles()[0].profile);
    EXPECT_TRUE(report.Clean()) << name << "\n" << report.Summary(&vocab);
  }
}

TEST(FsmAnalyzerTest, ScoreCleanUnderTightBudgetRegime) {
  // The exact-budget regime explores the tightness-pruning boundary itself;
  // masked completion paths must still reach EOF from every state.
  Database db = BuildScoreStudentDb();
  Vocabulary vocab = TestVocab(db);
  for (const FuzzProfile& fp : FuzzProfiles()) {
    if (fp.name != "full") continue;
    FsmAnalysisReport report =
        AnalyzeProfile(db, vocab, fp.profile, /*budget_tokens=*/16);
    EXPECT_TRUE(report.Clean()) << report.Summary(&vocab);
  }
}

TEST(FsmAnalyzerTest, TokenCoverageAcrossProfileRotation) {
  // Every vocabulary token must be offered somewhere in the rotation: a
  // never-offered token is dead weight in the action space.
  Database db = BuildScoreStudentDb();
  Vocabulary vocab = TestVocab(db);
  std::vector<uint8_t> covered(vocab.size(), 0);
  for (const FuzzProfile& fp : FuzzProfiles()) {
    FsmAnalysisReport report = AnalyzeProfile(db, vocab, fp.profile);
    for (int id = 0; id < static_cast<int>(vocab.size()); ++id) {
      if (report.offered[id] != 0) covered[id] = 1;
    }
  }
  for (int id = 0; id < static_cast<int>(vocab.size()); ++id) {
    EXPECT_NE(covered[id], 0)
        << "token never offered: id=" << id << " "
        << vocab.token(id).text;
  }
}

TEST(FsmAnalyzerTest, ReportSerializesToJson) {
  Database db = BuildScoreStudentDb();
  Vocabulary vocab = TestVocab(db);
  FsmAnalysisReport report =
      AnalyzeProfile(db, vocab, FuzzProfiles()[0].profile);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"states\""), std::string::npos);
  EXPECT_NE(json.find("\"exhausted\":true"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":0"), std::string::npos);
}

// ------------------------------------------------------- mutation testing

TEST(FsmAnalyzerTest, DetectsInjectedAggregateTypeGap) {
  Database db = BuildScoreStudentDb();
  Vocabulary vocab = TestVocab(db);
  QueryProfile profile = FuzzProfiles()[0].profile;
  profile.inject_agg_type_gap = true;
  FsmAnalysisReport report = AnalyzeProfile(db, vocab, profile);
  EXPECT_GT(report.num_violations, 0)
      << "analyzer blind to a dropped aggregate-typing rule";
}

TEST(FsmAnalyzerTest, DetectsInjectedJoinEdgeGap) {
  auto db = BuildNamedDatabase("tpch", 0.05);
  ASSERT_TRUE(db.ok());
  Vocabulary vocab = TestVocab(*db);
  QueryProfile profile = FuzzProfiles()[0].profile;
  profile.inject_join_edge_gap = true;
  FsmAnalysisReport report = AnalyzeProfile(*db, vocab, profile);
  EXPECT_GT(report.num_violations, 0)
      << "analyzer blind to a dropped join-edge rule";
}

TEST(SqlLinterTest, DetectsInjectedGapOnRandomWalks) {
  // The linter is the independent half of the differential pair: finished
  // ASTs from a gapped FSM must lint dirty often enough to be caught.
  Database db = BuildScoreStudentDb();
  Vocabulary vocab = TestVocab(db);
  QueryProfile profile = FuzzProfiles()[0].profile;
  profile.inject_agg_type_gap = true;
  SqlLinter linter(&db.catalog());
  Rng rng(20260806);
  int hits = 0;
  for (int ep = 0; ep < 200; ++ep) {
    GenerationFsm fsm(&db, &vocab, profile);
    std::vector<int> actions;
    auto ast = RecordedRandomWalk(&fsm, &rng, &actions);
    if (!ast.ok()) continue;
    if (!linter.Lint(ast.value()).empty()) ++hits;
  }
  EXPECT_GT(hits, 0) << "linter blind to a dropped aggregate-typing rule";
}

// ------------------------------------------------------ lint rule units
//
// Hand-built bad ASTs over the score dataset: Student(ID PK int, Name
// string, Gender categorical) = table 0, Score(SID PK int, ID int, Course
// categorical, Grade double) = table 1, FK Score.ID -> Student.ID.

class LintRulesTest : public ::testing::Test {
 protected:
  LintRulesTest() : db_(BuildScoreStudentDb()), linter_(&db_.catalog()) {}

  static bool HasRule(const std::vector<LintIssue>& issues, LintRule rule) {
    for (const LintIssue& issue : issues) {
      if (issue.rule == rule) return true;
    }
    return false;
  }

  /// Minimal clean SELECT: SELECT Name FROM Student.
  static std::unique_ptr<SelectQuery> CleanSelect() {
    auto q = std::make_unique<SelectQuery>();
    q->tables = {0};
    q->items.push_back({AggFunc::kNone, {0, 1}});
    return q;
  }

  static QueryAst Wrap(std::unique_ptr<SelectQuery> q) {
    QueryAst ast;
    ast.type = QueryType::kSelect;
    ast.select = std::move(q);
    return ast;
  }

  Database db_;
  SqlLinter linter_;
};

TEST_F(LintRulesTest, CleanQueryLintsClean) {
  EXPECT_TRUE(linter_.Lint(Wrap(CleanSelect())).empty());
}

TEST_F(LintRulesTest, EmptyTables) {
  auto q = CleanSelect();
  q->tables.clear();
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kEmptyTables));
}

TEST_F(LintRulesTest, EmptySelectItems) {
  auto q = CleanSelect();
  q->items.clear();
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kEmptySelectItems));
}

TEST_F(LintRulesTest, JoinWithoutForeignKeyEdge) {
  // Student joined to itself: the FK list holds no Student-Student edge.
  ASSERT_FALSE(linter_.HasForeignKeyEdge(0, 0));
  ASSERT_TRUE(linter_.HasForeignKeyEdge(0, 1));
  auto q = CleanSelect();
  q->tables = {0, 0};
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kJoinNotPkFk));
}

TEST_F(LintRulesTest, ColumnOutOfScope) {
  auto q = CleanSelect();
  q->items[0].column = {1, 3};  // Score.Grade, but only Student in scope
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kColumnOutOfScope));
}

TEST_F(LintRulesTest, OperatorTypeMismatch) {
  auto q = CleanSelect();
  Predicate p;
  p.column = {0, 1};  // Name: string, restricted to {=, <, >}
  p.op = CompareOp::kLe;
  p.value = Value("Ada");
  q->where.predicates.push_back(std::move(p));
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kOperatorTypeMismatch));
}

TEST_F(LintRulesTest, AggregateTypeMismatch) {
  auto q = CleanSelect();
  q->items[0] = {AggFunc::kSum, {0, 1}};  // SUM(Name)
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kAggregateTypeMismatch));
}

TEST_F(LintRulesTest, ValueTypeMismatch) {
  auto q = CleanSelect();
  Predicate p;
  p.column = {0, 0};  // ID: int
  p.op = CompareOp::kEq;
  p.value = Value("not a number");
  q->where.predicates.push_back(std::move(p));
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kValueTypeMismatch));
}

TEST_F(LintRulesTest, LikeOnNonStringColumn) {
  auto q = std::make_unique<SelectQuery>();
  q->tables = {1};
  q->items.push_back({AggFunc::kNone, {1, 3}});
  Predicate p;
  p.kind = PredicateKind::kLike;
  p.column = {1, 3};  // Grade: double
  p.value = Value("%x%");
  q->where.predicates.push_back(std::move(p));
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kLikeOnNonString));
}

TEST_F(LintRulesTest, MixedItemsWithoutGroupBy) {
  auto q = CleanSelect();
  q->items.push_back({AggFunc::kCount, {0, 0}});
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kMixedItemsWithoutGroupBy));
}

TEST_F(LintRulesTest, GroupByMissingPlainItem) {
  auto q = CleanSelect();
  q->items.push_back({AggFunc::kNone, {0, 2}});   // Gender
  q->items.push_back({AggFunc::kCount, {0, 0}});
  q->group_by = {{0, 1}};  // Name grouped, Gender not
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kGroupByMissingPlainItem));
}

TEST_F(LintRulesTest, GroupByNotSelectItem) {
  auto q = CleanSelect();
  q->items.push_back({AggFunc::kCount, {0, 0}});
  q->group_by = {{0, 1}, {0, 2}};  // Gender is not a select item
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kGroupByNotSelectItem));
}

TEST_F(LintRulesTest, HavingWithoutGroupBy) {
  auto q = CleanSelect();
  HavingClause h;
  h.agg = AggFunc::kCount;
  h.column = {0, 0};
  h.value = Value(int64_t{1});
  q->having = h;
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kHavingWithoutGroupBy));
}

TEST_F(LintRulesTest, OrderByNotSelectItem) {
  auto q = CleanSelect();
  q->order_by = {{0, 2}};  // Gender, not projected
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kOrderByNotSelectItem));
}

TEST_F(LintRulesTest, ScalarSubqueryNotScalar) {
  auto q = CleanSelect();
  Predicate p;
  p.kind = PredicateKind::kScalarSub;
  p.column = {0, 0};
  p.op = CompareOp::kEq;
  p.subquery = CleanSelect();  // plain item, not a single aggregate
  q->where.predicates.push_back(std::move(p));
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kScalarSubqueryNotScalar));
}

TEST_F(LintRulesTest, InSubqueryShape) {
  auto q = CleanSelect();
  Predicate p;
  p.kind = PredicateKind::kInSub;
  p.column = {0, 0};
  auto sub = CleanSelect();
  sub->items.push_back({AggFunc::kNone, {0, 2}});  // two items
  p.subquery = std::move(sub);
  q->where.predicates.push_back(std::move(p));
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kInSubqueryShape));
}

TEST_F(LintRulesTest, InSubqueryTypeMismatch) {
  auto q = CleanSelect();
  Predicate p;
  p.kind = PredicateKind::kInSub;
  p.column = {0, 0};       // ID: int
  p.subquery = CleanSelect();  // projects Name: string
  q->where.predicates.push_back(std::move(p));
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kSubqueryTypeMismatch));
}

TEST_F(LintRulesTest, NestingTooDeep) {
  // 10 nested IN-subqueries exceed the linter's hard cap of 8.
  auto q = CleanSelect();
  q->items[0].column = {0, 0};
  for (int i = 0; i < 10; ++i) {
    auto outer = CleanSelect();
    outer->items[0].column = {0, 0};
    Predicate p;
    p.kind = PredicateKind::kInSub;
    p.column = {0, 0};
    p.subquery = std::move(q);
    outer->where.predicates.push_back(std::move(p));
    q = std::move(outer);
  }
  EXPECT_TRUE(HasRule(linter_.Lint(Wrap(std::move(q))),
                      LintRule::kNestingTooDeep));
}

TEST_F(LintRulesTest, DmlTargetInvalid) {
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = 99;
  EXPECT_TRUE(HasRule(linter_.Lint(ast), LintRule::kDmlTargetInvalid));
}

TEST_F(LintRulesTest, InsertArity) {
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = 0;
  ast.insert->values = {Value(int64_t{7})};  // Student has 3 columns
  EXPECT_TRUE(HasRule(linter_.Lint(ast), LintRule::kInsertArity));
}

TEST_F(LintRulesTest, InsertSourceShape) {
  QueryAst ast;
  ast.type = QueryType::kInsert;
  ast.insert = std::make_unique<InsertQuery>();
  ast.insert->table_idx = 0;
  ast.insert->source = CleanSelect();  // one item for a 3-column table
  EXPECT_TRUE(HasRule(linter_.Lint(ast), LintRule::kInsertSourceShape));
}

TEST_F(LintRulesTest, UpdatePrimaryKey) {
  QueryAst ast;
  ast.type = QueryType::kUpdate;
  ast.update = std::make_unique<UpdateQuery>();
  ast.update->table_idx = 0;
  ast.update->set_column = {0, 0};  // Student.ID is the PK
  ast.update->set_value = Value(int64_t{5});
  EXPECT_TRUE(HasRule(linter_.Lint(ast), LintRule::kUpdatePrimaryKey));
}

// ------------------------------------------------------- rule predicates

TEST(SqlLinterPredicatesTest, OperatorAggregateAndTypeTables) {
  EXPECT_TRUE(SqlLinter::OperatorAllowed(CompareOp::kLe, DataType::kInt64));
  EXPECT_FALSE(SqlLinter::OperatorAllowed(CompareOp::kLe, DataType::kString));
  EXPECT_TRUE(SqlLinter::OperatorAllowed(CompareOp::kEq, DataType::kString));

  EXPECT_TRUE(SqlLinter::AggregateAllowed(AggFunc::kCount, DataType::kString));
  EXPECT_FALSE(SqlLinter::AggregateAllowed(AggFunc::kSum, DataType::kString));
  EXPECT_TRUE(SqlLinter::AggregateAllowed(AggFunc::kAvg, DataType::kDouble));

  EXPECT_TRUE(SqlLinter::TypesComparable(DataType::kInt64, DataType::kDouble));
  EXPECT_FALSE(SqlLinter::TypesComparable(DataType::kInt64,
                                          DataType::kString));

  EXPECT_TRUE(SqlLinter::ValueCompatible(Value(int64_t{3}),
                                         DataType::kDouble));
  EXPECT_FALSE(SqlLinter::ValueCompatible(Value("x"), DataType::kInt64));
  EXPECT_FALSE(SqlLinter::ValueCompatible(Value::Null(), DataType::kInt64));
}

}  // namespace
}  // namespace lsg
