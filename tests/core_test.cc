#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "core/batch_decoder.h"
#include "core/constraint.h"
#include "core/environment.h"
#include "core/generator.h"
#include "core/workload.h"
#include "obs/episode_telemetry.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "tests/test_db.h"

namespace lsg {
namespace {

// ------------------------------------------------------------ constraint

TEST(GeometricGridTest, EndpointsAndSpacing) {
  auto g = GeometricGrid(10, 10000, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_NEAR(g[0], 10.0, 1e-9);
  EXPECT_NEAR(g[3], 10000.0, 1e-6);
  // Constant ratio.
  EXPECT_NEAR(g[1] / g[0], g[2] / g[1], 1e-9);
}

TEST(GeometricGridTest, SinglePointIsGeometricMean) {
  auto g = GeometricGrid(10, 1000, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_NEAR(g[0], 100.0, 1e-9);
}

TEST(WideningRangesTest, PaperFamily) {
  auto rs = WideningRanges(ConstraintMetric::kCardinality, 1000);
  ASSERT_EQ(rs.size(), 4u);
  EXPECT_DOUBLE_EQ(rs[0].lo, 1000);
  EXPECT_DOUBLE_EQ(rs[0].hi, 2000);
  EXPECT_DOUBLE_EQ(rs[3].hi, 8000);
  for (const Constraint& c : rs) {
    EXPECT_EQ(c.kind, ConstraintKind::kRange);
  }
}

TEST(SplitIntoTasksTest, ContiguousCover) {
  MetricDomain d{0, 10000};
  auto tasks = SplitIntoTasks(ConstraintMetric::kCardinality, d, 5);
  ASSERT_EQ(tasks.size(), 5u);
  EXPECT_DOUBLE_EQ(tasks[0].lo, 0);
  EXPECT_DOUBLE_EQ(tasks[0].hi, 2000);
  EXPECT_DOUBLE_EQ(tasks[4].hi, 10000);
  for (size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(tasks[i].lo, tasks[i - 1].hi);
  }
}

TEST(PointGridTest, WithinDomain) {
  MetricDomain d{10, 100000};
  auto pts = PointGrid(ConstraintMetric::kCost, d, 4);
  ASSERT_EQ(pts.size(), 4u);
  for (const Constraint& c : pts) {
    EXPECT_EQ(c.kind, ConstraintKind::kPoint);
    EXPECT_GE(c.point, d.lo * 0.999);
    EXPECT_LE(c.point, d.hi * 1.001);
  }
}

// ----------------------------------------------------------- environment

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = BuildScoreStudentDb();
    stats_ = DatabaseStats::Collect(db_);
    est_ = std::make_unique<CardinalityEstimator>(&db_, &stats_);
    cost_ = std::make_unique<CostModel>(est_.get());
    VocabularyOptions vo;
    vo.values_per_column = 8;
    auto v = Vocabulary::Build(db_, vo);
    ASSERT_TRUE(v.ok());
    vocab_ = std::move(v).value();
  }

  std::unique_ptr<SqlGenEnvironment> MakeEnv(Constraint c) {
    EnvironmentOptions eo;
    return std::make_unique<SqlGenEnvironment>(&db_, &*vocab_, est_.get(),
                                               cost_.get(), c, eo);
  }

  int score() { return db_.catalog().FindTable("Score"); }

  Database db_;
  DatabaseStats stats_;
  std::unique_ptr<CardinalityEstimator> est_;
  std::unique_ptr<CostModel> cost_;
  std::optional<Vocabulary> vocab_;
};

TEST_F(EnvTest, StepRewardsFollowExecutability) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 25, 35));
  env->Reset();
  // FROM Score: not executable yet -> reward 0.
  auto r = env->Step(vocab_->keyword_id(Keyword::kFrom));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->reward, 0.0);
  r = env->Step(vocab_->table_token_id(score()));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->executable);
  r = env->Step(vocab_->keyword_id(Keyword::kSelect));
  ASSERT_TRUE(r.ok());
  // SELECT Score.SID FROM Score -> 30 rows, inside [25, 35] -> reward 1.
  r = env->Step(vocab_->column_token_id(score(), 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->executable);
  EXPECT_DOUBLE_EQ(r->reward, 1.0);
  EXPECT_TRUE(r->satisfied);
  EXPECT_FALSE(r->done);
  r = env->Step(vocab_->eof_id());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->done);
  EXPECT_TRUE(r->satisfied);
  EXPECT_NEAR(r->metric, 30.0, 1e-6);
}

TEST_F(EnvTest, CostMetricUsesCostModel) {
  auto env = MakeEnv(Constraint::Point(ConstraintMetric::kCost, 1.0));
  env->Reset();
  ASSERT_TRUE(env->Step(vocab_->keyword_id(Keyword::kFrom)).ok());
  ASSERT_TRUE(env->Step(vocab_->table_token_id(score())).ok());
  ASSERT_TRUE(env->Step(vocab_->keyword_id(Keyword::kSelect)).ok());
  auto r = env->Step(vocab_->column_token_id(score(), 0));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->metric, 0.0);
  EXPECT_NE(r->metric, 30.0);  // cost, not cardinality
}

TEST_F(EnvTest, FeedbackCallCounting) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 100));
  env->Reset();
  int64_t before = env->feedback_calls();
  ASSERT_TRUE(env->Step(vocab_->keyword_id(Keyword::kFrom)).ok());
  EXPECT_EQ(env->feedback_calls(), before);  // not executable, no feedback
  ASSERT_TRUE(env->Step(vocab_->table_token_id(score())).ok());
  ASSERT_TRUE(env->Step(vocab_->keyword_id(Keyword::kSelect)).ok());
  ASSERT_TRUE(env->Step(vocab_->column_token_id(score(), 0)).ok());
  EXPECT_GT(env->feedback_calls(), before);
}

TEST_F(EnvTest, TrueExecutionFeedbackMatchesExecutor) {
  EnvironmentOptions eo;
  eo.feedback = FeedbackSource::kTrueExecution;
  SqlGenEnvironment env(&db_, &*vocab_, est_.get(), cost_.get(),
                        Constraint::Range(ConstraintMetric::kCardinality, 25, 35),
                        eo);
  env.Reset();
  ASSERT_TRUE(env.Step(vocab_->keyword_id(Keyword::kFrom)).ok());
  ASSERT_TRUE(env.Step(vocab_->table_token_id(score())).ok());
  ASSERT_TRUE(env.Step(vocab_->keyword_id(Keyword::kSelect)).ok());
  auto r = env.Step(vocab_->column_token_id(score(), 0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->metric, 30.0);  // exact, not estimated
}

TEST_F(EnvTest, TelemetryBaselinesResetWhileObsDisabled) {
  // Regression: Reset() used to skip the per-episode telemetry baselines
  // unless obs::Enabled(), so turning observability on mid-run attributed
  // every feedback call since construction — and wall time since an
  // arbitrary epoch — to the first recorded episode.
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 100));
  auto run_episode = [&] {
    env->Reset();
    ASSERT_TRUE(env->Step(vocab_->keyword_id(Keyword::kFrom)).ok());
    ASSERT_TRUE(env->Step(vocab_->table_token_id(score())).ok());
    ASSERT_TRUE(env->Step(vocab_->keyword_id(Keyword::kSelect)).ok());
    ASSERT_TRUE(env->Step(vocab_->column_token_id(score(), 0)).ok());
    ASSERT_TRUE(env->Step(vocab_->eof_id()).ok());
  };

  obs::SetEnabled(false);
  run_episode();  // accumulates feedback calls with obs off
  const int64_t calls_before = env->feedback_calls();
  ASSERT_GT(calls_before, 0);

  std::string path =
      (std::filesystem::temp_directory_path() / "lsg_core_telemetry.jsonl")
          .string();
  std::filesystem::remove(path);
  {
    obs::EpisodeTelemetry sink(path);
    ASSERT_TRUE(sink.ok());
    obs::SetEnabled(true);
    obs::SetEpisodeSink(&sink);
    run_episode();  // the only episode that should be in the row
    obs::SetEpisodeSink(nullptr);
    obs::SetEnabled(false);
  }

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto row = obs::JsonParse(line);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  // Exactly the second episode's two feedback evaluations (the executable
  // prefix and the completed query), none of the first episode's.
  EXPECT_DOUBLE_EQ(row->NumberOr("estimator_calls", -1),
                   static_cast<double>(env->feedback_calls() - calls_before));
  // Wall time measured from this episode's Reset(), not from an epoch.
  EXPECT_GE(row->NumberOr("wall_seconds", -1), 0.0);
  EXPECT_LT(row->NumberOr("wall_seconds", -1), 60.0);
  std::filesystem::remove(path);
}

TEST_F(EnvTest, ProbeMetricDomainOrdered) {
  auto env = MakeEnv(Constraint::Range(ConstraintMetric::kCardinality, 1, 10));
  Rng rng(77);
  MetricDomain d = ProbeMetricDomain(env.get(), 200, &rng);
  EXPECT_GE(d.lo, 1.0);
  EXPECT_GT(d.hi, d.lo);
}

// ------------------------------------------------------------- workload

TEST(FeaturesTest, SelectFeatures) {
  QueryAst ast;
  ast.type = QueryType::kSelect;
  ast.select = std::make_unique<SelectQuery>();
  ast.select->tables = {0, 1};
  ast.select->items.push_back({AggFunc::kMax, {0, 0}});
  Predicate p;
  p.kind = PredicateKind::kInSub;
  p.subquery = std::make_unique<SelectQuery>();
  ast.select->where.predicates.push_back(std::move(p));
  QueryFeatures f = FeaturesOf(ast, 12);
  EXPECT_EQ(f.type, QueryType::kSelect);
  EXPECT_EQ(f.num_tables, 2);
  EXPECT_TRUE(f.nested);
  EXPECT_TRUE(f.has_aggregate);
  EXPECT_EQ(f.num_predicates, 1);
  EXPECT_EQ(f.num_tokens, 12);
}

TEST(FeaturesTest, DmlFeatures) {
  QueryAst ast;
  ast.type = QueryType::kDelete;
  ast.del = std::make_unique<DeleteQuery>();
  ast.del->table_idx = 0;
  Predicate p;
  ast.del->where.predicates.push_back(std::move(p));
  QueryFeatures f = FeaturesOf(ast, 6);
  EXPECT_EQ(f.type, QueryType::kDelete);
  EXPECT_EQ(f.num_predicates, 1);
  EXPECT_FALSE(f.nested);
}

TEST(WorkloadDistributionTest, Aggregates) {
  WorkloadDistribution dist;
  QueryFeatures a;
  a.num_tables = 1;
  a.num_tokens = 7;
  QueryFeatures b;
  b.num_tables = 3;
  b.nested = true;
  b.has_aggregate = true;
  b.num_predicates = 2;
  b.num_tokens = 22;
  dist.Add(a);
  dist.Add(b);
  EXPECT_EQ(dist.total(), 2);
  EXPECT_DOUBLE_EQ(dist.MultiJoinFraction(), 0.5);
  EXPECT_DOUBLE_EQ(dist.NestedFraction(), 0.5);
  EXPECT_DOUBLE_EQ(dist.AggregateFraction(), 0.5);
  EXPECT_EQ(dist.predicate_histogram().at(0), 1);
  EXPECT_EQ(dist.predicate_histogram().at(2), 1);
  EXPECT_EQ(dist.token_length_histogram().at(5), 1);
  EXPECT_EQ(dist.token_length_histogram().at(20), 1);
  EXPECT_FALSE(dist.ToString().empty());
}

TEST(WorkloadDistributionTest, EmptyIsSafe) {
  WorkloadDistribution dist;
  EXPECT_DOUBLE_EQ(dist.MultiJoinFraction(), 0.0);
  EXPECT_DOUBLE_EQ(dist.NestedFraction(), 0.0);
  EXPECT_EQ(dist.total(), 0);
}

// ------------------------------------------------------------- generator

TEST(GeneratorTest, CreateRejectsEmptyDb) {
  Database empty;
  auto gen = LearnedSqlGen::Create(&empty, LearnedSqlGenOptions());
  EXPECT_FALSE(gen.ok());
  EXPECT_FALSE(LearnedSqlGen::Create(nullptr, LearnedSqlGenOptions()).ok());
}

TEST(GeneratorTest, GenerateBeforeTrainFails) {
  Database db = BuildScoreStudentDb();
  auto gen = LearnedSqlGen::Create(&db, LearnedSqlGenOptions());
  ASSERT_TRUE(gen.ok());
  auto rep = (*gen)->GenerateBatch(5);
  EXPECT_EQ(rep.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GeneratorTest, TrainThenGenerateBatch) {
  Database db = BuildScoreStudentDb();
  LearnedSqlGenOptions opts;
  opts.train_epochs = 10;
  opts.trainer.batch_size = 4;
  opts.vocab.values_per_column = 8;
  auto gen = LearnedSqlGen::Create(&db, opts);
  ASSERT_TRUE(gen.ok());
  Constraint c = Constraint::Range(ConstraintMetric::kCardinality, 5, 50);
  ASSERT_TRUE((*gen)->Train(c).ok());
  EXPECT_EQ((*gen)->trace().size(), 10u);
  auto rep = (*gen)->GenerateBatch(20);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->attempts, 20);
  EXPECT_EQ(rep->queries.size(), 20u);
  EXPECT_GE(rep->accuracy, 0.0);
  EXPECT_LE(rep->accuracy, 1.0);
  for (const GeneratedQuery& q : rep->queries) {
    EXPECT_FALSE(q.sql.empty());
  }
}

TEST(GeneratorTest, GenerateSatisfiedStopsAtTarget) {
  Database db = BuildScoreStudentDb();
  LearnedSqlGenOptions opts;
  opts.train_epochs = 25;
  opts.trainer.batch_size = 4;
  opts.vocab.values_per_column = 8;
  opts.attempts_factor = 100;
  auto gen = LearnedSqlGen::Create(&db, opts);
  ASSERT_TRUE(gen.ok());
  // Easy constraint: almost everything under 100 rows.
  Constraint c = Constraint::Range(ConstraintMetric::kCardinality, 1, 100);
  ASSERT_TRUE((*gen)->Train(c).ok());
  auto rep = (*gen)->GenerateSatisfied(5);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->satisfied, 5);
  EXPECT_EQ(rep->queries.size(), 5u);
  for (const GeneratedQuery& q : rep->queries) {
    EXPECT_TRUE(q.satisfied);
    EXPECT_GE(q.metric, 1.0);
    EXPECT_LE(q.metric, 100.0);
  }
  EXPECT_GT(rep->train_seconds, 0.0);
}

// The serving tentpole's core contract: decoding a group of requests
// through BatchDecoder (one batched forward per step, ragged lanes that
// join and retire at different times) yields byte-for-byte the queries
// GenerateBatch / GenerateSatisfied produce when run one request at a time
// with the same per-request seeds. A second decode at max_lanes = 1 pins
// the batch-size-1 path (MatVec fallback) to the same output.
TEST(BatchDecoderTest, MatchesSequentialGenerationBitwise) {
  Database db = BuildScoreStudentDb();
  LearnedSqlGenOptions opts;
  opts.train_epochs = 8;
  opts.trainer.batch_size = 4;
  opts.vocab.values_per_column = 8;
  opts.attempts_factor = 40;
  auto gen = LearnedSqlGen::Create(&db, opts);
  ASSERT_TRUE(gen.ok());
  Constraint c = Constraint::Range(ConstraintMetric::kCardinality, 5, 50);
  ASSERT_TRUE((*gen)->Train(c).ok());
  auto snap = (*gen)->MakeServingSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // Mixed item shapes: distinct n, batch vs satisfied semantics, so lanes
  // retire raggedly and the batch width varies mid-run.
  struct Spec {
    int n;
    bool batch_mode;
  };
  const std::vector<Spec> specs = {
      {4, true}, {2, true}, {3, false}, {1, true}, {2, false}};
  auto make_items = [&specs] {
    std::vector<BatchDecodeItem> items(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      items[i].n = specs[i].n;
      items[i].batch_mode = specs[i].batch_mode;
      items[i].rng_seed = SplitMix64(0x5eedULL + i);
    }
    return items;
  };
  auto run = [&snap](std::vector<BatchDecodeItem>* items, int max_lanes) {
    std::vector<BatchDecodeItem*> ptrs;
    for (BatchDecodeItem& item : *items) ptrs.push_back(&item);
    return BatchDecoder(&*snap, max_lanes).Run(ptrs);
  };

  std::vector<BatchDecodeItem> batched = make_items();
  auto stats = run(&batched, static_cast<int>(batched.size()));
  EXPECT_GT(stats.peak_lanes, 1);
  EXPECT_GT(stats.lane_steps, stats.steps);  // lanes actually shared steps

  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(batched[i].status.ok()) << batched[i].status.ToString();
    Rng rng(batched[i].rng_seed);
    auto ref = specs[i].batch_mode
                   ? (*gen)->GenerateBatch(specs[i].n, &rng)
                   : (*gen)->GenerateSatisfied(specs[i].n, &rng);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_EQ(batched[i].report.attempts, ref->attempts);
    EXPECT_EQ(batched[i].report.satisfied, ref->satisfied);
    ASSERT_EQ(batched[i].report.queries.size(), ref->queries.size());
    for (size_t q = 0; q < ref->queries.size(); ++q) {
      EXPECT_EQ(batched[i].report.queries[q].sql, ref->queries[q].sql);
      EXPECT_EQ(batched[i].report.queries[q].metric, ref->queries[q].metric);
      EXPECT_EQ(batched[i].report.queries[q].satisfied,
                ref->queries[q].satisfied);
    }
  }

  std::vector<BatchDecodeItem> solo = make_items();
  run(&solo, 1);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(solo[i].status.ok());
    ASSERT_EQ(solo[i].report.queries.size(), batched[i].report.queries.size());
    for (size_t q = 0; q < solo[i].report.queries.size(); ++q) {
      EXPECT_EQ(solo[i].report.queries[q].sql,
                batched[i].report.queries[q].sql);
    }
  }
}

TEST(GeneratorTest, ReinforceVariantTrains) {
  Database db = BuildScoreStudentDb();
  LearnedSqlGenOptions opts;
  opts.train_epochs = 5;
  opts.trainer.batch_size = 4;
  opts.use_reinforce = true;
  opts.vocab.values_per_column = 8;
  auto gen = LearnedSqlGen::Create(&db, opts);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(
      (*gen)->Train(Constraint::Range(ConstraintMetric::kCardinality, 1, 50))
          .ok());
  auto rep = (*gen)->GenerateBatch(5);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->attempts, 5);
}

}  // namespace
}  // namespace lsg
