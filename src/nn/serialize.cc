#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "common/string_util.h"

namespace lsg {

namespace {
constexpr uint32_t kMagic = 0x4C53474Eu;  // "LSGN"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveParams(const std::vector<ParamTensor*>& params,
                  const std::string& path) {
  return SaveParams(
      std::vector<const ParamTensor*>(params.begin(), params.end()), path);
}

Status SaveParams(const std::vector<const ParamTensor*>& params,
                  const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::Internal("cannot open " + path);
  uint32_t magic = kMagic;
  uint32_t count = static_cast<uint32_t>(params.size());
  if (std::fwrite(&magic, sizeof(magic), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::Internal("write failed: " + path);
  }
  for (const ParamTensor* p : params) {
    uint32_t name_len = static_cast<uint32_t>(p->name.size());
    uint32_t rows = static_cast<uint32_t>(p->value.rows());
    uint32_t cols = static_cast<uint32_t>(p->value.cols());
    if (std::fwrite(&name_len, sizeof(name_len), 1, f.get()) != 1 ||
        std::fwrite(p->name.data(), 1, name_len, f.get()) != name_len ||
        std::fwrite(&rows, sizeof(rows), 1, f.get()) != 1 ||
        std::fwrite(&cols, sizeof(cols), 1, f.get()) != 1 ||
        std::fwrite(p->value.data(), sizeof(float), p->value.size(),
                    f.get()) != p->value.size()) {
      return Status::Internal("write failed: " + path);
    }
  }
  return Status::Ok();
}

Status LoadParams(const std::vector<ParamTensor*>& params,
                  const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  uint32_t magic = 0, count = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 || magic != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1 ||
      count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch in %s", path.c_str()));
  }
  for (ParamTensor* p : params) {
    uint32_t name_len = 0, rows = 0, cols = 0;
    if (std::fread(&name_len, sizeof(name_len), 1, f.get()) != 1) {
      return Status::InvalidArgument("truncated file " + path);
    }
    std::string name(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f.get()) != name_len ||
        std::fread(&rows, sizeof(rows), 1, f.get()) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f.get()) != 1) {
      return Status::InvalidArgument("truncated file " + path);
    }
    if (name != p->name || rows != static_cast<uint32_t>(p->value.rows()) ||
        cols != static_cast<uint32_t>(p->value.cols())) {
      return Status::InvalidArgument(
          StrFormat("tensor mismatch: file has %s(%ux%u), model expects "
                    "%s(%dx%d)",
                    name.c_str(), rows, cols, p->name.c_str(),
                    p->value.rows(), p->value.cols()));
    }
    if (std::fread(p->value.data(), sizeof(float), p->value.size(), f.get()) !=
        p->value.size()) {
      return Status::InvalidArgument("truncated tensor data in " + path);
    }
  }
  return Status::Ok();
}

}  // namespace lsg
