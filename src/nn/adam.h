#ifndef LEARNEDSQLGEN_NN_ADAM_H_
#define LEARNEDSQLGEN_NN_ADAM_H_

#include <vector>

#include "nn/matrix.h"

namespace lsg {

/// Adam optimizer over a fixed set of parameter tensors. Step() consumes
/// (and zeroes) the accumulated gradients.
class Adam {
 public:
  Adam(std::vector<ParamTensor*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Drops accumulated gradients without updating.
  void ZeroGrad();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t steps() const { return t_; }

 private:
  std::vector<ParamTensor*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_ADAM_H_
