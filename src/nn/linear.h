#ifndef LEARNEDSQLGEN_NN_LINEAR_H_
#define LEARNEDSQLGEN_NN_LINEAR_H_

#include <vector>

#include "nn/matrix.h"

namespace lsg {

/// Fully connected layer y = Wx + b with explicit backward.
class Linear {
 public:
  Linear(int input_dim, int output_dim, Rng* rng);

  int input_dim() const { return w_.value.cols(); }
  int output_dim() const { return w_.value.rows(); }

  /// y must have room for output_dim floats.
  void Forward(const float* x, float* y) const;

  /// Batched forward over a feature-major activation panel
  /// (x_panel[j * batch + b], y_panel[i * batch + b]). Every lane is
  /// bitwise-identical to Forward over its own vector.
  void ForwardBatch(const float* x_panel, int batch, float* y_panel) const;

  /// Sparse-row forward: y[k] = Forward(x)[rows[k]] for each of the nrows
  /// requested output rows, reading x at the given stride (a feature-major
  /// panel column when x_stride > 1, a plain vector at stride 1). Each row
  /// is the same ascending-j dot product plus bias as Forward, so the
  /// requested entries are bitwise-identical to a full forward — the
  /// serving decode path asks for the handful of FSM-valid vocabulary rows
  /// instead of the whole output layer.
  void ForwardRows(const float* x, int x_stride, const int* rows, int nrows,
                   float* y) const;

  /// Accumulates parameter gradients and (optionally) input gradients.
  /// `x` must be the forward input that produced `dy`.
  void Backward(const float* x, const float* dy, float* dx_or_null);

  std::vector<ParamTensor*> Params() { return {&w_, &b_}; }
  std::vector<const ParamTensor*> Params() const { return {&w_, &b_}; }

 private:
  ParamTensor w_;
  ParamTensor b_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_LINEAR_H_
