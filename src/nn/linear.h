#ifndef LEARNEDSQLGEN_NN_LINEAR_H_
#define LEARNEDSQLGEN_NN_LINEAR_H_

#include <vector>

#include "nn/matrix.h"

namespace lsg {

/// Fully connected layer y = Wx + b with explicit backward.
class Linear {
 public:
  Linear(int input_dim, int output_dim, Rng* rng);

  int input_dim() const { return w_.value.cols(); }
  int output_dim() const { return w_.value.rows(); }

  /// y must have room for output_dim floats.
  void Forward(const float* x, float* y) const;

  /// Accumulates parameter gradients and (optionally) input gradients.
  /// `x` must be the forward input that produced `dy`.
  void Backward(const float* x, const float* dy, float* dx_or_null);

  std::vector<ParamTensor*> Params() { return {&w_, &b_}; }
  std::vector<const ParamTensor*> Params() const { return {&w_, &b_}; }

 private:
  ParamTensor w_;
  ParamTensor b_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_LINEAR_H_
