#include "nn/lstm.h"

#include <cmath>

#include "common/logging.h"

namespace lsg {

namespace {
inline float Sigmoid(float x) { return 1.f / (1.f + std::exp(-x)); }
}  // namespace

LstmCell::LstmCell(int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_("lstm.wx", Matrix::Xavier(4 * hidden_dim, input_dim, rng)),
      wh_("lstm.wh", Matrix::Xavier(4 * hidden_dim, hidden_dim, rng)),
      b_("lstm.b", Matrix::Zeros(4 * hidden_dim, 1)) {
  // Forget-gate bias init to 1: standard trick for stable early training.
  for (int i = hidden_dim; i < 2 * hidden_dim; ++i) b_.value.data()[i] = 1.f;
}

void LstmCell::Gates(const float* pre, Cache* cache) const {
  const int h = hidden_dim_;
  cache->i.resize(h);
  cache->f.resize(h);
  cache->g.resize(h);
  cache->o.resize(h);
  cache->c.resize(h);
  cache->h.resize(h);
  for (int k = 0; k < h; ++k) {
    cache->i[k] = Sigmoid(pre[k]);
    cache->f[k] = Sigmoid(pre[h + k]);
    cache->g[k] = std::tanh(pre[2 * h + k]);
    cache->o[k] = Sigmoid(pre[3 * h + k]);
    cache->c[k] = cache->f[k] * cache->c_prev[k] + cache->i[k] * cache->g[k];
    cache->h[k] = cache->o[k] * std::tanh(cache->c[k]);
  }
}

void LstmCell::Forward(const float* x, const float* h_prev,
                       const float* c_prev, Cache* cache) const {
  cache->onehot = -1;
  cache->x.assign(x, x + input_dim_);
  cache->h_prev.assign(h_prev, h_prev + hidden_dim_);
  cache->c_prev.assign(c_prev, c_prev + hidden_dim_);
  std::vector<float> pre(4 * hidden_dim_);
  MatVec(wx_.value, x, pre.data());
  MatVecAccum(wh_.value, h_prev, pre.data());
  const float* b = b_.value.data();
  for (int k = 0; k < 4 * hidden_dim_; ++k) pre[k] += b[k];
  Gates(pre.data(), cache);
}

void LstmCell::ForwardOneHot(int idx, const float* h_prev, const float* c_prev,
                             Cache* cache) const {
  LSG_DCHECK(idx >= 0 && idx < input_dim_);
  cache->onehot = idx;
  cache->x.clear();
  cache->h_prev.assign(h_prev, h_prev + hidden_dim_);
  cache->c_prev.assign(c_prev, c_prev + hidden_dim_);
  std::vector<float> pre(4 * hidden_dim_);
  // Wx * e_idx = column idx of Wx.
  for (int k = 0; k < 4 * hidden_dim_; ++k) pre[k] = wx_.value.at(k, idx);
  MatVecAccum(wh_.value, h_prev, pre.data());
  const float* b = b_.value.data();
  for (int k = 0; k < 4 * hidden_dim_; ++k) pre[k] += b[k];
  Gates(pre.data(), cache);
}

void LstmCell::GatesBatch(const float* pre, const float* c_prev, int batch,
                          float* h_out, float* c_out) const {
  const int h = hidden_dim_;
  for (int k = 0; k < h; ++k) {
    for (int b = 0; b < batch; ++b) {
      const float ig = Sigmoid(pre[static_cast<size_t>(k) * batch + b]);
      const float fg = Sigmoid(pre[static_cast<size_t>(h + k) * batch + b]);
      const float gg = std::tanh(pre[static_cast<size_t>(2 * h + k) * batch + b]);
      const float og = Sigmoid(pre[static_cast<size_t>(3 * h + k) * batch + b]);
      const float ck =
          fg * c_prev[static_cast<size_t>(k) * batch + b] + ig * gg;
      c_out[static_cast<size_t>(k) * batch + b] = ck;
      h_out[static_cast<size_t>(k) * batch + b] = og * std::tanh(ck);
    }
  }
}

void LstmCell::ForwardOneHotBatch(const int* idx, const float* h_prev,
                                  const float* c_prev, int batch, float* h_out,
                                  float* c_out) const {
  std::vector<float> pre(static_cast<size_t>(4 * hidden_dim_) * batch);
  // Column gathers of Wx, one per lane: Wx * e_idx[b].
  for (int k = 0; k < 4 * hidden_dim_; ++k) {
    float* ps = pre.data() + static_cast<size_t>(k) * batch;
    for (int b = 0; b < batch; ++b) {
      LSG_DCHECK(idx[b] >= 0 && idx[b] < input_dim_);
      ps[b] = wx_.value.at(k, idx[b]);
    }
  }
  MatMatAccum(wh_.value, h_prev, batch, pre.data());
  const float* bias = b_.value.data();
  for (int k = 0; k < 4 * hidden_dim_; ++k) {
    float* ps = pre.data() + static_cast<size_t>(k) * batch;
    for (int b = 0; b < batch; ++b) ps[b] += bias[k];
  }
  GatesBatch(pre.data(), c_prev, batch, h_out, c_out);
}

void LstmCell::ForwardBatch(const float* x_panel, const float* h_prev,
                            const float* c_prev, int batch, float* h_out,
                            float* c_out) const {
  std::vector<float> pre(static_cast<size_t>(4 * hidden_dim_) * batch);
  MatMat(wx_.value, x_panel, batch, pre.data());
  MatMatAccum(wh_.value, h_prev, batch, pre.data());
  const float* bias = b_.value.data();
  for (int k = 0; k < 4 * hidden_dim_; ++k) {
    float* ps = pre.data() + static_cast<size_t>(k) * batch;
    for (int b = 0; b < batch; ++b) ps[b] += bias[k];
  }
  GatesBatch(pre.data(), c_prev, batch, h_out, c_out);
}

void LstmCell::Backward(const Cache& cache, const float* dh, const float* dc,
                        float* dh_prev, float* dc_prev, float* dx_or_null) {
  const int h = hidden_dim_;
  std::vector<float> dpre(4 * h);
  for (int k = 0; k < h; ++k) {
    const float tc = std::tanh(cache.c[k]);
    const float do_ = dh[k] * tc;
    const float dck = dc[k] + dh[k] * cache.o[k] * (1.f - tc * tc);
    const float di = dck * cache.g[k];
    const float df = dck * cache.c_prev[k];
    const float dg = dck * cache.i[k];
    dc_prev[k] = dck * cache.f[k];
    dpre[k] = di * cache.i[k] * (1.f - cache.i[k]);
    dpre[h + k] = df * cache.f[k] * (1.f - cache.f[k]);
    dpre[2 * h + k] = dg * (1.f - cache.g[k] * cache.g[k]);
    dpre[3 * h + k] = do_ * cache.o[k] * (1.f - cache.o[k]);
  }
  // Parameter gradients.
  if (cache.onehot >= 0) {
    for (int k = 0; k < 4 * h; ++k) {
      wx_.grad.at(k, cache.onehot) += dpre[k];
    }
  } else {
    OuterAccum(&wx_.grad, dpre.data(), cache.x.data());
    if (dx_or_null != nullptr) {
      MatTVecAccum(wx_.value, dpre.data(), dx_or_null);
    }
  }
  OuterAccum(&wh_.grad, dpre.data(), cache.h_prev.data());
  float* db = b_.grad.data();
  for (int k = 0; k < 4 * h; ++k) db[k] += dpre[k];
  // Recurrent gradient.
  for (int k = 0; k < h; ++k) dh_prev[k] = 0.f;
  MatTVecAccum(wh_.value, dpre.data(), dh_prev);
}

LstmStack::LstmStack(int input_dim, int hidden_dim, int num_layers,
                     float dropout, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim), dropout_(dropout) {
  LSG_CHECK(num_layers >= 1);
  cells_.reserve(num_layers);
  cells_.emplace_back(input_dim, hidden_dim, rng);
  for (int l = 1; l < num_layers; ++l) {
    cells_.emplace_back(hidden_dim, hidden_dim, rng);
  }
}

LstmStack::State LstmStack::InitialState() const {
  State s;
  s.h.assign(cells_.size(), std::vector<float>(hidden_dim_, 0.f));
  s.c.assign(cells_.size(), std::vector<float>(hidden_dim_, 0.f));
  return s;
}

const std::vector<float>& LstmStack::Step(int onehot_idx, State* state,
                                          StepCache* cache, bool train,
                                          Rng* rng) {
  return StepImpl(onehot_idx, nullptr, state, cache, train, rng);
}

const std::vector<float>& LstmStack::StepDense(const float* x, State* state,
                                               StepCache* cache, bool train,
                                               Rng* rng) {
  return StepImpl(-1, x, state, cache, train, rng);
}

const std::vector<float>& LstmStack::StepImpl(int onehot_idx, const float* x0,
                                              State* state, StepCache* cache,
                                              bool train, Rng* rng) {
  StepCache local;
  StepCache* sc = cache != nullptr ? cache : &local;
  sc->layers.resize(cells_.size());
  sc->dropout_mask.assign(cells_.size(), {});

  std::vector<float> input;
  for (size_t l = 0; l < cells_.size(); ++l) {
    LstmCell::Cache& cc = sc->layers[l];
    if (l == 0) {
      if (x0 != nullptr) {
        cells_[0].Forward(x0, state->h[0].data(), state->c[0].data(), &cc);
      } else {
        cells_[0].ForwardOneHot(onehot_idx, state->h[0].data(),
                                state->c[0].data(), &cc);
      }
    } else {
      input = sc->layers[l - 1].h;
      if (train && dropout_ > 0.f) {
        std::vector<float>& mask = sc->dropout_mask[l];
        mask.resize(hidden_dim_);
        const float keep = 1.f - dropout_;
        for (int k = 0; k < hidden_dim_; ++k) {
          mask[k] = rng->Bernoulli(keep) ? 1.f / keep : 0.f;
          input[k] *= mask[k];
        }
      }
      cells_[l].Forward(input.data(), state->h[l].data(), state->c[l].data(),
                        &cc);
    }
    state->h[l] = cc.h;
    state->c[l] = cc.c;
  }
  return state->h.back();
}

void LstmStack::StepBatch(const int* tokens, State* const* states, int batch,
                          std::vector<float>* top_h_panel) const {
  LSG_CHECK(batch > 0);
  const int H = hidden_dim_;
  const size_t panel = static_cast<size_t>(H) * batch;
  std::vector<float> h_prev(panel);
  std::vector<float> c_prev(panel);
  std::vector<float> h_out(panel);
  std::vector<float> c_out(panel);
  std::vector<float> input;  // previous layer's h panel (no dropout: serving)
  for (size_t l = 0; l < cells_.size(); ++l) {
    for (int k = 0; k < H; ++k) {
      const size_t base = static_cast<size_t>(k) * batch;
      for (int b = 0; b < batch; ++b) {
        h_prev[base + b] = states[b]->h[l][k];
        c_prev[base + b] = states[b]->c[l][k];
      }
    }
    if (l == 0) {
      cells_[0].ForwardOneHotBatch(tokens, h_prev.data(), c_prev.data(), batch,
                                   h_out.data(), c_out.data());
    } else {
      cells_[l].ForwardBatch(input.data(), h_prev.data(), c_prev.data(), batch,
                             h_out.data(), c_out.data());
    }
    for (int k = 0; k < H; ++k) {
      const size_t base = static_cast<size_t>(k) * batch;
      for (int b = 0; b < batch; ++b) {
        states[b]->h[l][k] = h_out[base + b];
        states[b]->c[l][k] = c_out[base + b];
      }
    }
    input = h_out;
  }
  *top_h_panel = std::move(input);
}

void LstmStack::Backward(const std::vector<StepCache>& caches,
                         const std::vector<std::vector<float>>& dtop) {
  LSG_CHECK(caches.size() == dtop.size());
  const int L = static_cast<int>(cells_.size());
  const int T = static_cast<int>(caches.size());
  // Gradients flowing backward in time, per layer.
  std::vector<std::vector<float>> dh_time(L, std::vector<float>(hidden_dim_, 0.f));
  std::vector<std::vector<float>> dc_time(L, std::vector<float>(hidden_dim_, 0.f));
  std::vector<float> dh(hidden_dim_);
  std::vector<float> dh_prev(hidden_dim_);
  std::vector<float> dc_prev(hidden_dim_);
  std::vector<float> dx(hidden_dim_);

  for (int t = T - 1; t >= 0; --t) {
    std::vector<float> from_above;  // dx of the layer above at this step
    for (int l = L - 1; l >= 0; --l) {
      // Gradient into this layer's h at step t.
      for (int k = 0; k < hidden_dim_; ++k) dh[k] = dh_time[l][k];
      if (l == L - 1) {
        for (int k = 0; k < hidden_dim_; ++k) dh[k] += dtop[t][k];
      } else {
        // Input gradient of layer l+1 passes through its dropout mask.
        const std::vector<float>& mask = caches[t].dropout_mask[l + 1];
        for (int k = 0; k < hidden_dim_; ++k) {
          float g = from_above[k];
          if (!mask.empty()) g *= mask[k];
          dh[k] += g;
        }
      }
      std::fill(dx.begin(), dx.end(), 0.f);
      cells_[l].Backward(caches[t].layers[l], dh.data(), dc_time[l].data(),
                         dh_prev.data(), dc_prev.data(),
                         l > 0 ? dx.data() : nullptr);
      dh_time[l] = dh_prev;
      dc_time[l] = dc_prev;
      from_above = dx;
    }
  }
}

std::vector<ParamTensor*> LstmStack::Params() {
  std::vector<ParamTensor*> out;
  for (LstmCell& c : cells_) {
    for (ParamTensor* p : c.Params()) out.push_back(p);
  }
  return out;
}

std::vector<const ParamTensor*> LstmStack::Params() const {
  std::vector<const ParamTensor*> out;
  for (const LstmCell& c : cells_) {
    for (const ParamTensor* p : c.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace lsg
