#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lsg {

Matrix Matrix::Randn(int rows, int cols, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(rows + cols));
  return Randn(rows, cols, stddev, rng);
}

void MatVec(const Matrix& w, const float* x, float* y) {
  const int r = w.rows();
  const int c = w.cols();
  const float* wd = w.data();
  for (int i = 0; i < r; ++i) {
    float acc = 0.f;
    const float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void MatVecAccum(const Matrix& w, const float* x, float* y) {
  const int r = w.rows();
  const int c = w.cols();
  const float* wd = w.data();
  for (int i = 0; i < r; ++i) {
    float acc = 0.f;
    const float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) acc += row[j] * x[j];
    y[i] += acc;
  }
}

void MatTVecAccum(const Matrix& w, const float* dy, float* dx) {
  const int r = w.rows();
  const int c = w.cols();
  const float* wd = w.data();
  for (int i = 0; i < r; ++i) {
    const float g = dy[i];
    if (g == 0.f) continue;
    const float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) dx[j] += row[j] * g;
  }
}

void OuterAccum(Matrix* dw, const float* dy, const float* x) {
  const int r = dw->rows();
  const int c = dw->cols();
  float* wd = dw->data();
  for (int i = 0; i < r; ++i) {
    const float g = dy[i];
    if (g == 0.f) continue;
    float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) row[j] += g * x[j];
  }
}

void SoftmaxInPlace(std::vector<float>* v) {
  float mx = -1e30f;
  for (float x : *v) mx = std::max(mx, x);
  double sum = 0.0;
  for (float& x : *v) {
    x = std::exp(x - mx);
    sum += x;
  }
  LSG_CHECK(sum > 0.0);
  for (float& x : *v) x = static_cast<float>(x / sum);
}

void MaskedSoftmaxInPlace(std::vector<float>* v,
                          const std::vector<uint8_t>& mask) {
  LSG_CHECK(v->size() == mask.size());
  float mx = -1e30f;
  bool any = false;
  for (size_t i = 0; i < v->size(); ++i) {
    if (mask[i]) {
      mx = std::max(mx, (*v)[i]);
      any = true;
    }
  }
  LSG_CHECK(any) << "masked softmax with empty mask";
  double sum = 0.0;
  for (size_t i = 0; i < v->size(); ++i) {
    if (mask[i]) {
      (*v)[i] = std::exp((*v)[i] - mx);
      sum += (*v)[i];
    } else {
      (*v)[i] = 0.f;
    }
  }
  for (size_t i = 0; i < v->size(); ++i) {
    (*v)[i] = static_cast<float>((*v)[i] / sum);
  }
}

void ParamSnapshot::Save(const std::vector<ParamTensor*>& params) {
  values_.clear();
  values_.reserve(params.size());
  for (const ParamTensor* p : params) values_.push_back(p->value);
}

bool ParamSnapshot::Restore(const std::vector<ParamTensor*>& params) const {
  if (values_.empty()) return false;
  LSG_CHECK(values_.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    LSG_CHECK(values_[i].size() == params[i]->value.size());
    params[i]->value = values_[i];
  }
  return true;
}

double ClipGradNorm(const std::vector<ParamTensor*>& params, double max_norm) {
  double sq = 0.0;
  for (const ParamTensor* p : params) {
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) {
      sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    float scale = static_cast<float>(max_norm / norm);
    for (ParamTensor* p : params) {
      float* g = p->grad.data();
      for (size_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace lsg
