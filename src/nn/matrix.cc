#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lsg {

Matrix Matrix::Randn(int rows, int cols, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(rows + cols));
  return Randn(rows, cols, stddev, rng);
}

void MatVec(const Matrix& w, const float* x, float* y) {
  const int r = w.rows();
  const int c = w.cols();
  const float* wd = w.data();
  for (int i = 0; i < r; ++i) {
    float acc = 0.f;
    const float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void MatVecAccum(const Matrix& w, const float* x, float* y) {
  const int r = w.rows();
  const int c = w.cols();
  const float* wd = w.data();
  for (int i = 0; i < r; ++i) {
    float acc = 0.f;
    const float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) acc += row[j] * x[j];
    y[i] += acc;
  }
}

namespace {

// Lanes per register tile. 16 floats span two AVX-512 / four SSE vectors;
// small enough that the accumulators stay in registers at -O2.
constexpr int kLaneBlock = 16;

// One row-major sweep over a lane tile [b0, b0+kWidth). For each output
// row the tile keeps kWidth independent accumulators and walks features in
// ascending-j order, so lane b's sum reassociates nothing relative to
// MatVec; the bb loop is stride-1 over the panel. kWidth is a template
// parameter on purpose: GCC's SLP vectorizer (on at -O2) only fires on
// constant-trip-count lane loops — a runtime `width` leaves the whole
// kernel scalar. GCC only emits FMA contractions when the target ISA has
// them, and the baseline x86-64 build (SSE2) does not, so vector mul+add
// keeps scalar rounding and the bitwise-oracle contract holds.
template <bool kAccum, int kWidth>
void MatMatTile(const float* wd, int rows, int cols, const float* x_panel,
                int batch, int b0, float* y_panel) {
  float acc[kWidth];
  for (int i = 0; i < rows; ++i) {
    const float* row = wd + static_cast<size_t>(i) * cols;
#pragma GCC unroll 16
    for (int bb = 0; bb < kWidth; ++bb) acc[bb] = 0.f;
    for (int j = 0; j < cols; ++j) {
      const float wj = row[j];
      const float* xs = x_panel + static_cast<size_t>(j) * batch + b0;
      // Fully unrolled so the kWidth accumulators live in vector registers
      // across the j sweep; a rolled bb loop makes GCC spill them to the
      // stack every iteration.
#pragma GCC unroll 16
      for (int bb = 0; bb < kWidth; ++bb) acc[bb] += wj * xs[bb];
    }
    float* ys = y_panel + static_cast<size_t>(i) * batch + b0;
    if (kAccum) {
#pragma GCC unroll 16
      for (int bb = 0; bb < kWidth; ++bb) ys[bb] += acc[bb];
    } else {
#pragma GCC unroll 16
      for (int bb = 0; bb < kWidth; ++bb) ys[bb] = acc[bb];
    }
  }
}

// Greedy power-of-two tiling: every lane lands in exactly one fixed-width
// tile, so its accumulation order is identical no matter how the batch
// splits (16+8+4+… vs one 16-tile vs MatVec).
template <bool kAccum>
void MatMatImpl(const Matrix& w, const float* x_panel, int batch,
                float* y_panel) {
  const float* wd = w.data();
  const int rows = w.rows();
  const int cols = w.cols();
  int b0 = 0;
  for (; b0 + kLaneBlock <= batch; b0 += kLaneBlock) {
    MatMatTile<kAccum, kLaneBlock>(wd, rows, cols, x_panel, batch, b0,
                                   y_panel);
  }
  if (b0 + 8 <= batch) {
    MatMatTile<kAccum, 8>(wd, rows, cols, x_panel, batch, b0, y_panel);
    b0 += 8;
  }
  if (b0 + 4 <= batch) {
    MatMatTile<kAccum, 4>(wd, rows, cols, x_panel, batch, b0, y_panel);
    b0 += 4;
  }
  if (b0 + 2 <= batch) {
    MatMatTile<kAccum, 2>(wd, rows, cols, x_panel, batch, b0, y_panel);
    b0 += 2;
  }
  if (b0 < batch) {
    MatMatTile<kAccum, 1>(wd, rows, cols, x_panel, batch, b0, y_panel);
  }
}

}  // namespace

void MatMat(const Matrix& w, const float* x_panel, int batch, float* y_panel) {
  LSG_CHECK(batch > 0);
  if (batch == 1) {
    MatVec(w, x_panel, y_panel);
    return;
  }
  MatMatImpl<false>(w, x_panel, batch, y_panel);
}

void MatMatAccum(const Matrix& w, const float* x_panel, int batch,
                 float* y_panel) {
  LSG_CHECK(batch > 0);
  if (batch == 1) {
    MatVecAccum(w, x_panel, y_panel);
    return;
  }
  MatMatImpl<true>(w, x_panel, batch, y_panel);
}

void MatTVecAccum(const Matrix& w, const float* dy, float* dx) {
  const int r = w.rows();
  const int c = w.cols();
  const float* wd = w.data();
  for (int i = 0; i < r; ++i) {
    const float g = dy[i];
    if (g == 0.f) continue;
    const float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) dx[j] += row[j] * g;
  }
}

void OuterAccum(Matrix* dw, const float* dy, const float* x) {
  const int r = dw->rows();
  const int c = dw->cols();
  float* wd = dw->data();
  for (int i = 0; i < r; ++i) {
    const float g = dy[i];
    if (g == 0.f) continue;
    float* row = wd + static_cast<size_t>(i) * c;
    for (int j = 0; j < c; ++j) row[j] += g * x[j];
  }
}

void SoftmaxInPlace(std::vector<float>* v) {
  float mx = -1e30f;
  for (float x : *v) mx = std::max(mx, x);
  double sum = 0.0;
  for (float& x : *v) {
    x = std::exp(x - mx);
    sum += x;
  }
  LSG_CHECK(sum > 0.0);
  for (float& x : *v) x = static_cast<float>(x / sum);
}

void MaskedSoftmaxInPlace(std::vector<float>* v,
                          const std::vector<uint8_t>& mask) {
  Status st = TryMaskedSoftmaxInPlace(v, mask);
  LSG_CHECK(st.ok()) << st.ToString();
}

Status TryMaskedSoftmaxInPlace(std::vector<float>* v,
                               const std::vector<uint8_t>& mask) {
  LSG_CHECK(v->size() == mask.size());
  float mx = -1e30f;
  bool any = false;
  for (size_t i = 0; i < v->size(); ++i) {
    if (mask[i]) {
      mx = std::max(mx, (*v)[i]);
      any = true;
    }
  }
  if (!any) return Status::Internal("masked softmax with empty mask");
  double sum = 0.0;
  for (size_t i = 0; i < v->size(); ++i) {
    if (mask[i]) {
      (*v)[i] = std::exp((*v)[i] - mx);
      sum += (*v)[i];
    } else {
      (*v)[i] = 0.f;
    }
  }
  // An all--inf masked row makes mx = -inf, every exp(x - mx) NaN and the
  // partition sum NaN; a single -inf with mx finite can still underflow the
  // sum to zero. Either way dividing would poison the distribution, so the
  // serving path gets a structured error instead of a crash.
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    return Status::Internal("masked softmax with degenerate logits (sum=" +
                            std::to_string(sum) + ")");
  }
  for (size_t i = 0; i < v->size(); ++i) {
    (*v)[i] = static_cast<float>((*v)[i] / sum);
  }
  return Status::Ok();
}

Status TryCompactSoftmaxInPlace(float* v, size_t n) {
  if (n == 0) return Status::Internal("masked softmax with empty mask");
  float mx = -1e30f;
  for (size_t i = 0; i < n; ++i) mx = std::max(mx, v[i]);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::exp(v[i] - mx);
    sum += v[i];
  }
  // Same degenerate-row contract as TryMaskedSoftmaxInPlace (see there).
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    return Status::Internal("masked softmax with degenerate logits (sum=" +
                            std::to_string(sum) + ")");
  }
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(v[i] / sum);
  }
  return Status::Ok();
}

void ParamSnapshot::Save(const std::vector<ParamTensor*>& params) {
  values_.clear();
  values_.reserve(params.size());
  for (const ParamTensor* p : params) values_.push_back(p->value);
}

bool ParamSnapshot::Restore(const std::vector<ParamTensor*>& params) const {
  if (values_.empty()) return false;
  LSG_CHECK(values_.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    LSG_CHECK(values_[i].size() == params[i]->value.size());
    params[i]->value = values_[i];
  }
  return true;
}

double ClipGradNorm(const std::vector<ParamTensor*>& params, double max_norm) {
  double sq = 0.0;
  for (const ParamTensor* p : params) {
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) {
      sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    float scale = static_cast<float>(max_norm / norm);
    for (ParamTensor* p : params) {
      float* g = p->grad.data();
      for (size_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace lsg
