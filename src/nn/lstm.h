#ifndef LEARNEDSQLGEN_NN_LSTM_H_
#define LEARNEDSQLGEN_NN_LSTM_H_

#include <vector>

#include "nn/matrix.h"

namespace lsg {

/// One LSTM cell with standard gates (input, forget, cell, output). Inputs
/// may be dense vectors or one-hot indices (the token encoding of §4.1);
/// the one-hot path touches only a single column of Wx in both passes.
class LstmCell {
 public:
  LstmCell(int input_dim, int hidden_dim, Rng* rng);

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

  /// Per-step activations retained for BPTT.
  struct Cache {
    int onehot = -1;               ///< one-hot index, or -1 for dense input
    std::vector<float> x;          ///< dense input (empty when one-hot)
    std::vector<float> h_prev, c_prev;
    std::vector<float> i, f, g, o; ///< post-activation gates
    std::vector<float> c, h;
  };

  /// Dense-input step.
  void Forward(const float* x, const float* h_prev, const float* c_prev,
               Cache* cache) const;

  /// One-hot-input step (x = e_idx).
  void ForwardOneHot(int idx, const float* h_prev, const float* c_prev,
                     Cache* cache) const;

  /// Inference-only batched one-hot step over `batch` independent lanes.
  /// All panels are feature-major ([feature][lane], lane index contiguous):
  /// h_prev/c_prev/h_out/c_out are (H x batch), idx[b] is lane b's token.
  /// Each lane's arithmetic runs in the same per-element order as
  /// ForwardOneHot, so results are bitwise-identical to the scalar step.
  void ForwardOneHotBatch(const int* idx, const float* h_prev,
                          const float* c_prev, int batch, float* h_out,
                          float* c_out) const;

  /// Dense-input batched step (x_panel is input_dim x batch, feature-major).
  void ForwardBatch(const float* x_panel, const float* h_prev,
                    const float* c_prev, int batch, float* h_out,
                    float* c_out) const;

  /// Backward through one step. `dh`/`dc` are gradients flowing into this
  /// step's outputs; `dh_prev`/`dc_prev` receive (overwrite) gradients for
  /// the previous step; `dx_or_null` accumulates input gradients (skipped
  /// for one-hot inputs — tokens are not learnable).
  void Backward(const Cache& cache, const float* dh, const float* dc,
                float* dh_prev, float* dc_prev, float* dx_or_null);

  std::vector<ParamTensor*> Params() { return {&wx_, &wh_, &b_}; }
  std::vector<const ParamTensor*> Params() const { return {&wx_, &wh_, &b_}; }

 private:
  void Gates(const float* pre, Cache* cache) const;
  void GatesBatch(const float* pre, const float* c_prev, int batch,
                  float* h_out, float* c_out) const;

  int input_dim_;
  int hidden_dim_;
  ParamTensor wx_;  ///< (4H x In)
  ParamTensor wh_;  ///< (4H x H)
  ParamTensor b_;   ///< (4H x 1)
};

/// A stack of LSTM cells with inverted dropout between layers (the paper:
/// 2-layer LSTM, 30 cell units, dropout 0.3).
class LstmStack {
 public:
  LstmStack(int input_dim, int hidden_dim, int num_layers, float dropout,
            Rng* rng);

  int hidden_dim() const { return hidden_dim_; }
  int num_layers() const { return static_cast<int>(cells_.size()); }

  /// Recurrent state: h and c per layer.
  struct State {
    std::vector<std::vector<float>> h, c;
  };

  /// All caches for one timestep.
  struct StepCache {
    std::vector<LstmCell::Cache> layers;
    std::vector<std::vector<float>> dropout_mask;  ///< per inter-layer link
  };

  State InitialState() const;

  /// Advances one token. Updates `state` in place; fills `cache` when
  /// non-null (training); applies dropout only when `train` is true.
  /// Returns a pointer to the top layer's hidden vector inside `state`.
  const std::vector<float>& Step(int onehot_idx, State* state,
                                 StepCache* cache, bool train, Rng* rng);

  /// Dense-input variant (x has input_dim entries). Used when extra
  /// feature dimensions are appended to the one-hot token encoding
  /// (the AC-extend baseline of §7.4).
  const std::vector<float>& StepDense(const float* x, State* state,
                                      StepCache* cache, bool train, Rng* rng);

  /// Inference-only batched step: advances `batch` independent decode lanes
  /// one token each through a single matrix-matrix forward per layer.
  /// tokens[b] is lane b's one-hot input; states[b] is updated in place.
  /// No caches, no dropout (serving path). `top_h_panel` receives the top
  /// layer's hidden panel (H x batch, feature-major) for the output head.
  /// Per lane this is bitwise-identical to Step(..., train=false).
  void StepBatch(const int* tokens, State* const* states, int batch,
                 std::vector<float>* top_h_panel) const;

  /// Backpropagation through time over a full episode. `dtop[t]` is the
  /// loss gradient w.r.t. the top-layer hidden state after step t.
  void Backward(const std::vector<StepCache>& caches,
                const std::vector<std::vector<float>>& dtop);

  std::vector<ParamTensor*> Params();
  std::vector<const ParamTensor*> Params() const;

 private:
  const std::vector<float>& StepImpl(int onehot_idx, const float* x0,
                                     State* state, StepCache* cache,
                                     bool train, Rng* rng);

  int input_dim_;
  int hidden_dim_;
  float dropout_;
  std::vector<LstmCell> cells_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_LSTM_H_
