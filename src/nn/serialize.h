#ifndef LEARNEDSQLGEN_NN_SERIALIZE_H_
#define LEARNEDSQLGEN_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/matrix.h"

namespace lsg {

/// Writes parameter values to a binary file (magic + per-tensor
/// name/shape/data). Gradients are not saved.
Status SaveParams(const std::vector<const ParamTensor*>& params,
                  const std::string& path);
Status SaveParams(const std::vector<ParamTensor*>& params,
                  const std::string& path);

/// Loads parameter values saved by SaveParams. Names and shapes must match
/// the current parameter set exactly (model architecture is code, not data).
Status LoadParams(const std::vector<ParamTensor*>& params,
                  const std::string& path);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_SERIALIZE_H_
