#ifndef LEARNEDSQLGEN_NN_MATRIX_H_
#define LEARNEDSQLGEN_NN_MATRIX_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace lsg {

/// Dense row-major float matrix. The networks here are tiny (2-layer LSTM,
/// 30 units — the paper's architecture), so simple loops beat any BLAS
/// setup cost; correctness and clarity win.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), v_(rows * cols, 0.f) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return v_.size(); }

  float& at(int r, int c) { return v_[static_cast<size_t>(r) * cols_ + c]; }
  const float& at(int r, int c) const {
    return v_[static_cast<size_t>(r) * cols_ + c];
  }

  float* data() { return v_.data(); }
  const float* data() const { return v_.data(); }

  void Zero() { std::fill(v_.begin(), v_.end(), 0.f); }

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }

  /// Gaussian init with the given stddev.
  static Matrix Randn(int rows, int cols, float stddev, Rng* rng);

  /// Xavier/Glorot-scaled init: stddev = sqrt(2 / (fan_in + fan_out)).
  static Matrix Xavier(int rows, int cols, Rng* rng);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> v_;
};

/// A learnable tensor: value plus accumulated gradient.
struct ParamTensor {
  std::string name;
  Matrix value;
  Matrix grad;

  ParamTensor() = default;
  ParamTensor(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(Matrix::Zeros(value.rows(), value.cols())) {}
};

/// y = W x  (y: rows, x: cols).
void MatVec(const Matrix& w, const float* x, float* y);

/// y += W x.
void MatVecAccum(const Matrix& w, const float* x, float* y);

/// Batched matrix-matrix product over a feature-major activation panel:
/// Y = W X, where X packs `batch` activation vectors lane-interleaved
/// (x_panel[j * batch + b] is feature j of lane b) and Y has the same
/// layout over rows (y_panel[i * batch + b]). The lane-contiguous layout
/// makes the inner loop a stride-1 autovectorizable accumulate, while each
/// lane's per-row sum still runs in ascending-j order — so every lane is
/// bitwise-identical to a MatVec over its own vector. batch == 1 delegates
/// to MatVec, which stays the differential oracle for the blocked path.
void MatMat(const Matrix& w, const float* x_panel, int batch, float* y_panel);

/// Y += W X, same panel layout as MatMat. The per-row tile sum is computed
/// first and added once, matching MatVecAccum's compute-then-add order.
void MatMatAccum(const Matrix& w, const float* x_panel, int batch,
                 float* y_panel);

/// dx += W^T dy.
void MatTVecAccum(const Matrix& w, const float* dy, float* dx);

/// dW += dy x^T (outer product accumulate).
void OuterAccum(Matrix* dw, const float* dy, const float* x);

/// Numerically stable in-place softmax.
void SoftmaxInPlace(std::vector<float>* v);

/// Masked softmax: entries with mask==0 get probability 0. Requires at
/// least one unmasked entry and a non-degenerate row; aborts otherwise.
void MaskedSoftmaxInPlace(std::vector<float>* v,
                          const std::vector<uint8_t>& mask);

/// Non-aborting masked softmax for the serving path: an empty mask or a
/// degenerate logit row (all masked entries -inf / overflowed, so the
/// partition sum is zero or non-finite) comes back as kInternal instead of
/// taking the whole process down. On success the result is bitwise
/// identical to MaskedSoftmaxInPlace; on error `v` is left unspecified.
Status TryMaskedSoftmaxInPlace(std::vector<float>* v,
                               const std::vector<uint8_t>& mask);

/// TryMaskedSoftmaxInPlace over an already-compacted logit span: `v` holds
/// only the masked entries, in ascending index order. The max / exp /
/// partition-sum / divide sequence touches the same values in the same
/// order as the masked form (unmasked entries there are exact zeros that
/// never enter the sums), so the resulting probabilities and the Status on
/// degenerate rows are bitwise-identical. n == 0 is the empty-mask error.
Status TryCompactSoftmaxInPlace(float* v, size_t n);

/// Rescales all gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<ParamTensor*>& params, double max_norm);

/// In-memory checkpoint of a parameter set (keep-best-policy snapshots).
class ParamSnapshot {
 public:
  /// Copies the current values.
  void Save(const std::vector<ParamTensor*>& params);

  /// Writes the saved values back; returns false if nothing was saved.
  /// Shapes must match the saved set.
  bool Restore(const std::vector<ParamTensor*>& params) const;

  bool empty() const { return values_.empty(); }

 private:
  std::vector<Matrix> values_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_MATRIX_H_
