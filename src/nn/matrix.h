#ifndef LEARNEDSQLGEN_NN_MATRIX_H_
#define LEARNEDSQLGEN_NN_MATRIX_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace lsg {

/// Dense row-major float matrix. The networks here are tiny (2-layer LSTM,
/// 30 units — the paper's architecture), so simple loops beat any BLAS
/// setup cost; correctness and clarity win.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), v_(rows * cols, 0.f) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return v_.size(); }

  float& at(int r, int c) { return v_[static_cast<size_t>(r) * cols_ + c]; }
  const float& at(int r, int c) const {
    return v_[static_cast<size_t>(r) * cols_ + c];
  }

  float* data() { return v_.data(); }
  const float* data() const { return v_.data(); }

  void Zero() { std::fill(v_.begin(), v_.end(), 0.f); }

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }

  /// Gaussian init with the given stddev.
  static Matrix Randn(int rows, int cols, float stddev, Rng* rng);

  /// Xavier/Glorot-scaled init: stddev = sqrt(2 / (fan_in + fan_out)).
  static Matrix Xavier(int rows, int cols, Rng* rng);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> v_;
};

/// A learnable tensor: value plus accumulated gradient.
struct ParamTensor {
  std::string name;
  Matrix value;
  Matrix grad;

  ParamTensor() = default;
  ParamTensor(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(Matrix::Zeros(value.rows(), value.cols())) {}
};

/// y = W x  (y: rows, x: cols).
void MatVec(const Matrix& w, const float* x, float* y);

/// y += W x.
void MatVecAccum(const Matrix& w, const float* x, float* y);

/// dx += W^T dy.
void MatTVecAccum(const Matrix& w, const float* dy, float* dx);

/// dW += dy x^T (outer product accumulate).
void OuterAccum(Matrix* dw, const float* dy, const float* x);

/// Numerically stable in-place softmax.
void SoftmaxInPlace(std::vector<float>* v);

/// Masked softmax: entries with mask==0 get probability 0. Requires at
/// least one unmasked entry.
void MaskedSoftmaxInPlace(std::vector<float>* v,
                          const std::vector<uint8_t>& mask);

/// Rescales all gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<ParamTensor*>& params, double max_norm);

/// In-memory checkpoint of a parameter set (keep-best-policy snapshots).
class ParamSnapshot {
 public:
  /// Copies the current values.
  void Save(const std::vector<ParamTensor*>& params);

  /// Writes the saved values back; returns false if nothing was saved.
  /// Shapes must match the saved set.
  bool Restore(const std::vector<ParamTensor*>& params) const;

  bool empty() const { return values_.empty(); }

 private:
  std::vector<Matrix> values_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_MATRIX_H_
