#include "nn/dropout.h"

namespace lsg {

void Dropout::Forward(std::vector<float>* x, std::vector<float>* mask,
                      bool train, Rng* rng) const {
  if (!train || p_ <= 0.f) {
    if (mask != nullptr) mask->clear();
    return;
  }
  const float keep = 1.f - p_;
  if (mask != nullptr) mask->resize(x->size());
  for (size_t i = 0; i < x->size(); ++i) {
    float m = rng->Bernoulli(keep) ? 1.f / keep : 0.f;
    (*x)[i] *= m;
    if (mask != nullptr) (*mask)[i] = m;
  }
}

void Dropout::Backward(const std::vector<float>& mask,
                       std::vector<float>* dx) {
  if (mask.empty()) return;
  for (size_t i = 0; i < dx->size(); ++i) (*dx)[i] *= mask[i];
}

}  // namespace lsg
