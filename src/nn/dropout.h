#ifndef LEARNEDSQLGEN_NN_DROPOUT_H_
#define LEARNEDSQLGEN_NN_DROPOUT_H_

#include <vector>

#include "common/random.h"

namespace lsg {

/// Inverted dropout: at train time each unit is zeroed with probability p
/// and survivors are scaled by 1/(1-p); at inference it is the identity.
class Dropout {
 public:
  explicit Dropout(float p) : p_(p) {}

  float p() const { return p_; }

  /// Applies dropout in place and records the multiplicative mask.
  void Forward(std::vector<float>* x, std::vector<float>* mask, bool train,
               Rng* rng) const;

  /// Routes gradients through the recorded mask.
  static void Backward(const std::vector<float>& mask, std::vector<float>* dx);

 private:
  float p_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_NN_DROPOUT_H_
