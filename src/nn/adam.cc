#include "nn/adam.h"

#include <cmath>

namespace lsg {

Adam::Adam(std::vector<ParamTensor*> params, float lr, float beta1,
           float beta2, float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamTensor* p : params_) {
    m_.push_back(Matrix::Zeros(p->value.rows(), p->value.cols()));
    v_.push_back(Matrix::Zeros(p->value.rows(), p->value.cols()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ParamTensor* p = params_[i];
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const size_t n = p->value.size();
    for (size_t k = 0; k < n; ++k) {
      m[k] = beta1_ * m[k] + (1.f - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.f - beta2_) * g[k] * g[k];
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      g[k] = 0.f;
    }
  }
}

void Adam::ZeroGrad() {
  for (ParamTensor* p : params_) p->grad.Zero();
}

}  // namespace lsg
