#include "nn/linear.h"

namespace lsg {

Linear::Linear(int input_dim, int output_dim, Rng* rng)
    : w_("linear.w", Matrix::Xavier(output_dim, input_dim, rng)),
      b_("linear.b", Matrix::Zeros(output_dim, 1)) {}

void Linear::Forward(const float* x, float* y) const {
  MatVec(w_.value, x, y);
  const float* b = b_.value.data();
  for (int i = 0; i < w_.value.rows(); ++i) y[i] += b[i];
}

void Linear::Backward(const float* x, const float* dy, float* dx_or_null) {
  OuterAccum(&w_.grad, dy, x);
  float* db = b_.grad.data();
  for (int i = 0; i < w_.value.rows(); ++i) db[i] += dy[i];
  if (dx_or_null != nullptr) MatTVecAccum(w_.value, dy, dx_or_null);
}

}  // namespace lsg
