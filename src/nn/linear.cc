#include "nn/linear.h"

namespace lsg {

Linear::Linear(int input_dim, int output_dim, Rng* rng)
    : w_("linear.w", Matrix::Xavier(output_dim, input_dim, rng)),
      b_("linear.b", Matrix::Zeros(output_dim, 1)) {}

void Linear::Forward(const float* x, float* y) const {
  MatVec(w_.value, x, y);
  const float* b = b_.value.data();
  for (int i = 0; i < w_.value.rows(); ++i) y[i] += b[i];
}

void Linear::ForwardBatch(const float* x_panel, int batch,
                          float* y_panel) const {
  MatMat(w_.value, x_panel, batch, y_panel);
  const float* b = b_.value.data();
  const int rows = w_.value.rows();
  for (int i = 0; i < rows; ++i) {
    float* ys = y_panel + static_cast<size_t>(i) * batch;
    for (int bb = 0; bb < batch; ++bb) ys[bb] += b[i];
  }
}

void Linear::ForwardRows(const float* x, int x_stride, const int* rows,
                         int nrows, float* y) const {
  const int cols = w_.value.cols();
  const float* wd = w_.value.data();
  const float* bias = b_.value.data();
  for (int k = 0; k < nrows; ++k) {
    const int i = rows[k];
    const float* row = wd + static_cast<size_t>(i) * cols;
    float acc = 0.f;
    for (int j = 0; j < cols; ++j) {
      acc += row[j] * x[static_cast<size_t>(j) * x_stride];
    }
    y[k] = acc + bias[i];
  }
}

void Linear::Backward(const float* x, const float* dy, float* dx_or_null) {
  OuterAccum(&w_.grad, dy, x);
  float* db = b_.grad.data();
  for (int i = 0; i < w_.value.rows(); ++i) db[i] += dy[i];
  if (dx_or_null != nullptr) MatTVecAccum(w_.value, dy, dx_or_null);
}

}  // namespace lsg
