#include "optimizer/cardinality_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "exec/expression.h"
#include "obs/metrics_registry.h"

namespace lsg {
namespace {

// Fallback selectivity when the comparison constant is unknown (e.g. a
// scalar subquery whose value cannot be estimated). Operator-dependent,
// PostgreSQL-style: equality is far more selective than a range.
double DefaultComparisonSelectivity(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return 0.005;
    case CompareOp::kNe:
      return 1.0 - 0.005;
    default:
      return 0.33;  // default inequality selectivity
  }
}

}  // namespace

CardinalityEstimator::CardinalityEstimator(const Database* db,
                                           const DatabaseStats* stats)
    : db_(db), stats_(stats) {
  LSG_CHECK(db != nullptr && stats != nullptr);
}

double CardinalityEstimator::JoinAppendRows(const std::vector<int>& tables,
                                            size_t chain_len, double rows,
                                            double* base_rows) const {
  const Catalog& cat = db_->catalog();
  const int new_ti = tables[chain_len];
  double new_rows = static_cast<double>(stats_->table_rows[new_ti]);
  if (base_rows != nullptr) *base_rows += new_rows;
  // Find the FK edge into the chain and estimate with the standard
  // |R| * |S| / max(ndv(a), ndv(b)) formula.
  double ndv_a = 1.0, ndv_b = 1.0;
  bool found = false;
  for (size_t j = 0; j < chain_len; ++j) {
    const int prev = tables[j];
    for (const ForeignKey& fk :
         cat.JoinEdges(cat.table(prev).name(), cat.table(new_ti).name())) {
      const bool new_is_from = fk.from_table == cat.table(new_ti).name();
      const std::string& new_col = new_is_from ? fk.from_column : fk.to_column;
      const std::string& old_col = new_is_from ? fk.to_column : fk.from_column;
      int nc = cat.table(new_ti).FindColumn(new_col);
      int oc = cat.table(prev).FindColumn(old_col);
      ndv_a = std::max<double>(1.0, static_cast<double>(
                                        stats_->columns[new_ti][nc].ndv));
      ndv_b = std::max<double>(
          1.0, static_cast<double>(stats_->columns[prev][oc].ndv));
      found = true;
      break;
    }
    if (found) break;
  }
  if (!found) {
    // Cross join (unreachable under the FSM); cap to avoid runaway —
    // long chains would otherwise overflow to inf and poison rewards and
    // memoized feedback entries.
    rows = std::min(rows * new_rows, kMaxJoinRows);
  } else {
    rows = rows * new_rows / std::max(ndv_a, ndv_b);
  }
  return rows;
}

double CardinalityEstimator::JoinChainRows(const std::vector<int>& tables,
                                           EstimateDetail* detail) const {
  if (tables.empty()) return 0.0;
  double base = static_cast<double>(stats_->table_rows[tables[0]]);
  double rows = base;
  for (size_t i = 1; i < tables.size(); ++i) {
    rows = JoinAppendRows(tables, i, rows, &base);
  }
  if (detail != nullptr) {
    detail->base_rows += base;
    detail->join_output += rows;
  }
  return rows;
}

Value CardinalityEstimator::EstimateScalar(const SelectQuery& q) const {
  if (q.items.empty()) return Value::Null();
  const SelectItem& item = q.items[0];
  EstimateDetail detail;
  double rows = EstimateSelect(q, &detail);
  (void)rows;
  // The subquery collapses to one row; estimate its aggregate from the
  // aggregated column's stats, scaled by the subquery's WHERE selectivity.
  const ColumnStats& cs = stats_->at(item.column);
  double input_rows = detail.after_where;
  switch (item.agg) {
    case AggFunc::kMax:
      return Value(cs.max);
    case AggFunc::kMin:
      return Value(cs.min);
    case AggFunc::kAvg:
      return Value(cs.mean);
    case AggFunc::kSum:
      return Value(cs.mean * input_rows);
    case AggFunc::kCount:
      return Value(input_rows);
    case AggFunc::kNone:
      // Bare column scalar subquery: use the mean as a representative value.
      return IsNumeric(cs.type) ? Value(cs.mean) : Value::Null();
  }
  return Value::Null();
}

double CardinalityEstimator::PredicateSelectivity(
    const Predicate& p, EstimateDetail* detail) const {
  switch (p.kind) {
    case PredicateKind::kValue: {
      const ColumnStats& cs = stats_->at(p.column);
      return cs.Selectivity(p.op, p.value);
    }
    case PredicateKind::kScalarSub: {
      EstimateDetail sub_detail;
      double sub_rows = EstimateSelect(*p.subquery, &sub_detail);
      (void)sub_rows;
      if (detail != nullptr) {
        detail->subquery_cost_rows += sub_detail.base_rows +
                                      sub_detail.join_output +
                                      sub_detail.subquery_cost_rows;
      }
      Value scalar = EstimateScalar(*p.subquery);
      if (scalar.is_null()) return DefaultComparisonSelectivity(p.op);
      const ColumnStats& cs = stats_->at(p.column);
      return cs.Selectivity(p.op, scalar);
    }
    case PredicateKind::kInSub: {
      EstimateDetail sub_detail;
      double sub_rows = EstimateSelect(*p.subquery, &sub_detail);
      if (detail != nullptr) {
        detail->subquery_cost_rows += sub_detail.base_rows +
                                      sub_detail.join_output +
                                      sub_detail.subquery_cost_rows;
      }
      const ColumnStats& outer = stats_->at(p.column);
      double outer_ndv = std::max<double>(1.0, static_cast<double>(outer.ndv));
      double sub_distinct = sub_rows;
      if (!p.subquery->items.empty()) {
        const ColumnStats& inner = stats_->at(p.subquery->items[0].column);
        sub_distinct =
            std::min(sub_rows, static_cast<double>(std::max<uint64_t>(1, inner.ndv)));
      }
      // Containment: the matched fraction of the outer domain.
      return std::clamp(sub_distinct / outer_ndv, 0.0, 1.0);
    }
    case PredicateKind::kExistsSub: {
      EstimateDetail sub_detail;
      double sub_rows = EstimateSelect(*p.subquery, &sub_detail);
      if (detail != nullptr) {
        detail->subquery_cost_rows += sub_detail.base_rows +
                                      sub_detail.join_output +
                                      sub_detail.subquery_cost_rows;
      }
      // Uncorrelated EXISTS is all-or-nothing; smooth the boundary so the
      // estimator stays differentiable-ish for reward shaping.
      double sel = std::clamp(sub_rows, 0.0, 1.0);
      return p.negated ? 1.0 - sel : sel;
    }
    case PredicateKind::kLike: {
      if (!p.value.is_string()) return 0.1;
      // Data-driven estimate: match the pattern against the MCV list and
      // assume a small default rate for the non-MCV remainder (similar in
      // spirit to PostgreSQL's pattern selectivity).
      const ColumnStats& cs = stats_->at(p.column);
      const std::string& pattern = p.value.as_string();
      double mcv_mass = 0.0, matched = 0.0;
      for (size_t i = 0; i < cs.mcv_values.size(); ++i) {
        mcv_mass += cs.mcv_freqs[i];
        if (cs.mcv_values[i].is_string() &&
            LikeMatch(cs.mcv_values[i].as_string(), pattern)) {
          matched += cs.mcv_freqs[i];
        }
      }
      double rest = std::max(0.0, 1.0 - mcv_mass);
      return std::clamp(matched + 0.05 * rest, 0.0, 1.0);
    }
  }
  return 1.0;
}

double CardinalityEstimator::WhereSelectivity(const WhereClause& where,
                                              EstimateDetail* detail) const {
  if (where.empty()) return 1.0;
  std::vector<double> sels;
  sels.reserve(where.predicates.size());
  for (const Predicate& p : where.predicates) {
    sels.push_back(PredicateSelectivity(p, detail));
  }
  return CombineSelectivities(sels, where.connectors);
}

double CardinalityEstimator::EstimateSelect(const SelectQuery& q,
                                            EstimateDetail* detail) const {
  EstimateDetail local;
  EstimateDetail* d = detail != nullptr ? detail : &local;
  double rows = JoinChainRows(q.tables, d);
  double sel = WhereSelectivity(q.where, d);
  double filtered = rows * sel;
  d->after_where = filtered;
  double out = SelectOutputRows(q, filtered);
  d->output_rows = out;
  return out;
}

double CardinalityEstimator::SelectOutputRows(const SelectQuery& q,
                                              double filtered) const {
  if (!q.group_by.empty()) {
    // Distinct-product bound, capped by the input size.
    double ndv_prod = 1.0;
    for (const ColumnRef& c : q.group_by) {
      ndv_prod *= std::max<double>(
          1.0, static_cast<double>(stats_->at(c).ndv));
      if (ndv_prod > 1e15) break;
    }
    double out = std::min(filtered, ndv_prod);
    if (q.having.has_value()) {
      // Heuristic HAVING selectivity (eq is more selective than ranges).
      out *= (q.having->op == CompareOp::kEq) ? 0.1 : 0.4;
    }
    return out;
  }
  if (q.HasAggregate()) return 1.0;
  return filtered;
}

double CardinalityEstimator::EstimateCardinality(const QueryAst& ast) const {
  obs::ScopedHistogramTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("opt.estimate_ns")
          : nullptr);
  switch (ast.type) {
    case QueryType::kSelect:
      if (ast.select == nullptr) return 0.0;
      return EstimateSelect(*ast.select, nullptr);
    case QueryType::kInsert:
      if (ast.insert == nullptr) return 0.0;
      if (ast.insert->source != nullptr) {
        return EstimateSelect(*ast.insert->source, nullptr);
      }
      return 1.0;
    case QueryType::kUpdate: {
      if (ast.update == nullptr) return 0.0;
      double rows =
          static_cast<double>(stats_->table_rows[ast.update->table_idx]);
      return rows * WhereSelectivity(ast.update->where, nullptr);
    }
    case QueryType::kDelete: {
      if (ast.del == nullptr) return 0.0;
      double rows = static_cast<double>(stats_->table_rows[ast.del->table_idx]);
      return rows * WhereSelectivity(ast.del->where, nullptr);
    }
  }
  return 0.0;
}

}  // namespace lsg
