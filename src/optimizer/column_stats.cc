#include "optimizer/column_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace lsg {

double ColumnStats::EqSelectivity(const Value& v) const {
  if (row_count == 0 || ndv == 0) return 0.0;
  const double non_null =
      static_cast<double>(row_count - null_count) / static_cast<double>(row_count);
  // MCV hit: exact frequency.
  for (size_t i = 0; i < mcv_values.size(); ++i) {
    if (mcv_values[i] == v) return mcv_freqs[i] * non_null;
  }
  // Out-of-range numeric constants match nothing.
  if (v.is_numeric() && IsNumeric(type)) {
    double x = v.AsNumber();
    if (x < min || x > max) return 0.0;
  }
  // Uniformity over the non-MCV remainder.
  double mcv_mass = 0.0;
  for (double f : mcv_freqs) mcv_mass += f;
  double rest_ndv =
      static_cast<double>(ndv) - static_cast<double>(mcv_values.size());
  if (rest_ndv < 1.0) rest_ndv = 1.0;
  double sel = (1.0 - mcv_mass) / rest_ndv;
  if (sel < 0.0) sel = 0.0;
  return sel * non_null;
}

double ColumnStats::LtSelectivity(const Value& v) const {
  if (row_count == 0 || ndv == 0) return 0.0;
  const double non_null =
      static_cast<double>(row_count - null_count) / static_cast<double>(row_count);
  if (IsNumeric(type) && v.is_numeric() && histogram_bounds.size() >= 2) {
    double x = v.AsNumber();
    if (x <= histogram_bounds.front()) return 0.0;
    if (x > histogram_bounds.back()) return non_null;
    if (x == histogram_bounds.back()) {
      // x equals the histogram max. Interpolation would claim every
      // non-null row is strictly below it, contradicting EqSelectivity(x)
      // > 0 (so `<=` could exceed the non-null ceiling and `>` could go
      // negative before clamping). Everything except the rows equal to
      // the max sits strictly below it.
      return std::max(0.0, non_null - EqSelectivity(v));
    }
    // Binary-search the bucket (the linear scan this replaces was
    // O(buckets) on the estimator's hottest path), then interpolate
    // linearly inside it. lower_bound yields the first bound >= x, which
    // preserves strict-< semantics when x lands exactly on a bound: with
    // equi-depth bounds (possibly duplicated under skew) the first
    // occurrence marks the quantile where x begins, so sel = first_ge/B.
    size_t b = static_cast<size_t>(
        std::lower_bound(histogram_bounds.begin() + 1, histogram_bounds.end(),
                         x) -
        histogram_bounds.begin());
    double lo = histogram_bounds[b - 1];
    double hi = histogram_bounds[b];
    double frac_in_bucket = hi > lo ? (x - lo) / (hi - lo) : 0.5;
    double buckets = static_cast<double>(histogram_bounds.size() - 1);
    double sel = (static_cast<double>(b - 1) + frac_in_bucket) / buckets;
    return std::clamp(sel, 0.0, 1.0) * non_null;
  }
  // Non-numeric: rank of v within the MCV list as a coarse CDF.
  if (!mcv_values.empty()) {
    double below = 0.0;
    for (size_t i = 0; i < mcv_values.size(); ++i) {
      if (mcv_values[i].Compare(v) < 0) below += mcv_freqs[i];
    }
    return std::clamp(below, 0.0, 1.0) * non_null;
  }
  return 0.33 * non_null;  // default inequality selectivity
}

double ColumnStats::Selectivity(CompareOp op, const Value& v) const {
  double eq = EqSelectivity(v);
  double lt = LtSelectivity(v);
  const double non_null =
      row_count == 0
          ? 0.0
          : static_cast<double>(row_count - null_count) /
                static_cast<double>(row_count);
  double sel = 0.0;
  switch (op) {
    case CompareOp::kEq:
      sel = eq;
      break;
    case CompareOp::kNe:
      sel = non_null - eq;
      break;
    case CompareOp::kLt:
      sel = lt;
      break;
    case CompareOp::kLe:
      sel = lt + eq;
      break;
    case CompareOp::kGt:
      sel = non_null - lt - eq;
      break;
    case CompareOp::kGe:
      sel = non_null - lt;
      break;
    case CompareOp::kNumOps:
      break;
  }
  return std::clamp(sel, 0.0, 1.0);
}

ColumnStats StatsCollector::Analyze(const Column& column) const {
  ColumnStats s;
  s.type = column.type();
  s.row_count = column.size();
  s.null_count = column.size() - column.CountNonNull();

  std::vector<Value> distinct = column.DistinctValues();
  s.ndv = distinct.size();
  if (distinct.empty()) return s;

  // Frequency map for MCVs.
  std::unordered_map<Value, uint64_t, ValueHash> freq;
  freq.reserve(s.ndv);
  std::vector<double> numeric;
  numeric.reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    if (column.IsNull(r)) continue;
    Value v = column.GetValue(r);
    ++freq[v];
    if (v.is_numeric()) numeric.push_back(v.AsNumber());
  }
  const double non_null_rows = static_cast<double>(column.size() - s.null_count);

  if (!numeric.empty()) {
    std::sort(numeric.begin(), numeric.end());
    s.min = numeric.front();
    s.max = numeric.back();
    double sum = 0.0;
    for (double x : numeric) sum += x;
    s.mean = sum / static_cast<double>(numeric.size());
    // Equi-depth histogram over the sorted values.
    int buckets = histogram_buckets_;
    if (static_cast<size_t>(buckets) > numeric.size()) {
      buckets = static_cast<int>(numeric.size());
    }
    if (buckets >= 1) {
      s.histogram_bounds.resize(buckets + 1);
      for (int b = 0; b <= buckets; ++b) {
        size_t idx = static_cast<size_t>(
            std::min<double>(static_cast<double>(numeric.size() - 1),
                             std::round(static_cast<double>(b) *
                                        static_cast<double>(numeric.size() - 1) /
                                        static_cast<double>(buckets))));
        s.histogram_bounds[b] = numeric[idx];
      }
    }
  }

  // MCV list: top-k by frequency (always useful for eq selectivity; for
  // categoricals it is the primary statistic).
  std::vector<std::pair<Value, uint64_t>> by_freq(freq.begin(), freq.end());
  std::sort(by_freq.begin(), by_freq.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  size_t k = std::min<size_t>(mcv_size_, by_freq.size());
  for (size_t i = 0; i < k; ++i) {
    s.mcv_values.push_back(by_freq[i].first);
    s.mcv_freqs.push_back(static_cast<double>(by_freq[i].second) /
                          non_null_rows);
  }
  return s;
}

DatabaseStats DatabaseStats::Collect(const Database& db,
                                     const StatsCollector& collector) {
  DatabaseStats stats;
  stats.columns.resize(db.num_tables());
  stats.table_rows.resize(db.num_tables());
  for (size_t ti = 0; ti < db.num_tables(); ++ti) {
    const Table& t = db.tables()[ti];
    stats.table_rows[ti] = t.num_rows();
    stats.columns[ti].reserve(t.num_columns());
    for (size_t ci = 0; ci < t.num_columns(); ++ci) {
      stats.columns[ti].push_back(collector.Analyze(t.column(ci)));
    }
  }
  return stats;
}

}  // namespace lsg
