#ifndef LEARNEDSQLGEN_OPTIMIZER_FEEDBACK_CACHE_H_
#define LEARNEDSQLGEN_OPTIMIZER_FEEDBACK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "optimizer/cost_model.h"
#include "sql/ast.h"

namespace lsg {

/// Which feedback metric an entry memoizes. Both metrics are pure functions
/// of the AST (given immutable stats), so they share one key space salted
/// by kind.
enum class FeedbackKind { kCardinality = 0, kCost = 1 };

/// Canonical structural fingerprint of a query AST: a 64-bit hash over the
/// query shape (type, table chain, select items, predicates including
/// nested subqueries, connectors, GROUP BY / HAVING / ORDER BY, DML
/// fields) and every literal value. Two ASTs that would render to the same
/// SQL hash equal; any structural or literal difference changes the hash.
uint64_t AstFingerprint(const QueryAst& ast);
uint64_t AstFingerprint(const SelectQuery& q);

/// Sharded, thread-safe LRU cache memoizing EstimateCardinality /
/// EstimateCost results across episodes and across service workers.
///
/// Invalidation-free by design: statistics are collected once per run and
/// never mutated, so a fingerprint's estimate can never go stale. The two
/// ways the underlying data *can* change both bypass the cache: the
/// true-execution feedback mode (measured, not estimated) and the fuzz
/// harness's DML apply/restore cycle (which snapshots and restores tables
/// around each episode). One cache serves one database — keys do not
/// include the catalog, so use `Options::key_salt` (or separate caches)
/// when several databases share a process.
///
/// Hit/miss/insertion/eviction counts are exact: they are maintained under
/// the owning shard's mutex, not as racy approximations. When LSG_OBS is
/// enabled they are additionally mirrored into the global metrics registry
/// as `opt.cache.{hits,misses,evictions}`.
class FeedbackCache {
 public:
  struct Options {
    size_t capacity = 1 << 16;  ///< max entries across all shards
    int shards = 16;            ///< rounded up to a power of two
    uint64_t key_salt = 0;      ///< distinguishes databases sharing a process
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
  };

  FeedbackCache();  // default Options
  explicit FeedbackCache(Options options);

  /// Cache key for `ast` under this cache's salt.
  uint64_t Key(const QueryAst& ast, FeedbackKind kind) const;

  /// Returns the memoized value, bumping it to most-recently-used.
  std::optional<double> Lookup(uint64_t key);

  /// Inserts (or refreshes) `key`, evicting the LRU entry of the owning
  /// shard when that shard is full.
  void Insert(uint64_t key, double value);

  /// Exact aggregate counters (sums the per-shard counts under their
  /// mutexes; a concurrent snapshot, not a stop-the-world one).
  Stats GetStats() const;

  /// Drops every entry; counters are preserved.
  void Clear();

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    uint64_t key;
    double value;
  };
  struct Shard {
    Mutex mu;
    std::list<Entry> lru LSG_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        LSG_GUARDED_BY(mu);
    uint64_t hits LSG_GUARDED_BY(mu) = 0;
    uint64_t misses LSG_GUARDED_BY(mu) = 0;
    uint64_t insertions LSG_GUARDED_BY(mu) = 0;
    uint64_t evictions LSG_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key) {
    // Keys are SplitMix64-finalized so the high bits are well mixed (the
    // hash map underneath consumes the low bits). shards_.size() is a
    // power of two <= 256.
    return *shards_[(key >> 56) & (shards_.size() - 1)];
  }

  uint64_t key_salt_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Incremental prefix estimator: per-episode running state that turns the
/// per-token feedback call from a full AST re-walk into an O(1) update.
///
/// The environment grows one query monotonically between Reset() calls
/// (tokens only append), so the join chain is a left fold whose running
/// value we keep, and every WHERE predicate except the last is frozen and
/// its selectivity (and nested-subquery work) memoized. Only the last
/// predicate — the one a new token can still be extending — is
/// re-estimated fresh each call; the cheap tail (GROUP BY / HAVING /
/// aggregate collapse, ORDER BY costing) is always recomputed.
///
/// Every arithmetic step mirrors CardinalityEstimator::EstimateSelect /
/// CostModel::SelectCost exactly (same operations in the same order), so
/// incremental results are bitwise identical to the full walk — asserted
/// by the `prefix-estimate` fuzz oracle and, under LSG_CHECK_INCREMENTAL,
/// cross-checked on every environment step.
class PrefixEstimator {
 public:
  /// `estimator` must outlive this object; `cost_model` may be null when
  /// only cardinalities are needed.
  PrefixEstimator(const CardinalityEstimator* estimator,
                  const CostModel* cost_model);

  /// Forgets all per-episode state. Call whenever the environment resets.
  void Reset();

  /// Estimated cardinality of the current prefix; equals
  /// `estimator->EstimateSelect(q, nullptr)` bitwise.
  double Cardinality(const SelectQuery& q);

  /// Estimated cost of the current prefix; equals
  /// `cost_model->SelectCost(q)` bitwise.
  double Cost(const SelectQuery& q);

 private:
  double ComputeSelect(const SelectQuery& q, EstimateDetail* d);

  const CardinalityEstimator* estimator_;
  const CostModel* cost_model_;

  // Running join-chain fold over q.tables[0..tables_done_).
  size_t tables_done_ = 0;
  double rows_ = 0.0;
  double base_rows_ = 0.0;
  // Memoized selectivity and nested-subquery row work for the frozen
  // predicates q.where.predicates[0..pred_sels_.size()).
  std::vector<double> pred_sels_;
  std::vector<double> pred_sub_rows_;
  std::vector<double> scratch_sels_;  // reused per call to avoid realloc
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_OPTIMIZER_FEEDBACK_CACHE_H_
