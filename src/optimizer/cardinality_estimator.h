#ifndef LEARNEDSQLGEN_OPTIMIZER_CARDINALITY_ESTIMATOR_H_
#define LEARNEDSQLGEN_OPTIMIZER_CARDINALITY_ESTIMATOR_H_

#include <memory>

#include "optimizer/column_stats.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace lsg {

/// Breakdown of an estimate used by the cost model: per-stage input sizes.
struct EstimateDetail {
  double base_rows = 0;       ///< rows scanned from base tables
  double join_output = 0;     ///< rows emitted by the join chain
  double after_where = 0;     ///< rows surviving WHERE
  double output_rows = 0;     ///< final result rows (groups / 1 / rows)
  double subquery_cost_rows = 0;  ///< Σ of work inside subqueries
};

/// Classic System-R style cardinality estimator: per-column histograms,
/// attribute independence for conjunctions, inclusion-exclusion for
/// disjunctions, ndv-based join estimation, distinct-product group-by
/// estimation. This is the "estimated cardinality computed by the cost
/// estimator of databases" that the paper uses as RL feedback (§3.2:
/// "Note that we do not use the real cardinality for the efficiency
/// issue").
class CardinalityEstimator {
 public:
  /// Ceiling on a join-chain estimate. Cross joins (no FK edge) multiply
  /// row counts directly and would otherwise overflow to inf across long
  /// chains, poisoning rewards and any memoized feedback.
  static constexpr double kMaxJoinRows = 1e15;

  /// `db` and `stats` must outlive the estimator.
  CardinalityEstimator(const Database* db, const DatabaseStats* stats);

  /// Estimated result cardinality of any query type (affected rows for DML).
  double EstimateCardinality(const QueryAst& ast) const;

  /// Estimate for a SELECT with stage-by-stage detail.
  double EstimateSelect(const SelectQuery& q, EstimateDetail* detail) const;

  /// Estimated selectivity (0..1) of one predicate over the given scope.
  double PredicateSelectivity(const Predicate& p,
                              EstimateDetail* detail) const;

  /// Estimated scalar value produced by a scalar subquery's aggregate item
  /// (MAX -> column max, AVG -> mean, SUM -> mean * rows, COUNT -> rows...).
  Value EstimateScalar(const SelectQuery& q) const;

  /// One step of the join-chain fold: joins `tables[chain_len]` into a
  /// chain already holding `tables[0..chain_len)` whose running estimate is
  /// `rows`; adds the new table's scan rows to `*base_rows`. This is the
  /// exact loop body of the full chain walk, exposed so the incremental
  /// PrefixEstimator reproduces it bitwise. Requires chain_len >= 1.
  double JoinAppendRows(const std::vector<int>& tables, size_t chain_len,
                        double rows, double* base_rows) const;

  /// Output rows of the SELECT tail (GROUP BY distinct-product, aggregate
  /// collapse, HAVING factor) given the rows surviving WHERE.
  double SelectOutputRows(const SelectQuery& q, double filtered) const;

  const DatabaseStats& stats() const { return *stats_; }

 private:
  double WhereSelectivity(const WhereClause& where,
                          EstimateDetail* detail) const;
  double JoinChainRows(const std::vector<int>& tables,
                       EstimateDetail* detail) const;

  const Database* db_;
  const DatabaseStats* stats_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_OPTIMIZER_CARDINALITY_ESTIMATOR_H_
