#ifndef LEARNEDSQLGEN_OPTIMIZER_EXPLAIN_H_
#define LEARNEDSQLGEN_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "optimizer/cardinality_estimator.h"
#include "optimizer/cost_model.h"
#include "sql/ast.h"

namespace lsg {

/// EXPLAIN-style plan rendering with the estimator's per-stage row counts
/// and the cost model's totals — the inspection tool a user reaches for
/// when a generated query's estimated metric looks surprising.
///
/// Example output:
///   Select  (est rows=30, est cost=4.1)
///     Scan lineitem  (rows=3000)
///     HashJoin orders  (est rows=3000)
///     Filter: 1 predicate(s)  (est rows=30)
///     Output: 2 column(s)
std::string Explain(const QueryAst& ast, const Catalog& catalog,
                    const CardinalityEstimator& estimator,
                    const CostModel& cost_model);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_OPTIMIZER_EXPLAIN_H_
