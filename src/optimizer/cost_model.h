#ifndef LEARNEDSQLGEN_OPTIMIZER_COST_MODEL_H_
#define LEARNEDSQLGEN_OPTIMIZER_COST_MODEL_H_

#include "exec/executor.h"
#include "optimizer/cardinality_estimator.h"

namespace lsg {

/// PostgreSQL-style cost constants (defaults mirror postgresql.conf).
struct CostConstants {
  double seq_page_cost = 1.0;
  double cpu_tuple_cost = 0.01;
  double cpu_operator_cost = 0.0025;
  double hash_build_cost_per_row = 0.015;
  double hash_probe_cost_per_row = 0.01;
  double group_cost_per_row = 0.02;
  double dml_write_cost_per_row = 1.0;
  double rows_per_page = 80.0;  ///< ~100B rows in 8KB pages
};

/// Optimizer cost model: plugs estimated (or measured) per-stage row counts
/// into scan/join/aggregate formulas. This is the "cost" metric of the
/// paper's constraints ("we can also allow users to specify the latency as
/// a constraint, but it is sensitive to the hardware environment, so we use
/// cost instead — like optimizers also use cost", §2.1 Remark 3).
class CostModel {
 public:
  explicit CostModel(const CardinalityEstimator* estimator,
                     CostConstants constants = CostConstants());

  /// Estimated execution cost of any query type.
  double EstimateCost(const QueryAst& ast) const;

  /// Cost of a SELECT from its estimate detail.
  double SelectCost(const SelectQuery& q) const;

  /// "True" cost: the same formulas applied to measured operator
  /// cardinalities from an actual execution (feedback ablation).
  double TrueCost(const ExecStats& stats, double output_rows) const;

  /// Cost formulas over an already-computed estimate breakdown. Public so
  /// the incremental PrefixEstimator can price a prefix from its running
  /// detail without re-walking the AST; `SelectCost` is this applied to a
  /// fresh full estimate.
  double CostFromDetail(const EstimateDetail& d, int num_predicates,
                        int num_joins, bool has_group, bool has_order) const;

  const CostConstants& constants() const { return constants_; }

 private:
  const CardinalityEstimator* estimator_;
  CostConstants constants_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_OPTIMIZER_COST_MODEL_H_
