#ifndef LEARNEDSQLGEN_OPTIMIZER_COLUMN_STATS_H_
#define LEARNEDSQLGEN_OPTIMIZER_COLUMN_STATS_H_

#include <vector>

#include "catalog/value.h"
#include "sql/token.h"
#include "storage/table.h"

namespace lsg {

/// Per-column statistics in the style of a DBMS ANALYZE pass: row/null/ndv
/// counts, numeric min/max/mean, an equi-depth histogram for numeric
/// columns and a most-common-values list for categorical/string columns.
struct ColumnStats {
  DataType type = DataType::kInt64;
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  uint64_t ndv = 0;  ///< number of distinct non-NULL values

  // Numeric summary (valid when type is numeric and ndv > 0).
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;

  /// Equi-depth histogram bounds: bounds[i]..bounds[i+1] holds ~1/B of the
  /// non-NULL rows. Size B+1 (empty for non-numeric columns).
  std::vector<double> histogram_bounds;

  /// Most common values with frequencies (fraction of non-NULL rows);
  /// populated for categorical/string columns (and small-ndv numerics).
  std::vector<Value> mcv_values;
  std::vector<double> mcv_freqs;

  /// Fraction of non-NULL rows equal to `v`.
  double EqSelectivity(const Value& v) const;

  /// Fraction of non-NULL rows strictly less than `v` (numeric only; for
  /// non-numerics falls back to a rank estimate over the MCV list).
  double LtSelectivity(const Value& v) const;

  /// Selectivity of `col op v` over all rows (NULLs never match).
  double Selectivity(CompareOp op, const Value& v) const;
};

/// ANALYZE: builds stats for every column of every table.
class StatsCollector {
 public:
  explicit StatsCollector(int histogram_buckets = 64, int mcv_size = 32)
      : histogram_buckets_(histogram_buckets), mcv_size_(mcv_size) {}

  ColumnStats Analyze(const Column& column) const;

 private:
  int histogram_buckets_;
  int mcv_size_;
};

/// All statistics for a database, indexed [table][column].
struct DatabaseStats {
  std::vector<std::vector<ColumnStats>> columns;
  std::vector<uint64_t> table_rows;

  const ColumnStats& at(const ColumnRef& ref) const {
    return columns[ref.table_idx][ref.column_idx];
  }

  /// Runs ANALYZE over the whole database.
  static DatabaseStats Collect(const Database& db,
                               const StatsCollector& collector = StatsCollector());
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_OPTIMIZER_COLUMN_STATS_H_
