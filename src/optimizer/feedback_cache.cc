#include "optimizer/feedback_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "exec/expression.h"
#include "obs/metrics_registry.h"

namespace lsg {
namespace {

constexpr uint64_t kFingerprintSeed = 0x4c53474643414348ull;  // "LSGFCACH"

inline uint64_t Mix(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ull));
}

inline uint64_t MixColumn(uint64_t h, const ColumnRef& c) {
  return Mix(h, (static_cast<uint64_t>(static_cast<uint32_t>(c.table_idx))
                 << 32) |
                    static_cast<uint32_t>(c.column_idx));
}

uint64_t HashSelect(uint64_t h, const SelectQuery& q);

uint64_t HashWhere(uint64_t h, const WhereClause& w) {
  h = Mix(h, w.predicates.size());
  for (const Predicate& p : w.predicates) {
    h = Mix(h, static_cast<uint64_t>(p.kind));
    h = MixColumn(h, p.column);
    h = Mix(h, static_cast<uint64_t>(p.op));
    h = Mix(h, p.negated ? 1 : 0);
    h = Mix(h, static_cast<uint64_t>(p.value.Hash()));
    if (p.subquery != nullptr) h = HashSelect(h, *p.subquery);
  }
  for (BoolConn c : w.connectors) h = Mix(h, static_cast<uint64_t>(c));
  return h;
}

uint64_t HashSelect(uint64_t h, const SelectQuery& q) {
  h = Mix(h, q.tables.size());
  for (int t : q.tables) h = Mix(h, static_cast<uint64_t>(t));
  h = Mix(h, q.items.size());
  for (const SelectItem& item : q.items) {
    h = Mix(h, static_cast<uint64_t>(item.agg));
    h = MixColumn(h, item.column);
  }
  h = HashWhere(h, q.where);
  h = Mix(h, q.group_by.size());
  for (const ColumnRef& c : q.group_by) h = MixColumn(h, c);
  h = Mix(h, q.having.has_value() ? 1 : 0);
  if (q.having.has_value()) {
    h = Mix(h, static_cast<uint64_t>(q.having->agg));
    h = MixColumn(h, q.having->column);
    h = Mix(h, static_cast<uint64_t>(q.having->op));
    h = Mix(h, static_cast<uint64_t>(q.having->value.Hash()));
  }
  h = Mix(h, q.order_by.size());
  for (const ColumnRef& c : q.order_by) h = MixColumn(h, c);
  return h;
}

}  // namespace

uint64_t AstFingerprint(const SelectQuery& q) {
  uint64_t h = Mix(kFingerprintSeed, static_cast<uint64_t>(QueryType::kSelect));
  return HashSelect(h, q);
}

uint64_t AstFingerprint(const QueryAst& ast) {
  uint64_t h = Mix(kFingerprintSeed, static_cast<uint64_t>(ast.type));
  switch (ast.type) {
    case QueryType::kSelect:
      if (ast.select != nullptr) h = HashSelect(h, *ast.select);
      break;
    case QueryType::kInsert:
      if (ast.insert != nullptr) {
        h = Mix(h, static_cast<uint64_t>(ast.insert->table_idx));
        h = Mix(h, ast.insert->values.size());
        for (const Value& v : ast.insert->values) {
          h = Mix(h, static_cast<uint64_t>(v.Hash()));
        }
        h = Mix(h, ast.insert->source != nullptr ? 1 : 0);
        if (ast.insert->source != nullptr) {
          h = HashSelect(h, *ast.insert->source);
        }
      }
      break;
    case QueryType::kUpdate:
      if (ast.update != nullptr) {
        h = Mix(h, static_cast<uint64_t>(ast.update->table_idx));
        h = MixColumn(h, ast.update->set_column);
        h = Mix(h, static_cast<uint64_t>(ast.update->set_value.Hash()));
        h = HashWhere(h, ast.update->where);
      }
      break;
    case QueryType::kDelete:
      if (ast.del != nullptr) {
        h = Mix(h, static_cast<uint64_t>(ast.del->table_idx));
        h = HashWhere(h, ast.del->where);
      }
      break;
  }
  return h;
}

FeedbackCache::FeedbackCache() : FeedbackCache(Options()) {}

FeedbackCache::FeedbackCache(Options options) : key_salt_(options.key_salt) {
  int want = std::max(1, options.shards);
  int bits = 0;
  while ((1 << bits) < want && bits < 8) ++bits;
  const int n = 1 << bits;
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  per_shard_capacity_ =
      std::max<size_t>(1, options.capacity / static_cast<size_t>(n));
}

uint64_t FeedbackCache::Key(const QueryAst& ast, FeedbackKind kind) const {
  // Final SplitMix64 keeps the top bits (shard selector) well mixed even
  // after salting.
  return SplitMix64(AstFingerprint(ast) ^ key_salt_ ^
                    (kind == FeedbackKind::kCost ? 0x9e3779b97f4a7c15ull : 0));
}

std::optional<double> FeedbackCache::Lookup(uint64_t key) {
  Shard& s = ShardFor(key);
  bool hit = false;
  double value = 0.0;
  {
    MutexLock lock(&s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      value = it->second->value;
      hit = true;
      ++s.hits;
    } else {
      ++s.misses;
    }
  }
  if (obs::Enabled()) {
    static obs::Counter& hits =
        obs::MetricsRegistry::Global().GetCounter("opt.cache.hits");
    static obs::Counter& misses =
        obs::MetricsRegistry::Global().GetCounter("opt.cache.misses");
    (hit ? hits : misses).Add(1);
  }
  if (hit) return value;
  return std::nullopt;
}

void FeedbackCache::Insert(uint64_t key, double value) {
  Shard& s = ShardFor(key);
  bool evicted = false;
  {
    MutexLock lock(&s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      // Refresh: estimates are deterministic so the value cannot differ,
      // but racing workers may insert the same key twice.
      it->second->value = value;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.push_front(Entry{key, value});
    s.index.emplace(key, s.lru.begin());
    ++s.insertions;
    if (s.index.size() > per_shard_capacity_) {
      s.index.erase(s.lru.back().key);
      s.lru.pop_back();
      ++s.evictions;
      evicted = true;
    }
  }
  if (evicted && obs::Enabled()) {
    static obs::Counter& evictions =
        obs::MetricsRegistry::Global().GetCounter("opt.cache.evictions");
    evictions.Add(1);
  }
}

FeedbackCache::Stats FeedbackCache::GetStats() const {
  Stats out;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += shard->index.size();
  }
  return out;
}

void FeedbackCache::Clear() {
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

PrefixEstimator::PrefixEstimator(const CardinalityEstimator* estimator,
                                 const CostModel* cost_model)
    : estimator_(estimator), cost_model_(cost_model) {
  LSG_CHECK(estimator != nullptr);
}

void PrefixEstimator::Reset() {
  tables_done_ = 0;
  rows_ = 0.0;
  base_rows_ = 0.0;
  pred_sels_.clear();
  pred_sub_rows_.clear();
}

double PrefixEstimator::ComputeSelect(const SelectQuery& q,
                                      EstimateDetail* d) {
  // Tokens only append between resets; if the query shrank the caller is
  // estimating a different AST — start over instead of returning garbage.
  if (q.tables.size() < tables_done_ ||
      q.where.predicates.size() < pred_sels_.size()) {
    Reset();
  }
  // Join chain: a left fold whose running value we keep. Each append is
  // the exact loop step of CardinalityEstimator::JoinChainRows.
  for (; tables_done_ < q.tables.size(); ++tables_done_) {
    if (tables_done_ == 0) {
      rows_ = static_cast<double>(estimator_->stats().table_rows[q.tables[0]]);
      base_rows_ += rows_;
    } else {
      rows_ = estimator_->JoinAppendRows(q.tables, tables_done_, rows_,
                                         &base_rows_);
    }
  }
  // Freeze every predicate that can no longer change (all but the last:
  // a new token can only extend the final predicate or open a new clause).
  const size_t np = q.where.predicates.size();
  while (pred_sels_.size() + 1 < np) {
    const Predicate& p = q.where.predicates[pred_sels_.size()];
    EstimateDetail pd;
    double s = estimator_->PredicateSelectivity(p, &pd);
    pred_sels_.push_back(s);
    pred_sub_rows_.push_back(pd.subquery_cost_rows);
  }
  double sel = 1.0;
  double sub_rows = 0.0;
  if (np > 0) {
    for (double r : pred_sub_rows_) sub_rows += r;
    scratch_sels_.assign(pred_sels_.begin(), pred_sels_.end());
    EstimateDetail pd;
    scratch_sels_.push_back(
        estimator_->PredicateSelectivity(q.where.predicates[np - 1], &pd));
    sub_rows += pd.subquery_cost_rows;
    sel = CombineSelectivities(scratch_sels_, q.where.connectors);
  }
  double filtered = rows_ * sel;
  d->base_rows = base_rows_;
  d->join_output = rows_;
  d->after_where = filtered;
  d->subquery_cost_rows = sub_rows;
  double out = estimator_->SelectOutputRows(q, filtered);
  d->output_rows = out;
  return out;
}

double PrefixEstimator::Cardinality(const SelectQuery& q) {
  EstimateDetail d;
  return ComputeSelect(q, &d);
}

double PrefixEstimator::Cost(const SelectQuery& q) {
  LSG_CHECK(cost_model_ != nullptr);
  EstimateDetail d;
  ComputeSelect(q, &d);
  return cost_model_->CostFromDetail(d, q.TotalPredicates(), q.NumJoins(),
                                     !q.group_by.empty(),
                                     !q.order_by.empty());
}

}  // namespace lsg
