#include "optimizer/cost_model.h"

#include <cmath>

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace lsg {

CostModel::CostModel(const CardinalityEstimator* estimator,
                     CostConstants constants)
    : estimator_(estimator), constants_(constants) {
  LSG_CHECK(estimator != nullptr);
}

double CostModel::CostFromDetail(const EstimateDetail& d, int num_predicates,
                                 int num_joins, bool has_group,
                                 bool has_order) const {
  const CostConstants& c = constants_;
  double cost = 0.0;
  // Sequential scans: IO pages + per-tuple CPU.
  cost += d.base_rows / c.rows_per_page * c.seq_page_cost;
  cost += d.base_rows * c.cpu_tuple_cost;
  // Hash joins: builds and probes approximated from the chain totals.
  if (num_joins > 0) {
    cost += d.base_rows * c.hash_build_cost_per_row;
    cost += d.join_output * c.hash_probe_cost_per_row;
  }
  // Predicate evaluation over the joined stream.
  cost += d.join_output * c.cpu_operator_cost *
          static_cast<double>(std::max(1, num_predicates));
  // Grouping.
  if (has_group) cost += d.after_where * c.group_cost_per_row;
  // Sorting (ORDER BY): n log n comparisons over the output.
  if (has_order && d.output_rows > 1.0) {
    cost += d.output_rows * std::log2(d.output_rows + 1.0) *
            c.cpu_operator_cost;
  }
  // Output materialization.
  cost += d.output_rows * c.cpu_tuple_cost;
  // Subquery work (already row-denominated).
  cost += d.subquery_cost_rows *
          (c.cpu_tuple_cost + c.seq_page_cost / c.rows_per_page);
  return cost;
}

double CostModel::SelectCost(const SelectQuery& q) const {
  EstimateDetail d;
  estimator_->EstimateSelect(q, &d);
  return CostFromDetail(d, q.TotalPredicates(), q.NumJoins(),
                        !q.group_by.empty(), !q.order_by.empty());
}

double CostModel::EstimateCost(const QueryAst& ast) const {
  obs::ScopedHistogramTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("opt.cost_ns")
          : nullptr);
  const CostConstants& c = constants_;
  switch (ast.type) {
    case QueryType::kSelect:
      if (ast.select == nullptr) return 0.0;
      return SelectCost(*ast.select);
    case QueryType::kInsert: {
      if (ast.insert == nullptr) return 0.0;
      if (ast.insert->source != nullptr) {
        double src_cost = SelectCost(*ast.insert->source);
        double rows = estimator_->EstimateSelect(*ast.insert->source, nullptr);
        return src_cost + rows * c.dml_write_cost_per_row;
      }
      return c.cpu_tuple_cost + c.dml_write_cost_per_row;
    }
    case QueryType::kUpdate: {
      if (ast.update == nullptr) return 0.0;
      double table_rows = static_cast<double>(
          estimator_->stats().table_rows[ast.update->table_idx]);
      double affected = estimator_->EstimateCardinality(ast);
      double scan = table_rows / c.rows_per_page * c.seq_page_cost +
                    table_rows * c.cpu_tuple_cost;
      return scan + affected * c.dml_write_cost_per_row;
    }
    case QueryType::kDelete: {
      if (ast.del == nullptr) return 0.0;
      double table_rows = static_cast<double>(
          estimator_->stats().table_rows[ast.del->table_idx]);
      double affected = estimator_->EstimateCardinality(ast);
      double scan = table_rows / c.rows_per_page * c.seq_page_cost +
                    table_rows * c.cpu_tuple_cost;
      return scan + affected * c.dml_write_cost_per_row;
    }
  }
  return 0.0;
}

double CostModel::TrueCost(const ExecStats& stats, double output_rows) const {
  const CostConstants& c = constants_;
  double cost = 0.0;
  cost += stats.rows_scanned / c.rows_per_page * c.seq_page_cost;
  cost += stats.rows_scanned * c.cpu_tuple_cost;
  cost += stats.rows_joined *
          (c.hash_build_cost_per_row + c.hash_probe_cost_per_row);
  cost += output_rows * c.cpu_tuple_cost;
  return cost;
}

}  // namespace lsg
