#include "optimizer/explain.h"

#include "common/string_util.h"
#include "sql/render.h"

namespace lsg {
namespace {

void ExplainSelect(const SelectQuery& q, const Catalog& catalog,
                   const CardinalityEstimator& est, const CostModel& cost,
                   int indent, std::string* out) {
  const std::string pad(indent * 2, ' ');
  EstimateDetail d;
  double rows = est.EstimateSelect(q, &d);
  out->append(pad +
              StrFormat("Select  (est rows=%.1f, est cost=%.1f)\n", rows,
                        cost.SelectCost(q)));
  for (size_t i = 0; i < q.tables.size(); ++i) {
    const std::string& name = catalog.table(q.tables[i]).name();
    if (i == 0) {
      out->append(pad + "  Scan " + name + "\n");
    } else {
      out->append(pad + "  HashJoin " + name + "\n");
    }
  }
  if (d.join_output > 0 && q.tables.size() > 1) {
    out->append(pad + StrFormat("  (join output est rows=%.1f)\n",
                                d.join_output));
  }
  if (!q.where.empty()) {
    out->append(pad + StrFormat("  Filter: %zu predicate(s)  (est rows=%.1f)\n",
                                q.where.predicates.size(), d.after_where));
    for (const Predicate& p : q.where.predicates) {
      if (p.subquery != nullptr) {
        out->append(pad + "    Subquery:\n");
        ExplainSelect(*p.subquery, catalog, est, cost, indent + 3, out);
      }
    }
  }
  if (!q.group_by.empty()) {
    out->append(pad + StrFormat("  GroupBy: %zu column(s)%s\n",
                                q.group_by.size(),
                                q.having.has_value() ? " + HAVING" : ""));
  }
  if (!q.order_by.empty()) {
    out->append(pad + StrFormat("  Sort: %zu column(s)\n", q.order_by.size()));
  }
  out->append(pad + StrFormat("  Output: %zu column(s)  (est rows=%.1f)\n",
                              q.items.size(), d.output_rows));
}

}  // namespace

std::string Explain(const QueryAst& ast, const Catalog& catalog,
                    const CardinalityEstimator& estimator,
                    const CostModel& cost_model) {
  std::string out;
  out += "-- " + RenderSql(ast, catalog) + "\n";
  switch (ast.type) {
    case QueryType::kSelect:
      if (ast.select != nullptr) {
        ExplainSelect(*ast.select, catalog, estimator, cost_model, 0, &out);
      }
      break;
    case QueryType::kInsert:
      out += StrFormat("Insert into %s  (est rows=%.1f, est cost=%.1f)\n",
                       catalog.table(ast.insert->table_idx).name().c_str(),
                       estimator.EstimateCardinality(ast),
                       cost_model.EstimateCost(ast));
      if (ast.insert->source != nullptr) {
        out += "  Source:\n";
        ExplainSelect(*ast.insert->source, catalog, estimator, cost_model, 2,
                      &out);
      }
      break;
    case QueryType::kUpdate:
      out += StrFormat("Update %s  (est rows=%.1f, est cost=%.1f)\n",
                       catalog.table(ast.update->table_idx).name().c_str(),
                       estimator.EstimateCardinality(ast),
                       cost_model.EstimateCost(ast));
      break;
    case QueryType::kDelete:
      out += StrFormat("Delete from %s  (est rows=%.1f, est cost=%.1f)\n",
                       catalog.table(ast.del->table_idx).name().c_str(),
                       estimator.EstimateCardinality(ast),
                       cost_model.EstimateCost(ast));
      break;
  }
  return out;
}

}  // namespace lsg
