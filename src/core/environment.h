#ifndef LEARNEDSQLGEN_CORE_ENVIRONMENT_H_
#define LEARNEDSQLGEN_CORE_ENVIRONMENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "exec/backend.h"
#include "exec/executor.h"
#include "fsm/generation_fsm.h"
#include "optimizer/cost_model.h"
#include "optimizer/feedback_cache.h"
#include "rl/reward.h"
#include "rl/trajectory.h"

namespace lsg {

/// How the environment computes the metric feedback.
enum class FeedbackSource {
  /// Optimizer estimates (the paper's choice: "we do not use the real
  /// cardinality for the efficiency issue").
  kEstimator = 0,
  /// Actual execution against the database (feedback ablation).
  kTrueExecution = 1,
};

struct EnvironmentOptions {
  QueryProfile profile;
  FeedbackSource feedback = FeedbackSource::kEstimator;

  /// When false, only the completed query earns a reward (the sparse
  /// signal the paper's §4.2 Remark argues against) — ablation knob.
  bool dense_partial_rewards = true;

  /// Optional shared memo of estimator feedback keyed by AST fingerprint
  /// (see FeedbackCache): share one across episodes, trainers and service
  /// workers. Must outlive the environment and serve a single database.
  /// Ignored in true-execution mode (measured, not estimated, feedback).
  FeedbackCache* feedback_cache = nullptr;

  /// O(1) incremental estimates for the per-step feedback of the growing
  /// SELECT — bitwise identical to the full AST walk (cross-checked by the
  /// fuzz oracle, and on every step when LSG_CHECK_INCREMENTAL=1 is set).
  /// Disable to force full re-walks on every step.
  bool incremental_prefix_estimates = true;

  /// Which engine serves true-execution feedback (and MetricOf true-cost
  /// runs): the reference Executor or the vectorized batch engine
  /// (src/vexec/). Results are bitwise identical — the vectorized engine
  /// is differentially tested against the reference on every fuzz episode
  /// — so this is purely a throughput choice; vectorized is what makes
  /// execution-grounded feedback affordable at 10⁵–10⁶-row scale.
  ExecutionBackendKind execution_backend = ExecutionBackendKind::kReference;

  /// Morsel parallelism for the vectorized backend (including the calling
  /// thread). Ignored by the reference backend.
  int vexec_workers = 1;

  /// Optional compiled mask/transition table (fsm/compiled_fsm.h): mask
  /// lookups become indexed loads instead of grammar + semantic-rule
  /// re-derivation. Must have been compiled for exactly this environment's
  /// (database, vocabulary, profile) — verified by fingerprint at
  /// construction — and must outlive the environment. nullptr = interpreted
  /// masks (always correct; the compiled path is differentially tested
  /// against it).
  const CompiledFsmTable* compiled_fsm = nullptr;
};

/// The paper's environment (Figure 1): wraps the FSM (action masking), the
/// database's cost estimator (metric feedback) and the reward function.
/// Partial executable prefixes receive shaped rewards (§4.2 Remark: "simply
/// awarding the end reward ... results in a sparse training signal").
class SqlGenEnvironment : public Environment {
 public:
  /// All pointers must outlive the environment.
  SqlGenEnvironment(const Database* db, const Vocabulary* vocab,
                    const CardinalityEstimator* estimator,
                    const CostModel* cost_model, Constraint constraint,
                    EnvironmentOptions options);

  void Reset() override;
  const std::vector<uint8_t>& ValidActions() override;
  StatusOr<EnvStepResult> Step(int action) override;
  QueryAst TakeAst() override { return fsm_.TakeAst(); }
  int vocab_size() const override { return vocab_->size(); }

  /// Estimated (or executed) metric of an AST under this constraint's
  /// metric type. Returns 0 when execution fails (e.g. join blowup guard).
  double MetricOf(const QueryAst& ast) const;

  const Constraint& constraint() const { return reward_.constraint(); }
  const GenerationFsm& fsm() const { return fsm_; }

  /// Number of feedback evaluations so far (efficiency accounting).
  int64_t feedback_calls() const { return feedback_calls_; }

  /// Switches the feedback source mid-training (the mixed-feedback
  /// curriculum: cheap estimator feedback early, execution-grounded
  /// feedback for the tail epochs — LearnedSqlGenOptions::
  /// true_feedback_tail). Takes effect from the next metric evaluation.
  void SetFeedbackSource(FeedbackSource source) {
    options_.feedback = source;
  }
  FeedbackSource feedback_source() const { return options_.feedback; }

  /// The engine answering true-execution queries for this environment.
  const ExecutionBackend& backend() const { return *backend_; }

 private:
  /// Emits the completed episode's telemetry row to the global episode
  /// sink (no-op unless obs::Enabled() and a sink is installed).
  void RecordEpisodeRow(const EnvStepResult& final_step);

  /// Per-step feedback: the incremental prefix path when it applies,
  /// otherwise MetricOf (which consults the cache).
  double StepMetric();

  /// Records the estimate-vs-true feedback gap for a measured metric
  /// (obs registry: env.feedback_gap histogram + counters). No-op unless
  /// obs::Enabled() — the extra estimator walk is only paid when observed.
  void RecordFeedbackGap(const QueryAst& ast, double measured,
                         bool cardinality_metric) const;

  const Database* db_;
  const Vocabulary* vocab_;
  const CardinalityEstimator* estimator_;
  const CostModel* cost_model_;
  RewardFunction reward_;
  EnvironmentOptions options_;
  GenerationFsm fsm_;
  std::unique_ptr<ExecutionBackend> backend_;
  PrefixEstimator prefix_est_;
  bool check_incremental_;  ///< LSG_CHECK_INCREMENTAL=1 debug cross-check
  mutable int64_t feedback_calls_ = 0;

  // Per-episode telemetry accumulators (active only while obs::Enabled();
  // see src/obs/). The environment is the one place that sees every step
  // of every episode, for trainers and inference alike, so episode rows
  // are recorded here rather than in each driver.
  std::string constraint_str_;       ///< cached Constraint::ToString()
  double ep_reward_sum_ = 0.0;
  int ep_steps_ = 0;
  uint64_t ep_mask_width_sum_ = 0;
  uint64_t ep_mask_evals_ = 0;
  int64_t ep_feedback_calls_at_reset_ = 0;
  uint64_t ep_start_ns_ = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CORE_ENVIRONMENT_H_
