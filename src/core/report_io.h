#ifndef LEARNEDSQLGEN_CORE_REPORT_IO_H_
#define LEARNEDSQLGEN_CORE_REPORT_IO_H_

#include <string>

#include "common/status.h"
#include "core/generator.h"

namespace lsg {

/// Writes a generation report as CSV:
///   sql,metric,satisfied,type,tables,nested,aggregate,predicates,tokens
/// SQL is double-quoted with internal quotes doubled (RFC 4180).
Status WriteReportCsv(const GenerationReport& report, const std::string& path);

/// Writes a generation report as a JSON document:
///   {"accuracy": ..., "attempts": ..., "queries": [{"sql": ..., ...}]}
Status WriteReportJson(const GenerationReport& report,
                       const std::string& path);

/// JSON string escaping helper (exposed for tests).
std::string JsonEscape(const std::string& s);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CORE_REPORT_IO_H_
