#ifndef LEARNEDSQLGEN_CORE_WORKLOAD_H_
#define LEARNEDSQLGEN_CORE_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/environment.h"

namespace lsg {

/// Structural features of one generated query (the dimensions of the
/// Figure 10 case study).
struct QueryFeatures {
  QueryType type = QueryType::kSelect;
  int num_tables = 1;       ///< joined tables (Fig 10a)
  bool nested = false;      ///< has a subquery (Fig 10b)
  bool has_aggregate = false;  ///< agg items or HAVING (Fig 10c)
  int num_predicates = 0;   ///< total predicates (Fig 10d)
  int num_tokens = 0;       ///< SQL token count (Fig 10f)
};

QueryFeatures FeaturesOf(const QueryAst& ast, int num_tokens);

/// Aggregated distribution over a workload of generated queries.
class WorkloadDistribution {
 public:
  void Add(const QueryFeatures& f);

  int total() const { return total_; }
  /// Fraction of queries with >= 2 tables.
  double MultiJoinFraction() const;
  double NestedFraction() const;
  double AggregateFraction() const;
  const std::map<int, int>& predicate_histogram() const { return preds_; }
  const std::map<int, int>& join_histogram() const { return joins_; }
  const std::map<int, int>& token_length_histogram() const { return tokens_; }
  const std::map<std::string, int>& type_histogram() const { return types_; }

  /// Multi-line human-readable summary (the Figure 10 panels as text).
  std::string ToString() const;

 private:
  int total_ = 0;
  int nested_ = 0;
  int aggregate_ = 0;
  std::map<int, int> joins_;
  std::map<int, int> preds_;
  std::map<int, int> tokens_;
  std::map<std::string, int> types_;
};

/// Uniform random walk over the FSM (every valid action equiprobable) —
/// the zero-knowledge generation primitive used for domain probing and as
/// the core of the SQLSmith-style baseline.
StatusOr<QueryAst> RandomWalkQuery(GenerationFsm* fsm, Rng* rng);

/// Probes the reachable metric range of a database by random generation,
/// returning low/high quantiles (default 10%/90%) of the sampled metric.
/// Benches use this to place the paper's constraint grids on scaled data.
MetricDomain ProbeMetricDomain(SqlGenEnvironment* env, int samples, Rng* rng,
                               double lo_quantile = 0.1,
                               double hi_quantile = 0.9);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CORE_WORKLOAD_H_
