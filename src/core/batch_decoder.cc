#include "core/batch_decoder.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/environment.h"
#include "sql/render.h"

namespace lsg {
namespace {
constexpr int kMaxEpisodeSteps = 512;  // matches RolloutPolicy's hard cap
}  // namespace

struct BatchDecoder::Lane {
  BatchDecodeItem* item;
  std::unique_ptr<SqlGenEnvironment> env;
  Rng rng;
  PolicyNetwork::Episode ep;
  Trajectory traj;
  int ep_steps = 0;
  Stopwatch watch;

  Lane(BatchDecodeItem* it, std::unique_ptr<SqlGenEnvironment> e)
      : item(it), env(std::move(e)), rng(it->rng_seed) {}
};

BatchDecoder::BatchDecoder(const ServingSnapshot* snapshot, int max_lanes)
    : snap_(snapshot), max_lanes_(std::max(1, max_lanes)) {
  LSG_CHECK(snapshot != nullptr && snapshot->actor != nullptr);
}

void BatchDecoder::BeginAttempt(const PolicyNetwork& actor, Lane* lane) {
  lane->env->Reset();
  lane->ep = actor.BeginEpisode(/*train=*/false);
  lane->traj = Trajectory();
  lane->ep_steps = 0;
}

void BatchDecoder::FinishItem(Lane* lane) {
  GenerationReport& report = lane->item->report;
  report.generate_seconds = lane->watch.ElapsedSeconds();
  report.accuracy = report.attempts == 0
                        ? 0.0
                        : static_cast<double>(report.satisfied) /
                              static_cast<double>(report.attempts);
}

std::unique_ptr<BatchDecoder::Lane> BatchDecoder::StartItem(
    BatchDecodeItem* item) {
  item->status = Status::Ok();
  item->report = GenerationReport();
  item->report.train_seconds = snap_->train_seconds;
  if (snap_->trace != nullptr) item->report.trace = *snap_->trace;
  auto env = std::make_unique<SqlGenEnvironment>(
      snap_->db, snap_->vocab, snap_->estimator, snap_->cost_model,
      snap_->constraint, snap_->env_opts);
  auto lane = std::make_unique<Lane>(item, std::move(env));
  // Zero-work items (n <= 0) finish before their first episode, exactly
  // like the sequential loops whose conditions never admit an attempt.
  const bool done = item->batch_mode
                        ? item->report.attempts >= item->n
                        : item->report.satisfied >= item->n;
  if (done) {
    FinishItem(lane.get());
    return nullptr;
  }
  BeginAttempt(*snap_->actor, lane.get());
  return lane;
}

BatchDecoder::Stats BatchDecoder::Run(
    const std::vector<BatchDecodeItem*>& items) {
  Stats stats;
  const PolicyNetwork& actor = *snap_->actor;
  std::vector<std::unique_ptr<Lane>> lanes;
  size_t next_item = 0;
  auto admit = [&]() {
    while (static_cast<int>(lanes.size()) < max_lanes_ &&
           next_item < items.size()) {
      std::unique_ptr<Lane> lane = StartItem(items[next_item]);
      ++next_item;
      if (lane != nullptr) lanes.push_back(std::move(lane));
    }
  };
  admit();

  std::vector<PolicyNetwork::Episode*> eps;
  std::vector<const std::vector<uint8_t>*> masks;
  // Per-slot compact distributions, reused across steps so the idx/probs
  // capacity survives lane churn (slots are overwritten every step).
  std::vector<PolicyNetwork::CompactDistribution> dists;
  std::vector<Status> statuses;
  while (!lanes.empty()) {
    const int batch = static_cast<int>(lanes.size());
    eps.resize(batch);
    masks.resize(batch);
    if (dists.size() < static_cast<size_t>(batch)) dists.resize(batch);
    statuses.assign(batch, Status::Ok());
    for (int b = 0; b < batch; ++b) {
      eps[b] = &lanes[b]->ep;
      masks[b] = &lanes[b]->env->ValidActions();
    }
    actor.NextDistributionBatch(eps.data(), masks.data(), batch, dists.data(),
                                statuses.data());
    stats.steps += 1;
    stats.lane_steps += static_cast<uint64_t>(batch);
    stats.peak_lanes = std::max(stats.peak_lanes, batch);

    // Advance every lane one action; collect retirements.
    std::vector<bool> retire(batch, false);
    for (int b = 0; b < batch; ++b) {
      Lane& lane = *lanes[b];
      BatchDecodeItem& item = *lane.item;
      if (!statuses[b].ok()) {
        item.status = statuses[b];
        retire[b] = true;
        continue;
      }
      const int a = actor.SampleAction(dists[b], &lane.rng);
      actor.RecordAction(&lane.ep, a);
      auto sr = lane.env->Step(a);
      if (!sr.ok()) {
        item.status = sr.status();
        retire[b] = true;
        continue;
      }
      lane.traj.actions.push_back(a);
      lane.traj.rewards.push_back(sr->reward);
      ++lane.ep_steps;
      if (sr->done) {
        lane.traj.completed = true;
        lane.traj.satisfied = sr->satisfied;
        lane.traj.final_metric = sr->metric;
        lane.traj.ast = lane.env->TakeAst();
        ++item.report.attempts;
        const bool keep = item.batch_mode || lane.traj.satisfied;
        if (lane.traj.satisfied) ++item.report.satisfied;
        if (keep) {
          GeneratedQuery q;
          q.sql = RenderSql(lane.traj.ast, snap_->db->catalog());
          q.metric = lane.traj.final_metric;
          q.satisfied = lane.traj.satisfied;
          q.features = FeaturesOf(
              lane.traj.ast, static_cast<int>(lane.traj.actions.size()));
          q.ast = std::move(lane.traj.ast);
          item.report.queries.push_back(std::move(q));
        }
        const bool done =
            item.batch_mode
                ? item.report.attempts >= item.n
                : (item.report.satisfied >= item.n ||
                   item.report.attempts >=
                       static_cast<int64_t>(item.n) * snap_->attempts_factor);
        if (done) {
          FinishItem(&lane);
          retire[b] = true;
        } else {
          BeginAttempt(actor, &lane);
        }
      } else if (lane.ep_steps >= kMaxEpisodeSteps) {
        item.status = Status::Internal("episode exceeded the hard step cap");
        retire[b] = true;
      }
    }

    // Ragged leave/join: drop retired lanes in place, then admit pending
    // items into the freed slots.
    size_t w = 0;
    for (int b = 0; b < batch; ++b) {
      if (!retire[b]) {
        if (w != static_cast<size_t>(b)) lanes[w] = std::move(lanes[b]);
        ++w;
      }
    }
    lanes.resize(w);
    admit();
  }
  return stats;
}

}  // namespace lsg
