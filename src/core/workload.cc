#include "core/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

QueryFeatures FeaturesOf(const QueryAst& ast, int num_tokens) {
  QueryFeatures f;
  f.type = ast.type;
  f.num_tokens = num_tokens;
  switch (ast.type) {
    case QueryType::kSelect:
      if (ast.select != nullptr) {
        f.num_tables = static_cast<int>(ast.select->tables.size());
        f.nested = ast.select->HasNested();
        f.has_aggregate =
            ast.select->HasAggregate() || ast.select->having.has_value();
        f.num_predicates = ast.select->TotalPredicates();
      }
      break;
    case QueryType::kInsert:
      if (ast.insert != nullptr && ast.insert->source != nullptr) {
        f.nested = true;
        f.num_predicates = ast.insert->source->TotalPredicates();
      }
      break;
    case QueryType::kUpdate:
      if (ast.update != nullptr) {
        f.num_predicates = static_cast<int>(ast.update->where.predicates.size());
        for (const Predicate& p : ast.update->where.predicates) {
          if (p.subquery != nullptr) f.nested = true;
        }
      }
      break;
    case QueryType::kDelete:
      if (ast.del != nullptr) {
        f.num_predicates = static_cast<int>(ast.del->where.predicates.size());
        for (const Predicate& p : ast.del->where.predicates) {
          if (p.subquery != nullptr) f.nested = true;
        }
      }
      break;
  }
  return f;
}

void WorkloadDistribution::Add(const QueryFeatures& f) {
  ++total_;
  if (f.nested) ++nested_;
  if (f.has_aggregate) ++aggregate_;
  ++joins_[f.num_tables];
  ++preds_[f.num_predicates];
  // Bucket token lengths by 5 for a readable histogram.
  ++tokens_[(f.num_tokens / 5) * 5];
  ++types_[QueryTypeName(f.type)];
}

double WorkloadDistribution::MultiJoinFraction() const {
  if (total_ == 0) return 0.0;
  int multi = 0;
  for (const auto& [k, v] : joins_) {
    if (k >= 2) multi += v;
  }
  return static_cast<double>(multi) / total_;
}

double WorkloadDistribution::NestedFraction() const {
  return total_ == 0 ? 0.0 : static_cast<double>(nested_) / total_;
}

double WorkloadDistribution::AggregateFraction() const {
  return total_ == 0 ? 0.0 : static_cast<double>(aggregate_) / total_;
}

std::string WorkloadDistribution::ToString() const {
  std::string out;
  out += StrFormat("queries: %d\n", total_);
  out += StrFormat("(a) multi-join fraction: %.1f%%\n",
                   100.0 * MultiJoinFraction());
  out += "    joined tables: ";
  for (const auto& [k, v] : joins_) {
    out += StrFormat("%d:%d ", k, v);
  }
  out += "\n";
  out += StrFormat("(b) nested fraction: %.1f%%\n", 100.0 * NestedFraction());
  out += StrFormat("(c) aggregate fraction: %.1f%%\n",
                   100.0 * AggregateFraction());
  out += "(d) predicate histogram: ";
  for (const auto& [k, v] : preds_) out += StrFormat("%d:%d ", k, v);
  out += "\n(e) query types: ";
  for (const auto& [k, v] : types_) out += StrFormat("%s:%d ", k.c_str(), v);
  out += "\n(f) token-length histogram (bucket=5): ";
  for (const auto& [k, v] : tokens_) out += StrFormat("%d:%d ", k, v);
  out += "\n";
  return out;
}

StatusOr<QueryAst> RandomWalkQuery(GenerationFsm* fsm, Rng* rng) {
  fsm->Reset();
  const int kMaxSteps = 512;
  for (int step = 0; step < kMaxSteps; ++step) {
    const std::vector<uint8_t>& mask = fsm->ValidActions();
    // Reservoir-pick a uniform valid action.
    int chosen = -1;
    int seen = 0;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      ++seen;
      if (rng->Uniform(seen) == 0) chosen = static_cast<int>(i);
    }
    if (chosen < 0) {
      return Status::Internal("FSM produced an empty action mask");
    }
    LSG_RETURN_IF_ERROR(fsm->Step(chosen));
    if (fsm->done()) return fsm->TakeAst();
  }
  return Status::Internal("random walk exceeded the step cap");
}

MetricDomain ProbeMetricDomain(SqlGenEnvironment* env, int samples, Rng* rng,
                               double lo_quantile, double hi_quantile) {
  std::vector<double> metrics;
  metrics.reserve(samples);
  const int kMaxSteps = 512;
  for (int s = 0; s < samples; ++s) {
    env->Reset();
    double metric = 0.0;
    for (int step = 0; step < kMaxSteps; ++step) {
      const std::vector<uint8_t>& mask = env->ValidActions();
      int chosen = -1;
      int seen = 0;
      for (size_t i = 0; i < mask.size(); ++i) {
        if (!mask[i]) continue;
        ++seen;
        if (rng->Uniform(seen) == 0) chosen = static_cast<int>(i);
      }
      if (chosen < 0) break;
      auto sr = env->Step(chosen);
      if (!sr.ok()) break;
      if (sr->done) {
        metric = sr->metric;
        (void)env->TakeAst();
        break;
      }
    }
    if (metric > 0.0) metrics.push_back(metric);
  }
  MetricDomain d;
  if (metrics.empty()) return d;
  std::sort(metrics.begin(), metrics.end());
  auto quant = [&](double q) {
    size_t idx = static_cast<size_t>(q * (metrics.size() - 1));
    return metrics[idx];
  };
  d.lo = std::max(1.0, quant(lo_quantile));
  d.hi = std::max(d.lo * 2.0, quant(hi_quantile));
  return d;
}

}  // namespace lsg
