#include "core/environment.h"

#include "common/logging.h"

namespace lsg {

SqlGenEnvironment::SqlGenEnvironment(const Database* db,
                                     const Vocabulary* vocab,
                                     const CardinalityEstimator* estimator,
                                     const CostModel* cost_model,
                                     Constraint constraint,
                                     EnvironmentOptions options)
    : db_(db),
      vocab_(vocab),
      estimator_(estimator),
      cost_model_(cost_model),
      reward_(constraint),
      options_(options),
      fsm_(db, vocab, options.profile),
      executor_(db) {
  LSG_CHECK(estimator != nullptr && cost_model != nullptr);
}

void SqlGenEnvironment::Reset() { fsm_.Reset(); }

const std::vector<uint8_t>& SqlGenEnvironment::ValidActions() {
  return fsm_.ValidActions();
}

double SqlGenEnvironment::MetricOf(const QueryAst& ast) const {
  ++feedback_calls_;
  if (options_.feedback == FeedbackSource::kTrueExecution) {
    if (reward_.constraint().metric == ConstraintMetric::kCardinality) {
      auto card = executor_.Cardinality(ast);
      return card.ok() ? static_cast<double>(*card) : 0.0;
    }
    // True cost: run the query and price the measured operator work.
    if (ast.type == QueryType::kSelect && ast.select != nullptr) {
      auto r = executor_.ExecuteSelect(*ast.select, /*materialize=*/false);
      if (!r.ok()) return 0.0;
      return cost_model_->TrueCost(r->stats,
                                   static_cast<double>(r->cardinality));
    }
    // DML true cost falls back to the estimate (dry-run writes are not
    // priced by measurement).
    return cost_model_->EstimateCost(ast);
  }
  if (reward_.constraint().metric == ConstraintMetric::kCardinality) {
    return estimator_->EstimateCardinality(ast);
  }
  return cost_model_->EstimateCost(ast);
}

StatusOr<EnvStepResult> SqlGenEnvironment::Step(int action) {
  LSG_RETURN_IF_ERROR(fsm_.Step(action));
  EnvStepResult out;
  out.done = fsm_.done();
  out.executable = out.done || fsm_.IsExecutablePrefix();
  if (!out.done && !options_.dense_partial_rewards) {
    // Sparse-reward ablation: partial queries earn nothing.
    return out;
  }
  if (out.executable) {
    out.metric = MetricOf(fsm_.builder().ast());
    out.reward = reward_.Reward(true, out.metric);
    out.satisfied = reward_.constraint().Satisfied(out.metric);
  } else {
    out.reward = 0.0;
  }
  return out;
}

}  // namespace lsg
