#include "core/environment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "fsm/compiled_fsm.h"
#include "vexec/backend_factory.h"
#include "obs/episode_telemetry.h"
#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"

namespace lsg {

SqlGenEnvironment::SqlGenEnvironment(const Database* db,
                                     const Vocabulary* vocab,
                                     const CardinalityEstimator* estimator,
                                     const CostModel* cost_model,
                                     Constraint constraint,
                                     EnvironmentOptions options)
    : db_(db),
      vocab_(vocab),
      estimator_(estimator),
      cost_model_(cost_model),
      reward_(constraint),
      options_(options),
      fsm_(db, vocab, options.profile),
      backend_(vexec::MakeBackend(options.execution_backend, db,
                                  {.workers = options.vexec_workers})),
      prefix_est_(estimator, cost_model),
      constraint_str_(constraint.ToString()) {
  LSG_CHECK(estimator != nullptr && cost_model != nullptr);
  if (options.compiled_fsm != nullptr) {
    LSG_CHECK(options.compiled_fsm->fingerprint() ==
              CompiledFsmFingerprint(*db, *vocab, options.profile))
        << "compiled FSM table was built for a different "
        << "(database, vocabulary, profile)";
    fsm_.AttachCompiledTable(options.compiled_fsm);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup latch, no setenv
  const char* check = std::getenv("LSG_CHECK_INCREMENTAL");
  check_incremental_ = check != nullptr && check[0] == '1';
}

void SqlGenEnvironment::Reset() {
  fsm_.Reset();
  prefix_est_.Reset();
  // Telemetry accumulators reset unconditionally: they are cheap, and
  // gating on obs::Enabled() here meant that enabling LSG_OBS mid-run left
  // the first recorded row with a stale feedback baseline and start time.
  ep_reward_sum_ = 0.0;
  ep_steps_ = 0;
  ep_mask_width_sum_ = 0;
  ep_mask_evals_ = 0;
  ep_feedback_calls_at_reset_ = feedback_calls_;
  ep_start_ns_ = Stopwatch::NowNanos();
}

const std::vector<uint8_t>& SqlGenEnvironment::ValidActions() {
  const std::vector<uint8_t>& mask = fsm_.ValidActions();
  if (obs::Enabled()) {
    ep_mask_width_sum_ += static_cast<uint64_t>(fsm_.last_mask_width());
    ep_mask_evals_ += 1;
  }
  return mask;
}

double SqlGenEnvironment::MetricOf(const QueryAst& ast) const {
  ++feedback_calls_;
  obs::ScopedHistogramTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("env.feedback_ns")
          : nullptr);
  if (options_.feedback == FeedbackSource::kTrueExecution) {
    if (reward_.constraint().metric == ConstraintMetric::kCardinality) {
      auto card = backend_->Cardinality(ast);
      if (!card.ok()) return 0.0;
      const double m = static_cast<double>(*card);
      RecordFeedbackGap(ast, m, /*cardinality_metric=*/true);
      return m;
    }
    // True cost: run the query and price the measured operator work.
    if (ast.type == QueryType::kSelect && ast.select != nullptr) {
      auto r = backend_->ExecuteSelect(*ast.select, /*materialize=*/false);
      if (!r.ok()) return 0.0;
      const double m = cost_model_->TrueCost(
          r->stats, static_cast<double>(r->cardinality));
      RecordFeedbackGap(ast, m, /*cardinality_metric=*/false);
      return m;
    }
    // DML true cost falls back to the estimate (dry-run writes are not
    // priced by measurement).
    return cost_model_->EstimateCost(ast);
  }
  const bool card =
      reward_.constraint().metric == ConstraintMetric::kCardinality;
  if (FeedbackCache* cache = options_.feedback_cache) {
    const uint64_t key = cache->Key(
        ast, card ? FeedbackKind::kCardinality : FeedbackKind::kCost);
    if (std::optional<double> hit = cache->Lookup(key)) return *hit;
    double m = card ? estimator_->EstimateCardinality(ast)
                    : cost_model_->EstimateCost(ast);
    cache->Insert(key, m);
    return m;
  }
  if (card) return estimator_->EstimateCardinality(ast);
  return cost_model_->EstimateCost(ast);
}

void SqlGenEnvironment::RecordFeedbackGap(const QueryAst& ast,
                                          double measured,
                                          bool cardinality_metric) const {
  if (!obs::Enabled()) return;
  // The estimator walk is re-run here purely for the gap metric, so the
  // cost of quantifying estimate-vs-true disagreement is only paid while
  // observability is on.
  const double est = cardinality_metric
                         ? estimator_->EstimateCardinality(ast)
                         : cost_model_->EstimateCost(ast);
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("env.true_feedback_calls").Inc();
  const double gap = std::fabs(est - measured);
  reg.GetHistogram(cardinality_metric ? "env.feedback_gap_card"
                                      : "env.feedback_gap_cost")
      .Record(static_cast<uint64_t>(
          std::llround(std::min(gap, 1e18))));
}

double SqlGenEnvironment::StepMetric() {
  const QueryAst& ast = fsm_.builder().ast();
  if (options_.feedback != FeedbackSource::kEstimator ||
      !options_.incremental_prefix_estimates ||
      ast.type != QueryType::kSelect || ast.select == nullptr) {
    return MetricOf(ast);
  }
  // Incremental path: the running per-episode state makes this O(1) in the
  // query size, so it skips the cache (a hit would not be cheaper).
  ++feedback_calls_;
  obs::ScopedHistogramTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("env.feedback_ns")
          : nullptr);
  const bool card =
      reward_.constraint().metric == ConstraintMetric::kCardinality;
  double m = card ? prefix_est_.Cardinality(*ast.select)
                  : prefix_est_.Cost(*ast.select);
  if (check_incremental_) {
    double full = card ? estimator_->EstimateCardinality(ast)
                       : cost_model_->EstimateCost(ast);
    LSG_CHECK(m == full) << "incremental prefix estimate diverged from the "
                         << "full walk: " << m << " vs " << full;
  }
  return m;
}

void SqlGenEnvironment::RecordEpisodeRow(const EnvStepResult& final_step) {
  obs::EpisodeTelemetry* sink = obs::EpisodeSink();
  if (sink == nullptr) return;
  obs::EpisodeRow row;
  row.constraint = constraint_str_;
  row.reward = ep_reward_sum_;
  row.final_metric = final_step.metric;
  row.satisfied = final_step.satisfied;
  row.tokens = ep_steps_;
  row.estimator_calls =
      static_cast<int>(feedback_calls_ - ep_feedback_calls_at_reset_);
  row.mean_mask_width =
      ep_mask_evals_ == 0 ? 0.0
                          : static_cast<double>(ep_mask_width_sum_) /
                                static_cast<double>(ep_mask_evals_);
  row.wall_seconds =
      static_cast<double>(Stopwatch::NowNanos() - ep_start_ns_) / 1e9;
  sink->Record(row);
  static obs::Counter& episodes =
      obs::MetricsRegistry::Global().GetCounter("env.episodes");
  static obs::Counter& satisfied =
      obs::MetricsRegistry::Global().GetCounter("env.episodes_satisfied");
  episodes.Inc();
  if (final_step.satisfied) satisfied.Inc();
}

StatusOr<EnvStepResult> SqlGenEnvironment::Step(int action) {
  LSG_OBS_SPAN("env.step");
  LSG_RETURN_IF_ERROR(fsm_.Step(action));
  EnvStepResult out;
  out.done = fsm_.done();
  out.executable = out.done || fsm_.IsExecutablePrefix();
  if (!out.done && !options_.dense_partial_rewards) {
    // Sparse-reward ablation: partial queries earn nothing.
    if (obs::Enabled()) ++ep_steps_;
    return out;
  }
  if (out.executable) {
    out.metric = StepMetric();
    out.reward = reward_.Reward(true, out.metric);
    out.satisfied = reward_.constraint().Satisfied(out.metric);
  } else {
    out.reward = 0.0;
  }
  if (obs::Enabled()) {
    ++ep_steps_;
    ep_reward_sum_ += out.reward;
    if (out.done) RecordEpisodeRow(out);
  }
  return out;
}

}  // namespace lsg
