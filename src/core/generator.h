#ifndef LEARNEDSQLGEN_CORE_GENERATOR_H_
#define LEARNEDSQLGEN_CORE_GENERATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/workload.h"
#include "rl/actor_critic_trainer.h"
#include "rl/reinforce_trainer.h"

namespace lsg {

/// End-to-end configuration of the LearnedSQLGen pipeline.
struct LearnedSqlGenOptions {
  TrainerOptions trainer;
  QueryProfile profile;
  VocabularyOptions vocab;
  FeedbackSource feedback = FeedbackSource::kEstimator;

  /// Mixed-feedback curriculum: fraction of the training epochs (from the
  /// tail) that switch the environment to execution-grounded feedback
  /// (FeedbackSource::kTrueExecution). Early epochs keep the cheap
  /// estimator (+ cache) signal for exploration; the final
  /// ceil(train_epochs · true_feedback_tail) epochs ground the policy in
  /// measured cardinalities/costs from the configured execution backend.
  /// 0 disables the switch (paper default); 1 trains fully on execution.
  /// Ignored when `feedback` is already kTrueExecution.
  double true_feedback_tail = 0.0;

  /// Engine answering execution-grounded feedback — see
  /// EnvironmentOptions::execution_backend. The vectorized engine makes
  /// the true-feedback tail affordable on 10⁵–10⁶-row databases.
  ExecutionBackendKind execution_backend = ExecutionBackendKind::kReference;

  /// Morsel parallelism for the vectorized backend.
  int vexec_workers = 1;

  /// Training epochs (batched updates) per constraint.
  int train_epochs = 80;

  /// Inference attempt budget per requested satisfied query.
  int attempts_factor = 50;

  /// Use plain REINFORCE instead of actor-critic (the §7.3 comparison).
  bool use_reinforce = false;

  /// Reward-shaping ablation: when false only complete queries earn
  /// rewards (§4.2 Remark).
  bool dense_partial_rewards = true;

  /// Optional shared feedback-estimation cache (must outlive the pipeline
  /// and serve this database only). The cache itself is thread-safe, so
  /// concurrent pipelines over the same database may share one.
  FeedbackCache* feedback_cache = nullptr;

  /// See EnvironmentOptions::incremental_prefix_estimates.
  bool incremental_prefix_estimates = true;

  /// Compile (or load from `compiled_fsm_cache_dir`) a mask/transition
  /// table for this (database, vocabulary, profile) and serve masks from
  /// it. Compilation is memoised process-wide and capped (see
  /// CompileFsmOptions): a pair whose structural state graph is too large —
  /// wide schemas under permissive profiles — falls back to the
  /// interpreted FSM automatically, so this is always safe to leave on.
  bool use_compiled_fsm = true;

  /// Pre-compiled table to attach instead of compiling (must match this
  /// pipeline's database/vocabulary/profile and outlive it). Wins over
  /// `use_compiled_fsm` resolution when set.
  const CompiledFsmTable* compiled_fsm = nullptr;

  /// Disk cache directory for compiled FSM artifacts (empty = in-memory
  /// only). The service layer defaults this to a sibling of the model
  /// registry's spill directory.
  std::string compiled_fsm_cache_dir;

  uint64_t seed = 2024;
};

/// Immutable, copy-free view of a trained pipeline for the serving path.
/// Every pointer aliases state owned by the LearnedSqlGen that produced the
/// snapshot (kept alive by the caller — the service holds the registry
/// entry), and every referenced component is const or internally
/// thread-safe at inference, so one snapshot may drive any number of
/// concurrent decode lanes without touching the pipeline's mutex.
struct ServingSnapshot {
  const Database* db = nullptr;
  const Vocabulary* vocab = nullptr;
  const CardinalityEstimator* estimator = nullptr;
  const CostModel* cost_model = nullptr;
  const PolicyNetwork* actor = nullptr;
  /// Environment configuration the model was trained under (compiled FSM
  /// resolved); fresh per-lane environments are built from this.
  EnvironmentOptions env_opts;
  /// The constraint the entry's model was trained for — generation
  /// validates against this, exactly like the unbatched path.
  Constraint constraint;
  int attempts_factor = 50;
  double train_seconds = 0.0;
  const std::vector<EpochStats>* trace = nullptr;
};

/// One generated query with its metadata. Move-only (owns the AST).
struct GeneratedQuery {
  std::string sql;
  double metric = 0.0;       ///< estimated card/cost
  bool satisfied = false;
  QueryFeatures features;
  QueryAst ast;              ///< for downstream execution / inspection
};

/// Outcome of a generation run.
struct GenerationReport {
  std::vector<GeneratedQuery> queries;
  int attempts = 0;
  int satisfied = 0;
  double accuracy = 0.0;        ///< satisfied / attempts
  double train_seconds = 0.0;
  double generate_seconds = 0.0;
  std::vector<EpochStats> trace;  ///< per-epoch training stats

  double total_seconds() const { return train_seconds + generate_seconds; }
};

/// The LearnedSQLGen system facade: builds the action space, statistics,
/// estimator and cost model for a database; trains the RL model for a
/// constraint (Algorithm 1/3); generates satisfying queries (Algorithm 2).
///
/// Thread-safety contract: one instance is single-threaded (Train and
/// Generate* mutate the trainer state and its RNG), but distinct instances
/// over the same const Database may run concurrently — the library keeps no
/// mutable global state beyond the thread-safe logger. The service layer
/// (src/service/) builds on exactly this contract: one pipeline per cached
/// constraint bucket, each guarded by its own lock.
class LearnedSqlGen {
 public:
  /// Builds the pipeline for `db` (must outlive the generator).
  static StatusOr<std::unique_ptr<LearnedSqlGen>> Create(
      const Database* db, const LearnedSqlGenOptions& options);

  /// Trains a fresh model for the given constraint.
  Status Train(const Constraint& constraint);
  Status TrainFor(const Constraint& constraint, int epochs);

  /// Keeps generating until `n` satisfying queries are found or the attempt
  /// budget (n · attempts_factor) runs out. Report contains only the
  /// satisfying queries.
  StatusOr<GenerationReport> GenerateSatisfied(int n);

  /// Generates exactly `n` queries and reports the satisfied fraction
  /// (the paper's accuracy metric). Report contains all n queries.
  StatusOr<GenerationReport> GenerateBatch(int n);

  /// Caller-RNG variants: sampling draws from `rng` instead of the
  /// trainer's internal stream. The serving path derives one stream per
  /// request from (seed, request), making outputs independent of worker
  /// placement and batch composition.
  StatusOr<GenerationReport> GenerateSatisfied(int n, Rng* rng);
  StatusOr<GenerationReport> GenerateBatch(int n, Rng* rng);

  /// Publishes an immutable view of the trained pipeline for lock-free
  /// batched serving (see BatchDecoder). Fails before Train/LoadModel, or
  /// when the model uses dense extra inputs (AC-extend) — the batched
  /// decode path supports the standard one-hot model only.
  StatusOr<ServingSnapshot> MakeServingSnapshot() const;

  /// Saves the trained actor's parameters to a binary file.
  Status SaveModel(const std::string& path) const;

  /// Rebuilds the pipeline for `constraint` (without training) and loads a
  /// previously saved actor, so generation can resume across processes.
  Status LoadModel(const Constraint& constraint, const std::string& path);

  /// Per-epoch training trace of the last Train call (Figure 8c / 9c).
  const std::vector<EpochStats>& trace() const { return trace_; }
  double last_train_seconds() const { return train_seconds_; }

  const Vocabulary& vocab() const { return *vocab_; }
  const DatabaseStats& stats() const { return stats_; }
  const CardinalityEstimator& estimator() const { return *estimator_; }
  const CostModel& cost_model() const { return *cost_model_; }
  SqlGenEnvironment* env() { return env_.get(); }
  const LearnedSqlGenOptions& options() const { return options_; }

 private:
  LearnedSqlGen(const Database* db, const LearnedSqlGenOptions& options);

  StatusOr<Trajectory> GenerateOne();
  StatusOr<Trajectory> GenerateOne(Rng* rng);

  /// Environment configuration derived from options_, with the compiled
  /// FSM resolved (and memoised in compiled_fsm_) when enabled.
  EnvironmentOptions BuildEnvOptions();

  const Database* db_;
  LearnedSqlGenOptions options_;
  DatabaseStats stats_;
  std::optional<Vocabulary> vocab_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<CostModel> cost_model_;
  /// Resolved via CompiledFsmCache when options_.use_compiled_fsm; nullptr
  /// when compilation is infeasible (interpreted fallback).
  std::shared_ptr<const CompiledFsmTable> compiled_fsm_;
  std::unique_ptr<SqlGenEnvironment> env_;
  std::unique_ptr<ActorCriticTrainer> ac_trainer_;
  std::unique_ptr<ReinforceTrainer> reinforce_trainer_;
  std::vector<EpochStats> trace_;
  double train_seconds_ = 0.0;
  /// Environment options and constraint of the last TrainFor (what a
  /// ServingSnapshot republishes).
  EnvironmentOptions env_opts_;
  Constraint constraint_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CORE_GENERATOR_H_
