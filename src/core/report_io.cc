#include "core/report_io.h"

#include <cstdio>
#include <memory>

#include "common/string_util.h"

namespace lsg {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string CsvQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status WriteReportCsv(const GenerationReport& report,
                      const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::fprintf(f.get(),
               "sql,metric,satisfied,type,tables,nested,aggregate,"
               "predicates,tokens\n");
  for (const GeneratedQuery& q : report.queries) {
    std::fprintf(f.get(), "%s,%.4f,%d,%s,%d,%d,%d,%d,%d\n",
                 CsvQuote(q.sql).c_str(), q.metric, q.satisfied ? 1 : 0,
                 QueryTypeName(q.features.type), q.features.num_tables,
                 q.features.nested ? 1 : 0, q.features.has_aggregate ? 1 : 0,
                 q.features.num_predicates, q.features.num_tokens);
  }
  return Status::Ok();
}

Status WriteReportJson(const GenerationReport& report,
                       const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::fprintf(f.get(),
               "{\n  \"attempts\": %d,\n  \"satisfied\": %d,\n"
               "  \"accuracy\": %.6f,\n  \"train_seconds\": %.3f,\n"
               "  \"generate_seconds\": %.3f,\n  \"queries\": [\n",
               report.attempts, report.satisfied, report.accuracy,
               report.train_seconds, report.generate_seconds);
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const GeneratedQuery& q = report.queries[i];
    std::fprintf(
        f.get(),
        "    {\"sql\": \"%s\", \"metric\": %.4f, \"satisfied\": %s, "
        "\"type\": \"%s\", \"tables\": %d, \"nested\": %s, "
        "\"aggregate\": %s, \"predicates\": %d, \"tokens\": %d}%s\n",
        JsonEscape(q.sql).c_str(), q.metric, q.satisfied ? "true" : "false",
        QueryTypeName(q.features.type), q.features.num_tables,
        q.features.nested ? "true" : "false",
        q.features.has_aggregate ? "true" : "false",
        q.features.num_predicates, q.features.num_tokens,
        i + 1 < report.queries.size() ? "," : "");
  }
  std::fprintf(f.get(), "  ]\n}\n");
  return Status::Ok();
}

}  // namespace lsg
