#ifndef LEARNEDSQLGEN_CORE_CONSTRAINT_H_
#define LEARNEDSQLGEN_CORE_CONSTRAINT_H_

#include <vector>

#include "rl/reward.h"

namespace lsg {

/// Observed range of a metric (cardinality or cost) reachable on a
/// database, estimated by random probing (see ProbeMetricDomain in
/// core/workload.h). Benches rescale the paper's constraint grids
/// (10²..10⁸ points; 1k-2k..1k-8k ranges) into this domain so the same
/// experiment shapes run on laptop-scale data.
struct MetricDomain {
  double lo = 1.0;
  double hi = 1e6;
};

/// n points spaced geometrically in [lo, hi] (the paper's 10², 10⁴, 10⁶,
/// 10⁸ grid generalized to an arbitrary domain).
std::vector<double> GeometricGrid(double lo, double hi, int n);

/// The paper's widening range family anchored at `base`: [base, 2·base],
/// [base, 4·base], [base, 6·base], [base, 8·base] (its 1k-2k .. 1k-8k).
std::vector<Constraint> WideningRanges(ConstraintMetric metric, double base);

/// Point constraints on a geometric grid across the domain.
std::vector<Constraint> PointGrid(ConstraintMetric metric,
                                  const MetricDomain& domain, int n);

/// Splits [domain.lo, domain.hi] into k contiguous range tasks (the §6
/// pre-training task split, e.g. [0,2K], [2K,4K], ...).
std::vector<Constraint> SplitIntoTasks(ConstraintMetric metric,
                                       const MetricDomain& domain, int k);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CORE_CONSTRAINT_H_
