#include "core/constraint.h"

#include <cmath>

#include "common/logging.h"

namespace lsg {

std::vector<double> GeometricGrid(double lo, double hi, int n) {
  LSG_CHECK(lo > 0.0 && hi >= lo && n >= 1);
  std::vector<double> out;
  out.reserve(n);
  if (n == 1) {
    out.push_back(std::sqrt(lo * hi));
    return out;
  }
  const double step = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double v = lo;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= step;
  }
  return out;
}

std::vector<Constraint> WideningRanges(ConstraintMetric metric, double base) {
  std::vector<Constraint> out;
  for (double mult : {2.0, 4.0, 6.0, 8.0}) {
    out.push_back(Constraint::Range(metric, base, base * mult));
  }
  return out;
}

std::vector<Constraint> PointGrid(ConstraintMetric metric,
                                  const MetricDomain& domain, int n) {
  std::vector<Constraint> out;
  for (double p : GeometricGrid(domain.lo, domain.hi, n)) {
    out.push_back(Constraint::Point(metric, p));
  }
  return out;
}

std::vector<Constraint> SplitIntoTasks(ConstraintMetric metric,
                                       const MetricDomain& domain, int k) {
  LSG_CHECK(k >= 1);
  std::vector<Constraint> out;
  const double width = (domain.hi - domain.lo) / static_cast<double>(k);
  for (int i = 0; i < k; ++i) {
    out.push_back(Constraint::Range(metric, domain.lo + i * width,
                                    domain.lo + (i + 1) * width));
  }
  return out;
}

}  // namespace lsg
