#include "core/generator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "fsm/compiled_fsm.h"
#include "nn/serialize.h"
#include "obs/span_tracer.h"
#include "sql/render.h"

namespace lsg {

LearnedSqlGen::LearnedSqlGen(const Database* db,
                             const LearnedSqlGenOptions& options)
    : db_(db), options_(options) {}

StatusOr<std::unique_ptr<LearnedSqlGen>> LearnedSqlGen::Create(
    const Database* db, const LearnedSqlGenOptions& options) {
  if (db == nullptr || db->num_tables() == 0) {
    return Status::InvalidArgument("LearnedSqlGen needs a non-empty database");
  }
  std::unique_ptr<LearnedSqlGen> gen(new LearnedSqlGen(db, options));
  gen->stats_ = DatabaseStats::Collect(*db);
  auto vocab = Vocabulary::Build(*db, options.vocab);
  if (!vocab.ok()) return vocab.status();
  gen->vocab_ = std::move(vocab).value();
  gen->estimator_ =
      std::make_unique<CardinalityEstimator>(db, &gen->stats_);
  gen->cost_model_ = std::make_unique<CostModel>(gen->estimator_.get());
  return gen;
}

Status LearnedSqlGen::Train(const Constraint& constraint) {
  return TrainFor(constraint, options_.train_epochs);
}

EnvironmentOptions LearnedSqlGen::BuildEnvOptions() {
  EnvironmentOptions env_opts;
  env_opts.profile = options_.profile;
  env_opts.feedback = options_.feedback;
  env_opts.dense_partial_rewards = options_.dense_partial_rewards;
  env_opts.feedback_cache = options_.feedback_cache;
  env_opts.incremental_prefix_estimates =
      options_.incremental_prefix_estimates;
  env_opts.execution_backend = options_.execution_backend;
  env_opts.vexec_workers = options_.vexec_workers;
  env_opts.compiled_fsm = options_.compiled_fsm;
  if (env_opts.compiled_fsm == nullptr && options_.use_compiled_fsm) {
    if (compiled_fsm_ == nullptr) {
      compiled_fsm_ = CompiledFsmCache::Global().GetOrCompile(
          *db_, *vocab_, options_.profile, CompileFsmOptions(),
          options_.compiled_fsm_cache_dir);
    }
    env_opts.compiled_fsm = compiled_fsm_.get();
  }
  return env_opts;
}

Status LearnedSqlGen::TrainFor(const Constraint& constraint, int epochs) {
  LSG_OBS_SPAN("gen.train");
  EnvironmentOptions env_opts = BuildEnvOptions();
  env_opts_ = env_opts;
  constraint_ = constraint;
  env_ = std::make_unique<SqlGenEnvironment>(db_, &*vocab_, estimator_.get(),
                                             cost_model_.get(), constraint,
                                             env_opts);
  ac_trainer_.reset();
  reinforce_trainer_.reset();
  trace_.clear();
  Stopwatch watch;

  // Mixed-feedback curriculum: the final ceil(epochs · true_feedback_tail)
  // epochs flip the environment to execution-grounded feedback. Epochs
  // before the switch keep the estimator (+ cache) signal.
  int switch_epoch = epochs;
  if (options_.feedback != FeedbackSource::kTrueExecution &&
      options_.true_feedback_tail > 0.0) {
    const double frac = std::min(options_.true_feedback_tail, 1.0);
    const int tail = std::min(
        epochs, static_cast<int>(std::ceil(epochs * frac)));
    switch_epoch = epochs - tail;
  }
  auto epoch_begin = [&](int e) {
    if (e == switch_epoch &&
        env_->feedback_source() != FeedbackSource::kTrueExecution) {
      env_->SetFeedbackSource(FeedbackSource::kTrueExecution);
      LSG_LOG(Info) << "epoch " << e << ": switching to execution-grounded "
                    << "feedback (" << env_->backend().name()
                    << " backend)";
    }
  };
  auto record = [&](EpochStats st) {
    st.true_execution_feedback =
        env_->feedback_source() == FeedbackSource::kTrueExecution;
    trace_.push_back(st);
  };

  if (options_.use_reinforce) {
    reinforce_trainer_ =
        std::make_unique<ReinforceTrainer>(env_.get(), options_.trainer);
    for (int e = 0; e < epochs; ++e) {
      epoch_begin(e);
      auto st = reinforce_trainer_->TrainEpoch();
      if (!st.ok()) return st.status();
      record(*st);
    }
  } else {
    ac_trainer_ =
        std::make_unique<ActorCriticTrainer>(env_.get(), options_.trainer);
    for (int e = 0; e < epochs; ++e) {
      epoch_begin(e);
      auto st = ac_trainer_->TrainEpoch();
      if (!st.ok()) return st.status();
      record(*st);
    }
  }
  // Inference uses the best checkpoint seen during training (guards
  // against late-training policy collapse).
  if (options_.trainer.keep_best_actor) {
    if (ac_trainer_ != nullptr) ac_trainer_->RestoreBestActor();
    if (reinforce_trainer_ != nullptr) reinforce_trainer_->RestoreBestActor();
  }
  train_seconds_ = watch.ElapsedSeconds();
  return Status::Ok();
}

Status LearnedSqlGen::SaveModel(const std::string& path) const {
  if (ac_trainer_ != nullptr) {
    return SaveParams(std::as_const(*ac_trainer_).actor().Params(), path);
  }
  if (reinforce_trainer_ != nullptr) {
    return SaveParams(std::as_const(*reinforce_trainer_).actor().Params(),
                      path);
  }
  return Status::FailedPrecondition("no trained model to save");
}

Status LearnedSqlGen::LoadModel(const Constraint& constraint,
                                const std::string& path) {
  // Build the trainer (0 epochs = no training) and overwrite its actor.
  LSG_RETURN_IF_ERROR(TrainFor(constraint, 0));
  if (ac_trainer_ != nullptr) {
    return LoadParams(ac_trainer_->actor().Params(), path);
  }
  return LoadParams(reinforce_trainer_->actor().Params(), path);
}

StatusOr<Trajectory> LearnedSqlGen::GenerateOne() {
  if (ac_trainer_ != nullptr) return ac_trainer_->Generate();
  if (reinforce_trainer_ != nullptr) return reinforce_trainer_->Generate();
  return Status::FailedPrecondition("call Train before generating");
}

StatusOr<Trajectory> LearnedSqlGen::GenerateOne(Rng* rng) {
  if (rng == nullptr) return GenerateOne();
  if (ac_trainer_ != nullptr) return ac_trainer_->Generate(rng);
  if (reinforce_trainer_ != nullptr) return reinforce_trainer_->Generate(rng);
  return Status::FailedPrecondition("call Train before generating");
}

StatusOr<GenerationReport> LearnedSqlGen::GenerateSatisfied(int n) {
  return GenerateSatisfied(n, nullptr);
}

StatusOr<GenerationReport> LearnedSqlGen::GenerateSatisfied(int n, Rng* rng) {
  LSG_OBS_SPAN("gen.generate_satisfied");
  GenerationReport report;
  report.train_seconds = train_seconds_;
  report.trace = trace_;
  Stopwatch watch;
  const int64_t max_attempts =
      static_cast<int64_t>(n) * options_.attempts_factor;
  while (report.satisfied < n && report.attempts < max_attempts) {
    auto traj = GenerateOne(rng);
    if (!traj.ok()) return traj.status();
    ++report.attempts;
    if (!traj->satisfied) continue;
    ++report.satisfied;
    GeneratedQuery q;
    q.sql = RenderSql(traj->ast, db_->catalog());
    q.metric = traj->final_metric;
    q.satisfied = true;
    q.features =
        FeaturesOf(traj->ast, static_cast<int>(traj->actions.size()));
    q.ast = std::move(traj->ast);
    report.queries.push_back(std::move(q));
  }
  report.generate_seconds = watch.ElapsedSeconds();
  report.accuracy = report.attempts == 0
                        ? 0.0
                        : static_cast<double>(report.satisfied) /
                              static_cast<double>(report.attempts);
  return report;
}

StatusOr<GenerationReport> LearnedSqlGen::GenerateBatch(int n) {
  return GenerateBatch(n, nullptr);
}

StatusOr<GenerationReport> LearnedSqlGen::GenerateBatch(int n, Rng* rng) {
  LSG_OBS_SPAN("gen.generate_batch");
  GenerationReport report;
  report.train_seconds = train_seconds_;
  report.trace = trace_;
  Stopwatch watch;
  for (int i = 0; i < n; ++i) {
    auto traj = GenerateOne(rng);
    if (!traj.ok()) return traj.status();
    ++report.attempts;
    GeneratedQuery q;
    q.sql = RenderSql(traj->ast, db_->catalog());
    q.metric = traj->final_metric;
    q.satisfied = traj->satisfied;
    q.features =
        FeaturesOf(traj->ast, static_cast<int>(traj->actions.size()));
    q.ast = std::move(traj->ast);
    if (q.satisfied) ++report.satisfied;
    report.queries.push_back(std::move(q));
  }
  report.generate_seconds = watch.ElapsedSeconds();
  report.accuracy = report.attempts == 0
                        ? 0.0
                        : static_cast<double>(report.satisfied) /
                              static_cast<double>(report.attempts);
  return report;
}

StatusOr<ServingSnapshot> LearnedSqlGen::MakeServingSnapshot() const {
  const PolicyNetwork* actor = nullptr;
  if (ac_trainer_ != nullptr) {
    actor = &std::as_const(*ac_trainer_).actor();
  } else if (reinforce_trainer_ != nullptr) {
    actor = &std::as_const(*reinforce_trainer_).actor();
  } else {
    return Status::FailedPrecondition("call Train before snapshotting");
  }
  if (options_.trainer.net.extra_input_dims != 0) {
    return Status::FailedPrecondition(
        "batched serving supports the standard one-hot model only");
  }
  ServingSnapshot snap;
  snap.db = db_;
  snap.vocab = &*vocab_;
  snap.estimator = estimator_.get();
  snap.cost_model = cost_model_.get();
  snap.actor = actor;
  snap.env_opts = env_opts_;
  snap.constraint = constraint_;
  snap.attempts_factor = options_.attempts_factor;
  snap.train_seconds = train_seconds_;
  snap.trace = &trace_;
  return snap;
}

}  // namespace lsg
