#ifndef LEARNEDSQLGEN_CORE_BATCH_DECODER_H_
#define LEARNEDSQLGEN_CORE_BATCH_DECODER_H_

#include <cstdint>
#include <vector>

#include "core/generator.h"

namespace lsg {

/// One generation request inside a decode batch. Inputs mirror the service
/// request (n, batch-vs-satisfied semantics, the request's RNG stream);
/// outputs land in `status`/`report` when the item retires.
struct BatchDecodeItem {
  int n = 0;
  /// true → GenerateBatch semantics (exactly n attempts, keep everything);
  /// false → GenerateSatisfied semantics (until n satisfied or the
  /// n·attempts_factor budget runs out, keep satisfied only).
  bool batch_mode = false;
  /// Seed of this request's private sampling stream. Derived from
  /// (seed, request) by the caller so batch-mates cannot perturb it.
  uint64_t rng_seed = 0;

  Status status;
  GenerationReport report;
};

/// Ragged cross-request decoder: drives a group of generation requests
/// against one immutable ServingSnapshot, advancing every in-flight episode
/// one token per step through a single batched LSTM forward
/// (PolicyNetwork::NextDistributionBatch). Each item owns a private
/// environment, RNG stream and episode, so its sampled queries are
/// bitwise-identical to running LearnedSqlGen::GenerateBatch /
/// GenerateSatisfied alone with the same seed — batching changes wall-clock
/// only. Items join a lane as slots free up and leave when their budget
/// completes (ragged batching); a degenerate softmax row or environment
/// error fails only that item.
class BatchDecoder {
 public:
  struct Stats {
    uint64_t steps = 0;       ///< batched forward steps executed
    uint64_t lane_steps = 0;  ///< Σ active lanes over those steps
    int peak_lanes = 0;
  };

  /// `snapshot` must outlive the decoder and every Run call.
  BatchDecoder(const ServingSnapshot* snapshot, int max_lanes);

  /// Runs every item to completion (filling item->status / item->report).
  Stats Run(const std::vector<BatchDecodeItem*>& items);

 private:
  struct Lane;

  /// Starts `item` in a fresh lane; returns nullptr if the item finished
  /// without needing any episode (n <= 0).
  std::unique_ptr<Lane> StartItem(BatchDecodeItem* item);
  static void BeginAttempt(const PolicyNetwork& actor, Lane* lane);
  static void FinishItem(Lane* lane);

  const ServingSnapshot* snap_;
  int max_lanes_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_CORE_BATCH_DECODER_H_
