#ifndef LEARNEDSQLGEN_BASELINES_RANDOM_GENERATOR_H_
#define LEARNEDSQLGEN_BASELINES_RANDOM_GENERATOR_H_

#include "core/generator.h"

namespace lsg {

/// SQLSmith-style baseline [47]: uniformly random grammar walks with no
/// constraint feedback; generated queries are filtered against the
/// constraint afterwards ("first randomly generate SQL queries ... then
/// validate whether each generated SQL satisfies the constraint").
class RandomGenerator {
 public:
  /// `env` supplies the grammar (FSM), metric feedback and constraint; it
  /// must outlive the generator.
  RandomGenerator(SqlGenEnvironment* env, uint64_t seed);

  /// Generates until n satisfying queries are found or max_attempts runs
  /// out. Report contains only the satisfying queries.
  StatusOr<GenerationReport> GenerateSatisfied(int n, int64_t max_attempts);

  /// Generates exactly n queries; accuracy = satisfied fraction.
  StatusOr<GenerationReport> GenerateBatch(int n);

  /// One random episode through the environment.
  StatusOr<Trajectory> Rollout();

 private:
  SqlGenEnvironment* env_;
  Rng rng_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_BASELINES_RANDOM_GENERATOR_H_
