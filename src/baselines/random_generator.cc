#include "baselines/random_generator.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "sql/render.h"

namespace lsg {

RandomGenerator::RandomGenerator(SqlGenEnvironment* env, uint64_t seed)
    : env_(env), rng_(seed) {
  LSG_CHECK(env != nullptr);
}

StatusOr<Trajectory> RandomGenerator::Rollout() {
  env_->Reset();
  Trajectory traj;
  const int kMaxSteps = 512;
  for (int step = 0; step < kMaxSteps; ++step) {
    const std::vector<uint8_t>& mask = env_->ValidActions();
    int chosen = -1;
    int seen = 0;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (!mask[i]) continue;
      ++seen;
      if (rng_.Uniform(seen) == 0) chosen = static_cast<int>(i);
    }
    if (chosen < 0) return Status::Internal("empty FSM mask");
    auto sr = env_->Step(chosen);
    if (!sr.ok()) return sr.status();
    traj.actions.push_back(chosen);
    traj.rewards.push_back(sr->reward);
    if (sr->done) {
      traj.completed = true;
      traj.satisfied = sr->satisfied;
      traj.final_metric = sr->metric;
      traj.ast = env_->TakeAst();
      return traj;
    }
  }
  return Status::Internal("random rollout exceeded step cap");
}

StatusOr<GenerationReport> RandomGenerator::GenerateSatisfied(
    int n, int64_t max_attempts) {
  GenerationReport report;
  Stopwatch watch;
  const Catalog& catalog = *env_->fsm().builder().catalog();
  while (report.satisfied < n && report.attempts < max_attempts) {
    auto traj = Rollout();
    if (!traj.ok()) return traj.status();
    ++report.attempts;
    if (!traj->satisfied) continue;
    ++report.satisfied;
    GeneratedQuery q;
    q.sql = RenderSql(traj->ast, catalog);
    q.metric = traj->final_metric;
    q.satisfied = true;
    q.features = FeaturesOf(traj->ast, static_cast<int>(traj->actions.size()));
    report.queries.push_back(std::move(q));
  }
  report.generate_seconds = watch.ElapsedSeconds();
  report.accuracy = report.attempts == 0
                        ? 0.0
                        : static_cast<double>(report.satisfied) /
                              static_cast<double>(report.attempts);
  return report;
}

StatusOr<GenerationReport> RandomGenerator::GenerateBatch(int n) {
  GenerationReport report;
  Stopwatch watch;
  for (int i = 0; i < n; ++i) {
    auto traj = Rollout();
    if (!traj.ok()) return traj.status();
    ++report.attempts;
    if (traj->satisfied) ++report.satisfied;
  }
  report.generate_seconds = watch.ElapsedSeconds();
  report.accuracy = report.attempts == 0
                        ? 0.0
                        : static_cast<double>(report.satisfied) /
                              static_cast<double>(report.attempts);
  return report;
}

}  // namespace lsg
