#include "baselines/template_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace lsg {

TemplateGenerator::TemplateGenerator(SqlGenEnvironment* env,
                                     const TemplateGeneratorOptions& options)
    : env_(env), options_(options), rng_(options.seed) {
  LSG_CHECK(env != nullptr);
  LSG_CHECK_OK(MinePool());
}

WhereClause* TemplateGenerator::MutableWhere(QueryAst* ast) const {
  switch (ast->type) {
    case QueryType::kSelect:
      return ast->select != nullptr ? &ast->select->where : nullptr;
    case QueryType::kUpdate:
      return ast->update != nullptr ? &ast->update->where : nullptr;
    case QueryType::kDelete:
      return ast->del != nullptr ? &ast->del->where : nullptr;
    case QueryType::kInsert:
      return ast->insert != nullptr && ast->insert->source != nullptr
                 ? &ast->insert->source->where
                 : nullptr;
  }
  return nullptr;
}

Status TemplateGenerator::MinePool() {
  // 1. Benchmark-provided seed templates (parsed from SQL text).
  const Catalog& catalog = *env_->fsm().builder().catalog();
  for (const std::string& sql : options_.seed_templates) {
    auto ast = ParseSql(sql, catalog);
    if (!ast.ok()) {
      LSG_LOG(Warning) << "seed template skipped (" << ast.status().ToString()
                       << "): " << sql;
      continue;
    }
    Template tpl;
    tpl.ast = std::move(ast).value();
    if (!ExtractKnobs(&tpl)) continue;
    templates_.push_back(std::move(tpl));
    if (static_cast<int>(templates_.size()) >= options_.num_templates) break;
  }

  // 2. Random FSM walks mine the remainder; keep structures that expose at
  // least one tweakable literal predicate.
  const int kMaxMiningWalks = options_.num_templates * 20;
  for (int walk = 0;
       walk < kMaxMiningWalks &&
       static_cast<int>(templates_.size()) < options_.num_templates;
       ++walk) {
    env_->Reset();
    Trajectory traj;
    bool done = false;
    const int kMaxSteps = 512;
    for (int step = 0; step < kMaxSteps && !done; ++step) {
      const std::vector<uint8_t>& mask =
          const_cast<SqlGenEnvironment*>(env_)->ValidActions();
      int chosen = -1;
      int seen = 0;
      for (size_t i = 0; i < mask.size(); ++i) {
        if (!mask[i]) continue;
        ++seen;
        if (rng_.Uniform(seen) == 0) chosen = static_cast<int>(i);
      }
      if (chosen < 0) break;
      auto sr = env_->Step(chosen);
      if (!sr.ok()) return sr.status();
      if (sr->done) done = true;
    }
    if (!done) continue;
    Template tpl;
    tpl.ast = env_->TakeAst();
    if (!ExtractKnobs(&tpl)) continue;
    templates_.push_back(std::move(tpl));
  }
  if (templates_.empty()) {
    return Status::FailedPrecondition(
        "template mining produced no tweakable templates");
  }
  return Status::Ok();
}

bool TemplateGenerator::ExtractKnobs(Template* tpl) {
  WhereClause* where = MutableWhere(&tpl->ast);
  if (where == nullptr || where->empty()) return false;
  for (size_t i = 0; i < where->predicates.size(); ++i) {
    const Predicate& p = where->predicates[i];
    if (p.kind != PredicateKind::kValue) continue;
    const std::vector<int>& values = env_->fsm().vocab().value_token_ids(
        p.column.table_idx, p.column.column_idx);
    if (values.empty()) continue;
    Knob k;
    k.predicate_idx = static_cast<int>(i);
    k.table_idx = p.column.table_idx;
    k.column_idx = p.column.column_idx;
    k.value_pos = static_cast<int>(rng_.Uniform(values.size()));
    tpl->knobs.push_back(k);
  }
  return !tpl->knobs.empty();
}

double TemplateGenerator::Distance(double metric) const {
  const Constraint& c = env_->constraint();
  const double m = std::max(metric, 0.5);
  if (c.kind == ConstraintKind::kPoint) {
    return std::abs(std::log(m / std::max(c.point, 0.5)));
  }
  if (metric >= c.lo && metric <= c.hi) return 0.0;
  double dl = std::abs(std::log(m / std::max(c.lo, 0.5)));
  double dr = std::abs(std::log(m / std::max(c.hi, 0.5)));
  return std::min(dl, dr);
}

void TemplateGenerator::ApplyKnobs(Template* tpl) const {
  WhereClause* where = MutableWhere(&tpl->ast);
  LSG_CHECK(where != nullptr);
  const Vocabulary& vocab = env_->fsm().vocab();
  for (const Knob& k : tpl->knobs) {
    const std::vector<int>& values =
        vocab.value_token_ids(k.table_idx, k.column_idx);
    int pos = std::clamp(k.value_pos, 0,
                         static_cast<int>(values.size()) - 1);
    where->predicates[k.predicate_idx].value = vocab.token(values[pos]).value;
  }
}

StatusOr<bool> TemplateGenerator::Climb(Template* tpl, double* best_metric,
                                        int64_t* evals, int64_t eval_budget) {
  const Vocabulary& vocab = env_->fsm().vocab();
  // Random restart of the knob positions.
  for (Knob& k : tpl->knobs) {
    const std::vector<int>& values =
        vocab.value_token_ids(k.table_idx, k.column_idx);
    k.value_pos = static_cast<int>(rng_.Uniform(values.size()));
  }
  ApplyKnobs(tpl);
  double metric = env_->MetricOf(tpl->ast);
  ++*evals;
  double best_dist = Distance(metric);
  *best_metric = metric;

  for (int iter = 0; iter < options_.max_climb_iters; ++iter) {
    if (best_dist == 0.0) return true;
    if (*evals >= eval_budget) return false;
    bool improved = false;
    for (size_t ki = 0; ki < tpl->knobs.size(); ++ki) {
      Knob& k = tpl->knobs[ki];
      const int n_values = static_cast<int>(
          vocab.value_token_ids(k.table_idx, k.column_idx).size());
      const int original = k.value_pos;
      int best_pos = original;
      for (int step : options_.step_sizes) {
        for (int dir : {-1, 1}) {
          int pos = original + dir * step;
          if (pos < 0 || pos >= n_values || pos == original) continue;
          k.value_pos = pos;
          ApplyKnobs(tpl);
          double m = env_->MetricOf(tpl->ast);
          ++*evals;
          double d = Distance(m);
          if (d < best_dist) {
            best_dist = d;
            best_pos = pos;
            *best_metric = m;
            improved = true;
          }
          if (*evals >= eval_budget) break;
        }
        if (*evals >= eval_budget) break;
      }
      k.value_pos = best_pos;
      if (*evals >= eval_budget) break;
    }
    ApplyKnobs(tpl);
    if (!improved) break;
  }
  return best_dist == 0.0;
}

StatusOr<GenerationReport> TemplateGenerator::GenerateSatisfied(
    int n, int64_t max_attempts) {
  GenerationReport report;
  Stopwatch watch;
  const Catalog& catalog = *env_->fsm().builder().catalog();
  int64_t evals = 0;
  while (report.satisfied < n && evals < max_attempts) {
    Template& tpl = templates_[rng_.Uniform(templates_.size())];
    double metric = 0.0;
    auto ok = Climb(&tpl, &metric, &evals, max_attempts);
    if (!ok.ok()) return ok.status();
    ++report.attempts;
    if (!*ok) continue;
    ++report.satisfied;
    GeneratedQuery q;
    q.sql = RenderSql(tpl.ast, catalog);
    q.metric = metric;
    q.satisfied = true;
    q.features = FeaturesOf(tpl.ast, /*num_tokens=*/0);
    report.queries.push_back(std::move(q));
  }
  report.attempts = static_cast<int>(evals);
  report.generate_seconds = watch.ElapsedSeconds();
  report.accuracy = evals == 0 ? 0.0
                               : static_cast<double>(report.satisfied) /
                                     static_cast<double>(evals);
  return report;
}

StatusOr<GenerationReport> TemplateGenerator::GenerateBatch(int n) {
  GenerationReport report;
  Stopwatch watch;
  int64_t evals = 0;
  for (int i = 0; i < n; ++i) {
    Template& tpl = templates_[rng_.Uniform(templates_.size())];
    double metric = 0.0;
    // Per-climb budget keeps each generated query's work bounded.
    int64_t budget = evals + options_.max_climb_iters * 8;
    auto ok = Climb(&tpl, &metric, &evals, budget);
    if (!ok.ok()) return ok.status();
    ++report.attempts;
    if (*ok) ++report.satisfied;
  }
  report.generate_seconds = watch.ElapsedSeconds();
  report.accuracy = report.attempts == 0
                        ? 0.0
                        : static_cast<double>(report.satisfied) /
                              static_cast<double>(report.attempts);
  return report;
}

}  // namespace lsg
