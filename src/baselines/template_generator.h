#ifndef LEARNEDSQLGEN_BASELINES_TEMPLATE_GENERATOR_H_
#define LEARNEDSQLGEN_BASELINES_TEMPLATE_GENERATOR_H_

#include <memory>
#include <vector>

#include "core/generator.h"

namespace lsg {

struct TemplateGeneratorOptions {
  /// Benchmark-provided SQL templates to seed the pool with (parsed via
  /// sql/parser; entries that fail to parse or expose no tweakable literal
  /// are skipped). The paper's Template baseline starts from "the provided
  /// templates of the three benchmarks" — see datasets/benchmark_templates.
  std::vector<std::string> seed_templates;

  /// Size of the template pool; seeds count toward it and random FSM walks
  /// mine the remainder (the paper's "reassembling the predicates").
  int num_templates = 24;
  /// Hill-climbing iterations per climb before giving up on a template.
  int max_climb_iters = 64;
  /// Neighbor step sizes tried per knob (indices into the sorted value
  /// list of the predicate's column).
  std::vector<int> step_sizes = {1, 4, 16};
  uint64_t seed = 77;
};

/// Template baseline after Bruno et al. [10]: fixes a pool of query
/// structures ("templates") and greedily tweaks the predicate constants to
/// minimize the distance between the estimated metric and the target
/// constraint. Strengths and weaknesses mirror the paper's description:
/// fast when a template can reach the target, hopeless when none can
/// ("it can never reach 10⁸ by adjusting x because the table has fewer
/// rows" — §7.2.2).
class TemplateGenerator {
 public:
  /// Mines the template pool from random FSM walks over `env`'s grammar.
  TemplateGenerator(SqlGenEnvironment* env,
                    const TemplateGeneratorOptions& options);

  /// Hill-climbs until n satisfying queries are produced or max_attempts
  /// metric evaluations are spent.
  StatusOr<GenerationReport> GenerateSatisfied(int n, int64_t max_attempts);

  /// Runs n climbs and reports the fraction whose final query satisfies
  /// the constraint (accuracy mode).
  StatusOr<GenerationReport> GenerateBatch(int n);

  int pool_size() const { return static_cast<int>(templates_.size()); }

 private:
  struct Knob {
    // Location of a tweakable literal: which WHERE predicate (by index) of
    // the template's outer query / DML where-clause.
    int predicate_idx = -1;
    int table_idx = -1;
    int column_idx = -1;
    int value_pos = 0;  ///< current index into the column's value tokens
  };

  struct Template {
    QueryAst ast;
    std::vector<Knob> knobs;
  };

  /// Builds the pool (seed templates + mined walks); from the constructor.
  Status MinePool();

  /// Registers the tweakable literal predicates of a template as knobs;
  /// false if the template has none (it is then useless to the climber).
  bool ExtractKnobs(Template* tpl);

  /// One hill climb on a random template. Returns the final (best) metric
  /// and whether it satisfies the constraint; `evals` accumulates metric
  /// evaluations; the template's knob state is left at the optimum.
  StatusOr<bool> Climb(Template* tpl, double* best_metric, int64_t* evals,
                       int64_t eval_budget);

  /// Distance from metric to the constraint (0 when satisfied).
  double Distance(double metric) const;

  /// Writes a knob assignment into the template's AST.
  void ApplyKnobs(Template* tpl) const;

  WhereClause* MutableWhere(QueryAst* ast) const;

  SqlGenEnvironment* env_;
  TemplateGeneratorOptions options_;
  Rng rng_;
  std::vector<Template> templates_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_BASELINES_TEMPLATE_GENERATOR_H_
