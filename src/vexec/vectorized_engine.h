#ifndef LEARNEDSQLGEN_VEXEC_VECTORIZED_ENGINE_H_
#define LEARNEDSQLGEN_VEXEC_VECTORIZED_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/backend.h"
#include "exec/executor.h"
#include "sql/ast.h"
#include "storage/table.h"
#include "vexec/batch.h"
#include "vexec/morsel_pool.h"

namespace lsg {
namespace vexec {

/// Deliberately-planted defects for oracle mutation testing (lsgfuzz
/// --inject-bug ...): each models a realistic vectorized-engine bug class
/// that the lockstep differential oracle must catch.
enum class InjectBug {
  kNone,
  /// Join probe trusts the hash slot without rechecking the key: the first
  /// occupied slot on the open-addressing probe path matches any key.
  kHashCollision,
  /// The selection-vector build drops the last tuple of every batch
  /// (full or partial) — the classic off-by-one in a `<` vs `<=` bound.
  kSelVectorOffByOne,
};

struct VexecOptions {
  /// Morsel parallelism including the calling thread; 1 = fully serial.
  int workers = 1;
  /// Join blowup bound; must match the reference Executor's for bitwise
  /// OutOfRange agreement.
  uint64_t max_intermediate_tuples = 1ull << 24;
  InjectBug inject = InjectBug::kNone;
};

/// Columnar batch execution engine. Same query surface and — by
/// construction — bitwise-identical results (cardinality, first_column,
/// ExecStats) as the reference Executor, at vectorized speed:
///
///   * scans and predicate evaluation run as typed kernels over the
///     Column backing arrays in kBatchSize batches (no per-row Value
///     materialization on the hot paths);
///   * FK hash joins use an open-addressing INT64 table (SplitMix64) when
///     both key columns are INT64 — every FK edge in the bundled datasets
///     — and fall back to the reference engine's exact
///     unordered_map<Value, ...> build otherwise;
///   * batches are dispatched to a MorselPool, each worker writing a
///     disjoint output chunk; chunks are concatenated in morsel order so
///     tuple order (and therefore every order-sensitive double
///     accumulation downstream) matches the reference engine exactly.
///
/// The sequential tail (GROUP BY / HAVING / aggregate collapse) reuses the
/// shared AggregateValues/GroupKeyOf helpers, running over the small
/// post-filter tuple set. The Executor stays the permanent correctness
/// oracle: tests/vexec_test.cc sweeps both engines differentially over
/// every bundled dataset and `lsgfuzz --oracle vexec` cross-checks every
/// fuzz episode.
///
/// One instance answers one query at a time (the ExecutionBackend
/// contract); distinct instances are independent.
class VectorizedEngine : public ExecutionBackend {
 public:
  explicit VectorizedEngine(const Database* db, VexecOptions opts = {});

  StatusOr<uint64_t> Cardinality(const QueryAst& ast) const override;
  StatusOr<SelectResult> ExecuteSelect(
      const SelectQuery& q, bool materialize_first_column) const override;
  StatusOr<std::vector<bool>> MatchRows(
      int table_idx, const WhereClause& where) const override;
  const Database* database() const override { return db_; }
  const char* name() const override { return "vectorized"; }

  const VexecOptions& options() const { return opts_; }

 private:
  StatusOr<TupleSetV> BuildJoin(const SelectQuery& q, ExecStats* stats) const;
  Status ApplyWhere(const WhereClause& where, TupleSetV* ts,
                    ExecStats* stats) const;
  /// Evaluates one predicate over all tuples into a byte mask.
  Status EvalPredicate(const Predicate& p, const TupleSetV& ts, Mask* out,
                       ExecStats* stats) const;
  /// Typed compare kernel: column `col` of the table at chain position
  /// `pos` against a constant, over tuple range [begin, end).
  void CompareKernel(const TupleSetV& ts, size_t pos, int column_idx,
                     CompareOp op, const Value& constant, size_t begin,
                     size_t end, Mask* out) const;
  Value TupleValue(const TupleSetV& ts, size_t tuple,
                   const ColumnRef& col) const;

  const Database* db_;
  VexecOptions opts_;
  /// Morsel dispatcher; scheduling state only, no query state, so issuing
  /// jobs from const query methods is safe (one query at a time).
  mutable MorselPool pool_;
};

/// Parses an --inject-bug name ("hash-collision", "sel-vector-off-by-one")
/// into the enum; returns kNone for anything else.
InjectBug ParseInjectBug(const std::string& name);

}  // namespace vexec
}  // namespace lsg

#endif  // LEARNEDSQLGEN_VEXEC_VECTORIZED_ENGINE_H_
