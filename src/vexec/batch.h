#ifndef LEARNEDSQLGEN_VEXEC_BATCH_H_
#define LEARNEDSQLGEN_VEXEC_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsg {
namespace vexec {

/// Tuples processed per vectorized primitive invocation. 2048 × 4-byte row
/// ids fits comfortably in L1 alongside one predicate mask, the classic
/// vector-at-a-time sweet spot; it is also the morsel *granule* — parallel
/// work is handed out in whole batches.
inline constexpr size_t kBatchSize = 2048;

/// Predicate result mask: one byte per tuple (0 = filtered, 1 = kept).
/// Byte-per-tuple rather than a bitset so disjoint batch ranges can be
/// written from different morsel workers without sharing bytes.
using Mask = std::vector<uint8_t>;

/// Indices of surviving tuples within a batch / tuple set, in ascending
/// order. Built by the filter primitive from one or more combined Masks.
using SelectionVector = std::vector<uint32_t>;

/// Joined working set, columnar by chain position: cols[pos][t] is the row
/// id of tuple t in the table at chain position pos. Same information as
/// the reference Executor's row-major `flat` store, laid out so that join
/// probes and predicate gathers touch one contiguous array per table.
/// Tuple order (t) is identical to the reference engine's — this is what
/// makes every downstream result bitwise comparable.
struct TupleSetV {
  std::vector<int> tables;                     ///< catalog table indices
  std::vector<std::vector<uint32_t>> cols;     ///< size = tables.size()
  size_t count = 0;

  size_t ChainPos(int table_idx) const {
    for (size_t j = 0; j < tables.size(); ++j) {
      if (tables[j] == table_idx) return j;
    }
    return tables.size();  // not in scope; callers treat as NULL column
  }
};

/// Number of kBatchSize batches covering `count` tuples (last may be short).
inline size_t NumBatches(size_t count) {
  return (count + kBatchSize - 1) / kBatchSize;
}

}  // namespace vexec
}  // namespace lsg

#endif  // LEARNEDSQLGEN_VEXEC_BATCH_H_
