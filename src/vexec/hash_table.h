#ifndef LEARNEDSQLGEN_VEXEC_HASH_TABLE_H_
#define LEARNEDSQLGEN_VEXEC_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace lsg {
namespace vexec {

/// Open-addressing hash table for INT64 equi-join build sides. Duplicate
/// keys chain their build rows in insertion order, so a probe emits rows in
/// exactly the order the reference Executor's `unordered_map<Value,
/// vector<uint32_t>>` stores them (both insert rows ascending).
///
/// Layout: power-of-two array of 16-byte {key, head, tail} slots, linear
/// probing; duplicates thread through a per-row `next` chain with a tail
/// pointer per slot so append is O(1) and order is preserved. Key and
/// chain head share a cache line, so a probe costs one memory access —
/// with Prefetch() issued a few keys ahead, even that miss overlaps with
/// useful work (the table spans tens of MB at 10⁶-row build sides, far
/// beyond cache).
class Int64JoinHashTable {
 public:
  /// `expected` is the build-side row count (pre-sizes to 2× rounded up to
  /// a power of two, keeping load factor below 0.5).
  explicit Int64JoinHashTable(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{0, -1, -1});
    chain_row_.reserve(expected);
    chain_next_.reserve(expected);
    mask_ = cap - 1;
  }

  /// Dense-range mode: when the build keys span a range comparable to the
  /// row count (synthetic PK columns are sequential, so every FK edge in
  /// the bundled datasets qualifies) the table degenerates to a
  /// direct-address array — no hashing, no collisions, one bounded-index
  /// load per probe. Chain semantics (insertion order, duplicates) are
  /// identical to the sparse mode. Caller guarantees
  /// `max_key - min_key` fits size_t sanely (see DenseRangeUsable).
  Int64JoinHashTable(int64_t min_key, int64_t max_key, size_t expected)
      : dense_(true), min_key_(min_key), max_key_(max_key) {
    dense_heads_.assign(
        static_cast<size_t>(static_cast<uint64_t>(max_key) -
                            static_cast<uint64_t>(min_key)) + 1,
        -1);
    dense_tails_.assign(dense_heads_.size(), -1);
    chain_row_.reserve(expected);
    chain_next_.reserve(expected);
  }

  /// True when the dense ctor is worth it: keys span at most ~4× the row
  /// count (array stays within 16 bytes/row) and the range arithmetic
  /// cannot overflow.
  static bool DenseRangeUsable(int64_t min_key, int64_t max_key,
                               size_t rows) {
    const uint64_t range = static_cast<uint64_t>(max_key) -
                           static_cast<uint64_t>(min_key);
    return range < (uint64_t{4} * rows + 16);
  }

  /// Inserts one build row. Rows must be inserted in ascending row order to
  /// mirror the reference build loop.
  void Insert(int64_t key, uint32_t row) {
    const int32_t e = static_cast<int32_t>(chain_row_.size());
    chain_row_.push_back(row);
    chain_next_.push_back(-1);
    if (dense_) {
      const size_t i = DenseIndex(key);
      if (dense_heads_[i] < 0) {
        dense_heads_[i] = e;
      } else {
        chain_next_[dense_tails_[i]] = e;
      }
      dense_tails_[i] = e;
      return;
    }
    size_t s = Hash(key) & mask_;
    while (slots_[s].head >= 0 && slots_[s].key != key) s = (s + 1) & mask_;
    Slot& slot = slots_[s];
    if (slot.head < 0) {
      slot.key = key;
      slot.head = e;
    } else {
      chain_next_[slot.tail] = e;
    }
    slot.tail = e;
  }

  /// Returns the chain head for `key`, or -1 if absent. When
  /// `skip_key_recheck` is set (the `hash-collision` injected bug), the
  /// first occupied slot on the probe path matches regardless of its key —
  /// exactly the defect a missing key recheck after open-addressing
  /// collisions would produce.
  int32_t Find(int64_t key, bool skip_key_recheck = false) const {
    if (dense_) {
      if (key < min_key_ || key > max_key_) return -1;
      return dense_heads_[DenseIndex(key)];
    }
    size_t s = Hash(key) & mask_;
    while (slots_[s].head >= 0) {
      if (skip_key_recheck || slots_[s].key == key) return slots_[s].head;
      s = (s + 1) & mask_;
    }
    return -1;
  }

  /// Hints the cache that `key`'s home slot is about to be probed or
  /// inserted. Issued a small distance ahead of the probe loop, this
  /// overlaps the slot fetch with the preceding probes' work.
  void Prefetch(int64_t key) const {
    if (dense_) {
      if (key >= min_key_ && key <= max_key_) {
        __builtin_prefetch(dense_heads_.data() + DenseIndex(key));
      }
      return;
    }
    __builtin_prefetch(slots_.data() + (Hash(key) & mask_));
  }

  /// Chain iteration: row of entry `e`, then the next entry (-1 ends).
  uint32_t Row(int32_t e) const { return chain_row_[e]; }
  int32_t Next(int32_t e) const { return chain_next_[e]; }

  size_t num_entries() const { return chain_row_.size(); }
  bool dense() const { return dense_; }

 private:
  struct Slot {
    int64_t key;
    int32_t head;  ///< first chain entry, -1 = empty slot
    int32_t tail;  ///< last chain entry (build-time append point)
  };

  /// SplitMix64 finalizer — strong enough that linear probing stays short
  /// on sequential PK keys.
  static uint64_t Hash(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  size_t DenseIndex(int64_t key) const {
    return static_cast<size_t>(static_cast<uint64_t>(key) -
                               static_cast<uint64_t>(min_key_));
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> chain_row_;
  std::vector<int32_t> chain_next_;
  size_t mask_ = 0;
  bool dense_ = false;
  int64_t min_key_ = 0;
  int64_t max_key_ = -1;
  std::vector<int32_t> dense_heads_;
  std::vector<int32_t> dense_tails_;
};

}  // namespace vexec
}  // namespace lsg

#endif  // LEARNEDSQLGEN_VEXEC_HASH_TABLE_H_
