#include "vexec/morsel_pool.h"

#include "common/logging.h"

namespace lsg {
namespace vexec {

MorselPool::MorselPool(int workers) : workers_(workers < 1 ? 1 : workers) {
  threads_.reserve(static_cast<size_t>(workers_ - 1));
  for (int i = 0; i < workers_ - 1; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

MorselPool::~MorselPool() {
  {
    // dtor-lock: mu_ is a leaf mutex and Run() has returned on every user
    // (one query at a time contract), so only idle workers can contend.
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void MorselPool::DrainJob() {
  const std::function<void(size_t)>* fn = fn_;
  while (next_ < num_morsels_) {
    const size_t i = next_++;
    mu_.Unlock();
    (*fn)(i);
    mu_.Lock();
  }
  --active_;
  if (active_ == 0) done_cv_.NotifyAll();
}

void MorselPool::WorkerLoop() {
  uint64_t seen_gen = 0;
  MutexLock lock(&mu_);
  for (;;) {
    while (job_gen_ == seen_gen && !shutdown_) work_cv_.Wait(mu_);
    if (shutdown_) return;
    seen_gen = job_gen_;
    DrainJob();
  }
}

void MorselPool::Run(size_t num_morsels,
                     const std::function<void(size_t)>& fn) {
  MutexLock lock(&mu_);
  LSG_CHECK(active_ == 0);  // one job at a time
  fn_ = &fn;
  num_morsels_ = num_morsels;
  next_ = 0;
  active_ = workers_;
  ++job_gen_;
  if (workers_ > 1) work_cv_.NotifyAll();
  DrainJob();  // the caller is the last participant
  while (active_ > 0) done_cv_.Wait(mu_);
  fn_ = nullptr;
}

}  // namespace vexec
}  // namespace lsg
