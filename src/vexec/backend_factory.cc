#include "vexec/backend_factory.h"

#include "exec/executor.h"

namespace lsg {
namespace vexec {

std::unique_ptr<ExecutionBackend> MakeBackend(ExecutionBackendKind kind,
                                              const Database* db,
                                              const VexecOptions& opts) {
  switch (kind) {
    case ExecutionBackendKind::kReference:
      return std::make_unique<Executor>(db, opts.max_intermediate_tuples);
    case ExecutionBackendKind::kVectorized:
      return std::make_unique<VectorizedEngine>(db, opts);
  }
  return std::make_unique<Executor>(db, opts.max_intermediate_tuples);
}

}  // namespace vexec
}  // namespace lsg
