#ifndef LEARNEDSQLGEN_VEXEC_BACKEND_FACTORY_H_
#define LEARNEDSQLGEN_VEXEC_BACKEND_FACTORY_H_

#include <memory>

#include "exec/backend.h"
#include "vexec/vectorized_engine.h"

namespace lsg {
namespace vexec {

/// Builds the requested execution backend over `db` (which must outlive
/// the result). kReference ignores `opts.workers`/`opts.inject`;
/// `opts.max_intermediate_tuples` applies to both engines so they agree on
/// the join-blowup OutOfRange boundary.
std::unique_ptr<ExecutionBackend> MakeBackend(ExecutionBackendKind kind,
                                              const Database* db,
                                              const VexecOptions& opts = {});

}  // namespace vexec
}  // namespace lsg

#endif  // LEARNEDSQLGEN_VEXEC_BACKEND_FACTORY_H_
