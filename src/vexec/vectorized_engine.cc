#include "vexec/vectorized_engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "exec/expression.h"
#include "obs/metrics_registry.h"
#include "vexec/hash_table.h"

namespace lsg {
namespace vexec {

namespace {

/// Applies `op` to a three-way comparison sign (CompareValues semantics).
inline bool OpHolds(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kNumOps:
      break;
  }
  return false;
}

inline int Sign3(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
inline int Sign3(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

/// One worker's join output: row ids per chain position (the new table's
/// rows in the last slot), concatenated in morsel order afterwards.
struct JoinChunk {
  std::vector<std::vector<uint32_t>> cols;
  size_t count = 0;
  bool exceeded = false;
};

}  // namespace

InjectBug ParseInjectBug(const std::string& name) {
  if (name == "hash-collision") return InjectBug::kHashCollision;
  if (name == "sel-vector-off-by-one") return InjectBug::kSelVectorOffByOne;
  return InjectBug::kNone;
}

VectorizedEngine::VectorizedEngine(const Database* db, VexecOptions opts)
    : db_(db), opts_(opts), pool_(opts.workers) {
  LSG_CHECK(db != nullptr);
}

Value VectorizedEngine::TupleValue(const TupleSetV& ts, size_t tuple,
                                   const ColumnRef& col) const {
  const size_t pos = ts.ChainPos(col.table_idx);
  if (pos == ts.tables.size()) return Value::Null();  // FSM prevents this
  return db_->tables()[col.table_idx].GetValue(ts.cols[pos][tuple],
                                               col.column_idx);
}

StatusOr<TupleSetV> VectorizedEngine::BuildJoin(const SelectQuery& q,
                                                ExecStats* stats) const {
  if (q.tables.empty()) {
    return Status::InvalidArgument("SELECT without FROM tables");
  }
  const Catalog& cat = db_->catalog();
  TupleSetV ts;
  ts.tables.push_back(q.tables[0]);
  const Table& base = db_->tables()[q.tables[0]];
  ts.count = base.num_rows();
  ts.cols.emplace_back(ts.count);
  for (size_t r = 0; r < ts.count; ++r) {
    ts.cols[0][r] = static_cast<uint32_t>(r);
  }
  stats->rows_scanned += static_cast<double>(ts.count);

  for (size_t i = 1; i < q.tables.size(); ++i) {
    const int new_ti = q.tables[i];
    const Table& new_table = db_->tables()[new_ti];
    stats->rows_scanned += static_cast<double>(new_table.num_rows());

    // FK edge selection — must mirror the reference Executor exactly
    // (chain tables in order, first JoinEdges entry wins) so both engines
    // join on the same columns. Enforced by the differential tests.
    int probe_table = -1, probe_col = -1, build_col = -1;
    for (size_t j = 0; j < ts.tables.size() && probe_table < 0; ++j) {
      for (const ForeignKey& fk :
           cat.JoinEdges(cat.table(ts.tables[j]).name(),
                         cat.table(new_ti).name())) {
        const bool new_is_from = fk.from_table == cat.table(new_ti).name();
        const std::string& new_col_name =
            new_is_from ? fk.from_column : fk.to_column;
        const std::string& old_col_name =
            new_is_from ? fk.to_column : fk.from_column;
        probe_table = ts.tables[j];
        probe_col = cat.table(ts.tables[j]).FindColumn(old_col_name);
        build_col = cat.table(new_ti).FindColumn(new_col_name);
        break;
      }
    }
    if (probe_table < 0) {
      return Status::InvalidArgument(
          "no FK edge joins " + cat.table(new_ti).name() + " into the chain");
    }

    const size_t stride = ts.tables.size();
    const size_t probe_pos = ts.ChainPos(probe_table);
    const Column& build_column = new_table.column(build_col);
    const Column& probe_column =
        db_->tables()[probe_table].column(probe_col);
    const std::vector<uint32_t>& probe_rows = ts.cols[probe_pos];

    stats->rows_probed += static_cast<double>(ts.count);
    const size_t num_morsels = NumBatches(ts.count);
    std::vector<JoinChunk> chunks(num_morsels);
    const uint64_t cap = opts_.max_intermediate_tuples;
    const bool skip_recheck = opts_.inject == InjectBug::kHashCollision;

    if (build_column.type() == DataType::kInt64 &&
        probe_column.type() == DataType::kInt64) {
      // Typed path: open-addressing INT64 table, typed probe keys.
      // Prefetch distance: far enough ahead to hide a memory round-trip
      // behind ~16 probes' work, near enough that the line is still
      // resident when the probe arrives.
      constexpr size_t kPrefetchDist = 16;
      const std::vector<int64_t>& build_keys = build_column.ints();
      const std::vector<bool>& build_valid = build_column.validity();
      const bool build_all_valid = build_column.all_valid();
      const size_t build_rows = new_table.num_rows();
      // Key-range scan: sequential-PK build sides (every FK edge in the
      // bundled datasets) get the dense direct-address mode — no hashing,
      // no collisions, one bounded-index load per probe. The injected
      // hash-collision bug lives in the sparse probe path, so mutation
      // runs pin that mode to keep the defect reachable.
      int64_t min_key = 0, max_key = -1;
      bool have_key = false;
      for (size_t r = 0; r < build_rows; ++r) {
        if (!build_all_valid && !build_valid[r]) continue;
        const int64_t k = build_keys[r];
        if (!have_key) {
          min_key = max_key = k;
          have_key = true;
        } else {
          min_key = std::min(min_key, k);
          max_key = std::max(max_key, k);
        }
      }
      const bool use_dense =
          have_key &&
          Int64JoinHashTable::DenseRangeUsable(min_key, max_key, build_rows) &&
          opts_.inject != InjectBug::kHashCollision;
      Int64JoinHashTable ht =
          use_dense ? Int64JoinHashTable(min_key, max_key, build_rows)
                    : Int64JoinHashTable(build_rows);
      for (size_t r = 0; r < build_rows; ++r) {
        if (r + kPrefetchDist < build_rows &&
            (build_all_valid || build_valid[r + kPrefetchDist])) {
          ht.Prefetch(build_keys[r + kPrefetchDist]);
        }
        if (!build_all_valid && !build_valid[r]) continue;
        ht.Insert(build_keys[r], static_cast<uint32_t>(r));
      }
      const std::vector<int64_t>& probe_keys = probe_column.ints();
      const std::vector<bool>& probe_valid = probe_column.validity();
      const bool probe_all_valid = probe_column.all_valid();
      auto probe_fn = [&](size_t m) {
        JoinChunk& chunk = chunks[m];
        chunk.cols.assign(stride + 1, {});
        for (auto& c : chunk.cols) c.reserve(kBatchSize);
        const size_t begin = m * kBatchSize;
        const size_t end = std::min(begin + kBatchSize, ts.count);
        for (size_t t = begin; t < end && !chunk.exceeded; ++t) {
          if (t + kPrefetchDist < end) {
            const uint32_t ahead = probe_rows[t + kPrefetchDist];
            if (probe_all_valid || probe_valid[ahead]) {
              ht.Prefetch(probe_keys[ahead]);
            }
          }
          const uint32_t prow = probe_rows[t];
          if (!probe_all_valid && !probe_valid[prow]) continue;
          for (int32_t e = ht.Find(probe_keys[prow], skip_recheck); e >= 0;
               e = ht.Next(e)) {
            if (chunk.count + 1 > cap) {
              chunk.exceeded = true;
              break;
            }
            for (size_t j = 0; j < stride; ++j) {
              chunk.cols[j].push_back(ts.cols[j][t]);
            }
            chunk.cols[stride].push_back(ht.Row(e));
            ++chunk.count;
          }
        }
      };
      pool_.Run(num_morsels, probe_fn);
    } else {
      // Generic path: exactly the reference engine's Value-keyed build.
      std::unordered_map<Value, std::vector<uint32_t>, ValueHash> hash;
      hash.reserve(new_table.num_rows());
      for (size_t r = 0; r < new_table.num_rows(); ++r) {
        Value v = new_table.GetValue(r, build_col);
        if (v.is_null()) continue;
        hash[v].push_back(static_cast<uint32_t>(r));
      }
      auto probe_fn = [&](size_t m) {
        JoinChunk& chunk = chunks[m];
        chunk.cols.assign(stride + 1, {});
        const size_t begin = m * kBatchSize;
        const size_t end = std::min(begin + kBatchSize, ts.count);
        for (size_t t = begin; t < end && !chunk.exceeded; ++t) {
          Value v = probe_column.GetValue(probe_rows[t]);
          if (v.is_null()) continue;
          auto it = hash.find(v);
          if (it == hash.end()) continue;
          for (uint32_t r : it->second) {
            if (chunk.count + 1 > cap) {
              chunk.exceeded = true;
              break;
            }
            for (size_t j = 0; j < stride; ++j) {
              chunk.cols[j].push_back(ts.cols[j][t]);
            }
            chunk.cols[stride].push_back(r);
            ++chunk.count;
          }
        }
      };
      pool_.Run(num_morsels, probe_fn);
    }

    // Stitch chunks back in morsel (= base tuple) order so the joined
    // tuple sequence is identical to the reference engine's serial probe.
    uint64_t total = 0;
    bool exceeded = false;
    for (const JoinChunk& c : chunks) {
      total += c.count;
      exceeded = exceeded || c.exceeded;
    }
    if (exceeded || total > cap) {
      return Status::OutOfRange("join intermediate exceeds limit");
    }
    std::vector<std::vector<uint32_t>> out(stride + 1);
    for (size_t j = 0; j <= stride; ++j) {
      out[j].reserve(total);
      for (const JoinChunk& c : chunks) {
        out[j].insert(out[j].end(), c.cols[j].begin(), c.cols[j].end());
      }
    }
    ts.tables.push_back(new_ti);
    ts.cols = std::move(out);
    ts.count = static_cast<size_t>(total);
    stats->rows_joined += static_cast<double>(total);
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("vexec.join_rows")
          .Add(total);
    }
  }
  return ts;
}

void VectorizedEngine::CompareKernel(const TupleSetV& ts, size_t pos,
                                     int column_idx, CompareOp op,
                                     const Value& constant, size_t begin,
                                     size_t end, Mask* out) const {
  if (constant.is_null()) return;  // NULL comparand: everything false
  const Column& col = db_->tables()[ts.tables[pos]].column(column_idx);
  const std::vector<uint32_t>& rows = ts.cols[pos];
  const std::vector<bool>& valid = col.validity();
  const bool all_valid = col.all_valid();
  const bool col_is_string = col.type() == DataType::kString ||
                             col.type() == DataType::kCategorical;

  // Mixed type ranks (string column vs numeric constant or vice versa):
  // Value::Compare returns the rank difference, constant across all
  // non-NULL rows — evaluate the operator once.
  if (col_is_string != constant.is_string()) {
    const bool hit = OpHolds(op, col_is_string ? 1 : -1);
    if (!hit) return;
    for (size_t t = begin; t < end; ++t) {
      (*out)[t] = (all_valid || valid[rows[t]]) ? 1 : 0;
    }
    return;
  }

  switch (col.type()) {
    case DataType::kInt64: {
      const std::vector<int64_t>& data = col.ints();
      if (constant.is_int()) {
        const int64_t k = constant.as_int();
        for (size_t t = begin; t < end; ++t) {
          const uint32_t r = rows[t];
          (*out)[t] =
              ((all_valid || valid[r]) && OpHolds(op, Sign3(data[r], k)))
                  ? 1
                  : 0;
        }
      } else {
        const double k = constant.as_double();
        for (size_t t = begin; t < end; ++t) {
          const uint32_t r = rows[t];
          (*out)[t] = ((all_valid || valid[r]) &&
                       OpHolds(op, Sign3(static_cast<double>(data[r]), k)))
                          ? 1
                          : 0;
        }
      }
      return;
    }
    case DataType::kDouble: {
      const std::vector<double>& data = col.doubles();
      const double k = constant.AsNumber();
      for (size_t t = begin; t < end; ++t) {
        const uint32_t r = rows[t];
        (*out)[t] =
            ((all_valid || valid[r]) && OpHolds(op, Sign3(data[r], k)))
                ? 1
                : 0;
      }
      return;
    }
    case DataType::kString:
    case DataType::kCategorical: {
      const std::vector<std::string>& data = col.strings();
      const std::string& k = constant.as_string();
      for (size_t t = begin; t < end; ++t) {
        const uint32_t r = rows[t];
        (*out)[t] =
            ((all_valid || valid[r]) && OpHolds(op, data[r].compare(k)))
                ? 1
                : 0;
      }
      return;
    }
  }
}

Status VectorizedEngine::EvalPredicate(const Predicate& p,
                                       const TupleSetV& ts, Mask* out,
                                       ExecStats* stats) const {
  out->assign(ts.count, 0);
  const size_t num_morsels = NumBatches(ts.count);
  switch (p.kind) {
    case PredicateKind::kValue: {
      const size_t pos = ts.ChainPos(p.column.table_idx);
      if (pos == ts.tables.size()) return Status::Ok();  // out of scope
      pool_.Run(num_morsels, [&](size_t m) {
        const size_t begin = m * kBatchSize;
        CompareKernel(ts, pos, p.column.column_idx, p.op, p.value, begin,
                      std::min(begin + kBatchSize, ts.count), out);
      });
      return Status::Ok();
    }
    case PredicateKind::kScalarSub: {
      auto sub = ExecuteSelect(*p.subquery, /*materialize=*/true);
      if (!sub.ok()) return sub.status();
      stats->Add(sub->stats);
      if (sub->cardinality != 1 || sub->first_column.empty()) {
        return Status::Ok();  // non-scalar subquery result: predicate false
      }
      const Value& scalar = sub->first_column[0];
      const size_t pos = ts.ChainPos(p.column.table_idx);
      if (pos == ts.tables.size()) return Status::Ok();
      pool_.Run(num_morsels, [&](size_t m) {
        const size_t begin = m * kBatchSize;
        CompareKernel(ts, pos, p.column.column_idx, p.op, scalar, begin,
                      std::min(begin + kBatchSize, ts.count), out);
      });
      return Status::Ok();
    }
    case PredicateKind::kInSub: {
      auto sub = ExecuteSelect(*p.subquery, /*materialize=*/true);
      if (!sub.ok()) return sub.status();
      stats->Add(sub->stats);
      // Same Value-keyed membership set as the reference engine so the
      // (int, double) equality/hash quirks are shared, not reinvented.
      std::unordered_set<Value, ValueHash> members(sub->first_column.begin(),
                                                   sub->first_column.end());
      pool_.Run(num_morsels, [&](size_t m) {
        const size_t begin = m * kBatchSize;
        const size_t end = std::min(begin + kBatchSize, ts.count);
        for (size_t t = begin; t < end; ++t) {
          Value v = TupleValue(ts, t, p.column);
          if (v.is_null()) continue;
          (*out)[t] = members.count(v) > 0 ? 1 : 0;
        }
      });
      return Status::Ok();
    }
    case PredicateKind::kExistsSub: {
      auto sub = ExecuteSelect(*p.subquery, /*materialize=*/false);
      if (!sub.ok()) return sub.status();
      stats->Add(sub->stats);
      bool exists = sub->cardinality > 0;
      if (p.negated) exists = !exists;
      out->assign(ts.count, exists ? 1 : 0);
      return Status::Ok();
    }
    case PredicateKind::kLike: {
      if (!p.value.is_string()) return Status::Ok();
      const size_t pos = ts.ChainPos(p.column.table_idx);
      if (pos == ts.tables.size()) return Status::Ok();
      const Column& col =
          db_->tables()[ts.tables[pos]].column(p.column.column_idx);
      if (col.type() != DataType::kString &&
          col.type() != DataType::kCategorical) {
        return Status::Ok();  // non-string values never LIKE-match
      }
      const std::string& pattern = p.value.as_string();
      const std::vector<std::string>& data = col.strings();
      const std::vector<bool>& valid = col.validity();
      const bool all_valid = col.all_valid();
      const std::vector<uint32_t>& rows = ts.cols[pos];
      pool_.Run(num_morsels, [&](size_t m) {
        const size_t begin = m * kBatchSize;
        const size_t end = std::min(begin + kBatchSize, ts.count);
        for (size_t t = begin; t < end; ++t) {
          const uint32_t r = rows[t];
          if (!all_valid && !valid[r]) continue;
          (*out)[t] = LikeMatch(data[r], pattern) ? 1 : 0;
        }
      });
      return Status::Ok();
    }
  }
  return Status::Internal("unknown predicate kind");
}

Status VectorizedEngine::ApplyWhere(const WhereClause& where, TupleSetV* ts,
                                    ExecStats* stats) const {
  if (where.empty()) return Status::Ok();
  std::vector<Mask> results(where.predicates.size());
  for (size_t i = 0; i < where.predicates.size(); ++i) {
    LSG_RETURN_IF_ERROR(
        EvalPredicate(where.predicates[i], *ts, &results[i], stats));
  }

  // Combine masks and count survivors per batch (parallel), then build the
  // per-batch selection vectors via an exclusive prefix over the counts and
  // scatter (parallel again). Order within and across batches follows
  // tuple order, matching the reference filter loop.
  const size_t num_morsels = NumBatches(ts->count);
  Mask keep(ts->count, 0);
  std::vector<size_t> batch_count(num_morsels, 0);
  const bool drop_last =
      opts_.inject == InjectBug::kSelVectorOffByOne;
  pool_.Run(num_morsels, [&](size_t m) {
    const size_t begin = m * kBatchSize;
    const size_t end = std::min(begin + kBatchSize, ts->count);
    std::vector<bool> local(results.size());
    size_t n = 0;
    // Injected bug: the batch loop bound excludes the final tuple.
    const size_t bug_end = drop_last && end > begin ? end - 1 : end;
    for (size_t t = begin; t < bug_end; ++t) {
      for (size_t i = 0; i < results.size(); ++i) {
        local[i] = results[i][t] != 0;
      }
      if (CombinePredicates(local, where.connectors)) {
        keep[t] = 1;
        ++n;
      }
    }
    batch_count[m] = n;
  });

  std::vector<size_t> offset(num_morsels + 1, 0);
  for (size_t m = 0; m < num_morsels; ++m) {
    offset[m + 1] = offset[m] + batch_count[m];
  }
  const size_t out_count = offset[num_morsels];
  const size_t stride = ts->tables.size();
  std::vector<std::vector<uint32_t>> out(stride);
  for (size_t j = 0; j < stride; ++j) out[j].resize(out_count);
  pool_.Run(num_morsels, [&](size_t m) {
    const size_t begin = m * kBatchSize;
    const size_t end = std::min(begin + kBatchSize, ts->count);
    size_t w = offset[m];
    for (size_t t = begin; t < end; ++t) {
      if (!keep[t]) continue;
      for (size_t j = 0; j < stride; ++j) out[j][w] = ts->cols[j][t];
      ++w;
    }
  });
  ts->cols = std::move(out);
  ts->count = out_count;
  return Status::Ok();
}

StatusOr<SelectResult> VectorizedEngine::ExecuteSelect(
    const SelectQuery& q, bool materialize_first_column) const {
  obs::ScopedHistogramTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram("vexec.select_ns")
          : nullptr);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("vexec.select_queries").Inc();
  }
  SelectResult result;
  LSG_ASSIGN_OR_RETURN(TupleSetV ts, BuildJoin(q, &result.stats));
  LSG_RETURN_IF_ERROR(ApplyWhere(q.where, &ts, &result.stats));

  // Sequential finalizer, tuple order = reference order, shared aggregate
  // helpers: every double accumulation below is bitwise-identical to the
  // reference engine's.
  const bool has_agg = q.HasAggregate();

  if (q.group_by.empty()) {
    if (!has_agg) {
      result.cardinality = ts.count;
      if (materialize_first_column && !q.items.empty()) {
        result.first_column.reserve(ts.count);
        for (size_t t = 0; t < ts.count; ++t) {
          result.first_column.push_back(TupleValue(ts, t, q.items[0].column));
        }
      }
    } else {
      result.cardinality = 1;
      if (materialize_first_column && !q.items.empty()) {
        std::vector<Value> col;
        col.reserve(ts.count);
        for (size_t t = 0; t < ts.count; ++t) {
          col.push_back(TupleValue(ts, t, q.items[0].column));
        }
        result.first_column.push_back(AggregateValues(q.items[0].agg, col));
      }
    }
    result.stats.rows_output += static_cast<double>(result.cardinality);
    return result;
  }

  std::unordered_map<std::string, std::vector<uint32_t>> groups;
  std::vector<Value> key_vals(q.group_by.size());
  for (size_t t = 0; t < ts.count; ++t) {
    for (size_t k = 0; k < q.group_by.size(); ++k) {
      key_vals[k] = TupleValue(ts, t, q.group_by[k]);
    }
    groups[GroupKeyOf(key_vals)].push_back(static_cast<uint32_t>(t));
  }

  uint64_t passing = 0;
  for (const auto& [key, rows] : groups) {
    (void)key;
    bool pass = true;
    if (q.having.has_value()) {
      std::vector<Value> col;
      col.reserve(rows.size());
      for (uint32_t t : rows) {
        col.push_back(TupleValue(ts, t, q.having->column));
      }
      Value agg = AggregateValues(q.having->agg, col);
      pass = CompareValues(agg, q.having->op, q.having->value);
    }
    if (!pass) continue;
    ++passing;
    if (materialize_first_column && !q.items.empty()) {
      const SelectItem& item = q.items[0];
      if (item.agg == AggFunc::kNone) {
        result.first_column.push_back(TupleValue(ts, rows[0], item.column));
      } else {
        std::vector<Value> col;
        col.reserve(rows.size());
        for (uint32_t t : rows) col.push_back(TupleValue(ts, t, item.column));
        result.first_column.push_back(AggregateValues(item.agg, col));
      }
    }
  }
  result.cardinality = passing;
  result.stats.rows_output += static_cast<double>(passing);
  return result;
}

StatusOr<std::vector<bool>> VectorizedEngine::MatchRows(
    int table_idx, const WhereClause& where) const {
  if (table_idx < 0 || static_cast<size_t>(table_idx) >= db_->num_tables()) {
    return Status::InvalidArgument("MatchRows: table index out of range");
  }
  const size_t n = db_->tables()[table_idx].num_rows();
  std::vector<bool> match(n, true);
  if (where.empty()) return match;

  TupleSetV ts;
  ts.tables = {table_idx};
  ts.count = n;
  ts.cols.emplace_back(n);
  for (size_t r = 0; r < n; ++r) ts.cols[0][r] = static_cast<uint32_t>(r);

  ExecStats stats;
  std::vector<Mask> results(where.predicates.size());
  for (size_t i = 0; i < where.predicates.size(); ++i) {
    LSG_RETURN_IF_ERROR(
        EvalPredicate(where.predicates[i], ts, &results[i], &stats));
  }
  std::vector<bool> per_pred(where.predicates.size());
  for (size_t t = 0; t < n; ++t) {
    for (size_t i = 0; i < results.size(); ++i) {
      per_pred[i] = results[i][t] != 0;
    }
    match[t] = CombinePredicates(per_pred, where.connectors);
  }
  return match;
}

StatusOr<uint64_t> VectorizedEngine::Cardinality(const QueryAst& ast) const {
  switch (ast.type) {
    case QueryType::kSelect: {
      if (ast.select == nullptr) {
        return Status::InvalidArgument("empty SELECT ast");
      }
      auto r = ExecuteSelect(*ast.select, /*materialize=*/false);
      if (!r.ok()) return r.status();
      return r->cardinality;
    }
    case QueryType::kInsert: {
      if (ast.insert == nullptr) {
        return Status::InvalidArgument("empty INSERT ast");
      }
      if (ast.insert->source != nullptr) {
        auto r = ExecuteSelect(*ast.insert->source, /*materialize=*/false);
        if (!r.ok()) return r.status();
        return r->cardinality;
      }
      return static_cast<uint64_t>(1);
    }
    case QueryType::kUpdate: {
      if (ast.update == nullptr) {
        return Status::InvalidArgument("empty UPDATE ast");
      }
      SelectQuery probe;
      probe.tables = {ast.update->table_idx};
      ExecStats stats;
      LSG_ASSIGN_OR_RETURN(TupleSetV ts, BuildJoin(probe, &stats));
      LSG_RETURN_IF_ERROR(ApplyWhere(ast.update->where, &ts, &stats));
      return static_cast<uint64_t>(ts.count);
    }
    case QueryType::kDelete: {
      if (ast.del == nullptr) {
        return Status::InvalidArgument("empty DELETE ast");
      }
      SelectQuery probe;
      probe.tables = {ast.del->table_idx};
      ExecStats stats;
      LSG_ASSIGN_OR_RETURN(TupleSetV ts, BuildJoin(probe, &stats));
      LSG_RETURN_IF_ERROR(ApplyWhere(ast.del->where, &ts, &stats));
      return static_cast<uint64_t>(ts.count);
    }
  }
  return Status::Internal("unknown query type");
}

}  // namespace vexec
}  // namespace lsg
