#ifndef LEARNEDSQLGEN_VEXEC_MORSEL_POOL_H_
#define LEARNEDSQLGEN_VEXEC_MORSEL_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace lsg {
namespace vexec {

/// Morsel-driven work dispatcher: a fixed crew of persistent worker
/// threads that, per Run() call, race through morsel indices
/// [0, num_morsels) pulling the next index under the pool mutex
/// (morsel-at-a-time self-scheduling, à la HyPer). The calling thread
/// participates as the final worker, so a pool built with `workers == 1`
/// spawns no threads at all and Run() degenerates to a plain serial loop —
/// the default on single-core hosts.
///
/// Built on the annotated lsg::Mutex/CondVar layer (DESIGN.md §6i); all
/// scheduling state is LSG_GUARDED_BY(mu_) and checked by -Wthread-safety
/// on Clang builds. The work function itself runs with the mutex released
/// and must be safe to invoke concurrently for *distinct* morsel indices.
class MorselPool {
 public:
  /// `workers` is the total degree of parallelism including the caller;
  /// values below 1 are treated as 1. Threads start immediately and idle
  /// on a condition variable between jobs.
  explicit MorselPool(int workers);

  /// Drains any in-flight job, then joins the worker threads.
  ~MorselPool();

  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  /// Runs fn(i) once for every i in [0, num_morsels), spread across the
  /// crew; blocks until all morsels are done. Not reentrant: one job at a
  /// time (the engine issues stages sequentially).
  void Run(size_t num_morsels, const std::function<void(size_t)>& fn);

  int workers() const { return workers_; }

 private:
  void WorkerLoop();
  /// Claims-and-runs morsels of the current job until none remain, then
  /// decrements the participant count. Must be entered with `mu_` held and
  /// returns with it held (released around each fn invocation).
  void DrainJob() LSG_REQUIRES(mu_);

  const int workers_;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar work_cv_;   ///< signals workers: new job or shutdown
  CondVar done_cv_;   ///< signals Run(): all participants drained
  uint64_t job_gen_ LSG_GUARDED_BY(mu_) = 0;
  size_t num_morsels_ LSG_GUARDED_BY(mu_) = 0;
  size_t next_ LSG_GUARDED_BY(mu_) = 0;
  int active_ LSG_GUARDED_BY(mu_) = 0;
  const std::function<void(size_t)>* fn_ LSG_GUARDED_BY(mu_) = nullptr;
  bool shutdown_ LSG_GUARDED_BY(mu_) = false;
};

}  // namespace vexec
}  // namespace lsg

#endif  // LEARNEDSQLGEN_VEXEC_MORSEL_POOL_H_
