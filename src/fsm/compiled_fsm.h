#ifndef LEARNEDSQLGEN_FSM_COMPILED_FSM_H_
#define LEARNEDSQLGEN_FSM_COMPILED_FSM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fsm/generation_fsm.h"

namespace lsg {

/// Compile-time resource caps. The structural state graph of a (database,
/// vocabulary, profile) triple can be huge for wide schemas under permissive
/// profiles (the analyzer needs region summaries to tame JOB); the compiler
/// refuses past these caps and the caller falls back to the interpreted FSM.
struct CompileFsmOptions {
  /// Abort with ResourceExhausted past this many structural states.
  int max_states = 200000;
  /// Abort past this wall-clock budget; 0 = unlimited. Implicit compiles on
  /// the training/serving path keep this small so an uncompilable dataset
  /// costs a bounded one-time probe instead of a multi-second stall.
  int max_millis = 3000;
};

/// Size/shape report of a compiled table (lsglint --compile, tests).
struct CompiledFsmStats {
  uint32_t num_states = 0;
  uint64_t num_edges = 0;        ///< class-granular transitions
  uint32_t mask_pool_entries = 0;
  uint32_t class_mask_pool_entries = 0;
  int num_classes = 0;           ///< token equivalence classes
  int vocab_size = 0;
  uint64_t bytes = 0;            ///< approximate resident size
  uint64_t compile_millis = 0;

  std::string ToString() const;
};

/// A per-(database, vocabulary, profile) flat structure-of-arrays artifact
/// replacing hot-path mask derivation with indexed lookups.
///
/// States are the budget-free structural abstract states (analysis/
/// StructuralStateKey) discovered by BFS from the empty query, densely
/// numbered in discovery order (0 = start). Because masks read the token
/// count only through the two budget booleans, each state stores three mask
/// ids — one per BudgetRegime — into a deduplicated pool of vocab-sized
/// 0/1 byte masks (returned by reference from GenerationFsm::ValidActions,
/// same representation as the interpreted mask). Mask widths are
/// precomputed per pool entry so telemetry costs one load.
///
/// Transitions are class-granular: all value/pattern tokens of one column
/// provably lead to the same structural state (the key never records which
/// literal was chosen, only its column — the same equivalence the
/// analyzer's RepresentativeActions exploits), so tokens map through a
/// global `class_of` array onto ~|schema| classes. Each state stores a
/// bitset over classes with per-word prefix popcounts; the successor is
/// `edge_target[edge_base[state] + rank(class)]` — O(1) via popcount.
/// Edges are compiled for the union of the three regime masks (under
/// require_nested the tight mask is not a subset of the loose one), so a
/// mask-legal token always has an edge; stepping any *other* token yields
/// kNoState and the FSM falls back to interpretation.
///
/// Immutable after compilation/loading — safe to share read-only across
/// service workers without synchronisation (fsm_tsan covers this).
class CompiledFsmTable {
 public:
  static constexpr uint32_t kNoState = 0xffffffffu;

  /// Mask of `state` under budget regime `regime` (a BudgetRegime value,
  /// not kAuto). One byte per vocabulary token, != 0 iff valid.
  const std::vector<uint8_t>& Mask(uint32_t state, int regime) const {
    return mask_pool_[mask_id_[state * kNumBudgetRegimes + regime]];
  }

  /// Number of set entries in Mask(state, regime).
  int MaskWidth(uint32_t state, int regime) const {
    return mask_width_[mask_id_[state * kNumBudgetRegimes + regime]];
  }

  /// Successor of `state` on `token_id`, or kNoState if the token leaves
  /// the compiled graph (never happens for mask-legal tokens).
  uint32_t Next(uint32_t state, int token_id) const {
    const int cls = class_of_[token_id];
    const ClassMask& cm = class_mask_pool_[class_mask_id_[state]];
    const uint32_t word = static_cast<uint32_t>(cls) >> 6;
    const uint64_t bit = 1ull << (cls & 63);
    if ((cm.words[word] & bit) == 0) return kNoState;
    const uint32_t rank =
        cm.rank[word] +
        static_cast<uint32_t>(__builtin_popcountll(cm.words[word] & (bit - 1)));
    return edge_target_[edge_base_[state] + rank];
  }

  uint32_t start_state() const { return start_state_; }
  /// The unique terminal ("DONE") state; EOF edges land here.
  uint32_t accept_state() const { return accept_state_; }
  uint32_t num_states() const { return static_cast<uint32_t>(class_mask_id_.size()); }
  int vocab_size() const { return vocab_size_; }
  /// Identity of the (catalog, vocabulary, profile) the table was compiled
  /// for; see CompiledFsmFingerprint.
  uint64_t fingerprint() const { return fingerprint_; }

  CompiledFsmStats stats() const;

  /// Serialises the table to a binary artifact (magic header + payload +
  /// checksum). The format is host-endian: artifacts are a local cache, not
  /// an interchange format.
  Status Save(const std::string& path) const;

  /// Loads a table saved by Save(). Rejects wrong magic/version, truncated
  /// or oversized payloads, and checksum mismatches.
  static StatusOr<CompiledFsmTable> Load(const std::string& path);

  /// --- mutation-testing hooks (lsgfuzz --inject-bug, tests) ---
  /// Flips one set mask byte of the start state's loose-regime mask entry
  /// (salt picks which), so the very first differential mask comparison of
  /// any episode must observe it. Corrupts this table in place.
  void CorruptMaskBit(uint64_t salt);
  /// Swaps the targets of two edges (with distinct targets) of the first
  /// state that has two such edges — near the root, so random episodes hit
  /// the swapped transition almost immediately.
  void CorruptTransitionSwap(uint64_t salt);

 private:
  friend StatusOr<CompiledFsmTable> CompileFsm(const Database&,
                                               const Vocabulary&,
                                               const QueryProfile&,
                                               const CompileFsmOptions&);

  /// Class bitset of one state: fixed per-table word count, plus the
  /// prefix popcount of all preceding words for O(1) rank.
  struct ClassMask {
    std::vector<uint64_t> words;
    std::vector<uint32_t> rank;
  };

  void RecomputeDerived();  ///< widths + ranks after build/load

  int vocab_size_ = 0;
  int num_classes_ = 0;
  uint64_t fingerprint_ = 0;
  uint32_t start_state_ = 0;
  uint32_t accept_state_ = 0;
  uint64_t compile_millis_ = 0;

  std::vector<int32_t> class_of_;            // [vocab] token -> class
  std::vector<std::vector<uint8_t>> mask_pool_;
  std::vector<int32_t> mask_width_;          // [pool] derived
  std::vector<uint32_t> mask_id_;            // [state * 3 + regime]
  std::vector<ClassMask> class_mask_pool_;
  std::vector<uint32_t> class_mask_id_;      // [state]
  std::vector<uint64_t> edge_base_;          // [state]
  std::vector<uint32_t> edge_target_;        // [sum of state degrees]
};

/// Stable identity of a compilation input: catalog schemas + join graph,
/// vocabulary tokens, and every mask-relevant profile knob. Disk artifacts
/// carry it; attach/load paths verify it.
uint64_t CompiledFsmFingerprint(const Database& db, const Vocabulary& vocab,
                                const QueryProfile& profile);

/// Walks the structural state graph with an interpreted GenerationFsm —
/// same BFS/state-interning/witness-replay idiom as FsmAnalyzer, but
/// emitting the flat artifact instead of lint findings. Returns
/// ResourceExhausted when a cap of `options` is hit.
StatusOr<CompiledFsmTable> CompileFsm(const Database& db,
                                      const Vocabulary& vocab,
                                      const QueryProfile& profile,
                                      const CompileFsmOptions& options);

/// CompileFsm with a disk cache: looks for a fingerprint-named artifact
/// under `cache_dir` (created on demand), compiles and saves on miss.
/// Stale/corrupt/foreign artifacts are recompiled, not trusted.
StatusOr<CompiledFsmTable> BuildOrLoadCompiledFsm(
    const Database& db, const Vocabulary& vocab, const QueryProfile& profile,
    const CompileFsmOptions& options, const std::string& cache_dir);

/// Process-wide memoisation of compiles keyed by fingerprint, including
/// negative results — a dataset/profile pair past the caps is probed once
/// per process, not once per pipeline. Thread-safe.
///
/// Concurrent first requests for one key are deduplicated (one thread
/// compiles, the rest wait on the slot), and the compile itself runs with
/// the cache mutex *released*: the mutex only guards the memo map, so a
/// multi-second compile of one dataset never serializes lookups — or
/// compiles — of any other. (The original implementation held the global
/// lock across CompileFsm, convoying every worker in the process behind
/// whichever compile happened to be in flight.)
class CompiledFsmCache {
 public:
  /// Exact counters, maintained under the cache mutex. `compiles` counts
  /// compile attempts actually started (deduplication means concurrent
  /// requests for one key add exactly 1); `dedup_waits` counts requests
  /// that slept waiting for another thread's compile.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t compiles = 0;
    uint64_t dedup_waits = 0;
  };

  static CompiledFsmCache& Global();

  /// Standalone instance — tests use one to observe hit/dedup counters in
  /// isolation; production code shares Global().
  CompiledFsmCache();
  ~CompiledFsmCache();
  CompiledFsmCache(const CompiledFsmCache&) = delete;
  CompiledFsmCache& operator=(const CompiledFsmCache&) = delete;

  /// Returns the cached/compiled table, or nullptr when compilation is not
  /// feasible under `options` (the caller then runs interpreted). When
  /// `cache_dir` is non-empty, misses go through BuildOrLoadCompiledFsm.
  std::shared_ptr<const CompiledFsmTable> GetOrCompile(
      const Database& db, const Vocabulary& vocab, const QueryProfile& profile,
      const CompileFsmOptions& options, const std::string& cache_dir);

  Stats GetStats() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// A GenerationFsm born with a compiled table attached: the drop-in
/// "indexed lookups only" implementation of the stepping API.
class CompiledGenerationFsm : public GenerationFsm {
 public:
  /// `table` must match (db, vocab, profile) and outlive the FSM.
  CompiledGenerationFsm(const Database* db, const Vocabulary* vocab,
                        QueryProfile profile, const CompiledFsmTable* table)
      : GenerationFsm(db, vocab, profile) {
    AttachCompiledTable(table);
  }
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FSM_COMPILED_FSM_H_
