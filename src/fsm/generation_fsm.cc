#include "fsm/generation_fsm.h"

#include <algorithm>

#include "common/logging.h"
#include "fsm/compiled_fsm.h"
#include "fsm/semantic_rules.h"
#include "obs/metrics_registry.h"

namespace lsg {

QueryProfile QueryProfile::SpjOnly() {
  QueryProfile p;
  p.allow_aggregate = false;
  p.allow_group_by = false;
  p.allow_nested = false;
  p.allow_exists = false;
  p.allow_like = false;
  p.allow_order_by = false;
  return p;
}

QueryProfile QueryProfile::Full() {
  QueryProfile p;
  p.allow_insert = true;
  p.allow_update = true;
  p.allow_delete = true;
  return p;
}

QueryProfile QueryProfile::InsertOnly() {
  QueryProfile p;
  p.allow_select = false;
  p.allow_insert = true;
  return p;
}

QueryProfile QueryProfile::UpdateOnly() {
  QueryProfile p;
  p.allow_select = false;
  p.allow_update = true;
  return p;
}

QueryProfile QueryProfile::DeleteOnly() {
  QueryProfile p;
  p.allow_select = false;
  p.allow_delete = true;
  return p;
}

GenerationFsm::GenerationFsm(const Database* db, const Vocabulary* vocab,
                             QueryProfile profile)
    : db_(db),
      vocab_(vocab),
      profile_(profile),
      builder_(&db->catalog()),
      mask_(vocab->size(), 0) {
  LSG_CHECK(db != nullptr && vocab != nullptr);
  LSG_CHECK(profile.allow_select || profile.allow_insert ||
            profile.allow_update || profile.allow_delete);
}

void GenerationFsm::Reset() {
  builder_ = AstBuilder(&db_->catalog());
  // Telemetry must not leak the previous episode's width into an episode
  // that terminates before its first ValidActions() call.
  last_mask_width_ = 0;
  if (compiled_ != nullptr) compiled_state_ = compiled_->start_state();
}

void GenerationFsm::AttachCompiledTable(const CompiledFsmTable* table) {
  if (table != nullptr) {
    LSG_CHECK(builder_.tokens().empty() && !builder_.done());
    LSG_CHECK(table->vocab_size() == vocab_->size());
    compiled_state_ = table->start_state();
  }
  compiled_ = table;
}

bool GenerationFsm::compiled_active() const {
  return compiled_ != nullptr &&
         compiled_state_ != CompiledFsmTable::kNoState;
}

bool GenerationFsm::ColumnHasValues(const ColumnRef& col) const {
  return !vocab_->value_token_ids(col.table_idx, col.column_idx).empty();
}

bool GenerationFsm::BudgetTight() const {
  if (budget_override_ != BudgetRegime::kAuto) {
    return budget_override_ == BudgetRegime::kTight;
  }
  return static_cast<int>(builder_.tokens().size()) >= profile_.max_tokens;
}

bool GenerationFsm::SubqueryTight() const {
  if (budget_override_ != BudgetRegime::kAuto) {
    return budget_override_ != BudgetRegime::kLoose;
  }
  return static_cast<int>(builder_.tokens().size()) + 9 > profile_.max_tokens;
}

int GenerationFsm::CurrentRegimeIndex() const {
  const int n = static_cast<int>(builder_.tokens().size());
  if (n >= profile_.max_tokens) {
    return static_cast<int>(BudgetRegime::kTight);
  }
  if (n + 9 > profile_.max_tokens) {
    return static_cast<int>(BudgetRegime::kSubqueryTight);
  }
  return static_cast<int>(BudgetRegime::kLoose);
}

int GenerationFsm::ItemMix(const SelectQuery& q) const {
  bool plain = false, agg = false;
  for (const SelectItem& it : q.items) {
    (it.agg == AggFunc::kNone ? plain : agg) = true;
  }
  if (plain && agg) return 3;
  if (agg) return 2;
  if (plain) return 1;
  return 0;
}

namespace {

/// Rhs options for a predicate on `col`.
struct RhsOptions {
  bool has_values = false;
  bool can_scalar = false;
  bool can_in = false;
  bool can_like = false;
  bool any() const { return has_values || can_scalar || can_in || can_like; }
};

}  // namespace

const std::vector<uint8_t>& GenerationFsm::ValidActions() {
  // Compiled fast path: one regime pick + two indexed loads replace the
  // whole grammar/semantic-rule derivation below. The pooled mask vector
  // is returned by reference, exactly like the interpreted `mask_`.
  if (compiled_ != nullptr && compiled_state_ != CompiledFsmTable::kNoState &&
      budget_override_ == BudgetRegime::kAuto && !builder_.done()) {
    const int regime = CurrentRegimeIndex();
    if (obs::Enabled()) {
      last_mask_width_ = compiled_->MaskWidth(compiled_state_, regime);
      static obs::Counter& evals =
          obs::MetricsRegistry::Global().GetCounter("fsm.mask_evals");
      static obs::Counter& width_sum =
          obs::MetricsRegistry::Global().GetCounter("fsm.mask_width_sum");
      evals.Inc();
      width_sum.Add(static_cast<uint64_t>(last_mask_width_));
    }
    return compiled_->Mask(compiled_state_, regime);
  }
  std::fill(mask_.begin(), mask_.end(), 0);
  if (builder_.done()) return mask_;
  const BuildFrame& f = builder_.frame();
  switch (f.phase) {
    case BuildPhase::kStart:
      MaskStart(builder_.depth() > 1);
      break;
    case BuildPhase::kInsertTable:
    case BuildPhase::kAfterInsertTable:
    case BuildPhase::kInsertValue:
    case BuildPhase::kInsertDone:
      MaskInsert();
      break;
    case BuildPhase::kUpdateTable:
    case BuildPhase::kUpdateSetKw:
    case BuildPhase::kUpdateSetColumn:
    case BuildPhase::kUpdateSetValue:
    case BuildPhase::kUpdateAfterSet:
      MaskUpdate();
      break;
    case BuildPhase::kDeleteTable:
    case BuildPhase::kDeleteAfterTable:
      MaskDelete();
      break;
    case BuildPhase::kDone:
      break;
    default:
      MaskSelectFrame();
      break;
  }
  if (obs::Enabled()) {
    // Mask pressure: how many actions the FSM leaves open per decision.
    uint64_t width = 0;
    for (uint8_t m : mask_) width += m != 0 ? 1 : 0;
    last_mask_width_ = static_cast<int>(width);
    static obs::Counter& evals =
        obs::MetricsRegistry::Global().GetCounter("fsm.mask_evals");
    static obs::Counter& width_sum =
        obs::MetricsRegistry::Global().GetCounter("fsm.mask_width_sum");
    evals.Inc();
    width_sum.Add(width);
  }
  return mask_;
}

void GenerationFsm::MaskStart(bool sub) {
  if (sub) {
    AllowKeyword(Keyword::kFrom);
    return;
  }
  const Catalog& cat = db_->catalog();
  if (profile_.allow_select) AllowKeyword(Keyword::kFrom);
  if (profile_.allow_insert) {
    // INSERT needs at least one table whose every column has sampled values
    // (VALUES form) or the INSERT..SELECT branch enabled.
    for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
      bool values_ok = true;
      for (size_t ci = 0; ci < cat.table(ti).num_columns(); ++ci) {
        if (vocab_->value_token_ids(static_cast<int>(ti),
                                    static_cast<int>(ci)).empty()) {
          values_ok = false;
          break;
        }
      }
      if (values_ok || profile_.allow_insert_select) {
        AllowKeyword(Keyword::kInsert);
        break;
      }
    }
  }
  if (profile_.allow_update) {
    for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
      const TableSchema& ts = cat.table(ti);
      for (size_t ci = 0; ci < ts.num_columns(); ++ci) {
        if (!ts.column(ci).is_primary_key &&
            !vocab_->value_token_ids(static_cast<int>(ti),
                                     static_cast<int>(ci)).empty()) {
          AllowKeyword(Keyword::kUpdate);
          ti = cat.num_tables();
          break;
        }
      }
    }
  }
  if (profile_.allow_delete && cat.num_tables() > 0) {
    AllowKeyword(Keyword::kDelete);
  }
}

void GenerationFsm::MaskSelectFrame() {
  const BuildFrame& f = builder_.frame();
  const Catalog& cat = db_->catalog();
  const bool top = builder_.depth() == 1;
  const bool tight = BudgetTight();
  const int depth_above_top = builder_.depth() - 1;

  // A subquery's forced completion is ~8 tokens ('(' FROM t SELECT x ')'
  // plus closing the predicate), so its entry is masked once fewer than
  // that many tokens remain in the budget.
  const bool subquery_tight = SubqueryTight();

  // Computes rhs options for a WHERE lhs column in this frame.
  const bool force_nested_here = profile_.require_nested &&
                                 profile_.allow_nested &&
                                 builder_.depth() == 1 && !subquery_tight;

  auto rhs_options = [&](const ColumnRef& col) {
    RhsOptions o;
    o.has_values = !force_nested_here && ColumnHasValues(col);
    o.can_like = !force_nested_here && profile_.allow_like &&
                 !vocab_->pattern_token_ids(col.table_idx, col.column_idx)
                      .empty();
    DataType type = cat.table(col.table_idx).column(col.column_idx).type;
    const bool depth_ok = depth_above_top < profile_.max_nesting_depth;
    if (!subquery_tight && profile_.allow_nested && depth_ok &&
        IsNumeric(type)) {
      o.can_scalar = true;
    }
    if (!subquery_tight && profile_.allow_nested && depth_ok) {
      // IN needs some table holding a comparable column.
      for (size_t ti = 0; ti < cat.num_tables() && !o.can_in; ++ti) {
        for (size_t ci = 0; ci < cat.table(ti).num_columns(); ++ci) {
          if (AreComparable(type, cat.table(ti).column(ci).type)) {
            o.can_in = true;
            break;
          }
        }
      }
    }
    return o;
  };

  // All columns belonging to the frame's in-scope tables.
  auto for_each_scope_column = [&](auto&& fn) {
    for (int ti : f.scope_tables) {
      for (size_t ci = 0; ci < cat.table(ti).num_columns(); ++ci) {
        fn(ColumnRef{ti, static_cast<int>(ci)});
      }
    }
  };

  auto scope_has_numeric_with_values = [&]() {
    bool found = false;
    for_each_scope_column([&](const ColumnRef& c) {
      if (found) return;
      if (IsNumeric(cat.table(c.table_idx).column(c.column_idx).type) &&
          ColumnHasValues(c)) {
        found = true;
      }
    });
    return found;
  };

  auto can_order_by = [&]() {
    if (!profile_.allow_order_by || tight) return false;
    if (!top || f.purpose != FramePurpose::kTopLevel) return false;
    if (f.query == nullptr || !f.query->order_by.empty()) return false;
    for (const SelectItem& it : f.query->items) {
      if (it.agg == AggFunc::kNone) return true;
    }
    return false;
  };

  auto can_start_where = [&]() {
    if (profile_.max_predicates <= 0) return false;
    bool ok = false;
    for_each_scope_column([&](const ColumnRef& c) {
      if (ok) return;
      if (rhs_options(c).any()) ok = true;
    });
    if (!ok && !subquery_tight && profile_.allow_exists && profile_.allow_nested &&
        depth_above_top < profile_.max_nesting_depth) {
      ok = true;  // EXISTS (...) needs no lhs
    }
    return ok;
  };

  switch (f.phase) {
    case BuildPhase::kFromTable: {
      if (f.purpose == FramePurpose::kInsertSource) {
        Allow(vocab_->table_token_id(f.pinned_table));
        return;
      }
      if (f.purpose == FramePurpose::kInSub) {
        // Only tables holding a column comparable to the outer lhs.
        DataType lhs_type = cat.table(f.outer_lhs.table_idx)
                                .column(f.outer_lhs.column_idx)
                                .type;
        for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
          for (size_t ci = 0; ci < cat.table(ti).num_columns(); ++ci) {
            if (AreComparable(lhs_type, cat.table(ti).column(ci).type)) {
              Allow(vocab_->table_token_id(static_cast<int>(ti)));
              break;
            }
          }
        }
        return;
      }
      for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
        Allow(vocab_->table_token_id(static_cast<int>(ti)));
      }
      return;
    }

    case BuildPhase::kAfterFromTable: {
      AllowKeyword(Keyword::kSelect);
      const bool joins_left =
          static_cast<int>(f.scope_tables.size()) - 1 < profile_.max_joins;
      if (profile_.allow_join && joins_left && !tight &&
          f.purpose != FramePurpose::kInsertSource) {
        for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
          int t = static_cast<int>(ti);
          if (std::find(f.scope_tables.begin(), f.scope_tables.end(), t) !=
              f.scope_tables.end()) {
            continue;
          }
          bool joinable = profile_.inject_join_edge_gap;
          for (int prev : f.scope_tables) {
            if (joinable) break;
            if (cat.AreJoinable(cat.table(prev).name(), cat.table(t).name())) {
              joinable = true;
            }
          }
          if (joinable) {
            AllowKeyword(Keyword::kJoin);
            break;
          }
        }
      }
      return;
    }

    case BuildPhase::kJoinTable: {
      for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
        int t = static_cast<int>(ti);
        if (std::find(f.scope_tables.begin(), f.scope_tables.end(), t) !=
            f.scope_tables.end()) {
          continue;
        }
        if (profile_.inject_join_edge_gap) {
          Allow(vocab_->table_token_id(t));
          continue;
        }
        for (int prev : f.scope_tables) {
          if (cat.AreJoinable(cat.table(prev).name(), cat.table(t).name())) {
            Allow(vocab_->table_token_id(t));
            break;
          }
        }
      }
      return;
    }

    case BuildPhase::kSelectItem:
    case BuildPhase::kAfterSelectItem: {
      const SelectQuery& q = *f.query;
      const int mix = ItemMix(q);
      const bool first = f.phase == BuildPhase::kSelectItem;
      const int n_items = static_cast<int>(q.items.size());

      // --- item productions ---
      switch (f.purpose) {
        case FramePurpose::kInsertSource: {
          // Must project the pinned table's columns in declaration order.
          if (n_items < static_cast<int>(cat.table(f.pinned_table).num_columns())) {
            Allow(vocab_->column_token_id(f.pinned_table, n_items));
            return;  // nothing else until all columns listed
          }
          break;
        }
        case FramePurpose::kScalarSub: {
          if (n_items == 0) {
            AllowKeyword(Keyword::kCount);
            bool has_numeric = false;
            for_each_scope_column([&](const ColumnRef& c) {
              if (IsNumeric(cat.table(c.table_idx).column(c.column_idx).type)) {
                has_numeric = true;
              }
            });
            if (has_numeric) {
              AllowKeyword(Keyword::kMax);
              AllowKeyword(Keyword::kMin);
              AllowKeyword(Keyword::kSum);
              AllowKeyword(Keyword::kAvg);
            }
            return;
          }
          break;
        }
        case FramePurpose::kInSub: {
          if (n_items == 0) {
            DataType lhs_type = cat.table(f.outer_lhs.table_idx)
                                    .column(f.outer_lhs.column_idx)
                                    .type;
            for_each_scope_column([&](const ColumnRef& c) {
              if (AreComparable(lhs_type,
                                cat.table(c.table_idx).column(c.column_idx).type)) {
                Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
              }
            });
            return;
          }
          break;
        }
        case FramePurpose::kExistsSub: {
          if (n_items == 0) {
            for_each_scope_column([&](const ColumnRef& c) {
              Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
            });
            return;
          }
          break;
        }
        case FramePurpose::kTopLevel: {
          const bool room = n_items < profile_.max_select_items;
          if (first || (room && !tight)) {
            // Plain columns: mixing with aggregates demands GROUP BY, so it
            // is only opened when that branch is available.
            const bool plain_ok = mix != 2 || profile_.allow_group_by;
            if (plain_ok && !(tight && mix == 2)) {
              for_each_scope_column([&](const ColumnRef& c) {
                Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
              });
            }
            if (profile_.allow_aggregate &&
                (mix == 0 || mix == 2 || profile_.allow_group_by) &&
                !(tight && mix == 1)) {
              AllowKeyword(Keyword::kCount);
              bool has_numeric = false;
              for_each_scope_column([&](const ColumnRef& c) {
                if (IsNumeric(
                        cat.table(c.table_idx).column(c.column_idx).type)) {
                  has_numeric = true;
                }
              });
              if (has_numeric) {
                AllowKeyword(Keyword::kMax);
                AllowKeyword(Keyword::kMin);
                AllowKeyword(Keyword::kSum);
                AllowKeyword(Keyword::kAvg);
              }
            }
            if (first) return;
          }
          break;
        }
      }

      // --- completion productions (only at kAfterSelectItem) ---
      // Entering WHERE grows the query by at least three tokens, so the
      // token budget gates it.
      if (!tight && can_start_where()) AllowKeyword(Keyword::kWhere);
      const bool mixed_unresolved = mix == 3;
      // require_nested: a top-level SELECT may not finish (or branch into
      // GROUP BY / ORDER BY) until a subquery predicate exists.
      const bool nested_pending = profile_.require_nested &&
                                  profile_.allow_nested && top &&
                                  f.query != nullptr &&
                                  !f.query->HasNested() && !tight;
      if (top && f.purpose == FramePurpose::kTopLevel) {
        if (profile_.allow_group_by && (mix == 1 || mix == 3) &&
            !(tight && !mixed_unresolved) && !nested_pending) {
          AllowKeyword(Keyword::kGroupBy);
        }
        if (!mixed_unresolved && can_order_by() && !nested_pending) {
          AllowKeyword(Keyword::kOrderBy);
        }
        if (!mixed_unresolved && !nested_pending) Allow(vocab_->eof_id());
      } else {
        // Subquery frames: single item only; close.
        if (f.purpose == FramePurpose::kInsertSource ||
            f.purpose == FramePurpose::kScalarSub ||
            f.purpose == FramePurpose::kInSub ||
            f.purpose == FramePurpose::kExistsSub) {
          AllowKeyword(Keyword::kCloseParen);
        }
      }
      return;
    }

    case BuildPhase::kAggColumn: {
      // Column for the pending aggregate.
      AggFunc agg = f.pending_agg;
      for_each_scope_column([&](const ColumnRef& c) {
        if (profile_.inject_agg_type_gap ||
            AggregateAllowedForType(
                agg, cat.table(c.table_idx).column(c.column_idx).type)) {
          Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
        }
      });
      return;
    }

    case BuildPhase::kWherePred: {
      for_each_scope_column([&](const ColumnRef& c) {
        if (rhs_options(c).any()) {
          Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
        }
      });
      if (!subquery_tight && profile_.allow_exists && profile_.allow_nested &&
          depth_above_top < profile_.max_nesting_depth) {
        AllowKeyword(Keyword::kExists);
        AllowKeyword(Keyword::kNot);
      }
      return;
    }

    case BuildPhase::kAfterNot:
      AllowKeyword(Keyword::kExists);
      return;

    case BuildPhase::kExistsOpen:
    case BuildPhase::kInOpen:
      AllowKeyword(Keyword::kOpenParen);
      return;

    case BuildPhase::kWhereOp: {
      RhsOptions o = rhs_options(f.pending_column);
      DataType type = cat.table(f.pending_column.table_idx)
                          .column(f.pending_column.column_idx)
                          .type;
      if (o.has_values || o.can_scalar) {
        for (int op = 0; op < static_cast<int>(CompareOp::kNumOps); ++op) {
          if (OperatorAllowedForType(static_cast<CompareOp>(op), type)) {
            Allow(vocab_->operator_id(static_cast<CompareOp>(op)));
          }
        }
      }
      if (o.can_in) AllowKeyword(Keyword::kIn);
      if (o.can_like) AllowKeyword(Keyword::kLike);
      return;
    }

    case BuildPhase::kWhereLikeRhs: {
      for (int id : vocab_->pattern_token_ids(f.pending_column.table_idx,
                                              f.pending_column.column_idx)) {
        Allow(id);
      }
      return;
    }

    case BuildPhase::kWhereRhs: {
      RhsOptions o = rhs_options(f.pending_column);
      if (o.has_values) {
        for (int id : vocab_->value_token_ids(f.pending_column.table_idx,
                                              f.pending_column.column_idx)) {
          Allow(id);
        }
      }
      if (o.can_scalar) AllowKeyword(Keyword::kOpenParen);
      return;
    }

    case BuildPhase::kAfterPredicate: {
      const int n_preds =
          f.where != nullptr ? static_cast<int>(f.where->predicates.size()) : 0;
      if (!tight && n_preds < profile_.max_predicates && can_start_where()) {
        AllowKeyword(Keyword::kAnd);
        AllowKeyword(Keyword::kOr);
      }
      if (f.query != nullptr) {
        const int mix = ItemMix(*f.query);
        const bool mixed_unresolved = mix == 3;
        if (top && f.purpose == FramePurpose::kTopLevel) {
          if (profile_.allow_group_by && (mix == 1 || mix == 3) &&
              (mixed_unresolved || !tight)) {
            AllowKeyword(Keyword::kGroupBy);
          }
          if (!mixed_unresolved && can_order_by()) {
            AllowKeyword(Keyword::kOrderBy);
          }
          if (!mixed_unresolved) Allow(vocab_->eof_id());
        } else {
          AllowKeyword(Keyword::kCloseParen);
        }
      } else {
        // DML WHERE (UPDATE/DELETE): completion is EOF.
        Allow(vocab_->eof_id());
      }
      return;
    }

    case BuildPhase::kGroupByColumn:
    case BuildPhase::kAfterGroupBy: {
      for (const ColumnRef& c : f.groupby_remaining) {
        Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
      }
      if (f.phase == BuildPhase::kAfterGroupBy && f.groupby_remaining.empty()) {
        if (!tight && profile_.allow_aggregate &&
            scope_has_numeric_with_values()) {
          AllowKeyword(Keyword::kHaving);
        }
        if (top) {
          if (can_order_by()) AllowKeyword(Keyword::kOrderBy);
          Allow(vocab_->eof_id());
        } else {
          AllowKeyword(Keyword::kCloseParen);
        }
      }
      return;
    }

    case BuildPhase::kHavingAgg: {
      // HAVING columns are restricted to numeric columns with sampled
      // values so the rhs literal is type-compatible for every aggregate.
      AllowKeyword(Keyword::kCount);
      AllowKeyword(Keyword::kMax);
      AllowKeyword(Keyword::kMin);
      AllowKeyword(Keyword::kSum);
      AllowKeyword(Keyword::kAvg);
      return;
    }

    case BuildPhase::kHavingColumn: {
      for_each_scope_column([&](const ColumnRef& c) {
        if (IsNumeric(cat.table(c.table_idx).column(c.column_idx).type) &&
            ColumnHasValues(c)) {
          Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
        }
      });
      return;
    }

    case BuildPhase::kHavingOp: {
      for (int op = 0; op < static_cast<int>(CompareOp::kNumOps); ++op) {
        Allow(vocab_->operator_id(static_cast<CompareOp>(op)));
      }
      return;
    }

    case BuildPhase::kHavingValue: {
      const HavingClause& h = *f.query->having;
      for (int id :
           vocab_->value_token_ids(h.column.table_idx, h.column.column_idx)) {
        Allow(id);
      }
      return;
    }

    case BuildPhase::kAfterHaving:
      if (top) {
        if (can_order_by()) AllowKeyword(Keyword::kOrderBy);
        Allow(vocab_->eof_id());
      } else {
        AllowKeyword(Keyword::kCloseParen);
      }
      return;

    case BuildPhase::kOrderByColumn:
    case BuildPhase::kAfterOrderBy: {
      for (const ColumnRef& c : f.orderby_candidates) {
        Allow(vocab_->column_token_id(c.table_idx, c.column_idx));
      }
      if (f.phase == BuildPhase::kAfterOrderBy) Allow(vocab_->eof_id());
      return;
    }

    default:
      return;
  }
}

void GenerationFsm::MaskInsert() {
  const BuildFrame& f = builder_.frame();
  const Catalog& cat = db_->catalog();
  switch (f.phase) {
    case BuildPhase::kInsertTable: {
      for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
        bool values_ok = true;
        for (size_t ci = 0; ci < cat.table(ti).num_columns(); ++ci) {
          if (vocab_->value_token_ids(static_cast<int>(ti),
                                      static_cast<int>(ci)).empty()) {
            values_ok = false;
            break;
          }
        }
        if (values_ok || profile_.allow_insert_select) {
          Allow(vocab_->table_token_id(static_cast<int>(ti)));
        }
      }
      return;
    }
    case BuildPhase::kAfterInsertTable: {
      int t = builder_.ast().insert->table_idx;
      bool values_ok = true;
      for (size_t ci = 0; ci < cat.table(t).num_columns(); ++ci) {
        if (vocab_->value_token_ids(t, static_cast<int>(ci)).empty()) {
          values_ok = false;
          break;
        }
      }
      if (values_ok) AllowKeyword(Keyword::kValues);
      if (profile_.allow_insert_select) AllowKeyword(Keyword::kOpenParen);
      return;
    }
    case BuildPhase::kInsertValue: {
      int t = builder_.ast().insert->table_idx;
      int next = static_cast<int>(builder_.ast().insert->values.size());
      for (int id : vocab_->value_token_ids(t, next)) Allow(id);
      return;
    }
    case BuildPhase::kInsertDone:
      Allow(vocab_->eof_id());
      return;
    default:
      return;
  }
}

void GenerationFsm::MaskUpdate() {
  const BuildFrame& f = builder_.frame();
  const Catalog& cat = db_->catalog();
  switch (f.phase) {
    case BuildPhase::kUpdateTable: {
      for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
        const TableSchema& ts = cat.table(ti);
        for (size_t ci = 0; ci < ts.num_columns(); ++ci) {
          if (!ts.column(ci).is_primary_key &&
              !vocab_->value_token_ids(static_cast<int>(ti),
                                       static_cast<int>(ci)).empty()) {
            Allow(vocab_->table_token_id(static_cast<int>(ti)));
            break;
          }
        }
      }
      return;
    }
    case BuildPhase::kUpdateSetKw:
      AllowKeyword(Keyword::kSet);
      return;
    case BuildPhase::kUpdateSetColumn: {
      int t = builder_.ast().update->table_idx;
      const TableSchema& ts = cat.table(t);
      for (size_t ci = 0; ci < ts.num_columns(); ++ci) {
        if (!ts.column(ci).is_primary_key &&
            !vocab_->value_token_ids(t, static_cast<int>(ci)).empty()) {
          Allow(vocab_->column_token_id(t, static_cast<int>(ci)));
        }
      }
      return;
    }
    case BuildPhase::kUpdateSetValue: {
      const ColumnRef& c = builder_.ast().update->set_column;
      for (int id : vocab_->value_token_ids(c.table_idx, c.column_idx)) {
        Allow(id);
      }
      return;
    }
    case BuildPhase::kUpdateAfterSet: {
      // WHERE needs a usable predicate lhs on the target table.
      int t = builder_.ast().update->table_idx;
      bool has_lhs = false;
      for (size_t ci = 0; ci < cat.table(t).num_columns(); ++ci) {
        if (!vocab_->value_token_ids(t, static_cast<int>(ci)).empty()) {
          has_lhs = true;
          break;
        }
      }
      if (has_lhs && profile_.max_predicates > 0 && !BudgetTight()) {
        AllowKeyword(Keyword::kWhere);
      }
      Allow(vocab_->eof_id());
      return;
    }
    default:
      return;
  }
}

void GenerationFsm::MaskDelete() {
  const BuildFrame& f = builder_.frame();
  const Catalog& cat = db_->catalog();
  switch (f.phase) {
    case BuildPhase::kDeleteTable: {
      for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
        Allow(vocab_->table_token_id(static_cast<int>(ti)));
      }
      return;
    }
    case BuildPhase::kDeleteAfterTable: {
      int t = builder_.ast().del->table_idx;
      bool has_lhs = false;
      for (size_t ci = 0; ci < cat.table(t).num_columns(); ++ci) {
        if (!vocab_->value_token_ids(t, static_cast<int>(ci)).empty()) {
          has_lhs = true;
          break;
        }
      }
      if (has_lhs && profile_.max_predicates > 0 && !BudgetTight()) {
        AllowKeyword(Keyword::kWhere);
      }
      Allow(vocab_->eof_id());
      return;
    }
    default:
      return;
  }
}

Status GenerationFsm::Step(int action_id) {
  if (action_id < 0 || action_id >= vocab_->size()) {
    return Status::InvalidArgument("action id out of range");
  }
  const Token& token = vocab_->token(action_id);
  if (obs::Enabled()) {
    // Token-class mix of the committed actions (paper §4.1 categories).
    static obs::Counter* const by_kind[] = {
        &obs::MetricsRegistry::Global().GetCounter("fsm.tokens_keyword"),
        &obs::MetricsRegistry::Global().GetCounter("fsm.tokens_table"),
        &obs::MetricsRegistry::Global().GetCounter("fsm.tokens_column"),
        &obs::MetricsRegistry::Global().GetCounter("fsm.tokens_value"),
        &obs::MetricsRegistry::Global().GetCounter("fsm.tokens_operator"),
        &obs::MetricsRegistry::Global().GetCounter("fsm.tokens_eof"),
    };
    by_kind[static_cast<int>(token.kind)]->Inc();
  }
  Status st = builder_.Feed(token);
  if (st.ok() && compiled_ != nullptr &&
      compiled_state_ != CompiledFsmTable::kNoState) {
    compiled_state_ = compiled_->Next(compiled_state_, action_id);
  }
  return st;
}


}  // namespace lsg
