#include "fsm/semantic_rules.h"

namespace lsg {

bool OperatorAllowedForType(CompareOp op, DataType type) {
  if (IsNumeric(type)) return op != CompareOp::kNumOps;
  switch (op) {
    case CompareOp::kEq:
    case CompareOp::kLt:
    case CompareOp::kGt:
      return true;
    default:
      return false;
  }
}

bool AggregateAllowedForType(AggFunc agg, DataType type) {
  switch (agg) {
    case AggFunc::kCount:
      return true;
    case AggFunc::kMax:
    case AggFunc::kMin:
    case AggFunc::kSum:
    case AggFunc::kAvg:
      return IsNumeric(type);
    case AggFunc::kNone:
      return true;
  }
  return false;
}

bool AggregateKeywordAllowedForType(Keyword kw, DataType type) {
  switch (kw) {
    case Keyword::kCount:
      return true;
    case Keyword::kMax:
    case Keyword::kMin:
    case Keyword::kSum:
    case Keyword::kAvg:
      return IsNumeric(type);
    default:
      return false;
  }
}

bool TableHasNumericColumn(const TableSchema& schema) {
  for (const ColumnSchema& c : schema.columns()) {
    if (IsNumeric(c.type)) return true;
  }
  return false;
}

bool ColumnsComparable(const Catalog& catalog, const ColumnRef& a,
                       const ColumnRef& b) {
  DataType ta = catalog.table(a.table_idx).column(a.column_idx).type;
  DataType tb = catalog.table(b.table_idx).column(b.column_idx).type;
  return AreComparable(ta, tb);
}

}  // namespace lsg
