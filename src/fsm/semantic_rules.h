#ifndef LEARNEDSQLGEN_FSM_SEMANTIC_RULES_H_
#define LEARNEDSQLGEN_FSM_SEMANTIC_RULES_H_

#include "catalog/catalog.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace lsg {

/// Semantic checking rules of the paper's FSM (§5): operator/type
/// compatibility, numeric-only aggregation, and PK-FK-only joins.

/// True if `op` may compare values of a column with this type. Numeric
/// columns support the full set; string/categorical columns support
/// {=, <, >} (paper §4.1: "support {=, >, <} for string data").
bool OperatorAllowedForType(CompareOp op, DataType type);

/// True if `agg` may be applied to a column of this type. COUNT works on
/// anything; SUM/AVG/MAX/MIN require numeric columns (§5: "only numerical
/// attributes can be included in average/sum/max/min aggregation").
bool AggregateAllowedForType(AggFunc agg, DataType type);

/// Same check keyed by the aggregate keyword token.
bool AggregateKeywordAllowedForType(Keyword kw, DataType type);

/// True if a table has at least one column `agg`-compatible for any of
/// MAX/MIN/SUM/AVG (i.e. a numeric column).
bool TableHasNumericColumn(const TableSchema& schema);

/// True if the two columns may appear on the two sides of a comparison
/// (IN subqueries): identical-type or both-numeric.
bool ColumnsComparable(const Catalog& catalog, const ColumnRef& a,
                       const ColumnRef& b);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FSM_SEMANTIC_RULES_H_
