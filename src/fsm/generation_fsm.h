#ifndef LEARNEDSQLGEN_FSM_GENERATION_FSM_H_
#define LEARNEDSQLGEN_FSM_GENERATION_FSM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sql/ast_builder.h"
#include "sql/vocabulary.h"
#include "storage/table.h"

namespace lsg {

class CompiledFsmTable;

/// The masks read the token count only through two booleans — BudgetTight
/// (count >= max_tokens) and subquery-tight (count + 9 > max_tokens), with
/// tight implying subquery-tight — so every state sees exactly one of three
/// budget regimes. The FSM compiler keys its table on the budget-free
/// structural state and stores one mask per regime; the enum's numeric
/// values are the table row indices. kAuto (the normal runtime mode)
/// derives the regime from the actual token count; the compiler forces the
/// other three to read all regime masks out of a single replayed prefix.
enum class BudgetRegime : int {
  kAuto = -1,
  kLoose = 0,
  kSubqueryTight = 1,
  kTight = 2,
};
inline constexpr int kNumBudgetRegimes = 3;

/// Generation policy knobs: which grammar branches of Table 1 the FSM opens
/// and structural limits. Limits keep episodes bounded; the paper's FSM is
/// "built on the fly" with branches pruned as the agent commits — ours does
/// exactly that via the AstBuilder's pushdown state.
struct QueryProfile {
  bool allow_select = true;
  bool allow_insert = false;
  bool allow_update = false;
  bool allow_delete = false;

  bool allow_join = true;
  bool allow_aggregate = true;   ///< aggregate select items
  bool allow_group_by = true;    ///< GROUP BY / HAVING branch
  bool allow_nested = true;      ///< scalar / IN subqueries
  bool allow_exists = true;      ///< [NOT] EXISTS subqueries
  bool allow_insert_select = true;
  bool allow_like = true;        ///< LIKE patterns (§5 future work)
  bool allow_order_by = true;    ///< ORDER BY over select-item columns

  /// Steers generation to nested queries (the Figure 11 "NESTED" workload):
  /// top-level predicates may only take subquery right-hand sides, and a
  /// SELECT may not complete until it contains one (except under a tight
  /// token budget, where completion always wins).
  bool require_nested = false;

  int max_joins = 3;             ///< join edges per frame
  int max_predicates = 4;        ///< predicates per WHERE
  int max_select_items = 3;
  int max_nesting_depth = 1;     ///< subquery frames above the outer query

  /// Soft token budget: past it the FSM masks every branch that grows the
  /// query, leaving only the shortest completion path.
  int max_tokens = 64;

  /// Testing backdoors (lsglint --inject-bug): deliberately drop one
  /// semantic rule from the masks so the analyzer/linter pair can be
  /// mutation-tested. Never set outside tests/tools.
  bool inject_agg_type_gap = false;   ///< offer SUM/AVG/... over any column
  bool inject_join_edge_gap = false;  ///< offer JOIN to non-FK tables

  /// Plain select-project-join profile (Case 1 of Table 1).
  static QueryProfile SpjOnly();
  /// Everything the grammar supports, including DML.
  static QueryProfile Full();
  /// Only the given DML statement type.
  static QueryProfile InsertOnly();
  static QueryProfile UpdateOnly();
  static QueryProfile DeleteOnly();
};

/// The paper's finite-state machine in the environment (§5): given the
/// current partial query it masks the action space so that every reachable
/// completion is a syntactically and semantically valid SQL query.
///
/// Invariant (tested): in every reachable non-terminal state at least one
/// action is valid, and following any sequence of valid actions terminates
/// within a bounded number of steps.
class GenerationFsm {
 public:
  /// All pointers must outlive the FSM.
  GenerationFsm(const Database* db, const Vocabulary* vocab,
                QueryProfile profile);

  /// Starts a fresh query.
  void Reset();

  /// Mask over the action space: mask[id] != 0 iff token id is valid now.
  /// Recomputed on each call; valid until the next Step()/Reset().
  const std::vector<uint8_t>& ValidActions();

  /// Applies an action (must be valid per ValidActions()).
  Status Step(int action_id);

  /// True once EOF was consumed.
  bool done() const { return builder_.done(); }

  /// True if the current prefix is an executable query (partial reward).
  bool IsExecutablePrefix() const { return builder_.IsExecutablePrefix(); }

  const AstBuilder& builder() const { return builder_; }
  const std::vector<Token>& tokens() const { return builder_.tokens(); }
  QueryAst TakeAst() { return builder_.TakeAst(); }

  const QueryProfile& profile() const { return profile_; }
  const Vocabulary& vocab() const { return *vocab_; }

  /// Number of valid actions in the most recent ValidActions() mask;
  /// maintained only while obs::Enabled() (0 otherwise). Feeds the
  /// per-episode mask-pressure telemetry.
  int last_mask_width() const { return last_mask_width_; }

  /// Routes ValidActions()/Step() through the compiled mask/transition
  /// table instead of re-deriving masks from grammar + semantic rules.
  /// Must be called on a freshly constructed/Reset() FSM; the table must
  /// have been compiled for this FSM's database, vocabulary and profile
  /// (checked via the table's fingerprint) and must outlive the FSM.
  /// Passing nullptr detaches. If an episode ever steps a token outside
  /// the compiled graph (impossible for mask-legal walks; possible when a
  /// caller feeds arbitrary tokens straight into Step), the FSM falls off
  /// the table and silently reverts to interpreted masks until Reset().
  void AttachCompiledTable(const CompiledFsmTable* table);

  const CompiledFsmTable* compiled_table() const { return compiled_; }

  /// True while the compiled fast path is serving lookups (a table is
  /// attached and the current state is still on it).
  bool compiled_active() const;

  /// Current compiled state index (diagnostics/differential oracle; only
  /// meaningful while a table is attached).
  uint32_t compiled_state() const { return compiled_state_; }

  /// Forces both budget booleans to the given regime instead of deriving
  /// them from the token count. Compiler/test hook: lets one replayed
  /// prefix yield the masks of every regime. kAuto restores normal
  /// behaviour. While forced, ValidActions() always takes the interpreted
  /// path (the override exists to *build* tables, not to query them).
  void OverrideBudgetRegime(BudgetRegime regime) { budget_override_ = regime; }

  BudgetRegime budget_regime_override() const { return budget_override_; }

 private:
  void MaskStart(bool sub);
  void MaskSelectFrame();
  void MaskInsert();
  void MaskUpdate();
  void MaskDelete();

  void Allow(int token_id) { mask_[token_id] = 1; }
  void AllowKeyword(Keyword kw) { mask_[vocab_->keyword_id(kw)] = 1; }

  /// True if the column has at least one sampled value token.
  bool ColumnHasValues(const ColumnRef& col) const;
  /// True once the token budget is exhausted (growth branches masked).
  bool BudgetTight() const;
  /// True once the budget no longer fits a forced subquery completion.
  bool SubqueryTight() const;
  /// Budget regime of the current token count (ignores the override):
  /// the mask-row index for compiled lookups.
  int CurrentRegimeIndex() const;
  /// Select-item mixing state: 0 none, 1 all plain, 2 all agg, 3 mixed.
  int ItemMix(const SelectQuery& q) const;

  const Database* db_;
  const Vocabulary* vocab_;
  QueryProfile profile_;
  AstBuilder builder_;
  std::vector<uint8_t> mask_;
  int last_mask_width_ = 0;
  BudgetRegime budget_override_ = BudgetRegime::kAuto;
  const CompiledFsmTable* compiled_ = nullptr;
  uint32_t compiled_state_ = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_FSM_GENERATION_FSM_H_
