#include "fsm/compiled_fsm.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <tuple>
#include <unordered_map>

#include "analysis/state_key.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/sync.h"

namespace lsg {

namespace {

constexpr char kMagic[8] = {'L', 'S', 'G', 'C', 'F', 'S', '1', '\n'};

uint64_t HashBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  // FNV-1a over the bytes, SplitMix64-finalised by the caller's chaining.
  uint64_t x = 1469598103934665603ull ^ h;
  for (size_t i = 0; i < n; ++i) {
    x ^= p[i];
    x *= 1099511628211ull;
  }
  return SplitMix64(x);
}

uint64_t HashU64(uint64_t h, uint64_t v) { return SplitMix64(h ^ SplitMix64(v)); }

uint64_t HashStr(uint64_t h, const std::string& s) {
  return HashBytes(HashU64(h, s.size()), s.data(), s.size());
}

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}
void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof v); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, &v, sizeof v); }
void AppendI32(std::string* out, int32_t v) { AppendRaw(out, &v, sizeof v); }

/// Bounds-checked sequential reader over a loaded payload.
class Reader {
 public:
  Reader(const char* data, size_t n) : data_(data), size_(n) {}
  bool Raw(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, sizeof *v); }
  bool U64(uint64_t* v) { return Raw(v, sizeof *v); }
  bool I32(int32_t* v) { return Raw(v, sizeof *v); }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t CompiledFsmFingerprint(const Database& db, const Vocabulary& vocab,
                                const QueryProfile& profile) {
  uint64_t h = 0x6c73672d6366736dull;  // "lsg-cfsm"
  const Catalog& cat = db.catalog();
  h = HashU64(h, cat.num_tables());
  for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
    const TableSchema& ts = cat.table(ti);
    h = HashStr(h, ts.name());
    h = HashU64(h, ts.num_columns());
    for (size_t ci = 0; ci < ts.num_columns(); ++ci) {
      const ColumnSchema& c = ts.column(ci);
      h = HashStr(h, c.name);
      h = HashU64(h, static_cast<uint64_t>(c.type));
      h = HashU64(h, (c.is_primary_key ? 2u : 0u) | (c.nullable ? 1u : 0u));
    }
  }
  h = HashU64(h, cat.foreign_keys().size());
  for (const ForeignKey& fk : cat.foreign_keys()) {
    h = HashStr(h, fk.from_table);
    h = HashStr(h, fk.from_column);
    h = HashStr(h, fk.to_table);
    h = HashStr(h, fk.to_column);
  }
  h = HashU64(h, vocab.size());
  for (int id = 0; id < vocab.size(); ++id) {
    const Token& t = vocab.token(id);
    h = HashU64(h, static_cast<uint64_t>(t.kind));
    h = HashU64(h, static_cast<uint64_t>(t.keyword));
    h = HashU64(h, static_cast<uint64_t>(t.op));
    h = HashU64(h, static_cast<uint64_t>(t.table_idx) << 32 |
                       static_cast<uint32_t>(t.column.table_idx));
    h = HashU64(h, static_cast<uint64_t>(t.column.column_idx) << 32 |
                       static_cast<uint32_t>(t.value_column_table));
    h = HashU64(h, static_cast<uint64_t>(t.value_column_idx) << 1 |
                       (t.is_pattern ? 1 : 0));
    h = HashStr(h, t.text);
  }
  // Every mask-relevant profile knob EXCEPT max_tokens: the table is
  // budget-free (three regime masks per state; the threshold that picks a
  // regime is evaluated at runtime), so one artifact serves every budget.
  const uint64_t flags =
      (profile.allow_select ? 1ull : 0) | (profile.allow_insert ? 1ull : 0) << 1 |
      (profile.allow_update ? 1ull : 0) << 2 |
      (profile.allow_delete ? 1ull : 0) << 3 |
      (profile.allow_join ? 1ull : 0) << 4 |
      (profile.allow_aggregate ? 1ull : 0) << 5 |
      (profile.allow_group_by ? 1ull : 0) << 6 |
      (profile.allow_nested ? 1ull : 0) << 7 |
      (profile.allow_exists ? 1ull : 0) << 8 |
      (profile.allow_insert_select ? 1ull : 0) << 9 |
      (profile.allow_like ? 1ull : 0) << 10 |
      (profile.allow_order_by ? 1ull : 0) << 11 |
      (profile.require_nested ? 1ull : 0) << 12 |
      (profile.inject_agg_type_gap ? 1ull : 0) << 13 |
      (profile.inject_join_edge_gap ? 1ull : 0) << 14;
  h = HashU64(h, flags);
  h = HashU64(h, static_cast<uint64_t>(profile.max_joins) << 32 |
                     static_cast<uint32_t>(profile.max_predicates));
  h = HashU64(h, static_cast<uint64_t>(profile.max_select_items) << 32 |
                     static_cast<uint32_t>(profile.max_nesting_depth));
  return h;
}

std::string CompiledFsmStats::ToString() const {
  return StrFormat(
      "states=%u edges=%llu classes=%d mask_pool=%u class_mask_pool=%u "
      "vocab=%d bytes=%llu compile_ms=%llu",
      num_states, static_cast<unsigned long long>(num_edges), num_classes,
      mask_pool_entries, class_mask_pool_entries, vocab_size,
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(compile_millis));
}

CompiledFsmStats CompiledFsmTable::stats() const {
  CompiledFsmStats s;
  s.num_states = num_states();
  s.num_edges = edge_target_.size();
  s.mask_pool_entries = static_cast<uint32_t>(mask_pool_.size());
  s.class_mask_pool_entries = static_cast<uint32_t>(class_mask_pool_.size());
  s.num_classes = num_classes_;
  s.vocab_size = vocab_size_;
  s.compile_millis = compile_millis_;
  uint64_t b = class_of_.size() * sizeof(int32_t) +
               mask_pool_.size() * static_cast<uint64_t>(vocab_size_) +
               mask_width_.size() * sizeof(int32_t) +
               mask_id_.size() * sizeof(uint32_t) +
               class_mask_id_.size() * sizeof(uint32_t) +
               edge_base_.size() * sizeof(uint64_t) +
               edge_target_.size() * sizeof(uint32_t);
  for (const ClassMask& cm : class_mask_pool_) {
    b += cm.words.size() * sizeof(uint64_t) + cm.rank.size() * sizeof(uint32_t);
  }
  s.bytes = b;
  return s;
}

void CompiledFsmTable::RecomputeDerived() {
  mask_width_.assign(mask_pool_.size(), 0);
  for (size_t i = 0; i < mask_pool_.size(); ++i) {
    int w = 0;
    for (uint8_t m : mask_pool_[i]) w += m != 0 ? 1 : 0;
    mask_width_[i] = w;
  }
  for (ClassMask& cm : class_mask_pool_) {
    cm.rank.assign(cm.words.size(), 0);
    uint32_t total = 0;
    for (size_t w = 0; w < cm.words.size(); ++w) {
      cm.rank[w] = total;
      total += static_cast<uint32_t>(__builtin_popcountll(cm.words[w]));
    }
  }
}

void CompiledFsmTable::CorruptMaskBit(uint64_t salt) {
  std::vector<uint8_t>& mask =
      mask_pool_[mask_id_[start_state_ * kNumBudgetRegimes +
                          static_cast<int>(BudgetRegime::kLoose)]];
  std::vector<int> set;
  for (int i = 0; i < static_cast<int>(mask.size()); ++i) {
    if (mask[i] != 0) set.push_back(i);
  }
  LSG_CHECK(!set.empty());
  mask[set[salt % set.size()]] = 0;
  RecomputeDerived();
}

void CompiledFsmTable::CorruptTransitionSwap(uint64_t salt) {
  std::vector<uint32_t> candidates;  // states with two distinct-target edges
  const uint32_t n = num_states();
  for (uint32_t s = 0; s < n && candidates.size() < 8; ++s) {
    const uint64_t lo = edge_base_[s];
    const uint64_t hi = s + 1 < n ? edge_base_[s + 1] : edge_target_.size();
    for (uint64_t e = lo + 1; e < hi; ++e) {
      if (edge_target_[e] != edge_target_[lo]) {
        candidates.push_back(s);
        break;
      }
    }
  }
  LSG_CHECK(!candidates.empty());
  // Stay near the root so random episodes cross the swapped edge quickly.
  const uint32_t s = candidates[salt % std::min<size_t>(candidates.size(), 4)];
  const uint64_t lo = edge_base_[s];
  const uint64_t hi = s + 1 < n ? edge_base_[s + 1] : edge_target_.size();
  for (uint64_t e = lo + 1; e < hi; ++e) {
    if (edge_target_[e] != edge_target_[lo]) {
      std::swap(edge_target_[lo], edge_target_[e]);
      return;
    }
  }
}

StatusOr<CompiledFsmTable> CompileFsm(const Database& db,
                                      const Vocabulary& vocab,
                                      const QueryProfile& profile,
                                      const CompileFsmOptions& options) {
  Stopwatch sw;
  CompiledFsmTable t;
  t.vocab_size_ = vocab.size();
  t.fingerprint_ = CompiledFsmFingerprint(db, vocab, profile);

  // --- token equivalence classes -------------------------------------
  // All value/pattern literals of one column step to the same structural
  // state (the key records the pending column, never the literal), mirror
  // of the analyzer's RepresentativeActions; everything else is a
  // singleton class.
  t.class_of_.assign(vocab.size(), -1);
  std::map<std::tuple<int, int, bool>, int> value_class;
  int num_classes = 0;
  for (int id = 0; id < vocab.size(); ++id) {
    const Token& tok = vocab.token(id);
    if (tok.kind == TokenKind::kValue) {
      auto [it, inserted] = value_class.try_emplace(
          std::make_tuple(tok.value_column_table, tok.value_column_idx,
                          tok.is_pattern),
          num_classes);
      if (inserted) ++num_classes;
      t.class_of_[id] = it->second;
    } else {
      t.class_of_[id] = num_classes++;
    }
  }
  t.num_classes_ = num_classes;
  const int num_words = (num_classes + 63) / 64;

  // --- structural-state BFS ------------------------------------------
  struct Rec {
    int32_t parent;  // -1 for the start state
    int32_t action;  // token stepped from the parent
  };
  std::vector<Rec> recs;
  std::unordered_map<std::string, uint32_t> intern;
  int32_t accept = -1;

  auto prefix_of = [&](uint32_t s) {
    std::vector<int> actions;
    for (int32_t cur = static_cast<int32_t>(s); recs[cur].parent >= 0;
         cur = recs[cur].parent) {
      actions.push_back(recs[cur].action);
    }
    std::reverse(actions.begin(), actions.end());
    return actions;
  };
  auto replay = [&](const std::vector<int>& actions) {
    GenerationFsm fsm(&db, &vocab, profile);
    for (int a : actions) LSG_CHECK_OK(fsm.Step(a));
    return fsm;
  };
  auto intern_state = [&](const std::string& key, int32_t parent,
                          int32_t action) {
    auto [it, inserted] =
        intern.try_emplace(key, static_cast<uint32_t>(recs.size()));
    if (inserted) {
      recs.push_back(Rec{parent, action});
      if (key == "DONE") accept = static_cast<int32_t>(it->second);
    }
    return it->second;
  };

  {
    GenerationFsm start(&db, &vocab, profile);
    intern_state(StructuralStateKey(start.builder(), profile), -1, -1);
  }

  // Mask-pool / class-mask-pool interning keyed on raw bytes.
  std::unordered_map<std::string, uint32_t> mask_pool_index;
  std::unordered_map<std::string, uint32_t> class_mask_index;
  auto intern_mask = [&](const std::vector<uint8_t>& mask) {
    std::string key(reinterpret_cast<const char*>(mask.data()), mask.size());
    auto [it, inserted] =
        mask_pool_index.try_emplace(std::move(key),
                                    static_cast<uint32_t>(t.mask_pool_.size()));
    if (inserted) t.mask_pool_.push_back(mask);
    return it->second;
  };
  auto intern_class_mask = [&](const std::vector<uint64_t>& words) {
    std::string key(reinterpret_cast<const char*>(words.data()),
                    words.size() * sizeof(uint64_t));
    auto [it, inserted] = class_mask_index.try_emplace(
        std::move(key), static_cast<uint32_t>(t.class_mask_pool_.size()));
    if (inserted) {
      t.class_mask_pool_.push_back(CompiledFsmTable::ClassMask{words, {}});
    }
    return it->second;
  };

  const std::vector<uint8_t> zero_mask(vocab.size(), 0);
  const std::vector<uint64_t> zero_words(num_words, 0);
  std::vector<int> class_member(num_classes);  // per-state scratch
  std::vector<uint64_t> words(num_words);

  for (uint32_t s = 0; s < recs.size(); ++s) {
    if (static_cast<int>(recs.size()) > options.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "compiled FSM exceeds max_states=%d", options.max_states));
    }
    if (options.max_millis > 0 && (s & 0xff) == 0 &&
        sw.ElapsedMillis() > options.max_millis) {
      return Status::ResourceExhausted(StrFormat(
          "compiled FSM exceeds max_millis=%d at %zu states",
          options.max_millis, recs.size()));
    }

    if (static_cast<int32_t>(s) == accept) {
      // Terminal: empty masks, no transitions.
      const uint32_t zm = intern_mask(zero_mask);
      for (int r = 0; r < kNumBudgetRegimes; ++r) t.mask_id_.push_back(zm);
      t.class_mask_id_.push_back(intern_class_mask(zero_words));
      t.edge_base_.push_back(t.edge_target_.size());
      continue;
    }

    const std::vector<int> prefix = prefix_of(s);
    GenerationFsm fsm = replay(prefix);

    // The three regime masks out of a single replayed witness: the masks
    // read the token count only through the overridable budget booleans.
    std::fill(words.begin(), words.end(), 0);
    for (int r = 0; r < kNumBudgetRegimes; ++r) {
      fsm.OverrideBudgetRegime(static_cast<BudgetRegime>(r));
      const std::vector<uint8_t>& mask = fsm.ValidActions();
      t.mask_id_.push_back(intern_mask(mask));
      for (int id = 0; id < vocab.size(); ++id) {
        if (mask[id] == 0) continue;
        const int cls = t.class_of_[id];
        words[static_cast<uint32_t>(cls) >> 6] |= 1ull << (cls & 63);
        class_member[cls] = id;
      }
    }
    fsm.OverrideBudgetRegime(BudgetRegime::kAuto);

    // Expand one edge per legal class, ascending so ranks line up with the
    // edge array. The union over regimes matters: under require_nested the
    // tight masks open completions the loose ones forbid.
    t.class_mask_id_.push_back(intern_class_mask(words));
    t.edge_base_.push_back(t.edge_target_.size());
    for (int w = 0; w < num_words; ++w) {
      uint64_t bits = words[w];
      while (bits != 0) {
        const int cls = w * 64 + __builtin_ctzll(bits);
        bits &= bits - 1;
        GenerationFsm child = replay(prefix);
        LSG_CHECK_OK(child.Step(class_member[cls]));
        const std::string key =
            child.done() ? "DONE"
                         : StructuralStateKey(child.builder(), profile);
        t.edge_target_.push_back(
            intern_state(key, static_cast<int32_t>(s), class_member[cls]));
      }
    }
  }

  if (accept < 0) {
    return Status::Internal("compiled FSM never reached the accept state");
  }
  t.start_state_ = 0;
  t.accept_state_ = static_cast<uint32_t>(accept);
  t.RecomputeDerived();
  t.compile_millis_ = static_cast<uint64_t>(sw.ElapsedMillis());
  return t;
}

// --- serialisation ---------------------------------------------------

Status CompiledFsmTable::Save(const std::string& path) const {
  std::string payload;
  payload.reserve(1 << 20);
  AppendU64(&payload, fingerprint_);
  AppendI32(&payload, vocab_size_);
  AppendI32(&payload, num_classes_);
  AppendU32(&payload, num_states());
  AppendU32(&payload, start_state_);
  AppendU32(&payload, accept_state_);
  AppendU64(&payload, compile_millis_);
  for (int32_t c : class_of_) AppendI32(&payload, c);
  AppendU32(&payload, static_cast<uint32_t>(mask_pool_.size()));
  for (const std::vector<uint8_t>& m : mask_pool_) {
    AppendRaw(&payload, m.data(), m.size());
  }
  for (uint32_t id : mask_id_) AppendU32(&payload, id);
  AppendU32(&payload, static_cast<uint32_t>(class_mask_pool_.size()));
  for (const ClassMask& cm : class_mask_pool_) {
    AppendRaw(&payload, cm.words.data(), cm.words.size() * sizeof(uint64_t));
  }
  for (uint32_t id : class_mask_id_) AppendU32(&payload, id);
  for (uint64_t b : edge_base_) AppendU64(&payload, b);
  AppendU64(&payload, edge_target_.size());
  for (uint32_t e : edge_target_) AppendU32(&payload, e);

  std::string blob;
  blob.reserve(payload.size() + 32);
  AppendRaw(&blob, kMagic, sizeof kMagic);
  AppendU64(&blob, payload.size());
  blob += payload;
  AppendU64(&blob, HashBytes(0, payload.data(), payload.size()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for write: " + path);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out) return Status::Internal("short write: " + path);
  return Status::Ok();
}

StatusOr<CompiledFsmTable> CompiledFsmTable::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < sizeof kMagic + 16 ||
      std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    return Status::InvalidArgument("bad compiled-FSM header: " + path);
  }
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, blob.data() + sizeof kMagic, 8);
  if (payload_size != blob.size() - sizeof kMagic - 16) {
    return Status::InvalidArgument("bad compiled-FSM size: " + path);
  }
  const char* payload = blob.data() + sizeof kMagic + 8;
  uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, payload + payload_size, 8);
  if (stored_sum != HashBytes(0, payload, payload_size)) {
    return Status::InvalidArgument("compiled-FSM checksum mismatch: " +
                                   path);
  }

  Reader r(payload, payload_size);
  CompiledFsmTable t;
  uint32_t num_states = 0, pool = 0, cpool = 0;
  uint64_t num_edges = 0;
  bool ok = r.U64(&t.fingerprint_) && r.I32(&t.vocab_size_) &&
            r.I32(&t.num_classes_) && r.U32(&num_states) &&
            r.U32(&t.start_state_) && r.U32(&t.accept_state_) &&
            r.U64(&t.compile_millis_);
  if (!ok || t.vocab_size_ <= 0 || t.num_classes_ <= 0 || num_states == 0 ||
      t.start_state_ >= num_states || t.accept_state_ >= num_states) {
    return Status::InvalidArgument("truncated compiled FSM: " + path);
  }
  const int num_words = (t.num_classes_ + 63) / 64;
  t.class_of_.resize(t.vocab_size_);
  ok = r.Raw(t.class_of_.data(), t.class_of_.size() * sizeof(int32_t)) &&
       r.U32(&pool);
  if (ok) {
    t.mask_pool_.resize(pool);
    for (std::vector<uint8_t>& m : t.mask_pool_) {
      m.resize(t.vocab_size_);
      ok = ok && r.Raw(m.data(), m.size());
    }
    t.mask_id_.resize(static_cast<size_t>(num_states) * kNumBudgetRegimes);
    ok = ok && r.Raw(t.mask_id_.data(), t.mask_id_.size() * sizeof(uint32_t));
    ok = ok && r.U32(&cpool);
  }
  if (ok) {
    t.class_mask_pool_.resize(cpool);
    for (ClassMask& cm : t.class_mask_pool_) {
      cm.words.resize(num_words);
      ok = ok && r.Raw(cm.words.data(), cm.words.size() * sizeof(uint64_t));
    }
    t.class_mask_id_.resize(num_states);
    ok = ok && r.Raw(t.class_mask_id_.data(),
                     t.class_mask_id_.size() * sizeof(uint32_t));
    t.edge_base_.resize(num_states);
    ok = ok &&
         r.Raw(t.edge_base_.data(), t.edge_base_.size() * sizeof(uint64_t));
    ok = ok && r.U64(&num_edges);
  }
  if (ok) {
    t.edge_target_.resize(num_edges);
    ok = ok && r.Raw(t.edge_target_.data(), num_edges * sizeof(uint32_t));
  }
  if (!ok || !r.AtEnd()) {
    return Status::InvalidArgument("truncated compiled FSM: " + path);
  }
  for (uint32_t id : t.mask_id_) {
    if (id >= t.mask_pool_.size()) {
      return Status::InvalidArgument("bad mask id in: " + path);
    }
  }
  for (uint32_t id : t.class_mask_id_) {
    if (id >= t.class_mask_pool_.size()) {
      return Status::InvalidArgument("bad class-mask id in: " + path);
    }
  }
  for (uint32_t e : t.edge_target_) {
    if (e >= num_states) {
      return Status::InvalidArgument("bad edge target in: " + path);
    }
  }
  t.RecomputeDerived();
  return t;
}

StatusOr<CompiledFsmTable> BuildOrLoadCompiledFsm(
    const Database& db, const Vocabulary& vocab, const QueryProfile& profile,
    const CompileFsmOptions& options, const std::string& cache_dir) {
  const uint64_t fp = CompiledFsmFingerprint(db, vocab, profile);
  char name[32];
  std::snprintf(name, sizeof name, "cfsm-%016llx.bin",
                static_cast<unsigned long long>(fp));
  const std::string path = cache_dir + "/" + name;
  if (std::filesystem::exists(path)) {
    StatusOr<CompiledFsmTable> loaded = CompiledFsmTable::Load(path);
    if (loaded.ok() && loaded->fingerprint() == fp) return loaded;
    LSG_LOG(Warning) << "stale/corrupt compiled-FSM artifact " << path
                     << " ("
                     << (loaded.ok() ? "fingerprint mismatch"
                                     : loaded.status().ToString())
                     << "); recompiling";
  }
  LSG_ASSIGN_OR_RETURN(CompiledFsmTable table,
                       CompileFsm(db, vocab, profile, options));
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  Status saved = table.Save(path);
  if (!saved.ok()) {
    LSG_LOG(Warning) << "cannot cache compiled FSM at " << path << ": "
                     << saved.ToString();
  }
  return table;
}

// --- process-wide cache ----------------------------------------------

struct CompiledFsmCache::Impl {
  // One slot per memo key. `done` flips exactly once, under `mu`; a slot
  // with done == false marks a compile in flight (its creator is running
  // CompileFsm with `mu` released) and waiters sleep on `cv`.
  struct MemoSlot {
    bool done = false;
    // nullptr + done is a negative entry: compilation was attempted and
    // is infeasible under the caps — don't probe again this process.
    std::shared_ptr<const CompiledFsmTable> table;
  };

  mutable Mutex mu;
  CondVar cv;
  std::unordered_map<uint64_t, std::shared_ptr<MemoSlot>> map
      LSG_GUARDED_BY(mu);
  Stats stats LSG_GUARDED_BY(mu);
};

CompiledFsmCache::CompiledFsmCache() : impl_(new Impl) {}

CompiledFsmCache::~CompiledFsmCache() { delete impl_; }

CompiledFsmCache& CompiledFsmCache::Global() {
  static CompiledFsmCache cache;
  return cache;
}

CompiledFsmCache::Stats CompiledFsmCache::GetStats() const {
  MutexLock lock(&impl_->mu);
  return impl_->stats;
}

std::shared_ptr<const CompiledFsmTable> CompiledFsmCache::GetOrCompile(
    const Database& db, const Vocabulary& vocab, const QueryProfile& profile,
    const CompileFsmOptions& options, const std::string& cache_dir) {
  uint64_t fp = CompiledFsmFingerprint(db, vocab, profile);
  // The caps are part of the memo key: a pair that is infeasible under
  // small caps may compile fine under larger ones, and a negative entry
  // must not shadow that.
  fp = HashU64(fp, static_cast<uint64_t>(options.max_states));
  fp = HashU64(fp, static_cast<uint64_t>(options.max_millis));

  std::shared_ptr<Impl::MemoSlot> slot;
  {
    MutexLock lock(&impl_->mu);
    auto it = impl_->map.find(fp);
    if (it != impl_->map.end()) {
      slot = it->second;
      if (slot->done) {
        ++impl_->stats.hits;
        return slot->table;
      }
      // Another thread is compiling this key right now: wait for its
      // result instead of compiling it twice.
      ++impl_->stats.dedup_waits;
      while (!slot->done) impl_->cv.Wait(impl_->mu);
      return slot->table;
    }
    ++impl_->stats.misses;
    ++impl_->stats.compiles;
    slot = std::make_shared<Impl::MemoSlot>();
    impl_->map.emplace(fp, slot);
  }

  // Compile with the cache mutex released: CompileFsm can run for seconds
  // (and takes the logging mutex on its way), so holding the process-wide
  // memo lock across it would convoy every worker behind one compile.
  StatusOr<CompiledFsmTable> result =
      cache_dir.empty() ? CompileFsm(db, vocab, profile, options)
                        : BuildOrLoadCompiledFsm(db, vocab, profile, options,
                                                 cache_dir);
  std::shared_ptr<const CompiledFsmTable> table;
  if (result.ok()) {
    table = std::make_shared<const CompiledFsmTable>(std::move(*result));
  } else {
    LSG_LOG(Info) << "compiled FSM unavailable (interpreted fallback): "
                  << result.status().ToString();
  }
  {
    MutexLock lock(&impl_->mu);
    slot->table = table;
    slot->done = true;
  }
  impl_->cv.NotifyAll();
  return table;
}

}  // namespace lsg
