#ifndef LEARNEDSQLGEN_DATASETS_JOB_LIKE_H_
#define LEARNEDSQLGEN_DATASETS_JOB_LIKE_H_

#include "datasets/dataset_util.h"

namespace lsg {

/// Synthetic stand-in for the Join Order Benchmark's IMDB database [1]:
/// all 21 tables with the real FK topology — `title` and `name` as hubs,
/// small `*_type` dimension tables, and wide many-to-many bridge tables
/// (cast_info, movie_info, movie_keyword, movie_companies, ...). Value
/// distributions mimic IMDB's heavy skew (a few blockbusters collect most
/// of the cast/info rows).
Database BuildJobLike(const DatasetScale& scale = DatasetScale());

}  // namespace lsg

#endif  // LEARNEDSQLGEN_DATASETS_JOB_LIKE_H_
