#include "datasets/xuetang_like.h"

#include <cmath>

namespace lsg {

using namespace dataset_internal;  // NOLINT(build/namespaces): DDL helpers

Database BuildXuetangLike(const DatasetScale& scale) {
  Rng rng(scale.seed + 2);
  Database db;

  const int n_school = scale.Rows(30);
  const int n_user = scale.Rows(1000);
  const int n_teacher = scale.Rows(80);
  const int n_course = scale.Rows(120);
  const int n_chapter = scale.Rows(600);
  const int n_video = scale.Rows(900);
  const int n_enroll = scale.Rows(3000);
  const int n_watch = scale.Rows(4000);
  const int n_exam = scale.Rows(240);
  const int n_exam_rec = scale.Rows(2000);
  const int n_assign = scale.Rows(360);
  const int n_submit = scale.Rows(1800);
  const int n_thread = scale.Rows(400);
  const int n_post = scale.Rows(1400);

  const std::vector<std::string> degrees = {"bachelor", "master", "phd",
                                            "none"};
  const std::vector<std::string> genders = {"male", "female", "unknown"};
  const std::vector<std::string> categories = {"cs", "math", "physics",
                                               "biology", "economics", "art",
                                               "language", "engineering"};
  const std::vector<std::string> levels = {"beginner", "intermediate",
                                           "advanced"};
  const std::vector<std::string> enroll_status = {"active", "completed",
                                                  "dropped"};
  const std::vector<std::string> grades = {"A", "B", "C", "D", "F"};

  {
    Table t(MakeSchema("school", {Pk("school_id"), Str("name"), Cat("tier")}));
    for (int i = 0; i < n_school; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("School", i)),
           Value(PickCat(&rng, {"top", "mid", "normal"}))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("users", {Pk("user_id"), Str("name"), Cat("gender"),
                                 Int("age"), Cat("degree"),
                                 Int("school_id")}));
    t.ReserveRows(static_cast<size_t>(n_user));
    for (int i = 0; i < n_user; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("User", i)),
           Value(PickCat(&rng, genders)),
           Value(static_cast<int64_t>(15 + rng.Zipf(45, 0.6))),
           Value(PickCatZipf(&rng, degrees, 0.8)),
           Value(static_cast<int64_t>(rng.Uniform(n_school)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("teacher", {Pk("teacher_id"), Str("name"),
                                   Int("school_id"), Dbl("rating")}));
    t.ReserveRows(static_cast<size_t>(n_teacher));
    for (int i = 0; i < n_teacher; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("Teacher", i)),
           Value(static_cast<int64_t>(rng.Uniform(n_school))),
           Value(std::round(rng.UniformDouble(2.5, 5.0) * 10.0) / 10.0)}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("course",
                       {Pk("course_id"), Str("title"), Cat("category"),
                        Cat("level"), Int("teacher_id"), Dbl("price"),
                        Int("duration_weeks")}));
    t.ReserveRows(static_cast<size_t>(n_course));
    for (int i = 0; i < n_course; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("Course", i)),
           Value(PickCatZipf(&rng, categories, 0.7)),
           Value(PickCat(&rng, levels)),
           Value(static_cast<int64_t>(rng.Uniform(n_teacher))),
           Value(Price(&rng, 0.0, 299.0)),
           Value(static_cast<int64_t>(4 + rng.Uniform(13)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("chapter", {Pk("chapter_id"), Int("course_id"),
                                   Int("seq"), Str("title")}));
    t.ReserveRows(static_cast<size_t>(n_chapter));
    for (int i = 0; i < n_chapter; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_course))),
           Value(static_cast<int64_t>(1 + rng.Uniform(12))),
           Value(SynthName("Chapter", i))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("video", {Pk("video_id"), Int("chapter_id"),
                                 Int("length_sec")}));
    t.ReserveRows(static_cast<size_t>(n_video));
    for (int i = 0; i < n_video; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_chapter))),
           Value(static_cast<int64_t>(60 + rng.Uniform(1740)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("enrollment",
                       {Pk("enroll_id"), Int("user_id"), Int("course_id"),
                        Cat("status"), Int("enroll_date"),
                        Dbl("progress")}));
    t.ReserveRows(static_cast<size_t>(n_enroll));
    for (int i = 0; i < n_enroll; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_user, 0.6))),
           Value(static_cast<int64_t>(rng.Zipf(n_course, 0.9))),
           Value(PickCat(&rng, enroll_status)),
           Value(static_cast<int64_t>(20200101 + rng.Uniform(40000))),
           Value(std::round(rng.UniformDouble(0.0, 1.0) * 100.0) / 100.0)}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("video_watch",
                       {Pk("watch_id"), Int("user_id"), Int("video_id"),
                        Int("watch_sec"), Int("watch_date")}));
    t.ReserveRows(static_cast<size_t>(n_watch));
    for (int i = 0; i < n_watch; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_user, 0.8))),
           Value(static_cast<int64_t>(rng.Zipf(n_video, 0.7))),
           Value(static_cast<int64_t>(rng.Uniform(1800))),
           Value(static_cast<int64_t>(20200101 + rng.Uniform(40000)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("exam", {Pk("exam_id"), Int("course_id"),
                                Dbl("full_score"), Int("duration_min")}));
    t.ReserveRows(static_cast<size_t>(n_exam));
    for (int i = 0; i < n_exam; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_course))),
           Value(100.0), Value(static_cast<int64_t>(30 + rng.Uniform(120)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("exam_record",
                       {Pk("record_id"), Int("exam_id"), Int("user_id"),
                        Dbl("score"), Cat("grade")}));
    t.ReserveRows(static_cast<size_t>(n_exam_rec));
    for (int i = 0; i < n_exam_rec; ++i) {
      double score =
          std::min(100.0, std::max(0.0, rng.Normal(72.0, 18.0)));
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_exam))),
           Value(static_cast<int64_t>(rng.Zipf(n_user, 0.5))),
           Value(std::round(score * 10.0) / 10.0),
           Value(grades[score >= 90   ? 0
                        : score >= 80 ? 1
                        : score >= 70 ? 2
                        : score >= 60 ? 3
                                      : 4])}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("assignment", {Pk("assign_id"), Int("course_id"),
                                      Int("deadline"), Dbl("weight")}));
    t.ReserveRows(static_cast<size_t>(n_assign));
    for (int i = 0; i < n_assign; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_course))),
           Value(static_cast<int64_t>(20200101 + rng.Uniform(40000))),
           Value(std::round(rng.UniformDouble(0.05, 0.4) * 100.0) / 100.0)}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("submission",
                       {Pk("submit_id"), Int("assign_id"), Int("user_id"),
                        Dbl("score"), Int("submit_date")}));
    t.ReserveRows(static_cast<size_t>(n_submit));
    for (int i = 0; i < n_submit; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_assign))),
           Value(static_cast<int64_t>(rng.Zipf(n_user, 0.6))),
           Value(std::round(
                     std::min(100.0, std::max(0.0, rng.Normal(78.0, 15.0))) *
                     10.0) /
                 10.0),
           Value(static_cast<int64_t>(20200101 + rng.Uniform(40000)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("forum_thread", {Pk("thread_id"), Int("course_id"),
                                        Int("user_id"), Str("title")}));
    t.ReserveRows(static_cast<size_t>(n_thread));
    for (int i = 0; i < n_thread; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_course, 0.8))),
           Value(static_cast<int64_t>(rng.Uniform(n_user))),
           Value(SynthName("Thread", i))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  {
    Table t(MakeSchema("forum_post", {Pk("post_id"), Int("thread_id"),
                                      Int("user_id"), Int("post_date")}));
    t.ReserveRows(static_cast<size_t>(n_post));
    for (int i = 0; i < n_post; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_thread, 0.9))),
           Value(static_cast<int64_t>(rng.Zipf(n_user, 0.7))),
           Value(static_cast<int64_t>(20200101 + rng.Uniform(40000)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  LSG_CHECK_OK(db.AddForeignKey({"users", "school_id", "school", "school_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"teacher", "school_id", "school", "school_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"course", "teacher_id", "teacher", "teacher_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"chapter", "course_id", "course", "course_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"video", "chapter_id", "chapter", "chapter_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"enrollment", "user_id", "users", "user_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"enrollment", "course_id", "course", "course_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"video_watch", "user_id", "users", "user_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"video_watch", "video_id", "video", "video_id"}));
  LSG_CHECK_OK(db.AddForeignKey({"exam", "course_id", "course", "course_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"exam_record", "exam_id", "exam", "exam_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"exam_record", "user_id", "users", "user_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"assignment", "course_id", "course", "course_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"submission", "assign_id", "assignment", "assign_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"submission", "user_id", "users", "user_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"forum_thread", "course_id", "course", "course_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"forum_thread", "user_id", "users", "user_id"}));
  LSG_CHECK_OK(db.AddForeignKey(
      {"forum_post", "thread_id", "forum_thread", "thread_id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"forum_post", "user_id", "users", "user_id"}));
  return db;
}

}  // namespace lsg
