#include "datasets/job_like.h"

namespace lsg {

using namespace dataset_internal;  // NOLINT(build/namespaces): DDL helpers

namespace {

/// Builds a small dimension table "name(id PK, <col> CATEGORICAL)" with one
/// row per vocabulary entry.
void AddDimension(Database* db, const std::string& name,
                  const std::string& col,
                  const std::vector<std::string>& values) {
  Table t(MakeSchema(name, {Pk("id"), Cat(col)}));
  for (size_t i = 0; i < values.size(); ++i) {
    LSG_CHECK_OK(
        t.AppendRow({Value(static_cast<int64_t>(i)), Value(values[i])}));
  }
  LSG_CHECK_OK(db->AddTable(std::move(t)));
}

}  // namespace

Database BuildJobLike(const DatasetScale& scale) {
  Rng rng(scale.seed + 1);
  Database db;

  const int n_title = scale.Rows(800);
  const int n_name = scale.Rows(1000);
  const int n_char = scale.Rows(600);
  const int n_company = scale.Rows(200);
  const int n_keyword = scale.Rows(300);
  const int n_aka_name = scale.Rows(300);
  const int n_aka_title = scale.Rows(200);
  const int n_cast = scale.Rows(4000);
  const int n_complete = scale.Rows(300);
  const int n_mc = scale.Rows(800);
  const int n_mi = scale.Rows(2500);
  const int n_mi_idx = scale.Rows(900);
  const int n_mk = scale.Rows(1500);
  const int n_ml = scale.Rows(150);
  const int n_pi = scale.Rows(1000);

  // Dimension tables (real IMDB vocabularies, abbreviated).
  AddDimension(&db, "kind_type", "kind",
               {"movie", "tv series", "tv movie", "video movie",
                "tv mini series", "video game", "episode"});
  AddDimension(&db, "comp_cast_type", "kind",
               {"cast", "crew", "complete", "complete+verified"});
  AddDimension(&db, "company_type", "kind",
               {"distributors", "production companies",
                "special effects companies", "miscellaneous companies"});
  AddDimension(&db, "info_type", "info",
               {"runtimes", "color info", "genres", "languages", "countries",
                "rating", "votes", "budget", "gross", "release dates",
                "taglines", "keywords", "certificates", "sound mix",
                "locations", "tech info", "plot", "quotes", "trivia",
                "goofs"});
  AddDimension(&db, "link_type", "link",
               {"follows", "followed by", "remake of", "remade as",
                "references", "referenced in", "spoofs", "spoofed in",
                "features", "featured in", "spin off from", "spin off",
                "version of", "similar to", "edited into", "edited from",
                "alternate language version of"});
  AddDimension(&db, "role_type", "role",
               {"actor", "actress", "producer", "writer", "cinematographer",
                "composer", "costume designer", "director", "editor",
                "miscellaneous crew", "production designer", "guest"});

  const std::vector<std::string> genders = {"m", "f", ""};
  const std::vector<std::string> countries = {"[us]", "[gb]", "[de]", "[fr]",
                                              "[jp]", "[in]", "[ca]", "[it]"};

  // title
  {
    Table t(MakeSchema("title", {Pk("id"), Str("title"), Int("kind_id"),
                                 Int("production_year")}));
    t.ReserveRows(static_cast<size_t>(n_title));
    for (int i = 0; i < n_title; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("Title", i)),
           Value(static_cast<int64_t>(rng.Zipf(7, 1.2))),
           Value(static_cast<int64_t>(1930 + rng.Zipf(92, 0.4)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // name
  {
    Table t(MakeSchema("name", {Pk("id"), Str("name"), Cat("gender")}));
    t.ReserveRows(static_cast<size_t>(n_name));
    for (int i = 0; i < n_name; ++i) {
      LSG_CHECK_OK(t.AppendRow({Value(int64_t{i}),
                                Value(SynthName("Person", i)),
                                Value(PickCat(&rng, genders))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // char_name
  {
    Table t(MakeSchema("char_name", {Pk("id"), Str("name")}));
    t.ReserveRows(static_cast<size_t>(n_char));
    for (int i = 0; i < n_char; ++i) {
      LSG_CHECK_OK(
          t.AppendRow({Value(int64_t{i}), Value(SynthName("Char", i))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // company_name
  {
    Table t(MakeSchema("company_name",
                       {Pk("id"), Str("name"), Cat("country_code")}));
    t.ReserveRows(static_cast<size_t>(n_company));
    for (int i = 0; i < n_company; ++i) {
      LSG_CHECK_OK(t.AppendRow({Value(int64_t{i}),
                                Value(SynthName("Company", i)),
                                Value(PickCatZipf(&rng, countries, 1.0))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // keyword
  {
    Table t(MakeSchema("keyword", {Pk("id"), Str("keyword")}));
    t.ReserveRows(static_cast<size_t>(n_keyword));
    for (int i = 0; i < n_keyword; ++i) {
      LSG_CHECK_OK(
          t.AppendRow({Value(int64_t{i}), Value(SynthName("kw", i))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // aka_name / aka_title
  {
    Table t(MakeSchema("aka_name", {Pk("id"), Int("person_id"), Str("name")}));
    t.ReserveRows(static_cast<size_t>(n_aka_name));
    for (int i = 0; i < n_aka_name; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(static_cast<int64_t>(rng.Uniform(n_name))),
           Value(SynthName("Aka", i))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }
  {
    Table t(MakeSchema("aka_title", {Pk("id"), Int("movie_id"), Str("title")}));
    t.ReserveRows(static_cast<size_t>(n_aka_title));
    for (int i = 0; i < n_aka_title; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(static_cast<int64_t>(rng.Uniform(n_title))),
           Value(SynthName("AkaTitle", i))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // cast_info — the biggest bridge; blockbuster titles hoard cast rows.
  {
    Table t(MakeSchema("cast_info",
                       {Pk("id"), Int("person_id"), Int("movie_id"),
                        Int("person_role_id"), Int("role_id"),
                        Int("nr_order")}));
    t.ReserveRows(static_cast<size_t>(n_cast));
    for (int i = 0; i < n_cast; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_name, 0.8))),
           Value(static_cast<int64_t>(rng.Zipf(n_title, 0.9))),
           Value(static_cast<int64_t>(rng.Uniform(n_char))),
           Value(static_cast<int64_t>(rng.Zipf(12, 1.0))),
           Value(static_cast<int64_t>(1 + rng.Uniform(60)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // complete_cast
  {
    Table t(MakeSchema("complete_cast",
                       {Pk("id"), Int("movie_id"), Int("subject_id"),
                        Int("status_id")}));
    t.ReserveRows(static_cast<size_t>(n_complete));
    for (int i = 0; i < n_complete; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(static_cast<int64_t>(rng.Uniform(n_title))),
           Value(static_cast<int64_t>(rng.Uniform(2))),
           Value(static_cast<int64_t>(2 + rng.Uniform(2)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // movie_companies
  {
    Table t(MakeSchema("movie_companies",
                       {Pk("id"), Int("movie_id"), Int("company_id"),
                        Int("company_type_id")}));
    t.ReserveRows(static_cast<size_t>(n_mc));
    for (int i = 0; i < n_mc; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_title, 0.6))),
           Value(static_cast<int64_t>(rng.Zipf(n_company, 1.0))),
           Value(static_cast<int64_t>(rng.Uniform(4)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // movie_info / movie_info_idx
  {
    Table t(MakeSchema("movie_info", {Pk("id"), Int("movie_id"),
                                      Int("info_type_id"), Str("info")}));
    t.ReserveRows(static_cast<size_t>(n_mi));
    for (int i = 0; i < n_mi; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_title, 0.7))),
           Value(static_cast<int64_t>(rng.Uniform(20))),
           Value(SynthName("info", static_cast<int>(rng.Uniform(400))))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }
  {
    Table t(MakeSchema("movie_info_idx",
                       {Pk("id"), Int("movie_id"), Int("info_type_id"),
                        Dbl("info")}));
    t.ReserveRows(static_cast<size_t>(n_mi_idx));
    for (int i = 0; i < n_mi_idx; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_title))),
           Value(static_cast<int64_t>(5 + rng.Uniform(4))),
           Value(std::round(rng.UniformDouble(1.0, 10.0) * 10.0) / 10.0)}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // movie_keyword
  {
    Table t(MakeSchema("movie_keyword",
                       {Pk("id"), Int("movie_id"), Int("keyword_id")}));
    t.ReserveRows(static_cast<size_t>(n_mk));
    for (int i = 0; i < n_mk; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_title, 0.6))),
           Value(static_cast<int64_t>(rng.Zipf(n_keyword, 0.9)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // movie_link
  {
    Table t(MakeSchema("movie_link",
                       {Pk("id"), Int("movie_id"), Int("linked_movie_id"),
                        Int("link_type_id")}));
    t.ReserveRows(static_cast<size_t>(n_ml));
    for (int i = 0; i < n_ml; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(static_cast<int64_t>(rng.Uniform(n_title))),
           Value(static_cast<int64_t>(rng.Uniform(n_title))),
           Value(static_cast<int64_t>(rng.Uniform(17)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // person_info
  {
    Table t(MakeSchema("person_info", {Pk("id"), Int("person_id"),
                                       Int("info_type_id"), Str("info")}));
    t.ReserveRows(static_cast<size_t>(n_pi));
    for (int i = 0; i < n_pi; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_name, 0.7))),
           Value(static_cast<int64_t>(rng.Uniform(20))),
           Value(SynthName("bio", static_cast<int>(rng.Uniform(300))))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // FK graph — the JOB join topology.
  LSG_CHECK_OK(db.AddForeignKey({"title", "kind_id", "kind_type", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"aka_name", "person_id", "name", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"aka_title", "movie_id", "title", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"cast_info", "person_id", "name", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"cast_info", "movie_id", "title", "id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"cast_info", "person_role_id", "char_name", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"cast_info", "role_id", "role_type", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"complete_cast", "movie_id", "title", "id"}));
  LSG_CHECK_OK(db.AddForeignKey(
      {"complete_cast", "subject_id", "comp_cast_type", "id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"movie_companies", "movie_id", "title", "id"}));
  LSG_CHECK_OK(db.AddForeignKey(
      {"movie_companies", "company_id", "company_name", "id"}));
  LSG_CHECK_OK(db.AddForeignKey(
      {"movie_companies", "company_type_id", "company_type", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"movie_info", "movie_id", "title", "id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"movie_info", "info_type_id", "info_type", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"movie_info_idx", "movie_id", "title", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"movie_keyword", "movie_id", "title", "id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"movie_keyword", "keyword_id", "keyword", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"movie_link", "movie_id", "title", "id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"movie_link", "link_type_id", "link_type", "id"}));
  LSG_CHECK_OK(db.AddForeignKey({"person_info", "person_id", "name", "id"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"person_info", "info_type_id", "info_type", "id"}));
  return db;
}

}  // namespace lsg
