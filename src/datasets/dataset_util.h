#ifndef LEARNEDSQLGEN_DATASETS_DATASET_UTIL_H_
#define LEARNEDSQLGEN_DATASETS_DATASET_UTIL_H_

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "storage/table.h"

namespace lsg {

/// Scaling knob for all synthetic benchmarks: table sizes are expressed in
/// units of `base_rows` so the whole database grows/shrinks together.
/// Defaults keep every experiment laptop-fast while preserving the schema
/// topology (FK graph) and realistic value skew of the originals.
struct DatasetScale {
  double factor = 1.0;   ///< multiplies all table row counts
  uint64_t seed = 20220612;  ///< SIGMOD'22 ;-)

  /// Hard ceiling on one table's rows. Keeps the largest bundled base
  /// table at factor 1000 (~3·10⁶ rows) in range and makes absurd factors
  /// saturate instead of overflowing the int conversion below.
  static constexpr int kMaxRowsPerTable = 8'000'000;

  /// Scaled row count: floor(base · factor), clamped to [2,
  /// kMaxRowsPerTable]. The product is computed in double and clamped
  /// *before* the int cast — `static_cast<int>(huge double)` is UB, so a
  /// factor like 1e12 must never reach the cast. factor == 1.0 is exactly
  /// `base` (bit-identical datasets; the default everywhere).
  int Rows(int base) const {
    double n = static_cast<double>(base) * factor;
    if (!(n >= 2.0)) return 2;  // NaN and sub-minimum both floor to 2
    if (n > static_cast<double>(kMaxRowsPerTable)) return kMaxRowsPerTable;
    return static_cast<int>(n);
  }

  /// Named constructor for execution-grounded runs at 10⁵–10⁶-row scale:
  /// same seed default, so RowScale(1.0) reproduces the seed datasets
  /// bit-for-bit.
  static DatasetScale RowScale(double row_scale) {
    DatasetScale s;
    s.factor = row_scale;
    return s;
  }
};

namespace dataset_internal {

/// Quick builders so schema definitions read like DDL.
inline ColumnSchema Pk(const std::string& name) {
  return ColumnSchema{name, DataType::kInt64, /*is_primary_key=*/true,
                      /*nullable=*/false};
}
inline ColumnSchema Int(const std::string& name) {
  return ColumnSchema{name, DataType::kInt64, false, false};
}
inline ColumnSchema Dbl(const std::string& name) {
  return ColumnSchema{name, DataType::kDouble, false, false};
}
inline ColumnSchema Str(const std::string& name) {
  return ColumnSchema{name, DataType::kString, false, false};
}
inline ColumnSchema Cat(const std::string& name) {
  return ColumnSchema{name, DataType::kCategorical, false, false};
}

inline TableSchema MakeSchema(const std::string& name,
                              std::vector<ColumnSchema> cols) {
  TableSchema s(name);
  for (ColumnSchema& c : cols) LSG_CHECK_OK(s.AddColumn(std::move(c)));
  return s;
}

/// Uniformly random pick from a categorical vocabulary.
inline std::string PickCat(Rng* rng, const std::vector<std::string>& values) {
  return values[rng->Uniform(values.size())];
}

/// Zipf-skewed pick (popular first entries).
inline std::string PickCatZipf(Rng* rng, const std::vector<std::string>& values,
                               double skew) {
  return values[rng->Zipf(values.size(), skew)];
}

/// Synthetic proper-noun-ish string: "<prefix>_<id>".
inline std::string SynthName(const std::string& prefix, int64_t id) {
  return StrFormat("%s_%lld", prefix.c_str(), static_cast<long long>(id));
}

/// Rounds a double to 2 decimals (price-like values).
inline double Price(Rng* rng, double lo, double hi) {
  double v = rng->UniformDouble(lo, hi);
  return std::round(v * 100.0) / 100.0;
}

}  // namespace dataset_internal
}  // namespace lsg

#endif  // LEARNEDSQLGEN_DATASETS_DATASET_UTIL_H_
