#ifndef LEARNEDSQLGEN_DATASETS_XUETANG_LIKE_H_
#define LEARNEDSQLGEN_DATASETS_XUETANG_LIKE_H_

#include "datasets/dataset_util.h"

namespace lsg {

/// Synthetic stand-in for the XueTang online-education OLTP benchmark [3]:
/// 14 tables modeling users, schools, teachers, courses, chapters, videos,
/// enrollments, watch logs, exams, exam records, assignments, submissions,
/// forum threads/posts and certificates, with OLTP-style FK fanout (long
/// activity logs hanging off users and courses).
Database BuildXuetangLike(const DatasetScale& scale = DatasetScale());

}  // namespace lsg

#endif  // LEARNEDSQLGEN_DATASETS_XUETANG_LIKE_H_
