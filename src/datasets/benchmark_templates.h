#ifndef LEARNEDSQLGEN_DATASETS_BENCHMARK_TEMPLATES_H_
#define LEARNEDSQLGEN_DATASETS_BENCHMARK_TEMPLATES_H_

#include <string>
#include <vector>

namespace lsg {

/// Hand-written query templates for each benchmark, in the spirit of the
/// originals (TPC-H's Q1/Q3/Q5-style shapes, JOB's star joins around
/// title/cast_info, XueTang's OLTP lookups). The paper's Template baseline
/// [10, 38] starts from "the provided templates of the three benchmarks";
/// these are that seed pool for our synthetic stand-ins. The literal
/// predicate values are placeholders the hill-climber tweaks.
std::vector<std::string> TpchLikeTemplates();
std::vector<std::string> JobLikeTemplates();
std::vector<std::string> XuetangLikeTemplates();

/// Templates for the dataset name used by the bench harness
/// ("TPC-H" / "JOB" / "XueTang").
std::vector<std::string> TemplatesForDataset(const std::string& name);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_DATASETS_BENCHMARK_TEMPLATES_H_
