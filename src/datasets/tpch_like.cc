#include "datasets/tpch_like.h"

#include <cmath>

namespace lsg {

using namespace dataset_internal;  // NOLINT(build/namespaces): DDL helpers

Database BuildTpchLike(const DatasetScale& scale) {
  Rng rng(scale.seed);
  Database db;

  const int n_region = 5;
  const int n_nation = 25;
  const int n_supplier = scale.Rows(100);
  const int n_customer = scale.Rows(400);
  const int n_part = scale.Rows(300);
  const int n_partsupp = scale.Rows(600);
  const int n_orders = scale.Rows(1200);
  const int n_lineitem = scale.Rows(3000);

  const std::vector<std::string> regions = {"AFRICA", "AMERICA", "ASIA",
                                            "EUROPE", "MIDDLE EAST"};
  const std::vector<std::string> segments = {"AUTOMOBILE", "BUILDING",
                                             "FURNITURE", "HOUSEHOLD",
                                             "MACHINERY"};
  const std::vector<std::string> brands = {"Brand#11", "Brand#12", "Brand#21",
                                           "Brand#22", "Brand#31", "Brand#32",
                                           "Brand#41", "Brand#42"};
  const std::vector<std::string> statuses = {"F", "O", "P"};
  const std::vector<std::string> priorities = {"1-URGENT", "2-HIGH",
                                               "3-MEDIUM", "4-NOT SPECIFIED",
                                               "5-LOW"};
  const std::vector<std::string> returnflags = {"A", "N", "R"};
  const std::vector<std::string> shipmodes = {"AIR", "FOB", "MAIL", "RAIL",
                                              "REG AIR", "SHIP", "TRUCK"};

  // region
  {
    Table t(MakeSchema("region", {Pk("r_regionkey"), Cat("r_name")}));
    for (int i = 0; i < n_region; ++i) {
      LSG_CHECK_OK(t.AppendRow({Value(int64_t{i}), Value(regions[i])}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // nation
  {
    Table t(MakeSchema("nation", {Pk("n_nationkey"), Str("n_name"),
                                  Int("n_regionkey")}));
    for (int i = 0; i < n_nation; ++i) {
      LSG_CHECK_OK(t.AppendRow({Value(int64_t{i}),
                                Value(SynthName("NATION", i)),
                                Value(int64_t{i % n_region})}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // supplier
  {
    Table t(MakeSchema("supplier",
                       {Pk("s_suppkey"), Str("s_name"), Int("s_nationkey"),
                        Dbl("s_acctbal")}));
    t.ReserveRows(static_cast<size_t>(n_supplier));
    for (int i = 0; i < n_supplier; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("Supplier", i)),
           Value(static_cast<int64_t>(rng.Uniform(n_nation))),
           Value(Price(&rng, -999.99, 9999.99))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // customer
  {
    Table t(MakeSchema("customer",
                       {Pk("c_custkey"), Str("c_name"), Int("c_nationkey"),
                        Dbl("c_acctbal"), Cat("c_mktsegment")}));
    t.ReserveRows(static_cast<size_t>(n_customer));
    for (int i = 0; i < n_customer; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("Customer", i)),
           Value(static_cast<int64_t>(rng.Uniform(n_nation))),
           Value(Price(&rng, -999.99, 9999.99)),
           Value(PickCat(&rng, segments))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // part
  {
    Table t(MakeSchema("part", {Pk("p_partkey"), Str("p_name"),
                                Cat("p_brand"), Int("p_size"),
                                Dbl("p_retailprice")}));
    t.ReserveRows(static_cast<size_t>(n_part));
    for (int i = 0; i < n_part; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}), Value(SynthName("Part", i)),
           Value(PickCatZipf(&rng, brands, 0.8)),
           Value(static_cast<int64_t>(1 + rng.Uniform(50))),
           Value(Price(&rng, 900.0, 2100.0))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // partsupp — bridge between part and supplier.
  {
    Table t(MakeSchema("partsupp",
                       {Pk("ps_id"), Int("ps_partkey"), Int("ps_suppkey"),
                        Int("ps_availqty"), Dbl("ps_supplycost")}));
    t.ReserveRows(static_cast<size_t>(n_partsupp));
    for (int i = 0; i < n_partsupp; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_part))),
           Value(static_cast<int64_t>(rng.Uniform(n_supplier))),
           Value(static_cast<int64_t>(1 + rng.Uniform(9999))),
           Value(Price(&rng, 1.0, 1000.0))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // orders — customer fanout is zipf-skewed (few heavy customers).
  {
    Table t(MakeSchema("orders",
                       {Pk("o_orderkey"), Int("o_custkey"),
                        Cat("o_orderstatus"), Dbl("o_totalprice"),
                        Int("o_orderdate"), Cat("o_orderpriority")}));
    t.ReserveRows(static_cast<size_t>(n_orders));
    for (int i = 0; i < n_orders; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Zipf(n_customer, 0.7))),
           Value(PickCat(&rng, statuses)),
           Value(Price(&rng, 850.0, 500000.0)),
           Value(static_cast<int64_t>(19920101 + rng.Uniform(70000))),
           Value(PickCat(&rng, priorities))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // lineitem — the fact table (~2.5 lines per order).
  {
    Table t(MakeSchema(
        "lineitem",
        {Pk("l_id"), Int("l_orderkey"), Int("l_partkey"), Int("l_suppkey"),
         Int("l_quantity"), Dbl("l_extendedprice"), Dbl("l_discount"),
         Cat("l_returnflag"), Cat("l_shipmode"), Int("l_shipdate")}));
    t.ReserveRows(static_cast<size_t>(n_lineitem));
    for (int i = 0; i < n_lineitem; ++i) {
      LSG_CHECK_OK(t.AppendRow(
          {Value(int64_t{i}),
           Value(static_cast<int64_t>(rng.Uniform(n_orders))),
           Value(static_cast<int64_t>(rng.Zipf(n_part, 0.5))),
           Value(static_cast<int64_t>(rng.Uniform(n_supplier))),
           Value(static_cast<int64_t>(1 + rng.Uniform(50))),
           Value(Price(&rng, 900.0, 105000.0)),
           Value(std::round(rng.UniformDouble(0.0, 0.10) * 100.0) / 100.0),
           Value(PickCat(&rng, returnflags)),
           Value(PickCat(&rng, shipmodes)),
           Value(static_cast<int64_t>(19920101 + rng.Uniform(70000)))}));
    }
    LSG_CHECK_OK(db.AddTable(std::move(t)));
  }

  // FK graph (the Meaningful-Checking join rules of §5).
  LSG_CHECK_OK(
      db.AddForeignKey({"nation", "n_regionkey", "region", "r_regionkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"supplier", "s_nationkey", "nation", "n_nationkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"customer", "c_nationkey", "nation", "n_nationkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"partsupp", "ps_partkey", "part", "p_partkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"partsupp", "ps_suppkey", "supplier", "s_suppkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"orders", "o_custkey", "customer", "c_custkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"lineitem", "l_orderkey", "orders", "o_orderkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"lineitem", "l_partkey", "part", "p_partkey"}));
  LSG_CHECK_OK(
      db.AddForeignKey({"lineitem", "l_suppkey", "supplier", "s_suppkey"}));
  return db;
}

}  // namespace lsg
