#include "datasets/benchmark_templates.h"

namespace lsg {

std::vector<std::string> TpchLikeTemplates() {
  return {
      // Q1-style: pricing summary over lineitem with a date cutoff.
      "SELECT lineitem.l_returnflag, SUM(lineitem.l_quantity), "
      "AVG(lineitem.l_extendedprice) FROM lineitem WHERE "
      "lineitem.l_shipdate <= 19980902 GROUP BY lineitem.l_returnflag",
      // Q3-style: customer-orders-lineitem join with segment + date bands.
      "SELECT lineitem.l_orderkey FROM lineitem JOIN orders ON "
      "lineitem.l_orderkey = orders.o_orderkey JOIN customer ON "
      "orders.o_custkey = customer.c_custkey WHERE customer.c_mktsegment = "
      "'BUILDING' AND orders.o_orderdate < 19950315 AND "
      "lineitem.l_shipdate > 19950315",
      // Q5-style: regional revenue join chain.
      "SELECT supplier.s_name FROM lineitem JOIN supplier ON "
      "lineitem.l_suppkey = supplier.s_suppkey JOIN nation ON "
      "supplier.s_nationkey = nation.n_nationkey WHERE "
      "lineitem.l_quantity >= 24",
      // Q6-style: quantity/discount band scan.
      "SELECT lineitem.l_id FROM lineitem WHERE lineitem.l_shipdate >= "
      "19940101 AND lineitem.l_discount >= 0.05 AND lineitem.l_quantity < "
      "24",
      // Part availability probe.
      "SELECT partsupp.ps_id FROM partsupp JOIN part ON "
      "partsupp.ps_partkey = part.p_partkey WHERE partsupp.ps_availqty > "
      "5000 AND part.p_size < 15",
      // High-value open orders.
      "SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > "
      "150000 AND orders.o_orderstatus = 'O'",
      // Negative-balance customers per segment.
      "SELECT customer.c_custkey FROM customer WHERE customer.c_acctbal < "
      "0 AND customer.c_mktsegment = 'MACHINERY'",
      // Nested: parts above the average retail price.
      "SELECT part.p_partkey FROM part WHERE part.p_retailprice > "
      "(SELECT AVG(part.p_retailprice) FROM part)",
  };
}

std::vector<std::string> JobLikeTemplates() {
  return {
      // JOB 1a-style: production-year band over a company join.
      "SELECT title.title FROM movie_companies JOIN title ON "
      "movie_companies.movie_id = title.id WHERE title.production_year > "
      "2005",
      // Cast star join with role filter.
      "SELECT name.name FROM cast_info JOIN name ON cast_info.person_id = "
      "name.id JOIN title ON cast_info.movie_id = title.id WHERE "
      "cast_info.role_id < 4 AND title.production_year > 1990",
      // Keyword probe.
      "SELECT title.title FROM movie_keyword JOIN title ON "
      "movie_keyword.movie_id = title.id WHERE movie_keyword.keyword_id < "
      "50",
      // Info-type band over movie_info_idx (ratings-style).
      "SELECT movie_info_idx.movie_id FROM movie_info_idx WHERE "
      "movie_info_idx.info > 6.5 AND movie_info_idx.info_type_id = 6",
      // Company country filter.
      "SELECT company_name.name FROM movie_companies JOIN company_name ON "
      "movie_companies.company_id = company_name.id WHERE "
      "company_name.country_code = '[us]'",
      // Person-info probe.
      "SELECT person_info.person_id FROM person_info WHERE "
      "person_info.info_type_id = 19 AND person_info.person_id < 500",
      // Cast order band.
      "SELECT cast_info.id FROM cast_info WHERE cast_info.nr_order <= 3 "
      "AND cast_info.role_id = 1",
      // Aggregation: prolific titles.
      "SELECT cast_info.movie_id FROM cast_info GROUP BY "
      "cast_info.movie_id HAVING COUNT(cast_info.person_id) > 10",
  };
}

std::vector<std::string> XuetangLikeTemplates() {
  return {
      // Active enrollments for popular courses.
      "SELECT enrollment.enroll_id FROM enrollment JOIN course ON "
      "enrollment.course_id = course.course_id WHERE enrollment.status = "
      "'active' AND course.price < 100",
      // Watch-time band.
      "SELECT video_watch.watch_id FROM video_watch WHERE "
      "video_watch.watch_sec > 600 AND video_watch.watch_date >= 20210101",
      // Exam performance join.
      "SELECT users.name FROM exam_record JOIN users ON "
      "exam_record.user_id = users.user_id WHERE exam_record.score >= 90",
      // Struggling students per course.
      "SELECT exam_record.record_id FROM exam_record JOIN exam ON "
      "exam_record.exam_id = exam.exam_id WHERE exam_record.score < 60 AND "
      "exam.duration_min > 60",
      // Late submissions.
      "SELECT submission.submit_id FROM submission WHERE "
      "submission.submit_date > 20220101 AND submission.score < 70",
      // Forum activity probe.
      "SELECT forum_post.post_id FROM forum_post JOIN forum_thread ON "
      "forum_post.thread_id = forum_thread.thread_id WHERE "
      "forum_post.post_date >= 20210601",
      // Demographics filter.
      "SELECT users.user_id FROM users WHERE users.age < 25 AND "
      "users.degree = 'bachelor'",
      // Aggregation: heavy forum threads.
      "SELECT forum_post.thread_id FROM forum_post GROUP BY "
      "forum_post.thread_id HAVING COUNT(forum_post.post_id) > 5",
  };
}

std::vector<std::string> TemplatesForDataset(const std::string& name) {
  if (name == "TPC-H") return TpchLikeTemplates();
  if (name == "JOB") return JobLikeTemplates();
  if (name == "XueTang") return XuetangLikeTemplates();
  return {};
}

}  // namespace lsg
