#ifndef LEARNEDSQLGEN_DATASETS_TPCH_LIKE_H_
#define LEARNEDSQLGEN_DATASETS_TPCH_LIKE_H_

#include "datasets/dataset_util.h"

namespace lsg {

/// Synthetic stand-in for TPC-H [2]: the benchmark's 8 tables with their
/// PK-FK topology (region <- nation <- {supplier, customer} <- orders <-
/// lineitem -> {part, supplier}; partsupp bridges part/supplier), realistic
/// column types (prices, dates-as-ints, categorical flags) and skewed FK
/// fanout. Default sizes (~8.5K rows total at factor 1) keep experiments
/// laptop-fast; raise `scale.factor` for bigger instances.
Database BuildTpchLike(const DatasetScale& scale = DatasetScale());

}  // namespace lsg

#endif  // LEARNEDSQLGEN_DATASETS_TPCH_LIKE_H_
