#include "obs/span_tracer.h"

#include <algorithm>
#include <bit>
#include <map>

#include "common/string_util.h"

namespace lsg {
namespace obs {

SpanTracer::SpanTracer(size_t capacity) {
  capacity = std::bit_ceil(std::max<size_t>(capacity, 8));
  slots_ = std::vector<Slot>(capacity);
  mask_ = capacity - 1;
}

void SpanTracer::Record(const char* name, uint64_t start_ns,
                        uint64_t duration_ns) {
  // relaxed: the claim only picks a slot; the seqlock states order the data.
  const uint64_t claim = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[claim & mask_];
  // Seqlock write: mark busy (odd), publish fields, mark complete (2·claim).
  // release: the odd state must be visible before any field changes.
  slot.state.store(2 * claim - 1, std::memory_order_release);
  // relaxed: field stores are fenced by the two release state stores.
  slot.name.store(name, std::memory_order_relaxed);
  slot.tid.store(static_cast<uint32_t>(ThreadId()), std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  // release: the even state publishes the completed fields to readers.
  slot.state.store(2 * claim, std::memory_order_release);
}

std::vector<SpanTracer::Span> SpanTracer::Snapshot() const {
  std::vector<Span> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    // acquire: pairs with Record's release stores of slot.state.
    uint64_t s1 = slot.state.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    Span span;
    // relaxed: field loads are validated by the s1 == s2 recheck below.
    span.name = slot.name.load(std::memory_order_relaxed);
    span.tid = static_cast<int>(slot.tid.load(std::memory_order_relaxed));
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    uint64_t s2 = slot.state.load(std::memory_order_acquire);  // acquire: recheck
    if (s1 != s2) continue;  // overwritten while reading
    span.seq = s1 / 2;
    out.push_back(span);
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.seq < b.seq; });
  return out;
}

std::string SpanTracer::ChromeTraceJson() const {
  std::vector<Span> spans = Snapshot();
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start_ns < b.start_ns;
  });
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) out += ",";
    out += StrFormat(
        "\n{\"name\": \"%s\", \"cat\": \"lsg\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
        s.name, static_cast<double>(s.start_ns) / 1e3,
        static_cast<double>(s.duration_ns) / 1e3, s.tid);
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string SpanTracer::TextDump(size_t max_rows) const {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const Span& s : Snapshot()) {
    Agg& a = by_name[s.name];
    a.count += 1;
    a.total_ns += s.duration_ns;
    a.max_ns = std::max(a.max_ns, s.duration_ns);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  if (rows.size() > max_rows) rows.resize(max_rows);
  std::string out = StrFormat("%-28s %10s %12s %12s %12s\n", "span", "count",
                              "total_ms", "mean_us", "max_us");
  for (const auto& [name, a] : rows) {
    out += StrFormat(
        "%-28s %10llu %12.3f %12.2f %12.2f\n", name.c_str(),
        static_cast<unsigned long long>(a.count),
        static_cast<double>(a.total_ns) / 1e6,
        static_cast<double>(a.total_ns) / 1e3 / static_cast<double>(a.count),
        static_cast<double>(a.max_ns) / 1e3);
  }
  return out;
}

void SpanTracer::Clear() {
  // relaxed: Clear is unsynchronized with recorders by contract; callers
  // quiesce between phases (tests, tool epilogues).
  for (Slot& slot : slots_) slot.state.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_relaxed);
}

SpanTracer& SpanTracer::Global() {
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

}  // namespace obs
}  // namespace lsg
