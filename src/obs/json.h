#ifndef LEARNEDSQLGEN_OBS_JSON_H_
#define LEARNEDSQLGEN_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lsg {
namespace obs {

/// Minimal JSON document model shared by the observability tooling and the
/// network protocol: enough to read back the artifacts this subsystem
/// writes (flat metric snapshots, JSONL episode rows, Chrome trace_event
/// files) and to parse untrusted request frames. Numbers are doubles.
/// Strings support the full escape set including \uXXXX (with surrogate
/// pairs, decoded to UTF-8); nesting is bounded (kJsonMaxDepth) so
/// adversarial input cannot overflow the parser's recursion.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Member's number, or `fallback` when absent / not numeric.
  double NumberOr(std::string_view key, double fallback) const;
  /// Member's string, or `fallback` when absent / not a string.
  std::string StringOr(std::string_view key, std::string_view fallback) const;
};

/// Maximum object/array nesting JsonParse accepts before reporting an
/// InvalidArgument (guards recursion depth on untrusted input).
inline constexpr int kJsonMaxDepth = 128;

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error).
StatusOr<JsonValue> JsonParse(std::string_view text);

/// Flattens a parsed object's top-level numeric members (bools count as
/// 0/1). Non-numeric members are skipped. Error when `v` is not an object.
StatusOr<std::map<std::string, double>> JsonFlatNumbers(const JsonValue& v);

}  // namespace obs
}  // namespace lsg

#endif  // LEARNEDSQLGEN_OBS_JSON_H_
