#include "obs/json.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>

#include "common/string_util.h"

namespace lsg {
namespace obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (v->kind == Kind::kNumber) return v->num;
  if (v->kind == Kind::kBool) return v->b ? 1.0 : 0.0;
  return fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->str
                                                  : std::string(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what, pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= kJsonMaxDepth) return Error("nesting too deep");
      ++depth_;
      auto v = c == '{' ? ParseObject() : ParseArray();
      --depth_;
      return v;
    }
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    if (Eat('}')) return out;
    while (true) {
      SkipSpace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Eat(':')) return Error("expected ':' in object");
      auto val = ParseValue();
      if (!val.ok()) return val;
      out.object.emplace(std::move(key->str), std::move(*val));
      if (Eat(',')) continue;
      if (Eat('}')) return out;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    if (Eat(']')) return out;
    while (true) {
      auto val = ParseValue();
      if (!val.ok()) return val;
      out.array.push_back(std::move(*val));
      if (Eat(',')) continue;
      if (Eat(']')) return out;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out.str += '\n'; break;
          case 't': out.str += '\t'; break;
          case 'r': out.str += '\r'; break;
          case 'b': out.str += '\b'; break;
          case 'f': out.str += '\f'; break;
          case '"': out.str += '"'; break;
          case '\\': out.str += '\\'; break;
          case '/': out.str += '/'; break;
          case 'u': {
            uint32_t cp = 0;
            if (!ParseHex4(&cp)) return Error("malformed \\u escape");
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              uint32_t lo = 0;
              if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate");
              }
              pos_ += 2;
              if (!ParseHex4(&lo) || lo < 0xDC00 || lo > 0xDFFF) {
                return Error("unpaired high surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired low surrogate");
            }
            AppendUtf8(cp, &out.str);
            break;
          }
          default: return Error("unsupported escape");
        }
      } else {
        out.str += c;
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  bool ParseHex4(uint32_t* out_cp) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_ + i];
      v <<= 4;
      if (h >= '0' && h <= '9') {
        v |= static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        v |= static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        v |= static_cast<uint32_t>(h - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out_cp = v;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  StatusOr<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out.b = true;
      pos_ += 4;
      return out;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.b = false;
      pos_ += 5;
      return out;
    }
    return Error("expected boolean");
  }

  StatusOr<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("expected null");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    std::string digits(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.num = std::strtod(digits.c_str(), &end);
    if (end != digits.c_str() + digits.size()) {
      return Error("malformed number");
    }
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonParse(std::string_view text) {
  return Parser(text).Parse();
}

StatusOr<std::map<std::string, double>> JsonFlatNumbers(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("expected a JSON object");
  }
  std::map<std::string, double> out;
  for (const auto& [key, val] : v.object) {
    if (val.kind == JsonValue::Kind::kNumber) out[key] = val.num;
    if (val.kind == JsonValue::Kind::kBool) out[key] = val.b ? 1.0 : 0.0;
  }
  return out;
}

}  // namespace obs
}  // namespace lsg
