#include "obs/episode_telemetry.h"

#include <cstdio>

#include "common/string_util.h"

namespace lsg {
namespace obs {

namespace {
constexpr char kCsvHeader[] =
    "constraint,tag,reward,final_metric,satisfied,tokens,estimator_calls,"
    "mean_mask_width,wall_seconds\n";

std::string CsvEscape(const std::string& s) {
  // Constraint strings contain spaces and brackets but never quotes or
  // commas today; quote defensively anyway.
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscapeLocal(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

EpisodeTelemetry::EpisodeTelemetry(std::string path)
    : EpisodeTelemetry(std::move(path), Options()) {}

EpisodeTelemetry::EpisodeTelemetry(std::string path, Options options)
    : path_(std::move(path)),
      options_(options),
      csv_(EndsWith(path_, ".csv")) {
  MutexLock lock(&mu_);
  OpenFreshLocked();
}

EpisodeTelemetry::~EpisodeTelemetry() {
  // dtor-lock: closes the file under the same leaf mutex Record uses; the
  // sink contract (obs::SetEpisodeSink) requires recorders to be quiesced
  // before destruction, so this never contends with a live writer.
  MutexLock lock(&mu_);
  if (file_ != nullptr) std::fclose(file_);
}

void EpisodeTelemetry::OpenFreshLocked() {
  file_ = std::fopen(path_.c_str(), "w");
  rows_in_file_ = 0;
  if (file_ != nullptr && csv_) std::fputs(kCsvHeader, file_);
}

void EpisodeTelemetry::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  // Shift path.(k) -> path.(k+1), oldest first; the slot that would become
  // path.<max_files> falls off the end.
  std::remove(StrFormat("%s.%d", path_.c_str(), options_.max_files - 1)
                  .c_str());
  for (int k = options_.max_files - 2; k >= 1; --k) {
    std::rename(StrFormat("%s.%d", path_.c_str(), k).c_str(),
                StrFormat("%s.%d", path_.c_str(), k + 1).c_str());
  }
  if (options_.max_files > 1) {
    std::rename(path_.c_str(), StrFormat("%s.1", path_.c_str()).c_str());
  } else {
    std::remove(path_.c_str());
  }
  ++rotations_;
  OpenFreshLocked();
}

std::string EpisodeTelemetry::FormatRowLocked(const EpisodeRow& row) const {
  const std::string& tag = row.tag.empty() ? tag_ : row.tag;
  if (csv_) {
    return StrFormat("%s,%s,%.9g,%.9g,%d,%d,%d,%.4f,%.6f\n",
                     CsvEscape(row.constraint).c_str(),
                     CsvEscape(tag).c_str(), row.reward, row.final_metric,
                     row.satisfied ? 1 : 0, row.tokens, row.estimator_calls,
                     row.mean_mask_width, row.wall_seconds);
  }
  return StrFormat(
      "{\"constraint\": \"%s\", \"tag\": \"%s\", \"reward\": %.9g, "
      "\"final_metric\": %.9g, \"satisfied\": %d, \"tokens\": %d, "
      "\"estimator_calls\": %d, \"mean_mask_width\": %.4f, "
      "\"wall_seconds\": %.6f}\n",
      JsonEscapeLocal(row.constraint).c_str(), JsonEscapeLocal(tag).c_str(),
      row.reward, row.final_metric, row.satisfied ? 1 : 0, row.tokens,
      row.estimator_calls, row.mean_mask_width, row.wall_seconds);
}

void EpisodeTelemetry::Record(const EpisodeRow& row) {
  MutexLock lock(&mu_);
  if (file_ == nullptr) return;
  std::fputs(FormatRowLocked(row).c_str(), file_);
  ++rows_in_file_;
  ++rows_total_;
  if (rows_in_file_ >= options_.max_rows_per_file) RotateLocked();
}

void EpisodeTelemetry::SetTag(std::string tag) {
  MutexLock lock(&mu_);
  tag_ = std::move(tag);
}

void EpisodeTelemetry::Flush() {
  MutexLock lock(&mu_);
  if (file_ != nullptr) std::fflush(file_);
}

uint64_t EpisodeTelemetry::rows_written() const {
  MutexLock lock(&mu_);
  return rows_total_;
}

int EpisodeTelemetry::rotations() const {
  MutexLock lock(&mu_);
  return rotations_;
}

}  // namespace obs
}  // namespace lsg
