#include "obs/obs.h"

#include <cstdlib>

namespace lsg {
namespace obs {

namespace {

std::atomic<bool>& EnabledFlag() {
  // Latched from the environment exactly once, on first query.
  static std::atomic<bool> enabled = [] {
    const char* v = std::getenv("LSG_OBS");
    return v != nullptr && v[0] == '1';
  }();
  return enabled;
}

std::atomic<EpisodeTelemetry*>& SinkSlot() {
  static std::atomic<EpisodeTelemetry*> sink{nullptr};
  return sink;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

int ThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

EpisodeTelemetry* EpisodeSink() {
  return SinkSlot().load(std::memory_order_acquire);
}

void SetEpisodeSink(EpisodeTelemetry* sink) {
  SinkSlot().store(sink, std::memory_order_release);
}

}  // namespace obs
}  // namespace lsg
