#include "obs/obs.h"

#include <cstdlib>

namespace lsg {
namespace obs {

namespace {

std::atomic<bool>& EnabledFlag() {
  // Latched from the environment exactly once, on first query.
  static std::atomic<bool> enabled = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): startup latch, no setenv
    const char* v = std::getenv("LSG_OBS");
    return v != nullptr && v[0] == '1';
  }();
  return enabled;
}

std::atomic<EpisodeTelemetry*>& SinkSlot() {
  static std::atomic<EpisodeTelemetry*> sink{nullptr};
  return sink;
}

}  // namespace

// relaxed: an independent on/off level; no data is published through it.
bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  // relaxed: same level-flag contract as Enabled().
  EnabledFlag().store(on, std::memory_order_relaxed);
}

int ThreadId() {
  static std::atomic<int> next{0};
  // relaxed: unique-id allocation; only atomicity of the counter matters.
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

EpisodeTelemetry* EpisodeSink() {
  // acquire: pairs with the release in SetEpisodeSink so the sink's
  // construction happens-before any Record() through this pointer.
  return SinkSlot().load(std::memory_order_acquire);
}

void SetEpisodeSink(EpisodeTelemetry* sink) {
  // release: publishes the fully-constructed sink to EpisodeSink readers.
  SinkSlot().store(sink, std::memory_order_release);
}

}  // namespace obs
}  // namespace lsg
