#ifndef LEARNEDSQLGEN_OBS_EPISODE_TELEMETRY_H_
#define LEARNEDSQLGEN_OBS_EPISODE_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/sync.h"
#include "obs/obs.h"

namespace lsg {
namespace obs {

/// One generation episode as seen by the environment: the per-episode view
/// of the paper's feedback loop (constraint in, reward out, and what it
/// cost to compute).
struct EpisodeRow {
  std::string constraint;       ///< Constraint::ToString()
  std::string tag;              ///< phase label ("train", "generate", ...)
  double reward = 0.0;          ///< Σ step rewards (== Trajectory::TotalReward)
  double final_metric = 0.0;    ///< estimated card/cost of the final query
  bool satisfied = false;
  int tokens = 0;               ///< actions taken (episode length)
  int estimator_calls = 0;      ///< feedback evaluations this episode
  double mean_mask_width = 0.0; ///< mean #valid actions per step (FSM pressure)
  double wall_seconds = 0.0;
};

/// Append-only episode log with size-based rotation. Rows go to `path`;
/// when a file reaches `max_rows_per_file` it is rotated to `path.1`
/// (existing `path.1` -> `path.2`, ...) and files beyond `max_files`
/// (active file included) are deleted — oldest rows age out first.
///
/// Format follows the extension: ".csv" writes a header + CSV rows,
/// anything else writes one flat JSON object per line (JSONL).
/// Record() is thread-safe (one mutex around buffered stdio — this is the
/// episode boundary, not the step hot path).
class EpisodeTelemetry {
 public:
  struct Options {
    uint64_t max_rows_per_file = 100000;
    int max_files = 4;  ///< active file + rotated siblings
  };

  explicit EpisodeTelemetry(std::string path);
  EpisodeTelemetry(std::string path, Options options);
  ~EpisodeTelemetry();

  EpisodeTelemetry(const EpisodeTelemetry&) = delete;
  EpisodeTelemetry& operator=(const EpisodeTelemetry&) = delete;

  /// Appends one row. A row with an empty tag inherits the sink tag.
  void Record(const EpisodeRow& row);

  /// Default tag applied to rows recorded from now on; lets a driver mark
  /// phase boundaries (train vs. generate) without threading a label
  /// through the trainers.
  void SetTag(std::string tag);

  void Flush();

  uint64_t rows_written() const;  ///< total rows across all files
  int rotations() const;

  const std::string& path() const { return path_; }
  bool ok() const { return file_ != nullptr; }

 private:
  void OpenFreshLocked() LSG_REQUIRES(mu_);
  void RotateLocked() LSG_REQUIRES(mu_);
  std::string FormatRowLocked(const EpisodeRow& row) const LSG_REQUIRES(mu_);

  const std::string path_;
  const Options options_;
  const bool csv_;

  mutable Mutex mu_;
  FILE* file_ LSG_GUARDED_BY(mu_) = nullptr;
  uint64_t rows_in_file_ LSG_GUARDED_BY(mu_) = 0;
  uint64_t rows_total_ LSG_GUARDED_BY(mu_) = 0;
  int rotations_ LSG_GUARDED_BY(mu_) = 0;
  std::string tag_ LSG_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace lsg

#endif  // LEARNEDSQLGEN_OBS_EPISODE_TELEMETRY_H_
