#ifndef LEARNEDSQLGEN_OBS_OBS_H_
#define LEARNEDSQLGEN_OBS_OBS_H_

#include <atomic>

namespace lsg {
namespace obs {

class EpisodeTelemetry;

/// Master switch for the *optional* observability layer (span tracing,
/// latency histograms, episode telemetry). Compiled in everywhere but off
/// by default; hot paths pay one relaxed atomic load + branch when
/// disabled (<2% budget, see DESIGN.md §6e). Functional counters — the
/// service's request/cache accounting — are always live and do not consult
/// this flag.
///
/// The flag latches on from the environment (`LSG_OBS=1`) at first use;
/// tools (lsgtrace) flip it explicitly.
bool Enabled();
void SetEnabled(bool on);

/// Dense small id for the calling thread (0, 1, 2, ... in first-use
/// order); used as the `tid` of trace events so Chrome's viewer groups
/// spans per thread.
int ThreadId();

/// Process-wide episode-telemetry sink. Null (the default) means episode
/// rows are dropped. The sink must outlive all recording threads; setting
/// it is not synchronized against concurrent recorders, so install it
/// before training/serving starts.
EpisodeTelemetry* EpisodeSink();
void SetEpisodeSink(EpisodeTelemetry* sink);

}  // namespace obs
}  // namespace lsg

#endif  // LEARNEDSQLGEN_OBS_OBS_H_
