#ifndef LEARNEDSQLGEN_OBS_SPAN_TRACER_H_
#define LEARNEDSQLGEN_OBS_SPAN_TRACER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "obs/obs.h"

namespace lsg {
namespace obs {

/// Bounded lock-free span sink: writers claim a monotonically increasing
/// sequence number and overwrite `seq mod capacity`, so the buffer always
/// holds the most recent ~capacity spans and overflow silently drops the
/// oldest. Every slot field is an atomic guarded by a per-slot seqlock
/// (odd = being written), which keeps concurrent snapshot reads free of
/// torn records and data races (TSan-clean) without any mutex on the
/// record path.
///
/// Span names must be pointers with static storage duration (string
/// literals at the instrumentation site) — the tracer stores the pointer,
/// not a copy.
class SpanTracer {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit SpanTracer(size_t capacity = 1 << 16);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Records one completed span. `start_ns` is a Stopwatch::NowNanos()
  /// timestamp; lock-free and safe from any thread.
  void Record(const char* name, uint64_t start_ns, uint64_t duration_ns);

  struct Span {
    const char* name = nullptr;
    int tid = 0;
    uint64_t seq = 0;  ///< 1-based claim order (global across threads)
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
  };

  /// Consistent copy of the retained spans, oldest first. Slots mid-write
  /// at snapshot time are skipped.
  std::vector<Span> Snapshot() const;

  /// Total spans ever recorded (retained + dropped).
  uint64_t total_recorded() const {
    // relaxed: monotonic tally; no other data is published through it.
    return next_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return slots_.size(); }

  /// Chrome `trace_event` JSON (load via chrome://tracing or Perfetto):
  /// one complete ("ph":"X") event per span, microsecond timestamps,
  /// grouped by recording thread. Nesting is inferred by the viewer from
  /// timestamp containment within a tid.
  std::string ChromeTraceJson() const;

  /// Compact text dump: per-name aggregate (count, total, mean, max),
  /// heaviest first, at most `max_rows` rows.
  std::string TextDump(size_t max_rows = 32) const;

  /// Discards all retained spans and resets the sequence. Not synchronized
  /// with concurrent writers; call between phases.
  void Clear();

  /// Process-wide tracer used by the LSG_OBS_SPAN instrumentation macro.
  static SpanTracer& Global();

 private:
  struct Slot {
    /// Seqlock word: 0 empty, odd = write in progress, else 2·claim.
    std::atomic<uint64_t> state{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint32_t> tid{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
};

/// RAII span: times its scope and records into the tracer on destruction.
/// Constructed with nullptr it is fully inert (one branch) — the
/// LSG_OBS_SPAN macro resolves the tracer only when obs::Enabled().
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, const char* name)
      : tracer_(tracer),
        name_(name),
        start_ns_(tracer != nullptr ? Stopwatch::NowNanos() : 0) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, start_ns_, Stopwatch::NowNanos() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer* tracer_;
  const char* name_;
  uint64_t start_ns_;
};

#define LSG_OBS_CONCAT_INNER(a, b) a##b
#define LSG_OBS_CONCAT(a, b) LSG_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope into the global tracer when observability is
/// enabled; one relaxed load + branch when disabled. `name` must be a
/// string literal.
#define LSG_OBS_SPAN(name)                                      \
  ::lsg::obs::ScopedSpan LSG_OBS_CONCAT(lsg_obs_span_, __LINE__)( \
      ::lsg::obs::Enabled() ? &::lsg::obs::SpanTracer::Global() : nullptr, \
      name)

}  // namespace obs
}  // namespace lsg

#endif  // LEARNEDSQLGEN_OBS_SPAN_TRACER_H_
