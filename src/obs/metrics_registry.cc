#include "obs/metrics_registry.h"

#include <bit>

#include "common/string_util.h"

namespace lsg {
namespace obs {

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int top = 63 - std::countl_zero(value);  // >= kSubBucketBits
  int sub = static_cast<int>((value >> (top - kSubBucketBits)) &
                             (kSubBuckets - 1));
  return (top - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  int top = index / kSubBuckets + kSubBucketBits - 1;
  int sub = index & (kSubBuckets - 1);
  return (static_cast<uint64_t>(kSubBuckets + sub)) << (top - kSubBucketBits);
}

HistogramStats Histogram::Snapshot() const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  int highest = -1;
  for (int i = 0; i < kBuckets; ++i) {
    // relaxed: concurrent snapshot; per-bucket atomicity is all we need.
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
    if (counts[i] != 0) highest = i;
  }
  HistogramStats s;
  s.count = total;
  // relaxed: same concurrent-snapshot contract as the buckets above.
  s.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  if (total == 0) return s;
  s.mean = s.sum / static_cast<double>(total);
  // Bucket midpoint at each requested rank.
  auto quantile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) {
        double lo = static_cast<double>(BucketLowerBound(i));
        double hi = i + 1 < kBuckets
                        ? static_cast<double>(BucketLowerBound(i + 1))
                        : lo * 2.0;
        return (lo + hi) / 2.0;
      }
    }
    return 0.0;  // unreachable
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  s.max = highest + 1 < kBuckets
              ? static_cast<double>(BucketLowerBound(highest + 1))
              : static_cast<double>(BucketLowerBound(highest)) * 2.0;
  return s;
}

void Histogram::Reset() {
  // relaxed: Reset is documented as unsynchronized with writers; callers
  // quiesce between phases.
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->Snapshot();
  }
  return s;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& [name, v] : counters) {
    sep();
    out += StrFormat("\"%s\": %llu", name.c_str(),
                     static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    sep();
    out += StrFormat("\"%s\": %.6g", name.c_str(), v);
  }
  for (const auto& [name, h] : histograms) {
    sep();
    out += StrFormat(
        "\"%s.count\": %llu, \"%s.mean\": %.6g, \"%s.p50\": %.6g, "
        "\"%s.p95\": %.6g, \"%s.p99\": %.6g, \"%s.max\": %.6g",
        name.c_str(), static_cast<unsigned long long>(h.count), name.c_str(),
        h.mean, name.c_str(), h.p50, name.c_str(), h.p95, name.c_str(), h.p99,
        name.c_str(), h.max);
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    out += StrFormat("%-36s %16s\n", "counter/gauge", "value");
    for (const auto& [name, v] : counters) {
      out += StrFormat("%-36s %16llu\n", name.c_str(),
                       static_cast<unsigned long long>(v));
    }
    for (const auto& [name, v] : gauges) {
      out += StrFormat("%-36s %16.6g\n", name.c_str(), v);
    }
  }
  if (!histograms.empty()) {
    out += StrFormat("%-36s %10s %10s %10s %10s %10s\n", "histogram", "count",
                     "mean", "p50", "p95", "p99");
    for (const auto& [name, h] : histograms) {
      out += StrFormat("%-36s %10llu %10.4g %10.4g %10.4g %10.4g\n",
                       name.c_str(), static_cast<unsigned long long>(h.count),
                       h.mean, h.p50, h.p95, h.p99);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace lsg
