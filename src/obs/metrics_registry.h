#ifndef LEARNEDSQLGEN_OBS_METRICS_REGISTRY_H_
#define LEARNEDSQLGEN_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/stopwatch.h"
#include "common/sync.h"
#include "obs/obs.h"

namespace lsg {
namespace obs {

/// Write-side striping for counters: each thread is assigned one of
/// kStripes cache-line-padded cells round-robin, so with up to kStripes
/// concurrent threads every increment lands on a private line
/// (shared-nothing); beyond that threads share stripes, which stays
/// correct and merely re-introduces some contention. Reads sum the cells.
inline constexpr int kCounterStripes = 32;

struct alignas(64) StripeCell {
  std::atomic<uint64_t> v{0};
};

/// Monotonic counter. Handles returned by MetricsRegistry are stable for
/// the registry's lifetime; cache them in a function-local static at the
/// instrumentation site.
class Counter {
 public:
  void Add(uint64_t delta) {
    // relaxed: stripe cells are independent monotonic tallies; no reader
    // depends on ordering between them, only on each cell's atomicity.
    cells_[ThreadId() & (kCounterStripes - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  /// Sum over all stripes. Concurrent adds may or may not be included
  /// (counters are independently monotonic; cross-counter exactness is not
  /// required while writers run).
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const StripeCell& c : cells_) {
      // relaxed: a concurrent snapshot, not a linearizable one (see above).
      sum += c.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void Reset() {
    // relaxed: Reset is documented as unsynchronized with writers; callers
    // quiesce between phases.
    for (StripeCell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  StripeCell cells_[kCounterStripes];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double x) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(x));
    __builtin_memcpy(&bits, &x, sizeof(bits));
    // relaxed: last-write-wins by contract; the value is self-contained
    // (one word), so no ordering with other memory is needed.
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    // relaxed: reads pair with the relaxed last-write-wins store above.
    uint64_t bits = bits_.load(std::memory_order_relaxed);
    double x;
    __builtin_memcpy(&x, &bits, sizeof(x));
    return x;
  }
  // relaxed: same contract as Set.
  void Reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<uint64_t> bits_{0};
};

/// Percentile summary of a histogram at snapshot time.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0;   ///< Σ recorded values (exact, not bucketed)
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;   ///< upper bound of the highest occupied bucket
};

/// Log-bucketed latency histogram: 8 sub-buckets per power of two
/// (relative bucket width 2^(1/8) ≈ 9%), covering the full uint64 range —
/// nanoseconds from 0 to ~584 years. Quantiles report the bucket midpoint,
/// so the worst-case relative error vs. the exact quantile is about half a
/// bucket (~4.5%, bounded by ~9%).
///
/// Buckets are plain shared atomics, not striped: histograms time
/// operations that cost at least a microsecond (executor, estimator,
/// queue waits), so one relaxed fetch_add is far below the noise floor.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = 8 + (64 - kSubBucketBits) * kSubBuckets;

  void Record(uint64_t value) {
    // relaxed: buckets/count/sum are independently monotonic; snapshots
    // tolerate mid-record tearing between them (count may lag a bucket).
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket index of `value`: identity below 8, log-linear above.
  static int BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(int index);

  HistogramStats Snapshot() const;
  // relaxed: monotonic progress probe; exactness is not promised.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// RAII nanosecond timer into a histogram; inert when constructed with
/// nullptr (the disabled-observability fast path).
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* h)
      : h_(h), start_ns_(h != nullptr ? Stopwatch::NowNanos() : 0) {}
  ~ScopedHistogramTimer() {
    if (h_ != nullptr) h_->Record(Stopwatch::NowNanos() - start_ns_);
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* h_;
  uint64_t start_ns_;
};

/// Point-in-time aggregate of every metric in a registry. Flattened to one
/// JSON object (`name` for counters/gauges, `name.p50` etc. for
/// histograms) so two snapshots diff with plain key alignment
/// (lsgtrace --diff).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  std::string ToJson() const;
  /// Human-oriented aligned table (lsgtrace terminal summary).
  std::string ToTable() const;
};

/// Named metrics, created on first Get. Naming scheme (see README):
/// `<subsystem>.<noun>[_<unit>]`, unit suffix `_ns` for histograms of
/// nanoseconds, `_micros` for accumulated integer microseconds.
///
/// Get* takes a mutex (cache the handle); the write paths of the returned
/// handles are lock-free. Metrics are never removed, so handles stay valid
/// for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (keeps registrations). Not synchronized with
  /// concurrent writers beyond per-cell atomicity; call between phases
  /// (tests, lsgtrace section boundaries), not mid-workload.
  void Reset();

  /// The process-wide default registry: training, generation, executor,
  /// estimator and FSM instrumentation all record here, so one snapshot
  /// covers the whole feedback loop. Services default to a private
  /// registry (per-instance isolation) but can be pointed here
  /// (GenerationServiceOptions::metrics_registry) to join the namespace.
  static MetricsRegistry& Global();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      LSG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      LSG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      LSG_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace lsg

#endif  // LEARNEDSQLGEN_OBS_METRICS_REGISTRY_H_
