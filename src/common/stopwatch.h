#ifndef LEARNEDSQLGEN_COMMON_STOPWATCH_H_
#define LEARNEDSQLGEN_COMMON_STOPWATCH_H_

#include <chrono>

namespace lsg {

/// Simple wall-clock stopwatch for the generation-time experiments
/// (Figures 6, 7, 8b, 9b, 11 report generation time).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_COMMON_STOPWATCH_H_
