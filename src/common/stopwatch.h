#ifndef LEARNEDSQLGEN_COMMON_STOPWATCH_H_
#define LEARNEDSQLGEN_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace lsg {

/// Monotonic stopwatch for the generation-time experiments (Figures 6, 7,
/// 8b, 9b, 11 report generation time) and the observability layer's span
/// timing. Always steady_clock: timings must never jump with wall-clock
/// adjustments (NTP slew, suspend).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed integer nanoseconds since construction/Restart (span tracer
  /// resolution).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Monotonic nanoseconds since an arbitrary fixed epoch (process-wide
  /// comparable; not wall time).
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "timings must come from a monotonic clock");
  Clock::time_point start_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_COMMON_STOPWATCH_H_
