#include "common/stopwatch.h"

// Header-only; this translation unit exists so the build system has a
// compiled artifact to attach the header's symbols to if ever needed.
