#ifndef LEARNEDSQLGEN_COMMON_STRING_UTIL_H_
#define LEARNEDSQLGEN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lsg {

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single-character separator, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);

/// Upper-cases ASCII.
std::string ToUpper(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double compactly (no trailing zeros, max 6 significant digits).
std::string FormatDouble(double v);

/// Thread-safe strerror: the message for `errno_value` via strerror_r.
/// (std::strerror returns a pointer into shared static storage — a data
/// race the moment two threads report errors; clang-tidy's
/// concurrency-mt-unsafe flags every call.)
std::string ErrnoString(int errno_value);

/// Human-readable count, e.g. 1500 -> "1.5K", 2000000 -> "2M".
std::string HumanCount(double v);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_COMMON_STRING_UTIL_H_
