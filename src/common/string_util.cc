#include "common/string_util.h"

#include <string.h>

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lsg {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ErrnoString(int errno_value) {
  char buf[256];
  // glibc's GNU strerror_r either fills buf or returns a pointer to an
  // immutable static message; both are safe to copy from.
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return strerror_r(errno_value, buf, sizeof(buf));
#else
  if (strerror_r(errno_value, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", errno_value);
  }
  return buf;
#endif
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  // Shortest representation that parses back to the identical double, so
  // rendered SQL literals survive a render → parse round trip exactly.
  std::string s = StrFormat("%.15g", v);
  if (std::strtod(s.c_str(), nullptr) != v) s = StrFormat("%.17g", v);
  return s;
}

std::string HumanCount(double v) {
  const char* suffix = "";
  double scaled = v;
  if (std::abs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  std::string num = FormatDouble(std::round(scaled * 10.0) / 10.0);
  return num + suffix;
}

}  // namespace lsg
