#ifndef LEARNEDSQLGEN_COMMON_SYNC_H_
#define LEARNEDSQLGEN_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

// Annotated synchronization layer: the only place in the tree allowed to
// touch the raw std primitives (enforced by tools/lsgcheck, rule
// raw-mutex). Everything else uses lsg::Mutex / lsg::MutexLock /
// lsg::CondVar, which carry Clang thread-safety capability attributes so
// that lock discipline — which fields a mutex guards, which functions
// require it, the registry->entry acquisition order — is checked at
// compile time on every Clang build (-Wthread-safety, see the
// LSG_THREAD_SAFETY option in the top-level CMakeLists and DESIGN.md §6i).
// On GCC and other compilers the attributes expand to nothing and the
// wrappers compile down to the std types they hold.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LSG_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef LSG_THREAD_ANNOTATION_
#define LSG_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define LSG_CAPABILITY(x) LSG_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII type whose lifetime holds a capability.
#define LSG_SCOPED_CAPABILITY LSG_THREAD_ANNOTATION_(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define LSG_GUARDED_BY(x) LSG_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer field: the pointee may only be accessed while holding `x`.
#define LSG_PT_GUARDED_BY(x) LSG_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function may only be called while already holding the listed mutexes.
#define LSG_REQUIRES(...) \
  LSG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function acquires the listed mutexes (held on return, not on entry).
#define LSG_ACQUIRE(...) \
  LSG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the listed mutexes (held on entry, not on return).
#define LSG_RELEASE(...) \
  LSG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns `b`.
#define LSG_TRY_ACQUIRE(b, ...) \
  LSG_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))
/// Function may not be called while holding the listed mutexes (deadlock
/// and lock-ordering documentation; see the hierarchy in DESIGN.md §6i).
#define LSG_EXCLUDES(...) LSG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define LSG_RETURN_CAPABILITY(x) LSG_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch for patterns the analysis cannot express. Every use must
/// carry a comment explaining why the code is nevertheless correct.
#define LSG_NO_THREAD_SAFETY_ANALYSIS \
  LSG_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lsg {

class CondVar;

/// std::mutex with capability attributes. Prefer MutexLock over manual
/// Lock/Unlock pairs; TryLock exists for the probe-and-skip pattern
/// (ModelRegistry eviction) where blocking is the bug being avoided.
class LSG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LSG_ACQUIRE() { mu_.lock(); }
  void Unlock() LSG_RELEASE() { mu_.unlock(); }
  bool TryLock() LSG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope lock over a Mutex (the analogue of std::lock_guard).
class LSG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LSG_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LSG_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to lsg::Mutex. Waits take the mutex (which
/// the caller must hold) explicitly so the analysis can see the guarded
/// state stays protected across the wait; write waits as explicit loops —
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// — rather than with a predicate lambda: the loop body lives in the
/// function that holds the capability, so guarded reads in the condition
/// are checked, where a lambda would be analyzed as an unannotated
/// function and rejected.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen; always wait in a loop.
  void Wait(Mutex& mu) LSG_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // the capability stays with the caller's scope
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_COMMON_SYNC_H_
