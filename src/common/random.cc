#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace lsg {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64 step, used to expand the seed into the xoshiro state.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

uint64_t SplitMix64(uint64_t x) { return SplitMix64Next(&x); }

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64Next(&sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  LSG_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LSG_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Guard log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  LSG_CHECK(n > 0);
  if (s <= 0.0) return Uniform(n);
  // Rejection-inversion (Gray et al. approximation via integral of x^-s).
  // For the modest n used in data generation this is accurate enough.
  const double exp1 = 1.0 - s;
  auto h_integral = [&](double x) {
    if (std::abs(exp1) < 1e-12) return std::log(x);
    return (std::pow(x, exp1) - 1.0) / exp1;
  };
  auto h_integral_inv = [&](double y) {
    if (std::abs(exp1) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * exp1, 1.0 / exp1);
  };
  const double hx_max = h_integral(static_cast<double>(n) + 0.5);
  const double hx_min = h_integral(0.5);
  for (int attempt = 0; attempt < 64; ++attempt) {
    double u = hx_min + UniformDouble() * (hx_max - hx_min);
    double x = h_integral_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    // Accept with probability proportional to the true mass.
    double accept = std::pow(static_cast<double>(k), -s) /
                    std::pow(x, -s);
    if (UniformDouble() <= accept) return k - 1;
  }
  return Uniform(n);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double target = UniformDouble() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Categorical(const float* weights, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += weights[i];
  if (total <= 0.0) return n;
  double target = UniformDouble() * total;
  double cum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  LSG_CHECK(k <= n);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Uniform(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace lsg
