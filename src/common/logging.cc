#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/sync.h"

namespace lsg {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
// Guards the sink pointer and every line emission: a log line is written
// and flushed atomically with respect to other threads and to sink swaps.
Mutex g_log_mutex;
std::FILE* g_log_sink LSG_GUARDED_BY(g_log_mutex) = nullptr;  // nullptr = stderr

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

void SetLogSink(std::FILE* sink) {
  MutexLock lock(&g_log_mutex);
  g_log_sink = sink;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    // dtor-lock: every LSG_LOG statement emits from this destructor; the
    // leaf logging mutex is held only around fprintf+fflush and acquires
    // no other lock, so it cannot participate in a cycle.
    MutexLock lock(&g_log_mutex);
    std::FILE* out = g_log_sink != nullptr ? g_log_sink : stderr;
    std::fprintf(out, "%s\n", stream_.str().c_str());
    std::fflush(out);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace lsg
