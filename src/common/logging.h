#ifndef LEARNEDSQLGEN_COMMON_LOGGING_H_
#define LEARNEDSQLGEN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace lsg {

/// Log severities in increasing order. The process-wide minimum severity is
/// controlled with SetLogLevel(); messages below it are discarded.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the process-wide minimum severity that will be printed.
///
/// Logging is thread-safe: the level is an atomic (lock-free check on every
/// suppressed LSG_LOG), and the sink pointer plus each line emission are
/// guarded by one mutex, so concurrent workers never interleave partial
/// lines and never race a sink swap against an in-flight write.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirects log output to `sink` (e.g. a log file owned by the caller;
/// nullptr restores the default, stderr). The caller keeps ownership and
/// must keep the stream open until the sink is reset.
void SetLogSink(std::FILE* sink);

namespace internal {

/// Stream-style log line; emits on destruction. kFatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LSG_LOG(level)                                         \
  if (::lsg::LogLevel::k##level < ::lsg::GetLogLevel()) {      \
  } else                                                       \
    ::lsg::internal::LogMessage(::lsg::LogLevel::k##level, __FILE__, __LINE__)

/// CHECK-style invariants: always on, abort with a message on violation.
#define LSG_CHECK(cond)                                                    \
  if (cond) {                                                              \
  } else                                                                   \
    ::lsg::internal::LogMessage(::lsg::LogLevel::kFatal, __FILE__,         \
                                __LINE__)                                  \
        << "Check failed: " #cond " "

#define LSG_CHECK_OK(expr)                                                \
  do {                                                                    \
    ::lsg::Status _st = (expr);                                           \
    if (!_st.ok()) {                                                      \
      ::lsg::internal::LogMessage(::lsg::LogLevel::kFatal, __FILE__,      \
                                  __LINE__)                               \
          << "Status not OK: " << _st.ToString();                         \
    }                                                                     \
  } while (0)

#define LSG_DCHECK(cond) LSG_CHECK(cond)

}  // namespace lsg

#endif  // LEARNEDSQLGEN_COMMON_LOGGING_H_
