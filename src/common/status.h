#ifndef LEARNEDSQLGEN_COMMON_STATUS_H_
#define LEARNEDSQLGEN_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace lsg {

/// Error codes used across the library. Library code never throws; all
/// fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result, modeled after absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse: `return value;` or `return Status::NotFound(...)`.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define LSG_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::lsg::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define LSG_STATUS_CONCAT_INNER_(a, b) a##b
#define LSG_STATUS_CONCAT_(a, b) LSG_STATUS_CONCAT_INNER_(a, b)
#define LSG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
#define LSG_ASSIGN_OR_RETURN(lhs, expr) \
  LSG_ASSIGN_OR_RETURN_IMPL_(LSG_STATUS_CONCAT_(_status_or_, __LINE__), lhs, \
                             expr)

}  // namespace lsg

#endif  // LEARNEDSQLGEN_COMMON_STATUS_H_
