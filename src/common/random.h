#ifndef LEARNEDSQLGEN_COMMON_RANDOM_H_
#define LEARNEDSQLGEN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lsg {

/// SplitMix64 finalizer: a stateless, high-quality 64→64 bit mixer. Use it
/// to derive independent stream seeds from a base seed plus a stream index
/// (e.g. per-worker seeds in the generation service), so that nearby base
/// seeds still yield decorrelated streams.
uint64_t SplitMix64(uint64_t x);

/// Deterministic, fast PRNG (xoshiro256**). All stochastic components in the
/// library (data generation, value sampling, policy sampling, dropout,
/// weight init) draw from an explicitly seeded Rng so that every experiment
/// is reproducible end to end.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with skew s (s=0 is uniform).
  /// Uses rejection-free inverse-CDF over a precomputable small n or the
  /// approximation of Gray et al. for large n.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  /// Returns weights.size() if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Float-span overload with identical arithmetic (every float widens
  /// exactly to double, so the cumulative walk matches the vector form
  /// bitwise) and no temporary double vector — the serving decode path
  /// samples every token through this.
  size_t Categorical(const float* weights, size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_COMMON_RANDOM_H_
