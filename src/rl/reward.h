#ifndef LEARNEDSQLGEN_RL_REWARD_H_
#define LEARNEDSQLGEN_RL_REWARD_H_

#include <string>

namespace lsg {

/// Which query metric a constraint targets (paper §2.1).
enum class ConstraintMetric { kCardinality = 0, kCost = 1 };

/// Point (Card = c) or range (Card in [l, r]) constraint.
enum class ConstraintKind { kPoint = 0, kRange = 1 };

/// A user constraint C. For point constraints a query counts as satisfied
/// when its metric lands within ±tolerance·c (the paper evaluates with
/// τ = 0.1·c).
struct Constraint {
  ConstraintMetric metric = ConstraintMetric::kCardinality;
  ConstraintKind kind = ConstraintKind::kPoint;
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double point_tolerance = 0.1;

  static Constraint Point(ConstraintMetric metric, double c);
  static Constraint Range(ConstraintMetric metric, double lo, double hi);

  /// True if metric value `v` satisfies the constraint.
  bool Satisfied(double v) const;

  /// "Card=1000" / "Cost in [1K,2K]".
  std::string ToString() const;
};

/// The paper's reward design (§4.2).
///
/// Point constraint C: Card = c:
///   r = min(ĉ/c, c/ĉ)  if executable (0 when either is 0), else 0.
/// Range constraint C: Card = [l, r]:
///   r = 1                        if executable and ĉ ∈ [l, r]
///   r = max(min(ĉ/l, l/ĉ),
///           min(ĉ/r, r/ĉ))       if executable and outside the range
///   r = 0                        if not executable.
class RewardFunction {
 public:
  explicit RewardFunction(Constraint constraint)
      : constraint_(constraint) {}

  /// Reward for a query whose estimated metric is `c_hat`; `executable`
  /// mirrors e_t in the paper (partial non-executable prefixes get 0).
  double Reward(bool executable, double c_hat) const;

  const Constraint& constraint() const { return constraint_; }

 private:
  Constraint constraint_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_RL_REWARD_H_
