#include "rl/meta_critic.h"

#include <cmath>

#include "common/logging.h"

namespace lsg {

MetaCritic::MetaCritic(int vocab_size, const Options& options)
    : vocab_size_(vocab_size),
      options_(options),
      rng_(options.seed),
      state_lstm_(vocab_size + 1, options.hidden_dim, options.num_layers,
                  options.dropout, &rng_),
      encoder_(options.action_embed_dim + 1, options.encoder_dim, &rng_),
      action_embed_("meta.embed",
                    Matrix::Xavier(options.action_embed_dim, vocab_size + 1,
                                   &rng_)),
      fuse1_(options.hidden_dim + options.encoder_dim, options.fusion_dim,
             &rng_),
      fuse2_(options.fusion_dim, 1, &rng_) {}

MetaCritic::Episode MetaCritic::BeginEpisode(bool train) const {
  Episode ep;
  ep.state = state_lstm_.InitialState();
  ep.enc_h.assign(options_.encoder_dim, 0.f);
  ep.enc_c.assign(options_.encoder_dim, 0.f);
  ep.train = train;
  return ep;
}

float MetaCritic::StepValue(Episode* ep, int input_token) {
  LstmStack::StepCache* cache = nullptr;
  if (ep->train) {
    ep->state_caches.emplace_back();
    cache = &ep->state_caches.back();
  }
  const std::vector<float>& top =
      state_lstm_.Step(input_token, &ep->state, cache, ep->train, &rng_);

  std::vector<float> fuse_in(options_.hidden_dim + options_.encoder_dim);
  for (int i = 0; i < options_.hidden_dim; ++i) fuse_in[i] = top[i];
  for (int i = 0; i < options_.encoder_dim; ++i) {
    fuse_in[options_.hidden_dim + i] = ep->enc_h[i];
  }
  std::vector<float> mid(options_.fusion_dim);
  fuse1_.Forward(fuse_in.data(), mid.data());
  for (float& x : mid) x = std::tanh(x);
  float v = 0.f;
  fuse2_.Forward(mid.data(), &v);
  if (ep->train) {
    ep->fuse_in.push_back(std::move(fuse_in));
    ep->fuse_mid.push_back(std::move(mid));
  }
  ep->values.push_back(v);
  return v;
}

void MetaCritic::ObserveTriple(Episode* ep, int action, double reward) {
  std::vector<float> x(options_.action_embed_dim + 1);
  for (int i = 0; i < options_.action_embed_dim; ++i) {
    x[i] = action_embed_.value.at(i, action);
  }
  x[options_.action_embed_dim] = static_cast<float>(reward);
  LstmCell::Cache cache;
  encoder_.Forward(x.data(), ep->enc_h.data(), ep->enc_c.data(), &cache);
  ep->enc_h = cache.h;
  ep->enc_c = cache.c;
  if (ep->train) {
    ep->enc_caches.push_back(std::move(cache));
    ep->enc_inputs.push_back(std::move(x));
    ep->enc_actions.push_back(action);
  }
}

void MetaCritic::AccumulateGradients(const Episode& ep,
                                     const std::vector<double>& dvalue) {
  LSG_CHECK(ep.train);
  const size_t T = ep.values.size();
  LSG_CHECK(dvalue.size() == T);
  const int H = options_.hidden_dim;
  const int Z = options_.encoder_dim;
  const int E = options_.action_embed_dim;

  std::vector<std::vector<float>> dtop(T, std::vector<float>(H, 0.f));
  // dz_ext[k]: gradient flowing into the encoder hidden state after triple
  // k-1 has been consumed (i.e. z_t for t = k). z_0 uses the zero initial
  // state, so its gradient is dropped.
  std::vector<std::vector<float>> dz_ext(T, std::vector<float>(Z, 0.f));

  std::vector<float> dmid(options_.fusion_dim);
  std::vector<float> dfuse_in(H + Z);
  for (size_t t = 0; t < T; ++t) {
    float dv = static_cast<float>(dvalue[t]);
    std::fill(dmid.begin(), dmid.end(), 0.f);
    fuse2_.Backward(ep.fuse_mid[t].data(), &dv, dmid.data());
    for (int i = 0; i < options_.fusion_dim; ++i) {
      float m = ep.fuse_mid[t][i];
      dmid[i] *= (1.f - m * m);  // through tanh
    }
    std::fill(dfuse_in.begin(), dfuse_in.end(), 0.f);
    fuse1_.Backward(ep.fuse_in[t].data(), dmid.data(), dfuse_in.data());
    for (int i = 0; i < H; ++i) dtop[t][i] = dfuse_in[i];
    for (int i = 0; i < Z; ++i) dz_ext[t][i] = dfuse_in[H + i];
  }

  // State path BPTT.
  state_lstm_.Backward(ep.state_caches, dtop);

  // Encoder BPTT: the hidden state after triple k is z_{k+1}; it receives
  // dz_ext[k+1] (if any value step consumed it) plus the recurrent flow.
  const size_t K = ep.enc_caches.size();
  std::vector<float> dh(Z, 0.f), dc(Z, 0.f), dh_prev(Z), dc_prev(Z),
      dx(E + 1);
  for (size_t k = K; k-- > 0;) {
    if (k + 1 < T) {
      for (int i = 0; i < Z; ++i) dh[i] += dz_ext[k + 1][i];
    }
    std::fill(dx.begin(), dx.end(), 0.f);
    encoder_.Backward(ep.enc_caches[k], dh.data(), dc.data(), dh_prev.data(),
                      dc_prev.data(), dx.data());
    dh = dh_prev;
    dc = dc_prev;
    // Action-embedding gradient: dx[0:E] lands on the embedded column.
    const int a = ep.enc_actions[k];
    for (int i = 0; i < E; ++i) action_embed_.grad.at(i, a) += dx[i];
  }
}

std::vector<ParamTensor*> MetaCritic::Params() {
  std::vector<ParamTensor*> out = state_lstm_.Params();
  for (ParamTensor* p : encoder_.Params()) out.push_back(p);
  out.push_back(&action_embed_);
  for (ParamTensor* p : fuse1_.Params()) out.push_back(p);
  for (ParamTensor* p : fuse2_.Params()) out.push_back(p);
  return out;
}

MetaCriticTrainer::MetaCriticTrainer(std::vector<Environment*> task_envs,
                                     const TrainerOptions& options,
                                     const MetaCritic::Options& meta_options)
    : task_envs_(std::move(task_envs)), options_(options), rng_(options.seed) {
  LSG_CHECK(!task_envs_.empty());
  const int vocab = task_envs_[0]->vocab_size();
  MetaCritic::Options mo = meta_options;
  mo.seed = options.seed + 7;
  meta_ = std::make_unique<MetaCritic>(vocab, mo);
  meta_opt_ = std::make_unique<Adam>(meta_->Params(), options.critic_lr);
  for (size_t i = 0; i < task_envs_.size(); ++i) {
    NetworkOptions net = options.net;
    net.seed = options.seed + 100 + i;
    actors_.push_back(std::make_unique<PolicyNetwork>(vocab, net));
    actor_opts_.push_back(
        std::make_unique<Adam>(actors_.back()->Params(), options.actor_lr));
  }
}

StatusOr<EpochStats> MetaCriticTrainer::TrainBatch(Environment* env,
                                                   PolicyNetwork* actor,
                                                   Adam* actor_opt) {
  EpochStats stats;
  std::vector<PolicyNetwork::Episode> actor_eps(options_.batch_size);
  std::vector<std::vector<double>> advantages(options_.batch_size);
  for (int b = 0; b < options_.batch_size; ++b) {
    env->Reset();
    PolicyNetwork::Episode& actor_ep = actor_eps[b];
    actor_ep = actor->BeginEpisode(true);
    MetaCritic::Episode critic_ep = meta_->BeginEpisode(true);
    Trajectory traj;
    const int kMaxSteps = 512;
    int prev = actor->bos_index();
    for (int step = 0; step < kMaxSteps; ++step) {
      const std::vector<uint8_t>& mask = env->ValidActions();
      const std::vector<float>& probs = actor->NextDistribution(&actor_ep, mask);
      meta_->StepValue(&critic_ep, prev);
      int a = actor->SampleAction(probs, &rng_);
      actor->RecordAction(&actor_ep, a);
      auto sr = env->Step(a);
      if (!sr.ok()) return sr.status();
      meta_->ObserveTriple(&critic_ep, a, sr->reward);
      traj.actions.push_back(a);
      traj.rewards.push_back(sr->reward);
      prev = a;
      if (sr->done) {
        traj.completed = true;
        traj.satisfied = sr->satisfied;
        traj.final_metric = sr->metric;
        break;
      }
    }
    if (!traj.completed) {
      return Status::Internal("meta-critic episode exceeded step cap");
    }
    const size_t T = traj.rewards.size();
    std::vector<double> advantage(T), dvalue(T);
    for (size_t t = 0; t < T; ++t) {
      double v_next = (t + 1 < T) ? critic_ep.values[t + 1] : 0.0;
      double td = traj.rewards[t] + v_next - critic_ep.values[t];
      advantage[t] = td;
      dvalue[t] = -td;
    }
    advantages[b] = std::move(advantage);
    meta_->AccumulateGradients(critic_ep, dvalue);
    stats.episodes += 1;
    stats.mean_total_reward += traj.TotalReward();
    stats.mean_final_reward += traj.rewards.empty() ? 0.0 : traj.rewards.back();
    stats.mean_entropy += PolicyNetwork::MeanEntropy(actor_ep);
    stats.satisfied_frac += traj.satisfied ? 1.0 : 0.0;
  }
  if (options_.normalize_advantages) NormalizeAdvantages(&advantages);
  for (int b = 0; b < options_.batch_size; ++b) {
    actor->AccumulateGradients(actor_eps[b], advantages[b],
                               options_.entropy_coef);
  }
  ClipGradNorm(actor->Params(), options_.grad_clip);
  ClipGradNorm(meta_->Params(), options_.grad_clip);
  actor_opt->Step();
  meta_opt_->Step();
  const double n = static_cast<double>(stats.episodes);
  stats.mean_total_reward /= n;
  stats.mean_final_reward /= n;
  stats.mean_entropy /= n;
  stats.satisfied_frac /= n;
  return stats;
}

StatusOr<EpochStats> MetaCriticTrainer::PretrainEpoch() {
  EpochStats agg;
  for (size_t i = 0; i < task_envs_.size(); ++i) {
    auto st = TrainBatch(task_envs_[i], actors_[i].get(),
                         actor_opts_[i].get());
    if (!st.ok()) return st.status();
    agg.episodes += st->episodes;
    agg.mean_total_reward += st->mean_total_reward;
    agg.mean_final_reward += st->mean_final_reward;
    agg.mean_entropy += st->mean_entropy;
    agg.satisfied_frac += st->satisfied_frac;
  }
  const double n = static_cast<double>(task_envs_.size());
  agg.mean_total_reward /= n;
  agg.mean_final_reward /= n;
  agg.mean_entropy /= n;
  agg.satisfied_frac /= n;
  return agg;
}

StatusOr<std::vector<EpochStats>> MetaCriticTrainer::Adapt(
    Environment* new_env, int epochs) {
  NetworkOptions net = options_.net;
  net.seed = options_.seed + 999;
  adapted_actor_ =
      std::make_unique<PolicyNetwork>(new_env->vocab_size(), net);
  adapted_opt_ =
      std::make_unique<Adam>(adapted_actor_->Params(), options_.actor_lr);
  std::vector<EpochStats> trace;
  trace.reserve(epochs);
  for (int e = 0; e < epochs; ++e) {
    auto st = TrainBatch(new_env, adapted_actor_.get(), adapted_opt_.get());
    if (!st.ok()) return st.status();
    trace.push_back(*st);
  }
  return trace;
}

StatusOr<Trajectory> MetaCriticTrainer::GenerateWithAdapted(Environment* env) {
  LSG_CHECK(adapted_actor_ != nullptr);
  return RolloutPolicy(env, adapted_actor_.get(), &rng_, /*train=*/false,
                       nullptr);
}

}  // namespace lsg
