#ifndef LEARNEDSQLGEN_RL_POLICY_NETWORK_H_
#define LEARNEDSQLGEN_RL_POLICY_NETWORK_H_

#include <cstdint>
#include <vector>

#include "nn/adam.h"
#include "nn/linear.h"
#include "nn/lstm.h"

namespace lsg {

/// Shared architecture knobs for the actor and critic (paper §7.1: 2-layer
/// LSTM with 30 cell units, dropout 0.3, lr 1e-3 actor / 3e-3 critic).
struct NetworkOptions {
  int hidden_dim = 30;
  int num_layers = 2;
  float dropout = 0.3f;
  uint64_t seed = 7;
  /// Extra dense input dims appended after the one-hot token (AC-extend
  /// encodes the constraint bounds this way; 0 for the standard model).
  int extra_input_dims = 0;
};

/// The actor: one-hot token sequence -> LSTM stack -> Linear(|A|) ->
/// FSM-masked softmax policy π_θ(a|s) (paper §4.3).
class PolicyNetwork {
 public:
  PolicyNetwork(int vocab_size, const NetworkOptions& options);

  int vocab_size() const { return vocab_size_; }
  /// Input index used for the beginning-of-sequence step.
  int bos_index() const { return vocab_size_; }

  /// Per-episode rollout state; holds everything needed for BPTT.
  struct Episode {
    LstmStack::State state;
    std::vector<LstmStack::StepCache> caches;
    std::vector<std::vector<float>> probs;       ///< masked π per step
    std::vector<std::vector<uint8_t>> masks;
    std::vector<int> actions;
    std::vector<float> extra;                    ///< dense constraint dims
    bool train = false;
  };

  Episode BeginEpisode(bool train) const;

  /// Advances the LSTM over the previous action (BOS on the first call) and
  /// returns the masked action distribution for the next step. The returned
  /// reference lives in `ep` until the next call. Aborts on a degenerate
  /// masked logit row; serving paths use TryNextDistribution instead.
  const std::vector<float>& NextDistribution(Episode* ep,
                                             const std::vector<uint8_t>& mask);

  /// Non-aborting NextDistribution: a degenerate masked softmax row comes
  /// back as kInternal (the episode is then unusable) instead of taking the
  /// process down. On success `*out` points at the distribution inside `ep`
  /// and the episode state matches NextDistribution bitwise.
  Status TryNextDistribution(Episode* ep, const std::vector<uint8_t>& mask,
                             const std::vector<float>** out);

  /// Compact masked action distribution for one decode step: probs[k] is
  /// the probability of vocabulary index idx[k], for the (typically few)
  /// FSM-valid tokens only. In the full-vocabulary distribution every
  /// unmasked entry is an exact +0.0 that can influence neither the softmax
  /// sums nor a cumulative sample walk, so the compact values — and any
  /// token sampled from them — are bitwise-identical to the
  /// TryNextDistribution path while skipping the dead ~99% of the output
  /// layer. Reuse one instance per lane slot across steps to keep the
  /// heap quiet.
  struct CompactDistribution {
    std::vector<int> idx;      ///< masked vocabulary indices, ascending
    std::vector<float> probs;  ///< probabilities over idx
  };

  /// Inference-only batched step: advances `batch` independent episodes one
  /// token each through a single batched LSTM forward, then projects only
  /// each lane's masked head rows into dists[b] (see CompactDistribution
  /// for the bitwise contract with TryNextDistribution). Requires
  /// extra_input_dims == 0 and !train on every lane (the serving model).
  /// statuses[b] receives the lane's masked-softmax status (a kInternal
  /// lane's dists entry is unspecified and the lane must be dropped).
  void NextDistributionBatch(Episode* const* lanes,
                             const std::vector<uint8_t>* const* masks,
                             int batch, CompactDistribution* dists,
                             Status* statuses) const;

  /// Records the sampled action (must follow NextDistribution).
  void RecordAction(Episode* ep, int action) const { ep->actions.push_back(action); }

  /// Samples from a distribution.
  int SampleAction(const std::vector<float>& probs, Rng* rng) const;

  /// Samples a vocabulary index from a compact masked distribution; the
  /// consumed RNG stream and the returned token match SampleAction over
  /// the equivalent full-vocabulary distribution bitwise.
  int SampleAction(const CompactDistribution& d, Rng* rng) const;

  /// Arg-max action (greedy decoding).
  int GreedyAction(const std::vector<float>& probs) const;

  /// Accumulates policy-gradient + entropy-regularization gradients for a
  /// finished episode: maximizes Σ_t [A_t log π(a_t|s_t) + λ H(π(·|s_t))]
  /// (Eq. 4). Call optimizer Step() afterwards.
  void AccumulateGradients(const Episode& ep,
                           const std::vector<double>& advantages,
                           double entropy_coef);

  /// Mean policy entropy over the episode's steps (diagnostics).
  static double MeanEntropy(const Episode& ep);

  std::vector<ParamTensor*> Params();
  std::vector<const ParamTensor*> Params() const;

 private:
  int vocab_size_;
  NetworkOptions options_;
  Rng rng_;
  LstmStack lstm_;
  Linear head_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_RL_POLICY_NETWORK_H_
