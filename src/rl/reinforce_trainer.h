#ifndef LEARNEDSQLGEN_RL_REINFORCE_TRAINER_H_
#define LEARNEDSQLGEN_RL_REINFORCE_TRAINER_H_

#include <memory>

#include "nn/adam.h"
#include "rl/policy_network.h"
#include "rl/trajectory.h"

namespace lsg {

/// Hyper-parameters shared by the RL trainers (paper §7.1 defaults).
struct TrainerOptions {
  int batch_size = 8;          ///< trajectories per update (Algorithm 3 l.3)
  double entropy_coef = 0.01;  ///< λ of Eq. 4
  float actor_lr = 1e-3f;
  float critic_lr = 3e-3f;
  double grad_clip = 5.0;
  /// Standardize advantages across each batch before the actor update
  /// (mean 0, stddev 1). An implementation detail on top of the paper's
  /// Algorithm 3 that markedly stabilizes training (see DESIGN.md).
  bool normalize_advantages = true;
  /// Snapshot the actor whenever an epoch achieves the best satisfied
  /// fraction so far; RestoreBestActor() rolls back to it before
  /// inference. Guards against late-training policy collapse.
  bool keep_best_actor = true;
  uint64_t seed = 1234;
  NetworkOptions net;
};

/// Standardizes `adv` in place across all steps of a batch (no-op for
/// fewer than two entries or zero variance).
void NormalizeAdvantages(std::vector<std::vector<double>>* adv);

/// Aggregates over one training epoch (= one batch update).
struct EpochStats {
  int episodes = 0;
  double mean_total_reward = 0.0;  ///< mean Σ_t r_t per trajectory
  double mean_final_reward = 0.0;  ///< mean reward of the completed query
  double mean_entropy = 0.0;
  double satisfied_frac = 0.0;     ///< fraction of episodes meeting C
  /// True when this epoch's rewards came from execution-grounded feedback
  /// (the mixed-feedback curriculum tail) rather than estimator feedback.
  bool true_execution_feedback = false;
};

/// Samples one episode with the policy against the environment. When
/// `train` is true the actor episode (with caches) is stored into `ep_out`.
StatusOr<Trajectory> RolloutPolicy(Environment* env, PolicyNetwork* actor,
                                   Rng* rng, bool train,
                                   PolicyNetwork::Episode* ep_out);

/// Plain REINFORCE (Williams 1992) with reward-to-go coefficients and no
/// baseline — the comparison algorithm of §7.3 / Figure 8. Entropy
/// regularization matches the actor-critic setup so the only difference is
/// the missing critic baseline.
class ReinforceTrainer {
 public:
  ReinforceTrainer(Environment* env, const TrainerOptions& options);

  /// Runs one batch of episodes and applies one gradient update.
  StatusOr<EpochStats> TrainEpoch();

  /// Inference: generates one query with the current policy (no learning).
  StatusOr<Trajectory> Generate();

  /// Inference with a caller-owned RNG stream (the serving path draws each
  /// request's stream from (seed, request), so batch-mates and worker
  /// placement cannot perturb each other's samples).
  StatusOr<Trajectory> Generate(Rng* rng);

  /// Rolls the actor back to its best checkpoint (keep_best_actor).
  /// Returns false if no checkpoint exists yet.
  bool RestoreBestActor();

  PolicyNetwork& actor() { return *actor_; }
  const PolicyNetwork& actor() const { return *actor_; }
  const TrainerOptions& options() const { return options_; }

 private:
  Environment* env_;
  TrainerOptions options_;
  Rng rng_;
  std::unique_ptr<PolicyNetwork> actor_;
  std::unique_ptr<Adam> actor_opt_;
  ParamSnapshot best_actor_;
  double best_score_ = -1.0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_RL_REINFORCE_TRAINER_H_
