#ifndef LEARNEDSQLGEN_RL_VALUE_NETWORK_H_
#define LEARNEDSQLGEN_RL_VALUE_NETWORK_H_

#include <cstdint>
#include <vector>

#include "nn/linear.h"
#include "nn/lstm.h"
#include "rl/policy_network.h"

namespace lsg {

/// The critic: mirrors the actor's LSTM but outputs a single state value
/// V_φ(s_t) (paper §4.3: "the structure of the critic network is similar to
/// the actor, but the output layer dimension is 1").
class ValueNetwork {
 public:
  ValueNetwork(int vocab_size, const NetworkOptions& options);

  int bos_index() const { return vocab_size_; }

  struct Episode {
    LstmStack::State state;
    std::vector<LstmStack::StepCache> caches;
    std::vector<float> values;   ///< V(s_t) per step
    std::vector<int> inputs;     ///< tokens fed (BOS first)
    std::vector<float> extra;
    bool train = false;
  };

  Episode BeginEpisode(bool train) const;

  /// Feeds the next input token (use bos_index() for the first call, then
  /// the actions chosen by the actor) and returns V of the resulting state.
  float StepValue(Episode* ep, int input_token);

  /// Accumulates TD-error critic gradients: minimizes
  /// Σ_t 0.5·(r_t + V(s_{t+1}) − V(s_t))² with the target held fixed;
  /// dvalue[t] is ∂L/∂V(s_t) = −td_t.
  void AccumulateGradients(const Episode& ep,
                           const std::vector<double>& dvalue);

  std::vector<ParamTensor*> Params();

 private:
  int vocab_size_;
  NetworkOptions options_;
  Rng rng_;
  LstmStack lstm_;
  Linear head_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_RL_VALUE_NETWORK_H_
