#include "rl/reward.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

Constraint Constraint::Point(ConstraintMetric metric, double c) {
  Constraint out;
  out.metric = metric;
  out.kind = ConstraintKind::kPoint;
  out.point = c;
  return out;
}

Constraint Constraint::Range(ConstraintMetric metric, double lo, double hi) {
  LSG_CHECK(lo <= hi);
  Constraint out;
  out.metric = metric;
  out.kind = ConstraintKind::kRange;
  out.lo = lo;
  out.hi = hi;
  return out;
}

bool Constraint::Satisfied(double v) const {
  if (kind == ConstraintKind::kPoint) {
    double tau = point_tolerance * point;
    return v >= point - tau && v <= point + tau;
  }
  return v >= lo && v <= hi;
}

std::string Constraint::ToString() const {
  const char* m = metric == ConstraintMetric::kCardinality ? "Card" : "Cost";
  if (kind == ConstraintKind::kPoint) {
    return StrFormat("%s=%s", m, HumanCount(point).c_str());
  }
  return StrFormat("%s in [%s,%s]", m, HumanCount(lo).c_str(),
                   HumanCount(hi).c_str());
}

namespace {
/// min(a/b, b/a) with the paper's zero convention (0 if either is 0).
double RatioCloseness(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return std::min(a / b, b / a);
}
}  // namespace

double RewardFunction::Reward(bool executable, double c_hat) const {
  if (!executable) return 0.0;
  if (constraint_.kind == ConstraintKind::kPoint) {
    return RatioCloseness(c_hat, constraint_.point);
  }
  if (c_hat >= constraint_.lo && c_hat <= constraint_.hi) return 1.0;
  double dl = RatioCloseness(c_hat, constraint_.lo);
  double dr = RatioCloseness(c_hat, constraint_.hi);
  return std::max(dl, dr);
}

}  // namespace lsg
