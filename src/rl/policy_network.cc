#include "rl/policy_network.h"

#include <cmath>

#include "common/logging.h"

namespace lsg {

PolicyNetwork::PolicyNetwork(int vocab_size, const NetworkOptions& options)
    : vocab_size_(vocab_size),
      options_(options),
      rng_(options.seed),
      lstm_(vocab_size + 1 + options.extra_input_dims, options.hidden_dim,
            options.num_layers, options.dropout, &rng_),
      head_(options.hidden_dim, vocab_size, &rng_) {}

PolicyNetwork::Episode PolicyNetwork::BeginEpisode(bool train) const {
  Episode ep;
  ep.state = lstm_.InitialState();
  ep.train = train;
  return ep;
}

const std::vector<float>& PolicyNetwork::NextDistribution(
    Episode* ep, const std::vector<uint8_t>& mask) {
  const std::vector<float>* out = nullptr;
  Status st = TryNextDistribution(ep, mask, &out);
  LSG_CHECK(st.ok()) << st.ToString();
  return *out;
}

Status PolicyNetwork::TryNextDistribution(Episode* ep,
                                          const std::vector<uint8_t>& mask,
                                          const std::vector<float>** out) {
  const int prev =
      ep->actions.empty() ? bos_index() : ep->actions.back();
  LstmStack::StepCache* cache = nullptr;
  if (ep->train) {
    ep->caches.emplace_back();
    cache = &ep->caches.back();
  }
  const std::vector<float>* top;
  if (options_.extra_input_dims > 0) {
    // Dense input: one-hot + constraint feature tail.
    std::vector<float> x(vocab_size_ + 1 + options_.extra_input_dims, 0.f);
    x[prev] = 1.f;
    for (int i = 0; i < options_.extra_input_dims &&
                    i < static_cast<int>(ep->extra.size()); ++i) {
      x[vocab_size_ + 1 + i] = ep->extra[i];
    }
    top = &lstm_.StepDense(x.data(), &ep->state, cache, ep->train, &rng_);
  } else {
    top = &lstm_.Step(prev, &ep->state, cache, ep->train, &rng_);
  }
  std::vector<float> logits(vocab_size_);
  head_.Forward(top->data(), logits.data());
  LSG_RETURN_IF_ERROR(TryMaskedSoftmaxInPlace(&logits, mask));
  ep->probs.push_back(std::move(logits));
  ep->masks.push_back(mask);
  *out = &ep->probs.back();
  return Status::Ok();
}

void PolicyNetwork::NextDistributionBatch(
    Episode* const* lanes, const std::vector<uint8_t>* const* masks, int batch,
    CompactDistribution* dists, Status* statuses) const {
  LSG_CHECK(options_.extra_input_dims == 0)
      << "batched decode supports the standard one-hot model only";
  std::vector<int> tokens(batch);
  std::vector<LstmStack::State*> states(batch);
  for (int b = 0; b < batch; ++b) {
    LSG_CHECK(!lanes[b]->train);
    tokens[b] =
        lanes[b]->actions.empty() ? bos_index() : lanes[b]->actions.back();
    states[b] = &lanes[b]->state;
  }
  std::vector<float> top_panel;
  lstm_.StepBatch(tokens.data(), states.data(), batch, &top_panel);
  // The FSM admits only a handful of tokens per step (mean mask width ~9
  // of ~2800 on the paper workloads), so the head projects just each
  // lane's masked rows — identical per-row dot products against the
  // lane's panel column — and the softmax runs on the compacted support.
  // Eval episodes never materialize the full distribution: nothing replays
  // their history the way AccumulateGradients replays train episodes, and
  // sampling only needs the masked entries.
  for (int b = 0; b < batch; ++b) {
    CompactDistribution& d = dists[b];
    const std::vector<uint8_t>& mask = *masks[b];
    LSG_CHECK(static_cast<int>(mask.size()) == vocab_size_);
    d.idx.clear();
    for (int i = 0; i < vocab_size_; ++i) {
      if (mask[i]) d.idx.push_back(i);
    }
    if (d.idx.empty()) {
      statuses[b] = Status::Internal("masked softmax with empty mask");
      continue;
    }
    d.probs.resize(d.idx.size());
    head_.ForwardRows(top_panel.data() + b, batch, d.idx.data(),
                      static_cast<int>(d.idx.size()), d.probs.data());
    statuses[b] = TryCompactSoftmaxInPlace(d.probs.data(), d.probs.size());
  }
}

int PolicyNetwork::SampleAction(const std::vector<float>& probs,
                                Rng* rng) const {
  size_t idx = rng->Categorical(probs.data(), probs.size());
  if (idx >= probs.size()) {
    // All-zero guard (cannot happen with a valid mask): fall back to argmax.
    return GreedyAction(probs);
  }
  return static_cast<int>(idx);
}

int PolicyNetwork::SampleAction(const CompactDistribution& d,
                                Rng* rng) const {
  size_t k = rng->Categorical(d.probs.data(), d.probs.size());
  if (k >= d.probs.size()) {
    // All-zero guard, mirroring the full-vocabulary fallback (unreachable
    // after a successful softmax): greedy over the compact support.
    size_t best = 0;
    for (size_t i = 1; i < d.probs.size(); ++i) {
      if (d.probs[i] > d.probs[best]) best = i;
    }
    k = best;
  }
  return d.idx[k];
}

int PolicyNetwork::GreedyAction(const std::vector<float>& probs) const {
  int best = 0;
  for (size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[best]) best = static_cast<int>(i);
  }
  return best;
}

void PolicyNetwork::AccumulateGradients(const Episode& ep,
                                        const std::vector<double>& advantages,
                                        double entropy_coef) {
  LSG_CHECK(ep.train);
  const size_t T = ep.actions.size();
  LSG_CHECK(advantages.size() == T);
  LSG_CHECK(ep.caches.size() == T && ep.probs.size() == T);

  std::vector<std::vector<float>> dtop(
      T, std::vector<float>(options_.hidden_dim, 0.f));
  std::vector<float> dlogits(vocab_size_);
  for (size_t t = 0; t < T; ++t) {
    const std::vector<float>& p = ep.probs[t];
    const std::vector<uint8_t>& mask = ep.masks[t];
    const int a = ep.actions[t];
    const float adv = static_cast<float>(advantages[t]);

    // Entropy of the masked distribution.
    float entropy = 0.f;
    for (size_t i = 0; i < p.size(); ++i) {
      if (mask[i] && p[i] > 0.f) entropy -= p[i] * std::log(p[i]);
    }

    // dL/dz_i for L = -(A log π(a) + λ H).
    for (int i = 0; i < vocab_size_; ++i) {
      if (!mask[i]) {
        dlogits[i] = 0.f;
        continue;
      }
      float g = adv * (p[i] - (i == a ? 1.f : 0.f));
      if (entropy_coef > 0.0 && p[i] > 0.f) {
        g += static_cast<float>(entropy_coef) * p[i] *
             (std::log(p[i]) + entropy);
      }
      dlogits[i] = g;
    }
    const std::vector<float>& top_h = ep.caches[t].layers.back().h;
    head_.Backward(top_h.data(), dlogits.data(), dtop[t].data());
  }
  lstm_.Backward(ep.caches, dtop);
}

double PolicyNetwork::MeanEntropy(const Episode& ep) {
  if (ep.probs.empty()) return 0.0;
  double total = 0.0;
  for (const std::vector<float>& p : ep.probs) {
    double h = 0.0;
    for (float x : p) {
      if (x > 0.f) h -= x * std::log(x);
    }
    total += h;
  }
  return total / static_cast<double>(ep.probs.size());
}

std::vector<ParamTensor*> PolicyNetwork::Params() {
  std::vector<ParamTensor*> out = lstm_.Params();
  for (ParamTensor* p : head_.Params()) out.push_back(p);
  return out;
}

std::vector<const ParamTensor*> PolicyNetwork::Params() const {
  std::vector<const ParamTensor*> out = lstm_.Params();
  for (const ParamTensor* p : head_.Params()) out.push_back(p);
  return out;
}

}  // namespace lsg
