#include "rl/reinforce_trainer.h"

#include <cmath>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"

namespace lsg {

void NormalizeAdvantages(std::vector<std::vector<double>>* adv) {
  size_t n = 0;
  double sum = 0.0;
  for (const auto& a : *adv) {
    for (double v : a) {
      sum += v;
      ++n;
    }
  }
  if (n < 2) return;
  double mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (const auto& a : *adv) {
    for (double v : a) sq += (v - mean) * (v - mean);
  }
  double stddev = std::sqrt(sq / static_cast<double>(n));
  if (stddev < 1e-8) return;
  for (auto& a : *adv) {
    for (double& v : a) v = (v - mean) / stddev;
  }
}

StatusOr<Trajectory> RolloutPolicy(Environment* env, PolicyNetwork* actor,
                                   Rng* rng, bool train,
                                   PolicyNetwork::Episode* ep_out) {
  env->Reset();
  PolicyNetwork::Episode ep = actor->BeginEpisode(train);
  Trajectory traj;
  // Hard step cap: the FSM guarantees termination well before this.
  const int kMaxSteps = 512;
  for (int step = 0; step < kMaxSteps; ++step) {
    const std::vector<uint8_t>& mask = env->ValidActions();
    const std::vector<float>* probs_ptr = nullptr;
    LSG_RETURN_IF_ERROR(actor->TryNextDistribution(&ep, mask, &probs_ptr));
    const std::vector<float>& probs = *probs_ptr;
    int a = actor->SampleAction(probs, rng);
    actor->RecordAction(&ep, a);
    auto sr = env->Step(a);
    if (!sr.ok()) return sr.status();
    traj.actions.push_back(a);
    traj.rewards.push_back(sr->reward);
    if (sr->done) {
      traj.completed = true;
      traj.satisfied = sr->satisfied;
      traj.final_metric = sr->metric;
      traj.ast = env->TakeAst();
      break;
    }
  }
  if (!traj.completed) {
    return Status::Internal("episode exceeded the hard step cap");
  }
  if (ep_out != nullptr) *ep_out = std::move(ep);
  return traj;
}

ReinforceTrainer::ReinforceTrainer(Environment* env,
                                   const TrainerOptions& options)
    : env_(env), options_(options), rng_(options.seed) {
  LSG_CHECK(env != nullptr);
  NetworkOptions net = options.net;
  net.seed = options.seed;
  actor_ = std::make_unique<PolicyNetwork>(env->vocab_size(), net);
  actor_opt_ = std::make_unique<Adam>(actor_->Params(), options.actor_lr);
}

StatusOr<EpochStats> ReinforceTrainer::TrainEpoch() {
  LSG_OBS_SPAN("rl.reinforce_epoch");
  EpochStats stats;
  std::vector<PolicyNetwork::Episode> episodes(options_.batch_size);
  std::vector<std::vector<double>> advantages(options_.batch_size);
  for (int b = 0; b < options_.batch_size; ++b) {
    auto traj =
        RolloutPolicy(env_, actor_.get(), &rng_, /*train=*/true, &episodes[b]);
    if (!traj.ok()) return traj.status();
    advantages[b] = traj->RewardToGo();
    stats.episodes += 1;
    stats.mean_total_reward += traj->TotalReward();
    stats.mean_final_reward +=
        traj->rewards.empty() ? 0.0 : traj->rewards.back();
    stats.mean_entropy += PolicyNetwork::MeanEntropy(episodes[b]);
    stats.satisfied_frac += traj->satisfied ? 1.0 : 0.0;
  }
  if (options_.normalize_advantages) NormalizeAdvantages(&advantages);
  {
    LSG_OBS_SPAN("rl.reinforce_update");
    for (int b = 0; b < options_.batch_size; ++b) {
      actor_->AccumulateGradients(episodes[b], advantages[b],
                                  options_.entropy_coef);
    }
    ClipGradNorm(actor_->Params(), options_.grad_clip);
    actor_opt_->Step();
  }
  const double n = static_cast<double>(stats.episodes);
  stats.mean_total_reward /= n;
  stats.mean_final_reward /= n;
  stats.mean_entropy /= n;
  stats.satisfied_frac /= n;
  if (options_.keep_best_actor) {
    double score = stats.satisfied_frac + 0.01 * stats.mean_final_reward;
    if (score > best_score_) {
      best_score_ = score;
      best_actor_.Save(actor_->Params());
    }
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static obs::Counter& epochs = reg.GetCounter("rl.epochs");
    static obs::Counter& episodes = reg.GetCounter("rl.episodes");
    epochs.Inc();
    episodes.Add(static_cast<uint64_t>(stats.episodes));
    reg.GetGauge("rl.mean_total_reward").Set(stats.mean_total_reward);
    reg.GetGauge("rl.satisfied_frac").Set(stats.satisfied_frac);
    reg.GetGauge("rl.mean_entropy").Set(stats.mean_entropy);
  }
  return stats;
}

bool ReinforceTrainer::RestoreBestActor() {
  return best_actor_.Restore(actor_->Params());
}

StatusOr<Trajectory> ReinforceTrainer::Generate() {
  return RolloutPolicy(env_, actor_.get(), &rng_, /*train=*/false, nullptr);
}

StatusOr<Trajectory> ReinforceTrainer::Generate(Rng* rng) {
  return RolloutPolicy(env_, actor_.get(), rng, /*train=*/false, nullptr);
}

}  // namespace lsg
