#ifndef LEARNEDSQLGEN_RL_ACTOR_CRITIC_TRAINER_H_
#define LEARNEDSQLGEN_RL_ACTOR_CRITIC_TRAINER_H_

#include <memory>

#include "nn/adam.h"
#include "rl/reinforce_trainer.h"
#include "rl/value_network.h"

namespace lsg {

/// The paper's main trainer (§4.3, Algorithm 3): actor-critic with TD(0)
/// advantage A(s_t, a_t) = r_t + V(s_{t+1}) − V(s_t) and entropy
/// regularization. The critic's V value is the variance-reducing baseline.
class ActorCriticTrainer {
 public:
  ActorCriticTrainer(Environment* env, const TrainerOptions& options);

  /// Runs one batch of episodes and applies one update to both networks.
  StatusOr<EpochStats> TrainEpoch();

  /// Inference: generates one query with the current policy.
  StatusOr<Trajectory> Generate();

  /// Inference with a caller-owned RNG stream (serving path: each request
  /// samples from its own (seed, request)-derived stream). For the standard
  /// model this is op-for-op RNG-equivalent to Generate() — the critic is
  /// skipped at inference and consumes no random numbers.
  StatusOr<Trajectory> Generate(Rng* rng);

  /// Rolls the actor back to its best checkpoint (keep_best_actor).
  bool RestoreBestActor();

  PolicyNetwork& actor() { return *actor_; }
  const PolicyNetwork& actor() const { return *actor_; }
  ValueNetwork& critic() { return *critic_; }
  const TrainerOptions& options() const { return options_; }

  /// Per-episode constraint features for the AC-extend baseline; empty for
  /// the standard model. Copied into both networks' episodes.
  void set_extra_features(std::vector<float> extra) {
    extra_ = std::move(extra);
  }

  /// Swaps the environment (AC-extend trains one network across multiple
  /// constraint tasks, each with its own environment). The vocab size must
  /// match the construction-time environment.
  void set_environment(Environment* env) { env_ = env; }

 private:
  /// One training episode: rolls out actor and critic in lockstep. `rng`
  /// drives action sampling (TrainEpoch passes the trainer's own stream).
  StatusOr<Trajectory> RolloutWithCritic(PolicyNetwork::Episode* actor_ep,
                                         ValueNetwork::Episode* critic_ep,
                                         bool train, Rng* rng);

  Environment* env_;
  TrainerOptions options_;
  Rng rng_;
  std::unique_ptr<PolicyNetwork> actor_;
  std::unique_ptr<ValueNetwork> critic_;
  std::unique_ptr<Adam> actor_opt_;
  std::unique_ptr<Adam> critic_opt_;
  std::vector<float> extra_;
  ParamSnapshot best_actor_;
  double best_score_ = -1.0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_RL_ACTOR_CRITIC_TRAINER_H_
