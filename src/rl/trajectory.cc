#include "rl/trajectory.h"

// Interface definitions only; this file anchors the Environment vtable.
namespace lsg {}  // namespace lsg
