#ifndef LEARNEDSQLGEN_RL_META_CRITIC_H_
#define LEARNEDSQLGEN_RL_META_CRITIC_H_

#include <memory>
#include <vector>

#include "nn/adam.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "rl/reinforce_trainer.h"
#include "rl/value_network.h"

namespace lsg {

/// The meta-critic network of §6: a state-value function shared across
/// constraint tasks. It fuses
///   - a state path: the token LSTM (like the per-task critic), and
///   - a constraint encoder: an LSTM over the episode's recent
///     (action, reward) observations, whose hidden state z_t implicitly
///     identifies the task (the constraint determines the rewards, so the
///     triple stream is a task fingerprint — paper: "the outputs of the
///     constraint encoder can potentially describe the task").
/// V(s_t, z_t) = W2 · tanh(W1 · [h_t ; z_t]).
///
/// Simplification vs. the paper: the encoder consumes (a_t, r_t) rather
/// than the full (s_t, a_t, r_t) triple; the state component reaches the
/// value head through the state path, so no information is lost — only the
/// factorization differs (documented in DESIGN.md).
class MetaCritic {
 public:
  struct Options {
    int hidden_dim = 30;
    int num_layers = 2;
    float dropout = 0.3f;
    int action_embed_dim = 16;
    int encoder_dim = 16;
    int fusion_dim = 32;
    uint64_t seed = 99;
  };

  MetaCritic(int vocab_size, const Options& options);

  int bos_index() const { return vocab_size_; }

  struct Episode {
    // State path.
    LstmStack::State state;
    std::vector<LstmStack::StepCache> state_caches;
    // Constraint-encoder path.
    std::vector<float> enc_h, enc_c;
    std::vector<LstmCell::Cache> enc_caches;
    std::vector<std::vector<float>> enc_inputs;  ///< [a_emb ; r] per triple
    std::vector<int> enc_actions;
    // Fusion caches.
    std::vector<std::vector<float>> fuse_in;   ///< [h_top ; z]
    std::vector<std::vector<float>> fuse_mid;  ///< tanh(W1 ·)
    std::vector<float> values;
    bool train = false;
  };

  Episode BeginEpisode(bool train) const;

  /// Feeds the next token into the state path and returns V(s_t, z_t)
  /// using the encoder state accumulated so far.
  float StepValue(Episode* ep, int input_token);

  /// Advances the constraint encoder with the step's (action, reward).
  void ObserveTriple(Episode* ep, int action, double reward);

  /// Accumulates gradients; dvalue[t] = ∂L/∂V_t.
  void AccumulateGradients(const Episode& ep,
                           const std::vector<double>& dvalue);

  std::vector<ParamTensor*> Params();

 private:
  int vocab_size_;
  Options options_;
  Rng rng_;
  LstmStack state_lstm_;
  LstmCell encoder_;
  ParamTensor action_embed_;  ///< (E x |A|+1)
  Linear fuse1_;
  Linear fuse2_;
};

/// Multi-task pre-training (§6) and fast adaptation driver used by the
/// Figure 9 experiment. Owns one actor per pre-training task and the shared
/// meta-critic.
class MetaCriticTrainer {
 public:
  MetaCriticTrainer(std::vector<Environment*> task_envs,
                    const TrainerOptions& options,
                    const MetaCritic::Options& meta_options);

  /// One pre-training epoch: a batch per task, round-robin, all feeding the
  /// shared meta-critic.
  StatusOr<EpochStats> PretrainEpoch();

  /// Adapts to a new constraint: trains a fresh actor against `new_env`
  /// while continuing to update (and benefit from) the shared meta-critic.
  /// Returns per-epoch stats.
  StatusOr<std::vector<EpochStats>> Adapt(Environment* new_env, int epochs);

  /// Generates one query with the most recently adapted actor.
  StatusOr<Trajectory> GenerateWithAdapted(Environment* env);

  MetaCritic& meta_critic() { return *meta_; }

 private:
  /// One batch of episodes for (env, actor) with the shared critic.
  StatusOr<EpochStats> TrainBatch(Environment* env, PolicyNetwork* actor,
                                  Adam* actor_opt);

  std::vector<Environment*> task_envs_;
  TrainerOptions options_;
  Rng rng_;
  std::unique_ptr<MetaCritic> meta_;
  std::unique_ptr<Adam> meta_opt_;
  std::vector<std::unique_ptr<PolicyNetwork>> actors_;
  std::vector<std::unique_ptr<Adam>> actor_opts_;
  std::unique_ptr<PolicyNetwork> adapted_actor_;
  std::unique_ptr<Adam> adapted_opt_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_RL_META_CRITIC_H_
