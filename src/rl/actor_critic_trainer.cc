#include "rl/actor_critic_trainer.h"

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"

namespace lsg {

ActorCriticTrainer::ActorCriticTrainer(Environment* env,
                                       const TrainerOptions& options)
    : env_(env), options_(options), rng_(options.seed) {
  LSG_CHECK(env != nullptr);
  NetworkOptions net = options.net;
  net.seed = options.seed;
  actor_ = std::make_unique<PolicyNetwork>(env->vocab_size(), net);
  net.seed = options.seed + 1;
  critic_ = std::make_unique<ValueNetwork>(env->vocab_size(), net);
  actor_opt_ = std::make_unique<Adam>(actor_->Params(), options.actor_lr);
  critic_opt_ = std::make_unique<Adam>(critic_->Params(), options.critic_lr);
}

StatusOr<Trajectory> ActorCriticTrainer::RolloutWithCritic(
    PolicyNetwork::Episode* actor_ep, ValueNetwork::Episode* critic_ep,
    bool train, Rng* rng) {
  env_->Reset();
  *actor_ep = actor_->BeginEpisode(train);
  *critic_ep = critic_->BeginEpisode(train);
  actor_ep->extra = extra_;
  critic_ep->extra = extra_;
  Trajectory traj;
  const int kMaxSteps = 512;
  int prev = actor_->bos_index();
  for (int step = 0; step < kMaxSteps; ++step) {
    const std::vector<uint8_t>& mask = env_->ValidActions();
    const std::vector<float>* probs_ptr = nullptr;
    LSG_RETURN_IF_ERROR(
        actor_->TryNextDistribution(actor_ep, mask, &probs_ptr));
    const std::vector<float>& probs = *probs_ptr;
    if (train) critic_->StepValue(critic_ep, prev);  // V(s_t)
    int a = actor_->SampleAction(probs, rng);
    actor_->RecordAction(actor_ep, a);
    auto sr = env_->Step(a);
    if (!sr.ok()) return sr.status();
    traj.actions.push_back(a);
    traj.rewards.push_back(sr->reward);
    prev = a;
    if (sr->done) {
      traj.completed = true;
      traj.satisfied = sr->satisfied;
      traj.final_metric = sr->metric;
      traj.ast = env_->TakeAst();
      break;
    }
  }
  if (!traj.completed) {
    return Status::Internal("episode exceeded the hard step cap");
  }
  return traj;
}

StatusOr<EpochStats> ActorCriticTrainer::TrainEpoch() {
  LSG_OBS_SPAN("rl.ac_epoch");
  EpochStats stats;
  std::vector<PolicyNetwork::Episode> actor_eps(options_.batch_size);
  std::vector<ValueNetwork::Episode> critic_eps(options_.batch_size);
  std::vector<std::vector<double>> advantages(options_.batch_size);
  for (int b = 0; b < options_.batch_size; ++b) {
    auto traj =
        RolloutWithCritic(&actor_eps[b], &critic_eps[b], /*train=*/true, &rng_);
    if (!traj.ok()) return traj.status();
    const size_t T = traj->rewards.size();
    ValueNetwork::Episode& critic_ep = critic_eps[b];
    LSG_CHECK(critic_ep.values.size() == T);
    // TD(0): td_t = r_t + V(s_{t+1}) − V(s_t), terminal V = 0.
    std::vector<double> advantage(T);
    std::vector<double> dvalue(T);
    for (size_t t = 0; t < T; ++t) {
      double v_next = (t + 1 < T) ? critic_ep.values[t + 1] : 0.0;
      double td = traj->rewards[t] + v_next - critic_ep.values[t];
      advantage[t] = td;
      dvalue[t] = -td;  // ∂ 0.5·td² / ∂V(s_t), target fixed
    }
    advantages[b] = std::move(advantage);
    critic_->AccumulateGradients(critic_ep, dvalue);
    stats.episodes += 1;
    stats.mean_total_reward += traj->TotalReward();
    stats.mean_final_reward +=
        traj->rewards.empty() ? 0.0 : traj->rewards.back();
    stats.mean_entropy += PolicyNetwork::MeanEntropy(actor_eps[b]);
    stats.satisfied_frac += traj->satisfied ? 1.0 : 0.0;
  }
  if (options_.normalize_advantages) NormalizeAdvantages(&advantages);
  {
    LSG_OBS_SPAN("rl.ac_update");
    for (int b = 0; b < options_.batch_size; ++b) {
      actor_->AccumulateGradients(actor_eps[b], advantages[b],
                                  options_.entropy_coef);
    }
    ClipGradNorm(actor_->Params(), options_.grad_clip);
    ClipGradNorm(critic_->Params(), options_.grad_clip);
    actor_opt_->Step();
    critic_opt_->Step();
  }
  const double n = static_cast<double>(stats.episodes);
  stats.mean_total_reward /= n;
  stats.mean_final_reward /= n;
  stats.mean_entropy /= n;
  stats.satisfied_frac /= n;
  if (options_.keep_best_actor) {
    double score = stats.satisfied_frac + 0.01 * stats.mean_final_reward;
    if (score > best_score_) {
      best_score_ = score;
      best_actor_.Save(actor_->Params());
    }
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static obs::Counter& epochs = reg.GetCounter("rl.epochs");
    static obs::Counter& episodes = reg.GetCounter("rl.episodes");
    epochs.Inc();
    episodes.Add(static_cast<uint64_t>(stats.episodes));
    reg.GetGauge("rl.mean_total_reward").Set(stats.mean_total_reward);
    reg.GetGauge("rl.satisfied_frac").Set(stats.satisfied_frac);
    reg.GetGauge("rl.mean_entropy").Set(stats.mean_entropy);
  }
  return stats;
}

bool ActorCriticTrainer::RestoreBestActor() {
  return best_actor_.Restore(actor_->Params());
}

StatusOr<Trajectory> ActorCriticTrainer::Generate() {
  PolicyNetwork::Episode actor_ep;
  ValueNetwork::Episode critic_ep;
  return RolloutWithCritic(&actor_ep, &critic_ep, /*train=*/false, &rng_);
}

StatusOr<Trajectory> ActorCriticTrainer::Generate(Rng* rng) {
  PolicyNetwork::Episode actor_ep;
  ValueNetwork::Episode critic_ep;
  return RolloutWithCritic(&actor_ep, &critic_ep, /*train=*/false, rng);
}

}  // namespace lsg
