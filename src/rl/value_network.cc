#include "rl/value_network.h"

#include "common/logging.h"

namespace lsg {

ValueNetwork::ValueNetwork(int vocab_size, const NetworkOptions& options)
    : vocab_size_(vocab_size),
      options_(options),
      rng_(options.seed + 0x5EED),
      lstm_(vocab_size + 1 + options.extra_input_dims, options.hidden_dim,
            options.num_layers, options.dropout, &rng_),
      head_(options.hidden_dim, 1, &rng_) {}

ValueNetwork::Episode ValueNetwork::BeginEpisode(bool train) const {
  Episode ep;
  ep.state = lstm_.InitialState();
  ep.train = train;
  return ep;
}

float ValueNetwork::StepValue(Episode* ep, int input_token) {
  LstmStack::StepCache* cache = nullptr;
  if (ep->train) {
    ep->caches.emplace_back();
    cache = &ep->caches.back();
  }
  const std::vector<float>* top;
  if (options_.extra_input_dims > 0) {
    std::vector<float> x(vocab_size_ + 1 + options_.extra_input_dims, 0.f);
    x[input_token] = 1.f;
    for (int i = 0; i < options_.extra_input_dims &&
                    i < static_cast<int>(ep->extra.size()); ++i) {
      x[vocab_size_ + 1 + i] = ep->extra[i];
    }
    top = &lstm_.StepDense(x.data(), &ep->state, cache, ep->train, &rng_);
  } else {
    top = &lstm_.Step(input_token, &ep->state, cache, ep->train, &rng_);
  }
  float v = 0.f;
  head_.Forward(top->data(), &v);
  ep->values.push_back(v);
  ep->inputs.push_back(input_token);
  return v;
}

void ValueNetwork::AccumulateGradients(const Episode& ep,
                                       const std::vector<double>& dvalue) {
  LSG_CHECK(ep.train);
  const size_t T = ep.values.size();
  LSG_CHECK(dvalue.size() == T && ep.caches.size() == T);
  std::vector<std::vector<float>> dtop(
      T, std::vector<float>(options_.hidden_dim, 0.f));
  for (size_t t = 0; t < T; ++t) {
    float dv = static_cast<float>(dvalue[t]);
    const std::vector<float>& top_h = ep.caches[t].layers.back().h;
    head_.Backward(top_h.data(), &dv, dtop[t].data());
  }
  lstm_.Backward(ep.caches, dtop);
}

std::vector<ParamTensor*> ValueNetwork::Params() {
  std::vector<ParamTensor*> out = lstm_.Params();
  for (ParamTensor* p : head_.Params()) out.push_back(p);
  return out;
}

}  // namespace lsg
