#ifndef LEARNEDSQLGEN_RL_TRAJECTORY_H_
#define LEARNEDSQLGEN_RL_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace lsg {

/// Result of applying one action in the environment.
struct EnvStepResult {
  double reward = 0.0;
  bool done = false;          ///< EOF consumed, query complete
  bool executable = false;    ///< prefix was executable after this step
  double metric = 0.0;        ///< estimated card/cost of the (partial) query
  bool satisfied = false;     ///< metric satisfies the constraint
};

/// The agent's view of the generation environment (FSM masking + database
/// feedback). Implemented by core::SqlGenEnvironment; the trainers in this
/// module are generic over it so they can be unit-tested against toy
/// environments.
class Environment {
 public:
  virtual ~Environment() = default;

  /// Starts a new episode (empty query).
  virtual void Reset() = 0;

  /// FSM action mask for the current state; size == vocab_size().
  virtual const std::vector<uint8_t>& ValidActions() = 0;

  /// Applies an action (must be valid).
  virtual StatusOr<EnvStepResult> Step(int action) = 0;

  /// Takes ownership of the completed query's AST (call once after done).
  virtual QueryAst TakeAst() = 0;

  virtual int vocab_size() const = 0;
};

/// One completed episode.
struct Trajectory {
  std::vector<int> actions;
  std::vector<double> rewards;
  bool completed = false;
  bool satisfied = false;      ///< final query satisfies the constraint
  double final_metric = 0.0;   ///< ĉ of the finished query
  QueryAst ast;

  double TotalReward() const {
    double s = 0.0;
    for (double r : rewards) s += r;
    return s;
  }

  /// Reward-to-go Σ_{u≥t} r_u for each step (REINFORCE's R(τ_{t:T})).
  std::vector<double> RewardToGo() const {
    std::vector<double> out(rewards.size());
    double acc = 0.0;
    for (size_t i = rewards.size(); i-- > 0;) {
      acc += rewards[i];
      out[i] = acc;
    }
    return out;
  }
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_RL_TRAJECTORY_H_
