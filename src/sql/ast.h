#ifndef LEARNEDSQLGEN_SQL_AST_H_
#define LEARNEDSQLGEN_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "sql/token.h"

namespace lsg {

struct SelectQuery;

/// Aggregate functions usable in SELECT items and HAVING.
enum class AggFunc { kNone = 0, kMax, kMin, kSum, kAvg, kCount };

/// SQL name of an aggregate ("MAX", ...); kNone yields "".
const char* AggFuncName(AggFunc agg);

/// One projection item: a bare column or agg(column).
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ColumnRef column;
};

/// How a predicate's right-hand side is formed.
enum class PredicateKind {
  kValue,     ///< col op literal
  kScalarSub, ///< col op (SELECT agg(x) FROM ...)
  kInSub,     ///< col IN (SELECT x FROM ...)
  kExistsSub, ///< [NOT] EXISTS (SELECT x FROM ...)
  kLike,      ///< col LIKE '%pattern%' (§5 future work, implemented)
};

/// One WHERE predicate. Owns its subquery when kind != kValue.
struct Predicate {
  Predicate();
  ~Predicate();
  Predicate(Predicate&&) noexcept;
  Predicate& operator=(Predicate&&) noexcept;
  Predicate(const Predicate&) = delete;
  Predicate& operator=(const Predicate&) = delete;

  PredicateKind kind = PredicateKind::kValue;
  ColumnRef column;          ///< lhs column (unused for EXISTS)
  CompareOp op = CompareOp::kEq;
  Value value;               ///< rhs literal (kValue)
  bool negated = false;      ///< NOT EXISTS
  std::unique_ptr<SelectQuery> subquery;  ///< rhs subquery
};

/// Boolean connector between consecutive predicates.
enum class BoolConn { kAnd = 0, kOr = 1 };

/// Conjunction/disjunction chain, evaluated left-to-right with SQL's usual
/// precedence (AND binds tighter than OR).
struct WhereClause {
  std::vector<Predicate> predicates;
  std::vector<BoolConn> connectors;  ///< size = predicates.size() - 1

  bool empty() const { return predicates.empty(); }
};

/// HAVING agg(col) op value.
struct HavingClause {
  AggFunc agg = AggFunc::kCount;
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value value;
};

/// A SELECT query over a chain of FK-joined tables.
struct SelectQuery {
  /// Catalog indices of the joined tables; tables[0] is the FROM anchor and
  /// each later table joins some earlier one via a catalog FK edge.
  std::vector<int> tables;
  std::vector<SelectItem> items;
  WhereClause where;
  std::vector<ColumnRef> group_by;
  std::optional<HavingClause> having;
  /// ORDER BY columns (drawn from the select items). Does not change the
  /// result cardinality; the cost model prices the sort.
  std::vector<ColumnRef> order_by;

  /// True if any item aggregates.
  bool HasAggregate() const;
  /// Number of join edges (tables.size() - 1, or 0).
  int NumJoins() const;
  /// Total predicates including those in subqueries.
  int TotalPredicates() const;
  /// True if any predicate nests a subquery (recursively).
  bool HasNested() const;
  /// Maximum nesting depth (0 = flat).
  int NestingDepth() const;
};

/// INSERT INTO t VALUES(...) or INSERT INTO t SELECT ... .
struct InsertQuery {
  int table_idx = -1;
  std::vector<Value> values;               ///< VALUES form
  std::unique_ptr<SelectQuery> source;     ///< SELECT form
};

/// UPDATE t SET col = value [WHERE ...].
struct UpdateQuery {
  int table_idx = -1;
  ColumnRef set_column;
  Value set_value;
  WhereClause where;
};

/// DELETE FROM t [WHERE ...].
struct DeleteQuery {
  int table_idx = -1;
  WhereClause where;
};

enum class QueryType { kSelect = 0, kInsert, kUpdate, kDelete };

const char* QueryTypeName(QueryType type);

/// A fully or partially generated query of any supported type.
struct QueryAst {
  QueryType type = QueryType::kSelect;
  std::unique_ptr<SelectQuery> select;
  std::unique_ptr<InsertQuery> insert;
  std::unique_ptr<UpdateQuery> update;
  std::unique_ptr<DeleteQuery> del;

  QueryAst();
  ~QueryAst();
  QueryAst(QueryAst&&) noexcept;
  QueryAst& operator=(QueryAst&&) noexcept;
  QueryAst(const QueryAst&) = delete;
  QueryAst& operator=(const QueryAst&) = delete;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SQL_AST_H_
