#ifndef LEARNEDSQLGEN_SQL_PARSER_H_
#define LEARNEDSQLGEN_SQL_PARSER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"

namespace lsg {

/// Parses SQL text (the dialect produced by RenderSql) back into a
/// QueryAst, resolving table/column names against the catalog. Supports
/// the full generated grammar: SELECT with FK JOIN ... ON chains, WHERE
/// (literals, LIKE, IN/scalar/EXISTS subqueries, AND/OR), GROUP BY,
/// HAVING, ORDER BY, and INSERT / UPDATE / DELETE.
///
/// Useful for ingesting externally supplied queries or templates into the
/// engine/estimator, and for render↔parse round-trip testing.
StatusOr<QueryAst> ParseSql(const std::string& sql, const Catalog& catalog);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SQL_PARSER_H_
