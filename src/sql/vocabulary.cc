#include "sql/vocabulary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

int Vocabulary::AddToken(Token t) {
  t.id = static_cast<int>(tokens_.size());
  tokens_.push_back(std::move(t));
  return tokens_.back().id;
}

StatusOr<Vocabulary> Vocabulary::Build(const Database& db,
                                       const VocabularyOptions& options) {
  if (db.num_tables() == 0) {
    return Status::InvalidArgument("vocabulary needs a non-empty database");
  }
  Vocabulary v;
  Rng rng(options.seed);

  // 1. Reserved words.
  v.keyword_ids_.resize(static_cast<int>(Keyword::kNumKeywords), -1);
  for (int k = 0; k < static_cast<int>(Keyword::kNumKeywords); ++k) {
    Token t;
    t.kind = TokenKind::kKeyword;
    t.keyword = static_cast<Keyword>(k);
    t.text = KeywordText(t.keyword);
    v.keyword_ids_[k] = v.AddToken(std::move(t));
  }

  // 2. Operators.
  v.operator_ids_.resize(static_cast<int>(CompareOp::kNumOps), -1);
  for (int o = 0; o < static_cast<int>(CompareOp::kNumOps); ++o) {
    Token t;
    t.kind = TokenKind::kOperator;
    t.op = static_cast<CompareOp>(o);
    t.text = CompareOpText(t.op);
    v.operator_ids_[o] = v.AddToken(std::move(t));
  }

  // 3. Schema metadata: tables then columns.
  const Catalog& cat = db.catalog();
  v.table_ids_.resize(cat.num_tables(), -1);
  v.column_ids_.resize(cat.num_tables());
  v.value_ids_.resize(cat.num_tables());
  v.pattern_ids_.resize(cat.num_tables());
  for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
    const TableSchema& ts = cat.table(ti);
    Token t;
    t.kind = TokenKind::kTable;
    t.table_idx = static_cast<int>(ti);
    t.text = ts.name();
    v.table_ids_[ti] = v.AddToken(std::move(t));
    v.column_ids_[ti].resize(ts.num_columns(), -1);
    v.value_ids_[ti].resize(ts.num_columns());
    v.pattern_ids_[ti].resize(ts.num_columns());
    for (size_t ci = 0; ci < ts.num_columns(); ++ci) {
      Token c;
      c.kind = TokenKind::kColumn;
      c.column = ColumnRef{static_cast<int>(ti), static_cast<int>(ci)};
      c.text = ts.name() + "." + ts.column(ci).name;
      v.column_ids_[ti][ci] = v.AddToken(std::move(c));
    }
  }

  // 4. Cell values, sampled per column (paper §4.1).
  for (size_t ti = 0; ti < cat.num_tables(); ++ti) {
    const Table* table = db.FindTable(cat.table(ti).name());
    LSG_CHECK(table != nullptr);
    for (size_t ci = 0; ci < cat.table(ti).num_columns(); ++ci) {
      const ColumnSchema& cs = cat.table(ti).column(ci);
      std::vector<Value> distinct = table->column(ci).DistinctValues();
      if (distinct.empty()) continue;
      size_t want;
      if (cs.type == DataType::kCategorical) {
        want = std::min<size_t>(distinct.size(),
                                static_cast<size_t>(options.max_categorical_values));
      } else if (options.sample_ratio > 0.0) {
        want = static_cast<size_t>(
            std::ceil(options.sample_ratio * static_cast<double>(distinct.size())));
        want = std::max<size_t>(1, std::min(want, distinct.size()));
      } else {
        want = std::min<size_t>(distinct.size(),
                                static_cast<size_t>(options.values_per_column));
      }
      std::vector<size_t> pick;
      if (want == distinct.size()) {
        pick.resize(want);
        for (size_t i = 0; i < want; ++i) pick[i] = i;
      } else {
        pick = rng.SampleWithoutReplacement(distinct.size(), want);
        std::sort(pick.begin(), pick.end());
      }
      for (size_t idx : pick) {
        Token t;
        t.kind = TokenKind::kValue;
        t.value = distinct[idx];
        t.value_column_table = static_cast<int>(ti);
        t.value_column_idx = static_cast<int>(ci);
        t.text = t.value.ToSqlLiteral();
        int id = v.AddToken(std::move(t));
        v.value_ids_[ti][ci].push_back(id);
        ++v.num_value_tokens_;
      }

      // LIKE patterns: '%<substring>%' sampled from the picked strings
      // (the paper's suggested mechanism for supporting LIKE, §5).
      if (!IsNumeric(cs.type) && options.patterns_per_string_column > 0) {
        std::vector<std::string> patterns;
        for (int attempt = 0;
             attempt < options.patterns_per_string_column * 4 &&
             static_cast<int>(patterns.size()) <
                 options.patterns_per_string_column;
             ++attempt) {
          const Value& src = distinct[rng.Uniform(distinct.size())];
          const std::string& s = src.as_string();
          if (s.empty()) continue;
          size_t len = std::min<size_t>(s.size(), 2 + rng.Uniform(3));
          size_t start = rng.Uniform(s.size() - len + 1);
          std::string pattern = "%" + s.substr(start, len) + "%";
          if (std::find(patterns.begin(), patterns.end(), pattern) !=
              patterns.end()) {
            continue;
          }
          patterns.push_back(pattern);
          Token t;
          t.kind = TokenKind::kValue;
          t.value = Value(pattern);
          t.value_column_table = static_cast<int>(ti);
          t.value_column_idx = static_cast<int>(ci);
          t.is_pattern = true;
          t.text = t.value.ToSqlLiteral();
          int id = v.AddToken(std::move(t));
          v.pattern_ids_[ti][ci].push_back(id);
          ++v.num_value_tokens_;
        }
      }
    }
  }

  // 5. EOF.
  {
    Token t;
    t.kind = TokenKind::kEof;
    t.text = "<EOF>";
    v.eof_id_ = v.AddToken(std::move(t));
  }

  LSG_LOG(Info) << "vocabulary built: |A|=" << v.size()
                << " (values=" << v.num_value_tokens_ << ")";
  return v;
}

int Vocabulary::column_token_id(int table_idx, int column_idx) const {
  LSG_DCHECK(table_idx >= 0 &&
             table_idx < static_cast<int>(column_ids_.size()));
  LSG_DCHECK(column_idx >= 0 &&
             column_idx < static_cast<int>(column_ids_[table_idx].size()));
  return column_ids_[table_idx][column_idx];
}

const std::vector<int>& Vocabulary::value_token_ids(int table_idx,
                                                    int column_idx) const {
  return value_ids_[table_idx][column_idx];
}

const std::vector<int>& Vocabulary::pattern_token_ids(int table_idx,
                                                      int column_idx) const {
  return pattern_ids_[table_idx][column_idx];
}

}  // namespace lsg
