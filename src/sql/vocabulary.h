#ifndef LEARNEDSQLGEN_SQL_VOCABULARY_H_
#define LEARNEDSQLGEN_SQL_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sql/token.h"
#include "storage/table.h"

namespace lsg {

/// Controls how the action space is built from a database.
struct VocabularyOptions {
  /// Number of values sampled per numerical/string attribute (paper k=100).
  /// Ignored when sample_ratio > 0.
  int values_per_column = 100;

  /// If > 0, sample ceil(ratio * ndv) values per column instead of a fixed
  /// k (the Figure 12 η sweep).
  double sample_ratio = 0.0;

  /// Categorical columns enumerate all distinct values up to this cap.
  int max_categorical_values = 64;

  /// LIKE patterns sampled per string/categorical column: substrings of
  /// sampled cell values wrapped in '%' (paper §5 future work; 0 disables).
  int patterns_per_string_column = 6;

  /// Seed for value sampling; fixed for reproducibility.
  uint64_t seed = 42;
};

/// The fixed action space A for one database (paper §4.1): every keyword,
/// table name, column name, sampled cell value, operator, plus EOF, each
/// mapped to a dense id usable as a one-hot index.
class Vocabulary {
 public:
  /// Builds the action space for `db`.
  static StatusOr<Vocabulary> Build(const Database& db,
                                    const VocabularyOptions& options);

  /// Total number of actions |A| (the one-hot dimension).
  int size() const { return static_cast<int>(tokens_.size()); }

  const Token& token(int id) const { return tokens_[id]; }

  /// Ids of fixed singleton tokens.
  int eof_id() const { return eof_id_; }
  int keyword_id(Keyword kw) const { return keyword_ids_[static_cast<int>(kw)]; }
  int operator_id(CompareOp op) const {
    return operator_ids_[static_cast<int>(op)];
  }

  /// Id of the table token for catalog table `table_idx`.
  int table_token_id(int table_idx) const { return table_ids_[table_idx]; }

  /// Id of the column token for (table_idx, column_idx).
  int column_token_id(int table_idx, int column_idx) const;

  /// Ids of the sampled value tokens belonging to a column.
  const std::vector<int>& value_token_ids(int table_idx,
                                          int column_idx) const;

  /// Ids of the sampled LIKE-pattern tokens belonging to a string column
  /// (empty for numeric columns or when pattern sampling is disabled).
  const std::vector<int>& pattern_token_ids(int table_idx,
                                            int column_idx) const;

  /// Number of tables / columns the vocabulary covers.
  int num_tables() const { return static_cast<int>(table_ids_.size()); }
  int num_columns(int table_idx) const {
    return static_cast<int>(column_ids_[table_idx].size());
  }

  /// Sum of value tokens across all columns (diagnostics).
  int num_value_tokens() const { return num_value_tokens_; }

 private:
  Vocabulary() = default;

  int AddToken(Token t);

  std::vector<Token> tokens_;
  std::vector<int> keyword_ids_;
  std::vector<int> operator_ids_;
  std::vector<int> table_ids_;
  std::vector<std::vector<int>> column_ids_;           // [table][column]
  std::vector<std::vector<std::vector<int>>> value_ids_;  // [table][column][i]
  std::vector<std::vector<std::vector<int>>> pattern_ids_;
  int eof_id_ = -1;
  int num_value_tokens_ = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SQL_VOCABULARY_H_
