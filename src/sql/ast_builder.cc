#include "sql/ast_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

const char* BuildPhaseName(BuildPhase phase) {
  switch (phase) {
    case BuildPhase::kStart: return "Start";
    case BuildPhase::kFromTable: return "FromTable";
    case BuildPhase::kAfterFromTable: return "AfterFromTable";
    case BuildPhase::kJoinTable: return "JoinTable";
    case BuildPhase::kSelectItem: return "SelectItem";
    case BuildPhase::kAggColumn: return "AggColumn";
    case BuildPhase::kAfterSelectItem: return "AfterSelectItem";
    case BuildPhase::kWherePred: return "WherePred";
    case BuildPhase::kAfterNot: return "AfterNot";
    case BuildPhase::kExistsOpen: return "ExistsOpen";
    case BuildPhase::kWhereOp: return "WhereOp";
    case BuildPhase::kWhereRhs: return "WhereRhs";
    case BuildPhase::kWhereLikeRhs: return "WhereLikeRhs";
    case BuildPhase::kInOpen: return "InOpen";
    case BuildPhase::kAfterPredicate: return "AfterPredicate";
    case BuildPhase::kGroupByColumn: return "GroupByColumn";
    case BuildPhase::kAfterGroupBy: return "AfterGroupBy";
    case BuildPhase::kHavingAgg: return "HavingAgg";
    case BuildPhase::kHavingColumn: return "HavingColumn";
    case BuildPhase::kHavingOp: return "HavingOp";
    case BuildPhase::kHavingValue: return "HavingValue";
    case BuildPhase::kAfterHaving: return "AfterHaving";
    case BuildPhase::kOrderByColumn: return "OrderByColumn";
    case BuildPhase::kAfterOrderBy: return "AfterOrderBy";
    case BuildPhase::kInsertTable: return "InsertTable";
    case BuildPhase::kAfterInsertTable: return "AfterInsertTable";
    case BuildPhase::kInsertValue: return "InsertValue";
    case BuildPhase::kInsertDone: return "InsertDone";
    case BuildPhase::kUpdateTable: return "UpdateTable";
    case BuildPhase::kUpdateSetKw: return "UpdateSetKw";
    case BuildPhase::kUpdateSetColumn: return "UpdateSetColumn";
    case BuildPhase::kUpdateSetValue: return "UpdateSetValue";
    case BuildPhase::kUpdateAfterSet: return "UpdateAfterSet";
    case BuildPhase::kDeleteTable: return "DeleteTable";
    case BuildPhase::kDeleteAfterTable: return "DeleteAfterTable";
    case BuildPhase::kDone: return "Done";
  }
  return "?";
}

namespace {

AggFunc KeywordToAgg(Keyword kw) {
  switch (kw) {
    case Keyword::kMax: return AggFunc::kMax;
    case Keyword::kMin: return AggFunc::kMin;
    case Keyword::kSum: return AggFunc::kSum;
    case Keyword::kAvg: return AggFunc::kAvg;
    case Keyword::kCount: return AggFunc::kCount;
    default: return AggFunc::kNone;
  }
}

}  // namespace

AstBuilder::AstBuilder(const Catalog* catalog) : catalog_(catalog) {
  LSG_CHECK(catalog != nullptr);
  BuildFrame top;
  top.purpose = FramePurpose::kTopLevel;
  top.phase = BuildPhase::kStart;
  stack_.push_back(std::move(top));
}

Status AstBuilder::Illegal(const Token& t) const {
  return Status::InvalidArgument(StrFormat(
      "token '%s' illegal in phase %s (depth %d)", t.text.c_str(),
      BuildPhaseName(stack_.back().phase), depth()));
}

QueryAst AstBuilder::TakeAst() {
  LSG_CHECK(done_);
  return std::move(ast_);
}

Status AstBuilder::Feed(const Token& t) {
  if (done_) return Status::FailedPrecondition("query already complete");
  BuildFrame& f = stack_.back();
  Status st;
  switch (f.phase) {
    case BuildPhase::kStart:
      st = FeedStart(t);
      break;
    case BuildPhase::kInsertTable:
    case BuildPhase::kAfterInsertTable:
    case BuildPhase::kInsertValue:
    case BuildPhase::kInsertDone:
      st = FeedInsert(t);
      break;
    case BuildPhase::kUpdateTable:
    case BuildPhase::kUpdateSetKw:
    case BuildPhase::kUpdateSetColumn:
    case BuildPhase::kUpdateSetValue:
    case BuildPhase::kUpdateAfterSet:
      st = FeedUpdate(t);
      break;
    case BuildPhase::kDeleteTable:
    case BuildPhase::kDeleteAfterTable:
      st = FeedDelete(t);
      break;
    case BuildPhase::kDone:
      return Status::FailedPrecondition("query already complete");
    default:
      st = FeedSelectFrame(t);
      break;
  }
  if (st.ok()) tokens_.push_back(t);
  return st;
}

Status AstBuilder::FeedStart(const Token& t) {
  BuildFrame& f = stack_.back();
  if (t.kind != TokenKind::kKeyword) return Illegal(t);
  const bool top = depth() == 1;
  switch (t.keyword) {
    case Keyword::kFrom:
      if (top) {
        ast_.type = QueryType::kSelect;
        ast_.select = std::make_unique<SelectQuery>();
        f.query = ast_.select.get();
        f.where = &ast_.select->where;
      }
      // Subquery frames already carry their SelectQuery.
      f.phase = BuildPhase::kFromTable;
      return Status::Ok();
    case Keyword::kInsert:
      if (!top) return Illegal(t);
      ast_.type = QueryType::kInsert;
      ast_.insert = std::make_unique<InsertQuery>();
      f.phase = BuildPhase::kInsertTable;
      return Status::Ok();
    case Keyword::kUpdate:
      if (!top) return Illegal(t);
      ast_.type = QueryType::kUpdate;
      ast_.update = std::make_unique<UpdateQuery>();
      f.phase = BuildPhase::kUpdateTable;
      return Status::Ok();
    case Keyword::kDelete:
      if (!top) return Illegal(t);
      ast_.type = QueryType::kDelete;
      ast_.del = std::make_unique<DeleteQuery>();
      f.phase = BuildPhase::kDeleteTable;
      return Status::Ok();
    default:
      return Illegal(t);
  }
}

Status AstBuilder::FeedSelectFrame(const Token& t) {
  BuildFrame& f = stack_.back();
  const bool top = depth() == 1;
  switch (f.phase) {
    case BuildPhase::kFromTable:
      if (t.kind != TokenKind::kTable) return Illegal(t);
      f.query->tables.push_back(t.table_idx);
      f.scope_tables.push_back(t.table_idx);
      f.phase = BuildPhase::kAfterFromTable;
      return Status::Ok();

    case BuildPhase::kAfterFromTable:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kJoin) {
        f.phase = BuildPhase::kJoinTable;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kSelect) {
        f.phase = BuildPhase::kSelectItem;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kJoinTable:
      if (t.kind != TokenKind::kTable) return Illegal(t);
      f.query->tables.push_back(t.table_idx);
      f.scope_tables.push_back(t.table_idx);
      f.phase = BuildPhase::kAfterFromTable;
      return Status::Ok();

    case BuildPhase::kSelectItem:
    case BuildPhase::kAfterSelectItem:
      if (t.kind == TokenKind::kColumn) {
        f.query->items.push_back(SelectItem{AggFunc::kNone, t.column});
        f.phase = BuildPhase::kAfterSelectItem;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && IsAggregateKeyword(t.keyword)) {
        f.pending_agg = KeywordToAgg(t.keyword);
        f.phase = BuildPhase::kAggColumn;
        return Status::Ok();
      }
      if (f.phase == BuildPhase::kAfterSelectItem &&
          t.kind == TokenKind::kKeyword) {
        if (t.keyword == Keyword::kWhere) {
          f.phase = BuildPhase::kWherePred;
          return Status::Ok();
        }
        if (t.keyword == Keyword::kGroupBy && f.query != nullptr) {
          f.groupby_remaining.clear();
          for (const SelectItem& it : f.query->items) {
            if (it.agg != AggFunc::kNone) continue;
            if (std::find(f.groupby_remaining.begin(),
                          f.groupby_remaining.end(),
                          it.column) == f.groupby_remaining.end()) {
              f.groupby_remaining.push_back(it.column);
            }
          }
          if (f.groupby_remaining.empty()) return Illegal(t);
          f.phase = BuildPhase::kGroupByColumn;
          return Status::Ok();
        }
        if (t.keyword == Keyword::kCloseParen && !top) return PopSubquery();
      }
      if (f.phase == BuildPhase::kAfterSelectItem &&
          t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOrderBy &&
          top && f.query != nullptr) {
        return EnterOrderBy(t);
      }
      if (f.phase == BuildPhase::kAfterSelectItem &&
          t.kind == TokenKind::kEof && top) {
        done_ = true;
        f.phase = BuildPhase::kDone;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kAggColumn:
      if (t.kind != TokenKind::kColumn) return Illegal(t);
      f.query->items.push_back(SelectItem{f.pending_agg, t.column});
      f.pending_agg = AggFunc::kNone;
      f.phase = BuildPhase::kAfterSelectItem;
      return Status::Ok();

    case BuildPhase::kWherePred:
      if (t.kind == TokenKind::kColumn) {
        f.pending_column = t.column;
        f.phase = BuildPhase::kWhereOp;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kNot) {
        f.pending_negated = true;
        f.phase = BuildPhase::kAfterNot;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kExists) {
        f.pending_negated = false;
        f.phase = BuildPhase::kExistsOpen;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kAfterNot:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kExists) {
        f.phase = BuildPhase::kExistsOpen;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kExistsOpen:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOpenParen) {
        PushSubquery(FramePurpose::kExistsSub);
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kWhereOp:
      if (t.kind == TokenKind::kOperator) {
        f.pending_op = t.op;
        f.phase = BuildPhase::kWhereRhs;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kIn) {
        f.phase = BuildPhase::kInOpen;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kLike) {
        f.phase = BuildPhase::kWhereLikeRhs;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kWhereLikeRhs:
      if (t.kind == TokenKind::kValue && t.value.is_string()) {
        Predicate p;
        p.kind = PredicateKind::kLike;
        p.column = f.pending_column;
        p.value = t.value;
        f.where->predicates.push_back(std::move(p));
        f.phase = BuildPhase::kAfterPredicate;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kWhereRhs:
      if (t.kind == TokenKind::kValue) {
        Predicate p;
        p.kind = PredicateKind::kValue;
        p.column = f.pending_column;
        p.op = f.pending_op;
        p.value = t.value;
        f.where->predicates.push_back(std::move(p));
        f.phase = BuildPhase::kAfterPredicate;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOpenParen) {
        PushSubquery(FramePurpose::kScalarSub);
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kInOpen:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOpenParen) {
        PushSubquery(FramePurpose::kInSub);
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kAfterPredicate:
      if (t.kind == TokenKind::kKeyword &&
          (t.keyword == Keyword::kAnd || t.keyword == Keyword::kOr)) {
        f.where->connectors.push_back(
            t.keyword == Keyword::kAnd ? BoolConn::kAnd : BoolConn::kOr);
        f.phase = BuildPhase::kWherePred;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kGroupBy &&
          f.query != nullptr) {
        f.groupby_remaining.clear();
        for (const SelectItem& it : f.query->items) {
          if (it.agg != AggFunc::kNone) continue;
          if (std::find(f.groupby_remaining.begin(), f.groupby_remaining.end(),
                        it.column) == f.groupby_remaining.end()) {
            f.groupby_remaining.push_back(it.column);
          }
        }
        if (f.groupby_remaining.empty()) return Illegal(t);
        f.phase = BuildPhase::kGroupByColumn;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kCloseParen &&
          !top) {
        return PopSubquery();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOrderBy &&
          top && f.query != nullptr) {
        return EnterOrderBy(t);
      }
      if (t.kind == TokenKind::kEof && top) {
        done_ = true;
        f.phase = BuildPhase::kDone;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kGroupByColumn:
    case BuildPhase::kAfterGroupBy:
      if (t.kind == TokenKind::kColumn) {
        auto it = std::find(f.groupby_remaining.begin(),
                            f.groupby_remaining.end(), t.column);
        if (it == f.groupby_remaining.end()) return Illegal(t);
        f.query->group_by.push_back(t.column);
        f.groupby_remaining.erase(it);
        f.phase = BuildPhase::kAfterGroupBy;
        return Status::Ok();
      }
      if (f.phase == BuildPhase::kAfterGroupBy && f.groupby_remaining.empty()) {
        if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kHaving) {
          f.phase = BuildPhase::kHavingAgg;
          return Status::Ok();
        }
        if (t.kind == TokenKind::kKeyword &&
            t.keyword == Keyword::kCloseParen && !top) {
          return PopSubquery();
        }
        if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOrderBy &&
            top) {
          return EnterOrderBy(t);
        }
        if (t.kind == TokenKind::kEof && top) {
          done_ = true;
          f.phase = BuildPhase::kDone;
          return Status::Ok();
        }
      }
      return Illegal(t);

    case BuildPhase::kHavingAgg:
      if (t.kind == TokenKind::kKeyword && IsAggregateKeyword(t.keyword)) {
        f.query->having = HavingClause{};
        f.query->having->agg = KeywordToAgg(t.keyword);
        f.phase = BuildPhase::kHavingColumn;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kHavingColumn:
      if (t.kind != TokenKind::kColumn) return Illegal(t);
      f.query->having->column = t.column;
      f.phase = BuildPhase::kHavingOp;
      return Status::Ok();

    case BuildPhase::kHavingOp:
      if (t.kind != TokenKind::kOperator) return Illegal(t);
      f.query->having->op = t.op;
      f.phase = BuildPhase::kHavingValue;
      return Status::Ok();

    case BuildPhase::kHavingValue:
      if (t.kind != TokenKind::kValue) return Illegal(t);
      f.query->having->value = t.value;
      f.phase = BuildPhase::kAfterHaving;
      return Status::Ok();

    case BuildPhase::kAfterHaving:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kCloseParen &&
          !top) {
        return PopSubquery();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOrderBy &&
          top) {
        return EnterOrderBy(t);
      }
      if (t.kind == TokenKind::kEof && top) {
        done_ = true;
        f.phase = BuildPhase::kDone;
        return Status::Ok();
      }
      return Illegal(t);

    case BuildPhase::kOrderByColumn:
    case BuildPhase::kAfterOrderBy:
      if (t.kind == TokenKind::kColumn) {
        auto it = std::find(f.orderby_candidates.begin(),
                            f.orderby_candidates.end(), t.column);
        if (it == f.orderby_candidates.end()) return Illegal(t);
        f.query->order_by.push_back(t.column);
        f.orderby_candidates.erase(it);
        f.phase = BuildPhase::kAfterOrderBy;
        return Status::Ok();
      }
      if (f.phase == BuildPhase::kAfterOrderBy && t.kind == TokenKind::kEof &&
          top) {
        done_ = true;
        f.phase = BuildPhase::kDone;
        return Status::Ok();
      }
      return Illegal(t);

    default:
      return Illegal(t);
  }
}

Status AstBuilder::EnterOrderBy(const Token& t) {
  BuildFrame& f = stack_.back();
  f.orderby_candidates.clear();
  for (const SelectItem& it : f.query->items) {
    if (it.agg != AggFunc::kNone) continue;
    if (std::find(f.orderby_candidates.begin(), f.orderby_candidates.end(),
                  it.column) == f.orderby_candidates.end()) {
      f.orderby_candidates.push_back(it.column);
    }
  }
  if (f.orderby_candidates.empty()) return Illegal(t);
  f.phase = BuildPhase::kOrderByColumn;
  return Status::Ok();
}

Status AstBuilder::FeedInsert(const Token& t) {
  BuildFrame& f = stack_.back();
  InsertQuery* ins = ast_.insert.get();
  switch (f.phase) {
    case BuildPhase::kInsertTable:
      if (t.kind != TokenKind::kTable) return Illegal(t);
      ins->table_idx = t.table_idx;
      f.scope_tables = {t.table_idx};
      f.phase = BuildPhase::kAfterInsertTable;
      return Status::Ok();
    case BuildPhase::kAfterInsertTable:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kValues) {
        f.phase = BuildPhase::kInsertValue;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kOpenParen) {
        PushSubquery(FramePurpose::kInsertSource);
        return Status::Ok();
      }
      return Illegal(t);
    case BuildPhase::kInsertValue: {
      if (t.kind != TokenKind::kValue) return Illegal(t);
      ins->values.push_back(t.value);
      size_t ncols = catalog_->table(ins->table_idx).num_columns();
      if (ins->values.size() == ncols) f.phase = BuildPhase::kInsertDone;
      return Status::Ok();
    }
    case BuildPhase::kInsertDone:
      if (t.kind == TokenKind::kEof) {
        done_ = true;
        f.phase = BuildPhase::kDone;
        return Status::Ok();
      }
      return Illegal(t);
    default:
      return Illegal(t);
  }
}

Status AstBuilder::FeedUpdate(const Token& t) {
  BuildFrame& f = stack_.back();
  UpdateQuery* upd = ast_.update.get();
  switch (f.phase) {
    case BuildPhase::kUpdateTable:
      if (t.kind != TokenKind::kTable) return Illegal(t);
      upd->table_idx = t.table_idx;
      f.scope_tables = {t.table_idx};
      f.phase = BuildPhase::kUpdateSetKw;
      return Status::Ok();
    case BuildPhase::kUpdateSetKw:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kSet) {
        f.phase = BuildPhase::kUpdateSetColumn;
        return Status::Ok();
      }
      return Illegal(t);
    case BuildPhase::kUpdateSetColumn:
      if (t.kind != TokenKind::kColumn) return Illegal(t);
      if (t.column.table_idx != upd->table_idx) return Illegal(t);
      upd->set_column = t.column;
      f.phase = BuildPhase::kUpdateSetValue;
      return Status::Ok();
    case BuildPhase::kUpdateSetValue:
      if (t.kind != TokenKind::kValue) return Illegal(t);
      upd->set_value = t.value;
      f.phase = BuildPhase::kUpdateAfterSet;
      return Status::Ok();
    case BuildPhase::kUpdateAfterSet:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kWhere) {
        f.where = &upd->where;
        f.phase = BuildPhase::kWherePred;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kEof) {
        done_ = true;
        f.phase = BuildPhase::kDone;
        return Status::Ok();
      }
      return Illegal(t);
    default:
      return Illegal(t);
  }
}

Status AstBuilder::FeedDelete(const Token& t) {
  BuildFrame& f = stack_.back();
  DeleteQuery* del = ast_.del.get();
  switch (f.phase) {
    case BuildPhase::kDeleteTable:
      if (t.kind != TokenKind::kTable) return Illegal(t);
      del->table_idx = t.table_idx;
      f.scope_tables = {t.table_idx};
      f.phase = BuildPhase::kDeleteAfterTable;
      return Status::Ok();
    case BuildPhase::kDeleteAfterTable:
      if (t.kind == TokenKind::kKeyword && t.keyword == Keyword::kWhere) {
        f.where = &del->where;
        f.phase = BuildPhase::kWherePred;
        return Status::Ok();
      }
      if (t.kind == TokenKind::kEof) {
        done_ = true;
        f.phase = BuildPhase::kDone;
        return Status::Ok();
      }
      return Illegal(t);
    default:
      return Illegal(t);
  }
}

void AstBuilder::PushSubquery(FramePurpose purpose) {
  BuildFrame& parent = stack_.back();
  auto sub = std::make_unique<SelectQuery>();
  BuildFrame child;
  child.purpose = purpose;
  child.phase = BuildPhase::kStart;
  child.query = sub.get();
  child.where = &sub->where;
  child.outer_lhs = parent.pending_column;
  if (purpose == FramePurpose::kInsertSource) {
    child.pinned_table = ast_.insert->table_idx;
  }
  pending_subqueries_.push_back(std::move(sub));
  stack_.push_back(std::move(child));
}

Status AstBuilder::PopSubquery() {
  LSG_CHECK(stack_.size() > 1);
  BuildFrame closing = std::move(stack_.back());
  stack_.pop_back();
  std::unique_ptr<SelectQuery> sub = std::move(pending_subqueries_.back());
  pending_subqueries_.pop_back();
  BuildFrame& parent = stack_.back();

  switch (closing.purpose) {
    case FramePurpose::kScalarSub: {
      Predicate p;
      p.kind = PredicateKind::kScalarSub;
      p.column = parent.pending_column;
      p.op = parent.pending_op;
      p.subquery = std::move(sub);
      parent.where->predicates.push_back(std::move(p));
      parent.phase = BuildPhase::kAfterPredicate;
      return Status::Ok();
    }
    case FramePurpose::kInSub: {
      Predicate p;
      p.kind = PredicateKind::kInSub;
      p.column = parent.pending_column;
      p.op = CompareOp::kEq;
      p.subquery = std::move(sub);
      parent.where->predicates.push_back(std::move(p));
      parent.phase = BuildPhase::kAfterPredicate;
      return Status::Ok();
    }
    case FramePurpose::kExistsSub: {
      Predicate p;
      p.kind = PredicateKind::kExistsSub;
      p.negated = parent.pending_negated;
      p.subquery = std::move(sub);
      parent.where->predicates.push_back(std::move(p));
      parent.pending_negated = false;
      parent.phase = BuildPhase::kAfterPredicate;
      return Status::Ok();
    }
    case FramePurpose::kInsertSource:
      ast_.insert->source = std::move(sub);
      parent.phase = BuildPhase::kInsertDone;
      return Status::Ok();
    case FramePurpose::kTopLevel:
      return Status::Internal("top-level frame cannot be popped");
  }
  return Status::Internal("unknown frame purpose");
}

bool AstBuilder::IsExecutablePrefix() const {
  if (depth() != 1) return false;
  const BuildFrame& f = stack_.back();
  switch (ast_.type) {
    case QueryType::kSelect:
      if (ast_.select == nullptr || ast_.select->items.empty()) return false;
      switch (f.phase) {
        case BuildPhase::kAfterSelectItem:
        case BuildPhase::kAfterPredicate:
        case BuildPhase::kAfterHaving:
        case BuildPhase::kAfterOrderBy:
        case BuildPhase::kDone:
          return true;
        case BuildPhase::kAfterGroupBy:
          return f.groupby_remaining.empty();
        default:
          return false;
      }
    case QueryType::kInsert:
      return f.phase == BuildPhase::kInsertDone || f.phase == BuildPhase::kDone;
    case QueryType::kUpdate:
      return f.phase == BuildPhase::kUpdateAfterSet ||
             f.phase == BuildPhase::kAfterPredicate ||
             f.phase == BuildPhase::kDone;
    case QueryType::kDelete:
      return f.phase == BuildPhase::kDeleteAfterTable ||
             f.phase == BuildPhase::kAfterPredicate ||
             f.phase == BuildPhase::kDone;
  }
  return false;
}

}  // namespace lsg
