#include "sql/token.h"

namespace lsg {

const char* KeywordText(Keyword kw) {
  switch (kw) {
    case Keyword::kSelect:
      return "SELECT";
    case Keyword::kFrom:
      return "FROM";
    case Keyword::kWhere:
      return "WHERE";
    case Keyword::kJoin:
      return "JOIN";
    case Keyword::kGroupBy:
      return "GROUP BY";
    case Keyword::kHaving:
      return "HAVING";
    case Keyword::kOrderBy:
      return "ORDER BY";
    case Keyword::kMax:
      return "MAX";
    case Keyword::kMin:
      return "MIN";
    case Keyword::kSum:
      return "SUM";
    case Keyword::kAvg:
      return "AVG";
    case Keyword::kCount:
      return "COUNT";
    case Keyword::kExists:
      return "EXISTS";
    case Keyword::kIn:
      return "IN";
    case Keyword::kAnd:
      return "AND";
    case Keyword::kOr:
      return "OR";
    case Keyword::kNot:
      return "NOT";
    case Keyword::kInsert:
      return "INSERT INTO";
    case Keyword::kValues:
      return "VALUES";
    case Keyword::kUpdate:
      return "UPDATE";
    case Keyword::kSet:
      return "SET";
    case Keyword::kDelete:
      return "DELETE FROM";
    case Keyword::kOpenParen:
      return "(";
    case Keyword::kCloseParen:
      return ")";
    case Keyword::kLike:
      return "LIKE";
    case Keyword::kNumKeywords:
      return "?";
  }
  return "?";
}

const char* CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kNumOps:
      return "?";
  }
  return "?";
}

bool IsAggregateKeyword(Keyword kw) {
  return kw == Keyword::kMax || kw == Keyword::kMin || kw == Keyword::kSum ||
         kw == Keyword::kAvg || kw == Keyword::kCount;
}

}  // namespace lsg
