#include "sql/render.h"

#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

std::string RenderColumn(const ColumnRef& col, const Catalog& catalog) {
  if (col.table_idx < 0 || col.column_idx < 0) return "?";
  const TableSchema& t = catalog.table(col.table_idx);
  return t.name() + "." + t.column(col.column_idx).name;
}

namespace {

std::string RenderItem(const SelectItem& item, const Catalog& catalog) {
  std::string col = RenderColumn(item.column, catalog);
  if (item.agg == AggFunc::kNone) return col;
  return std::string(AggFuncName(item.agg)) + "(" + col + ")";
}

std::string RenderFrom(const std::vector<int>& tables,
                       const Catalog& catalog) {
  if (tables.empty()) return "";
  std::string out = catalog.table(tables[0]).name();
  for (size_t i = 1; i < tables.size(); ++i) {
    const std::string& name = catalog.table(tables[i]).name();
    out += " JOIN " + name;
    // Find a join condition to any earlier table in the chain.
    bool found = false;
    for (size_t j = 0; j < i && !found; ++j) {
      for (const ForeignKey& fk :
           catalog.JoinEdges(catalog.table(tables[j]).name(), name)) {
        out += " ON " + fk.from_table + "." + fk.from_column + " = " +
               fk.to_table + "." + fk.to_column;
        found = true;
        break;
      }
    }
    if (!found) out += " ON TRUE";  // cross join fallback (FSM prevents it)
  }
  return out;
}

std::string RenderWhere(const WhereClause& where, const Catalog& catalog) {
  if (where.empty()) return "";
  std::string out;
  for (size_t i = 0; i < where.predicates.size(); ++i) {
    if (i > 0) {
      out += where.connectors[i - 1] == BoolConn::kAnd ? " AND " : " OR ";
    }
    const Predicate& p = where.predicates[i];
    switch (p.kind) {
      case PredicateKind::kValue:
        out += RenderColumn(p.column, catalog) + " " + CompareOpText(p.op) +
               " " + p.value.ToSqlLiteral();
        break;
      case PredicateKind::kScalarSub:
        out += RenderColumn(p.column, catalog) + " " + CompareOpText(p.op) +
               " (" + RenderSelect(*p.subquery, catalog) + ")";
        break;
      case PredicateKind::kInSub:
        out += RenderColumn(p.column, catalog) + " IN (" +
               RenderSelect(*p.subquery, catalog) + ")";
        break;
      case PredicateKind::kExistsSub:
        out += std::string(p.negated ? "NOT " : "") + "EXISTS (" +
               RenderSelect(*p.subquery, catalog) + ")";
        break;
      case PredicateKind::kLike:
        out += RenderColumn(p.column, catalog) + " LIKE " +
               p.value.ToSqlLiteral();
        break;
    }
  }
  return out;
}

}  // namespace

std::string RenderSelect(const SelectQuery& q, const Catalog& catalog) {
  std::vector<std::string> items;
  items.reserve(q.items.size());
  for (const SelectItem& it : q.items) items.push_back(RenderItem(it, catalog));
  std::string out = "SELECT " + Join(items, ", ");
  out += " FROM " + RenderFrom(q.tables, catalog);
  std::string where = RenderWhere(q.where, catalog);
  if (!where.empty()) out += " WHERE " + where;
  if (!q.group_by.empty()) {
    std::vector<std::string> cols;
    cols.reserve(q.group_by.size());
    for (const ColumnRef& c : q.group_by) {
      cols.push_back(RenderColumn(c, catalog));
    }
    out += " GROUP BY " + Join(cols, ", ");
  }
  if (q.having.has_value()) {
    out += " HAVING " + std::string(AggFuncName(q.having->agg)) + "(" +
           RenderColumn(q.having->column, catalog) + ") " +
           CompareOpText(q.having->op) + " " + q.having->value.ToSqlLiteral();
  }
  if (!q.order_by.empty()) {
    std::vector<std::string> cols;
    cols.reserve(q.order_by.size());
    for (const ColumnRef& c : q.order_by) {
      cols.push_back(RenderColumn(c, catalog));
    }
    out += " ORDER BY " + Join(cols, ", ");
  }
  return out;
}

std::string RenderSql(const QueryAst& ast, const Catalog& catalog) {
  switch (ast.type) {
    case QueryType::kSelect:
      if (ast.select == nullptr) return "";
      return RenderSelect(*ast.select, catalog);
    case QueryType::kInsert: {
      if (ast.insert == nullptr) return "";
      const InsertQuery& ins = *ast.insert;
      std::string out = "INSERT INTO " + catalog.table(ins.table_idx).name();
      if (ins.source != nullptr) {
        out += " " + RenderSelect(*ins.source, catalog);
      } else {
        std::vector<std::string> vals;
        vals.reserve(ins.values.size());
        for (const Value& v : ins.values) vals.push_back(v.ToSqlLiteral());
        out += " VALUES (" + Join(vals, ", ") + ")";
      }
      return out;
    }
    case QueryType::kUpdate: {
      if (ast.update == nullptr) return "";
      const UpdateQuery& upd = *ast.update;
      std::string out = "UPDATE " + catalog.table(upd.table_idx).name() +
                        " SET " +
                        catalog.table(upd.table_idx)
                            .column(upd.set_column.column_idx)
                            .name +
                        " = " + upd.set_value.ToSqlLiteral();
      std::string where = RenderWhere(upd.where, catalog);
      if (!where.empty()) out += " WHERE " + where;
      return out;
    }
    case QueryType::kDelete: {
      if (ast.del == nullptr) return "";
      std::string out = "DELETE FROM " + catalog.table(ast.del->table_idx).name();
      std::string where = RenderWhere(ast.del->where, catalog);
      if (!where.empty()) out += " WHERE " + where;
      return out;
    }
  }
  return "";
}

}  // namespace lsg
