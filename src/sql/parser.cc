#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"

namespace lsg {
namespace {

enum class LexKind { kIdent, kNumber, kString, kPunct, kEnd };

struct Lexeme {
  LexKind kind = LexKind::kEnd;
  std::string text;   ///< ident (upper-cased copy in `upper`), punct, string
  std::string upper;  ///< for idents/keywords
  double number = 0;
  bool is_int = false;
  size_t pos = 0;
};

/// Hand-rolled lexer for the rendered dialect.
class Lexer {
 public:
  static StatusOr<std::vector<Lexeme>> Tokenize(const std::string& s) {
    std::vector<Lexeme> out;
    size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Lexeme lx;
      lx.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) ||
                s[j] == '_')) {
          ++j;
        }
        lx.kind = LexKind::kIdent;
        lx.text = s.substr(i, j - i);
        lx.upper = ToUpper(lx.text);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < s.size() &&
                  (std::isdigit(static_cast<unsigned char>(s[i + 1])) ||
                   s[i + 1] == '.'))) {
        size_t j = i + 1;
        bool is_int = true;
        while (j < s.size()) {
          char d = s[j];
          if (std::isdigit(static_cast<unsigned char>(d))) {
            ++j;
          } else if (d == '.' || d == 'e' || d == 'E' ||
                     ((d == '+' || d == '-') &&
                      (s[j - 1] == 'e' || s[j - 1] == 'E'))) {
            is_int = false;
            ++j;
          } else {
            break;
          }
        }
        lx.kind = LexKind::kNumber;
        lx.text = s.substr(i, j - i);
        lx.number = std::strtod(lx.text.c_str(), nullptr);
        lx.is_int = is_int;
        i = j;
      } else if (c == '\'') {
        // SQL string literal; '' escapes a quote.
        std::string val;
        size_t j = i + 1;
        bool closed = false;
        while (j < s.size()) {
          if (s[j] == '\'') {
            if (j + 1 < s.size() && s[j + 1] == '\'') {
              val += '\'';
              j += 2;
              continue;
            }
            closed = true;
            ++j;
            break;
          }
          val += s[j];
          ++j;
        }
        if (!closed) {
          return Status::InvalidArgument(
              StrFormat("unterminated string at %zu", i));
        }
        lx.kind = LexKind::kString;
        lx.text = std::move(val);
        i = j;
      } else {
        // Punctuation / operators (longest match first).
        static const char* kTwo[] = {"<=", ">=", "<>"};
        lx.kind = LexKind::kPunct;
        lx.text = std::string(1, c);
        for (const char* two : kTwo) {
          if (s.compare(i, 2, two) == 0) {
            lx.text = two;
            break;
          }
        }
        i += lx.text.size();
      }
      out.push_back(std::move(lx));
    }
    Lexeme end;
    end.kind = LexKind::kEnd;
    end.pos = s.size();
    out.push_back(std::move(end));
    return out;
  }
};

class Parser {
 public:
  Parser(std::vector<Lexeme> lex, const Catalog* catalog)
      : lex_(std::move(lex)), catalog_(catalog) {}

  StatusOr<QueryAst> Parse() {
    QueryAst ast;
    if (AcceptKw("SELECT")) {
      --i_;  // ParseSelect expects to consume SELECT itself
      auto sel = ParseSelect();
      if (!sel.ok()) return sel.status();
      ast.type = QueryType::kSelect;
      ast.select = std::make_unique<SelectQuery>(std::move(sel).value());
    } else if (AcceptKw("INSERT")) {
      LSG_RETURN_IF_ERROR(ExpectKw("INTO"));
      LSG_ASSIGN_OR_RETURN(int table, ExpectTable());
      ast.type = QueryType::kInsert;
      ast.insert = std::make_unique<InsertQuery>();
      ast.insert->table_idx = table;
      if (AcceptKw("VALUES")) {
        LSG_RETURN_IF_ERROR(ExpectPunct("("));
        while (true) {
          LSG_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
          ast.insert->values.push_back(std::move(v));
          if (!AcceptPunct(",")) break;
        }
        LSG_RETURN_IF_ERROR(ExpectPunct(")"));
      } else {
        auto sel = ParseSelect();
        if (!sel.ok()) return sel.status();
        ast.insert->source =
            std::make_unique<SelectQuery>(std::move(sel).value());
      }
    } else if (AcceptKw("UPDATE")) {
      LSG_ASSIGN_OR_RETURN(int table, ExpectTable());
      ast.type = QueryType::kUpdate;
      ast.update = std::make_unique<UpdateQuery>();
      ast.update->table_idx = table;
      LSG_RETURN_IF_ERROR(ExpectKw("SET"));
      // Bare column name scoped to the target table.
      if (Cur().kind != LexKind::kIdent) return Err("expected column");
      int col = catalog_->table(table).FindColumn(Cur().text);
      if (col < 0) return Err("unknown column " + Cur().text);
      ++i_;
      ast.update->set_column = {table, col};
      LSG_RETURN_IF_ERROR(ExpectPunct("="));
      LSG_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
      ast.update->set_value = std::move(v);
      if (AcceptKw("WHERE")) {
        LSG_RETURN_IF_ERROR(ParseWhere(&ast.update->where));
      }
    } else if (AcceptKw("DELETE")) {
      LSG_RETURN_IF_ERROR(ExpectKw("FROM"));
      LSG_ASSIGN_OR_RETURN(int table, ExpectTable());
      ast.type = QueryType::kDelete;
      ast.del = std::make_unique<DeleteQuery>();
      ast.del->table_idx = table;
      if (AcceptKw("WHERE")) {
        LSG_RETURN_IF_ERROR(ParseWhere(&ast.del->where));
      }
    } else {
      return Err("expected SELECT/INSERT/UPDATE/DELETE");
    }
    if (Cur().kind != LexKind::kEnd) return Err("trailing tokens");
    return ast;
  }

 private:
  const Lexeme& Cur() const { return lex_[i_]; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("parse error at %zu: %s", Cur().pos, msg.c_str()));
  }

  bool AcceptKw(const char* kw) {
    if (Cur().kind == LexKind::kIdent && Cur().upper == kw) {
      ++i_;
      return true;
    }
    return false;
  }

  Status ExpectKw(const char* kw) {
    if (!AcceptKw(kw)) return Err(StrFormat("expected %s", kw));
    return Status::Ok();
  }

  bool AcceptPunct(const char* p) {
    if (Cur().kind == LexKind::kPunct && Cur().text == p) {
      ++i_;
      return true;
    }
    return false;
  }

  Status ExpectPunct(const char* p) {
    if (!AcceptPunct(p)) return Err(StrFormat("expected '%s'", p));
    return Status::Ok();
  }

  StatusOr<int> ExpectTable() {
    if (Cur().kind != LexKind::kIdent) return Err("expected table name");
    int t = catalog_->FindTable(Cur().text);
    if (t < 0) return Err("unknown table " + Cur().text);
    ++i_;
    return t;
  }

  /// "Table.column" -> resolved ColumnRef.
  StatusOr<ColumnRef> ExpectQualifiedColumn() {
    if (Cur().kind != LexKind::kIdent) return Err("expected Table.column");
    std::string table = Cur().text;
    ++i_;
    LSG_RETURN_IF_ERROR(ExpectPunct("."));
    if (Cur().kind != LexKind::kIdent) return Err("expected column name");
    std::string column = Cur().text;
    ++i_;
    int t = catalog_->FindTable(table);
    if (t < 0) return Err("unknown table " + table);
    int c = catalog_->table(t).FindColumn(column);
    if (c < 0) return Err("unknown column " + table + "." + column);
    return ColumnRef{t, c};
  }

  StatusOr<Value> ExpectLiteral() {
    if (Cur().kind == LexKind::kNumber) {
      Value v = Cur().is_int ? Value(static_cast<int64_t>(Cur().number))
                             : Value(Cur().number);
      ++i_;
      return v;
    }
    if (Cur().kind == LexKind::kString) {
      Value v{Cur().text};
      ++i_;
      return v;
    }
    if (AcceptKw("NULL")) return Value::Null();
    return Err("expected literal");
  }

  StatusOr<AggFunc> AcceptAgg() {
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"MAX", AggFunc::kMax},     {"MIN", AggFunc::kMin},
        {"SUM", AggFunc::kSum},     {"AVG", AggFunc::kAvg},
        {"COUNT", AggFunc::kCount},
    };
    for (const auto& [kw, agg] : kAggs) {
      if (Cur().kind == LexKind::kIdent && Cur().upper == kw &&
          lex_[i_ + 1].kind == LexKind::kPunct && lex_[i_ + 1].text == "(") {
        ++i_;
        return agg;
      }
    }
    return AggFunc::kNone;
  }

  StatusOr<CompareOp> ExpectOperator() {
    if (Cur().kind != LexKind::kPunct) return Err("expected operator");
    static const std::pair<const char*, CompareOp> kOps[] = {
        {"<=", CompareOp::kLe}, {">=", CompareOp::kGe}, {"<>", CompareOp::kNe},
        {"<", CompareOp::kLt},  {">", CompareOp::kGt},  {"=", CompareOp::kEq},
    };
    for (const auto& [txt, op] : kOps) {
      if (Cur().text == txt) {
        ++i_;
        return op;
      }
    }
    return Err("unknown operator " + Cur().text);
  }

  StatusOr<SelectQuery> ParseSelect() {
    SelectQuery q;
    LSG_RETURN_IF_ERROR(ExpectKw("SELECT"));
    while (true) {
      LSG_ASSIGN_OR_RETURN(AggFunc agg, AcceptAgg());
      SelectItem item;
      item.agg = agg;
      if (agg != AggFunc::kNone) {
        LSG_RETURN_IF_ERROR(ExpectPunct("("));
        LSG_ASSIGN_OR_RETURN(item.column, ExpectQualifiedColumn());
        LSG_RETURN_IF_ERROR(ExpectPunct(")"));
      } else {
        LSG_ASSIGN_OR_RETURN(item.column, ExpectQualifiedColumn());
      }
      q.items.push_back(item);
      if (!AcceptPunct(",")) break;
    }
    LSG_RETURN_IF_ERROR(ExpectKw("FROM"));
    LSG_ASSIGN_OR_RETURN(int anchor, ExpectTable());
    q.tables.push_back(anchor);
    while (AcceptKw("JOIN")) {
      LSG_ASSIGN_OR_RETURN(int t, ExpectTable());
      q.tables.push_back(t);
      LSG_RETURN_IF_ERROR(ExpectKw("ON"));
      if (AcceptKw("TRUE")) continue;  // cross-join fallback form
      // "T.a = T.b" — validated for resolvability, then discarded: the
      // engine derives join keys from the FK graph.
      LSG_RETURN_IF_ERROR(ExpectQualifiedColumn().status());
      LSG_RETURN_IF_ERROR(ExpectPunct("="));
      LSG_RETURN_IF_ERROR(ExpectQualifiedColumn().status());
    }
    if (AcceptKw("WHERE")) LSG_RETURN_IF_ERROR(ParseWhere(&q.where));
    if (AcceptKw("GROUP")) {
      LSG_RETURN_IF_ERROR(ExpectKw("BY"));
      while (true) {
        LSG_ASSIGN_OR_RETURN(ColumnRef c, ExpectQualifiedColumn());
        q.group_by.push_back(c);
        if (!AcceptPunct(",")) break;
      }
    }
    if (AcceptKw("HAVING")) {
      HavingClause h;
      LSG_ASSIGN_OR_RETURN(AggFunc agg, AcceptAgg());
      if (agg == AggFunc::kNone) return Err("expected aggregate in HAVING");
      h.agg = agg;
      LSG_RETURN_IF_ERROR(ExpectPunct("("));
      LSG_ASSIGN_OR_RETURN(h.column, ExpectQualifiedColumn());
      LSG_RETURN_IF_ERROR(ExpectPunct(")"));
      LSG_ASSIGN_OR_RETURN(h.op, ExpectOperator());
      LSG_ASSIGN_OR_RETURN(h.value, ExpectLiteral());
      q.having = std::move(h);
    }
    if (AcceptKw("ORDER")) {
      LSG_RETURN_IF_ERROR(ExpectKw("BY"));
      while (true) {
        LSG_ASSIGN_OR_RETURN(ColumnRef c, ExpectQualifiedColumn());
        q.order_by.push_back(c);
        if (!AcceptPunct(",")) break;
      }
    }
    return q;
  }

  Status ParseWhere(WhereClause* where) {
    while (true) {
      LSG_RETURN_IF_ERROR(ParsePredicate(where));
      if (AcceptKw("AND")) {
        where->connectors.push_back(BoolConn::kAnd);
      } else if (AcceptKw("OR")) {
        where->connectors.push_back(BoolConn::kOr);
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Status ParsePredicate(WhereClause* where) {
    Predicate p;
    if (AcceptKw("NOT")) {
      LSG_RETURN_IF_ERROR(ExpectKw("EXISTS"));
      p.kind = PredicateKind::kExistsSub;
      p.negated = true;
      LSG_RETURN_IF_ERROR(ParseParenSubquery(&p));
      where->predicates.push_back(std::move(p));
      return Status::Ok();
    }
    if (AcceptKw("EXISTS")) {
      p.kind = PredicateKind::kExistsSub;
      LSG_RETURN_IF_ERROR(ParseParenSubquery(&p));
      where->predicates.push_back(std::move(p));
      return Status::Ok();
    }
    LSG_ASSIGN_OR_RETURN(p.column, ExpectQualifiedColumn());
    if (AcceptKw("IN")) {
      p.kind = PredicateKind::kInSub;
      LSG_RETURN_IF_ERROR(ParseParenSubquery(&p));
    } else if (AcceptKw("LIKE")) {
      p.kind = PredicateKind::kLike;
      if (Cur().kind != LexKind::kString) return Err("expected LIKE pattern");
      p.value = Value(Cur().text);
      ++i_;
    } else {
      LSG_ASSIGN_OR_RETURN(p.op, ExpectOperator());
      if (Cur().kind == LexKind::kPunct && Cur().text == "(") {
        p.kind = PredicateKind::kScalarSub;
        LSG_RETURN_IF_ERROR(ParseParenSubquery(&p));
      } else {
        p.kind = PredicateKind::kValue;
        LSG_ASSIGN_OR_RETURN(p.value, ExpectLiteral());
      }
    }
    where->predicates.push_back(std::move(p));
    return Status::Ok();
  }

  Status ParseParenSubquery(Predicate* p) {
    LSG_RETURN_IF_ERROR(ExpectPunct("("));
    auto sel = ParseSelect();
    if (!sel.ok()) return sel.status();
    p->subquery = std::make_unique<SelectQuery>(std::move(sel).value());
    LSG_RETURN_IF_ERROR(ExpectPunct(")"));
    return Status::Ok();
  }

  std::vector<Lexeme> lex_;
  const Catalog* catalog_;
  size_t i_ = 0;
};

}  // namespace

StatusOr<QueryAst> ParseSql(const std::string& sql, const Catalog& catalog) {
  auto lex = Lexer::Tokenize(sql);
  if (!lex.ok()) return lex.status();
  Parser parser(std::move(lex).value(), &catalog);
  return parser.Parse();
}

}  // namespace lsg
