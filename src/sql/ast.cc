#include "sql/ast.h"

#include <algorithm>

namespace lsg {

const char* AggFuncName(AggFunc agg) {
  switch (agg) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCount:
      return "COUNT";
  }
  return "";
}

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kSelect:
      return "SELECT";
    case QueryType::kInsert:
      return "INSERT";
    case QueryType::kUpdate:
      return "UPDATE";
    case QueryType::kDelete:
      return "DELETE";
  }
  return "?";
}

Predicate::Predicate() = default;
Predicate::~Predicate() = default;
Predicate::Predicate(Predicate&&) noexcept = default;
Predicate& Predicate::operator=(Predicate&&) noexcept = default;

QueryAst::QueryAst() = default;
QueryAst::~QueryAst() = default;
QueryAst::QueryAst(QueryAst&&) noexcept = default;
QueryAst& QueryAst::operator=(QueryAst&&) noexcept = default;

bool SelectQuery::HasAggregate() const {
  return std::any_of(items.begin(), items.end(), [](const SelectItem& it) {
    return it.agg != AggFunc::kNone;
  });
}

int SelectQuery::NumJoins() const {
  return tables.empty() ? 0 : static_cast<int>(tables.size()) - 1;
}

namespace {
int PredicatesIn(const WhereClause& where) {
  int n = static_cast<int>(where.predicates.size());
  for (const Predicate& p : where.predicates) {
    if (p.subquery) n += p.subquery->TotalPredicates();
  }
  return n;
}
}  // namespace

int SelectQuery::TotalPredicates() const { return PredicatesIn(where); }

bool SelectQuery::HasNested() const {
  return std::any_of(
      where.predicates.begin(), where.predicates.end(),
      [](const Predicate& p) { return p.subquery != nullptr; });
}

int SelectQuery::NestingDepth() const {
  int depth = 0;
  for (const Predicate& p : where.predicates) {
    if (p.subquery) depth = std::max(depth, 1 + p.subquery->NestingDepth());
  }
  return depth;
}

}  // namespace lsg
