#ifndef LEARNEDSQLGEN_SQL_TOKEN_H_
#define LEARNEDSQLGEN_SQL_TOKEN_H_

#include <cstdint>
#include <string>

#include "catalog/value.h"

namespace lsg {

/// The five token (action) categories of the paper (§4.1): reserved words,
/// schema metadata (tables/columns), cell values, operators, and EOF.
enum class TokenKind {
  kKeyword = 0,
  kTable = 1,
  kColumn = 2,
  kValue = 3,
  kOperator = 4,
  kEof = 5,
};

/// Reserved words. OpenParen/CloseParen delimit nested subqueries in the
/// token stream (the paper's FSM models nesting as a branch; a linear token
/// encoding needs explicit delimiters).
enum class Keyword {
  kSelect = 0,
  kFrom,
  kWhere,
  kJoin,
  kGroupBy,
  kHaving,
  kOrderBy,
  kMax,
  kMin,
  kSum,
  kAvg,
  kCount,
  kExists,
  kIn,
  kAnd,
  kOr,
  kNot,
  kInsert,
  kValues,
  kUpdate,
  kSet,
  kDelete,
  kOpenParen,
  kCloseParen,
  /// LIKE patterns — the paper's §5 "future work", implemented here:
  /// pattern literals are substrings sampled from string columns wrapped
  /// in '%' wildcards.
  kLike,
  kNumKeywords,  // sentinel
};

/// Comparison operators; the paper supports {>, =, <, >=, <=} plus <> in the
/// grammar table.
enum class CompareOp {
  kLt = 0,
  kGt,
  kEq,
  kLe,
  kGe,
  kNe,
  kNumOps,  // sentinel
};

/// SQL text of a keyword ("SELECT", "GROUP BY", ...).
const char* KeywordText(Keyword kw);

/// SQL text of an operator ("<", ">=", ...).
const char* CompareOpText(CompareOp op);

/// True for MAX/MIN/SUM/AVG/COUNT.
bool IsAggregateKeyword(Keyword kw);

/// A reference to table `table_idx`'s column `column_idx` in a catalog.
struct ColumnRef {
  int table_idx = -1;
  int column_idx = -1;

  bool operator==(const ColumnRef& o) const {
    return table_idx == o.table_idx && column_idx == o.column_idx;
  }
};

/// One action-space entry. `id` is the position in the Vocabulary and is the
/// one-hot index used by the networks.
struct Token {
  int id = -1;
  TokenKind kind = TokenKind::kEof;

  // Populated according to kind:
  Keyword keyword = Keyword::kSelect;  // kKeyword
  int table_idx = -1;                  // kTable
  ColumnRef column;                    // kColumn
  Value value;                         // kValue
  int value_column_table = -1;         // kValue: owning column
  int value_column_idx = -1;
  /// kValue: true for LIKE pattern literals ('%sub%' substring samples).
  bool is_pattern = false;
  CompareOp op = CompareOp::kEq;       // kOperator

  /// Rendered form used in SQL text and debug output.
  std::string text;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SQL_TOKEN_H_
