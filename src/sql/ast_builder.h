#ifndef LEARNEDSQLGEN_SQL_AST_BUILDER_H_
#define LEARNEDSQLGEN_SQL_AST_BUILDER_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace lsg {

/// Grammar position of the current (innermost) query frame. The builder is a
/// deterministic pushdown machine: each fed token either advances the phase,
/// pushes a subquery frame (OpenParen), or pops one (CloseParen).
enum class BuildPhase {
  kStart = 0,         ///< expect FROM / INSERT / UPDATE / DELETE
  kFromTable,         ///< expect a table token
  kAfterFromTable,    ///< expect JOIN or SELECT
  kJoinTable,         ///< expect a joinable table token
  kSelectItem,        ///< expect a column or aggregate keyword
  kAggColumn,         ///< after agg keyword: expect a column
  kAfterSelectItem,   ///< more items | WHERE | GROUP BY | EOF | ')'
  kWherePred,         ///< expect column | NOT | EXISTS
  kAfterNot,          ///< expect EXISTS
  kExistsOpen,        ///< expect '('
  kWhereOp,           ///< expect operator | IN
  kWhereRhs,          ///< expect value | '(' (scalar subquery)
  kWhereLikeRhs,      ///< expect a pattern literal (after LIKE)
  kInOpen,            ///< expect '(' (after IN)
  kAfterPredicate,    ///< AND | OR | GROUP BY | EOF | ')'
  kGroupByColumn,     ///< expect a group-by column
  kAfterGroupBy,      ///< more group cols | HAVING | EOF | ')'
  kHavingAgg,         ///< expect aggregate keyword
  kHavingColumn,      ///< expect column
  kHavingOp,          ///< expect operator
  kHavingValue,       ///< expect value
  kAfterHaving,       ///< EOF | ')' | ORDER BY
  kOrderByColumn,     ///< expect an order-by column
  kAfterOrderBy,      ///< more order cols | EOF
  kInsertTable,       ///< expect table token
  kAfterInsertTable,  ///< VALUES | '(' (INSERT ... SELECT)
  kInsertValue,       ///< expect value for the next column in order
  kInsertDone,        ///< expect EOF
  kUpdateTable,       ///< expect table token
  kUpdateSetKw,       ///< expect SET
  kUpdateSetColumn,   ///< expect a settable column
  kUpdateSetValue,    ///< expect value for the set column
  kUpdateAfterSet,    ///< WHERE | EOF
  kDeleteTable,       ///< expect table token
  kDeleteAfterTable,  ///< WHERE | EOF
  kDone,              ///< EOF consumed at top level
};

const char* BuildPhaseName(BuildPhase phase);

/// Why a subquery frame exists; drives semantic masking inside it.
enum class FramePurpose {
  kTopLevel = 0,
  kScalarSub,    ///< rhs of `col op (SELECT agg(x) ...)`
  kInSub,        ///< rhs of `col IN (SELECT x ...)`
  kExistsSub,    ///< `[NOT] EXISTS (SELECT x ...)`
  kInsertSource, ///< source of `INSERT INTO t SELECT ...`
};

/// One query frame on the build stack. Frame 0 is the outer query; each
/// subquery pushes another frame.
struct BuildFrame {
  FramePurpose purpose = FramePurpose::kTopLevel;
  BuildPhase phase = BuildPhase::kStart;

  /// The SELECT under construction (null for the DML portions of the top
  /// frame: UPDATE/DELETE build `where` directly, INSERT builds values).
  SelectQuery* query = nullptr;

  /// WHERE clause currently being extended (select's or the DML one).
  WhereClause* where = nullptr;

  /// Tables whose columns are in scope (mirrors query->tables, or the DML
  /// target table).
  std::vector<int> scope_tables;

  // --- pending pieces of the construct being parsed ---
  AggFunc pending_agg = AggFunc::kNone;
  ColumnRef pending_column;
  CompareOp pending_op = CompareOp::kEq;
  bool pending_negated = false;

  /// Outer predicate's lhs column (for kScalarSub/kInSub type matching).
  ColumnRef outer_lhs;

  /// For kInsertSource: table whose columns must be projected in order.
  int pinned_table = -1;
  int insert_next_col = 0;

  /// Non-aggregated select columns not yet listed in GROUP BY; HAVING/EOF
  /// become legal only once this is empty (guarantees semantic validity).
  std::vector<ColumnRef> groupby_remaining;

  /// Select-item columns still available to ORDER BY.
  std::vector<ColumnRef> orderby_candidates;
};

/// Incrementally turns the generated token stream into a QueryAst. Returns
/// InvalidArgument from Feed() when a token is structurally illegal at the
/// current phase — the FSM's masks make that unreachable during generation,
/// but the builder stays safe when driven directly (e.g. in tests).
class AstBuilder {
 public:
  explicit AstBuilder(const Catalog* catalog);

  AstBuilder(AstBuilder&&) noexcept = default;
  AstBuilder& operator=(AstBuilder&&) noexcept = default;

  /// Consumes the next token.
  Status Feed(const Token& token);

  /// True once EOF was consumed at the top level.
  bool done() const { return done_; }

  /// Current (innermost) frame and phase.
  const BuildFrame& frame() const { return stack_.back(); }
  /// Full frame stack, outermost first (state abstraction in src/analysis).
  const std::vector<BuildFrame>& frames() const { return stack_; }
  BuildPhase phase() const { return stack_.back().phase; }
  int depth() const { return static_cast<int>(stack_.size()); }

  /// The (possibly partial) AST.
  const QueryAst& ast() const { return ast_; }
  QueryAst TakeAst();

  /// Tokens consumed so far — this is the RL state (paper §4.1).
  const std::vector<Token>& tokens() const { return tokens_; }

  /// True if the current prefix is a well-formed, executable query
  /// (paper §3.2: partial executable queries receive rewards too).
  bool IsExecutablePrefix() const;

  const Catalog* catalog() const { return catalog_; }

 private:
  Status FeedStart(const Token& t);
  Status FeedSelectFrame(const Token& t);
  Status FeedInsert(const Token& t);
  Status FeedUpdate(const Token& t);
  Status FeedDelete(const Token& t);

  /// Enters the ORDER BY clause: computes the candidate columns and moves
  /// to kOrderByColumn (Illegal if no plain item column exists).
  Status EnterOrderBy(const Token& t);

  /// Pushes a subquery frame whose result attaches to the current pending
  /// predicate (or insert source).
  void PushSubquery(FramePurpose purpose);
  /// Pops the innermost frame, attaching its query to the parent.
  Status PopSubquery();

  Status Illegal(const Token& t) const;

  const Catalog* catalog_;
  QueryAst ast_;
  /// Owning storage for subqueries while they are being built.
  std::vector<std::unique_ptr<SelectQuery>> pending_subqueries_;
  std::vector<BuildFrame> stack_;
  std::vector<Token> tokens_;
  bool done_ = false;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SQL_AST_BUILDER_H_
