#ifndef LEARNEDSQLGEN_SQL_RENDER_H_
#define LEARNEDSQLGEN_SQL_RENDER_H_

#include <string>

#include "catalog/catalog.h"
#include "sql/ast.h"

namespace lsg {

/// Renders a complete (or executable-prefix) AST as standard SQL text.
/// JOINs are rendered with explicit ON conditions resolved from the
/// catalog's FK graph (the paper's FSM "automatically adds join keys").
std::string RenderSql(const QueryAst& ast, const Catalog& catalog);

/// Renders just a SELECT query (used for subqueries and partial queries).
std::string RenderSelect(const SelectQuery& q, const Catalog& catalog);

/// Renders a column as "Table.column".
std::string RenderColumn(const ColumnRef& col, const Catalog& catalog);

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SQL_RENDER_H_
