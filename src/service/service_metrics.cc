#include "service/service_metrics.h"

#include "common/string_util.h"

namespace lsg {

namespace {
// Resolves the backing registry before the reference members bind: either
// the caller's shared registry, or a fresh private one (ownership is
// captured into `owned` so the ctor initializer list stays exception-safe).
obs::MetricsRegistry* ResolveRegistry(
    obs::MetricsRegistry* external,
    std::unique_ptr<obs::MetricsRegistry>& owned) {
  if (external != nullptr) return external;
  owned = std::make_unique<obs::MetricsRegistry>();
  return owned.get();
}
}  // namespace

ServiceMetrics::ServiceMetrics(obs::MetricsRegistry* registry)
    : registry_(ResolveRegistry(registry, owned_registry_)),
      requests_submitted(registry_->GetCounter("service.requests_submitted")),
      requests_rejected(registry_->GetCounter("service.requests_rejected")),
      requests_rejected_queue_full(
          registry_->GetCounter("service.requests_rejected_queue_full")),
      requests_rejected_shutdown(
          registry_->GetCounter("service.requests_rejected_shutdown")),
      requests_completed(registry_->GetCounter("service.requests_completed")),
      requests_failed(registry_->GetCounter("service.requests_failed")),
      cache_hits(registry_->GetCounter("service.cache_hits")),
      cache_misses(registry_->GetCounter("service.cache_misses")),
      trainings(registry_->GetCounter("service.trainings")),
      disk_warm_starts(registry_->GetCounter("service.disk_warm_starts")),
      evictions(registry_->GetCounter("service.evictions")),
      dedup_waits(registry_->GetCounter("service.dedup_waits")),
      attempts(registry_->GetCounter("service.attempts")),
      queries_generated(registry_->GetCounter("service.queries_generated")),
      queries_satisfied(registry_->GetCounter("service.queries_satisfied")),
      train_micros(registry_->GetCounter("service.train_micros")),
      generate_micros(registry_->GetCounter("service.generate_micros")),
      queue_micros(registry_->GetCounter("service.queue_micros")),
      busy_micros(registry_->GetCounter("service.busy_micros")),
      queue_wait_ns(registry_->GetHistogram("service.queue_wait_ns")),
      handle_ns(registry_->GetHistogram("service.handle_ns")),
      batch_size(registry_->GetHistogram("service.batch_size")) {}

ServiceMetricsSnapshot ServiceMetrics::Snapshot() const {
  ServiceMetricsSnapshot s;
  s.requests_submitted = requests_submitted.Value();
  s.requests_rejected = requests_rejected.Value();
  s.requests_rejected_queue_full = requests_rejected_queue_full.Value();
  s.requests_rejected_shutdown = requests_rejected_shutdown.Value();
  s.requests_completed = requests_completed.Value();
  s.requests_failed = requests_failed.Value();
  s.cache_hits = cache_hits.Value();
  s.cache_misses = cache_misses.Value();
  s.trainings = trainings.Value();
  s.disk_warm_starts = disk_warm_starts.Value();
  s.evictions = evictions.Value();
  s.dedup_waits = dedup_waits.Value();
  s.attempts = attempts.Value();
  s.queries_generated = queries_generated.Value();
  s.queries_satisfied = queries_satisfied.Value();
  s.train_seconds = static_cast<double>(train_micros.Value()) / 1e6;
  s.generate_seconds = static_cast<double>(generate_micros.Value()) / 1e6;
  s.queue_seconds = static_cast<double>(queue_micros.Value()) / 1e6;
  s.busy_seconds = static_cast<double>(busy_micros.Value()) / 1e6;
  return s;
}

std::string ServiceMetricsSnapshot::ToJson() const {
  std::string out = "{";
  auto add_u64 = [&out](const char* key, uint64_t v) {
    out += StrFormat("\"%s\": %llu, ", key,
                     static_cast<unsigned long long>(v));
  };
  add_u64("requests_submitted", requests_submitted);
  add_u64("requests_rejected", requests_rejected);
  add_u64("requests_rejected_queue_full", requests_rejected_queue_full);
  add_u64("requests_rejected_shutdown", requests_rejected_shutdown);
  add_u64("requests_completed", requests_completed);
  add_u64("requests_failed", requests_failed);
  add_u64("cache_hits", cache_hits);
  add_u64("cache_misses", cache_misses);
  add_u64("trainings", trainings);
  add_u64("disk_warm_starts", disk_warm_starts);
  add_u64("evictions", evictions);
  add_u64("dedup_waits", dedup_waits);
  add_u64("queue_depth_high_water", queue_depth_high_water);
  add_u64("attempts", attempts);
  add_u64("queries_generated", queries_generated);
  add_u64("queries_satisfied", queries_satisfied);
  out += StrFormat(
      "\"cache_hit_rate\": %.4f, \"satisfied_rate\": %.4f, "
      "\"train_seconds\": %.3f, \"generate_seconds\": %.3f, "
      "\"queue_seconds\": %.3f, \"busy_seconds\": %.3f}",
      cache_hit_rate(), satisfied_rate(), train_seconds, generate_seconds,
      queue_seconds, busy_seconds);
  return out;
}

}  // namespace lsg
