#include "service/service_metrics.h"

#include "common/string_util.h"

namespace lsg {

ServiceMetricsSnapshot ServiceMetrics::Snapshot() const {
  ServiceMetricsSnapshot s;
  s.requests_submitted = requests_submitted.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected.load(std::memory_order_relaxed);
  s.requests_completed = requests_completed.load(std::memory_order_relaxed);
  s.requests_failed = requests_failed.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses.load(std::memory_order_relaxed);
  s.trainings = trainings.load(std::memory_order_relaxed);
  s.disk_warm_starts = disk_warm_starts.load(std::memory_order_relaxed);
  s.evictions = evictions.load(std::memory_order_relaxed);
  s.dedup_waits = dedup_waits.load(std::memory_order_relaxed);
  s.queue_depth_high_water =
      queue_depth_high_water.load(std::memory_order_relaxed);
  s.attempts = attempts.load(std::memory_order_relaxed);
  s.queries_generated = queries_generated.load(std::memory_order_relaxed);
  s.queries_satisfied = queries_satisfied.load(std::memory_order_relaxed);
  s.train_seconds =
      static_cast<double>(train_micros_.load(std::memory_order_relaxed)) /
      1e6;
  s.generate_seconds =
      static_cast<double>(generate_micros_.load(std::memory_order_relaxed)) /
      1e6;
  s.queue_seconds =
      static_cast<double>(queue_micros_.load(std::memory_order_relaxed)) /
      1e6;
  return s;
}

std::string ServiceMetricsSnapshot::ToJson() const {
  std::string out = "{";
  auto add_u64 = [&out](const char* key, uint64_t v) {
    out += StrFormat("\"%s\": %llu, ", key,
                     static_cast<unsigned long long>(v));
  };
  add_u64("requests_submitted", requests_submitted);
  add_u64("requests_rejected", requests_rejected);
  add_u64("requests_completed", requests_completed);
  add_u64("requests_failed", requests_failed);
  add_u64("cache_hits", cache_hits);
  add_u64("cache_misses", cache_misses);
  add_u64("trainings", trainings);
  add_u64("disk_warm_starts", disk_warm_starts);
  add_u64("evictions", evictions);
  add_u64("dedup_waits", dedup_waits);
  add_u64("queue_depth_high_water", queue_depth_high_water);
  add_u64("attempts", attempts);
  add_u64("queries_generated", queries_generated);
  add_u64("queries_satisfied", queries_satisfied);
  out += StrFormat(
      "\"cache_hit_rate\": %.4f, \"satisfied_rate\": %.4f, "
      "\"train_seconds\": %.3f, \"generate_seconds\": %.3f, "
      "\"queue_seconds\": %.3f}",
      cache_hit_rate(), satisfied_rate(), train_seconds, generate_seconds,
      queue_seconds);
  return out;
}

}  // namespace lsg
