#include "service/generation_service.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "core/batch_decoder.h"
#include "obs/span_tracer.h"

namespace lsg {
namespace {

// Folds the service-level feedback cache into the per-pipeline options the
// registry builds every model from, and defaults the compiled-FSM artifact
// cache to a sibling of the model spill directory so both kinds of
// build-once state live together.
LearnedSqlGenOptions MergedGenOptions(const GenerationServiceOptions& options) {
  LearnedSqlGenOptions gen = options.gen;
  if (options.feedback_cache != nullptr) {
    gen.feedback_cache = options.feedback_cache;
  }
  if (gen.compiled_fsm_cache_dir.empty() &&
      !options.registry.spill_dir.empty()) {
    gen.compiled_fsm_cache_dir = options.registry.spill_dir + "/compiled_fsm";
  }
  return gen;
}

// A request's private sampling stream: a SplitMix64 chain over the base
// seed and every request field. The stream is a pure function of
// (seed, request), so a request's output cannot depend on worker
// placement, queue order or which batch mates it was coalesced with —
// the reproducibility contract batching must not break.
uint64_t RequestSeed(uint64_t base, const GenerationRequest& request) {
  const Constraint& c = request.constraint;
  uint64_t h = SplitMix64(base);
  h = SplitMix64(h ^ static_cast<uint64_t>(c.metric));
  h = SplitMix64(h ^ static_cast<uint64_t>(c.kind));
  h = SplitMix64(h ^ std::bit_cast<uint64_t>(c.point));
  h = SplitMix64(h ^ std::bit_cast<uint64_t>(c.lo));
  h = SplitMix64(h ^ std::bit_cast<uint64_t>(c.hi));
  h = SplitMix64(h ^ std::bit_cast<uint64_t>(c.point_tolerance));
  h = SplitMix64(h ^ static_cast<uint64_t>(request.n));
  h = SplitMix64(h ^ (request.batch ? 2u : 1u));
  return SplitMix64(h ^ request.id);
}

// A bucket's training seed: a pure function of (seed, bucket), so the
// model a bucket trains is the same no matter which worker's request got
// there first. (The old scheme drew from the claiming worker's stream,
// which made cached models — and everything generated from them — depend
// on request interleaving across workers.)
uint64_t BucketTrainSeed(uint64_t base, const ConstraintKey& key) {
  return SplitMix64(SplitMix64(base) ^
                    static_cast<uint64_t>(ConstraintKeyHash{}(key)));
}

}  // namespace

GenerationService::GenerationService(const Database* db,
                                     const GenerationServiceOptions& options)
    : options_(options),
      metrics_(options.metrics_registry),
      registry_(db, MergedGenOptions(options), options.registry, &metrics_),
      queue_(options.queue_capacity) {
  options_.gen = MergedGenOptions(options_);
}

StatusOr<std::unique_ptr<GenerationService>> GenerationService::Create(
    const Database* db, const GenerationServiceOptions& options) {
  if (db == nullptr || db->num_tables() == 0) {
    return Status::InvalidArgument("service needs a non-empty database");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  std::unique_ptr<GenerationService> service(
      new GenerationService(db, options));
  MutexLock lock(&service->shutdown_mu_);
  service->workers_.reserve(options.num_workers);
  for (int w = 0; w < options.num_workers; ++w) {
    service->workers_.emplace_back(
        [svc = service.get(), w] { svc->WorkerLoop(w); });
  }
  return service;
}

GenerationService::~GenerationService() { Shutdown(); }

std::future<GenerationResponse> GenerationService::RejectedFuture(
    uint64_t id, Status status) {
  std::promise<GenerationResponse> promise;
  GenerationResponse response;
  response.id = id;
  response.status = std::move(status);
  promise.set_value(std::move(response));
  return promise.get_future();
}

std::future<GenerationResponse> GenerationService::Submit(
    GenerationRequest request) {
  metrics_.requests_submitted.Inc();
  Job job;
  job.request = std::move(request);
  uint64_t id = job.request.id;
  std::future<GenerationResponse> future = job.promise.get_future();
  if (!queue_.Push(std::move(job))) {
    metrics_.requests_rejected.Inc();
    metrics_.requests_rejected_shutdown.Inc();
    return RejectedFuture(
        id, Status::FailedPrecondition("service is shut down"));
  }
  return future;
}

StatusOr<std::future<GenerationResponse>> GenerationService::TrySubmit(
    GenerationRequest request) {
  metrics_.requests_submitted.Inc();
  Job job;
  job.request = std::move(request);
  std::future<GenerationResponse> future = job.promise.get_future();
  if (!queue_.TryPush(std::move(job))) {
    metrics_.requests_rejected.Inc();
    // Shut-down (terminal, FailedPrecondition) and backpressure (retryable,
    // ResourceExhausted) are distinct codes so callers — the network front
    // end in particular — can map them to different protocol errors.
    if (queue_.closed()) {
      metrics_.requests_rejected_shutdown.Inc();
      return Status::FailedPrecondition("service is shut down");
    }
    metrics_.requests_rejected_queue_full.Inc();
    return Status::ResourceExhausted("request queue is full");
  }
  return future;
}

GenerationResponse GenerationService::SubmitAndWait(
    GenerationRequest request) {
  return Submit(std::move(request)).get();
}

void GenerationService::Shutdown() {
  MutexLock lock(&shutdown_mu_);
  queue_.Close();  // producers rejected; accepted jobs drain
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

ServiceMetricsSnapshot GenerationService::Metrics() const {
  ServiceMetricsSnapshot snapshot = metrics_.Snapshot();
  snapshot.queue_depth_high_water = queue_.high_water_mark();
  return snapshot;
}

void GenerationService::WorkerLoop(int worker_index) {
  const int max_batch = std::max(1, options_.max_batch);
  // A group may hold more requests than decode lanes: BatchDecoder admits
  // queued items as lanes retire, so a deeper group keeps the batch full
  // instead of draining to zero between groups. The 4x cap bounds how long
  // the last request in a group can wait on its batch-mates.
  const int group_cap = max_batch * 4;
  // Jobs popped but not yet handled. The loop only blocks on the queue
  // while this is empty, so a request accepted before Shutdown() but still
  // sitting here when the queue closes is always completed, never
  // orphaned: Pop() returning nullopt (closed + drained) can only end the
  // loop once the backlog has been worked off too.
  std::deque<Job> backlog;
  for (;;) {
    if (backlog.empty()) {
      auto job = queue_.Pop();
      if (!job.has_value()) return;  // closed and fully drained
      backlog.push_back(std::move(*job));
    }
    // Top up opportunistically — never stall the requests already held.
    while (static_cast<int>(backlog.size()) < group_cap) {
      auto job = queue_.TryPop();
      if (!job.has_value()) break;
      backlog.push_back(std::move(*job));
    }
    // Coalesce the oldest request's bucket mates, preserving arrival
    // order. Other buckets stay in the backlog for the next round.
    std::vector<Job> group;
    group.reserve(backlog.size());
    const ConstraintKey key = BucketOf(backlog.front().request.constraint);
    for (auto it = backlog.begin();
         it != backlog.end() && static_cast<int>(group.size()) < group_cap;) {
      if (BucketOf(it->request.constraint) == key) {
        group.push_back(std::move(*it));
        it = backlog.erase(it);
      } else {
        ++it;
      }
    }
    HandleGroup(worker_index, key, &group);
  }
}

void GenerationService::HandleGroup(int worker_index, const ConstraintKey& key,
                                    std::vector<Job>* group) {
  std::vector<GenerationResponse> responses(group->size());
  for (size_t i = 0; i < group->size(); ++i) {
    Job& job = (*group)[i];
    responses[i].id = job.request.id;
    responses[i].worker = worker_index;
    responses[i].queue_seconds = job.queued.ElapsedSeconds();
    metrics_.AddQueueSeconds(responses[i].queue_seconds);
    metrics_.queue_wait_ns.Record(job.queued.ElapsedNanos());
  }
  {
    LSG_OBS_SPAN("service.handle");
    obs::ScopedHistogramTimer handle_timer(&metrics_.handle_ns);
    Stopwatch busy;
    RunGroup(key, group, &responses);
    metrics_.AddBusySeconds(busy.ElapsedSeconds());
  }
  for (size_t i = 0; i < group->size(); ++i) {
    if (responses[i].status.ok()) {
      metrics_.requests_completed.Inc();
    } else {
      metrics_.requests_failed.Inc();
    }
    (*group)[i].promise.set_value(std::move(responses[i]));
  }
}

void GenerationService::RunGroup(const ConstraintKey& key,
                                 std::vector<Job>* group,
                                 std::vector<GenerationResponse>* responses) {
  const uint64_t train_seed = BucketTrainSeed(options_.gen.seed, key);

  // Resolve the model once per request (each one keeps its own hit/miss
  // accounting) and stage a decode item for every runnable request.
  struct Pending {
    size_t index = 0;  ///< position in group / responses
    std::shared_ptr<ModelEntry> entry;
    std::shared_ptr<const ServingSnapshot> snapshot;
    BatchDecodeItem item;
  };
  std::vector<Pending> pending;
  pending.reserve(group->size());
  for (size_t i = 0; i < group->size(); ++i) {
    const GenerationRequest& request = (*group)[i].request;
    GenerationResponse& response = (*responses)[i];
    if (request.n <= 0) {
      response.status = Status::InvalidArgument("request.n must be positive");
      continue;
    }
    auto acquired = registry_.Acquire(request.constraint, train_seed);
    if (!acquired.ok()) {
      response.status = acquired.status();
      continue;
    }
    response.cache_hit = acquired->cache_hit;
    response.warm_start = acquired->warm_start;
    Pending p;
    p.index = i;
    p.entry = std::move(acquired->entry);
    {
      MutexLock entry_lock(&p.entry->mu);
      if (p.entry->gen == nullptr) {
        response.status = Status::Internal("registry returned an empty model");
        continue;
      }
      response.train_seconds = p.entry->gen->last_train_seconds();
      p.snapshot = p.entry->snapshot;
    }
    p.item.n = request.n;
    p.item.batch_mode = request.batch;
    p.item.rng_seed = RequestSeed(options_.gen.seed, request);
    pending.push_back(std::move(p));
  }

  auto finish = [&](Pending& p) {
    GenerationResponse& response = (*responses)[p.index];
    response.status = std::move(p.item.status);
    if (!response.status.ok()) return;
    GenerationReport& report = p.item.report;
    response.generate_seconds = report.generate_seconds;
    metrics_.AddGenerateSeconds(report.generate_seconds);
    metrics_.attempts.Add(static_cast<uint64_t>(report.attempts));
    metrics_.queries_generated.Add(report.queries.size());
    metrics_.queries_satisfied.Add(static_cast<uint64_t>(report.satisfied));
    response.report = std::move(report);
  };

  // Batched path: all items sharing a snapshot decode as one ragged batch,
  // lock-free (the snapshot is immutable and the entry shared_ptr keeps it
  // alive even across an eviction). Distinct snapshots inside one bucket
  // group can only arise from an evict/rebuild race; each cohort simply
  // decodes separately. max_batch <= 1 disables the decoder entirely and
  // pins the legacy single-stream generate path below — the compatibility
  // escape hatch, and the reference baseline the batched path is measured
  // against in bench_service_throughput.
  const bool batching = options_.max_batch > 1;
  std::vector<char> done(pending.size(), 0);
  for (size_t i = 0; batching && i < pending.size(); ++i) {
    if (done[i] || pending[i].snapshot == nullptr) continue;
    std::vector<BatchDecodeItem*> items;
    std::vector<size_t> members;
    for (size_t j = i; j < pending.size(); ++j) {
      if (!done[j] && pending[j].snapshot == pending[i].snapshot) {
        items.push_back(&pending[j].item);
        members.push_back(j);
        done[j] = 1;
      }
    }
    BatchDecoder decoder(
        pending[i].snapshot.get(),
        std::min(std::max(1, options_.max_batch),
                 static_cast<int>(items.size())));
    const BatchDecoder::Stats stats = decoder.Run(items);
    // service.batch_size tracks the decode width actually achieved: the
    // mean number of lanes per batched forward step, rounded to nearest.
    if (stats.steps > 0) {
      metrics_.batch_size.Record((stats.lane_steps + stats.steps / 2) /
                                 stats.steps);
    }
    for (size_t j : members) finish(pending[j]);
  }

  // Fallback for snapshot-less models (e.g. dense extra inputs) and for
  // batching-off deployments: generate one request at a time under the
  // model mutex, exactly the pre-batching serving path but on the
  // request's private stream.
  for (Pending& p : pending) {
    if (batching && p.snapshot != nullptr) continue;
    const GenerationRequest& request = (*group)[p.index].request;
    MutexLock model_lock(&p.entry->mu);
    LearnedSqlGen* gen = p.entry->gen.get();
    if (gen == nullptr) {
      (*responses)[p.index].status =
          Status::Internal("registry returned an empty model");
      continue;
    }
    metrics_.batch_size.Record(1);  // snapshot-less requests decode alone
    Rng rng(p.item.rng_seed);
    auto report = request.batch ? gen->GenerateBatch(request.n, &rng)
                                : gen->GenerateSatisfied(request.n, &rng);
    if (!report.ok()) {
      p.item.status = report.status();
    } else {
      p.item.status = Status::Ok();
      p.item.report = std::move(*report);
    }
    finish(p);
  }
}

}  // namespace lsg
