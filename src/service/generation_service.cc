#include "service/generation_service.h"

#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "obs/span_tracer.h"

namespace lsg {
namespace {

// Folds the service-level feedback cache into the per-pipeline options the
// registry builds every model from, and defaults the compiled-FSM artifact
// cache to a sibling of the model spill directory so both kinds of
// build-once state live together.
LearnedSqlGenOptions MergedGenOptions(const GenerationServiceOptions& options) {
  LearnedSqlGenOptions gen = options.gen;
  if (options.feedback_cache != nullptr) {
    gen.feedback_cache = options.feedback_cache;
  }
  if (gen.compiled_fsm_cache_dir.empty() &&
      !options.registry.spill_dir.empty()) {
    gen.compiled_fsm_cache_dir = options.registry.spill_dir + "/compiled_fsm";
  }
  return gen;
}

}  // namespace

GenerationService::GenerationService(const Database* db,
                                     const GenerationServiceOptions& options)
    : options_(options),
      metrics_(options.metrics_registry),
      registry_(db, MergedGenOptions(options), options.registry, &metrics_),
      queue_(options.queue_capacity) {
  options_.gen = MergedGenOptions(options_);
}

StatusOr<std::unique_ptr<GenerationService>> GenerationService::Create(
    const Database* db, const GenerationServiceOptions& options) {
  if (db == nullptr || db->num_tables() == 0) {
    return Status::InvalidArgument("service needs a non-empty database");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  std::unique_ptr<GenerationService> service(
      new GenerationService(db, options));
  MutexLock lock(&service->shutdown_mu_);
  service->workers_.reserve(options.num_workers);
  for (int w = 0; w < options.num_workers; ++w) {
    service->workers_.emplace_back(
        [svc = service.get(), w] { svc->WorkerLoop(w); });
  }
  return service;
}

GenerationService::~GenerationService() { Shutdown(); }

std::future<GenerationResponse> GenerationService::RejectedFuture(
    uint64_t id, Status status) {
  std::promise<GenerationResponse> promise;
  GenerationResponse response;
  response.id = id;
  response.status = std::move(status);
  promise.set_value(std::move(response));
  return promise.get_future();
}

std::future<GenerationResponse> GenerationService::Submit(
    GenerationRequest request) {
  metrics_.requests_submitted.Inc();
  Job job;
  job.request = std::move(request);
  uint64_t id = job.request.id;
  std::future<GenerationResponse> future = job.promise.get_future();
  if (!queue_.Push(std::move(job))) {
    metrics_.requests_rejected.Inc();
    metrics_.requests_rejected_shutdown.Inc();
    return RejectedFuture(
        id, Status::FailedPrecondition("service is shut down"));
  }
  return future;
}

StatusOr<std::future<GenerationResponse>> GenerationService::TrySubmit(
    GenerationRequest request) {
  metrics_.requests_submitted.Inc();
  Job job;
  job.request = std::move(request);
  std::future<GenerationResponse> future = job.promise.get_future();
  if (!queue_.TryPush(std::move(job))) {
    metrics_.requests_rejected.Inc();
    // Shut-down (terminal, FailedPrecondition) and backpressure (retryable,
    // ResourceExhausted) are distinct codes so callers — the network front
    // end in particular — can map them to different protocol errors.
    if (queue_.closed()) {
      metrics_.requests_rejected_shutdown.Inc();
      return Status::FailedPrecondition("service is shut down");
    }
    metrics_.requests_rejected_queue_full.Inc();
    return Status::ResourceExhausted("request queue is full");
  }
  return future;
}

GenerationResponse GenerationService::SubmitAndWait(
    GenerationRequest request) {
  return Submit(std::move(request)).get();
}

void GenerationService::Shutdown() {
  MutexLock lock(&shutdown_mu_);
  queue_.Close();  // producers rejected; accepted jobs drain
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

ServiceMetricsSnapshot GenerationService::Metrics() const {
  ServiceMetricsSnapshot snapshot = metrics_.Snapshot();
  snapshot.queue_depth_high_water = queue_.high_water_mark();
  return snapshot;
}

void GenerationService::WorkerLoop(int worker_index) {
  // Deterministic per-worker stream: base seed + stable worker index mixed
  // through SplitMix64, so concurrency-1 runs with a fixed request order
  // replay exactly, and nearby seeds stay decorrelated across workers.
  Rng rng(SplitMix64(options_.gen.seed + static_cast<uint64_t>(worker_index)));
  while (auto job = queue_.Pop()) {
    GenerationResponse response;
    response.id = job->request.id;
    response.worker = worker_index;
    response.queue_seconds = job->queued.ElapsedSeconds();
    metrics_.AddQueueSeconds(response.queue_seconds);
    metrics_.queue_wait_ns.Record(job->queued.ElapsedNanos());
    {
      LSG_OBS_SPAN("service.handle");
      obs::ScopedHistogramTimer handle_timer(&metrics_.handle_ns);
      Stopwatch busy;
      response.status = Handle(job->request, &rng, &response);
      metrics_.AddBusySeconds(busy.ElapsedSeconds());
    }
    if (response.status.ok()) {
      metrics_.requests_completed.Inc();
    } else {
      metrics_.requests_failed.Inc();
    }
    job->promise.set_value(std::move(response));
  }
}

Status GenerationService::Handle(const GenerationRequest& request, Rng* rng,
                                 GenerationResponse* response) {
  if (request.n <= 0) {
    return Status::InvalidArgument("request.n must be positive");
  }
  // Drawing the seed unconditionally keeps each worker's stream in lockstep
  // with its request sequence, hit or miss.
  const uint64_t train_seed = rng->Next();
  auto acquired = registry_.Acquire(request.constraint, train_seed);
  if (!acquired.ok()) return acquired.status();
  response->cache_hit = acquired->cache_hit;
  response->warm_start = acquired->warm_start;

  ModelEntry* entry = acquired->entry.get();
  MutexLock model_lock(&entry->mu);
  LearnedSqlGen* gen = entry->gen.get();
  if (gen == nullptr) {
    return Status::Internal("registry returned an empty model");
  }
  response->train_seconds = gen->last_train_seconds();
  auto report = request.batch ? gen->GenerateBatch(request.n)
                              : gen->GenerateSatisfied(request.n);
  if (!report.ok()) return report.status();
  response->generate_seconds = report->generate_seconds;
  metrics_.AddGenerateSeconds(report->generate_seconds);
  metrics_.attempts.Add(static_cast<uint64_t>(report->attempts));
  metrics_.queries_generated.Add(report->queries.size());
  metrics_.queries_satisfied.Add(static_cast<uint64_t>(report->satisfied));
  response->report = std::move(*report);
  return Status::Ok();
}

}  // namespace lsg
