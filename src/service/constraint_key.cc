#include "service/constraint_key.h"

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace lsg {

namespace {
// Quarter-octave bin of a (non-negative) metric target. Values below 1
// collapse into bin 0 — sub-row cardinalities are all "empty-ish".
int32_t Bin(double v) {
  if (!(v > 1.0)) return 0;
  return static_cast<int32_t>(std::llround(4.0 * std::log2(v)));
}
}  // namespace

std::string ConstraintKey::ToString() const {
  return StrFormat("%s-%s-a%d-b%d",
                   metric == ConstraintMetric::kCardinality ? "card" : "cost",
                   kind == ConstraintKind::kPoint ? "point" : "range",
                   bin_a, bin_b);
}

ConstraintKey BucketOf(const Constraint& c) {
  ConstraintKey key;
  key.metric = c.metric;
  key.kind = c.kind;
  if (c.kind == ConstraintKind::kPoint) {
    key.bin_a = Bin(c.point);
  } else {
    key.bin_a = Bin(c.lo);
    key.bin_b = Bin(c.hi);
  }
  return key;
}

size_t ConstraintKeyHash::operator()(const ConstraintKey& k) const {
  uint64_t h = static_cast<uint64_t>(k.metric) << 1 |
               static_cast<uint64_t>(k.kind);
  h = SplitMix64(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(k.bin_a))
                      << 32 |
                      static_cast<uint32_t>(k.bin_b)));
  return static_cast<size_t>(h);
}

}  // namespace lsg
