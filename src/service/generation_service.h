#ifndef LEARNEDSQLGEN_SERVICE_GENERATION_SERVICE_H_
#define LEARNEDSQLGEN_SERVICE_GENERATION_SERVICE_H_

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/sync.h"
#include "core/generator.h"
#include "service/bounded_queue.h"
#include "service/model_registry.h"
#include "service/service_metrics.h"

namespace lsg {

/// One unit of work for the service: "give me n queries satisfying this
/// constraint".
struct GenerationRequest {
  Constraint constraint;
  int n = 10;         ///< satisfying queries to produce
  bool batch = false; ///< run exactly n attempts (GenerateBatch) instead of
                      ///< generating until n satisfy (GenerateSatisfied)
  uint64_t id = 0;    ///< caller-chosen tag, echoed in the response
};

/// Outcome of one request. Move-only (the report owns query ASTs).
struct GenerationResponse {
  uint64_t id = 0;
  Status status;
  GenerationReport report;   ///< valid when status.ok()
  bool cache_hit = false;    ///< served from an already-built model
  bool warm_start = false;   ///< model restored from disk, not retrained
  int worker = -1;           ///< which worker ran it
  double queue_seconds = 0.0;
  double train_seconds = 0.0;     ///< training time of the serving model
  double generate_seconds = 0.0;
};

struct GenerationServiceOptions {
  int num_workers = 4;
  size_t queue_capacity = 64;
  /// Cross-request micro-batching width: a worker coalesces up to
  /// `max_batch` queued requests that resolve to the same constraint
  /// bucket and advances them one token per step through a single batched
  /// forward (see BatchDecoder), so batch mates share every matrix load.
  /// <= 1 disables coalescing. Outputs are identical either way: each
  /// request samples from its own (seed, request)-derived stream, so batch
  /// composition, worker placement and queue order cannot perturb results.
  int max_batch = 8;
  ModelRegistry::Options registry;
  /// Base pipeline configuration. `gen.seed` is the service's base seed:
  /// a request's sampling stream and a bucket's training seed are both
  /// pure functions of (gen.seed, request) resp. (gen.seed, bucket), so
  /// runs with fixed seeds are reproducible at any worker count, with
  /// batching on or off.
  LearnedSqlGenOptions gen;
  /// Registry backing the service counters. Defaults to a private one
  /// (per-service isolation); pass &obs::MetricsRegistry::Global() to
  /// publish the `service.` namespace alongside the training metrics
  /// (lsgtrace does this). Must outlive the service when non-null.
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// Shared feedback-estimation cache, analogous to `metrics_registry`:
  /// one FeedbackCache is handed to every worker's pipeline, so constraint
  /// buckets re-estimating near-identical queries hit each other's
  /// entries. Must outlive the service when non-null. Equivalent to
  /// setting `gen.feedback_cache`; this field wins when both are set.
  FeedbackCache* feedback_cache = nullptr;

  // Compiled FSM tables are configured through `gen` (use_compiled_fsm /
  // compiled_fsm / compiled_fsm_cache_dir); when `gen.compiled_fsm_cache_dir`
  // is empty and `registry.spill_dir` is set, artifacts are cached under
  // `<spill_dir>/compiled_fsm` beside the spilled models. Workers share one
  // immutable table per (db, vocab, profile) via the process-wide cache.
};

/// Multi-tenant front end over LearnedSqlGen: a fixed worker pool drains a
/// bounded MPMC request queue; each worker coalesces up to `max_batch`
/// queued requests whose constraints share a registry bucket and decodes
/// them together against that bucket's immutable model snapshot — one
/// batched LSTM forward per step for the whole group (see BatchDecoder).
/// Buckets are trained at most once via the shared ModelRegistry; models
/// without a snapshot are served one request at a time under their lock.
/// Submit blocks when the queue is full (backpressure); TrySubmit fails
/// fast instead. Shutdown() drains every accepted request — including ones
/// a worker is still holding in its local group — before joining.
class GenerationService {
 public:
  /// `db` must outlive the service. Workers start immediately.
  static StatusOr<std::unique_ptr<GenerationService>> Create(
      const Database* db, const GenerationServiceOptions& options);

  ~GenerationService();

  GenerationService(const GenerationService&) = delete;
  GenerationService& operator=(const GenerationService&) = delete;

  /// Enqueues a request, blocking while the queue is full. The future
  /// always becomes ready: with a generation result, a per-request error
  /// status, or FailedPrecondition if the service shut down first.
  std::future<GenerationResponse> Submit(GenerationRequest request);

  /// Fail-fast variant: returns ResourceExhausted immediately when the
  /// queue is full (retryable backpressure) and FailedPrecondition when
  /// the service is shut down (terminal).
  StatusOr<std::future<GenerationResponse>> TrySubmit(
      GenerationRequest request);

  /// Submit + wait (convenience for sequential callers and tests).
  GenerationResponse SubmitAndWait(GenerationRequest request);

  /// Stops accepting new requests, drains every queued request, joins all
  /// workers. Idempotent; also run by the destructor.
  void Shutdown();

  /// Live counters; callable while workers run.
  ServiceMetricsSnapshot Metrics() const;

  const GenerationServiceOptions& options() const { return options_; }

 private:
  struct Job {
    GenerationRequest request;
    std::promise<GenerationResponse> promise;
    Stopwatch queued;  ///< started at submit; read at pop = queue latency
  };

  GenerationService(const Database* db,
                    const GenerationServiceOptions& options);

  void WorkerLoop(int worker_index);
  /// Runs one coalesced same-bucket group: records queue/batch metrics,
  /// generates (RunGroup), completes every promise.
  void HandleGroup(int worker_index, const ConstraintKey& key,
                   std::vector<Job>* group);
  /// Resolves the group's model and decodes all requests — batched over
  /// the entry's published snapshot when available, else per request under
  /// the model mutex. Fills one response per job; never throws a job away.
  void RunGroup(const ConstraintKey& key, std::vector<Job>* group,
                std::vector<GenerationResponse>* responses);
  static std::future<GenerationResponse> RejectedFuture(uint64_t id,
                                                        Status status);

  GenerationServiceOptions options_;
  ServiceMetrics metrics_;
  ModelRegistry registry_;
  BoundedQueue<Job> queue_;
  /// Written once at startup (under the lock, before any concurrent
  /// caller exists) and joined by the first Shutdown; the lock also makes
  /// concurrent Shutdown calls idempotent instead of double-joining.
  std::vector<std::thread> workers_ LSG_GUARDED_BY(shutdown_mu_);
  Mutex shutdown_mu_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_GENERATION_SERVICE_H_
