#ifndef LEARNEDSQLGEN_SERVICE_BOUNDED_QUEUE_H_
#define LEARNEDSQLGEN_SERVICE_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/sync.h"

namespace lsg {

/// Bounded multi-producer/multi-consumer queue, the backpressure point of
/// the generation service. Producers either block until a slot frees up
/// (Push) or fail fast (TryPush); consumers block until an item or close
/// arrives (Pop). Close() has drain semantics: producers are rejected from
/// then on, but items already accepted stay poppable, so a clean shutdown
/// never drops accepted work.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item dropped) if the
  /// queue is closed before a slot frees up.
  bool Push(T item) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    EnqueueLocked(std::move(item));
    return true;
  }

  /// Fail-fast producer: returns false immediately when full or closed.
  bool TryPush(T item) {
    MutexLock lock(&mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    EnqueueLocked(std::move(item));
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed and fully drained.
  std::optional<T> Pop() {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking consumer: returns the head if one is immediately
  /// available, nullopt when the queue is empty (open or closed). The
  /// batching worker uses this to top up a group without stalling the
  /// requests it already holds.
  std::optional<T> TryPop() {
    MutexLock lock(&mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Rejects all future producers and wakes every waiter. Idempotent.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return items_.size();
  }

  /// Deepest the queue has ever been (backpressure diagnostics).
  size_t high_water_mark() const {
    MutexLock lock(&mu_);
    return high_water_;
  }

 private:
  void EnqueueLocked(T item) LSG_REQUIRES(mu_) {
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.NotifyOne();
  }

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ LSG_GUARDED_BY(mu_);
  size_t high_water_ LSG_GUARDED_BY(mu_) = 0;
  bool closed_ LSG_GUARDED_BY(mu_) = false;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_BOUNDED_QUEUE_H_
