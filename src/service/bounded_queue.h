#ifndef LEARNEDSQLGEN_SERVICE_BOUNDED_QUEUE_H_
#define LEARNEDSQLGEN_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lsg {

/// Bounded multi-producer/multi-consumer queue, the backpressure point of
/// the generation service. Producers either block until a slot frees up
/// (Push) or fail fast (TryPush); consumers block until an item or close
/// arrives (Pop). Close() has drain semantics: producers are rejected from
/// then on, but items already accepted stay poppable, so a clean shutdown
/// never drops accepted work.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item dropped) if the
  /// queue is closed before a slot frees up.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    Enqueue(std::move(item));
    return true;
  }

  /// Fail-fast producer: returns false immediately when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    Enqueue(std::move(item));
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Rejects all future producers and wakes every waiter. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Deepest the queue has ever been (backpressure diagnostics).
  size_t high_water_mark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  void Enqueue(T item) {  // callers hold mu_
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_BOUNDED_QUEUE_H_
