#include "service/model_registry.h"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace lsg {

ModelRegistry::ModelRegistry(const Database* db,
                             const LearnedSqlGenOptions& base,
                             const Options& options, ServiceMetrics* metrics)
    : db_(db), base_(base), options_(options), metrics_(metrics) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (!options_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.spill_dir, ec);
    if (ec) {
      LSG_LOG(Warning) << "cannot create spill dir " << options_.spill_dir
                       << " (" << ec.message() << "); spill disabled";
      options_.spill_dir.clear();
    }
  }
}

size_t ModelRegistry::size() const {
  MutexLock lock(&registry_mu_);
  return models_.size();
}

std::string ModelRegistry::SpillPathFor(const Constraint& c) const {
  if (options_.spill_dir.empty()) return "";
  return options_.spill_dir + "/" + BucketOf(c).ToString() + ".model";
}

StatusOr<ModelRegistry::Acquired> ModelRegistry::Acquire(
    const Constraint& c, uint64_t train_seed) {
  const ConstraintKey key = BucketOf(c);
  std::shared_ptr<ModelEntry> entry;
  bool creator = false;
  {
    MutexLock lock(&registry_mu_);
    Slot& slot = models_[key];
    if (slot.entry == nullptr) {
      slot.entry = std::make_shared<ModelEntry>();
      {
        // registry -> entry order; uncontended (the entry is not visible
        // to any other thread until registry_mu_ is released).
        MutexLock el(&slot.entry->mu);
        slot.entry->constraint = c;
      }
      creator = true;
      metrics_->cache_misses.Inc();
    }
    slot.last_used = ++lru_clock_;
    entry = slot.entry;
    if (creator) EvictIfNeeded();
  }

  ModelEntry* e = entry.get();
  if (!creator) {
    MutexLock el(&e->mu);
    if (!e->ready) {
      metrics_->dedup_waits.Inc();
      while (!e->ready) e->ready_cv.Wait(e->mu);
    }
    if (!e->status.ok()) return e->status;
    metrics_->cache_hits.Inc();
    Acquired out;
    out.entry = std::move(entry);
    out.cache_hit = true;
    return out;
  }

  bool warm_start = false;
  BuildEntry(key, e, train_seed, &warm_start);

  Status status;
  {
    MutexLock el(&e->mu);
    status = e->status;
  }
  e->ready_cv.NotifyAll();
  if (!status.ok()) {
    // Drop the failed bucket so a later request retries instead of being
    // pinned to the stale error.
    MutexLock lock(&registry_mu_);
    auto it = models_.find(key);
    if (it != models_.end() && it->second.entry == entry) models_.erase(it);
    return status;
  }
  Acquired out;
  out.entry = std::move(entry);
  out.warm_start = warm_start;
  return out;
}

void ModelRegistry::BuildEntry(const ConstraintKey& key, ModelEntry* entry,
                               uint64_t train_seed, bool* warm_start) {
  MutexLock el(&entry->mu);
  LearnedSqlGenOptions opts = base_;
  opts.trainer.seed = train_seed;
  auto built = LearnedSqlGen::Create(db_, opts);
  Status status = built.status();
  if (status.ok()) {
    entry->gen = std::move(built).value();
    // A spill file from a past eviction (or process) beats retraining.
    std::string spill;
    if (!options_.spill_dir.empty()) {
      spill = options_.spill_dir + "/" + key.ToString() + ".model";
      if (!std::filesystem::exists(spill)) spill.clear();
    }
    if (!spill.empty()) {
      status = entry->gen->LoadModel(entry->constraint, spill);
      if (status.ok()) {
        *warm_start = true;
        metrics_->disk_warm_starts.Inc();
      } else {
        LSG_LOG(Warning) << "warm-start from " << spill << " failed ("
                         << status.ToString() << "); retraining";
      }
    }
    if (!*warm_start) {
      status = entry->gen->Train(entry->constraint);
      if (status.ok()) {
        metrics_->trainings.Inc();
        metrics_->AddTrainSeconds(entry->gen->last_train_seconds());
      }
    }
  }
  if (status.ok()) {
    // Publish the copy-free serving view. Failure is not fatal: models the
    // batched path cannot drive (dense extra inputs) keep snapshot == null
    // and are served on the per-request fallback under entry->mu.
    auto snap = entry->gen->MakeServingSnapshot();
    if (snap.ok()) {
      entry->snapshot =
          std::make_shared<const ServingSnapshot>(std::move(*snap));
    }
  }
  if (!status.ok()) entry->gen.reset();
  entry->status = status;
  entry->ready = true;
}

void ModelRegistry::EvictIfNeeded() {
  while (models_.size() > options_.capacity) {
    // Visit candidates in LRU order; the first one whose mutex try-locks
    // AND that is ready is the least-recently-used idle model. Probing and
    // spilling happen under one and the same try-lock: the old two-phase
    // form (probe, unlock, re-lock to spill) had a window where a worker
    // holding the entry's shared_ptr could start generating between the
    // probe and the spill, so the "evict only idle models" invariant was
    // violated and — worse — the blocking re-lock could park the whole
    // registry behind a multi-second generation.
    std::vector<std::pair<uint64_t, ConstraintKey>> order;
    order.reserve(models_.size());
    for (const auto& [key, slot] : models_) {
      order.emplace_back(slot.last_used, key);
    }
    // last_used values are unique (a monotone clock), so first-only
    // ordering is total.
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    bool evicted = false;
    for (const auto& [used, key] : order) {
      (void)used;
      auto it = models_.find(key);
      if (it == models_.end()) continue;
      std::shared_ptr<ModelEntry> entry = it->second.entry;
      ModelEntry* e = entry.get();
      if (!e->mu.TryLock()) continue;  // busy or in training: skip
      const bool idle = e->ready && e->status.ok();
      if (idle && !options_.spill_dir.empty() && e->gen != nullptr) {
        std::string path = options_.spill_dir + "/" + key.ToString() +
                           ".model";
        if (Status s = e->gen->SaveModel(path); !s.ok()) {
          LSG_LOG(Warning) << "spill of " << key.ToString() << " failed: "
                           << s.ToString();
        }
      }
      e->mu.Unlock();
      if (!idle) continue;
      models_.erase(it);
      metrics_->evictions.Inc();
      evicted = true;
      break;
    }
    // Every resident model is busy or in training; the map transiently
    // exceeds capacity until one of them quiesces.
    if (!evicted) return;
  }
}

}  // namespace lsg
