#include "service/model_registry.h"

#include <filesystem>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace lsg {

ModelRegistry::ModelRegistry(const Database* db,
                             const LearnedSqlGenOptions& base,
                             const Options& options, ServiceMetrics* metrics)
    : db_(db), base_(base), options_(options), metrics_(metrics) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (!options_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.spill_dir, ec);
    if (ec) {
      LSG_LOG(Warning) << "cannot create spill dir " << options_.spill_dir
                       << " (" << ec.message() << "); spill disabled";
      options_.spill_dir.clear();
    }
  }
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return models_.size();
}

std::string ModelRegistry::SpillPathFor(const Constraint& c) const {
  if (options_.spill_dir.empty()) return "";
  return options_.spill_dir + "/" + BucketOf(c).ToString() + ".model";
}

StatusOr<ModelRegistry::Acquired> ModelRegistry::Acquire(
    const Constraint& c, uint64_t train_seed) {
  const ConstraintKey key = BucketOf(c);
  std::shared_ptr<ModelEntry> entry;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    Slot& slot = models_[key];
    if (slot.entry == nullptr) {
      slot.entry = std::make_shared<ModelEntry>();
      slot.entry->constraint = c;
      creator = true;
      metrics_->cache_misses.Inc();
    }
    slot.last_used = ++lru_clock_;
    entry = slot.entry;
    if (creator) EvictIfNeeded();
  }

  if (!creator) {
    std::unique_lock<std::mutex> el(entry->mu);
    if (!entry->ready) {
      metrics_->dedup_waits.Inc();
      entry->ready_cv.wait(el, [&] { return entry->ready; });
    }
    if (!entry->status.ok()) return entry->status;
    metrics_->cache_hits.Inc();
    Acquired out;
    out.entry = std::move(entry);
    out.cache_hit = true;
    return out;
  }

  bool warm_start = false;
  BuildEntry(key, entry.get(), train_seed, &warm_start);

  Status status;
  {
    std::lock_guard<std::mutex> el(entry->mu);
    status = entry->status;
  }
  entry->ready_cv.notify_all();
  if (!status.ok()) {
    // Drop the failed bucket so a later request retries instead of being
    // pinned to the stale error.
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = models_.find(key);
    if (it != models_.end() && it->second.entry == entry) models_.erase(it);
    return status;
  }
  Acquired out;
  out.entry = std::move(entry);
  out.warm_start = warm_start;
  return out;
}

void ModelRegistry::BuildEntry(const ConstraintKey& key, ModelEntry* entry,
                               uint64_t train_seed, bool* warm_start) {
  std::lock_guard<std::mutex> el(entry->mu);
  LearnedSqlGenOptions opts = base_;
  opts.trainer.seed = train_seed;
  auto built = LearnedSqlGen::Create(db_, opts);
  Status status = built.status();
  if (status.ok()) {
    entry->gen = std::move(built).value();
    // A spill file from a past eviction (or process) beats retraining.
    std::string spill;
    if (!options_.spill_dir.empty()) {
      spill = options_.spill_dir + "/" + key.ToString() + ".model";
      if (!std::filesystem::exists(spill)) spill.clear();
    }
    if (!spill.empty()) {
      status = entry->gen->LoadModel(entry->constraint, spill);
      if (status.ok()) {
        *warm_start = true;
        metrics_->disk_warm_starts.Inc();
      } else {
        LSG_LOG(Warning) << "warm-start from " << spill << " failed ("
                         << status.ToString() << "); retraining";
      }
    }
    if (!*warm_start) {
      status = entry->gen->Train(entry->constraint);
      if (status.ok()) {
        metrics_->trainings.Inc();
        metrics_->AddTrainSeconds(entry->gen->last_train_seconds());
      }
    }
  }
  if (!status.ok()) entry->gen.reset();
  entry->status = status;
  entry->ready = true;
}

void ModelRegistry::EvictIfNeeded() {
  while (models_.size() > options_.capacity) {
    // LRU victim among entries that are ready and idle; busy or
    // in-training entries are skipped (the map may transiently exceed
    // capacity while every resident model is in use).
    auto victim = models_.end();
    for (auto it = models_.begin(); it != models_.end(); ++it) {
      if (victim != models_.end() &&
          it->second.last_used >= victim->second.last_used) {
        continue;
      }
      std::unique_lock<std::mutex> el(it->second.entry->mu, std::try_to_lock);
      if (el.owns_lock() && it->second.entry->ready &&
          it->second.entry->status.ok()) {
        victim = it;
      }
    }
    if (victim == models_.end()) return;
    std::shared_ptr<ModelEntry> entry = victim->second.entry;
    const ConstraintKey key = victim->first;
    {
      std::lock_guard<std::mutex> el(entry->mu);
      if (!options_.spill_dir.empty() && entry->gen != nullptr) {
        std::string path =
            options_.spill_dir + "/" + key.ToString() + ".model";
        if (Status s = entry->gen->SaveModel(path); !s.ok()) {
          LSG_LOG(Warning) << "spill of " << key.ToString() << " failed: "
                           << s.ToString();
        }
      }
    }
    models_.erase(victim);
    metrics_->evictions.Inc();
  }
}

}  // namespace lsg
