#ifndef LEARNEDSQLGEN_SERVICE_CONSTRAINT_KEY_H_
#define LEARNEDSQLGEN_SERVICE_CONSTRAINT_KEY_H_

#include <cstdint>
#include <string>

#include "rl/reward.h"

namespace lsg {

/// Cache key for the model registry: constraints close enough to share a
/// trained policy map to the same key. The metric (card vs. cost) and kind
/// (point vs. range) always split buckets; the numeric targets are
/// quantized to quarter-octave bins (four bins per doubling), which is
/// well inside the paper's ±10% point tolerance once values differ by a
/// bucket, yet coarse enough that jittered repeats of one workload land on
/// a warm model.
struct ConstraintKey {
  ConstraintMetric metric = ConstraintMetric::kCardinality;
  ConstraintKind kind = ConstraintKind::kPoint;
  int32_t bin_a = 0;  ///< point bin, or range-lo bin
  int32_t bin_b = 0;  ///< range-hi bin (0 for points)

  bool operator==(const ConstraintKey& other) const {
    return metric == other.metric && kind == other.kind &&
           bin_a == other.bin_a && bin_b == other.bin_b;
  }

  /// Stable, filesystem-safe spelling, e.g. "card-point-a24-b0" — used as
  /// the spill filename so a model survives process restarts.
  std::string ToString() const;
};

/// Maps a constraint to its bucket.
ConstraintKey BucketOf(const Constraint& c);

struct ConstraintKeyHash {
  size_t operator()(const ConstraintKey& k) const;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_CONSTRAINT_KEY_H_
