#ifndef LEARNEDSQLGEN_SERVICE_SERVICE_METRICS_H_
#define LEARNEDSQLGEN_SERVICE_SERVICE_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics_registry.h"

namespace lsg {

/// Point-in-time view of the service counters, safe to take while workers
/// run. Seconds are accumulated as integer microseconds internally, so the
/// snapshot is tear-free without any global lock.
struct ServiceMetricsSnapshot {
  uint64_t requests_submitted = 0;
  uint64_t requests_rejected = 0;  ///< backpressure fail-fast + post-shutdown
  /// Rejections split by reason, so admission-control dashboards can tell
  /// backpressure (queue_full, retryable) from drain (shutdown, terminal).
  /// Invariant: rejected == rejected_queue_full + rejected_shutdown.
  uint64_t requests_rejected_queue_full = 0;
  uint64_t requests_rejected_shutdown = 0;
  uint64_t requests_completed = 0;
  uint64_t requests_failed = 0;

  uint64_t cache_hits = 0;        ///< registry served an already-built model
  uint64_t cache_misses = 0;      ///< bucket had to be built (train or disk)
  uint64_t trainings = 0;         ///< models trained from scratch
  uint64_t disk_warm_starts = 0;  ///< models restored from a spill file
  uint64_t evictions = 0;         ///< models pushed out by the LRU bound
  uint64_t dedup_waits = 0;       ///< requests that waited on another's train

  uint64_t queue_depth_high_water = 0;

  uint64_t attempts = 0;           ///< generation episodes run
  uint64_t queries_generated = 0;  ///< queries returned to callers
  uint64_t queries_satisfied = 0;  ///< ... of which met their constraint

  double train_seconds = 0.0;
  double generate_seconds = 0.0;
  double queue_seconds = 0.0;  ///< summed request time spent queued
  double busy_seconds = 0.0;   ///< summed worker handle time (utilization)

  double cache_hit_rate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  double satisfied_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(queries_satisfied) /
                               static_cast<double>(attempts);
  }

  /// One JSON object (keys above, snake_case) for dashboards and benches.
  std::string ToJson() const;
};

/// The service's counter set, shared by the queue, registry and workers.
/// A thin view over an obs::MetricsRegistry: every counter lives in the
/// registry under the `service.` namespace (the same naming scheme the
/// training-side instrumentation uses), and the members here are just
/// cached handles, so serving metrics show up in registry snapshots
/// (lsgtrace) with no duplicated atomic plumbing.
///
/// By default each ServiceMetrics owns a private registry (per-service
/// isolation for tests and embedded services); pass an external registry —
/// e.g. &obs::MetricsRegistry::Global() — to join a shared namespace.
class ServiceMetrics {
 private:
  // Declared (and therefore initialized) before the handle references
  // below, which bind into *registry_.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;

 public:
  explicit ServiceMetrics(obs::MetricsRegistry* registry = nullptr);

  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  void AddTrainSeconds(double s) { train_micros.Add(Micros(s)); }
  void AddGenerateSeconds(double s) { generate_micros.Add(Micros(s)); }
  void AddQueueSeconds(double s) { queue_micros.Add(Micros(s)); }
  void AddBusySeconds(double s) { busy_micros.Add(Micros(s)); }

  ServiceMetricsSnapshot Snapshot() const;

  /// The registry the handles point into (for snapshots of the full
  /// namespace, including the latency histograms below).
  obs::MetricsRegistry& registry() { return *registry_; }

  obs::Counter& requests_submitted;
  obs::Counter& requests_rejected;
  obs::Counter& requests_rejected_queue_full;
  obs::Counter& requests_rejected_shutdown;
  obs::Counter& requests_completed;
  obs::Counter& requests_failed;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& trainings;
  obs::Counter& disk_warm_starts;
  obs::Counter& evictions;
  obs::Counter& dedup_waits;
  obs::Counter& attempts;
  obs::Counter& queries_generated;
  obs::Counter& queries_satisfied;
  obs::Counter& train_micros;
  obs::Counter& generate_micros;
  obs::Counter& queue_micros;
  obs::Counter& busy_micros;

  /// Request-level latency distributions (always recorded: these events
  /// are per-request, far off the step hot path).
  obs::Histogram& queue_wait_ns;
  obs::Histogram& handle_ns;
  /// Mean decode width (lanes per batched forward step, rounded) of each
  /// ragged batch a worker ran — 1 when batching is off or no same-bucket
  /// mates were queued. The micro-batching efficacy signal next to
  /// queue_wait_ns's p99: a value well under max_batch means lanes are
  /// draining faster than the queue refills them.
  obs::Histogram& batch_size;

 private:
  static uint64_t Micros(double seconds) {
    return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e6);
  }
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_SERVICE_METRICS_H_
