#ifndef LEARNEDSQLGEN_SERVICE_SERVICE_METRICS_H_
#define LEARNEDSQLGEN_SERVICE_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace lsg {

/// Point-in-time view of the service counters, safe to take while workers
/// run. Seconds are accumulated as integer microseconds internally, so the
/// snapshot is tear-free without any global lock.
struct ServiceMetricsSnapshot {
  uint64_t requests_submitted = 0;
  uint64_t requests_rejected = 0;  ///< backpressure fail-fast + post-shutdown
  uint64_t requests_completed = 0;
  uint64_t requests_failed = 0;

  uint64_t cache_hits = 0;        ///< registry served an already-built model
  uint64_t cache_misses = 0;      ///< bucket had to be built (train or disk)
  uint64_t trainings = 0;         ///< models trained from scratch
  uint64_t disk_warm_starts = 0;  ///< models restored from a spill file
  uint64_t evictions = 0;         ///< models pushed out by the LRU bound
  uint64_t dedup_waits = 0;       ///< requests that waited on another's train

  uint64_t queue_depth_high_water = 0;

  uint64_t attempts = 0;           ///< generation episodes run
  uint64_t queries_generated = 0;  ///< queries returned to callers
  uint64_t queries_satisfied = 0;  ///< ... of which met their constraint

  double train_seconds = 0.0;
  double generate_seconds = 0.0;
  double queue_seconds = 0.0;  ///< summed request time spent queued

  double cache_hit_rate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  double satisfied_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(queries_satisfied) /
                               static_cast<double>(attempts);
  }

  /// One JSON object (keys above, snake_case) for dashboards and benches.
  std::string ToJson() const;
};

/// Lock-free counter set shared by the queue, registry and workers. All
/// members are monotonically increasing; Snapshot() reads them with relaxed
/// ordering (counters are independent, exactness across counters is not
/// required while the service runs).
class ServiceMetrics {
 public:
  void AddTrainSeconds(double s) { train_micros_ += Micros(s); }
  void AddGenerateSeconds(double s) { generate_micros_ += Micros(s); }
  void AddQueueSeconds(double s) { queue_micros_ += Micros(s); }

  ServiceMetricsSnapshot Snapshot() const;

  std::atomic<uint64_t> requests_submitted{0};
  std::atomic<uint64_t> requests_rejected{0};
  std::atomic<uint64_t> requests_completed{0};
  std::atomic<uint64_t> requests_failed{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> trainings{0};
  std::atomic<uint64_t> disk_warm_starts{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> dedup_waits{0};
  std::atomic<uint64_t> queue_depth_high_water{0};
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> queries_generated{0};
  std::atomic<uint64_t> queries_satisfied{0};

 private:
  static uint64_t Micros(double seconds) {
    return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e6);
  }

  std::atomic<uint64_t> train_micros_{0};
  std::atomic<uint64_t> generate_micros_{0};
  std::atomic<uint64_t> queue_micros_{0};
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_SERVICE_METRICS_H_
