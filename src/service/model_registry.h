#ifndef LEARNEDSQLGEN_SERVICE_MODEL_REGISTRY_H_
#define LEARNEDSQLGEN_SERVICE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/sync.h"
#include "core/generator.h"
#include "service/constraint_key.h"
#include "service/service_metrics.h"

namespace lsg {

/// A cached, trained pipeline for one constraint bucket. `mu` serializes
/// all use of `gen` (LearnedSqlGen instances are single-threaded); `ready`
/// and `status` are also guarded by `mu` so concurrent requesters of the
/// same bucket can wait on `ready_cv` while the first one trains.
struct ModelEntry {
  Mutex mu;
  CondVar ready_cv;
  bool ready LSG_GUARDED_BY(mu) = false;
  Status status LSG_GUARDED_BY(mu);  ///< train/load outcome
  std::unique_ptr<LearnedSqlGen> gen LSG_GUARDED_BY(mu);
  /// The first requester's exact constraint.
  Constraint constraint LSG_GUARDED_BY(mu);
  /// Immutable serving view of `gen`, published once after a successful
  /// build (null when the model cannot be snapshotted, e.g. dense
  /// extra-input nets — those requests fall back to generating under `mu`).
  /// Readers copy the shared_ptr under `mu`, then decode lock-free: every
  /// component the snapshot points to is const after `ready`, so batch
  /// mates never serialize on this entry's mutex.
  std::shared_ptr<const ServingSnapshot> snapshot LSG_GUARDED_BY(mu);
};

/// Constraint-keyed cache of trained pipelines with an LRU capacity bound.
///
/// - A second request for the same bucket reuses the cached model (hit).
/// - Concurrent first requests for one bucket are deduplicated: the first
///   caller trains, the rest block on the entry until it is ready.
/// - When the map exceeds `capacity`, the least-recently-used idle model is
///   spilled to `spill_dir` (via LearnedSqlGen::SaveModel) and dropped; a
///   later request for that bucket warm-starts from the spill file instead
///   of retraining.
///
/// Thread-safe. Lock order is registry mutex -> entry mutex; callers that
/// hold an entry's mutex (i.e. are generating) must not call back into the
/// registry. While holding registry_mu_ an entry's mutex is only ever
/// *try*-locked (eviction), never blocked on, so a slow generation can
/// never convoy the registry.
class ModelRegistry {
 public:
  struct Options {
    size_t capacity = 8;
    /// Directory for evicted models ("" disables spill: evictions discard).
    /// Created on demand.
    std::string spill_dir;
  };

  /// `db` must outlive the registry. `base` configures every pipeline the
  /// registry builds; the trainer seed is overridden per Acquire call.
  ModelRegistry(const Database* db, const LearnedSqlGenOptions& base,
                const Options& options, ServiceMetrics* metrics);

  /// What Acquire hands back: a shared entry (kept alive even if evicted
  /// while in use) plus how it was obtained.
  struct Acquired {
    std::shared_ptr<ModelEntry> entry;
    bool cache_hit = false;
    bool warm_start = false;
  };

  /// Returns a ready model for the constraint's bucket, training or
  /// warm-starting it if needed. `train_seed` seeds the trainer when this
  /// call ends up training (ignored on hits), keeping service runs
  /// reproducible at concurrency 1. Blocks while another caller trains the
  /// same bucket. On training failure the bucket is removed again so a
  /// later request can retry.
  StatusOr<Acquired> Acquire(const Constraint& c, uint64_t train_seed)
      LSG_EXCLUDES(registry_mu_);

  /// Models currently resident (test/diagnostic hook).
  size_t size() const LSG_EXCLUDES(registry_mu_);

  /// Spill filename a bucket would use ("" when spill is disabled).
  std::string SpillPathFor(const Constraint& c) const;

 private:
  struct Slot {
    std::shared_ptr<ModelEntry> entry;
    uint64_t last_used = 0;
  };

  /// Builds + trains (or disk-loads) the pipeline for `entry`. Called by
  /// the entry's creator without registry_mu_ held.
  void BuildEntry(const ConstraintKey& key, ModelEntry* entry,
                  uint64_t train_seed, bool* warm_start)
      LSG_EXCLUDES(registry_mu_);

  /// Evicts LRU idle entries until size() <= capacity. An entry is only a
  /// victim if its mutex can be try-locked AND it is ready, and the spill
  /// happens under that same try-lock — probing and spilling are one
  /// critical section, so an entry observed idle cannot become busy before
  /// it is written out (and eviction never blocks behind a generating
  /// worker while the whole registry is held).
  void EvictIfNeeded() LSG_REQUIRES(registry_mu_);

  const Database* db_;
  LearnedSqlGenOptions base_;
  Options options_;
  ServiceMetrics* metrics_;

  mutable Mutex registry_mu_;
  std::unordered_map<ConstraintKey, Slot, ConstraintKeyHash> models_
      LSG_GUARDED_BY(registry_mu_);
  uint64_t lru_clock_ LSG_GUARDED_BY(registry_mu_) = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_MODEL_REGISTRY_H_
