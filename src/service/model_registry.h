#ifndef LEARNEDSQLGEN_SERVICE_MODEL_REGISTRY_H_
#define LEARNEDSQLGEN_SERVICE_MODEL_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/generator.h"
#include "service/constraint_key.h"
#include "service/service_metrics.h"

namespace lsg {

/// A cached, trained pipeline for one constraint bucket. `mu` serializes
/// all use of `gen` (LearnedSqlGen instances are single-threaded); `ready`
/// and `status` are also guarded by `mu` so concurrent requesters of the
/// same bucket can wait on `ready_cv` while the first one trains.
struct ModelEntry {
  std::mutex mu;
  std::condition_variable ready_cv;
  bool ready = false;           ///< guarded by mu
  Status status;                ///< train/load outcome; guarded by mu
  std::unique_ptr<LearnedSqlGen> gen;  ///< guarded by mu
  Constraint constraint;        ///< the first requester's exact constraint
};

/// Constraint-keyed cache of trained pipelines with an LRU capacity bound.
///
/// - A second request for the same bucket reuses the cached model (hit).
/// - Concurrent first requests for one bucket are deduplicated: the first
///   caller trains, the rest block on the entry until it is ready.
/// - When the map exceeds `capacity`, the least-recently-used idle model is
///   spilled to `spill_dir` (via LearnedSqlGen::SaveModel) and dropped; a
///   later request for that bucket warm-starts from the spill file instead
///   of retraining.
///
/// Thread-safe. Lock order is registry mutex -> entry mutex; callers that
/// hold an entry's mutex (i.e. are generating) must not call back into the
/// registry.
class ModelRegistry {
 public:
  struct Options {
    size_t capacity = 8;
    /// Directory for evicted models ("" disables spill: evictions discard).
    /// Created on demand.
    std::string spill_dir;
  };

  /// `db` must outlive the registry. `base` configures every pipeline the
  /// registry builds; the trainer seed is overridden per Acquire call.
  ModelRegistry(const Database* db, const LearnedSqlGenOptions& base,
                const Options& options, ServiceMetrics* metrics);

  /// What Acquire hands back: a shared entry (kept alive even if evicted
  /// while in use) plus how it was obtained.
  struct Acquired {
    std::shared_ptr<ModelEntry> entry;
    bool cache_hit = false;
    bool warm_start = false;
  };

  /// Returns a ready model for the constraint's bucket, training or
  /// warm-starting it if needed. `train_seed` seeds the trainer when this
  /// call ends up training (ignored on hits), keeping service runs
  /// reproducible at concurrency 1. Blocks while another caller trains the
  /// same bucket. On training failure the bucket is removed again so a
  /// later request can retry.
  StatusOr<Acquired> Acquire(const Constraint& c, uint64_t train_seed);

  /// Models currently resident (test/diagnostic hook).
  size_t size() const;

  /// Spill filename a bucket would use ("" when spill is disabled).
  std::string SpillPathFor(const Constraint& c) const;

 private:
  struct Slot {
    std::shared_ptr<ModelEntry> entry;
    uint64_t last_used = 0;
  };

  /// Builds + trains (or disk-loads) the pipeline for `entry`. Called by
  /// the entry's creator without registry_mu_ held.
  void BuildEntry(const ConstraintKey& key, ModelEntry* entry,
                  uint64_t train_seed, bool* warm_start);

  /// Evicts LRU idle entries until size() <= capacity. Caller holds
  /// registry_mu_.
  void EvictIfNeeded();

  const Database* db_;
  LearnedSqlGenOptions base_;
  Options options_;
  ServiceMetrics* metrics_;

  mutable std::mutex registry_mu_;
  std::unordered_map<ConstraintKey, Slot, ConstraintKeyHash> models_;
  uint64_t lru_clock_ = 0;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_SERVICE_MODEL_REGISTRY_H_
