#ifndef LEARNEDSQLGEN_STORAGE_TABLE_H_
#define LEARNEDSQLGEN_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/status.h"
#include "storage/column.h"

namespace lsg {

/// A materialized in-memory table: a schema plus one Column per attribute.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Appends one row; values.size() must equal num_columns() and each value
  /// must match its column's type (or be NULL for nullable columns).
  Status AppendRow(const std::vector<Value>& values);

  /// Pre-allocates every column for `n` rows. The synthetic dataset
  /// builders call this with the scaled row count so 10⁵–10⁶-row loads
  /// avoid repeated vector regrowth (string columns especially).
  void ReserveRows(size_t n) {
    for (Column& c : columns_) c.Reserve(n);
  }

  /// Cell accessor.
  Value GetValue(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// Overwrites one cell (UPDATE). Value must match the column type and
  /// may only be NULL when the column is nullable.
  Status SetValue(size_t row, size_t col, const Value& v);

  /// Removes rows where keep[row] is false (DELETE). keep.size() must
  /// equal num_rows().
  void FilterRows(const std::vector<bool>& keep);

  /// Renders the first `limit` rows for debugging.
  std::string DebugRows(size_t limit) const;

 private:
  TableSchema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// A database instance: schema catalog + table data. This is the
/// "environment database D" the paper's agent interacts with.
class Database {
 public:
  Database() = default;

  /// Movable, not copyable (tables can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Adds a table (schema is registered in the catalog automatically).
  Status AddTable(Table table);

  /// Registers a PK-FK edge (see Catalog::AddForeignKey).
  Status AddForeignKey(ForeignKey fk);

  const Catalog& catalog() const { return catalog_; }
  size_t num_tables() const { return tables_.size(); }

  /// Table lookup; returns nullptr if absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  const std::vector<Table>& tables() const { return tables_; }

  /// Total row count across tables (used to scale constraints to the data).
  size_t TotalRows() const;

 private:
  Catalog catalog_;
  std::vector<Table> tables_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_STORAGE_TABLE_H_
