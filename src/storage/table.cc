#include "storage/table.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace lsg {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table %s has %zu columns",
                  values.size(), schema_.name().c_str(), columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null() && !schema_.column(i).nullable) {
      return Status::InvalidArgument("NULL in non-nullable column " +
                                     schema_.column(i).name);
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    LSG_RETURN_IF_ERROR(columns_[i].Append(values[i]));
  }
  ++num_rows_;
  return Status::Ok();
}

Status Table::SetValue(size_t row, size_t col, const Value& v) {
  if (row >= num_rows_ || col >= columns_.size()) {
    return Status::OutOfRange(
        StrFormat("cell (%zu, %zu) outside table %s", row, col,
                  schema_.name().c_str()));
  }
  if (v.is_null() && !schema_.column(col).nullable) {
    return Status::InvalidArgument("NULL in non-nullable column " +
                                   schema_.column(col).name);
  }
  return columns_[col].SetValue(row, v);
}

void Table::FilterRows(const std::vector<bool>& keep) {
  LSG_CHECK(keep.size() == num_rows_);
  for (Column& c : columns_) c.FilterRows(keep);
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
}

std::string Table::DebugRows(size_t limit) const {
  std::string out = schema_.ToString() + "\n";
  size_t n = std::min(limit, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(GetValue(r, c).ToString());
    }
    out += "  " + Join(cells, " | ") + "\n";
  }
  if (num_rows_ > n) out += StrFormat("  ... (%zu rows)\n", num_rows_);
  return out;
}

Status Database::AddTable(Table table) {
  LSG_RETURN_IF_ERROR(catalog_.AddTable(table.schema()));
  tables_.push_back(std::move(table));
  return Status::Ok();
}

Status Database::AddForeignKey(ForeignKey fk) {
  return catalog_.AddForeignKey(std::move(fk));
}

const Table* Database::FindTable(const std::string& name) const {
  for (const Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

Table* Database::FindMutableTable(const std::string& name) {
  for (Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const Table& t : tables_) total += t.num_rows();
  return total;
}

}  // namespace lsg
