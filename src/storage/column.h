#ifndef LEARNEDSQLGEN_STORAGE_COLUMN_H_
#define LEARNEDSQLGEN_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/data_type.h"
#include "catalog/value.h"
#include "common/status.h"

namespace lsg {

/// Typed columnar storage for one attribute. Values are appended in row
/// order; NULLs are tracked in a validity bitmap. String and categorical
/// data share the string representation.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  /// Appends a value. Type must match (ints may be appended to double
  /// columns and are widened). Returns InvalidArgument on mismatch.
  Status Append(const Value& v);

  /// Appends a NULL.
  void AppendNull();

  /// Overwrites one cell in place (UPDATE). Same type rules as Append;
  /// a NULL value clears the cell. Returns InvalidArgument on mismatch.
  Status SetValue(size_t row, const Value& v);

  bool IsNull(size_t row) const { return !valid_[row]; }

  /// Materializes the cell as a Value (NULL-aware).
  Value GetValue(size_t row) const;

  /// Raw typed accessors; row must be non-NULL and of the right type.
  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  const std::string& GetString(size_t row) const { return strings_[row]; }

  /// Whole-column views for the vectorized engine (src/vexec/): typed
  /// loops read the backing arrays directly instead of materializing one
  /// Value per cell. Only the vector matching type() is populated; cells
  /// where IsNull(row) hold a zero/empty placeholder.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<bool>& validity() const { return valid_; }

  /// True when no cell is NULL — lets batch kernels skip the validity
  /// lookup entirely. O(1): a null counter is maintained on every append/
  /// overwrite/filter.
  bool all_valid() const { return null_count_ == 0; }

  /// Pre-allocates backing storage for `n` rows (bulk synthetic loads).
  void Reserve(size_t n);

  /// Number of non-NULL cells.
  size_t CountNonNull() const;

  /// Distinct non-NULL values, sorted ascending (Value::Compare order).
  std::vector<Value> DistinctValues() const;

  /// Removes rows where keep[row] is false (used by DELETE dry-runs on
  /// copies). keep.size() must equal size().
  void FilterRows(const std::vector<bool>& keep);

 private:
  DataType type_;
  std::vector<bool> valid_;
  size_t null_count_ = 0;
  // Only the vector matching type_ is populated (doubles_ for kDouble,
  // ints_ for kInt64, strings_ for kString/kCategorical).
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace lsg

#endif  // LEARNEDSQLGEN_STORAGE_COLUMN_H_
