#include "storage/column.h"

#include <algorithm>

#include "common/logging.h"

namespace lsg {

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::Ok();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int()) {
        return Status::InvalidArgument("expected INT64 value");
      }
      ints_.push_back(v.as_int());
      break;
    case DataType::kDouble:
      if (v.is_int()) {
        doubles_.push_back(static_cast<double>(v.as_int()));
      } else if (v.is_double()) {
        doubles_.push_back(v.as_double());
      } else {
        return Status::InvalidArgument("expected DOUBLE value");
      }
      break;
    case DataType::kString:
    case DataType::kCategorical:
      if (!v.is_string()) {
        return Status::InvalidArgument("expected STRING value");
      }
      strings_.push_back(v.as_string());
      break;
  }
  valid_.push_back(true);
  return Status::Ok();
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
    case DataType::kCategorical:
      strings_.emplace_back();
      break;
  }
  valid_.push_back(false);
  ++null_count_;
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
    case DataType::kCategorical:
      strings_.reserve(n);
      break;
  }
}

Status Column::SetValue(size_t row, const Value& v) {
  LSG_CHECK(row < size());
  if (v.is_null()) {
    if (valid_[row]) ++null_count_;
    valid_[row] = false;
    return Status::Ok();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int()) {
        return Status::InvalidArgument("expected INT64 value");
      }
      ints_[row] = v.as_int();
      break;
    case DataType::kDouble:
      if (v.is_int()) {
        doubles_[row] = static_cast<double>(v.as_int());
      } else if (v.is_double()) {
        doubles_[row] = v.as_double();
      } else {
        return Status::InvalidArgument("expected DOUBLE value");
      }
      break;
    case DataType::kString:
    case DataType::kCategorical:
      if (!v.is_string()) {
        return Status::InvalidArgument("expected STRING value");
      }
      strings_[row] = v.as_string();
      break;
  }
  if (!valid_[row]) --null_count_;
  valid_[row] = true;
  return Status::Ok();
}

Value Column::GetValue(size_t row) const {
  LSG_DCHECK(row < size());
  if (!valid_[row]) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kString:
    case DataType::kCategorical:
      return Value(strings_[row]);
  }
  return Value::Null();
}

size_t Column::CountNonNull() const {
  size_t n = 0;
  for (bool v : valid_) n += v ? 1 : 0;
  return n;
}

std::vector<Value> Column::DistinctValues() const {
  std::vector<Value> vals;
  vals.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    if (valid_[i]) vals.push_back(GetValue(i));
  }
  std::sort(vals.begin(), vals.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  vals.erase(std::unique(vals.begin(), vals.end(),
                         [](const Value& a, const Value& b) {
                           return a.Compare(b) == 0;
                         }),
             vals.end());
  return vals;
}

void Column::FilterRows(const std::vector<bool>& keep) {
  LSG_CHECK(keep.size() == size());
  size_t out = 0;
  for (size_t i = 0; i < keep.size(); ++i) {
    if (!keep[i]) continue;
    if (out == i) {  // self-move would clear strings
      ++out;
      continue;
    }
    valid_[out] = valid_[i];
    switch (type_) {
      case DataType::kInt64:
        ints_[out] = ints_[i];
        break;
      case DataType::kDouble:
        doubles_[out] = doubles_[i];
        break;
      case DataType::kString:
      case DataType::kCategorical:
        strings_[out] = std::move(strings_[i]);
        break;
    }
    ++out;
  }
  valid_.resize(out);
  null_count_ = out - CountNonNull();
  if (type_ == DataType::kInt64) ints_.resize(out);
  if (type_ == DataType::kDouble) doubles_.resize(out);
  if (type_ == DataType::kString || type_ == DataType::kCategorical) {
    strings_.resize(out);
  }
}

}  // namespace lsg
